package repro

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (§7) as testing.B benchmarks, one family per figure:
//
//	Figure 12 — BenchmarkFig12QueueMerge{Peepul,Quark}
//	Figure 13 — BenchmarkFig13ORSetWorkload{Quark,Peepul}
//	Figure 14 — BenchmarkFig14Mixed{OrSet,OrSetSpace,OrSetSpaceTime}
//	Figure 15 — BenchmarkFig15Footprint (reports bytes as a metric)
//	Table 3   — BenchmarkTable3Certify{Counter,ORSetSpace,Queue}
//
// plus the ablation benchmarks for the design choices listed in DESIGN.md.
// `go run ./cmd/peepul-bench` prints the same data as paper-style rows.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/orset"
	"repro/internal/quark"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/wire"
	"repro/peepul"
)

const benchSeed = 1

// --- Figure 12: queue merge time, Peepul vs Quark ---

func BenchmarkFig12QueueMergePeepul(b *testing.B) {
	var impl queue.Queue
	for _, n := range []int{1000, 2000, 3000, 4000, 5000} {
		lca, qa, qb := bench.QueueWorkload(n, benchSeed)
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = impl.Merge(lca, qa, qb)
			}
		})
	}
}

func BenchmarkFig12QueueMergeQuark(b *testing.B) {
	var impl quark.Queue
	// The Quark merge is Θ(n²) in time and space; cap the sweep so the
	// benchmark suite stays runnable (peepul-bench runs the full sweep).
	for _, n := range []int{1000, 2000, 3000} {
		lca, qa, qb := bench.QueueWorkload(n, benchSeed)
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = impl.Merge(lca, qa, qb)
			}
		})
	}
}

// --- Figure 13: OR-set workload+merge, Quark vs Peepul ---

func BenchmarkFig13ORSetWorkloadQuark(b *testing.B) {
	var impl quark.OrSet
	for _, n := range []int{10000, 50000, 100000} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l, sa, sb := bench.OrSetMergeWorkload[orset.State](impl, n, bench.Fig13ValueRange, benchSeed)
				m := impl.Merge(l, sa, sb)
				b.ReportMetric(float64(len(m)), "finalsize")
			}
		})
	}
}

func BenchmarkFig13ORSetWorkloadPeepul(b *testing.B) {
	var impl orset.OrSetSpace
	for _, n := range []int{10000, 50000, 100000} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l, sa, sb := bench.OrSetMergeWorkload[orset.SpaceState](impl, n, bench.Fig13ValueRange, benchSeed)
				m := impl.Merge(l, sa, sb)
				b.ReportMetric(float64(len(m)), "finalsize")
			}
		})
	}
}

// --- Figure 14: mixed 70/20/10 workload over the three Peepul OR-sets ---

func benchmarkFig14(b *testing.B, run func(ops []bench.MixedOp)) {
	for _, n := range []int{5000, 15000, 30000} {
		ops := bench.MixedOrSetWorkload(n, bench.Fig14ValueRange, benchSeed)
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(ops)
			}
		})
	}
}

func BenchmarkFig14MixedOrSet(b *testing.B) {
	benchmarkFig14(b, func(ops []bench.MixedOp) {
		runMixedBench[orset.State](orset.OrSet{}, ops)
	})
}

func BenchmarkFig14MixedOrSetSpace(b *testing.B) {
	benchmarkFig14(b, func(ops []bench.MixedOp) {
		runMixedBench[orset.SpaceState](orset.OrSetSpace{}, ops)
	})
}

func BenchmarkFig14MixedOrSetSpaceTime(b *testing.B) {
	benchmarkFig14(b, func(ops []bench.MixedOp) {
		runMixedBench[orset.TreeState](orset.OrSetSpaceTime{}, ops)
	})
}

func runMixedBench[S any](impl core.MRDT[S, orset.Op, orset.Val], ops []bench.MixedOp) {
	lca := impl.Init()
	branches := [2]S{impl.Init(), impl.Init()}
	ts := core.Timestamp(1)
	for i, mo := range ops {
		next, _ := impl.Do(mo.Op, branches[mo.Branch], ts)
		ts++
		branches[mo.Branch] = next
		if (i+1)%bench.Fig14MergeEvery == 0 {
			merged := impl.Merge(lca, branches[0], branches[1])
			lca, branches[0], branches[1] = merged, merged, merged
		}
	}
}

// --- Figure 15: maximum footprint of the three OR-sets ---

func BenchmarkFig15Footprint(b *testing.B) {
	for _, n := range []int{5000, 30000} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			var rows []bench.Fig15Row
			for i := 0; i < b.N; i++ {
				rows = bench.Fig15([]int{n}, benchSeed)
			}
			b.ReportMetric(float64(rows[0].OrSet), "orset-bytes")
			b.ReportMetric(float64(rows[0].Space), "space-bytes")
			b.ReportMetric(float64(rows[0].SpaceTime), "spacetime-bytes")
		})
	}
}

// --- Table 3′: certification cost per data type ---

func benchmarkCertify(b *testing.B, name string) {
	r, ok := peepul.Lookup(name)
	if !ok {
		b.Fatalf("datatype %q not registered", name)
	}
	cfg := r.Config()
	cfg.RandomExecutions = 25
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := r.Certify(cfg); rep.Err != nil {
			b.Fatal(rep.Err)
		}
	}
}

func BenchmarkTable3CertifyCounter(b *testing.B) { benchmarkCertify(b, "inc-counter") }

func BenchmarkTable3CertifyORSetSpace(b *testing.B) { benchmarkCertify(b, "or-set-space") }

func BenchmarkTable3CertifyQueue(b *testing.B) { benchmarkCertify(b, "functional-queue") }

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationOrSetMergeSorted compares the linear sorted-slice OR-set
// merge against the naive O(n²) set-formula evaluation.
func BenchmarkAblationOrSetMergeSorted(b *testing.B) {
	var impl orset.OrSet
	l, sa, sb := bench.OrSetMergeWorkload[orset.State](impl, 4000, 1000, benchSeed)
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = impl.Merge(l, sa, sb)
		}
	})
	b.Run("naive-quadratic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = bench.NaiveOrSetMerge(l, sa, sb)
		}
	})
}

// BenchmarkAblationQueueIntersection compares the three-pointer linear
// LCA-survivor computation against per-element membership scans.
func BenchmarkAblationQueueIntersection(b *testing.B) {
	lca, qa, qb := bench.QueueWorkload(4000, benchSeed)
	l, as, bs := lca.ToSlice(), qa.ToSlice(), qb.ToSlice()
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = bench.QueueIntersectionLinear(l, as, bs)
		}
	})
	b.Run("naive-quadratic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = bench.NaiveQueueIntersection(l, as, bs)
		}
	})
}

// BenchmarkAblationLookup compares membership queries on the sorted-slice
// OR-set-space against the AVL-backed OR-set-spacetime.
func BenchmarkAblationLookup(b *testing.B) {
	var space orset.OrSetSpace
	var tree orset.OrSetSpaceTime
	sp := space.Init()
	tr := tree.Init()
	ts := core.Timestamp(1)
	for e := int64(0); e < 10000; e++ {
		sp, _ = space.Do(orset.Op{Kind: orset.Add, E: e}, sp, ts)
		tr, _ = tree.Do(orset.Op{Kind: orset.Add, E: e}, tr, ts)
		ts++
	}
	b.Run("or-set-space-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = space.Do(orset.Op{Kind: orset.Add, E: int64(i % 10000)}, sp, ts)
		}
	})
	b.Run("or-set-spacetime-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = tree.Do(orset.Op{Kind: orset.Add, E: int64(i % 10000)}, tr, ts)
		}
	})
	b.Run("or-set-space-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = space.Do(orset.Op{Kind: orset.Lookup, E: int64(i % 10000)}, sp, ts)
		}
	})
	b.Run("or-set-spacetime-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = tree.Do(orset.Op{Kind: orset.Lookup, E: int64(i % 10000)}, tr, ts)
		}
	})
}

// BenchmarkAblationStoreLCA measures merge-base location cost as history
// depth grows (the store walks ancestor sets; deeper DAGs cost more).
func BenchmarkAblationStoreLCA(b *testing.B) {
	for _, depth := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			st := store.New[int64, counter.Op, counter.Val](counter.IncCounter{}, wire.IncCounter{}, "main")
			if err := st.Fork("main", "dev"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < depth; i++ {
				st.Apply("main", counter.Op{Kind: counter.Inc, N: 1})
				st.Apply("dev", counter.Op{Kind: counter.Inc, N: 1})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Apply("main", counter.Op{Kind: counter.Inc, N: 1})
				st.Apply("dev", counter.Op{Kind: counter.Inc, N: 1})
				if err := st.Sync("main", "dev"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreApply measures the end-to-end cost of one operation commit
// through the content-addressed store.
func BenchmarkStoreApply(b *testing.B) {
	st := store.New[orset.SpaceState, orset.Op, orset.Val](orset.OrSetSpace{}, wire.OrSetSpace{}, "main")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Apply("main", orset.Op{Kind: orset.Add, E: int64(i % 1000)}); err != nil {
			b.Fatal(err)
		}
	}
}
