// Package repro is a from-scratch Go reproduction of "Certified Mergeable
// Replicated Data Types" (Soundarapandian, Kamath, Nagar,
// Sivaramakrishnan — PLDI 2022): the Peepul library of efficient MRDTs
// over a Git-like branch-and-merge store, with the paper's
// replication-aware simulation machinery recast as an executable
// certification harness.
//
// The public API is the peepul package: a descriptor-based datatype
// registry (peepul.Register / peepul.Lookup / peepul.All), typed object
// handles (peepul.Open with Do/Fork/Pull/Sync), and multi-object replica
// nodes that negotiate and delta-sync every shared named object over a
// single connection (peepul.Node). The internal packages are the
// implementation layers underneath it.
//
// See README.md for the tour and DESIGN.md for the system inventory,
// the sync protocol specification, and the experiment index. The root
// package carries the benchmark suite (bench_test.go) that regenerates
// the evaluation.
package repro
