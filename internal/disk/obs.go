package disk

// Disk-layer observability: append and fsync latency, segment
// rotations, checkpoint writes, and how (and how long) recovery-on-open
// ran. Attached with WithObs; a nil registry leaves l.metrics nil and
// the append path pays one nil check. Instruments resolve by name, so
// the several per-object logs of one node share series.

import "repro/internal/obs"

type diskMetrics struct {
	reg         *obs.Registry
	appendNs    *obs.Histogram
	fsyncNs     *obs.Histogram
	rotations   *obs.Counter
	checkpoints *obs.Counter
	compactions *obs.Counter
	recoveryNs  *obs.Histogram
}

func newDiskMetrics(reg *obs.Registry) *diskMetrics {
	if reg == nil {
		return nil
	}
	m := &diskMetrics{
		reg:         reg,
		appendNs:    reg.Histogram("peepul_disk_append_ns", obs.LatencyBuckets),
		fsyncNs:     reg.Histogram("peepul_disk_fsync_ns", obs.LatencyBuckets),
		rotations:   reg.Counter("peepul_disk_segment_rotations_total"),
		checkpoints: reg.Counter("peepul_disk_checkpoint_writes_total"),
		compactions: reg.Counter("peepul_disk_compactions_total"),
		recoveryNs:  reg.Histogram("peepul_disk_recovery_ns", obs.LatencyBuckets),
	}
	reg.Describe("peepul_disk_append_ns", "latency of one framed record append (buffered write, rotation included)")
	reg.Describe("peepul_disk_fsync_ns", "latency of append-path fsync calls")
	reg.Describe("peepul_disk_segment_rotations_total", "active-segment seals followed by a fresh segment")
	reg.Describe("peepul_disk_checkpoint_writes_total", "index checkpoints written")
	reg.Describe("peepul_disk_compactions_total", "completed log compactions")
	reg.Describe("peepul_disk_recovery_ns", "wall time of recovery-on-open")
	reg.Describe("peepul_disk_recovery_total", "opens by recovery mode (checkpoint/replay/cold)")
	return m
}

// rotated records one segment seal + fresh segment, nil-safely.
func (m *diskMetrics) rotated() {
	if m != nil {
		m.rotations.Inc()
	}
}

// checkpointed records one index checkpoint write, nil-safely.
func (m *diskMetrics) checkpointed() {
	if m != nil {
		m.checkpoints.Inc()
	}
}

// compacted records one completed compaction, nil-safely.
func (m *diskMetrics) compacted() {
	if m != nil {
		m.compactions.Inc()
	}
}

// recovered records one completed open: its duration and its mode. The
// per-mode counter is resolved here rather than pre-created because the
// mode is only known after recovery runs, and opens are rare.
func (m *diskMetrics) recovered(mode string, ns int64) {
	if m == nil {
		return
	}
	m.recoveryNs.Observe(ns)
	m.reg.Counter("peepul_disk_recovery_total", "mode", mode).Inc()
}
