package disk

// Segment files. A segment is an append-only file of checksummed
// records behind an 8-byte magic header:
//
//	"PPKLOG1\n"
//	[u32 length][u32 crc32c(payload)][payload] ...
//
// Lengths and checksums are big-endian; the checksum is CRC-32C
// (Castagnoli), the same polynomial journaling filesystems and most
// storage engines use. Segments are named seg-%08d.log with a strictly
// increasing sequence number, so lexicographic and numeric replay order
// agree; compaction output and fresh append segments both take the next
// number, which is what keeps "replay files in order" equal to "replay
// records in append order" across compactions.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segMagic opens every segment file.
const segMagic = "PPKLOG1\n"

// maxRecordBytes bounds one record's announced length: larger than any
// record the store can produce (a snapshot of a wire-shippable state
// plus framing), small enough that a corrupted length cannot drive a
// giant allocation during replay.
const maxRecordBytes = 96 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segName(seq int) string { return fmt.Sprintf("seg-%08d.log", seq) }

// parseSegName extracts the sequence number, reporting whether name is a
// segment file.
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the directory's segment sequence numbers,
// ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// appendFrame appends one framed record to buf: length, checksum,
// payload.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// framedLen is the on-disk size of a payload once framed.
func framedLen(payload []byte) int64 { return int64(8 + len(payload)) }

// scanSegment replays one segment file into rec. It returns the number
// of bytes that parsed cleanly (header included) and whether the file
// ended mid-record or failed a checksum — the torn-tail signal. I/O
// errors other than EOF surface as err.
func scanSegment(path string, rec *Recovered) (good int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)

	var magic [len(segMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, true, nil
		}
		return 0, false, err
	}
	if string(magic[:]) != segMagic {
		return 0, true, nil
	}
	good = int64(len(segMagic))

	var hdr [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return good, false, nil // clean end of segment
			}
			if err == io.ErrUnexpectedEOF {
				return good, true, nil
			}
			return good, false, err
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length > maxRecordBytes {
			return good, true, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return good, true, nil
			}
			return good, false, err
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return good, true, nil
		}
		if err := applyRecord(rec, payload); err != nil {
			// The checksum passed but the payload does not parse: a
			// format mismatch is handled like corruption — keep the
			// prefix, drop the rest.
			return good, true, nil
		}
		good += framedLen(payload)
		rec.Records++
	}
}

// newSegWriter wraps a segment file in the log's standard write buffer.
func newSegWriter(f *os.File) *bufio.Writer { return bufio.NewWriterSize(f, 1<<20) }

// createSegment creates the segment file for seq with its header
// written, failing if it already exists.
func createSegment(dir string, seq int) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs the directory so renames, creations and deletions of
// segment files are themselves durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
