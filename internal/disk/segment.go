package disk

// Segment files. A segment is an append-only file of checksummed
// records behind an 8-byte magic header:
//
//	"PPKLOG1\n"
//	[u32 length][u32 crc32c(payload)][payload] ...
//
// Lengths and checksums are big-endian; the checksum is CRC-32C
// (Castagnoli), the same polynomial journaling filesystems and most
// storage engines use. Segments are named seg-%08d.log with a strictly
// increasing sequence number, so lexicographic and numeric replay order
// agree; compaction output and fresh append segments both take the next
// number, which is what keeps "replay files in order" equal to "replay
// records in append order" across compactions.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segMagic opens every segment file.
const segMagic = "PPKLOG1\n"

// maxRecordBytes bounds one record's announced length: larger than any
// record the store can produce (a snapshot of a wire-shippable state
// plus framing), small enough that a corrupted length cannot drive a
// giant allocation during replay.
const maxRecordBytes = 96 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segName(seq int) string { return fmt.Sprintf("seg-%08d.log", seq) }

// parseSegName extracts the sequence number, reporting whether name is a
// segment file.
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the directory's segment sequence numbers,
// ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// checkRecordSize refuses records recovery would reject: writing one
// would make the next open treat it as corruption and truncate
// everything after it. Surfacing the error at write time makes the
// owning store fail-stop instead. (Shared by the append path and
// compaction's emitter — the bound must be one number.)
func checkRecordSize(record []byte) error {
	if len(record) > maxRecordBytes {
		return fmt.Errorf("disk: %d-byte record exceeds the %d replay limit", len(record), maxRecordBytes)
	}
	return nil
}

// appendFrame appends one framed record to buf: length, checksum,
// payload.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// framedLen is the on-disk size of a payload once framed.
func framedLen(payload []byte) int64 { return int64(8 + len(payload)) }

// segScan is one segment's decoded contents: its records in append
// order, the number of bytes that parsed cleanly (header included), and
// whether the file ended mid-record or failed a checksum — the torn-tail
// signal. Scans are independent per segment, so Open runs them
// concurrently and applies the results in sequence order.
type segScan struct {
	seq  int
	ops  []scanOp
	good int64
	torn bool
	err  error
}

// scanSegmentOps decodes the segment at path from byte offset from
// (clamped to just past the magic header, which is always verified).
// A non-zero from lets the checkpoint path skip the already-decoded
// head record. I/O errors other than EOF surface as err.
func scanSegmentOps(path string, seq int, from int64) segScan {
	res := segScan{seq: seq}
	f, err := os.Open(path)
	if err != nil {
		res.err = err
		return res
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)

	var magic [len(segMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			res.torn = true
			return res
		}
		res.err = err
		return res
	}
	if string(magic[:]) != segMagic {
		res.torn = true
		return res
	}
	res.good = int64(len(segMagic))
	if from > res.good {
		// Seek, don't read: the skipped prefix is the checkpoint record the
		// probe already decoded, megabytes the scan would otherwise pull
		// through its buffer just to discard. The probe's frame read proves
		// the file extends to from; a shorter file is a torn prefix.
		if st, err := f.Stat(); err != nil || st.Size() < from {
			res.torn = true
			return res
		}
		if _, err := f.Seek(from, io.SeekStart); err != nil {
			res.err = err
			return res
		}
		r.Reset(f)
		res.good = from
	}

	var hdr [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return res // clean end of segment
			}
			if err == io.ErrUnexpectedEOF {
				res.torn = true
				return res
			}
			res.err = err
			return res
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length > maxRecordBytes {
			res.torn = true
			return res
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.torn = true
				return res
			}
			res.err = err
			return res
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			res.torn = true
			return res
		}
		op, err := decodeRecord(payload, res.good)
		if err != nil {
			// The checksum passed but the payload does not parse: a
			// format mismatch is handled like corruption — keep the
			// prefix, drop the rest.
			res.torn = true
			return res
		}
		res.ops = append(res.ops, op)
		res.good += framedLen(payload)
	}
}

// readFrameAt reads and checksum-verifies the single framed record at
// offset off, returning its payload and the offset just past the frame.
// It is the random-access complement to scanSegmentOps: checkpoint
// probing reads a segment's head record with it, lazy object loads
// re-read one record mid-file.
func readFrameAt(f io.ReaderAt, off int64) (payload []byte, end int64, err error) {
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, 0, err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if length > maxRecordBytes {
		return nil, 0, fmt.Errorf("frame at %d announces %d bytes", off, length)
	}
	payload = make([]byte, length)
	if _, err := f.ReadAt(payload, off+8); err != nil {
		return nil, 0, err
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, fmt.Errorf("frame at %d fails its checksum", off)
	}
	return payload, off + 8 + int64(length), nil
}

// newSegWriter wraps a segment file in the log's standard write buffer.
func newSegWriter(f *os.File) *bufio.Writer { return bufio.NewWriterSize(f, 1<<20) }

// createSegment creates the segment file for seq with its header
// written, failing if it already exists.
func createSegment(dir string, seq int) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs the directory so renames, creations and deletions of
// segment files are themselves durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
