package disk

// Compaction: rewriting the log to exactly the store's live state. The
// store's GC already computed the survivors (and re-snapshotted any
// delta chain whose base died), so the log's job is purely mechanical —
// but crash-safe and prefix-consistent:
//
//  1. Seal the active segment.
//  2. Write every live record into seg-<next>.log.tmp, in dependency
//     order: meta and allocator first, pack objects with each chain
//     base before its dependents, commits with parents before children,
//     branch heads last. A torn tail inside a compacted segment then
//     still replays to a self-consistent prefix (worst case: no branch
//     records survive and the store reopens fresh).
//  3. Fsync the temp file, rename it into place, fsync the directory —
//     the atomic switch.
//  4. Delete the old segments and fsync the directory again.
//
// A crash before 3 leaves the old segments intact (the .tmp is swept on
// the next open). A crash between 3 and 4 leaves old and new segments
// side by side; replay visits them oldest-first and every record is an
// idempotent upsert, so the compacted segment simply re-states what the
// old ones already said about live history, and dead records resurrect
// only until the next GC.

import (
	"os"
	"path/filepath"

	"repro/internal/store"
)

// Compact implements store.Persister.
func (l *Log) Compact(rs *store.RecoveredState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.sealLocked(); err != nil {
		return err
	}
	oldEnd := l.seq
	newSeq := l.seq + 1

	tmp := filepath.Join(l.dir, segName(newSeq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	written, nrec, locs, err := writeCompacted(f, l.meta, rs, newSeq)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	final := filepath.Join(l.dir, segName(newSeq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// The switch is durable; the old segments are garbage now.
	seqs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq <= oldEnd {
			if err := os.Remove(filepath.Join(l.dir, segName(seq))); err != nil {
				return err
			}
		}
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// The compacted segment becomes the active one.
	af, err := os.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = af
	l.w = newSegWriter(af)
	l.seq = newSeq
	l.size = written
	l.sealed, l.nseal = 0, 0
	l.stats.Compactions++
	l.metrics.compacted()

	// The shadow index is rebuilt from the live set. rs aliases the
	// store's own maps on this path, so every map is copied, never kept.
	sh := newShadow()
	for h, c := range rs.Commits {
		sh.commits[h] = c
	}
	sh.objects = locs
	for name, b := range rs.Branches {
		sh.branches[name] = b
	}
	sh.nextID = rs.NextID
	l.shadow = sh
	l.sinceCkpt = nrec

	// Cap the rewrite with a checkpoint: the compacted segment is as deep
	// as this log's history gets, and the checkpoint (heading the next
	// segment) lets the following open skip straight past it.
	if l.opts.CheckpointEvery > 0 {
		if err := l.checkpointLocked(); err != nil {
			return err
		}
	}
	return nil
}

// writeCompacted streams the live state as framed records. It returns
// the bytes written (header included), the record count, and each pack
// object's location within the new segment — the entries the rebuilt
// shadow index (and the post-compaction checkpoint) carries.
func writeCompacted(f *os.File, meta map[string]string, rs *store.RecoveredState, seq int) (int64, int64, map[store.Hash]objLoc, error) {
	w := newSegWriter(f)
	written := int64(0)
	nrec := int64(0)
	locs := make(map[store.Hash]objLoc, len(rs.Objects))
	emit := func(record []byte) error {
		if err := checkRecordSize(record); err != nil {
			return err
		}
		framed := appendFrame(nil, record)
		if _, err := w.Write(framed); err != nil {
			return err
		}
		written += int64(len(framed))
		nrec++
		return nil
	}
	emitObject := func(h store.Hash, o store.ObjectRecord) error {
		loc := objLoc{
			base: o.Base, delta: o.Delta, size: o.Size, depth: o.Depth,
			stored: len(o.Data), seg: seq, off: written,
		}
		if err := emit(encodeObject(h, o)); err != nil {
			return err
		}
		locs[h] = loc
		return nil
	}
	fail := func(err error) (int64, int64, map[store.Hash]objLoc, error) {
		return 0, 0, nil, err
	}
	if _, err := w.WriteString(segMagic); err != nil {
		return fail(err)
	}
	written += int64(len(segMagic))

	for k, v := range meta {
		if err := emit(encodeMeta(k, v)); err != nil {
			return fail(err)
		}
	}
	if err := emit(encodeNextID(rs.NextID)); err != nil {
		return fail(err)
	}
	// Objects in chain order: snapshots first, then each delta after its
	// base. Deltas whose base is outside the set (impossible for a
	// GC-closed live set, tolerated defensively) flush last — replay
	// into maps does not need them ordered, only prefix consistency
	// wants it.
	children := make(map[store.Hash][]store.Hash)
	emitted := make(map[store.Hash]bool, len(rs.Objects))
	var stack []store.Hash
	for h, o := range rs.Objects {
		if o.Delta {
			children[o.Base] = append(children[o.Base], h)
		} else {
			stack = append(stack, h)
		}
	}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if emitted[h] {
			continue
		}
		emitted[h] = true
		if err := emitObject(h, rs.Objects[h]); err != nil {
			return fail(err)
		}
		stack = append(stack, children[h]...)
	}
	for h, o := range rs.Objects {
		if !emitted[h] {
			if err := emitObject(h, o); err != nil {
				return fail(err)
			}
		}
	}
	// Commits parents-first (Kahn's algorithm on the in-set parent
	// counts); out-of-set parents are treated as satisfied.
	waiting := make(map[store.Hash]int, len(rs.Commits))
	dependents := make(map[store.Hash][]store.Hash)
	var ready []store.Hash
	for h, c := range rs.Commits {
		n := 0
		for _, p := range c.Parents {
			if _, ok := rs.Commits[p]; ok {
				n++
				dependents[p] = append(dependents[p], h)
			}
		}
		waiting[h] = n
		if n == 0 {
			ready = append(ready, h)
		}
	}
	done := 0
	for len(ready) > 0 {
		h := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		if err := emit(encodeCommit(h, rs.Commits[h])); err != nil {
			return fail(err)
		}
		done++
		for _, d := range dependents[h] {
			if waiting[d]--; waiting[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if done != len(rs.Commits) {
		// A parent cycle cannot happen in a hash-addressed DAG; emit any
		// stragglers rather than lose them.
		for h, c := range rs.Commits {
			if waiting[h] > 0 {
				if err := emit(encodeCommit(h, c)); err != nil {
					return fail(err)
				}
			}
		}
	}
	for name, b := range rs.Branches {
		if err := emit(encodeBranch(name, b)); err != nil {
			return fail(err)
		}
	}
	return written, nrec, locs, w.Flush()
}
