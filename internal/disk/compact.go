package disk

// Compaction: rewriting the log to exactly the store's live state. The
// store's GC already computed the survivors (and re-snapshotted any
// delta chain whose base died), so the log's job is purely mechanical —
// but crash-safe and prefix-consistent:
//
//  1. Seal the active segment.
//  2. Write every live record into seg-<next>.log.tmp, in dependency
//     order: meta and allocator first, pack objects with each chain
//     base before its dependents, commits with parents before children,
//     branch heads last. A torn tail inside a compacted segment then
//     still replays to a self-consistent prefix (worst case: no branch
//     records survive and the store reopens fresh).
//  3. Fsync the temp file, rename it into place, fsync the directory —
//     the atomic switch.
//  4. Delete the old segments and fsync the directory again.
//
// A crash before 3 leaves the old segments intact (the .tmp is swept on
// the next open). A crash between 3 and 4 leaves old and new segments
// side by side; replay visits them oldest-first and every record is an
// idempotent upsert, so the compacted segment simply re-states what the
// old ones already said about live history, and dead records resurrect
// only until the next GC.

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/store"
)

// Compact implements store.Persister.
func (l *Log) Compact(rs *store.RecoveredState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.sealLocked(); err != nil {
		return err
	}
	oldEnd := l.seq
	newSeq := l.seq + 1

	tmp := filepath.Join(l.dir, segName(newSeq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	written, err := writeCompacted(f, l.meta, rs)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	final := filepath.Join(l.dir, segName(newSeq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// The switch is durable; the old segments are garbage now.
	seqs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq <= oldEnd {
			if err := os.Remove(filepath.Join(l.dir, segName(seq))); err != nil {
				return err
			}
		}
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// The compacted segment becomes the active one.
	af, err := os.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = af
	l.w = newSegWriter(af)
	l.seq = newSeq
	l.size = written
	l.sealed, l.nseal = 0, 0
	l.stats.Compactions++
	return nil
}

// writeCompacted streams the live state as framed records and returns
// the bytes written (header included).
func writeCompacted(f *os.File, meta map[string]string, rs *store.RecoveredState) (int64, error) {
	w := newSegWriter(f)
	written := int64(0)
	emit := func(record []byte) error {
		if len(record) > maxRecordBytes {
			return fmt.Errorf("disk: %d-byte record exceeds the %d replay limit", len(record), maxRecordBytes)
		}
		framed := appendFrame(nil, record)
		if _, err := w.Write(framed); err != nil {
			return err
		}
		written += int64(len(framed))
		return nil
	}
	if _, err := w.WriteString(segMagic); err != nil {
		return 0, err
	}
	written += int64(len(segMagic))

	for k, v := range meta {
		if err := emit(encodeMeta(k, v)); err != nil {
			return 0, err
		}
	}
	if err := emit(encodeNextID(rs.NextID)); err != nil {
		return 0, err
	}
	// Objects in chain order: snapshots first, then each delta after its
	// base. Deltas whose base is outside the set (impossible for a
	// GC-closed live set, tolerated defensively) flush last — replay
	// into maps does not need them ordered, only prefix consistency
	// wants it.
	children := make(map[store.Hash][]store.Hash)
	emitted := make(map[store.Hash]bool, len(rs.Objects))
	var stack []store.Hash
	for h, o := range rs.Objects {
		if o.Delta {
			children[o.Base] = append(children[o.Base], h)
		} else {
			stack = append(stack, h)
		}
	}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if emitted[h] {
			continue
		}
		emitted[h] = true
		if err := emit(encodeObject(h, rs.Objects[h])); err != nil {
			return 0, err
		}
		stack = append(stack, children[h]...)
	}
	for h, o := range rs.Objects {
		if !emitted[h] {
			if err := emit(encodeObject(h, o)); err != nil {
				return 0, err
			}
		}
	}
	// Commits parents-first (Kahn's algorithm on the in-set parent
	// counts); out-of-set parents are treated as satisfied.
	waiting := make(map[store.Hash]int, len(rs.Commits))
	dependents := make(map[store.Hash][]store.Hash)
	var ready []store.Hash
	for h, c := range rs.Commits {
		n := 0
		for _, p := range c.Parents {
			if _, ok := rs.Commits[p]; ok {
				n++
				dependents[p] = append(dependents[p], h)
			}
		}
		waiting[h] = n
		if n == 0 {
			ready = append(ready, h)
		}
	}
	done := 0
	for len(ready) > 0 {
		h := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		if err := emit(encodeCommit(h, rs.Commits[h])); err != nil {
			return 0, err
		}
		done++
		for _, d := range dependents[h] {
			if waiting[d]--; waiting[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if done != len(rs.Commits) {
		// A parent cycle cannot happen in a hash-addressed DAG; emit any
		// stragglers rather than lose them.
		for h, c := range rs.Commits {
			if waiting[h] > 0 {
				if err := emit(encodeCommit(h, c)); err != nil {
					return 0, err
				}
			}
		}
	}
	for name, b := range rs.Branches {
		if err := emit(encodeBranch(name, b)); err != nil {
			return 0, err
		}
	}
	return written, w.Flush()
}
