package disk_test

// Crash-injection property tests: the durability contract is that
// however the log is cut short or damaged at its tail, recovery lands on
// a VerifyPack-clean *prefix* of the committed DAG — never a corrupted
// or invented state — and the reopened replica converges with an
// undamaged peer through the ordinary delta-sync path.
//
// Each seed builds a random history (operations on two branches, syncs,
// occasional GC so compaction runs too), closes the log, then injures
// the segment files one of three ways: truncating the byte stream at a
// random point, appending garbage, or flipping a random bit inside the
// tail region. Recovery must then (1) succeed, (2) recover only commits
// the original store had, (3) put every branch head at an
// ancestor-or-equal of its original position, and (4) converge with the
// undamaged original via ExportSince/Import/Pull.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/disk"
	"repro/internal/mlog"
	"repro/internal/store"
)

// buildRandomHistory drives a persistent store through a random but
// Ψ_lca-sound workload and returns it (its log closed, ready to damage).
func buildRandomHistory(t *testing.T, dir string, rng *rand.Rand, opts ...disk.Option) *store.Store[mlog.State, mlog.Op, mlog.Val] {
	t.Helper()
	s, l, _ := openLogStore(t, dir, append([]disk.Option{disk.WithSegmentBytes(4 << 10)}, opts...)...)
	if err := s.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}
	ops := 30 + rng.Intn(40)
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			appendMsg(t, s, "dev", fmt.Sprintf("dev %d", i))
		case 2:
			if err := s.Sync("main", "dev"); err != nil {
				t.Fatal(err)
			}
		case 3:
			s.GC() // exercises compaction mid-history
			if err := s.FlushStorage(); err != nil {
				t.Fatal(err)
			}
		default:
			appendMsg(t, s, "main", fmt.Sprintf("main %d", i))
		}
	}
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return s
}

// segmentFiles returns the directory's segment paths in replay order.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	if len(segs) == 0 {
		t.Fatal("no segments on disk")
	}
	return segs
}

// injure damages the on-disk log according to mode.
func injure(t *testing.T, dir string, rng *rand.Rand, mode int) string {
	t.Helper()
	segs := segmentFiles(t, dir)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	switch mode {
	case 0: // truncate the global byte stream at a random point
		total := int64(0)
		sizes := make([]int64, len(segs))
		for i, p := range segs {
			fi, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			sizes[i] = fi.Size()
			total += fi.Size()
		}
		cut := rng.Int63n(total + 1)
		for i, p := range segs {
			if cut >= sizes[i] {
				cut -= sizes[i]
				continue
			}
			if err := os.Truncate(p, cut); err != nil {
				t.Fatal(err)
			}
			for _, later := range segs[i+1:] {
				if err := os.Remove(later); err != nil {
					t.Fatal(err)
				}
			}
			return fmt.Sprintf("truncate %s at %d", filepath.Base(p), cut)
		}
		return "truncate nothing"
	case 1: // torn write: garbage appended past the last record
		f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, 1+rng.Intn(200))
		rng.Read(junk)
		f.Write(junk)
		f.Close()
		return fmt.Sprintf("append %d garbage bytes to %s", len(junk), filepath.Base(last))
	default: // bit flip in the tail region of the last segment
		if info.Size() == 0 {
			return "empty tail"
		}
		tail := info.Size() / 2
		off := tail + rng.Int63n(info.Size()-tail)
		f, err := os.OpenFile(last, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 1 << uint(rng.Intn(8))
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return fmt.Sprintf("flip bit at %d/%d of %s", off, info.Size(), filepath.Base(last))
	}
}

// isAncestor reports whether a is an ancestor of (or equal to) b in s.
func isAncestor(s *store.Store[mlog.State, mlog.Op, mlog.Val], a, b store.Hash) bool {
	seen := map[store.Hash]bool{b: true}
	stack := []store.Hash{b}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if h == a {
			return true
		}
		c, ok := s.Commit(h)
		if !ok {
			return false
		}
		for _, p := range c.Parents {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// checkRecoveryProperties asserts the durability contract on a recovered
// store: (2) every recovered head exists in the undamaged original —
// recovery can lose history, never invent it; (3) heads landed on
// ancestors of their original positions; (4) the recovered replica
// converges with the undamaged peer over ordinary delta sync and its
// pack verifies clean afterwards. ((1), recovery succeeding at all, is
// openLogStore's job — it fatals otherwise.)
func checkRecoveryProperties(t *testing.T, what string, orig, s2 *store.Store[mlog.State, mlog.Op, mlog.Val]) {
	t.Helper()
	origHead, err := orig.HeadHash("main")
	if err != nil {
		t.Fatal(err)
	}
	recHead, err := s2.HeadHash("main")
	if err != nil {
		t.Fatalf("%s: recovered store lost branch main: %v", what, err)
	}
	missing := 0
	for _, b := range s2.Branches() {
		h, err := s2.HeadHash(b)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := orig.Commit(h); !ok && s2.NumCommits() > 1 {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%s: recovered a head the original never committed", what)
	}
	if !isAncestor(orig, recHead, origHead) {
		t.Fatalf("%s: recovered head %v is not a prefix of original %v", what, recHead, origHead)
	}

	// Convergence: cut the export at the recovered frontier, graft, pull
	// — the recovered replica must land exactly on the original head
	// state.
	f, err := s2.Frontier("main")
	if err != nil {
		t.Fatal(err)
	}
	delta, head, err := orig.ExportSincePacked("main", f.HaveSet())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Import("remote/orig", delta, head); err != nil {
		t.Fatalf("%s: import after recovery: %v", what, err)
	}
	if err := s2.Pull("main", "remote/orig"); err != nil {
		t.Fatalf("%s: pull after recovery: %v", what, err)
	}
	got, err := s2.Head("main")
	if err != nil {
		t.Fatal(err)
	}
	want, err := orig.Head("main")
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(got, want) {
		t.Fatalf("%s: recovered replica did not converge with undamaged peer", what)
	}
	if err := s2.VerifyPack(); err != nil {
		t.Fatalf("%s: VerifyPack after convergence: %v", what, err)
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			for mode := 0; mode < 3; mode++ {
				rng := rand.New(rand.NewSource(seed*31 + int64(mode)))
				dir := filepath.Join(t.TempDir(), "log")
				orig := buildRandomHistory(t, dir, rng)

				what := injure(t, dir, rng, mode)

				// Recovery must succeed: disk.Open truncates the damage
				// (retrying past a damaged checkpoint), and the store
				// verifies the recovered prefix at open.
				s2, l2, _ := openLogStore(t, dir, disk.WithSegmentBytes(4<<10))
				defer l2.Close()
				checkRecoveryProperties(t, what, orig, s2)
			}
		})
	}
}

// injureCheckpoint damages checkpoint-bearing state specifically: the
// newest segment's head record is a checkpoint after a clean close, and
// older segments hold the bytes its index references.
func injureCheckpoint(t *testing.T, dir string, rng *rand.Rand, mode int) string {
	t.Helper()
	segs := segmentFiles(t, dir)
	last := segs[len(segs)-1]
	const hdr = 8 + 8 // segment magic + frame header
	switch mode {
	case 0: // truncate inside the checkpoint record: a torn checkpoint write
		info, err := os.Stat(last)
		if err != nil {
			t.Fatal(err)
		}
		limit := info.Size() - hdr
		if limit <= 0 {
			return "checkpoint too small to truncate"
		}
		cut := hdr + rng.Int63n(limit)
		if err := os.Truncate(last, cut); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("truncate checkpoint %s at %d", filepath.Base(last), cut)
	case 1: // flip a bit inside the checkpoint record's payload
		f, err := os.OpenFile(last, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var lenb [4]byte
		if _, err := f.ReadAt(lenb[:], 8); err != nil {
			t.Fatal(err)
		}
		length := int64(lenb[0])<<24 | int64(lenb[1])<<16 | int64(lenb[2])<<8 | int64(lenb[3])
		off := hdr + rng.Int63n(max(length, 1))
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 1 << uint(rng.Intn(8))
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("flip bit at %d inside checkpoint %s", off, filepath.Base(last))
	default: // flip a bit in the oldest segment: bytes the checkpoint indexes
		first := segs[0]
		info, err := os.Stat(first)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() <= 8 {
			return "first segment empty"
		}
		off := 8 + rng.Int63n(info.Size()-8)
		f, err := os.OpenFile(first, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 1 << uint(rng.Intn(8))
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("flip bit at %d of indexed segment %s", off, filepath.Base(first))
	}
}

// TestCrashCheckpointDamage: damage aimed at the checkpoint machinery —
// a torn or bit-flipped checkpoint record, or corruption in the older
// bytes a checkpoint's index references — must still recover to a
// verified prefix that re-converges over delta sync. The first two fall
// back inside disk.Open (probe an older checkpoint or replay segments);
// the third passes disk.Open but fails the store's verification, driving
// openLogStore's full-replay ladder rung.
func TestCrashCheckpointDamage(t *testing.T) {
	opts := []disk.Option{disk.WithCheckpointEvery(4)}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			for mode := 0; mode < 3; mode++ {
				rng := rand.New(rand.NewSource(seed*37 + int64(mode)))
				dir := filepath.Join(t.TempDir(), "log")
				orig := buildRandomHistory(t, dir, rng, opts...)

				what := injureCheckpoint(t, dir, rng, mode)

				s2, l2, _ := openLogStore(t, dir, append([]disk.Option{disk.WithSegmentBytes(4 << 10)}, opts...)...)
				defer l2.Close()
				checkRecoveryProperties(t, what, orig, s2)
			}
		})
	}
}
