package disk_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/disk"
	"repro/internal/mlog"
	"repro/internal/store"
	"repro/internal/wire"
)

// openLogStore opens (or reopens) a persistent mergeable-log store in
// dir and returns it with its log. It opens with full pack verification
// and drives the same recovery ladder the replica layer uses: a
// checkpoint-seeded open whose index fails verification (a checkpoint
// can reference bytes that crash damage corrupted behind it) is retried
// once with a forced full replay, which truncates at the damage and
// recovers the clean prefix.
func openLogStore(t *testing.T, dir string, opts ...disk.Option) (*store.Store[mlog.State, mlog.Op, mlog.Val], *disk.Log, *disk.Recovered) {
	t.Helper()
	l, rec, err := disk.Open(dir, opts...)
	if err != nil {
		t.Fatalf("disk.Open: %v", err)
	}
	s, err := store.OpenRecovered[mlog.State, mlog.Op, mlog.Val](
		mlog.Log{}, wire.MLog{}, "main", 0, &rec.State,
		store.WithPersister(l), store.WithVerifyOnOpen(true))
	if err != nil && rec.Mode == disk.ModeCheckpoint {
		l.Close()
		l, rec, err = disk.Open(dir, append(append([]disk.Option(nil), opts...), disk.WithFullReplay())...)
		if err != nil {
			t.Fatalf("disk.Open (full replay): %v", err)
		}
		s, err = store.OpenRecovered[mlog.State, mlog.Op, mlog.Val](
			mlog.Log{}, wire.MLog{}, "main", 0, &rec.State,
			store.WithPersister(l), store.WithVerifyOnOpen(true))
	}
	if err != nil {
		t.Fatalf("store.OpenRecovered: %v", err)
	}
	return s, l, rec
}

func appendMsg(t *testing.T, s *store.Store[mlog.State, mlog.Op, mlog.Val], b, msg string) {
	t.Helper()
	if _, err := s.Apply(b, mlog.Op{Kind: mlog.Append, Msg: msg}); err != nil {
		t.Fatalf("Apply(%s): %v", b, err)
	}
}

func headMsgs(t *testing.T, s *store.Store[mlog.State, mlog.Op, mlog.Val], b string) mlog.State {
	t.Helper()
	st, err := s.Head(b)
	if err != nil {
		t.Fatalf("Head(%s): %v", b, err)
	}
	return st
}

// TestRoundTrip: a persisted store reopens with identical history,
// branches, states and clock positions.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, l, _ := openLogStore(t, dir)
	for i := 0; i < 20; i++ {
		appendMsg(t, s, "main", "m")
	}
	if err := s.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}
	appendMsg(t, s, "dev", "d")
	appendMsg(t, s, "main", "x")
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	wantMain := headMsgs(t, s, "main")
	wantHead, _ := s.HeadHash("main")
	wantCommits := s.NumCommits()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s2, l2, rec := openLogStore(t, dir)
	defer l2.Close()
	if rec.TruncatedBytes != 0 || rec.DroppedSegments != 0 {
		t.Fatalf("clean log recovered with truncation: %+v", rec)
	}
	if got := headMsgs(t, s2, "main"); !statesEqual(got, wantMain) {
		t.Fatalf("recovered main state differs: got %v want %v", got, wantMain)
	}
	if h, _ := s2.HeadHash("main"); h != wantHead {
		t.Fatalf("recovered head %v, want %v", h, wantHead)
	}
	if n := s2.NumCommits(); n != wantCommits {
		t.Fatalf("recovered %d commits, want %d", n, wantCommits)
	}
	// Fresh timestamps must stay ahead of recovered history: a new
	// operation commits strictly after everything recovered.
	appendMsg(t, s2, "main", "after-restart")
	after := headMsgs(t, s2, "main")
	newest := after[0] // the mergeable log prepends
	for _, e := range wantMain {
		if e.T >= newest.T {
			t.Fatalf("post-restart timestamp %d does not dominate recovered %d", newest.T, e.T)
		}
	}
}

func statesEqual(a, b mlog.State) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRotation: small segments force rotation; recovery replays across
// segment boundaries.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	s, l, _ := openLogStore(t, dir, disk.WithSegmentBytes(4<<10))
	for i := 0; i < 200; i++ {
		appendMsg(t, s, "main", "a reasonably long chat message to grow the state")
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	want := headMsgs(t, s, "main")
	l.Close()

	s2, l2, _ := openLogStore(t, dir, disk.WithSegmentBytes(4<<10))
	defer l2.Close()
	if got := headMsgs(t, s2, "main"); !statesEqual(got, want) {
		t.Fatalf("recovered state differs after rotation")
	}
}

// TestTornTail: garbage appended past the last record is truncated on
// open and the clean prefix survives.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	s, l, _ := openLogStore(t, dir)
	for i := 0; i < 10; i++ {
		appendMsg(t, s, "main", "m")
	}
	want := headMsgs(t, s, "main")
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(bytes.Repeat([]byte{0xEE}, 37)) // half a frame of garbage
	f.Close()

	s2, l2, rec := openLogStore(t, dir)
	defer l2.Close()
	if rec.TruncatedBytes != 37 {
		t.Fatalf("TruncatedBytes = %d, want 37", rec.TruncatedBytes)
	}
	if got := headMsgs(t, s2, "main"); !statesEqual(got, want) {
		t.Fatalf("torn tail damaged the clean prefix")
	}
	// The truncation is durable: a third open sees a clean log.
	l2.Close()
	_, l3, rec3 := openLogStore(t, dir)
	defer l3.Close()
	if rec3.TruncatedBytes != 0 {
		t.Fatalf("second recovery still truncating: %+v", rec3)
	}
}

// TestCompaction: GC rewrites the log to the live set; dead history
// stops costing disk and the compacted log reopens to the same state.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, l, _ := openLogStore(t, dir)
	if err := s.Fork("main", "scratch"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		appendMsg(t, s, "scratch", "doomed history that should compact away")
	}
	for i := 0; i < 5; i++ {
		appendMsg(t, s, "main", "kept")
	}
	if err := s.DeleteBranch("scratch"); err != nil {
		t.Fatal(err)
	}
	before := l.Stats().Bytes
	collected := s.GC()
	if collected == 0 {
		t.Fatal("GC collected nothing")
	}
	if err := s.FlushStorage(); err != nil {
		t.Fatalf("compaction failed: %v", err)
	}
	after := l.Stats()
	if after.Bytes >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before, after.Bytes)
	}
	if after.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", after.Compactions)
	}
	want := headMsgs(t, s, "main")
	wantCommits := s.NumCommits()
	l.Close()

	s2, l2, _ := openLogStore(t, dir)
	defer l2.Close()
	if got := headMsgs(t, s2, "main"); !statesEqual(got, want) {
		t.Fatalf("compacted log recovered a different state")
	}
	if n := s2.NumCommits(); n != wantCommits {
		t.Fatalf("compacted log recovered %d commits, want %d", n, wantCommits)
	}
	if bs := s2.Branches(); len(bs) != 1 || bs[0] != "main" {
		t.Fatalf("deleted branch resurrected: %v", bs)
	}
}

// TestAppendAfterCompaction: the compacted segment stays appendable and
// a post-compaction mutation survives a reopen.
func TestAppendAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	s, l, _ := openLogStore(t, dir)
	for i := 0; i < 10; i++ {
		appendMsg(t, s, "main", "m")
	}
	s.GC()
	if err := s.FlushStorage(); err != nil {
		t.Fatal(err)
	}
	appendMsg(t, s, "main", "post-compaction")
	want := headMsgs(t, s, "main")
	l.Close()

	s2, l2, _ := openLogStore(t, dir)
	defer l2.Close()
	if got := headMsgs(t, s2, "main"); !statesEqual(got, want) {
		t.Fatalf("post-compaction append lost")
	}
}

// TestMeta: metadata round-trips and survives compaction.
func TestMeta(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := disk.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Meta) != 0 {
		t.Fatalf("fresh log has meta: %v", rec.Meta)
	}
	if err := l.SetMeta("datatype", "mergeable-log"); err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenRecovered[mlog.State, mlog.Op, mlog.Val](
		mlog.Log{}, wire.MLog{}, "main", 0, &rec.State, store.WithPersister(l))
	if err != nil {
		t.Fatal(err)
	}
	s.GC() // compaction must carry meta into the rewritten segment
	if err := s.FlushStorage(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, rec2, err := disk.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Meta["datatype"] != "mergeable-log" {
		t.Fatalf("meta lost: %v", rec2.Meta)
	}
}

// TestFsyncAlways: the policy is exercised end to end and counted.
func TestFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	s, l, _ := openLogStore(t, dir, disk.WithFsync(disk.FsyncAlways))
	for i := 0; i < 5; i++ {
		appendMsg(t, s, "main", "m")
	}
	if st := l.Stats(); st.Fsyncs < 5 {
		t.Fatalf("FsyncAlways recorded %d fsyncs for 5 mutations", st.Fsyncs)
	}
	l.Close()
}

// TestTmpSweep: stray temporary files left by a crashed compaction or
// checkpoint are removed on open, and the log recovers normally around
// them.
func TestTmpSweep(t *testing.T) {
	dir := t.TempDir()
	s, l, _ := openLogStore(t, dir)
	for i := 0; i < 5; i++ {
		appendMsg(t, s, "main", "m")
	}
	want := headMsgs(t, s, "main")
	l.Close()

	tmp := filepath.Join(dir, "seg-00000099.log.tmp")
	if err := os.WriteFile(tmp, []byte("half a compacted segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, l2, _ := openLogStore(t, dir)
	defer l2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stray tmp file survived open: %v", err)
	}
	if got := headMsgs(t, s2, "main"); !statesEqual(got, want) {
		t.Fatalf("recovery around a stray tmp file lost state")
	}
}

// TestCheckpointSeek: a log written past its checkpoint cadence reopens
// by seeking to the newest checkpoint — a clean close replays exactly one
// record (the close checkpoint), whatever the history depth — and every
// lazily indexed object still verifies and reads back.
func TestCheckpointSeek(t *testing.T) {
	dir := t.TempDir()
	opts := []disk.Option{disk.WithCheckpointEvery(8), disk.WithSegmentBytes(4 << 10)}
	s, l, _ := openLogStore(t, dir, opts...)
	for i := 0; i < 50; i++ {
		appendMsg(t, s, "main", "a message long enough to exercise delta chains")
	}
	if st := l.Stats(); st.Checkpoints == 0 {
		t.Fatalf("no checkpoints after 50 mutations at cadence 8: %+v", st)
	}
	want := headMsgs(t, s, "main")
	wantCommits := s.NumCommits()
	l.Close()

	s2, l2, rec := openLogStore(t, dir, opts...)
	defer l2.Close()
	if rec.Mode != disk.ModeCheckpoint {
		t.Fatalf("recovered in mode %q, want %q", rec.Mode, disk.ModeCheckpoint)
	}
	if rec.Records != 1 {
		t.Fatalf("replayed %d records after a clean close, want just the checkpoint", rec.Records)
	}
	st := l2.Stats()
	if st.RecoveryMode != disk.ModeCheckpoint {
		t.Fatalf("Stats().RecoveryMode = %q, want %q", st.RecoveryMode, disk.ModeCheckpoint)
	}
	if st.CheckpointAge != 0 {
		t.Fatalf("CheckpointAge = %d just after a checkpoint-seeded open", st.CheckpointAge)
	}
	if got := headMsgs(t, s2, "main"); !statesEqual(got, want) {
		t.Fatalf("checkpoint recovery lost state")
	}
	if n := s2.NumCommits(); n != wantCommits {
		t.Fatalf("checkpoint recovery has %d commits, want %d", n, wantCommits)
	}
	// VerifyPack walks every chain, forcing each lazy object through its
	// on-disk re-read and CRC check.
	if err := s2.VerifyPack(); err != nil {
		t.Fatalf("VerifyPack over lazily recovered objects: %v", err)
	}
	// The age ticks with new records and the log stays writable.
	appendMsg(t, s2, "main", "after seek")
	if st := l2.Stats(); st.CheckpointAge == 0 {
		t.Fatalf("CheckpointAge did not advance with new records")
	}
}

// TestCheckpointDisabled: cadence 0 turns checkpoints off; every open is
// a full segment replay.
func TestCheckpointDisabled(t *testing.T) {
	dir := t.TempDir()
	opts := []disk.Option{disk.WithCheckpointEvery(0)}
	s, l, _ := openLogStore(t, dir, opts...)
	for i := 0; i < 20; i++ {
		appendMsg(t, s, "main", "m")
	}
	if st := l.Stats(); st.Checkpoints != 0 {
		t.Fatalf("checkpoints written while disabled: %+v", st)
	}
	want := headMsgs(t, s, "main")
	l.Close()

	s2, l2, rec := openLogStore(t, dir, opts...)
	defer l2.Close()
	if rec.Mode != disk.ModeReplay {
		t.Fatalf("recovered in mode %q, want %q", rec.Mode, disk.ModeReplay)
	}
	if got := headMsgs(t, s2, "main"); !statesEqual(got, want) {
		t.Fatalf("replay recovery lost state")
	}
}

// TestFullReplayMatchesCheckpoint: WithFullReplay ignores checkpoints
// and lands on exactly the same state the seek path recovers.
func TestFullReplayMatchesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := []disk.Option{disk.WithCheckpointEvery(8), disk.WithSegmentBytes(4 << 10)}
	s, l, _ := openLogStore(t, dir, opts...)
	for i := 0; i < 40; i++ {
		appendMsg(t, s, "main", "a message long enough to exercise delta chains")
	}
	want := headMsgs(t, s, "main")
	wantHead, _ := s.HeadHash("main")
	wantCommits := s.NumCommits()
	l.Close()

	s2, l2, rec := openLogStore(t, dir, append(append([]disk.Option(nil), opts...), disk.WithFullReplay())...)
	if rec.Mode != disk.ModeReplay {
		t.Fatalf("full replay reported mode %q", rec.Mode)
	}
	if got := headMsgs(t, s2, "main"); !statesEqual(got, want) {
		t.Fatalf("full replay recovered different state")
	}
	if h, _ := s2.HeadHash("main"); h != wantHead {
		t.Fatalf("full replay head %v, want %v", h, wantHead)
	}
	if n := s2.NumCommits(); n != wantCommits {
		t.Fatalf("full replay has %d commits, want %d", n, wantCommits)
	}
	l2.Close()

	s3, l3, rec3 := openLogStore(t, dir, opts...)
	defer l3.Close()
	if rec3.Mode != disk.ModeCheckpoint {
		t.Fatalf("seek reopen reported mode %q", rec3.Mode)
	}
	if h, _ := s3.HeadHash("main"); h != wantHead {
		t.Fatalf("seek recovery head %v, want %v", h, wantHead)
	}
}

// TestClosedLog: appends after Close fail, and the owning store surfaces
// the failure instead of silently running ahead of its log.
func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	s, l, _ := openLogStore(t, dir)
	appendMsg(t, s, "main", "m")
	l.Close()
	if _, err := s.Apply("main", mlog.Op{Kind: mlog.Append, Msg: "x"}); err == nil {
		t.Fatal("Apply succeeded with a closed log")
	}
}
