// Package disk is the durable storage engine under the versioned store:
// a segmented, append-only, checksum-framed pack log, the role Git's
// packfiles and a database's write-ahead log play rolled into one. Every
// commit and every pack object (snapshot or parent-chained binary delta,
// exactly as internal/store's pack layer holds them in memory) is
// appended as a CRC-32C-framed record; branch-head moves and clock
// positions ride along as small records, so replaying the log front to
// back rebuilds the entire replica — DAG, states, branches, Lamport
// clocks — bit for bit.
//
// Durability model. Records are buffered and flushed to the OS at the
// end of every store mutation, so a crashed *process* loses nothing that
// a mutation reported durable; the fsync policy decides what a crashed
// *machine* can lose (FsyncAlways pays one fsync per mutation,
// FsyncNever leaves the window to the OS). Recovery-on-open replays all
// segments in order and truncates at the first torn or corrupted record
// — everything before it is a self-consistent prefix of the replica's
// history, because the store appends records in dependency order
// (objects before the commits that pin them, commits before the branch
// heads that reach them).
//
// Compaction. The store's GC hands the log its complete live state; the
// log writes it into a fresh segment (objects in chain order, commits in
// parent order, branch records last — the same prefix-consistency
// discipline), atomically renames it into place, and deletes the old
// segments. A crash anywhere in that sequence leaves either the old
// segments, or both old and new (replay order makes that benign:
// records are idempotent upserts), never a half-visible state.
package disk

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/store"
)

// Policy selects when the log fsyncs the active segment.
type Policy int

const (
	// FsyncNever flushes records to the OS on every mutation but never
	// calls fsync on the append path: a process crash loses nothing, a
	// machine crash can lose the OS's write-back window. Sealed and
	// compacted segments are still fsynced — the tail is the only
	// exposure.
	FsyncNever Policy = iota
	// FsyncAlways fsyncs the active segment at the end of every store
	// mutation: committed means on stable storage, at one fsync of
	// latency per operation.
	FsyncAlways
)

// String names the policy (flag values, bench output).
func (p Policy) String() string {
	switch p {
	case FsyncNever:
		return "never"
	case FsyncAlways:
		return "always"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ErrClosed is returned by appends to a closed log.
var ErrClosed = errors.New("disk: log closed")

// Options collects the log's tunables.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that would push
	// the active segment past it seals the segment and starts the next.
	SegmentBytes int64
	// Fsync is the append-path fsync policy.
	Fsync Policy
}

// DefaultOptions returns 64 MiB segments and FsyncNever.
func DefaultOptions() Options {
	return Options{SegmentBytes: 64 << 20, Fsync: FsyncNever}
}

// Option adjusts log construction.
type Option func(*Options)

// WithSegmentBytes sets the segment rotation threshold. Values below
// 4 KiB are clamped (tests use small segments to force rotation).
func WithSegmentBytes(n int64) Option {
	return func(o *Options) { o.SegmentBytes = max(n, 4<<10) }
}

// WithFsync sets the append-path fsync policy.
func WithFsync(p Policy) Option {
	return func(o *Options) { o.Fsync = p }
}

// Stats is a snapshot of the log's accounting.
type Stats struct {
	// Segments is the number of live segment files; Bytes their total
	// size, including buffered-but-unflushed appends.
	Segments int
	Bytes    int64
	// Records counts records appended since open; RecoveredRecords the
	// records replayed by Open.
	Records          int64
	RecoveredRecords int64
	// TruncatedBytes and DroppedSegments describe what recovery cut: the
	// torn or corrupt suffix discarded from the first bad segment and
	// the whole segments dropped after it.
	TruncatedBytes  int64
	DroppedSegments int
	// Fsyncs counts fsync calls on the append path; Compactions counts
	// completed log rewrites.
	Fsyncs      int64
	Compactions int64
}

// Recovered is what Open replayed from an existing directory: the
// store-facing state plus the log's own metadata and accounting.
type Recovered struct {
	State store.RecoveredState
	// Meta is the log's key/value metadata (SetMeta); the replica layer
	// records the object's datatype here and refuses to reopen a log
	// under a different type.
	Meta map[string]string
	// Records is the number of records that replayed cleanly.
	Records int64
	// TruncatedBytes is the size of the torn/corrupt suffix discarded
	// from the first bad segment; DroppedSegments counts whole segments
	// discarded after it.
	TruncatedBytes  int64
	DroppedSegments int
}

func newRecovered() *Recovered {
	return &Recovered{
		State: store.RecoveredState{
			Commits:  make(map[store.Hash]store.Commit),
			Objects:  make(map[store.Hash]store.ObjectRecord),
			Branches: make(map[string]store.BranchRecord),
		},
		Meta: make(map[string]string),
	}
}

// Log is one object's segmented pack log. It implements store.Persister;
// all methods are safe for concurrent use, though in practice the owning
// store serializes them behind its write lock.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	seq      int   // active segment number
	size     int64 // active segment size including buffered bytes
	sealed   int64 // total bytes across sealed segments
	nseal    int   // sealed segment count
	stats    Stats
	meta     map[string]string
	closed   bool
	closeErr error
}

// Open opens (creating if needed) the pack log in dir and replays it.
// The returned Recovered holds everything the log contained up to the
// first torn or corrupted record; the suffix past that point has been
// truncated on disk (and any later segments deleted), so a second Open
// of the same directory replays identically. Stray temporary files from
// an interrupted compaction are removed.
func Open(dir string, opts ...Option) (*Log, *Recovered, error) {
	o := DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, nil, err
			}
		}
	}

	rec := newRecovered()
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: o, meta: rec.Meta}

	live := seqs[:0]
	for i, seq := range seqs {
		path := filepath.Join(dir, segName(seq))
		good, torn, err := scanSegment(path, rec)
		if err != nil {
			return nil, nil, fmt.Errorf("disk: replaying %s: %w", path, err)
		}
		if !torn {
			live = append(live, seq)
			l.sealed += good
			continue
		}
		// Torn or corrupt: keep the clean prefix of this segment, drop
		// the rest of it and every later segment — recovery lands on a
		// prefix of the record stream.
		info, err := os.Stat(path)
		if err != nil {
			return nil, nil, err
		}
		rec.TruncatedBytes += info.Size() - good
		if good < int64(len(segMagic)) {
			// Nothing usable (bad or missing header): remove the file.
			if err := os.Remove(path); err != nil {
				return nil, nil, err
			}
		} else {
			if err := os.Truncate(path, good); err != nil {
				return nil, nil, err
			}
			live = append(live, seq)
			l.sealed += good
		}
		for _, later := range seqs[i+1:] {
			laterPath := filepath.Join(dir, segName(later))
			if info, err := os.Stat(laterPath); err == nil {
				rec.TruncatedBytes += info.Size()
			}
			if err := os.Remove(laterPath); err != nil {
				return nil, nil, err
			}
			rec.DroppedSegments++
		}
		if err := syncDir(dir); err != nil {
			return nil, nil, err
		}
		break
	}

	// The last surviving segment becomes the active one; with none, a
	// fresh segment 1 is created.
	if len(live) == 0 {
		if err := l.startSegment(1); err != nil {
			return nil, nil, err
		}
		if err := syncDir(dir); err != nil {
			l.f.Close()
			return nil, nil, err
		}
	} else {
		seq := live[len(live)-1]
		path := filepath.Join(dir, segName(seq))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f, l.w, l.seq, l.size = f, newSegWriter(f), seq, info.Size()
		l.sealed -= info.Size()
		l.nseal = len(live) - 1
	}
	rec.State.NextID = max(rec.State.NextID, maxBranchReplica(rec)+1)
	l.stats.RecoveredRecords = rec.Records
	l.stats.TruncatedBytes = rec.TruncatedBytes
	l.stats.DroppedSegments = rec.DroppedSegments
	return l, rec, nil
}

func maxBranchReplica(rec *Recovered) int {
	maxID := -1
	for _, b := range rec.State.Branches {
		if b.Replica > maxID {
			maxID = b.Replica
		}
	}
	return maxID
}

// startSegment creates and activates segment seq.
func (l *Log) startSegment(seq int) error {
	f, err := createSegment(l.dir, seq)
	if err != nil {
		return err
	}
	l.f, l.w, l.seq, l.size = f, newSegWriter(f), seq, int64(len(segMagic))
	return nil
}

// append frames and writes one record, rotating first if the active
// segment is full.
func (l *Log) append(record []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(record)
}

func (l *Log) appendLocked(record []byte) error {
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return errors.New("disk: log has no active segment (failed compaction)")
	}
	// Refuse records recovery would reject: writing one would make the
	// next open treat it as corruption and truncate everything after it.
	// Surfacing the error here makes the owning store fail-stop instead.
	if len(record) > maxRecordBytes {
		return fmt.Errorf("disk: %d-byte record exceeds the %d replay limit", len(record), maxRecordBytes)
	}
	framed := appendFrame(nil, record)
	if l.size > int64(len(segMagic)) && l.size+int64(len(framed)) > l.opts.SegmentBytes {
		if err := l.sealLocked(); err != nil {
			return err
		}
		if err := l.startSegment(l.seq + 1); err != nil {
			return err
		}
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	if _, err := l.w.Write(framed); err != nil {
		return err
	}
	l.size += int64(len(framed))
	l.stats.Records++
	return nil
}

// sealLocked flushes, fsyncs and closes the active segment. Sealed
// segments are always fsynced, whatever the append-path policy: the
// exposure window of FsyncNever is only ever the active tail.
func (l *Log) sealLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.sealed += l.size
	l.nseal++
	l.f, l.w = nil, nil
	return nil
}

// AppendCommit implements store.Persister.
func (l *Log) AppendCommit(h store.Hash, c store.Commit) error {
	return l.append(encodeCommit(h, c))
}

// AppendObject implements store.Persister.
func (l *Log) AppendObject(h store.Hash, o store.ObjectRecord) error {
	return l.append(encodeObject(h, o))
}

// AppendBranch implements store.Persister.
func (l *Log) AppendBranch(name string, b store.BranchRecord) error {
	return l.append(encodeBranch(name, b))
}

// AppendBranchDelete implements store.Persister.
func (l *Log) AppendBranchDelete(name string) error {
	return l.append(encodeBranchDelete(name))
}

// AppendNextID implements store.Persister.
func (l *Log) AppendNextID(id int) error {
	return l.append(encodeNextID(id))
}

// SetMeta records a key/value pair describing the log (e.g. the object's
// datatype). Durable immediately.
func (l *Log) SetMeta(key, value string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendLocked(encodeMeta(key, value)); err != nil {
		return err
	}
	l.meta[key] = value
	return l.flushLocked()
}

// Meta returns the log's metadata as recovered and updated this session.
func (l *Log) Meta(key string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.meta[key]
	return v, ok
}

// Flush implements store.Persister: push buffered records to the OS and,
// under FsyncAlways, to stable storage.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return errors.New("disk: log has no active segment (failed compaction)")
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.opts.Fsync == FsyncAlways {
		l.stats.Fsyncs++
		return l.f.Sync()
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return errors.New("disk: log has no active segment (failed compaction)")
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.stats.Fsyncs++
	return l.f.Sync()
}

// Close flushes, fsyncs and closes the log. Further appends return
// ErrClosed; Close is idempotent, and repeated calls keep returning the
// first call's error — a failed final flush (full disk at shutdown) is
// never masked by a later defer-stacked Close. The file descriptor is
// released even when the flush fails.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.closeErr
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.w.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.sealed += l.size
	l.nseal++
	l.f, l.w, l.size = nil, nil, 0
	l.closeErr = err
	return err
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Stats returns a snapshot of the log's accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	if l.closed {
		st.Segments, st.Bytes = l.nseal, l.sealed
	} else {
		st.Segments, st.Bytes = l.nseal+1, l.sealed+l.size
	}
	return st
}

var _ store.Persister = (*Log)(nil)
