// Package disk is the durable storage engine under the versioned store:
// a segmented, append-only, checksum-framed pack log, the role Git's
// packfiles and a database's write-ahead log play rolled into one. Every
// commit and every pack object (snapshot or parent-chained binary delta,
// exactly as internal/store's pack layer holds them in memory) is
// appended as a CRC-32C-framed record; branch-head moves and clock
// positions ride along as small records, so replaying the log front to
// back rebuilds the entire replica — DAG, states, branches, Lamport
// clocks — bit for bit.
//
// Durability model. Records are buffered and flushed to the OS at the
// end of every store mutation, so a crashed *process* loses nothing that
// a mutation reported durable; the fsync policy decides what a crashed
// *machine* can lose (FsyncAlways pays one fsync per mutation,
// FsyncNever leaves the window to the OS). Recovery-on-open replays all
// segments in order and truncates at the first torn or corrupted record
// — everything before it is a self-consistent prefix of the replica's
// history, because the store appends records in dependency order
// (objects before the commits that pin them, commits before the branch
// heads that reach them).
//
// Compaction. The store's GC hands the log its complete live state; the
// log writes it into a fresh segment (objects in chain order, commits in
// parent order, branch records last — the same prefix-consistency
// discipline), atomically renames it into place, and deletes the old
// segments. A crash anywhere in that sequence leaves either the old
// segments, or both old and new (replay order makes that benign:
// records are idempotent upserts), never a half-visible state.
package disk

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Policy selects when the log fsyncs the active segment.
type Policy int

const (
	// FsyncNever flushes records to the OS on every mutation but never
	// calls fsync on the append path: a process crash loses nothing, a
	// machine crash can lose the OS's write-back window. Sealed and
	// compacted segments are still fsynced — the tail is the only
	// exposure.
	FsyncNever Policy = iota
	// FsyncAlways fsyncs the active segment at the end of every store
	// mutation: committed means on stable storage, at one fsync of
	// latency per operation.
	FsyncAlways
)

// String names the policy (flag values, bench output).
func (p Policy) String() string {
	switch p {
	case FsyncNever:
		return "never"
	case FsyncAlways:
		return "always"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ErrClosed is returned by appends to a closed log.
var ErrClosed = errors.New("disk: log closed")

// Options collects the log's tunables.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that would push
	// the active segment past it seals the segment and starts the next.
	SegmentBytes int64
	// Fsync is the append-path fsync policy.
	Fsync Policy
	// CheckpointEvery is the checkpoint cadence in mutations (Flush
	// calls): once that many mutations accumulate since the last
	// checkpoint, the next Flush seals the active segment and writes an
	// index checkpoint at the head of a fresh one. Checkpoints are also
	// written after every compaction and on clean Close. Zero or negative
	// disables checkpointing entirely.
	CheckpointEvery int
	// FullReplay makes Open ignore checkpoints and replay every segment
	// front to back — the recovery-of-last-resort mode the fallback
	// ladder reopens with when a checkpoint-seeded open fails
	// verification.
	FullReplay bool
	// Obs, when non-nil, receives the log's metrics (append/fsync
	// latency, rotations, checkpoints, recovery — see obs.go).
	Obs *obs.Registry
}

// DefaultOptions returns 64 MiB segments, FsyncNever, and a checkpoint
// every 1024 mutations.
func DefaultOptions() Options {
	return Options{SegmentBytes: 64 << 20, Fsync: FsyncNever, CheckpointEvery: 1024}
}

// Option adjusts log construction.
type Option func(*Options)

// WithSegmentBytes sets the segment rotation threshold. Values below
// 4 KiB are clamped (tests use small segments to force rotation).
func WithSegmentBytes(n int64) Option {
	return func(o *Options) { o.SegmentBytes = max(n, 4<<10) }
}

// WithFsync sets the append-path fsync policy.
func WithFsync(p Policy) Option {
	return func(o *Options) { o.Fsync = p }
}

// WithCheckpointEvery sets the checkpoint cadence in mutations; zero or
// negative disables checkpointing (every open replays segments). The
// cadence is a floor, not an exact period: on deep histories checkpoints
// self-throttle until the un-checkpointed suffix is a quarter of the
// index, keeping total checkpoint bytes linear in the log (see
// maybeCheckpointLocked). Clean closes always checkpoint.
func WithCheckpointEvery(n int) Option {
	return func(o *Options) { o.CheckpointEvery = n }
}

// WithFullReplay makes Open ignore checkpoints and replay every segment.
func WithFullReplay() Option {
	return func(o *Options) { o.FullReplay = true }
}

// WithObs attaches an observability registry: the log registers its
// latency histograms and rotation/checkpoint/recovery counters on it.
// A nil registry keeps instrumentation disabled.
func WithObs(reg *obs.Registry) Option {
	return func(o *Options) { o.Obs = reg }
}

// Stats is a snapshot of the log's accounting.
type Stats struct {
	// Segments is the number of live segment files; Bytes their total
	// size, including buffered-but-unflushed appends.
	Segments int
	Bytes    int64
	// Records counts records appended since open; RecoveredRecords the
	// records replayed by Open.
	Records          int64
	RecoveredRecords int64
	// TruncatedBytes and DroppedSegments describe what recovery cut: the
	// torn or corrupt suffix discarded from the first bad segment and
	// the whole segments dropped after it.
	TruncatedBytes  int64
	DroppedSegments int
	// Fsyncs counts fsync calls on the append path; Compactions counts
	// completed log rewrites.
	Fsyncs      int64
	Compactions int64
	// Checkpoints counts checkpoint records written this session;
	// CheckpointAge is the number of records appended (or replayed) since
	// the last checkpoint — the suffix the next open must replay.
	Checkpoints   int64
	CheckpointAge int64
	// RecoveryMode reports how Open rebuilt the state: "checkpoint"
	// (seeked to an index snapshot), "replay" (scanned segments), or
	// "cold" (nothing to recover).
	RecoveryMode string
}

// Recovered is what Open replayed from an existing directory: the
// store-facing state plus the log's own metadata and accounting.
type Recovered struct {
	State store.RecoveredState
	// Meta is the log's key/value metadata (SetMeta); the replica layer
	// records the object's datatype here and refuses to reopen a log
	// under a different type.
	Meta map[string]string
	// Records is the number of records that replayed cleanly.
	Records int64
	// TruncatedBytes is the size of the torn/corrupt suffix discarded
	// from the first bad segment; DroppedSegments counts whole segments
	// discarded after it.
	TruncatedBytes  int64
	DroppedSegments int
	// Mode is how the state was rebuilt: ModeCheckpoint, ModeReplay or
	// ModeCold.
	Mode string
}

// Recovery modes, as reported by Recovered.Mode and Stats.RecoveryMode.
const (
	// ModeCheckpoint: Open seeked to the newest valid checkpoint and
	// replayed only the records after it.
	ModeCheckpoint = "checkpoint"
	// ModeReplay: no usable checkpoint; every segment was scanned.
	ModeReplay = "replay"
	// ModeCold: the directory held no records at all.
	ModeCold = "cold"
)

func newRecovered() *Recovered {
	return &Recovered{
		State: store.RecoveredState{
			Commits:  make(map[store.Hash]store.Commit),
			Objects:  make(map[store.Hash]store.ObjectRecord),
			Branches: make(map[string]store.BranchRecord),
		},
		Meta: make(map[string]string),
	}
}

// Log is one object's segmented pack log. It implements store.Persister;
// all methods are safe for concurrent use, though in practice the owning
// store serializes them behind its write lock.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	seq      int   // active segment number
	size     int64 // active segment size including buffered bytes
	sealed   int64 // total bytes across sealed segments
	nseal    int   // sealed segment count
	stats    Stats
	meta     map[string]string
	closed   bool
	closeErr error

	// shadow mirrors the durable contents in index form so a checkpoint
	// can be serialized at any moment (checkpoint.go); mutsSince and
	// sinceCkpt drive the checkpoint cadence and the CheckpointAge stat;
	// mode is how the last Open rebuilt the state.
	shadow    shadowState
	mutsSince int
	sinceCkpt int64
	mode      string

	// metrics is the optional instrumentation (obs.go); nil without a
	// registry.
	metrics *diskMetrics
}

// Open opens (creating if needed) the pack log in dir and recovers it.
// Recovery seeks: the newest segment whose head record is a valid
// checkpoint supplies the full index (commits, object locations — their
// bytes stay on disk behind lazy loaders — branches, metadata), and only
// the records after it replay, so open time is flat in history depth.
// With no usable checkpoint (or WithFullReplay), every segment is
// scanned — concurrently, one goroutine per segment bounded by
// GOMAXPROCS — and applied in order. Either way the returned Recovered
// holds everything the log contained up to the first torn or corrupted
// record; the suffix past that point has been truncated on disk (and any
// later segments deleted), so a second Open of the same directory
// recovers identically. Stray temporary files from an interrupted
// compaction or checkpoint are removed.
func Open(dir string, opts ...Option) (*Log, *Recovered, error) {
	o := DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, nil, err
			}
		}
	}

	openStart := time.Now()
	rec := newRecovered()
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: o, meta: rec.Meta, shadow: newShadow(), metrics: newDiskMetrics(o.Obs)}

	// Checkpoint seek: probe segment heads newest-first (one record read
	// each); the first valid checkpoint supplies the index, and scanning
	// starts at that segment, just past the checkpoint's frame.
	start, ckEnd := 0, int64(0)
	var ck *checkpoint
	if !o.FullReplay {
		for i := len(seqs) - 1; i >= 0; i-- {
			if c, end, ok := probeCheckpoint(filepath.Join(dir, segName(seqs[i]))); ok {
				ck, ckEnd, start = c, end, i
				break
			}
		}
	}
	var keep []int
	if ck != nil {
		l.attachCheckpoint(rec, ck)
		rec.Records++ // the checkpoint record itself
		// Segments before the checkpoint are never scanned; they stay
		// live as the lazy loaders' backing store.
		for _, seq := range seqs[:start] {
			info, err := os.Stat(filepath.Join(dir, segName(seq)))
			if err != nil {
				return nil, nil, err
			}
			keep = append(keep, seq)
			l.sealed += info.Size()
		}
	}

	// Scan the remaining segments concurrently, then apply their records
	// in sequence order — records are idempotent upserts, but prefix
	// consistency (and the torn-tail cut) is defined by append order.
	scans := seqs[start:]
	results := make([]segScan, len(scans))
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for i, seq := range scans {
		from := int64(0)
		if ck != nil && i == 0 {
			from = ckEnd
		}
		wg.Add(1)
		go func(i, seq int, from int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = scanSegmentOps(filepath.Join(dir, segName(seq)), seq, from)
		}(i, seq, from)
	}
	wg.Wait()

	for i, res := range results {
		path := filepath.Join(dir, segName(res.seq))
		if res.err != nil {
			return nil, nil, fmt.Errorf("disk: replaying %s: %w", path, res.err)
		}
		for j := range res.ops {
			l.applyOp(rec, res.seq, &res.ops[j])
		}
		if !res.torn {
			keep = append(keep, res.seq)
			l.sealed += res.good
			continue
		}
		// Torn or corrupt: keep the clean prefix of this segment, drop
		// the rest of it and every later segment — recovery lands on a
		// prefix of the record stream.
		info, err := os.Stat(path)
		if err != nil {
			return nil, nil, err
		}
		rec.TruncatedBytes += info.Size() - res.good
		if res.good < int64(len(segMagic)) {
			// Nothing usable (bad or missing header): remove the file.
			if err := os.Remove(path); err != nil {
				return nil, nil, err
			}
		} else {
			if err := os.Truncate(path, res.good); err != nil {
				return nil, nil, err
			}
			keep = append(keep, res.seq)
			l.sealed += res.good
		}
		for _, later := range results[i+1:] {
			laterPath := filepath.Join(dir, segName(later.seq))
			if info, err := os.Stat(laterPath); err == nil {
				rec.TruncatedBytes += info.Size()
			}
			if err := os.Remove(laterPath); err != nil {
				return nil, nil, err
			}
			rec.DroppedSegments++
		}
		if err := syncDir(dir); err != nil {
			return nil, nil, err
		}
		break
	}

	// The last surviving segment becomes the active one; with none, a
	// fresh segment 1 is created.
	if len(keep) == 0 {
		if err := l.startSegment(1); err != nil {
			return nil, nil, err
		}
		if err := syncDir(dir); err != nil {
			l.f.Close()
			return nil, nil, err
		}
	} else {
		seq := keep[len(keep)-1]
		path := filepath.Join(dir, segName(seq))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f, l.w, l.seq, l.size = f, newSegWriter(f), seq, info.Size()
		l.sealed -= info.Size()
		l.nseal = len(keep) - 1
	}
	rec.State.NextID = max(rec.State.NextID, maxBranchReplica(rec)+1)
	l.shadow.nextID = rec.State.NextID
	switch {
	case ck != nil:
		l.mode = ModeCheckpoint
	case rec.Records > 0:
		l.mode = ModeReplay
	default:
		l.mode = ModeCold
	}
	rec.Mode = l.mode
	l.stats.RecoveredRecords = rec.Records
	l.stats.TruncatedBytes = rec.TruncatedBytes
	l.stats.DroppedSegments = rec.DroppedSegments
	l.metrics.recovered(l.mode, time.Since(openStart).Nanoseconds())
	return l, rec, nil
}

// applyOp replays one decoded record into rec and the shadow index.
func (l *Log) applyOp(rec *Recovered, seq int, op *scanOp) {
	switch op.kind {
	case recMeta:
		rec.Meta[op.name] = op.value
	case recCommit:
		rec.State.Commits[op.hash] = op.commit
		l.shadow.commits[op.hash] = op.commit
	case recObject:
		rec.State.Objects[op.hash] = op.object
		l.shadow.objects[op.hash] = objLoc{
			base: op.object.Base, delta: op.object.Delta, size: op.object.Size,
			depth: op.object.Depth, stored: len(op.object.Data), seg: seq, off: op.off,
		}
	case recBranch:
		rec.State.Branches[op.name] = op.branch
		l.shadow.branches[op.name] = op.branch
	case recBranchDel:
		delete(rec.State.Branches, op.name)
		delete(l.shadow.branches, op.name)
	case recNextID:
		if op.id > rec.State.NextID {
			rec.State.NextID = op.id
		}
		if op.id > l.shadow.nextID {
			l.shadow.nextID = op.id
		}
	case recCheckpoint:
		// Only reachable during a full replay — the seek path consumes
		// its checkpoint before scanning. Install-if-absent semantics
		// make it a no-op for everything the scan already supplied.
		l.mergeCheckpoint(rec, op.ckpt)
	}
	rec.Records++
	if op.kind == recCheckpoint {
		l.sinceCkpt = 0
	} else {
		l.sinceCkpt++
	}
}

func maxBranchReplica(rec *Recovered) int {
	maxID := -1
	for _, b := range rec.State.Branches {
		if b.Replica > maxID {
			maxID = b.Replica
		}
	}
	return maxID
}

// startSegment creates and activates segment seq.
func (l *Log) startSegment(seq int) error {
	f, err := createSegment(l.dir, seq)
	if err != nil {
		return err
	}
	l.f, l.w, l.seq, l.size = f, newSegWriter(f), seq, int64(len(segMagic))
	return nil
}

// appendLocked frames and writes one record, rotating first if the
// active segment is full. It returns the segment and offset the record's
// frame landed at — the coordinates the shadow index (and so every
// checkpoint) records for lazy object loads.
func (l *Log) appendLocked(record []byte) (seg int, off int64, err error) {
	if l.closed {
		return 0, 0, ErrClosed
	}
	if l.f == nil {
		return 0, 0, errors.New("disk: log has no active segment (failed compaction)")
	}
	if err := checkRecordSize(record); err != nil {
		return 0, 0, err
	}
	if m := l.metrics; m != nil {
		start := time.Now()
		defer func() { m.appendNs.Observe(time.Since(start).Nanoseconds()) }()
	}
	framed := appendFrame(nil, record)
	if l.size > int64(len(segMagic)) && l.size+int64(len(framed)) > l.opts.SegmentBytes {
		if err := l.sealLocked(); err != nil {
			return 0, 0, err
		}
		if err := l.startSegment(l.seq + 1); err != nil {
			return 0, 0, err
		}
		if err := syncDir(l.dir); err != nil {
			return 0, 0, err
		}
		l.metrics.rotated()
	}
	seg, off = l.seq, l.size
	if _, err := l.w.Write(framed); err != nil {
		return 0, 0, err
	}
	l.size += int64(len(framed))
	l.stats.Records++
	l.sinceCkpt++
	return seg, off, nil
}

// sealLocked flushes, fsyncs and closes the active segment. Sealed
// segments are always fsynced, whatever the append-path policy: the
// exposure window of FsyncNever is only ever the active tail.
func (l *Log) sealLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.sealed += l.size
	l.nseal++
	l.f, l.w = nil, nil
	return nil
}

// AppendCommit implements store.Persister.
func (l *Log) AppendCommit(h store.Hash, c store.Commit) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, _, err := l.appendLocked(encodeCommit(h, c)); err != nil {
		return err
	}
	l.shadow.commits[h] = c
	return nil
}

// AppendObject implements store.Persister.
func (l *Log) AppendObject(h store.Hash, o store.ObjectRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	seg, off, err := l.appendLocked(encodeObject(h, o))
	if err != nil {
		return err
	}
	stored := len(o.Data)
	if o.Data == nil {
		stored = o.Stored
	}
	l.shadow.objects[h] = objLoc{
		base: o.Base, delta: o.Delta, size: o.Size, depth: o.Depth,
		stored: stored, seg: seg, off: off,
	}
	return nil
}

// AppendBranch implements store.Persister.
func (l *Log) AppendBranch(name string, b store.BranchRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, _, err := l.appendLocked(encodeBranch(name, b)); err != nil {
		return err
	}
	l.shadow.branches[name] = b
	return nil
}

// AppendBranchDelete implements store.Persister.
func (l *Log) AppendBranchDelete(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, _, err := l.appendLocked(encodeBranchDelete(name)); err != nil {
		return err
	}
	delete(l.shadow.branches, name)
	return nil
}

// AppendNextID implements store.Persister.
func (l *Log) AppendNextID(id int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, _, err := l.appendLocked(encodeNextID(id)); err != nil {
		return err
	}
	if id > l.shadow.nextID {
		l.shadow.nextID = id
	}
	return nil
}

// SetMeta records a key/value pair describing the log (e.g. the object's
// datatype). Durable immediately.
func (l *Log) SetMeta(key, value string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, _, err := l.appendLocked(encodeMeta(key, value)); err != nil {
		return err
	}
	l.meta[key] = value
	return l.flushLocked()
}

// Meta returns the log's metadata as recovered and updated this session.
func (l *Log) Meta(key string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.meta[key]
	return v, ok
}

// Flush implements store.Persister: push buffered records to the OS and,
// under FsyncAlways, to stable storage. Flush marks the end of one store
// mutation, so it is also the checkpoint cadence's clock: every
// CheckpointEvery mutations, the batch lands in a fresh segment headed
// by an index checkpoint.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return errors.New("disk: log has no active segment (failed compaction)")
	}
	l.mutsSince++
	if err := l.maybeCheckpointLocked(); err != nil {
		return err
	}
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return errors.New("disk: log has no active segment (failed compaction)")
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.opts.Fsync == FsyncAlways {
		l.stats.Fsyncs++
		return l.timedSync()
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return errors.New("disk: log has no active segment (failed compaction)")
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.stats.Fsyncs++
	return l.timedSync()
}

// timedSync fsyncs the active segment, feeding the fsync-latency
// histogram when instrumentation is attached.
func (l *Log) timedSync() error {
	m := l.metrics
	if m == nil {
		return l.f.Sync()
	}
	start := time.Now()
	err := l.f.Sync()
	m.fsyncNs.Observe(time.Since(start).Nanoseconds())
	return err
}

// Close flushes, fsyncs and closes the log. Further appends return
// ErrClosed; Close is idempotent, and repeated calls keep returning the
// first call's error — a failed final flush (full disk at shutdown) is
// never masked by a later defer-stacked Close. The file descriptor is
// released even when the flush fails.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.closeErr
	}
	// A clean close checkpoints first when anything accumulated since the
	// last one, so the next open seeks instead of replaying — an orderly
	// restart recovers in flat time regardless of session length. Errors
	// fall through to the normal close path and are reported once.
	var ckErr error
	if l.f != nil && l.opts.CheckpointEvery > 0 && l.sinceCkpt > 0 && len(l.shadow.branches) > 0 {
		ckErr = l.checkpointLocked()
	}
	l.closed = true
	if l.f == nil {
		l.closeErr = ckErr
		return ckErr
	}
	err := l.w.Flush()
	if err == nil {
		err = ckErr
	}
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.sealed += l.size
	l.nseal++
	l.f, l.w, l.size = nil, nil, 0
	l.closeErr = err
	return err
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Stats returns a snapshot of the log's accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	if l.closed {
		st.Segments, st.Bytes = l.nseal, l.sealed
	} else {
		st.Segments, st.Bytes = l.nseal+1, l.sealed+l.size
	}
	st.CheckpointAge = l.sinceCkpt
	st.RecoveryMode = l.mode
	return st
}

var _ store.Persister = (*Log)(nil)
