package disk

// Record codec: how one durable mutation is serialized inside a
// segment. A record's payload is a one-byte kind tag followed by a body
// in the wire package's fixed-width/length-prefixed encoding (the same
// Writer/Reader the sync protocol uses, so the on-disk and on-wire
// vocabularies stay one idiom). Framing — length prefix and checksum —
// is segment.go's job; this file only maps payloads to and from the
// store's persistence records.

import (
	"fmt"

	"repro/internal/store"
	"repro/internal/wire"
)

// Record kinds.
const (
	// recMeta is a key/value pair describing the log itself (datatype,
	// owning object, format hints). Written at creation, replayed into
	// Recovered.Meta.
	recMeta byte = 1
	// recCommit is one commit: hash, parents, state hash, generation,
	// timestamp.
	recCommit byte = 2
	// recObject is one pack object in its stored form: snapshot bytes or
	// a patch plus its chain base, with the recorded full size and depth.
	recObject byte = 3
	// recBranch is a branch-head move: name, head hash, and the branch
	// clock's replica id and counter.
	recBranch byte = 4
	// recBranchDel removes a branch.
	recBranchDel byte = 5
	// recNextID advances the replica-id allocator floor.
	recNextID byte = 6
	// recCheckpoint is a full index snapshot — commits, object locations,
	// branches, metadata, allocator floor — written as the first record of
	// a fresh segment so Open can seek past history (checkpoint.go).
	recCheckpoint byte = 7
)

func encodeMeta(key, value string) []byte {
	var w wire.Writer
	w.PutString(key)
	w.PutString(value)
	return frame(recMeta, w.Bytes())
}

func encodeCommit(h store.Hash, c store.Commit) []byte {
	var w wire.Writer
	w.PutHash(h)
	w.PutLen(len(c.Parents))
	for _, p := range c.Parents {
		w.PutHash(p)
	}
	w.PutHash(c.State)
	w.PutInt64(int64(c.Gen))
	w.PutTimestamp(c.Time)
	return frame(recCommit, w.Bytes())
}

func encodeObject(h store.Hash, o store.ObjectRecord) []byte {
	var w wire.Writer
	w.PutHash(h)
	w.PutBool(o.Delta)
	w.PutHash(o.Base)
	w.PutInt64(int64(o.Size))
	w.PutInt64(int64(o.Depth))
	w.PutBytes(o.Data)
	return frame(recObject, w.Bytes())
}

func encodeBranch(name string, b store.BranchRecord) []byte {
	var w wire.Writer
	w.PutString(name)
	w.PutHash(b.Head)
	w.PutInt64(int64(b.Replica))
	w.PutInt64(b.Clock)
	return frame(recBranch, w.Bytes())
}

func encodeBranchDelete(name string) []byte {
	var w wire.Writer
	w.PutString(name)
	return frame(recBranchDel, w.Bytes())
}

func encodeNextID(id int) []byte {
	var w wire.Writer
	w.PutInt64(int64(id))
	return frame(recNextID, w.Bytes())
}

// frame prepends the kind tag, producing the record payload the segment
// framing checksums and length-prefixes.
func frame(kind byte, body []byte) []byte {
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, kind)
	return append(payload, body...)
}

// scanOp is one decoded record, tagged with the offset its frame starts
// at within its segment — replay applies ops in order, checkpoints index
// object ops by that position. Only the fields for the record's kind are
// populated.
type scanOp struct {
	kind   byte
	off    int64
	hash   store.Hash
	commit store.Commit
	object store.ObjectRecord
	name   string
	value  string
	branch store.BranchRecord
	id     int
	ckpt   *checkpoint
}

// decodeRecord parses one checksummed payload into a scanOp. Errors mean
// the payload does not parse as its declared kind — with the checksum
// already verified that indicates a format mismatch, which recovery
// treats exactly like corruption: truncate here. Decoded fields never
// alias payload (the wire reader copies), so the caller may reuse its
// buffer.
func decodeRecord(payload []byte, off int64) (scanOp, error) {
	op := scanOp{off: off}
	if len(payload) == 0 {
		return op, fmt.Errorf("empty record")
	}
	op.kind = payload[0]
	body := payload[1:]
	r := wire.NewReader(body)
	switch op.kind {
	case recMeta:
		op.name = r.String()
		op.value = r.String()
	case recCommit:
		op.hash = r.Hash()
		np := r.Len(len(store.Hash{}))
		for i := 0; i < np; i++ {
			op.commit.Parents = append(op.commit.Parents, r.Hash())
		}
		op.commit.State = r.Hash()
		op.commit.Gen = int(r.Int64())
		op.commit.Time = r.Timestamp()
	case recObject:
		op.hash = r.Hash()
		op.object.Delta = r.Bool()
		op.object.Base = r.Hash()
		op.object.Size = int(r.Int64())
		op.object.Depth = int(r.Int64())
		op.object.Data = r.Bytes()
	case recBranch:
		op.name = r.String()
		op.branch.Head = r.Hash()
		op.branch.Replica = int(r.Int64())
		op.branch.Clock = r.Int64()
	case recBranchDel:
		op.name = r.String()
	case recNextID:
		op.id = int(r.Int64())
	case recCheckpoint:
		// decodeCheckpoint adopts its index sections by reference, and the
		// scan loop reuses its payload buffer across records — this is the
		// one kind that must copy.
		ck, err := decodeCheckpoint(append([]byte(nil), body...))
		if err != nil {
			return op, err
		}
		op.ckpt = ck
		return op, nil
	default:
		return op, fmt.Errorf("unknown record kind %d", op.kind)
	}
	if err := r.Close(); err != nil {
		return op, err
	}
	return op, nil
}
