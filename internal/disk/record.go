package disk

// Record codec: how one durable mutation is serialized inside a
// segment. A record's payload is a one-byte kind tag followed by a body
// in the wire package's fixed-width/length-prefixed encoding (the same
// Writer/Reader the sync protocol uses, so the on-disk and on-wire
// vocabularies stay one idiom). Framing — length prefix and checksum —
// is segment.go's job; this file only maps payloads to and from the
// store's persistence records.

import (
	"fmt"

	"repro/internal/store"
	"repro/internal/wire"
)

// Record kinds.
const (
	// recMeta is a key/value pair describing the log itself (datatype,
	// owning object, format hints). Written at creation, replayed into
	// Recovered.Meta.
	recMeta byte = 1
	// recCommit is one commit: hash, parents, state hash, generation,
	// timestamp.
	recCommit byte = 2
	// recObject is one pack object in its stored form: snapshot bytes or
	// a patch plus its chain base, with the recorded full size and depth.
	recObject byte = 3
	// recBranch is a branch-head move: name, head hash, and the branch
	// clock's replica id and counter.
	recBranch byte = 4
	// recBranchDel removes a branch.
	recBranchDel byte = 5
	// recNextID advances the replica-id allocator floor.
	recNextID byte = 6
)

func encodeMeta(key, value string) []byte {
	var w wire.Writer
	w.PutString(key)
	w.PutString(value)
	return frame(recMeta, w.Bytes())
}

func encodeCommit(h store.Hash, c store.Commit) []byte {
	var w wire.Writer
	w.PutHash(h)
	w.PutLen(len(c.Parents))
	for _, p := range c.Parents {
		w.PutHash(p)
	}
	w.PutHash(c.State)
	w.PutInt64(int64(c.Gen))
	w.PutTimestamp(c.Time)
	return frame(recCommit, w.Bytes())
}

func encodeObject(h store.Hash, o store.ObjectRecord) []byte {
	var w wire.Writer
	w.PutHash(h)
	w.PutBool(o.Delta)
	w.PutHash(o.Base)
	w.PutInt64(int64(o.Size))
	w.PutInt64(int64(o.Depth))
	w.PutBytes(o.Data)
	return frame(recObject, w.Bytes())
}

func encodeBranch(name string, b store.BranchRecord) []byte {
	var w wire.Writer
	w.PutString(name)
	w.PutHash(b.Head)
	w.PutInt64(int64(b.Replica))
	w.PutInt64(b.Clock)
	return frame(recBranch, w.Bytes())
}

func encodeBranchDelete(name string) []byte {
	var w wire.Writer
	w.PutString(name)
	return frame(recBranchDel, w.Bytes())
}

func encodeNextID(id int) []byte {
	var w wire.Writer
	w.PutInt64(int64(id))
	return frame(recNextID, w.Bytes())
}

// frame prepends the kind tag, producing the record payload the segment
// framing checksums and length-prefixes.
func frame(kind byte, body []byte) []byte {
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, kind)
	return append(payload, body...)
}

// applyRecord replays one checksummed payload into rec. Errors mean the
// payload does not parse as its declared kind — with the checksum
// already verified that indicates a format mismatch, which recovery
// treats exactly like corruption: truncate here.
func applyRecord(rec *Recovered, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty record")
	}
	kind, body := payload[0], payload[1:]
	r := wire.NewReader(body)
	switch kind {
	case recMeta:
		key := r.String()
		value := r.String()
		if err := r.Close(); err != nil {
			return err
		}
		rec.Meta[key] = value
	case recCommit:
		h := r.Hash()
		var c store.Commit
		np := r.Len(len(store.Hash{}))
		for i := 0; i < np; i++ {
			c.Parents = append(c.Parents, r.Hash())
		}
		c.State = r.Hash()
		c.Gen = int(r.Int64())
		c.Time = r.Timestamp()
		if err := r.Close(); err != nil {
			return err
		}
		rec.State.Commits[h] = c
	case recObject:
		h := r.Hash()
		var o store.ObjectRecord
		o.Delta = r.Bool()
		o.Base = r.Hash()
		o.Size = int(r.Int64())
		o.Depth = int(r.Int64())
		o.Data = r.Bytes()
		if err := r.Close(); err != nil {
			return err
		}
		rec.State.Objects[h] = o
	case recBranch:
		name := r.String()
		var b store.BranchRecord
		b.Head = r.Hash()
		b.Replica = int(r.Int64())
		b.Clock = r.Int64()
		if err := r.Close(); err != nil {
			return err
		}
		rec.State.Branches[name] = b
	case recBranchDel:
		name := r.String()
		if err := r.Close(); err != nil {
			return err
		}
		delete(rec.State.Branches, name)
	case recNextID:
		id := int(r.Int64())
		if err := r.Close(); err != nil {
			return err
		}
		if id > rec.State.NextID {
			rec.State.NextID = id
		}
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	return nil
}
