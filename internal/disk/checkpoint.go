package disk

// Checkpoints: the log's commit-graph sidecar, inlined. A checkpoint
// record carries the complete *index* of the log at its write point —
// every commit (hash, parents, state, generation, timestamp), every pack
// object's metadata plus the (segment, offset) its bytes live at, the
// branch heads with their clock state, the replica-id allocator floor and
// the log's metadata — but none of the state bytes themselves. It is
// always the first record of a fresh segment, so Open can find the newest
// checkpoint by probing segment heads (one record read per segment,
// newest first) instead of scanning history, install the index with lazy
// object loaders pointing back into the older segments, and replay only
// the records that follow. Recovery cost becomes O(live index + suffix),
// flat in history depth — the shape Git gets from commit-graph and
// multi-pack-index files over its packs.
//
// The index sections are stored as fixed-width entry arrays in the
// store's frozen-index layout (store/frozen.go), commit and object
// entries alike ascending by hash. Decoding a checkpoint is then section
// slicing, not entry-by-entry parsing — recovery adopts the CRC-verified
// payload bytes as the store's index (store.FrozenIndex), resolves
// entries by binary search, and decodes nothing until a walk touches it,
// which is what makes open time flat instead of O(index).
//
// Checkpoints are written every CheckpointEvery mutations, after every
// compaction, and on a clean Close (so an orderly restart replays a
// zero-length suffix). A torn or corrupt checkpoint fails its CRC like
// any record; Open then probes the next older segment head and, with no
// valid checkpoint anywhere, falls back to full (parallel) segment
// replay. Nothing but time is lost.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/store"
	"repro/internal/wire"
)

// objLoc is one pack object's index entry: its chain metadata plus where
// in the log its record lives, enough to both write a checkpoint and
// serve a lazy load.
type objLoc struct {
	base   store.Hash
	delta  bool
	size   int
	depth  int
	stored int   // stored-byte length (len of the record's data field)
	seg    int   // segment holding the object record
	off    int64 // offset of the record's frame within the segment
}

// shadowState mirrors the log's durable contents in index form so a
// checkpoint can be serialized at any moment without asking the store.
// A checkpoint-seeded open adopts the checkpoint's sections frozen and
// overlays only what the suffix replay and this session's appends add;
// a full replay or a compaction rebuild carries everything in the
// overlay maps with frozen nil. Branch records are few and always live
// in the map (an overlay entry supersedes a frozen section's name).
type shadowState struct {
	frozen   *store.FrozenIndex
	commits  map[store.Hash]store.Commit
	objects  map[store.Hash]objLoc
	branches map[string]store.BranchRecord
	nextID   int
}

func newShadow() shadowState {
	return shadowState{
		commits:  make(map[store.Hash]store.Commit),
		objects:  make(map[store.Hash]objLoc),
		branches: make(map[string]store.BranchRecord),
	}
}

// checkpoint is a decoded checkpoint record. The frozen index aliases
// the record's payload (already CRC-verified by the frame).
type checkpoint struct {
	meta     map[string]string
	nextID   int
	frozen   *store.FrozenIndex
	branches map[string]store.BranchRecord
}

// encodeCheckpoint serializes the shadow state (and log metadata) as one
// checkpoint record payload, kind byte included:
//
//	recCheckpoint
//	[u32 #commits][fixed-width commit entries, hash-ascending]
//	[u32 #objects][fixed-width object entries, hash-ascending]
//	wire-encoded tail: meta, nextID, branches
//
// Both index sections come out hash-ascending — recovery resolves them
// by binary search without decoding. Frozen sections re-emit raw (a
// memcpy per entry); overlay entries encode fresh, sorted and merged
// into the frozen section's hash order, an overlay entry superseding a
// frozen one with the same hash.
func encodeCheckpoint(meta map[string]string, sh *shadowState) []byte {
	fz := sh.frozen
	nfc, nfo := 0, 0
	if fz != nil {
		nfc, nfo = fz.NumCommits(), fz.NumObjects()
	}

	ckeys := make([]store.Hash, 0, len(sh.commits))
	for h := range sh.commits {
		ckeys = append(ckeys, h)
	}
	sort.Slice(ckeys, func(i, j int) bool { return bytes.Compare(ckeys[i][:], ckeys[j][:]) < 0 })
	commits := make([]byte, 0, (nfc+len(ckeys))*store.FrozenCommitBytes)
	ci := 0
	for _, h := range ckeys {
		for ci < nfc {
			fh := fz.CommitHashAt(ci)
			cmp := bytes.Compare(fh[:], h[:])
			if cmp > 0 {
				break
			}
			if cmp < 0 {
				commits = append(commits, fz.RawCommit(ci)...)
			}
			ci++
		}
		commits = store.AppendFrozenCommit(commits, h, sh.commits[h])
	}
	for ; ci < nfc; ci++ {
		commits = append(commits, fz.RawCommit(ci)...)
	}

	keys := make([]store.Hash, 0, len(sh.objects))
	for h := range sh.objects {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i][:], keys[j][:]) < 0 })
	objects := make([]byte, 0, (nfo+len(keys))*store.FrozenObjectBytes)
	fi := 0
	for _, h := range keys {
		for fi < nfo {
			fh := fz.ObjectHashAt(fi)
			cmp := bytes.Compare(fh[:], h[:])
			if cmp > 0 {
				break
			}
			if cmp < 0 {
				objects = append(objects, fz.RawObject(fi)...)
			}
			fi++ // equal: the overlay entry supersedes the frozen one
		}
		o := sh.objects[h]
		objects = store.AppendFrozenObject(objects, h, store.FrozenObject{
			Base: o.base, Delta: o.delta, Size: o.size, Depth: o.depth,
			Stored: o.stored, Seg: o.seg, Off: o.off,
		})
	}
	for ; fi < nfo; fi++ {
		objects = append(objects, fz.RawObject(fi)...)
	}

	var w wire.Writer
	w.PutLen(len(meta))
	for k, v := range meta {
		w.PutString(k)
		w.PutString(v)
	}
	w.PutInt64(int64(sh.nextID))
	w.PutLen(len(sh.branches))
	for name, b := range sh.branches {
		w.PutString(name)
		w.PutHash(b.Head)
		w.PutInt64(int64(b.Replica))
		w.PutInt64(b.Clock)
	}
	tail := w.Bytes()

	payload := make([]byte, 0, 1+8+len(commits)+len(objects)+len(tail))
	payload = append(payload, recCheckpoint)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(commits)/store.FrozenCommitBytes))
	payload = append(payload, commits...)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(objects)/store.FrozenObjectBytes))
	payload = append(payload, objects...)
	return append(payload, tail...)
}

// decodeCheckpoint parses a checkpoint record body (the payload past the
// kind byte). The index sections are adopted by reference — body must be
// a buffer the caller does not reuse — so decode cost is independent of
// index size; only the small tail (meta, branches) parses entry-wise.
func decodeCheckpoint(body []byte) (*checkpoint, error) {
	section := func(width int) ([]byte, error) {
		if len(body) < 4 {
			return nil, fmt.Errorf("checkpoint truncated before section count")
		}
		n := int64(binary.BigEndian.Uint32(body))
		body = body[4:]
		size := n * int64(width)
		if size > int64(len(body)) {
			return nil, fmt.Errorf("checkpoint section announces %d entries, %d bytes remain", n, len(body))
		}
		sec := body[:size:size]
		body = body[size:]
		return sec, nil
	}
	commits, err := section(store.FrozenCommitBytes)
	if err != nil {
		return nil, err
	}
	objects, err := section(store.FrozenObjectBytes)
	if err != nil {
		return nil, err
	}
	fz, err := store.NewFrozenIndex(commits, objects, nil)
	if err != nil {
		return nil, err
	}
	ck := &checkpoint{frozen: fz}
	r := wire.NewReader(body)
	nm := r.Len(2)
	ck.meta = make(map[string]string, nm)
	for i := 0; i < nm; i++ {
		k := r.String()
		ck.meta[k] = r.String()
	}
	ck.nextID = int(r.Int64())
	nb := r.Len(4 + len(store.Hash{}) + 16)
	ck.branches = make(map[string]store.BranchRecord, nb)
	for i := 0; i < nb; i++ {
		name := r.String()
		var b store.BranchRecord
		b.Head = r.Hash()
		b.Replica = int(r.Int64())
		b.Clock = r.Int64()
		ck.branches[name] = b
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return ck, nil
}

// probeCheckpoint reads the first record of the segment at path and, if
// it is a valid checkpoint, returns it decoded along with the offset just
// past its frame (where suffix replay resumes). The kind byte is peeked
// before the frame is read in full, so probing a segment that does not
// head with a checkpoint costs one small read. Any damage — missing
// header, short read, CRC mismatch, wrong kind, parse failure — reports
// ok=false; the caller probes the next older segment or falls back to
// full replay.
func probeCheckpoint(path string) (ck *checkpoint, end int64, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false
	}
	defer f.Close()
	var head [len(segMagic) + 9]byte
	if _, err := f.ReadAt(head[:], 0); err != nil || string(head[:len(segMagic)]) != segMagic {
		return nil, 0, false
	}
	if head[len(segMagic)+8] != recCheckpoint {
		return nil, 0, false
	}
	payload, end, err := readFrameAt(f, int64(len(segMagic)))
	if err != nil || len(payload) == 0 || payload[0] != recCheckpoint {
		return nil, 0, false
	}
	ck, err = decodeCheckpoint(payload[1:])
	if err != nil {
		return nil, 0, false
	}
	return ck, end, true
}

// loader returns the frozen-index load hook bound to this log: re-read
// one object record and hand back its verified stored bytes.
func (l *Log) loader() store.FrozenLoader {
	return func(h store.Hash, seg int, off int64) ([]byte, error) {
		return l.readObjectData(seg, off, h)
	}
}

// lazyRecord wraps an index entry as a store.ObjectRecord whose bytes
// load (and CRC-verify) from the log on first use.
func (l *Log) lazyRecord(h store.Hash, loc objLoc) store.ObjectRecord {
	return store.ObjectRecord{
		Base: loc.base, Delta: loc.delta, Size: loc.size, Depth: loc.depth, Stored: loc.stored,
		Load: func() ([]byte, error) { return l.readObjectData(loc.seg, loc.off, h) },
	}
}

// readObjectData re-reads one object record at (seg, off), re-verifies
// its CRC and content, and returns its stored bytes — the lazy-load path
// behind checkpoint-recovered objects. It opens its own descriptor, so
// concurrent loads never contend; the owning store's locking guarantees
// the segment cannot be compacted away mid-read (compaction forces every
// live object resident first, under the store's write lock).
func (l *Log) readObjectData(seg int, off int64, want store.Hash) ([]byte, error) {
	path := filepath.Join(l.dir, segName(seg))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, _, err := readFrameAt(f, off)
	if err != nil {
		return nil, fmt.Errorf("disk: lazy load %v at %s+%d: %w", want, segName(seg), off, err)
	}
	op, err := decodeRecord(payload, off)
	if err != nil || op.kind != recObject || op.hash != want {
		return nil, fmt.Errorf("disk: lazy load %v at %s+%d: record does not match index", want, segName(seg), off)
	}
	return op.object.Data, nil
}

// attachCheckpoint installs a decoded checkpoint as the base of a seek
// recovery: the recovery state is still empty, so the index sections are
// adopted frozen — handed to the store as a FrozenIndex and kept by the
// shadow as the base its overlays merge over — with nothing decoded per
// entry. Branches, metadata and the allocator floor are small and
// install eagerly.
func (l *Log) attachCheckpoint(rec *Recovered, ck *checkpoint) {
	for k, v := range ck.meta {
		rec.Meta[k] = v
	}
	fz := ck.frozen
	fz.Loader = l.loader()
	rec.State.Frozen = fz
	l.shadow.frozen = fz
	for name, b := range ck.branches {
		rec.State.Branches[name] = b
		l.shadow.branches[name] = b
	}
	if ck.nextID > rec.State.NextID {
		rec.State.NextID = ck.nextID
	}
	if ck.nextID > l.shadow.nextID {
		l.shadow.nextID = ck.nextID
	}
}

// mergeCheckpoint replays a checkpoint record encountered mid-scan (full
// replay, or a checkpoint the seek did not consume). Commits and objects
// install only if absent — the earlier records already supplied the
// bytes, and a lazy entry must never shadow resident data. Branches,
// metadata and the allocator floor are the checkpoint's snapshot of
// current truth and replace what replay accumulated before it.
func (l *Log) mergeCheckpoint(rec *Recovered, ck *checkpoint) {
	for k, v := range ck.meta {
		rec.Meta[k] = v
	}
	fz := ck.frozen
	for i, n := 0, fz.NumCommits(); i < n; i++ {
		h, c := fz.CommitAt(i)
		if _, ok := rec.State.Commits[h]; !ok {
			rec.State.Commits[h] = c
			l.shadow.commits[h] = c
		}
	}
	for i, n := 0, fz.NumObjects(); i < n; i++ {
		h, fo := fz.ObjectAt(i)
		if _, ok := rec.State.Objects[h]; !ok {
			loc := objLoc{
				base: fo.Base, delta: fo.Delta, size: fo.Size, depth: fo.Depth,
				stored: fo.Stored, seg: fo.Seg, off: fo.Off,
			}
			rec.State.Objects[h] = l.lazyRecord(h, loc)
			l.shadow.objects[h] = loc
		}
	}
	for name := range rec.State.Branches {
		delete(rec.State.Branches, name)
		delete(l.shadow.branches, name)
	}
	for name, b := range ck.branches {
		rec.State.Branches[name] = b
		l.shadow.branches[name] = b
	}
	if ck.nextID > rec.State.NextID {
		rec.State.NextID = ck.nextID
	}
	if ck.nextID > l.shadow.nextID {
		l.shadow.nextID = ck.nextID
	}
}

// checkpointLocked serializes the shadow state as a checkpoint record at
// the head of a fresh segment (sealing the active one first, unless it
// is still empty). Sealing fsyncs everything the checkpoint references
// before the checkpoint itself is written, so a durable checkpoint can
// never point at lost bytes.
func (l *Log) checkpointLocked() error {
	record := encodeCheckpoint(l.meta, &l.shadow)
	if err := checkRecordSize(record); err != nil {
		// A colossal index (beyond the replay limit) skips its
		// checkpoint: recovery falls back to segment replay, losing time,
		// not data.
		l.mutsSince = 0
		return nil
	}
	if l.size > int64(len(segMagic)) {
		if err := l.sealLocked(); err != nil {
			return err
		}
		if err := l.startSegment(l.seq + 1); err != nil {
			return err
		}
		if err := syncDir(l.dir); err != nil {
			return err
		}
		l.metrics.rotated()
	}
	framed := appendFrame(nil, record)
	if _, err := l.w.Write(framed); err != nil {
		return err
	}
	l.size += int64(len(framed))
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.opts.Fsync == FsyncAlways {
		l.stats.Fsyncs++
		if err := l.timedSync(); err != nil {
			return err
		}
	}
	l.stats.Records++
	l.stats.Checkpoints++
	l.metrics.checkpointed()
	l.mutsSince = 0
	l.sinceCkpt = 0
	return nil
}

// maybeCheckpointLocked writes a checkpoint when the mutation counter
// crosses the configured interval — self-throttled on deep histories.
// Every checkpoint is a full index snapshot, O(history) bytes, so a
// fixed cadence would cost O(history²/N) disk over the life of a log.
// Requiring the un-checkpointed suffix to also reach a quarter of the
// index makes consecutive checkpoints grow geometrically, bounding all
// checkpoint bytes ever written to a small multiple of the final index
// (the same amortization WAL-checkpointing engines use). Clean closes
// still checkpoint unconditionally (Close), so reopen after a clean
// shutdown replays one record whatever the depth; only recovery from a
// crash pays the bounded suffix.
func (l *Log) maybeCheckpointLocked() error {
	if l.opts.CheckpointEvery <= 0 || l.mutsSince < l.opts.CheckpointEvery {
		return nil
	}
	entries := len(l.shadow.commits) + len(l.shadow.objects)
	if fz := l.shadow.frozen; fz != nil {
		entries += fz.NumCommits() + fz.NumObjects()
	}
	if l.mutsSince < entries/4 {
		return nil
	}
	return l.checkpointLocked()
}
