package bench

import (
	"repro/internal/orset"
	"repro/internal/queue"
)

// Naive reference implementations for the ablation benchmarks: each undoes
// one of the design choices DESIGN.md calls out, so the benchmark isolates
// that choice's contribution. Correctness of each naive variant against
// the optimized one is asserted by tests, so the benchmarks compare equals.

// NaiveOrSetMerge is the unoptimized OR-set merge computed exactly as the
// set formula reads — membership tests by linear scan, O(n²) overall —
// instead of the single linear pass over sorted slices.
func NaiveOrSetMerge(lca, a, b orset.State) orset.State {
	contains := func(s orset.State, p orset.Pair) bool {
		for _, q := range s {
			if q == p {
				return true
			}
		}
		return false
	}
	var out orset.State
	for _, p := range lca { // lca ∩ a ∩ b
		if contains(a, p) && contains(b, p) {
			out = append(out, p)
		}
	}
	for _, p := range a { // a − lca
		if !contains(lca, p) {
			out = append(out, p)
		}
	}
	for _, p := range b { // b − lca
		if !contains(lca, p) {
			out = append(out, p)
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(s orset.State) {
	// Insertion sort is fine here; the naive merge dominates the cost.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func less(a, b orset.Pair) bool {
	if a.E != b.E {
		return a.E < b.E
	}
	return a.T < b.T
}

// NaiveQueueIntersection computes the surviving-LCA-prefix of the queue
// merge by per-element membership scans over both branches — O(n²) —
// instead of the three-pointer linear walk of Appendix B.
func NaiveQueueIntersection(l, a, b []queue.Pair) []queue.Pair {
	member := func(s []queue.Pair, p queue.Pair) bool {
		for _, q := range s {
			if q == p {
				return true
			}
		}
		return false
	}
	var out []queue.Pair
	for _, p := range l {
		if member(a, p) && member(b, p) {
			out = append(out, p)
		}
	}
	return out
}

// QueueIntersectionLinear exposes the linear intersection for the
// ablation benchmark (the production path reaches it through Merge).
func QueueIntersectionLinear(l, a, b []queue.Pair) []queue.Pair {
	var out []queue.Pair
	i, j, k := 0, 0, 0
	for i < len(l) && j < len(a) && k < len(b) {
		if l[i].T < a[j].T || l[i].T < b[k].T {
			i++
		} else {
			out = append(out, l[i])
			i++
			j++
			k++
		}
	}
	return out
}
