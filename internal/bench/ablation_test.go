package bench

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/orset"
	"repro/internal/queue"
)

// The naive ablation variants must agree with the optimized
// implementations on random workloads — otherwise the benchmarks would be
// comparing different functions.

func TestNaiveOrSetMergeAgrees(t *testing.T) {
	var impl orset.OrSet
	for seed := int64(0); seed < 30; seed++ {
		l, a, b := OrSetMergeWorkload[orset.State](impl, 120, 30, seed)
		fast := impl.Merge(l, a, b)
		naive := NaiveOrSetMerge(l, a, b)
		if !slices.Equal(fast, naive) {
			t.Fatalf("seed %d: fast %v != naive %v", seed, fast, naive)
		}
	}
}

func TestNaiveQueueIntersectionAgrees(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		lca, a, b := QueueWorkload(150, seed)
		l, as, bs := lca.ToSlice(), a.ToSlice(), b.ToSlice()
		fast := QueueIntersectionLinear(l, as, bs)
		naive := NaiveQueueIntersection(l, as, bs)
		if !slices.Equal(fast, naive) {
			t.Fatalf("seed %d: fast %v != naive %v", seed, fast, naive)
		}
	}
}

func TestQueueIntersectionLinearMatchesMergePrefix(t *testing.T) {
	// The linear intersection used in the ablation is the same computation
	// the production merge performs: the merged queue must start with it.
	var impl queue.Queue
	lca, a, b := QueueWorkload(200, 9)
	ixn := QueueIntersectionLinear(lca.ToSlice(), a.ToSlice(), b.ToSlice())
	merged := impl.Merge(lca, a, b).ToSlice()
	if len(merged) < len(ixn) {
		t.Fatal("merge shorter than its intersection prefix")
	}
	if !slices.Equal(merged[:len(ixn)], ixn) {
		t.Fatal("merge does not start with the LCA survivors")
	}
}

func TestNaiveOrSetMergeSorted(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var s orset.State
	for i := 0; i < 40; i++ {
		s = append(s, orset.Pair{E: int64(r.Intn(10)), T: 0})
	}
	sortPairs(s)
	for i := 1; i < len(s); i++ {
		if less(s[i], s[i-1]) {
			t.Fatal("sortPairs result not sorted")
		}
	}
}
