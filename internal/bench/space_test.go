package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The space benchmark at miniature scale: every measured claim the
// acceptance bar relies on must already hold directionally — packed
// resident bytes below full, packed sync bytes below full, bounded
// chains — and the JSON document must round-trip.
func TestSpaceRows(t *testing.T) {
	rows := Space([]int{64, 256}, []int{64, 256}, 1)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 datatypes x 2 sweeps)", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Datatype] = true
		if r.Commits != r.History+1 {
			t.Errorf("%s/%d: %d commits, want history+1", r.Datatype, r.History, r.Commits)
		}
		if r.PackedBytes <= 0 || r.FullBytes <= 0 {
			t.Errorf("%s/%d: non-positive resident bytes %+v", r.Datatype, r.History, r)
		}
		if r.PackedBytes >= r.FullBytes {
			t.Errorf("%s/%d: packed %d not below full %d", r.Datatype, r.History, r.PackedBytes, r.FullBytes)
		}
		if r.DeepPullPackedBytes >= r.DeepPullFullBytes {
			t.Errorf("%s/%d: packed deep pull %d not below full %d",
				r.Datatype, r.History, r.DeepPullPackedBytes, r.DeepPullFullBytes)
		}
		if r.MaxChain >= 32 {
			t.Errorf("%s/%d: chain length %d breaches default snapshot spacing", r.Datatype, r.History, r.MaxChain)
		}
		if r.ResyncPackedBytes > 4096 {
			t.Errorf("%s/%d: converged resync moved %d bytes, want O(frame overhead)",
				r.Datatype, r.History, r.ResyncPackedBytes)
		}
		if r.AllocsPerApply <= 0 {
			t.Errorf("%s/%d: allocs/op not recorded", r.Datatype, r.History)
		}
	}
	for _, want := range []string{"mergeable-log", "or-set-space", "functional-queue"} {
		if !seen[want] {
			t.Errorf("no rows for %s", want)
		}
	}

	var buf bytes.Buffer
	if err := WriteSpaceJSON(&buf, 1, rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench string     `json:"bench"`
		Seed  int64      `json:"seed"`
		Rows  []SpaceRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "space" || doc.Seed != 1 || len(doc.Rows) != len(rows) {
		t.Fatalf("JSON document mangled: bench=%q seed=%d rows=%d", doc.Bench, doc.Seed, len(doc.Rows))
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("JSON document must end with a newline")
	}

	var out bytes.Buffer
	PrintSpace(&out, rows)
	if !strings.Contains(out.String(), "mergeable-log") {
		t.Fatal("PrintSpace dropped rows")
	}
}
