package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mlog"
	"repro/internal/orset"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/wire"
)

// Space benchmark (`peepul-bench -fig space`): what the pack layer buys.
// For each datatype and history length the harness builds one branch of
// history and measures, packed (delta-chained objects, default snapshot
// spacing) against the pre-pack format (every state a full snapshot):
//
//   - resident object bytes — the store's Figure 15-style footprint;
//   - sync bytes for a deep pull (a fresh peer fetching the whole
//     history) and a converged re-sync (frontier negotiation, nothing to
//     ship);
//   - cold materialize latency — reassembling an out-of-cache state
//     through its delta chain;
//   - allocations per committed operation on the Apply path.
//
// Packed wire bytes are measured by streaming the actual packed delta
// frames through a counting writer. The pre-pack comparison figures are
// computed exactly from per-commit state sizes plus the v2 frame
// layout, because materializing every full state of a 10⁴-operation log
// at once — O(history × state size) bytes — is precisely the cost the
// pack layer exists to avoid.

// SpaceRow is one (datatype, history) measurement.
type SpaceRow struct {
	Datatype string `json:"datatype"`
	History  int    `json:"history"`
	// Commits is the DAG size (operations + root).
	Commits int `json:"commits"`
	// Snapshots/Deltas/MaxChain describe the pack: how many objects are
	// stored whole, how many as patches, and the longest patch chain.
	Snapshots int `json:"snapshots"`
	Deltas    int `json:"deltas"`
	MaxChain  int `json:"max_chain"`
	// PackedBytes vs FullBytes: resident encoded object bytes with the
	// pack layer vs the same states stored whole.
	PackedBytes int64 `json:"packed_bytes"`
	FullBytes   int64 `json:"full_bytes"`
	// PackedBytesPerOp is PackedBytes / History — the committed cost of
	// one operation.
	PackedBytesPerOp  float64 `json:"packed_bytes_per_op"`
	ResidentReduction float64 `json:"resident_reduction"`
	// Deep pull: wire bytes shipping the whole history to a fresh peer.
	DeepPullPackedBytes int64 `json:"deep_pull_packed_bytes"`
	DeepPullFullBytes   int64 `json:"deep_pull_full_bytes"`
	// Converged re-sync: wire bytes of the delta stream after frontier
	// subtraction (identical histories).
	ResyncPackedBytes int64 `json:"resync_packed_bytes"`
	ResyncFullBytes   int64 `json:"resync_full_bytes"`
	// SyncReduction is (resync+deep-pull) full over packed.
	SyncReduction float64 `json:"sync_reduction"`
	// MaterializeNs is the mean cold reassembly time of one state
	// through its chain (hash verification included).
	MaterializeNs int64 `json:"materialize_ns"`
	// AllocsPerApply is the allocation count of one committed operation.
	AllocsPerApply float64 `json:"allocs_per_apply"`
}

// SpaceNs is the history sweep for bounded-state datatypes (or-set over
// a fixed value range, queue draining as it fills).
var SpaceNs = []int{100, 1000, 10000, 100000}

// SpaceLogNs caps the log sweep at 10⁴: the mergeable log's state grows
// linearly with history, so even packed storage is snapshot-dominated
// O(history²/SnapshotEvery) bytes — gigabytes at 10⁵.
var SpaceLogNs = []int{100, 1000, 10000}

// Space runs the space benchmark over the given sweeps.
func Space(ns, logNs []int, seed int64) []SpaceRow {
	var rows []SpaceRow
	for _, n := range logNs {
		rows = append(rows, spaceRun[mlog.State, mlog.Op, mlog.Val](
			"mergeable-log", mlog.Log{}, wire.MLog{},
			func(i int, _ *rand.Rand) mlog.Op {
				return mlog.Op{Kind: mlog.Append, Msg: fmt.Sprintf("msg %06d", i)}
			}, n, seed))
	}
	for _, n := range ns {
		rows = append(rows, spaceRun[orset.SpaceState, orset.Op, orset.Val](
			"or-set-space", orset.OrSetSpace{}, wire.OrSetSpace{},
			func(_ int, rng *rand.Rand) orset.Op {
				if rng.Intn(3) == 0 {
					return orset.Op{Kind: orset.Remove, E: int64(rng.Intn(Fig13ValueRange))}
				}
				return orset.Op{Kind: orset.Add, E: int64(rng.Intn(Fig13ValueRange))}
			}, n, seed))
	}
	for _, n := range ns {
		rows = append(rows, spaceRun[queue.State, queue.Op, queue.Val](
			"functional-queue", queue.Queue{}, wire.Queue{},
			func(_ int, rng *rand.Rand) queue.Op {
				if rng.Intn(2) == 0 {
					return queue.Op{Kind: queue.Dequeue}
				}
				return queue.Op{Kind: queue.Enqueue, V: rng.Int63n(1 << 30)}
			}, n, seed))
	}
	return rows
}

// countingWriter tallies bytes without retaining them.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// spaceRun builds one history and takes every measurement on it.
func spaceRun[S, Op, Val any](
	name string,
	impl core.MRDT[S, Op, Val],
	codec store.Codec[S],
	genOp func(i int, rng *rand.Rand) Op,
	history int,
	seed int64,
) SpaceRow {
	rng := rand.New(rand.NewSource(seed))
	s := store.New[S, Op, Val](impl, codec, "main")
	for i := 0; i < history; i++ {
		if _, err := s.Apply("main", genOp(i, rng)); err != nil {
			panic(err)
		}
	}

	ps := s.PackStats()
	row := SpaceRow{
		Datatype:    name,
		History:     history,
		Commits:     s.NumCommits(),
		Snapshots:   ps.Snapshots,
		Deltas:      ps.Deltas,
		MaxChain:    ps.MaxDepth,
		PackedBytes: ps.PackedBytes,
		FullBytes:   ps.FullBytes,
	}
	row.PackedBytesPerOp = float64(ps.PackedBytes) / float64(max(history, 1))
	row.ResidentReduction = ratio(ps.FullBytes, ps.PackedBytes)

	// Deep pull, packed: stream the real frames and count.
	commits, head, err := s.ExportSincePacked("main", nil)
	if err != nil {
		panic(err)
	}
	var cw countingWriter
	if err := wire.WriteDeltaPacked(&cw, commits, head); err != nil {
		panic(err)
	}
	row.DeepPullPackedBytes = cw.n

	// Deep pull, pre-pack: every commit ships its full state. Computed
	// from per-commit sizes and the exact v2 commit layout (4-byte parent
	// count + 32 bytes per parent + 4-byte length prefix + state + 8-byte
	// generation + 8-byte timestamp), plus the same header/chunk/end
	// framing the packed stream paid.
	headHash, err := s.HeadHash("main")
	if err != nil {
		panic(err)
	}
	row.DeepPullFullBytes = fullDeltaBytes(s, headHash)

	// Converged re-sync: subtract the branch's own frontier.
	f, err := s.Frontier("main")
	if err != nil {
		panic(err)
	}
	resyncPacked, resyncHead, err := s.ExportSincePacked("main", f.HaveSet())
	if err != nil {
		panic(err)
	}
	cw = countingWriter{}
	if err := wire.WriteDeltaPacked(&cw, resyncPacked, resyncHead); err != nil {
		panic(err)
	}
	row.ResyncPackedBytes = cw.n
	resyncFull, resyncHead, err := s.ExportSince("main", f.HaveSet())
	if err != nil {
		panic(err)
	}
	cw = countingWriter{}
	if err := wire.WriteDelta(&cw, resyncFull, resyncHead); err != nil {
		panic(err)
	}
	row.ResyncFullBytes = cw.n
	row.SyncReduction = ratio(
		row.ResyncFullBytes+row.DeepPullFullBytes,
		row.ResyncPackedBytes+row.DeepPullPackedBytes)

	// Cold materialize latency: reassemble states spread across the
	// history, far enough apart that no two samples share chain work.
	row.MaterializeNs = coldMaterializeNs(s, headHash)

	// Alloc accounting last: it commits a few more operations. Ops are
	// pre-generated so the measured closure is exactly the store's Apply
	// path, not the workload generator's own allocations.
	ops := make([]Op, 33)
	for j := range ops {
		ops[j] = genOp(history+j, rng)
	}
	i := 0
	row.AllocsPerApply = testing.AllocsPerRun(32, func() {
		if _, err := s.Apply("main", ops[i]); err != nil {
			panic(err)
		}
		i++
	})
	return row
}

// fullDeltaBytes computes the wire size of a full-state v2 delta of the
// whole history without materializing one.
func fullDeltaBytes[S, Op, Val any](s *store.Store[S, Op, Val], head store.Hash) int64 {
	const (
		msgOverhead   = 5 + 4 // kind + field count + field length prefix
		commitFixed   = 4 + 4 + 8 + 8
		hashBytes     = 32
		chunkBytes    = 256 << 10 // wire's commitChunkBytes
		chunkMax      = 512       // wire's commitChunkMax
		headerPayload = hashBytes + 4
	)
	payload := int64(0)
	chunks := int64(0)
	inChunk := int64(0)
	inChunkN := 0
	seen := map[store.Hash]bool{head: true}
	stack := []store.Hash{head}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c, ok := s.Commit(h)
		if !ok {
			continue
		}
		size, _ := s.StateSize(h)
		wireLen := int64(commitFixed + hashBytes*len(c.Parents) + size)
		payload += wireLen
		// Replicate the writer's chunking: close a chunk when it crosses
		// the byte target or the commit cap.
		if inChunkN > 0 && (inChunk >= chunkBytes || inChunkN >= chunkMax) {
			chunks++
			inChunk, inChunkN = 0, 0
		}
		inChunk += wireLen
		inChunkN++
		for _, p := range c.Parents {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	if inChunkN > 0 {
		chunks++
	}
	// Header frame + commit chunks + end frame (the end frame has no
	// field, so no length prefix).
	return (msgOverhead + headerPayload) + payload + chunks*msgOverhead + 5
}

// coldMaterializeNs times EncodedState over up to 16 commits spaced
// evenly through the history and returns the mean. EncodedState bypasses
// the decoded-state LRU, so every sample pays its full chain walk, patch
// application and hash verification.
func coldMaterializeNs[S, Op, Val any](s *store.Store[S, Op, Val], head store.Hash) int64 {
	// Collect the first-parent chain: the bench histories are linear.
	var chain []store.Hash
	for h := head; ; {
		chain = append(chain, h)
		c, ok := s.Commit(h)
		if !ok || len(c.Parents) == 0 {
			break
		}
		h = c.Parents[0]
	}
	samples := 16
	if samples > len(chain) {
		samples = len(chain)
	}
	var total time.Duration
	n := 0
	// Sampling starts at 1: chain[0] is the branch head, whose encoding
	// the last Apply left warm in the store's reassembly slot — timing it
	// would bias the "cold" mean low.
	for i := 1; i <= samples; i++ {
		commit := chain[i*(len(chain)-1)/samples]
		c, ok := s.Commit(commit)
		if !ok {
			continue
		}
		start := time.Now()
		if _, err := s.EncodedState(c.State); err != nil {
			panic(err)
		}
		total += time.Since(start)
		n++
	}
	if n == 0 {
		return 0
	}
	return total.Nanoseconds() / int64(n)
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// WriteSpaceJSON renders rows as the BENCH_space.json document: one
// object with the seed and the measured rows, stable field order,
// trailing newline.
func WriteSpaceJSON(w io.Writer, seed int64, rows []SpaceRow) error {
	doc := struct {
		Bench string     `json:"bench"`
		Seed  int64      `json:"seed"`
		Rows  []SpaceRow `json:"rows"`
	}{Bench: "space", Seed: seed, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
