package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/faultnet"
	"repro/peepul"
)

// Chaos benchmark (`peepul-bench -fig chaos`): live ring fleets gossip
// through the seeded fault-injection net while connections drop and the
// fleet is rolled through two-way partitions. Each row measures what
// the mesh promises after the weather clears:
//
//   - converge: wall time from heal (partitions lifted; connection
//     drops stay active — loss is steady-state weather, partitions are
//     transient) until every node holds the same value AND the
//     identical head hash — the recovery bound as a function of how
//     bad the faults were;
//   - redundant commits: re-shipped commits the fault retries caused —
//     the price of syncing through an unreliable net, which the
//     reconciliation dialect keeps near zero on clean links;
//   - total wire bytes over the whole run, for the same comparison.
//
// The zero-loss, zero-partition row is the baseline the faulted rows
// are read against.

// ChaosRow is one measured fleet under one fault mix.
type ChaosRow struct {
	// Nodes is the fleet size (ring supervision).
	Nodes int `json:"nodes"`
	// LossRate is the probability any dial is dropped during the fault
	// horizon.
	LossRate float64 `json:"loss_rate"`
	// PartitionMs is the hold of each rolling two-way partition step
	// during the horizon; 0 means no partitions.
	PartitionMs int64 `json:"partition_ms"`
	// Writes is the total number of operations committed, spread across
	// every node, all during the fault horizon.
	Writes int `json:"writes"`
	// HorizonMs is the fault horizon: how long the fleet ran under
	// drops and partitions before the heal.
	HorizonMs int64 `json:"horizon_ms"`
	// ConvergeNs is the wall time from heal until every node reports
	// the same value and the identical head hash.
	ConvergeNs int64 `json:"converge_ns"`
	// TotalBytes is the fleet-wide sync traffic (sent + received summed
	// over all nodes) across the whole run, horizon included.
	TotalBytes int64 `json:"total_bytes"`
	// RedundantCommits counts received commits that were already
	// present, fleet-wide — transfer the fault retries wasted.
	RedundantCommits int64 `json:"redundant_commits"`
}

// ChaosLossRates is the dial-drop sweep of the full benchmark.
var ChaosLossRates = []float64{0, 0.1, 0.25, 0.4}

// ChaosPartitions is the partition-hold sweep of the full benchmark.
var ChaosPartitions = []time.Duration{0, 300 * time.Millisecond}

// ChaosNodes is the fleet size of the full benchmark.
const ChaosNodes = 6

// Chaos runs the loss × partition sweep at the given fleet size.
func Chaos(n int, losses []float64, partitions []time.Duration, seed int64) []ChaosRow {
	var rows []ChaosRow
	for _, partition := range partitions {
		for _, loss := range losses {
			rows = append(rows, chaosFleet(n, loss, partition, seed))
		}
	}
	return rows
}

// chaosFleet builds one ring fleet over a fresh fault net, commits on
// every node while the faults run, then heals and measures recovery.
func chaosFleet(n int, loss float64, partition time.Duration, seed int64) ChaosRow {
	fn := faultnet.New(seed)
	fn.SetDefaultLink(faultnet.Link{DropRate: loss})

	names := make([]string, n)
	fleet := make([]meshNode, n)
	for i := range fleet {
		names[i] = fmt.Sprintf("bench-c%d", i)
		node, err := peepul.NewNode(names[i], i+1,
			peepul.WithTransport(fn.Transport(names[i])),
			peepul.WithMeshInterval(50*time.Millisecond),
			peepul.WithMeshJitter(15*time.Millisecond),
			peepul.WithMeshBackoff(10*time.Millisecond, 200*time.Millisecond))
		if err != nil {
			panic(err)
		}
		defer node.Close()
		h, err := peepul.Open(node, peepul.PNCounter, "hits")
		if err != nil {
			panic(err)
		}
		if err := node.Listen("127.0.0.1:0"); err != nil {
			panic(err)
		}
		fleet[i] = meshNode{node: node, handle: h}
	}
	for i := range fleet {
		fleet[i].node.AddPeer(fleet[(i+1)%n].node.Addr())
	}

	// Rolling partitions: two axes of the ring, healed holds between.
	ctx, cancel := context.WithCancel(context.Background())
	var scheduleDone <-chan struct{}
	if partition > 0 {
		half := n / 2
		odd := make([]string, 0, n)
		even := make([]string, 0, n)
		for i, name := range names {
			if i%2 == 0 {
				even = append(even, name)
			} else {
				odd = append(odd, name)
			}
		}
		steps := []faultnet.Step{
			{Hold: partition, Groups: [][]string{names[:half], names[half:]}},
			{Hold: partition / 2},
			{Hold: partition, Groups: [][]string{even, odd}},
			{Hold: partition / 2},
		}
		scheduleDone = fn.RunSchedule(ctx, steps, true)
	}

	// Every node commits during the horizon, paced so the writes spread
	// across the fault schedule instead of landing in one burst.
	writes := n * meshWritesPerNode
	start := time.Now()
	done := make(chan error, n)
	for _, m := range fleet {
		go func(h *peepul.Handle[peepul.CounterPNState, peepul.CounterOp, peepul.CounterVal]) {
			for j := 0; j < meshWritesPerNode; j++ {
				if _, err := h.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 1}); err != nil {
					done <- err
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
			done <- nil
		}(m.handle)
	}
	for range fleet {
		if err := <-done; err != nil {
			panic(err)
		}
	}
	// End the rolling schedule, then hold one final partition so the
	// heal measures a genuinely diverged fleet — the looped schedule may
	// have ended on a healed hold with everything already converged.
	cancel()
	if scheduleDone != nil {
		<-scheduleDone
	}
	if partition > 0 {
		fn.Partition(names[:n/2], names[n/2:])
		time.Sleep(partition)
	}
	horizon := time.Since(start)

	// Heal the partitions but keep the drops: loss is steady-state
	// weather, so recovery is measured through it.
	fn.Heal()
	heal := time.Now()
	meshAwait(fleet, writes)
	convergeNs := time.Since(heal).Nanoseconds()
	fn.SetDefaultLink(faultnet.Link{})

	var redundant int64
	for _, m := range fleet {
		redundant += m.node.Stats().RedundantCommits
	}
	return ChaosRow{
		Nodes: n, LossRate: loss, PartitionMs: partition.Milliseconds(),
		Writes: writes, HorizonMs: horizon.Milliseconds(),
		ConvergeNs:       convergeNs,
		TotalBytes:       meshWireBytes(fleet),
		RedundantCommits: redundant,
	}
}

// WriteChaosJSON renders rows as the BENCH_chaos.json document: one
// object with the measured rows, stable field order, trailing newline.
func WriteChaosJSON(w io.Writer, seed int64, rows []ChaosRow) error {
	doc := struct {
		Bench string     `json:"bench"`
		Seed  int64      `json:"seed"`
		Rows  []ChaosRow `json:"rows"`
	}{Bench: "chaos", Seed: seed, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
