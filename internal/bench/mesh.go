package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/peepul"
)

// Mesh benchmark (`peepul-bench -fig mesh`): live always-on fleets over
// real TCP, no SyncWith anywhere — the daemon does all the replication.
// Each row builds a fleet, lets every node write concurrently, and
// measures three things the daemon promises:
//
//   - converge: wall time from the first write until every node holds
//     the same value AND the identical head hash;
//   - propagate: after convergence, one node commits once — wall time
//     until the commit is on every node (push-on-commit cascading
//     hop-by-hop, not waiting out anti-entropy rounds);
//   - steady-state wire cost: bytes/sec across the whole fleet over an
//     idle window after convergence. Re-syncing a converged pair ships
//     frontiers only, so this should stay near zero and scale with the
//     round rate, never with history size.

// MeshRow is one measured fleet.
type MeshRow struct {
	// Topology is the supervision graph: "ring" (each node supervises
	// its successor; exchanges are bidirectional so one direction
	// suffices) or "full" (every node supervises every other).
	Topology string `json:"topology"`
	// Nodes is the fleet size.
	Nodes int `json:"nodes"`
	// Writes is the total number of operations committed before the
	// convergence measurement.
	Writes int `json:"writes"`
	// ConvergeNs is the wall time from the first write until every node
	// reports the same value and the identical head hash.
	ConvergeNs int64 `json:"converge_ns"`
	// PropagateNs is the wall time for one post-convergence commit to
	// reach every node (values and heads re-converged).
	PropagateNs int64 `json:"propagate_ns"`
	// SteadyWindowNs is the idle window measured after convergence.
	SteadyWindowNs int64 `json:"steady_window_ns"`
	// SteadyBytes is the fleet-wide wire traffic (sent + received,
	// summed over all nodes) during the idle window.
	SteadyBytes int64 `json:"steady_bytes"`
	// SteadyBytesPerSec is SteadyBytes normalized by the window — the
	// cost of keeping a converged fleet converged.
	SteadyBytesPerSec float64 `json:"steady_bytes_per_sec"`
	// BaselineSteadyBytes is the same idle window measured on an
	// identical fleet with recon disabled — the sampled-frontier
	// anti-entropy cost the span probe replaces. Recon's SteadyBytes
	// should sit strictly below it: a converged round is one fingerprint
	// compare instead of a frontier sample per object.
	BaselineSteadyBytes int64 `json:"baseline_steady_bytes"`
	// BaselineSteadyBytesPerSec normalizes BaselineSteadyBytes by the window.
	BaselineSteadyBytesPerSec float64 `json:"baseline_steady_bytes_per_sec"`
}

// MeshRingNs is the fleet-size sweep of the ring topology.
var MeshRingNs = []int{5, 10, 20}

// MeshFullNs is the fleet-size sweep of the full topology, capped lower
// because supervisors (and their exchanges) grow quadratically.
var MeshFullNs = []int{4, 8}

// MeshSteadyWindow is the idle window over which steady-state wire cost
// is measured.
const MeshSteadyWindow = 800 * time.Millisecond

const meshWritesPerNode = 3

// Mesh runs the fleet scenarios over their sweeps. Every fleet runs
// twice — recon negotiation, then the frontier baseline — so each row
// carries its own steady-state comparison.
func Mesh(ringNs, fullNs []int, steady time.Duration) []MeshRow {
	var rows []MeshRow
	measure := func(topology string, n int) {
		row := meshFleet(topology, n, steady, true)
		base := meshFleet(topology, n, steady, false)
		row.BaselineSteadyBytes = base.SteadyBytes
		row.BaselineSteadyBytesPerSec = base.SteadyBytesPerSec
		rows = append(rows, row)
	}
	for _, n := range ringNs {
		measure("ring", n)
	}
	for _, n := range fullNs {
		measure("full", n)
	}
	return rows
}

type meshNode struct {
	node   *peepul.Node
	handle *peepul.Handle[peepul.CounterPNState, peepul.CounterOp, peepul.CounterVal]
}

// meshFleet builds one live fleet, writes concurrently on every node and
// takes the row's three measurements. The daemon interval is tightened
// well below the default so the benchmark measures the engine, not the
// idle period.
func meshFleet(topology string, n int, steady time.Duration, recon bool) MeshRow {
	fleet := make([]meshNode, n)
	for i := range fleet {
		node, err := peepul.NewNode(fmt.Sprintf("bench-m%d", i), i+1,
			peepul.WithMeshInterval(50*time.Millisecond),
			peepul.WithMeshJitter(15*time.Millisecond),
			peepul.WithMeshBackoff(10*time.Millisecond, 200*time.Millisecond))
		if err != nil {
			panic(err)
		}
		defer node.Close()
		node.SetReconEnabled(recon)
		h, err := peepul.Open(node, peepul.PNCounter, "hits")
		if err != nil {
			panic(err)
		}
		if err := node.Listen("127.0.0.1:0"); err != nil {
			panic(err)
		}
		fleet[i] = meshNode{node: node, handle: h}
	}
	for i := range fleet {
		switch topology {
		case "ring":
			fleet[i].node.AddPeer(fleet[(i+1)%n].node.Addr())
		case "full":
			for j := range fleet {
				if j != i {
					fleet[i].node.AddPeer(fleet[j].node.Addr())
				}
			}
		default:
			panic("unknown mesh topology " + topology)
		}
	}

	// Concurrent writes on every node while the daemons gossip.
	writes := n * meshWritesPerNode
	start := time.Now()
	done := make(chan error, n)
	for _, m := range fleet {
		go func(h *peepul.Handle[peepul.CounterPNState, peepul.CounterOp, peepul.CounterVal]) {
			for j := 0; j < meshWritesPerNode; j++ {
				if _, err := h.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 1}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(m.handle)
	}
	for range fleet {
		if err := <-done; err != nil {
			panic(err)
		}
	}
	meshAwait(fleet, writes)
	convergeNs := time.Since(start).Nanoseconds()

	// Steady state: a converged fleet keeps gossiping frontiers. Let any
	// in-flight exchanges settle before charging the idle window — heads
	// converge a few rounds before commit *sets* do (reconciliation
	// keeps shipping tracking-branch stragglers until every pair's
	// fingerprint trees agree), and the window should measure keeping a
	// converged fleet converged, not the tail of convergence.
	time.Sleep(400 * time.Millisecond)
	before := meshWireBytes(fleet)
	time.Sleep(steady)
	steadyBytes := meshWireBytes(fleet) - before

	// Propagation: one commit, cascading through push-on-commit.
	start = time.Now()
	if _, err := fleet[0].handle.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 1}); err != nil {
		panic(err)
	}
	meshAwait(fleet, writes+1)
	propagateNs := time.Since(start).Nanoseconds()

	return MeshRow{
		Topology: topology, Nodes: n, Writes: writes,
		ConvergeNs: convergeNs, PropagateNs: propagateNs,
		SteadyWindowNs:    steady.Nanoseconds(),
		SteadyBytes:       steadyBytes,
		SteadyBytesPerSec: float64(steadyBytes) / steady.Seconds(),
	}
}

// meshAwait blocks until every node holds value want and the identical
// head hash — the same convergence predicate the acceptance test
// asserts.
func meshAwait(fleet []meshNode, want int) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		ref, err := fleet[0].handle.Store().HeadHash(fleet[0].handle.Branch())
		if err != nil {
			panic(err)
		}
		converged := true
		for _, m := range fleet {
			s, err := m.handle.State()
			if err != nil {
				panic(err)
			}
			head, err := m.handle.Store().HeadHash(m.handle.Branch())
			if err != nil {
				panic(err)
			}
			if int(s.P-s.N) != want || head != ref {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("bench: %d-node fleet did not converge to %d", len(fleet), want))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// meshWireBytes sums the fleet's sync traffic, both directions on every
// node.
func meshWireBytes(fleet []meshNode) int64 {
	var total int64
	for _, m := range fleet {
		st := m.node.Stats()
		total += st.BytesSent + st.BytesRecv
	}
	return total
}

// WriteMeshJSON renders rows as the BENCH_mesh.json document: one object
// with the measured rows, stable field order, trailing newline.
func WriteMeshJSON(w io.Writer, seed int64, rows []MeshRow) error {
	doc := struct {
		Bench string    `json:"bench"`
		Seed  int64     `json:"seed"`
		Rows  []MeshRow `json:"rows"`
	}{Bench: "mesh", Seed: seed, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
