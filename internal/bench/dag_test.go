package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestDagScenarios runs every DAG-scaling scenario at toy sizes: the
// point is that the histories build cleanly (the criss-cross rounds in
// particular must resolve through virtual bases) and that the JSON
// document round-trips.
func TestDagScenarios(t *testing.T) {
	rows := Dag([]int{16, 64}, []int{24})
	if len(rows) != 2*2+2 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	seen := make(map[string]int)
	for _, r := range rows {
		seen[r.Scenario]++
		if r.Commits <= r.History/2 {
			t.Fatalf("%s/%d: commits = %d, implausibly few", r.Scenario, r.History, r.Commits)
		}
		if r.ElapsedNs < 0 {
			t.Fatalf("%s/%d: negative elapsed", r.Scenario, r.History)
		}
	}
	for _, sc := range []string{"deep-pull", "resync", "crisscross", "mesh"} {
		if seen[sc] == 0 {
			t.Fatalf("scenario %s missing from rows", sc)
		}
	}

	var buf bytes.Buffer
	if err := WriteDagJSON(&buf, 1, rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench string   `json:"bench"`
		Rows  []DagRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "dag" || len(doc.Rows) != len(rows) {
		t.Fatalf("JSON round-trip lost rows: %+v", doc)
	}
}
