package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestChaosFleets runs a toy loss × partition sweep: live fleets over
// the fault net, real heal-and-recover measurements — plus the JSON
// round-trip CI archives.
func TestChaosFleets(t *testing.T) {
	rows := Chaos(3, []float64{0, 0.25}, []time.Duration{0, 80 * time.Millisecond}, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Nodes != 3 || r.Writes != 3*meshWritesPerNode {
			t.Fatalf("unexpected shape %+v", r)
		}
		if r.ConvergeNs <= 0 || r.HorizonMs <= 0 {
			t.Fatalf("non-positive timings %+v", r)
		}
		if r.TotalBytes <= 0 {
			t.Fatalf("fleet synced zero bytes %+v", r)
		}
		if r.RedundantCommits < 0 {
			t.Fatalf("negative redundant commits %+v", r)
		}
	}
	if rows[0].LossRate != 0 || rows[0].PartitionMs != 0 {
		t.Fatalf("first row is not the zero-fault baseline: %+v", rows[0])
	}

	var buf bytes.Buffer
	if err := WriteChaosJSON(&buf, 1, rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench string     `json:"bench"`
		Rows  []ChaosRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "chaos" || len(doc.Rows) != len(rows) {
		t.Fatalf("JSON round-trip lost rows: %+v", doc)
	}
}
