package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"slices"
	"time"

	"repro/internal/counter"
	"repro/internal/replica"
	"repro/internal/wire"
)

// Observability-overhead benchmark (`peepul-bench -fig obs`): the same
// exchange measured on identical pairs with instrumentation off (the
// default — every hook is one nil check) and on (WithObservability:
// registry counters, histograms and flight-recorder spans live). Two
// scenarios bound the interesting paths:
//
//   - deep-pull: a converged pair on a deep shared history takes a
//     constant fresh divergence per iteration and syncs it — the merge,
//     pack and wire paths all run, so every instrumentation family is
//     on the clock;
//   - converged-resync: the pair re-syncs with nothing to ship — the
//     O(1) span-probe round where per-session fixed costs (span
//     allocation, session histograms) weigh the most relative to work.
//
// The two modes alternate exchange by exchange on live pairs, so at
// sample index i both columns sit on identical history depth and
// identical machine drift (GC phase, CPU frequency, a noisy CI
// neighbour). The overhead is then the median of the per-index paired
// ratios — pairing cancels the deep-pull history growth that would
// skew any column-wise statistic, and the median discards the samples
// a GC pause or scheduler hiccup poisoned on one side only. Each row
// reports the median single-exchange wall time; the acceptance bound
// is OverheadPct under the CI gate (5%).

// ObsRow is one measured (scenario, history, mode) cell.
type ObsRow struct {
	// Scenario is "deep-pull" or "converged-resync".
	Scenario string `json:"scenario"`
	// History is the shared-history depth in commits at measurement.
	History int `json:"history"`
	// Mode is "disabled" (no registry, the default) or "instrumented"
	// (WithObservability on both nodes).
	Mode string `json:"mode"`
	// Iters×Reps is the number of individually timed exchanges the
	// medians are taken over.
	Iters int `json:"iters"`
	Reps  int `json:"reps"`
	// NsPerSync is the median wall time of one exchange.
	NsPerSync int64 `json:"ns_per_sync"`
	// OverheadPct is the instrumented row's regression against its
	// disabled twin — the median of the per-index paired sample ratios,
	// in percent (zero on disabled rows).
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// ObsNs is the history-depth sweep of the overhead benchmark.
var ObsNs = []int{1000, 10000}

// ObsQuickNs keeps one moderate depth for the CI smoke gate.
var ObsQuickNs = []int{1000}

// Default iteration shape; -quick trims it in the CLI. Many short reps
// beat few long ones here: the minimum needs a window clear of GC
// pauses and scheduler noise, and short reps give it more windows.
const (
	ObsIters      = 25
	ObsReps       = 12
	ObsQuickIters = 15
	ObsQuickReps  = 10
)

// obsDivergence is the constant per-side op gap of each deep-pull
// iteration — the dag benchmark's diamond, kept small so the measured
// exchange is dominated by fixed path costs, where instrumentation
// overhead would show.
const obsDivergence = 8

// Obs measures both scenarios across the sweep, both modes per depth.
func Obs(ns []int, iters, reps int) []ObsRow {
	var rows []ObsRow
	for _, n := range ns {
		for _, scenario := range []string{"deep-pull", "converged-resync"} {
			rows = append(rows, obsScenario(scenario, n, iters, reps)...)
		}
	}
	return rows
}

// obsPair is one live converged pair plus its scenario iteration.
type obsPair struct {
	a, b *syncNode
	iter func()
}

func (p *obsPair) close() { p.a.Close(); p.b.Close() }

// newObsPair builds a converged pair at the given depth, instrumented
// or not, and binds the scenario's per-iteration work.
func newObsPair(scenario string, history int, instrumented bool) *obsPair {
	var opts []replica.NodeOption
	if instrumented {
		opts = append(opts, replica.WithObservability())
	}
	a, b := newObsBenchNode("a", 1, opts), newObsBenchNode("b", 2, opts)
	for i := 0; i < history; i++ {
		if i%2 == 0 {
			syncInc(a)
		} else {
			syncInc(b)
		}
	}
	for i := 0; i < 2; i++ {
		if err := a.SyncWith(b.Addr()); err != nil {
			panic(err)
		}
	}
	p := &obsPair{a: a, b: b}
	p.iter = func() {
		if scenario == "deep-pull" {
			for i := 0; i < obsDivergence; i++ {
				syncInc(a)
				syncInc(b)
			}
		}
		if err := a.SyncWith(b.Addr()); err != nil {
			panic(err)
		}
	}
	return p
}

// obsScenario times both modes on live pairs, alternating exchange by
// exchange and keeping each mode's best single exchange.
func obsScenario(scenario string, history, iters, reps int) []ObsRow {
	disabled := newObsPair(scenario, history, false)
	defer disabled.close()
	instrumented := newObsPair(scenario, history, true)
	defer instrumented.close()
	disabled.iter() // warm-up: caches, lazy metric resolution, TCP state
	instrumented.iter()

	one := func(p *obsPair) int64 {
		start := time.Now()
		p.iter()
		return time.Since(start).Nanoseconds()
	}
	runtime.GC() // start both columns from a clean heap
	samples := iters * reps
	dis, ins := make([]int64, samples), make([]int64, samples)
	for i := 0; i < samples; i++ {
		dis[i] = one(disabled)
		ins[i] = one(instrumented)
	}
	ratios := make([]float64, samples)
	for i := range ratios {
		ratios[i] = 100 * (float64(ins[i]) - float64(dis[i])) / float64(dis[i])
	}
	return []ObsRow{
		{Scenario: scenario, History: history, Mode: "disabled",
			Iters: iters, Reps: reps, NsPerSync: medianInt64(dis)},
		{Scenario: scenario, History: history, Mode: "instrumented",
			Iters: iters, Reps: reps, NsPerSync: medianInt64(ins),
			OverheadPct: medianFloat64(ratios)},
	}
}

func medianInt64(s []int64) int64 {
	s = append([]int64(nil), s...)
	slices.Sort(s)
	return s[len(s)/2]
}

func medianFloat64(s []float64) float64 {
	s = append([]float64(nil), s...)
	slices.Sort(s)
	return s[len(s)/2]
}

// newObsBenchNode is newSyncNode with construction options.
func newObsBenchNode(name string, id int, opts []replica.NodeOption) *syncNode {
	n, err := replica.NewNode(name, id, opts...)
	if err != nil {
		panic(err)
	}
	obj, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		n, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	if err != nil {
		panic(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	return &syncNode{Node: n, obj: obj}
}

// ObsGateErr validates the overhead bound on a finished run: no
// instrumented cell may regress more than limitPct over its disabled
// twin.
func ObsGateErr(rows []ObsRow, limitPct float64) error {
	gated := 0
	for _, r := range rows {
		if r.Mode != "instrumented" {
			continue
		}
		gated++
		if r.OverheadPct > limitPct {
			return fmt.Errorf("%s at history %d: instrumentation overhead %.1f%% exceeds the %.1f%% gate",
				r.Scenario, r.History, r.OverheadPct, limitPct)
		}
	}
	if gated == 0 {
		return fmt.Errorf("no instrumented row to gate on")
	}
	return nil
}

// PrintObs renders the overhead table. Healthy output shows the
// instrumented column within noise of disabled — single-digit percent
// at worst.
func PrintObs(w io.Writer, rows []ObsRow) {
	fmt.Fprintln(w, "Obs: instrumentation overhead, WithObservability vs disabled")
	fmt.Fprintf(w, "%-18s %10s %14s %12s %10s\n",
		"scenario", "#history", "mode", "per-sync", "overhead")
	for _, r := range rows {
		overhead := "-"
		if r.Mode == "instrumented" {
			overhead = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		fmt.Fprintf(w, "%-18s %10d %14s %12s %10s\n",
			r.Scenario, r.History, r.Mode,
			fmtDur(time.Duration(r.NsPerSync)), overhead)
	}
}

// WriteObsJSON renders rows as the BENCH_obs.json document.
func WriteObsJSON(w io.Writer, seed int64, rows []ObsRow) error {
	doc := struct {
		Bench string   `json:"bench"`
		Seed  int64    `json:"seed"`
		Rows  []ObsRow `json:"rows"`
	}{Bench: "obs", Seed: seed, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
