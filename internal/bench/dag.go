package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/counter"
	"repro/internal/store"
	"repro/internal/wire"
)

// DAG-scaling benchmark (`peepul-bench -fig dag`): wall time of store
// merges as a function of history length. With the generation-guided
// reachability layer every scenario's measured cost tracks the size of
// the divergence (which the sweep holds constant), not the depth of the
// history (which grows 10²–10⁵) — the flat trajectory recorded in
// BENCH_dag.json is the regression signal CI watches. Only the merge
// calls (Pull/Sync) are inside the timers: shipping is excluded in the
// replicated scenarios because its frontier sampling is
// O(FrontierWalkBudget)-capped — constant, but a constant large enough
// to drown the merge signal being measured.

// DagRow is one measured merge at one history length.
type DagRow struct {
	// Scenario names the DAG shape: "deep-pull" (constant diamond on a
	// deep linear history), "resync" (converged pair, one fresh op),
	// "crisscross" (concurrent cross-merges resolved through a virtual
	// base, replicated via Export/Import), "mesh" (ring gossip over
	// several branches).
	Scenario string `json:"scenario"`
	// History is the number of operations applied before measuring.
	History int `json:"history"`
	// Branches is the number of replicas/branches involved.
	Branches int `json:"branches"`
	// Commits is the DAG size at measurement time (largest store).
	Commits int `json:"commits"`
	// ElapsedNs is the wall time of the measured merges (Pull/Sync calls
	// only; delta shipping stays outside the timer).
	ElapsedNs int64 `json:"elapsed_ns"`
}

// Elapsed returns the measured wall time.
func (r DagRow) Elapsed() time.Duration { return time.Duration(r.ElapsedNs) }

// DagNs is the history sweep of the single-store scenarios.
var DagNs = []int{100, 1000, 10000, 100000}

// DagMeshNs is the history sweep of the multi-replica scenarios, capped
// lower because building the mesh applies the whole sweep per replica.
var DagMeshNs = []int{100, 1000, 10000}

func newDagStore() *store.Store[int64, counter.Op, counter.Val] {
	return store.New[int64, counter.Op, counter.Val](counter.IncCounter{}, wire.IncCounter{}, "main")
}

func dagApply(s *store.Store[int64, counter.Op, counter.Val], b string) {
	if _, err := s.Apply(b, counter.Op{Kind: counter.Inc, N: 1}); err != nil {
		panic(err)
	}
}

// Dag runs every scenario over its sweep.
func Dag(ns, meshNs []int) []DagRow {
	var rows []DagRow
	for _, n := range ns {
		rows = append(rows, dagDeepPull(n), dagResync(n))
	}
	for _, n := range meshNs {
		rows = append(rows, dagCrissCross(n), dagMesh(n, 6))
	}
	return rows
}

// dagDeepPull: n shared operations, then a constant 8-op divergence on
// each side of a fork, then one Sync — the diamond whose cost must not
// depend on n.
func dagDeepPull(history int) DagRow {
	s := newDagStore()
	for i := 0; i < history; i++ {
		dagApply(s, "main")
	}
	if err := s.Fork("main", "dev"); err != nil {
		panic(err)
	}
	const divergence = 8
	for i := 0; i < divergence; i++ {
		dagApply(s, "main")
		dagApply(s, "dev")
	}
	start := time.Now()
	if err := s.Sync("main", "dev"); err != nil {
		panic(err)
	}
	return DagRow{
		Scenario: "deep-pull", History: history, Branches: 2,
		Commits: s.NumCommits(), ElapsedNs: time.Since(start).Nanoseconds(),
	}
}

// dagResync: a converged pair with one fresh operation — the LCA query
// degenerates to an ancestor check plus a fast-forward.
func dagResync(history int) DagRow {
	s := newDagStore()
	for i := 0; i < history; i++ {
		dagApply(s, "main")
	}
	if err := s.Fork("main", "dev"); err != nil {
		panic(err)
	}
	dagApply(s, "main")
	start := time.Now()
	if err := s.Sync("main", "dev"); err != nil {
		panic(err)
	}
	return DagRow{
		Scenario: "resync", History: history, Branches: 2,
		Commits: s.NumCommits(), ElapsedNs: time.Since(start).Nanoseconds(),
	}
}

// dagPeer is a replica simulated as its own store, exchanging histories
// through Export/Import like the wire protocol does — which is what lets
// two peers merge each other *concurrently* and produce the criss-cross
// DAGs a single store's locking discipline forbids.
type dagPeer struct {
	s    *store.Store[int64, counter.Op, counter.Val]
	name string
}

func newDagPeer(name string, id int) *dagPeer {
	return &dagPeer{
		s: store.NewAt[int64, counter.Op, counter.Val](
			counter.IncCounter{}, wire.IncCounter{}, "main", id*8),
		name: name,
	}
}

// ship transfers q's current head into p's tracking branch for q,
// cutting the export at p's sampled frontier (delta shipping).
func (p *dagPeer) ship(q *dagPeer) {
	track := "from/" + q.name
	var have []store.Hash
	if f, err := p.s.Frontier(track); err == nil {
		have = f.HaveSet()
	}
	delta, head, err := q.s.ExportSince("main", have)
	if err != nil {
		panic(err)
	}
	if err := p.s.Import(track, delta, head); err != nil {
		panic(err)
	}
}

// pull merges the tracked branch of q into p's main. A non-nil timer
// accumulates just the merge's wall time, keeping shipping out of the
// measurement.
func (p *dagPeer) pull(q *dagPeer, timer *time.Duration) {
	var start time.Time
	if timer != nil {
		start = time.Now()
	}
	if err := p.s.Pull("main", "from/"+q.name); err != nil {
		panic(err)
	}
	if timer != nil {
		*timer += time.Since(start)
	}
}

// crossRound is one criss-cross round for a pair: an operation each,
// concurrent cross-merges (both ship first, then both merge — two merge
// commits of the same two tips), then a resolving exchange whose LCA is
// the two merges' *virtual base*, then a fast-forward to converge.
func crossRound(a, b *dagPeer, timer *time.Duration) {
	dagApply(a.s, "main")
	dagApply(b.s, "main")
	a.ship(b)
	b.ship(a)
	a.pull(b, timer)
	b.pull(a, timer)
	// Resolve the criss-cross: a merges b's merge commit over the
	// recursive virtual base, b fast-forwards to the resolution.
	a.ship(b)
	a.pull(b, timer)
	b.ship(a)
	b.pull(a, timer)
}

// dagCrissCross: history/2 criss-cross rounds, then one more measured —
// every round exercises the paint-down walk finding *two* maximal common
// ancestors and the virtual-base recursion, on top of ever-deeper
// history.
func dagCrissCross(history int) DagRow {
	a, b := newDagPeer("a", 1), newDagPeer("b", 2)
	for ops := 0; ops < history; ops += 2 {
		crossRound(a, b, nil)
	}
	var merge time.Duration
	crossRound(a, b, &merge)
	return DagRow{
		Scenario: "crisscross", History: history, Branches: 2,
		Commits:   max(a.s.NumCommits(), b.s.NumCommits()),
		ElapsedNs: merge.Nanoseconds(),
	}
}

// meshRound: every peer applies one operation, then the ring edges run
// sequential two-way exchanges (ship, merge, ship back, fast-forward) —
// twice. The first pass accumulates every operation into the last edge's
// merge; the second pass fast-forwards the lagging peers to it, so each
// round starts from full convergence and the rows measure steady-state
// exchange cost rather than a growing backlog.
func meshRound(peers []*dagPeer, timer *time.Duration) {
	for _, p := range peers {
		dagApply(p.s, "main")
	}
	for pass := 0; pass < 2; pass++ {
		for i := range peers {
			p, q := peers[i], peers[(i+1)%len(peers)]
			p.ship(q)
			p.pull(q, timer)
			q.ship(p)
			q.pull(p, timer)
		}
	}
}

// dagMesh: m replicas gossiping along a ring — a wide, merge-heavy DAG
// whose width grows with the replica count and whose depth grows with
// history. The measured round's cost must track the round's divergence
// (m operations), not the accumulated history.
func dagMesh(history, m int) DagRow {
	peers := make([]*dagPeer, m)
	for i := range peers {
		peers[i] = newDagPeer(fmt.Sprintf("p%d", i), i+1)
	}
	for ops := 0; ops < history; ops += m {
		meshRound(peers, nil)
	}
	var merge time.Duration
	meshRound(peers, &merge)
	maxCommits := 0
	for _, p := range peers {
		maxCommits = max(maxCommits, p.s.NumCommits())
	}
	return DagRow{
		Scenario: "mesh", History: history, Branches: m,
		Commits: maxCommits, ElapsedNs: merge.Nanoseconds(),
	}
}

// WriteDagJSON renders rows as the BENCH_dag.json document: one object
// with the sweep parameters and the measured rows, stable field order,
// trailing newline.
func WriteDagJSON(w io.Writer, seed int64, rows []DagRow) error {
	doc := struct {
		Bench string   `json:"bench"`
		Seed  int64    `json:"seed"`
		Rows  []DagRow `json:"rows"`
	}{Bench: "dag", Seed: seed, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
