package bench

import (
	"strings"
	"testing"
)

// TestSyncCostDeltaIsFlat asserts the acceptance property of the delta
// engine: re-syncing an already-converged pair costs O(frontier) bytes —
// flat in history length — while the legacy full protocol's cost grows
// with the whole history.
func TestSyncCostDeltaIsFlat(t *testing.T) {
	rows := SyncCost([]int{64, 512}, 1)
	cost := map[string]int64{}
	for _, r := range rows {
		cost[r.Topology+"/"+r.Phase+"/"+r.Proto+"/"+itoa(r.History)] = r.Bytes
		if r.Proto == "delta" && r.Phase == "resync" && r.Commits != 0 {
			t.Errorf("%s/%d: converged delta re-sync shipped %d commits, want 0",
				r.Topology, r.History, r.Commits)
		}
	}
	for _, topo := range []string{"pair", "ring"} {
		small := cost[topo+"/resync/delta/64"]
		large := cost[topo+"/resync/delta/512"]
		if small == 0 || large == 0 {
			t.Fatalf("%s: missing rows: %v", topo, cost)
		}
		// Flat within 2x across an 8x history growth (frontier sample
		// density varies slightly with DAG shape).
		if large > 2*small {
			t.Errorf("%s: delta re-sync grew with history: %d -> %d bytes", topo, small, large)
		}
		fullLarge := cost[topo+"/resync/full/512"]
		if fullLarge < 8*large {
			t.Errorf("%s: full re-sync (%d bytes) should dwarf delta (%d bytes)", topo, fullLarge, large)
		}
	}
	// Full protocol cost must grow roughly linearly with history.
	if cost["pair/resync/full/512"] < 4*cost["pair/resync/full/64"] {
		t.Errorf("full protocol should scale with history: %d vs %d",
			cost["pair/resync/full/64"], cost["pair/resync/full/512"])
	}
}

func TestPrintSyncCost(t *testing.T) {
	rows := SyncCost([]int{32}, 7)
	var sb strings.Builder
	PrintSyncCost(&sb, rows)
	out := sb.String()
	for _, want := range []string{"Sync cost", "pair", "ring", "resync", "fresh-op", "delta", "full"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output misses %q:\n%s", want, out)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
