package bench

import (
	"strings"
	"testing"
)

func TestQueueWorkloadDeterministic(t *testing.T) {
	l1, a1, b1 := QueueWorkload(500, 42)
	l2, a2, b2 := QueueWorkload(500, 42)
	if l1.Len() != l2.Len() || a1.Len() != a2.Len() || b1.Len() != b2.Len() {
		t.Fatal("same seed must produce the same workload")
	}
	_, _, b3 := QueueWorkload(500, 43)
	if b1.Len() == b3.Len() {
		// Sizes can collide, so compare contents.
		s1, s3 := b1.ToSlice(), b3.ToSlice()
		same := len(s1) == len(s3)
		for i := 0; same && i < len(s1); i++ {
			same = s1[i] == s3[i]
		}
		if same {
			t.Fatal("different seeds must diverge")
		}
	}
}

func TestQueueWorkloadShape(t *testing.T) {
	lca, a, b := QueueWorkload(1000, 1)
	// 75:25 enqueue:dequeue keeps the queue roughly half the op count.
	if lca.Len() < 300 || lca.Len() > 700 {
		t.Fatalf("lca size %d out of expected band", lca.Len())
	}
	if a.Len() <= lca.Len()/2 || b.Len() <= lca.Len()/2 {
		t.Fatalf("branches should stay populated: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestMixedWorkloadDistribution(t *testing.T) {
	ops := MixedOrSetWorkload(10000, 1000, 7)
	var lookups, adds, removes int
	for _, mo := range ops {
		switch mo.Op.Kind {
		case 3: // orset.Lookup
			lookups++
		case 1: // orset.Add
			adds++
		case 2: // orset.Remove
			removes++
		}
	}
	if lookups < 6500 || lookups > 7500 {
		t.Fatalf("lookups = %d, want ≈7000", lookups)
	}
	if adds < 1700 || adds > 2300 {
		t.Fatalf("adds = %d, want ≈2000", adds)
	}
	if removes < 700 || removes > 1300 {
		t.Fatalf("removes = %d, want ≈1000", removes)
	}
}

func TestFig12SmallShape(t *testing.T) {
	rows := Fig12([]int{200, 400}, 1)
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if r.Peepul <= 0 || r.Quark <= 0 {
			t.Fatalf("non-positive timings: %+v", r)
		}
	}
	// Quark's quadratic reification should already lose at these sizes.
	if rows[1].Quark < rows[1].Peepul {
		t.Fatalf("expected Quark slower: %+v", rows[1])
	}
}

func TestFig13SmallShape(t *testing.T) {
	rows := Fig13([]int{2000, 4000}, 1)
	for _, r := range rows {
		if r.PeepulSize > Fig13ValueRange {
			t.Fatalf("Peepul OR-set-space can never exceed the value range: %+v", r)
		}
		if r.QuarkSize < r.PeepulSize {
			t.Fatalf("Quark should carry duplicates: %+v", r)
		}
	}
}

func TestFig14And15SmallShape(t *testing.T) {
	rows := Fig14([]int{2000}, 1)
	if len(rows) != 1 || rows[0].OrSet <= 0 || rows[0].Space <= 0 || rows[0].SpaceTime <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	srows := Fig15([]int{2000}, 1)
	if srows[0].Space > srows[0].OrSet {
		t.Fatalf("space-efficient OR-set must not exceed the plain one: %+v", srows[0])
	}
	if srows[0].Space != srows[0].SpaceTime {
		t.Fatalf("space and spacetime store the same pairs: %+v", srows[0])
	}
}

func TestPrintersProduceRows(t *testing.T) {
	var sb strings.Builder
	PrintFig12(&sb, Fig12([]int{100}, 1))
	PrintFig13(&sb, Fig13([]int{500}, 1))
	PrintFig14(&sb, Fig14([]int{500}, 1))
	PrintFig15(&sb, Fig15([]int{500}, 1))
	out := sb.String()
	for _, want := range []string{"Figure 12", "Figure 13", "Figure 14", "Figure 15", "peepul-merge", "or-set-spacetime"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTable3SmokeAndPrinter(t *testing.T) {
	reports := Table3(0.02, "")
	if len(reports) < 10 {
		t.Fatalf("expected a report per MRDT, got %d", len(reports))
	}
	var sb strings.Builder
	PrintTable3(&sb, reports)
	out := sb.String()
	for _, want := range []string{"functional-queue", "or-set-space", "irc-chat", "ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in Table 3' output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("certification failure in Table 3':\n%s", out)
	}
}
