package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/sim"
)

// PrintFig12 renders Figure 12 as the series the paper plots (merge time
// in seconds, log scale in the paper).
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintln(w, "Figure 12: merge performance of Peepul and Quark queues")
	fmt.Fprintf(w, "%10s %16s %16s %12s\n", "#ops", "peepul-merge", "quark-merge", "speedup")
	for _, r := range rows {
		speedup := float64(r.Quark) / float64(max64(int64(r.Peepul), 1))
		fmt.Fprintf(w, "%10d %16s %16s %11.0fx\n", r.N, fmtDur(r.Peepul), fmtDur(r.Quark), speedup)
	}
}

// PrintFig13 renders Figure 13 (final set size, duplicates included).
func PrintFig13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintln(w, "Figure 13: size of Peepul and Quark OR-sets")
	fmt.Fprintf(w, "%10s %12s %12s\n", "#ops", "quark-size", "peepul-size")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %12d %12d\n", r.N, r.QuarkSize, r.PeepulSize)
	}
}

// PrintFig14 renders Figure 14 (total workload running time).
func PrintFig14(w io.Writer, rows []Fig14Row) {
	fmt.Fprintln(w, "Figure 14: running time of OR-sets")
	fmt.Fprintf(w, "%10s %14s %14s %18s\n", "#ops", "or-set", "or-set-space", "or-set-spacetime")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %14s %14s %18s\n", r.N, fmtDur(r.OrSet), fmtDur(r.Space), fmtDur(r.SpaceTime))
	}
}

// PrintFig15 renders Figure 15 (maximum state footprint, KB).
func PrintFig15(w io.Writer, rows []Fig15Row) {
	fmt.Fprintln(w, "Figure 15: space consumption of OR-sets (max KB)")
	fmt.Fprintf(w, "%10s %14s %14s %18s\n", "#ops", "or-set", "or-set-space", "or-set-spacetime")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %14.2f %14.2f %18.2f\n",
			r.N, float64(r.OrSet)/1024, float64(r.Space)/1024, float64(r.SpaceTime)/1024)
	}
}

// PrintSyncCost renders the sync-cost table: wire bytes and wall time of
// one exchange (pair) or one gossip round (ring) against history length,
// legacy full-history protocol versus incremental delta protocol.
func PrintSyncCost(w io.Writer, rows []SyncCostRow) {
	fmt.Fprintln(w, "Sync cost: wire bytes per exchange, full-history vs incremental delta")
	fmt.Fprintf(w, "%10s %8s %8s %10s %12s %10s %12s\n",
		"#history", "topo", "phase", "proto", "bytes", "commits", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %8s %8s %10s %12d %10d %12s\n",
			r.History, r.Topology, r.Phase, r.Proto, r.Bytes, r.Commits, fmtDur(r.Elapsed))
	}
}

// PrintDag renders the DAG-scaling table: merge wall time (Pull/Sync
// calls only; delta shipping excluded) against history length per
// scenario. The divergence is held constant in every scenario, so a
// healthy O(divergence) engine shows flat times down each scenario's
// column while history grows 10²–10⁵.
func PrintDag(w io.Writer, rows []DagRow) {
	fmt.Fprintln(w, "DAG scaling: merge cost vs history length (divergence held constant)")
	fmt.Fprintf(w, "%12s %10s %10s %10s %12s\n",
		"scenario", "#history", "branches", "#commits", "merge-time")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %10d %10d %10d %12s\n",
			r.Scenario, r.History, r.Branches, r.Commits, fmtDur(r.Elapsed()))
	}
}

// PrintMesh renders the always-on fleet table: convergence and
// propagation wall times plus the steady-state wire cost of keeping a
// converged fleet converged (frontier-only re-syncs — the bytes/sec
// column should stay small and history-independent).
func PrintMesh(w io.Writer, rows []MeshRow) {
	fmt.Fprintln(w, "Mesh: always-on daemon fleets, no SyncWith (converge / propagate / idle cost)")
	fmt.Fprintf(w, "%8s %7s %8s %12s %12s %12s %14s %14s\n",
		"topo", "nodes", "writes", "converge", "propagate", "idle-window", "idle-rate", "frontier-rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%8s %7d %8d %12s %12s %12s %12s/s %12s/s\n",
			r.Topology, r.Nodes, r.Writes,
			fmtDur(time.Duration(r.ConvergeNs)), fmtDur(time.Duration(r.PropagateNs)),
			fmtDur(time.Duration(r.SteadyWindowNs)), fmtBytes(int64(r.SteadyBytesPerSec)),
			fmtBytes(int64(r.BaselineSteadyBytesPerSec)))
	}
}

// PrintChaos renders the chaos table: recovery latency and wasted
// transfer per fault mix, against the zero-fault baseline row.
func PrintChaos(w io.Writer, rows []ChaosRow) {
	fmt.Fprintln(w, "Chaos: fleet recovery after drops and rolling partitions (converge after heal / wasted transfer)")
	fmt.Fprintf(w, "%7s %6s %10s %8s %9s %12s %10s %10s\n",
		"nodes", "loss", "partition", "writes", "horizon", "converge", "bytes", "redundant")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d %5.0f%% %9dms %8d %8dms %12s %10s %10d\n",
			r.Nodes, r.LossRate*100, r.PartitionMs, r.Writes, r.HorizonMs,
			fmtDur(time.Duration(r.ConvergeNs)), fmtBytes(r.TotalBytes), r.RedundantCommits)
	}
}

// PrintSpace renders the space table: resident object bytes and sync
// bytes, packed (delta-chained pack layer) vs the pre-pack full-snapshot
// format, with cold materialize latency and allocations per operation.
func PrintSpace(w io.Writer, rows []SpaceRow) {
	fmt.Fprintln(w, "Space: pack-layer storage and sync cost vs full-snapshot storage")
	fmt.Fprintf(w, "%-16s %8s %10s %10s %7s %10s %10s %7s %10s %9s\n",
		"datatype", "#ops", "packed", "full", "resx", "pull-pack", "pull-full", "syncx", "mat-lat", "allocs/op")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %8d %10s %10s %6.1fx %10s %10s %6.1fx %10s %9.1f\n",
			r.Datatype, r.History,
			fmtBytes(r.PackedBytes), fmtBytes(r.FullBytes), r.ResidentReduction,
			fmtBytes(r.DeepPullPackedBytes), fmtBytes(r.DeepPullFullBytes), r.SyncReduction,
			fmtDur(time.Duration(r.MaterializeNs)), r.AllocsPerApply)
	}
}

// PrintDurable renders the durability table: per-operation commit
// latency in memory vs on disk vs with per-commit fsync, recovery time
// (the default checkpoint-seeking open and a forced full replay), and
// the on-disk footprint against the resident packed bytes.
func PrintDurable(w io.Writer, rows []DurableRow) {
	fmt.Fprintln(w, "Durable: disk-backed commit latency, recovery time, on-disk footprint")
	fmt.Fprintf(w, "%-16s %8s %10s %10s %10s %10s %-10s %10s %10s %10s %6s %10s\n",
		"datatype", "#ops", "mem/op", "disk/op", "fsync/op", "recovery", "mode", "replay", "disk", "resident", "segs", "deep-pull")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %8d %10s %10s %10s %10s %-10s %10s %10s %10s %6d %10s\n",
			r.Datatype, r.History,
			fmtDur(time.Duration(r.ApplyMemNs)), fmtDur(time.Duration(r.ApplyDiskNs)),
			fmtDur(time.Duration(r.ApplyFsyncNs)), fmtDur(time.Duration(r.RecoveryNs)),
			r.RecoveryMode, fmtDur(time.Duration(r.FullReplayNs)),
			fmtBytes(r.DiskBytes), fmtBytes(r.ResidentBytes), r.Segments,
			fmtDur(time.Duration(r.DeepPullNs)))
	}
}

func fmtBytes(n int64) string {
	switch {
	case n < 10<<10:
		return fmt.Sprintf("%dB", n)
	case n < 10<<20:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	case n < 10<<30:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	}
}

// MatchType reports whether a registered datatype name passes a -type
// filter: the empty filter matches everything, otherwise an exact name
// or substring match is required.
func MatchType(name, filter string) bool {
	return filter == "" || name == filter || strings.Contains(name, filter)
}

// Table3 runs the certification harness for every registered MRDT whose
// name passes the -type filter and returns the reports — the
// reproduction's analogue of the paper's Table 3.
func Table3(scale float64, typeFilter string) []sim.Report {
	runners := harness.All()
	reports := make([]sim.Report, 0, len(runners))
	for _, r := range runners {
		if !MatchType(r.Name(), typeFilter) {
			continue
		}
		cfg := r.Config()
		cfg.RandomExecutions = int(float64(cfg.RandomExecutions) * scale)
		if cfg.RandomExecutions < 1 {
			cfg.RandomExecutions = 1
		}
		reports = append(reports, r.Certify(cfg))
	}
	return reports
}

// PrintTable3 renders the certification-effort table.
func PrintTable3(w io.Writer, reports []sim.Report) {
	fmt.Fprintln(w, "Table 3': certification effort (bounded checking in place of F*/SMT proofs)")
	fmt.Fprintf(w, "%-22s %12s %12s %12s %12s %7s\n",
		"MRDT", "executions", "transitions", "obligations", "time", "status")
	for _, rep := range reports {
		status := "ok"
		if rep.Err != nil {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%-22s %12d %12d %12d %12s %7s\n",
			rep.Name, rep.Executions, rep.Transitions, rep.Obligations,
			fmtDur(rep.Duration), status)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
