package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/counter"
	"repro/internal/replica"
	"repro/internal/wire"
)

// Recon benchmark (`peepul-bench -fig recon`): the range-fingerprint
// set-reconciliation dialect against the sampled-frontier baseline it
// replaces. Two sweeps over history depth, each measured under both
// negotiation modes on otherwise identical pairs:
//
//   - converged: a fully converged pair re-syncs. Recon resolves this
//     with a single span probe and its match — O(1) frames, zero
//     commits, cost flat in depth — where the frontier baseline still
//     ships its ancestor sample every round;
//   - diverged: after a shared prefix of n commits the sides diverge by
//     a fixed d operations each. Recon negotiates the exact symmetric
//     difference (redundant re-ships must be zero), so its wire cost
//     tracks d, never n.
//
// A multi-object row pins the node-span optimization: one probe settles
// a whole converged node, not one per object.

// ReconRow is one measured exchange.
type ReconRow struct {
	// Scenario is "converged", "diverged" or "multi-object".
	Scenario string `json:"scenario"`
	// History is the shared-prefix depth in commits.
	History int `json:"history"`
	// Divergence is the per-side operation gap at measurement time
	// (zero for converged scenarios).
	Divergence int `json:"divergence"`
	// Objects is the number of objects on the pair (1 except multi-object).
	Objects int `json:"objects"`
	// Mode is "recon" (fingerprint negotiation) or "frontier" (the
	// sampled-frontier baseline, recon disabled on both nodes).
	Mode string `json:"mode"`
	// Bytes counts wire traffic in both directions, client side.
	Bytes int64 `json:"bytes"`
	// Commits counts commits shipped in either direction.
	Commits int64 `json:"commits"`
	// RangesSent counts fingerprint probes the client issued (zero under
	// the frontier baseline).
	RangesSent int64 `json:"ranges_sent"`
	// RedundantCommits counts received commits already held — the
	// baseline's overshoot; exactness means zero for recon.
	RedundantCommits int64 `json:"redundant_commits"`
	// ElapsedNs is the wall time of the exchange.
	ElapsedNs int64 `json:"elapsed_ns"`
}

// ReconNs is the history-depth sweep of the recon benchmark.
var ReconNs = []int{100, 1000, 10000}

// ReconQuickNs keeps the deepest point so the converged gate still
// checks the 10⁴ acceptance bound under -quick.
var ReconQuickNs = []int{100, 10000}

// reconDivergence is the fixed per-side gap of the diverged scenario.
const reconDivergence = 512

// Recon measures both negotiation modes across the sweep.
func Recon(ns []int, seed int64) []ReconRow {
	var rows []ReconRow
	for _, n := range ns {
		for _, mode := range []string{"frontier", "recon"} {
			rows = append(rows, reconConverged(n, mode))
			rows = append(rows, reconDiverged(n, mode, seed))
		}
	}
	for _, mode := range []string{"frontier", "recon"} {
		rows = append(rows, reconMultiObject(500, 4, mode))
	}
	return rows
}

// reconMeasure runs one client→server exchange and charges the client's
// stat deltas (plus the server's redundant installs) to a row.
func reconMeasure(client, server *syncNode) (ReconRow, error) {
	cb, sb := client.Stats(), server.Stats()
	start := time.Now()
	if err := client.SyncWith(server.Addr()); err != nil {
		return ReconRow{}, err
	}
	elapsed := time.Since(start)
	ca, sa := client.Stats(), server.Stats()
	return ReconRow{
		Bytes:      (ca.BytesSent - cb.BytesSent) + (ca.BytesRecv - cb.BytesRecv),
		Commits:    (ca.CommitsSent - cb.CommitsSent) + (sa.CommitsSent - sb.CommitsSent),
		RangesSent: ca.RangesSent - cb.RangesSent,
		RedundantCommits: (ca.RedundantCommits - cb.RedundantCommits) +
			(sa.RedundantCommits - sb.RedundantCommits),
		ElapsedNs: elapsed.Nanoseconds(),
	}, nil
}

// reconPair builds a converged two-node pair with history commits split
// between the sides, negotiation mode applied to both nodes.
func reconPair(history int, mode string) (*syncNode, *syncNode) {
	a, b := newSyncNode("a", 1), newSyncNode("b", 2)
	if mode == "frontier" {
		a.SetReconEnabled(false)
		b.SetReconEnabled(false)
	}
	for i := 0; i < history; i++ {
		if i%2 == 0 {
			syncInc(a)
		} else {
			syncInc(b)
		}
	}
	for i := 0; i < 2; i++ {
		if err := a.SyncWith(b.Addr()); err != nil {
			panic(err)
		}
	}
	return a, b
}

func reconConverged(history int, mode string) ReconRow {
	a, b := reconPair(history, mode)
	defer a.Close()
	defer b.Close()
	row, err := reconMeasure(a, b)
	if err != nil {
		panic(err)
	}
	row.Scenario, row.History, row.Objects, row.Mode = "converged", history, 1, mode
	return row
}

func reconDiverged(history int, mode string, seed int64) ReconRow {
	a, b := reconPair(history, mode)
	defer a.Close()
	defer b.Close()
	for i := 0; i < reconDivergence; i++ {
		syncInc(a)
		syncInc(b)
	}
	row, err := reconMeasure(a, b)
	if err != nil {
		panic(err)
	}
	row.Scenario, row.History, row.Divergence, row.Objects, row.Mode =
		"diverged", history, reconDivergence, 1, mode
	return row
}

// reconMultiObject builds a converged pair hosting several objects and
// measures the re-sync: under recon one node-span probe settles all of
// them; the baseline negotiates every object separately.
func reconMultiObject(history, objects int, mode string) ReconRow {
	a, b := newMultiNode("a", 1, objects), newMultiNode("b", 2, objects)
	defer a.Close()
	defer b.Close()
	if mode == "frontier" {
		a.SetReconEnabled(false)
		b.SetReconEnabled(false)
	}
	for i := 0; i < history; i++ {
		a.inc(i % objects)
	}
	for i := 0; i < 2; i++ {
		if err := a.SyncWith(b.Addr()); err != nil {
			panic(err)
		}
	}
	row, err := reconMeasure(&a.syncNode, &b.syncNode)
	if err != nil {
		panic(err)
	}
	row.Scenario, row.History, row.Objects, row.Mode = "multi-object", history, objects, mode
	return row
}

// multiNode is a syncNode hosting extra counter objects beside "counter".
type multiNode struct {
	syncNode
	objs []*replica.TypedObject[counter.PNState, counter.Op, counter.Val]
}

func newMultiNode(name string, id, objects int) *multiNode {
	n := newSyncNode(name, id)
	m := &multiNode{syncNode: *n, objs: []*replica.TypedObject[counter.PNState, counter.Op, counter.Val]{n.obj}}
	for i := 1; i < objects; i++ {
		o, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
			n.Node, fmt.Sprintf("counter-%d", i), "pn-counter", counter.PNCounter{}, wire.PNCounter{})
		if err != nil {
			panic(err)
		}
		m.objs = append(m.objs, o)
	}
	return m
}

func (m *multiNode) inc(i int) {
	if _, err := m.objs[i].Do(counter.Op{Kind: counter.Inc, N: 1}); err != nil {
		panic(err)
	}
}

// ReconGateErr validates the converged acceptance bound on a finished
// run: at the deepest swept history the recon re-sync must ship zero
// commits, zero redundant commits, and stay under a small constant byte
// ceiling that a depth-proportional negotiation could not meet.
func ReconGateErr(rows []ReconRow) error {
	const ceiling = 1024
	deepest := ReconRow{History: -1}
	for _, r := range rows {
		if r.Scenario == "converged" && r.Mode == "recon" && r.History > deepest.History {
			deepest = r
		}
	}
	if deepest.History < 0 {
		return fmt.Errorf("no converged recon row to gate on")
	}
	if deepest.Commits != 0 || deepest.RedundantCommits != 0 {
		return fmt.Errorf("converged re-sync at history %d shipped %d commits (%d redundant), want 0",
			deepest.History, deepest.Commits, deepest.RedundantCommits)
	}
	if deepest.Bytes > ceiling {
		return fmt.Errorf("converged re-sync at history %d cost %d bytes, ceiling %d",
			deepest.History, deepest.Bytes, ceiling)
	}
	return nil
}

// PrintRecon renders the recon table: wire cost of one exchange per
// scenario and depth, fingerprint negotiation vs the sampled-frontier
// baseline. Healthy output shows the recon converged column flat and
// tiny down the depth sweep, and zero redundant commits everywhere.
func PrintRecon(w io.Writer, rows []ReconRow) {
	fmt.Fprintln(w, "Recon: range-fingerprint negotiation vs sampled-frontier baseline")
	fmt.Fprintf(w, "%-14s %10s %6s %5s %10s %10s %9s %10s %10s\n",
		"scenario", "#history", "gap", "objs", "mode", "bytes", "commits", "redundant", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10d %6d %5d %10s %10s %9d %10d %10s\n",
			r.Scenario, r.History, r.Divergence, r.Objects, r.Mode,
			fmtBytes(r.Bytes), r.Commits, r.RedundantCommits,
			fmtDur(time.Duration(r.ElapsedNs)))
	}
}

// WriteReconJSON renders rows as the BENCH_recon.json document.
func WriteReconJSON(w io.Writer, seed int64, rows []ReconRow) error {
	doc := struct {
		Bench string     `json:"bench"`
		Seed  int64      `json:"seed"`
		Rows  []ReconRow `json:"rows"`
	}{Bench: "recon", Seed: seed, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
