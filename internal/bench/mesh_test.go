package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestMeshFleets runs both fleet topologies at toy sizes: live TCP
// nodes, daemon-only replication, real convergence — plus the JSON
// round-trip CI archives.
func TestMeshFleets(t *testing.T) {
	rows := Mesh([]int{3}, []int{3}, 150*time.Millisecond)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Nodes != 3 || r.Writes != 3*meshWritesPerNode {
			t.Fatalf("%s: unexpected shape %+v", r.Topology, r)
		}
		if r.ConvergeNs <= 0 || r.PropagateNs <= 0 {
			t.Fatalf("%s: non-positive timings %+v", r.Topology, r)
		}
		if r.SteadyBytes < 0 {
			t.Fatalf("%s: negative steady bytes %+v", r.Topology, r)
		}
	}
	if rows[0].Topology != "ring" || rows[1].Topology != "full" {
		t.Fatalf("topologies = %s, %s", rows[0].Topology, rows[1].Topology)
	}

	var buf bytes.Buffer
	if err := WriteMeshJSON(&buf, 1, rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench string    `json:"bench"`
		Rows  []MeshRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "mesh" || len(doc.Rows) != len(rows) {
		t.Fatalf("JSON round-trip lost rows: %+v", doc)
	}
}
