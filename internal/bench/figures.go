package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/orset"
	"repro/internal/quark"
	"repro/internal/queue"
)

// Fig12Ns is the paper's Figure 12 sweep: number of operations used to
// build the diverging queues.
var Fig12Ns = []int{1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000}

// Fig12Row is one point of Figure 12: wall-clock time of a single
// three-way queue merge under each system.
type Fig12Row struct {
	N      int
	Peepul time.Duration
	Quark  time.Duration
}

// Fig12 regenerates Figure 12: for each operation count, build the same
// LCA and divergent versions and time the Peepul linear merge against the
// Quark relational merge.
func Fig12(ns []int, seed int64) []Fig12Row {
	var peepul queue.Queue
	var qk quark.Queue
	rows := make([]Fig12Row, 0, len(ns))
	for _, n := range ns {
		lca, a, b := QueueWorkload(n, seed)
		start := time.Now()
		_ = peepul.Merge(lca, a, b)
		pt := time.Since(start)
		start = time.Now()
		_ = qk.Merge(lca, a, b)
		qt := time.Since(start)
		rows = append(rows, Fig12Row{N: n, Peepul: pt, Quark: qt})
	}
	return rows
}

// Fig13Ns is the paper's Figure 13 sweep.
var Fig13Ns = []int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000, 90000, 100000}

// Fig13ValueRange is the value domain of the Figure 13 workload: the paper
// draws values "randomly picked in the range (0:1000)".
const Fig13ValueRange = 1000

// Fig13Row is one point of Figure 13: the number of entries in the final
// merged set, including duplicates.
type Fig13Row struct {
	N          int
	QuarkSize  int
	PeepulSize int
}

// Fig13 regenerates Figure 13: the same add/remove workload is run through
// the Quark OR-set (which accumulates duplicate (element, id) pairs) and
// the Peepul space-efficient OR-set, and the final merged set sizes are
// compared.
func Fig13(ns []int, seed int64) []Fig13Row {
	var qk quark.OrSet
	var sp orset.OrSetSpace
	rows := make([]Fig13Row, 0, len(ns))
	for _, n := range ns {
		ql, qa, qb := OrSetMergeWorkload[orset.State](qk, n, Fig13ValueRange, seed)
		qm := qk.Merge(ql, qa, qb)
		sl, sa, sb := OrSetMergeWorkload[orset.SpaceState](sp, n, Fig13ValueRange, seed)
		sm := sp.Merge(sl, sa, sb)
		rows = append(rows, Fig13Row{N: n, QuarkSize: len(qm), PeepulSize: len(sm)})
	}
	return rows
}

// Fig14Ns is the paper's Figure 14/15 sweep.
var Fig14Ns = []int{5000, 10000, 15000, 20000, 25000, 30000}

// Fig14ValueRange is the value domain of the Figure 14/15 workload.
const Fig14ValueRange = 1000

// Fig14MergeEvery is the merge cadence of the §7.2.2 workload.
const Fig14MergeEvery = 500

// Fig14Row is one point of Figure 14: total running time of the mixed
// workload for each of the three Peepul OR-sets.
type Fig14Row struct {
	N         int
	OrSet     time.Duration
	Space     time.Duration
	SpaceTime time.Duration
}

// Fig15Row is one point of Figure 15: maximum state footprint in bytes
// observed while running the mixed workload (16 bytes per stored
// (element, timestamp) pair, mirroring the paper's heap measurement of the
// extracted OCaml structures).
type Fig15Row struct {
	N         int
	OrSet     int
	Space     int
	SpaceTime int
}

// runMixed executes the Figure 14/15 workload on one OR-set
// implementation: two branches apply their operations in program order and
// every Fig14MergeEvery operations the branches synchronize (merge both
// ways through their last common state). It returns the total wall time
// and the maximum footprint.
func runMixed[S any](impl core.MRDT[S, orset.Op, orset.Val], ops []MixedOp, sizeOf func(S) int) (time.Duration, int) {
	start := time.Now()
	lca := impl.Init()
	branches := [2]S{impl.Init(), impl.Init()}
	maxSize := 0
	ts := core.Timestamp(1)
	for i, mo := range ops {
		next, _ := impl.Do(mo.Op, branches[mo.Branch], ts)
		ts++
		branches[mo.Branch] = next
		if (i+1)%Fig14MergeEvery == 0 {
			merged := impl.Merge(lca, branches[0], branches[1])
			lca, branches[0], branches[1] = merged, merged, merged
			if s := sizeOf(merged); s > maxSize {
				maxSize = s
			}
		}
	}
	merged := impl.Merge(lca, branches[0], branches[1])
	if s := sizeOf(merged); s > maxSize {
		maxSize = s
	}
	return time.Since(start), maxSize
}

// Fig14 regenerates Figure 14.
func Fig14(ns []int, seed int64) []Fig14Row {
	rows := make([]Fig14Row, 0, len(ns))
	for _, n := range ns {
		ops := MixedOrSetWorkload(n, Fig14ValueRange, seed)
		t1, _ := runMixed[orset.State](orset.OrSet{}, ops, sizeOfPlain)
		t2, _ := runMixed[orset.SpaceState](orset.OrSetSpace{}, ops, sizeOfSpace)
		t3, _ := runMixed[orset.TreeState](orset.OrSetSpaceTime{}, ops, sizeOfTree)
		rows = append(rows, Fig14Row{N: n, OrSet: t1, Space: t2, SpaceTime: t3})
	}
	return rows
}

// Fig15 regenerates Figure 15 on the same workload as Figure 14.
func Fig15(ns []int, seed int64) []Fig15Row {
	rows := make([]Fig15Row, 0, len(ns))
	for _, n := range ns {
		ops := MixedOrSetWorkload(n, Fig14ValueRange, seed)
		_, s1 := runMixed[orset.State](orset.OrSet{}, ops, sizeOfPlain)
		_, s2 := runMixed[orset.SpaceState](orset.OrSetSpace{}, ops, sizeOfSpace)
		_, s3 := runMixed[orset.TreeState](orset.OrSetSpaceTime{}, ops, sizeOfTree)
		rows = append(rows, Fig15Row{N: n, OrSet: s1, Space: s2, SpaceTime: s3})
	}
	return rows
}

const bytesPerPair = 16 // element (8) + timestamp (8)

func sizeOfPlain(s orset.State) int { return len(s) * bytesPerPair }

func sizeOfSpace(s orset.SpaceState) int { return len(s) * bytesPerPair }

func sizeOfTree(s orset.TreeState) int {
	n := 0
	var walk func(t orset.TreeState)
	walk = func(t orset.TreeState) {
		if t == nil {
			return
		}
		n++
		walk(t.Left)
		walk(t.Right)
	}
	walk(s)
	return n * bytesPerPair
}
