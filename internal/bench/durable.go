package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/mlog"
	"repro/internal/orset"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/wire"
)

// Durability benchmark (`peepul-bench -fig durable`): what the disk
// subsystem costs and buys. For each datatype and history length the
// harness measures, on one linear branch of history:
//
//   - commit latency per operation: in-memory store, persistent store
//     under FsyncNever (flush to the OS each commit), and persistent
//     store under FsyncAlways (one fsync per commit — measured over a
//     capped operation count, since the cost is depth-independent);
//   - recovery time: disk.Open's segment replay plus
//     store.OpenRecovered's validation and VerifyPack — the time from
//     process start to a serving replica;
//   - the on-disk footprint (segments, bytes, records) against the
//     store's resident packed bytes — the append-only log's overhead
//     over the live set before compaction;
//   - post-recovery deep-pull latency: the same constant diamond merge
//     the DAG benchmark times (BENCH_dag.json), run on the recovered
//     store — durability must not regress merge cost.

// DurableRow is one (datatype, history) measurement.
type DurableRow struct {
	Datatype string `json:"datatype"`
	History  int    `json:"history"`
	// Commits is the DAG size (operations + root).
	Commits int `json:"commits"`
	// Per-operation commit latency: in-memory, disk-backed with
	// FsyncNever, disk-backed with FsyncAlways. FsyncOps is how many
	// operations the fsync figure averaged over (capped; the cost is
	// depth-independent).
	ApplyMemNs   int64 `json:"apply_mem_ns"`
	ApplyDiskNs  int64 `json:"apply_disk_ns"`
	ApplyFsyncNs int64 `json:"apply_fsync_ns"`
	FsyncOps     int   `json:"fsync_ops"`
	// RecoveryNs is the full reopen: segment replay, prefix validation,
	// VerifyPack. RecoveredRecords is how many records replayed.
	RecoveryNs       int64 `json:"recovery_ns"`
	RecoveredRecords int64 `json:"recovered_records"`
	// On-disk footprint vs the store's resident packed bytes.
	DiskBytes     int64   `json:"disk_bytes"`
	Segments      int     `json:"segments"`
	ResidentBytes int64   `json:"resident_bytes"`
	DiskOverhead  float64 `json:"disk_overhead"`
	// DeepPullNs is the post-recovery constant-divergence diamond sync —
	// comparable to BENCH_dag.json's deep-pull scenario.
	DeepPullNs int64 `json:"deep_pull_ns"`
}

// DurableNs is the history sweep for bounded-state datatypes.
var DurableNs = []int{100, 1000, 10000, 100000}

// DurableLogNs caps the log sweep at 10⁴ for the same reason the space
// benchmark does: the mergeable log's snapshots are O(history) each.
var DurableLogNs = []int{100, 1000, 10000}

// durableFsyncOpsCap bounds how many fsync-per-commit operations the
// FsyncAlways figure averages over.
const durableFsyncOpsCap = 128

// Durable runs the durability benchmark over the given sweeps.
func Durable(ns, logNs []int, seed int64) []DurableRow {
	var rows []DurableRow
	for _, n := range logNs {
		rows = append(rows, durableRun[mlog.State, mlog.Op, mlog.Val](
			"mergeable-log", mlog.Log{}, wire.MLog{},
			func(i int, _ *rand.Rand) mlog.Op {
				return mlog.Op{Kind: mlog.Append, Msg: fmt.Sprintf("msg %06d", i)}
			}, n, seed))
	}
	for _, n := range ns {
		rows = append(rows, durableRun[orset.SpaceState, orset.Op, orset.Val](
			"or-set-space", orset.OrSetSpace{}, wire.OrSetSpace{},
			func(_ int, rng *rand.Rand) orset.Op {
				if rng.Intn(3) == 0 {
					return orset.Op{Kind: orset.Remove, E: int64(rng.Intn(Fig13ValueRange))}
				}
				return orset.Op{Kind: orset.Add, E: int64(rng.Intn(Fig13ValueRange))}
			}, n, seed))
	}
	for _, n := range ns {
		rows = append(rows, durableRun[queue.State, queue.Op, queue.Val](
			"functional-queue", queue.Queue{}, wire.Queue{},
			func(_ int, rng *rand.Rand) queue.Op {
				if rng.Intn(2) == 0 {
					return queue.Op{Kind: queue.Dequeue}
				}
				return queue.Op{Kind: queue.Enqueue, V: rng.Int63n(1 << 30)}
			}, n, seed))
	}
	return rows
}

// durableRun builds one persisted history and takes every measurement.
func durableRun[S, Op, Val any](
	name string,
	impl core.MRDT[S, Op, Val],
	codec store.Codec[S],
	genOp func(i int, rng *rand.Rand) Op,
	history int,
	seed int64,
) DurableRow {
	row := DurableRow{Datatype: name, History: history}

	// In-memory baseline.
	rng := rand.New(rand.NewSource(seed))
	mem := store.New[S, Op, Val](impl, codec, "main")
	start := time.Now()
	for i := 0; i < history; i++ {
		if _, err := mem.Apply("main", genOp(i, rng)); err != nil {
			panic(err)
		}
	}
	row.ApplyMemNs = time.Since(start).Nanoseconds() / int64(max(history, 1))

	// Disk-backed, FsyncNever: the same workload with every commit
	// appended and flushed.
	dir, err := os.MkdirTemp("", "peepul-durable-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	l, rec, err := disk.Open(dir)
	if err != nil {
		panic(err)
	}
	s, err := store.OpenRecovered(impl, codec, "main", 0, &rec.State, store.WithPersister(l))
	if err != nil {
		panic(err)
	}
	rng = rand.New(rand.NewSource(seed))
	start = time.Now()
	for i := 0; i < history; i++ {
		if _, err := s.Apply("main", genOp(i, rng)); err != nil {
			panic(err)
		}
	}
	row.ApplyDiskNs = time.Since(start).Nanoseconds() / int64(max(history, 1))
	row.Commits = s.NumCommits()
	ps := s.PackStats()
	row.ResidentBytes = ps.PackedBytes
	if err := l.Close(); err != nil {
		panic(err)
	}

	// FsyncAlways: depth-independent, measured on a shallow history.
	fsyncDir, err := os.MkdirTemp("", "peepul-durable-fsync-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(fsyncDir)
	lf, recf, err := disk.Open(fsyncDir, disk.WithFsync(disk.FsyncAlways))
	if err != nil {
		panic(err)
	}
	sf, err := store.OpenRecovered(impl, codec, "main", 0, &recf.State, store.WithPersister(lf))
	if err != nil {
		panic(err)
	}
	row.FsyncOps = min(history, durableFsyncOpsCap)
	rng = rand.New(rand.NewSource(seed))
	start = time.Now()
	for i := 0; i < row.FsyncOps; i++ {
		if _, err := sf.Apply("main", genOp(i, rng)); err != nil {
			panic(err)
		}
	}
	row.ApplyFsyncNs = time.Since(start).Nanoseconds() / int64(max(row.FsyncOps, 1))
	lf.Close()

	// Recovery: reopen the FsyncNever history from disk, end to end.
	start = time.Now()
	l2, rec2, err := disk.Open(dir)
	if err != nil {
		panic(err)
	}
	s2, err := store.OpenRecovered(impl, codec, "main", 0, &rec2.State, store.WithPersister(l2))
	if err != nil {
		panic(err)
	}
	row.RecoveryNs = time.Since(start).Nanoseconds()
	row.RecoveredRecords = rec2.Records
	st := l2.Stats()
	row.DiskBytes = st.Bytes
	row.Segments = st.Segments
	row.DiskOverhead = ratio(row.DiskBytes, row.ResidentBytes)

	// Post-recovery deep pull: the DAG benchmark's constant diamond on
	// the recovered store.
	if err := s2.Fork("main", "dev"); err != nil {
		panic(err)
	}
	const divergence = 8
	rng = rand.New(rand.NewSource(seed + 1))
	for i := 0; i < divergence; i++ {
		if _, err := s2.Apply("main", genOp(history+2*i, rng)); err != nil {
			panic(err)
		}
		if _, err := s2.Apply("dev", genOp(history+2*i+1, rng)); err != nil {
			panic(err)
		}
	}
	start = time.Now()
	if err := s2.Sync("main", "dev"); err != nil {
		panic(err)
	}
	row.DeepPullNs = time.Since(start).Nanoseconds()
	l2.Close()
	return row
}

// WriteDurableJSON renders rows as the BENCH_durable.json document: one
// object with the seed and the measured rows, stable field order,
// trailing newline.
func WriteDurableJSON(w io.Writer, seed int64, rows []DurableRow) error {
	doc := struct {
		Bench string       `json:"bench"`
		Seed  int64        `json:"seed"`
		Rows  []DurableRow `json:"rows"`
	}{Bench: "durable", Seed: seed, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
