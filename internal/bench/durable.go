package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/mlog"
	"repro/internal/orset"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/wire"
)

// Durability benchmark (`peepul-bench -fig durable`): what the disk
// subsystem costs and buys. For each datatype and history length the
// harness measures, on one linear branch of history:
//
//   - commit latency per operation: in-memory store, persistent store
//     under FsyncNever (flush to the OS each commit), and persistent
//     store under FsyncAlways (one fsync per commit — measured over a
//     capped operation count, since the cost is depth-independent);
//   - recovery time, two ways: the default open (checkpoint seek plus
//     lazy state install — flat in history depth) and a forced full
//     replay with eager verification (the pre-checkpoint behaviour,
//     linear in depth) — the flat-vs-linear gap is the point of the
//     checkpointed-recovery work;
//   - the on-disk footprint (segments, bytes, records) against the
//     store's resident packed bytes — the append-only log's overhead
//     over the live set before compaction;
//   - post-recovery deep-pull latency: the same constant diamond merge
//     the DAG benchmark times (BENCH_dag.json), run cold on the
//     lazily-recovered store — durability (and lazy recovery) must not
//     regress merge cost.

// DurableRow is one (datatype, history) measurement.
type DurableRow struct {
	Datatype string `json:"datatype"`
	History  int    `json:"history"`
	// Commits is the DAG size (operations + root).
	Commits int `json:"commits"`
	// Per-operation commit latency: in-memory, disk-backed with
	// FsyncNever, disk-backed with FsyncAlways. FsyncOps is how many
	// operations the fsync figure averaged over (capped; the cost is
	// depth-independent).
	ApplyMemNs   int64 `json:"apply_mem_ns"`
	ApplyDiskNs  int64 `json:"apply_disk_ns"`
	ApplyFsyncNs int64 `json:"apply_fsync_ns"`
	FsyncOps     int   `json:"fsync_ops"`
	// RecoveryNs is the default reopen — checkpoint seek, suffix replay,
	// lazy state install — timed end to end (disk.Open plus
	// store.OpenRecovered). RecoveryMode reports how that open recovered
	// ("checkpoint", "replay" or "cold") and RecoveredRecords how many
	// records it replayed. FullReplayNs times the same directory under a
	// forced full replay with eager verification — the pre-checkpoint
	// recovery path, linear in history depth.
	RecoveryNs       int64  `json:"recovery_ns"`
	RecoveryMode     string `json:"recovery_mode"`
	RecoveredRecords int64  `json:"recovered_records"`
	FullReplayNs     int64  `json:"full_replay_ns"`
	// On-disk footprint vs the store's resident packed bytes.
	DiskBytes     int64   `json:"disk_bytes"`
	Segments      int     `json:"segments"`
	ResidentBytes int64   `json:"resident_bytes"`
	DiskOverhead  float64 `json:"disk_overhead"`
	// DeepPullNs is the post-recovery constant-divergence diamond sync —
	// comparable to BENCH_dag.json's deep-pull scenario.
	DeepPullNs int64 `json:"deep_pull_ns"`
}

// DurableNs is the history sweep for bounded-state datatypes.
var DurableNs = []int{100, 1000, 10000, 100000}

// DurableLogNs caps the log sweep at 10⁴ for the same reason the space
// benchmark does: the mergeable log's snapshots are O(history) each.
var DurableLogNs = []int{100, 1000, 10000}

// durableFsyncOpsCap bounds how many fsync-per-commit operations the
// FsyncAlways figure averages over.
const durableFsyncOpsCap = 128

// durableRecoveryAttempts is how many reopen cycles the recovery
// measurement runs, reporting the fastest.
const durableRecoveryAttempts = 3

// Durable runs the durability benchmark over the given sweeps.
func Durable(ns, logNs []int, seed int64) []DurableRow {
	var rows []DurableRow
	for _, n := range logNs {
		rows = append(rows, durableRun[mlog.State, mlog.Op, mlog.Val](
			"mergeable-log", mlog.Log{}, wire.MLog{},
			func(i int, _ *rand.Rand) mlog.Op {
				return mlog.Op{Kind: mlog.Append, Msg: fmt.Sprintf("msg %06d", i)}
			}, n, seed))
	}
	for _, n := range ns {
		rows = append(rows, durableRun[orset.SpaceState, orset.Op, orset.Val](
			"or-set-space", orset.OrSetSpace{}, wire.OrSetSpace{},
			func(_ int, rng *rand.Rand) orset.Op {
				if rng.Intn(3) == 0 {
					return orset.Op{Kind: orset.Remove, E: int64(rng.Intn(Fig13ValueRange))}
				}
				return orset.Op{Kind: orset.Add, E: int64(rng.Intn(Fig13ValueRange))}
			}, n, seed))
	}
	for _, n := range ns {
		rows = append(rows, durableRun[queue.State, queue.Op, queue.Val](
			"functional-queue", queue.Queue{}, wire.Queue{},
			func(_ int, rng *rand.Rand) queue.Op {
				if rng.Intn(2) == 0 {
					return queue.Op{Kind: queue.Dequeue}
				}
				return queue.Op{Kind: queue.Enqueue, V: rng.Int63n(1 << 30)}
			}, n, seed))
	}
	return rows
}

// durableRun builds one persisted history and takes every measurement.
func durableRun[S, Op, Val any](
	name string,
	impl core.MRDT[S, Op, Val],
	codec store.Codec[S],
	genOp func(i int, rng *rand.Rand) Op,
	history int,
	seed int64,
) DurableRow {
	row := DurableRow{Datatype: name, History: history}

	// In-memory baseline.
	rng := rand.New(rand.NewSource(seed))
	mem := store.New[S, Op, Val](impl, codec, "main")
	start := time.Now()
	for i := 0; i < history; i++ {
		if _, err := mem.Apply("main", genOp(i, rng)); err != nil {
			panic(err)
		}
	}
	row.ApplyMemNs = time.Since(start).Nanoseconds() / int64(max(history, 1))

	// Disk-backed, FsyncNever: the same workload with every commit
	// appended and flushed.
	dir, err := os.MkdirTemp("", "peepul-durable-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	l, rec, err := disk.Open(dir)
	if err != nil {
		panic(err)
	}
	s, err := store.OpenRecovered(impl, codec, "main", 0, &rec.State, store.WithPersister(l))
	if err != nil {
		panic(err)
	}
	rng = rand.New(rand.NewSource(seed))
	start = time.Now()
	for i := 0; i < history; i++ {
		if _, err := s.Apply("main", genOp(i, rng)); err != nil {
			panic(err)
		}
	}
	row.ApplyDiskNs = time.Since(start).Nanoseconds() / int64(max(history, 1))
	row.Commits = s.NumCommits()
	ps := s.PackStats()
	row.ResidentBytes = ps.PackedBytes
	if err := l.Close(); err != nil {
		panic(err)
	}

	// FsyncAlways: depth-independent, measured on a shallow history.
	fsyncDir, err := os.MkdirTemp("", "peepul-durable-fsync-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(fsyncDir)
	lf, recf, err := disk.Open(fsyncDir, disk.WithFsync(disk.FsyncAlways))
	if err != nil {
		panic(err)
	}
	sf, err := store.OpenRecovered(impl, codec, "main", 0, &recf.State, store.WithPersister(lf))
	if err != nil {
		panic(err)
	}
	row.FsyncOps = min(history, durableFsyncOpsCap)
	rng = rand.New(rand.NewSource(seed))
	start = time.Now()
	for i := 0; i < row.FsyncOps; i++ {
		if _, err := sf.Apply("main", genOp(i, rng)); err != nil {
			panic(err)
		}
	}
	row.ApplyFsyncNs = time.Since(start).Nanoseconds() / int64(max(row.FsyncOps, 1))
	lf.Close()

	// Full replay first: reopen the FsyncNever history with checkpoint
	// seek disabled and eager verification — the recovery cost before
	// checkpoints existed, linear in history.
	start = time.Now()
	lr, recr, err := disk.Open(dir, disk.WithFullReplay())
	if err != nil {
		panic(err)
	}
	if _, err := store.OpenRecovered(impl, codec, "main", 0, &recr.State,
		store.WithPersister(lr), store.WithVerifyOnOpen(true)); err != nil {
		panic(err)
	}
	row.FullReplayNs = time.Since(start).Nanoseconds()
	if err := lr.Close(); err != nil {
		panic(err)
	}

	// Recovery: the default reopen — checkpoint seek, suffix replay, lazy
	// state install — timed end to end. The history build and full replay
	// above leave the heap deep in collector debt, and on a single-core
	// runner a lone timed open inherits whatever mark work the collector
	// owes — measuring setup, not recovery. So the measurement collects
	// first and takes the best of a few reopen cycles, the usual
	// minimum-of-N discipline for isolating an operation's intrinsic cost.
	// The cycles are idempotent: a checkpoint-seek reopen replays a
	// zero-length suffix, so its Close writes no new checkpoint.
	runtime.GC()
	var (
		l2   *disk.Log
		rec2 *disk.Recovered
		s2   *store.Store[S, Op, Val]
	)
	for attempt := 0; attempt < durableRecoveryAttempts; attempt++ {
		if l2 != nil {
			if err := l2.Close(); err != nil {
				panic(err)
			}
		}
		start = time.Now()
		la, reca, err := disk.Open(dir)
		if err != nil {
			panic(err)
		}
		sa, err := store.OpenRecovered(impl, codec, "main", 0, &reca.State, store.WithPersister(la))
		if err != nil {
			panic(err)
		}
		ns := time.Since(start).Nanoseconds()
		l2, rec2, s2 = la, reca, sa
		if attempt == 0 || ns < row.RecoveryNs {
			row.RecoveryNs = ns
		}
	}
	row.RecoveryMode = rec2.Mode
	row.RecoveredRecords = rec2.Records
	st := l2.Stats()
	row.DiskBytes = st.Bytes
	row.Segments = st.Segments
	row.DiskOverhead = ratio(row.DiskBytes, row.ResidentBytes)

	// Post-recovery deep pull: the DAG benchmark's constant diamond on
	// the recovered store.
	if err := s2.Fork("main", "dev"); err != nil {
		panic(err)
	}
	const divergence = 8
	rng = rand.New(rand.NewSource(seed + 1))
	for i := 0; i < divergence; i++ {
		if _, err := s2.Apply("main", genOp(history+2*i, rng)); err != nil {
			panic(err)
		}
		if _, err := s2.Apply("dev", genOp(history+2*i+1, rng)); err != nil {
			panic(err)
		}
	}
	start = time.Now()
	if err := s2.Sync("main", "dev"); err != nil {
		panic(err)
	}
	row.DeepPullNs = time.Since(start).Nanoseconds()
	l2.Close()
	return row
}

// DurableFlatFactor measures how flat recovery time is across history
// depth: for each datatype it takes the ratio of the default recovery
// time at the deepest swept history to the shallowest, and returns the
// worst such ratio with the datatype that produced it. A recovery path
// truly independent of depth yields a factor near 1; the pre-checkpoint
// linear replay yields the depth ratio itself (~100x on the full sweep).
// CI gates on this via peepul-bench's -durable-flat-factor flag.
func DurableFlatFactor(rows []DurableRow) (worst float64, datatype string) {
	type span struct {
		minH, maxH   int
		minNs, maxNs int64
	}
	spans := map[string]*span{}
	for _, r := range rows {
		sp, ok := spans[r.Datatype]
		if !ok {
			spans[r.Datatype] = &span{minH: r.History, maxH: r.History, minNs: r.RecoveryNs, maxNs: r.RecoveryNs}
			continue
		}
		if r.History < sp.minH {
			sp.minH, sp.minNs = r.History, r.RecoveryNs
		}
		if r.History > sp.maxH {
			sp.maxH, sp.maxNs = r.History, r.RecoveryNs
		}
	}
	for dt, sp := range spans {
		if sp.minH == sp.maxH || sp.minNs <= 0 {
			continue
		}
		if f := float64(sp.maxNs) / float64(sp.minNs); f > worst {
			worst, datatype = f, dt
		}
	}
	return worst, datatype
}

// WriteDurableJSON renders rows as the BENCH_durable.json document: one
// object with the seed and the measured rows, stable field order,
// trailing newline.
func WriteDurableJSON(w io.Writer, seed int64, rows []DurableRow) error {
	doc := struct {
		Bench string       `json:"bench"`
		Seed  int64        `json:"seed"`
		Rows  []DurableRow `json:"rows"`
	}{Bench: "durable", Seed: seed, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
