// Package bench contains the workload generators and figure harnesses that
// regenerate every table and figure of the paper's evaluation (§7):
// Figure 12 (queue merge time, Peepul vs Quark), Figure 13 (OR-set size,
// Peepul vs Quark), Figure 14 (running time of the three Peepul OR-sets),
// Figure 15 (space consumption of the three OR-sets) and Table 3′ (the
// certification-effort analogue of the paper's verification-effort
// Table 3). Workloads are seeded, so every run is reproducible.
package bench

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/orset"
	"repro/internal/queue"
)

// QueueWorkload produces the three-way-merge input of §7.2.1: an LCA built
// from n random operations with a 75:25 enqueue:dequeue split, and two
// divergent versions obtained by running two further random operation
// sequences (of n/2 operations each) on top of it.
func QueueWorkload(n int, seed int64) (lca, a, b queue.State) {
	r := rand.New(rand.NewSource(seed))
	var impl queue.Queue
	ts := core.Timestamp(1)
	step := func(s queue.State, r *rand.Rand) queue.State {
		if r.Intn(100) < 75 {
			next, _ := impl.Do(queue.Op{Kind: queue.Enqueue, V: int64(ts)}, s, ts)
			ts++
			return next
		}
		next, _ := impl.Do(queue.Op{Kind: queue.Dequeue}, s, ts)
		ts++
		return next
	}
	lca = impl.Init()
	for i := 0; i < n; i++ {
		lca = step(lca, r)
	}
	ra := rand.New(rand.NewSource(seed + 1))
	rb := rand.New(rand.NewSource(seed + 2))
	a, b = lca, lca
	for i := 0; i < n/2; i++ {
		a = step(a, ra)
	}
	for i := 0; i < n/2; i++ {
		b = step(b, rb)
	}
	return lca, a, b
}

// OrSetMergeWorkload produces the OR-set merge input of §7.2.1 for any
// OR-set implementation: an LCA from n operations with a 50:50 add:remove
// split over values drawn uniformly from [0, valueRange), and two
// divergent versions from n/2 further operations each.
func OrSetMergeWorkload[S any](impl core.MRDT[S, orset.Op, orset.Val], n, valueRange int, seed int64) (lca, a, b S) {
	ts := core.Timestamp(1)
	step := func(s S, r *rand.Rand) S {
		e := int64(r.Intn(valueRange))
		op := orset.Op{Kind: orset.Add, E: e}
		if r.Intn(100) < 50 {
			op.Kind = orset.Remove
		}
		next, _ := impl.Do(op, s, ts)
		ts++
		return next
	}
	r := rand.New(rand.NewSource(seed))
	lca = impl.Init()
	for i := 0; i < n; i++ {
		lca = step(lca, r)
	}
	ra := rand.New(rand.NewSource(seed + 1))
	rb := rand.New(rand.NewSource(seed + 2))
	a, b = lca, lca
	for i := 0; i < n/2; i++ {
		a = step(a, ra)
	}
	for i := 0; i < n/2; i++ {
		b = step(b, rb)
	}
	return lca, a, b
}

// MixedOp is one operation of the Figure 14/15 workload.
type MixedOp struct {
	Op     orset.Op
	Branch int // 0 or 1
}

// MixedOrSetWorkload produces the §7.2.2 workload: n operations split 70%
// lookup / 20% add / 10% remove over values in [0, valueRange), assigned
// to two branches at random.
func MixedOrSetWorkload(n, valueRange int, seed int64) []MixedOp {
	r := rand.New(rand.NewSource(seed))
	ops := make([]MixedOp, n)
	for i := range ops {
		e := int64(r.Intn(valueRange))
		roll := r.Intn(100)
		var op orset.Op
		switch {
		case roll < 70:
			op = orset.Op{Kind: orset.Lookup, E: e}
		case roll < 90:
			op = orset.Op{Kind: orset.Add, E: e}
		default:
			op = orset.Op{Kind: orset.Remove, E: e}
		}
		ops[i] = MixedOp{Op: op, Branch: r.Intn(2)}
	}
	return ops
}
