package bench

import (
	"math/rand"
	"time"

	"repro/internal/counter"
	"repro/internal/replica"
	"repro/internal/wire"
)

// Sync-cost benchmark: wire bytes and wall time of a replica sync as a
// function of history length, for the legacy full-history protocol and
// the incremental delta protocol, over pair and ring topologies. The
// full protocol's cost grows with the whole history on every exchange;
// the delta protocol pays O(frontier) once a pair has converged and
// O(gap) when it has not — the difference this table measures.

// SyncCostRow is one measured sync exchange (or ring round).
type SyncCostRow struct {
	// History is the number of operations committed before measuring.
	History int
	// Topology is "pair" (one exchange) or "ring" (a 3-node round).
	Topology string
	// Proto is "full" (legacy one-shot) or "delta" (frontier-negotiated).
	Proto string
	// Phase is "resync" (already converged) or "fresh-op" (one operation
	// behind).
	Phase string
	// Bytes counts wire traffic in both directions, client side.
	Bytes int64
	// Commits counts commits shipped in either direction.
	Commits int64
	// Elapsed is the wall time of the exchange.
	Elapsed time.Duration
}

// SyncNs is the history-length sweep of the sync-cost benchmark.
var SyncNs = []int{64, 256, 1024}

// syncNode is a replica node hosting a single PN-counter object.
type syncNode struct {
	*replica.Node
	obj *replica.TypedObject[counter.PNState, counter.Op, counter.Val]
}

func newSyncNode(name string, id int) *syncNode {
	n, err := replica.NewNode(name, id)
	if err != nil {
		panic(err)
	}
	obj, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		n, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	if err != nil {
		panic(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	return &syncNode{Node: n, obj: obj}
}

func syncInc(n *syncNode) {
	if _, err := n.obj.Do(counter.Op{Kind: counter.Inc, N: 1}); err != nil {
		panic(err)
	}
}

// measureSync runs one client→server exchange under the given protocol
// and returns its wire cost from the stats deltas of both nodes.
func measureSync(client, server *syncNode, proto string) (int64, int64, time.Duration) {
	if proto == "full" {
		client.SetFullSyncOnly(true)
		defer client.SetFullSyncOnly(false)
	}
	cb, sb := client.Stats(), server.Stats()
	start := time.Now()
	if err := client.SyncWith(server.Addr()); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	ca, sa := client.Stats(), server.Stats()
	bytes := (ca.BytesSent - cb.BytesSent) + (ca.BytesRecv - cb.BytesRecv)
	commits := (ca.CommitsSent - cb.CommitsSent) + (sa.CommitsSent - sb.CommitsSent)
	return bytes, commits, elapsed
}

// SyncCost measures sync cost across the history sweep. Histories are
// built with seeded random op placement and periodic delta syncs, then
// fully converged before measuring.
func SyncCost(ns []int, seed int64) []SyncCostRow {
	var rows []SyncCostRow
	for _, n := range ns {
		rows = append(rows, pairSyncCost(n, seed)...)
		rows = append(rows, ringSyncCost(n, seed)...)
	}
	return rows
}

func pairSyncCost(history int, seed int64) []SyncCostRow {
	a := newSyncNode("a", 1)
	defer a.Close()
	b := newSyncNode("b", 2)
	defer b.Close()
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < history; i++ {
		if r.Intn(2) == 0 {
			syncInc(a)
		} else {
			syncInc(b)
		}
		if i%16 == 15 {
			measureSync(a, b, "delta")
		}
	}
	measureSync(a, b, "delta")
	measureSync(a, b, "delta") // fully converged

	var rows []SyncCostRow
	for _, proto := range []string{"full", "delta"} {
		by, cm, el := measureSync(a, b, proto)
		rows = append(rows, SyncCostRow{
			History: history, Topology: "pair", Proto: proto, Phase: "resync",
			Bytes: by, Commits: cm, Elapsed: el,
		})
	}
	for _, proto := range []string{"full", "delta"} {
		syncInc(a)
		by, cm, el := measureSync(a, b, proto)
		rows = append(rows, SyncCostRow{
			History: history, Topology: "pair", Proto: proto, Phase: "fresh-op",
			Bytes: by, Commits: cm, Elapsed: el,
		})
	}
	return rows
}

func ringSyncCost(history int, seed int64) []SyncCostRow {
	nodes := []*syncNode{newSyncNode("eu", 4), newSyncNode("us", 5), newSyncNode("ap", 6)}
	for _, n := range nodes {
		defer n.Close()
	}
	ringRound := func(proto string) (int64, int64, time.Duration) {
		var bytes, commits int64
		var elapsed time.Duration
		for i := range nodes {
			by, cm, el := measureSync(nodes[i], nodes[(i+1)%len(nodes)], proto)
			bytes += by
			commits += cm
			elapsed += el
		}
		return bytes, commits, elapsed
	}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < history; i++ {
		syncInc(nodes[r.Intn(len(nodes))])
		if i%24 == 23 {
			ringRound("delta")
		}
	}
	ringRound("delta")
	ringRound("delta") // fully converged

	var rows []SyncCostRow
	for _, proto := range []string{"full", "delta"} {
		by, cm, el := ringRound(proto)
		rows = append(rows, SyncCostRow{
			History: history, Topology: "ring", Proto: proto, Phase: "resync",
			Bytes: by, Commits: cm, Elapsed: el,
		})
	}
	return rows
}
