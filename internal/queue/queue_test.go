package queue

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func enq(t *testing.T, s State, v int64, ts core.Timestamp) State {
	t.Helper()
	var impl Queue
	next, val := impl.Do(Op{Kind: Enqueue, V: v}, s, ts)
	if val.OK {
		t.Fatal("enqueue must return ⊥")
	}
	return next
}

func deq(t *testing.T, s State) (State, Val) {
	t.Helper()
	var impl Queue
	next, val := impl.Do(Op{Kind: Dequeue}, s, 0)
	return next, val
}

func TestQueueFIFO(t *testing.T) {
	var impl Queue
	s := impl.Init()
	for i := int64(1); i <= 5; i++ {
		s = enq(t, s, i*10, core.Timestamp(i))
	}
	for i := int64(1); i <= 5; i++ {
		var v Val
		s, v = deq(t, s)
		if !v.OK || v.V != i*10 {
			t.Fatalf("dequeue %d = %+v, want %d", i, v, i*10)
		}
	}
	_, v := deq(t, s)
	if v.OK {
		t.Fatal("dequeue of empty queue must return EMPTY")
	}
}

func TestQueuePersistence(t *testing.T) {
	var impl Queue
	s := impl.Init()
	s = enq(t, s, 1, 1)
	s = enq(t, s, 2, 2)
	// Force a front/back rotation, then check the ancestor is intact.
	s2, v := deq(t, s)
	if v.V != 1 {
		t.Fatalf("dequeue = %+v", v)
	}
	if got := s.ToSlice(); len(got) != 2 || got[0].V != 1 {
		t.Fatalf("ancestor state mutated: %v", got)
	}
	if got := s2.ToSlice(); len(got) != 1 || got[0].V != 2 {
		t.Fatalf("derived state wrong: %v", got)
	}
	_ = impl
}

func TestQueueToSliceFromSliceRoundTrip(t *testing.T) {
	f := func(raw []int64) bool {
		ps := make([]Pair, len(raw))
		for i, v := range raw {
			ps[i] = Pair{T: core.Timestamp(i + 1), V: v}
		}
		return slices.Equal(FromSlice(ps).ToSlice(), ps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueLen(t *testing.T) {
	var impl Queue
	s := impl.Init()
	if s.Len() != 0 {
		t.Fatal("empty queue length")
	}
	s = enq(t, s, 1, 1)
	s = enq(t, s, 2, 2)
	s, _ = deq(t, s)
	s = enq(t, s, 3, 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

// TestFig11PaperExample reproduces Figure 11 exactly: LCA [1..5]; branch A
// dequeues twice and enqueues 8, 9; branch B dequeues once and enqueues
// 6, 7; the merge is [3,4,5,6,7,8,9].
func TestFig11PaperExample(t *testing.T) {
	var impl Queue
	lca := impl.Init()
	for i := int64(1); i <= 5; i++ {
		lca = enq(t, lca, i, core.Timestamp(i))
	}
	a := lca
	a, _ = deq(t, a)
	a, _ = deq(t, a)
	a = enq(t, a, 8, 8)
	a = enq(t, a, 9, 9)
	b := lca
	b, _ = deq(t, b)
	b = enq(t, b, 6, 6)
	b = enq(t, b, 7, 7)

	m := impl.Merge(lca, a, b)
	var got []int64
	for _, p := range m.ToSlice() {
		got = append(got, p.V)
	}
	want := []int64{3, 4, 5, 6, 7, 8, 9}
	if !slices.Equal(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
}

func TestQueueMergeConcurrentDequeueOfSameElement(t *testing.T) {
	var impl Queue
	lca := impl.Init()
	lca = enq(t, lca, 1, 1)
	lca = enq(t, lca, 2, 2)
	a, va := deq(t, lca)
	b, vb := deq(t, lca)
	if va.V != 1 || vb.V != 1 {
		t.Fatal("both branches dequeue the same head (at-least-once)")
	}
	m := impl.Merge(lca, a, b)
	got := m.ToSlice()
	if len(got) != 1 || got[0].V != 2 {
		t.Fatalf("merge = %v, want just element 2", got)
	}
}

func TestQueueMergeBothEmptyDiffs(t *testing.T) {
	var impl Queue
	lca := impl.Init()
	lca = enq(t, lca, 1, 1)
	m := impl.Merge(lca, lca, lca)
	if got := m.ToSlice(); len(got) != 1 || got[0].V != 1 {
		t.Fatalf("idle merge = %v", got)
	}
	empty := impl.Init()
	if got := impl.Merge(empty, empty, empty).ToSlice(); len(got) != 0 {
		t.Fatalf("empty merge = %v", got)
	}
}

// randomQueueExec produces (lca, a, b) by running random enqueue/dequeue
// sequences through Do, with globally increasing timestamps.
func randomQueueExec(r *rand.Rand) (lca, a, b State) {
	var impl Queue
	ts := core.Timestamp(1)
	step := func(s State) State {
		if r.Intn(4) == 0 {
			next, _ := impl.Do(Op{Kind: Dequeue}, s, ts)
			ts++
			return next
		}
		next, _ := impl.Do(Op{Kind: Enqueue, V: int64(ts)}, s, ts)
		ts++
		return next
	}
	lca = impl.Init()
	for i, n := 0, r.Intn(8); i < n; i++ {
		lca = step(lca)
	}
	a, b = lca, lca
	for i, n := 0, r.Intn(10); i < n; i++ {
		if r.Intn(2) == 0 {
			a = step(a)
		} else {
			b = step(b)
		}
	}
	return lca, a, b
}

func TestQueueMergePropertiesQuick(t *testing.T) {
	var impl Queue
	type tri struct{ l, a, b State }
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			l, a, b := randomQueueExec(r)
			vals[0] = reflect.ValueOf(tri{l, a, b})
		},
	}
	// Merged contents: sorted ascending by timestamp, no duplicates, and
	// exactly (kept LCA survivors) ∪ (new in a) ∪ (new in b).
	sound := func(x tri) bool {
		m := impl.Merge(x.l, x.a, x.b).ToSlice()
		for i := 1; i < len(m); i++ {
			if m[i-1].T >= m[i].T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(sound, cfg); err != nil {
		t.Error(err)
	}
	symmetric := func(x tri) bool {
		return slices.Equal(
			impl.Merge(x.l, x.a, x.b).ToSlice(),
			impl.Merge(x.l, x.b, x.a).ToSlice(),
		)
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Error(err)
	}
	selfMerge := func(x tri) bool {
		return slices.Equal(impl.Merge(x.a, x.a, x.a).ToSlice(), x.a.ToSlice())
	}
	if err := quick.Check(selfMerge, cfg); err != nil {
		t.Error(err)
	}
	// An element dequeued on either branch never reappears.
	dequeuedGone := func(x tri) bool {
		m := impl.Merge(x.l, x.a, x.b).ToSlice()
		inA := toSet(x.a.ToSlice())
		inB := toSet(x.b.ToSlice())
		for _, p := range x.l.ToSlice() {
			if !inA[p] || !inB[p] {
				for _, q := range m {
					if q == p {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(dequeuedGone, cfg); err != nil {
		t.Error(err)
	}
	// No element is invented: everything in the merge came from a or b.
	noInvention := func(x tri) bool {
		inA := toSet(x.a.ToSlice())
		inB := toSet(x.b.ToSlice())
		for _, q := range impl.Merge(x.l, x.a, x.b).ToSlice() {
			if !inA[q] && !inB[q] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(noInvention, cfg); err != nil {
		t.Error(err)
	}
}

func toSet(ps []Pair) map[Pair]bool {
	m := make(map[Pair]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}
