package queue

import (
	"testing"

	"repro/internal/core"
)

// buildHistory constructs an abstract queue history from a script of
// (op, preds) entries, returning the state over all events.
type histOp struct {
	op    Op
	rval  Val
	preds []int
}

func buildHistory(script []histOp) (*core.AbstractState[Op, Val], []core.EventID) {
	h := core.NewHistory[Op, Val]()
	ids := make([]core.EventID, 0, len(script))
	for i, s := range script {
		preds := make([]core.EventID, len(s.preds))
		for j, p := range s.preds {
			preds[j] = ids[p]
		}
		ids = append(ids, h.Append(s.op, s.rval, core.Timestamp(i+1), preds))
	}
	return core.StateOf(h, ids), ids
}

func TestSpecDequeueOldestUnmatched(t *testing.T) {
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 10}},                                                // e0, t1
		{op: Op{Kind: Enqueue, V: 20}, preds: []int{0}},                               // e1, t2
		{op: Op{Kind: Dequeue}, rval: Val{V: 10, T: 1, OK: true}, preds: []int{0, 1}}, // consumed e0
	})
	got := Spec(Op{Kind: Dequeue}, abs)
	if !got.OK || got.V != 20 || got.T != 2 {
		t.Fatalf("spec dequeue = %+v, want element 20", got)
	}
}

func TestSpecDequeueEmpty(t *testing.T) {
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 10}},
		{op: Op{Kind: Dequeue}, rval: Val{V: 10, T: 1, OK: true}, preds: []int{0}},
	})
	if got := Spec(Op{Kind: Dequeue}, abs); got.OK {
		t.Fatalf("spec dequeue = %+v, want EMPTY", got)
	}
	if got := Spec(Op{Kind: Enqueue, V: 1}, abs); got.OK {
		t.Fatal("enqueue returns ⊥")
	}
}

func TestSpecConcurrentEnqueuesOrderedByTimestamp(t *testing.T) {
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 100}}, // t1, concurrent with next
		{op: Op{Kind: Enqueue, V: 200}}, // t2
	})
	got := Spec(Op{Kind: Dequeue}, abs)
	if got.V != 100 {
		t.Fatalf("spec dequeue = %+v; concurrent enqueues order by timestamp", got)
	}
}

func TestRsimAcceptsFaithfulQueue(t *testing.T) {
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 10}},
		{op: Op{Kind: Enqueue, V: 20}, preds: []int{0}},
		{op: Op{Kind: Dequeue}, rval: Val{V: 10, T: 1, OK: true}, preds: []int{0, 1}},
	})
	if !Rsim(abs, FromSlice([]Pair{{T: 2, V: 20}})) {
		t.Fatal("Rsim must accept the faithful queue")
	}
	if Rsim(abs, FromSlice([]Pair{{T: 1, V: 10}, {T: 2, V: 20}})) {
		t.Fatal("Rsim must reject a queue still holding the dequeued element")
	}
	if Rsim(abs, FromSlice(nil)) {
		t.Fatal("Rsim must reject a queue missing an unmatched enqueue")
	}
}

func TestAxiomsOnLegalHistory(t *testing.T) {
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 10}},
		{op: Op{Kind: Enqueue, V: 20}, preds: []int{0}},
		{op: Op{Kind: Dequeue}, rval: Val{V: 10, T: 1, OK: true}, preds: []int{0, 1}},
		{op: Op{Kind: Dequeue}, rval: Val{V: 20, T: 2, OK: true}, preds: []int{0, 1, 2}},
		{op: Op{Kind: Dequeue}, rval: Val{}, preds: []int{0, 1, 2, 3}}, // EMPTY
	})
	if !Axioms(abs) {
		t.Fatal("legal history must satisfy all queue axioms")
	}
}

func TestAxiomAddRemViolation(t *testing.T) {
	// A dequeue returning an element nobody enqueued.
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Dequeue}, rval: Val{V: 99, T: 42, OK: true}},
	})
	if AxiomAddRem(abs) {
		t.Fatal("AddRem must reject a dequeue with no matching enqueue")
	}
}

func TestAxiomEmptyViolation(t *testing.T) {
	// A dequeue returns EMPTY although it saw an unconsumed enqueue.
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 10}},
		{op: Op{Kind: Dequeue}, rval: Val{}, preds: []int{0}},
	})
	if AxiomEmpty(abs) {
		t.Fatal("Empty must reject EMPTY with a visible unmatched enqueue")
	}
}

func TestAxiomEmptyAllowsConcurrentEnqueue(t *testing.T) {
	// The enqueue was concurrent with the EMPTY dequeue — not visible — so
	// the axiom holds.
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 10}},
		{op: Op{Kind: Dequeue}, rval: Val{}}, // no preds: concurrent
	})
	if !AxiomEmpty(abs) {
		t.Fatal("Empty must allow an EMPTY dequeue concurrent with the enqueue")
	}
}

func TestAxiomFIFO1Violation(t *testing.T) {
	// e1 → e2 causally, e2's element consumed, e1's never: skipping the
	// queue order.
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 10}},                  // e0
		{op: Op{Kind: Enqueue, V: 20}, preds: []int{0}}, // e1 sees e0
		{op: Op{Kind: Dequeue}, rval: Val{V: 20, T: 2, OK: true}, preds: []int{0, 1}},
	})
	if AxiomFIFO1(abs) {
		t.Fatal("FIFO1 must reject consuming a later enqueue while an earlier one is unmatched")
	}
}

func TestAxiomFIFO2Violation(t *testing.T) {
	// Crossing matches: e0 → e1 but e1's dequeue precedes e0's dequeue.
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 10}},                                                   // e0
		{op: Op{Kind: Enqueue, V: 20}, preds: []int{0}},                                  // e1
		{op: Op{Kind: Dequeue}, rval: Val{V: 20, T: 2, OK: true}, preds: []int{0, 1}},    // d(e1)
		{op: Op{Kind: Dequeue}, rval: Val{V: 10, T: 1, OK: true}, preds: []int{0, 1, 2}}, // d(e0) after
	})
	if AxiomFIFO2(abs) {
		t.Fatal("FIFO2 must reject crossing matches")
	}
}

func TestAtLeastOnceDequeueAllowedByAxioms(t *testing.T) {
	// Two concurrent dequeues of the same element: allowed for the
	// replicated queue (no injectivity axiom).
	abs, _ := buildHistory([]histOp{
		{op: Op{Kind: Enqueue, V: 10}},
		{op: Op{Kind: Dequeue}, rval: Val{V: 10, T: 1, OK: true}, preds: []int{0}},
		{op: Op{Kind: Dequeue}, rval: Val{V: 10, T: 1, OK: true}, preds: []int{0}},
	})
	if !Axioms(abs) {
		t.Fatal("at-least-once dequeues must satisfy the replicated queue axioms")
	}
}
