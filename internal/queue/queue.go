// Package queue implements the replicated functional queue of §6: an
// Okasaki two-list queue with O(1) amortized enqueue/dequeue promoted to an
// MRDT with a linear-time, tombstone-free three-way merge (Appendix B) and
// at-least-once dequeue semantics — an element may be consumed by
// concurrent dequeues on different branches, and a merge removes every
// element either side dequeued.
//
// Elements are tagged with the unique timestamp of their enqueue, which
// both disambiguates duplicates and supplies the merge order for
// concurrently enqueued elements.
package queue

import (
	"slices"

	"repro/internal/core"
)

// OpKind distinguishes queue operations.
type OpKind int

// Queue operations.
const (
	Enqueue OpKind = iota
	Dequeue
)

// Op is a queue operation; V is the enqueued value (ignored for Dequeue).
type Op struct {
	Kind OpKind
	V    int64
}

// Val is an operation's return value. A dequeue on an empty queue returns
// OK=false (the paper's EMPTY); enqueue always returns the zero Val (⊥).
type Val struct {
	V  int64
	T  core.Timestamp // enqueue timestamp of the dequeued element
	OK bool
}

// ValEq compares return values.
func ValEq(a, b Val) bool { return a == b }

// Pair is one queued element with its enqueue timestamp.
type Pair struct {
	T core.Timestamp
	V int64
}

// list is a persistent cons list. Persistence matters: the store retains
// ancestor states as merge bases, so operations must never mutate shared
// structure.
type list struct {
	head Pair
	tail *list
}

func cons(p Pair, l *list) *list { return &list{head: p, tail: l} }

func rev(l *list) *list {
	var out *list
	for ; l != nil; l = l.tail {
		out = cons(l.head, out)
	}
	return out
}

func listLen(l *list) int {
	n := 0
	for ; l != nil; l = l.tail {
		n++
	}
	return n
}

// State is the queue state: front holds the oldest elements in dequeue
// order; back holds the newest elements in reverse order (as in Okasaki's
// two-list queue).
type State struct {
	front *list
	back  *list
}

// Queue is the replicated queue MRDT.
type Queue struct{}

var _ core.MRDT[State, Op, Val] = Queue{}

// Init returns the empty queue.
func (Queue) Init() State { return State{} }

// Len returns the number of queued elements (O(n)).
func (s State) Len() int { return listLen(s.front) + listLen(s.back) }

// ToSlice returns the queue contents oldest-first.
func (s State) ToSlice() []Pair {
	out := make([]Pair, 0, s.Len())
	for l := s.front; l != nil; l = l.tail {
		out = append(out, l.head)
	}
	n := len(out)
	for l := s.back; l != nil; l = l.tail {
		out = append(out, l.head)
	}
	// The back list is newest-first; reverse its portion.
	for i, j := n, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// FromSlice builds a queue holding the given elements oldest-first.
func FromSlice(ps []Pair) State {
	var front *list
	for i := len(ps) - 1; i >= 0; i-- {
		front = cons(ps[i], front)
	}
	return State{front: front}
}

// Do applies op at state s with timestamp t. Enqueue conses onto the back
// list in O(1); dequeue pops the front list, reversing the back list into
// the front when the front is exhausted (O(1) amortized).
func (Queue) Do(op Op, s State, t core.Timestamp) (State, Val) {
	switch op.Kind {
	case Enqueue:
		return State{front: s.front, back: cons(Pair{T: t, V: op.V}, s.back)}, Val{}
	case Dequeue:
		if s.front == nil {
			if s.back == nil {
				return s, Val{}
			}
			s = State{front: rev(s.back)}
		}
		h := s.front.head
		return State{front: s.front.tail, back: s.back}, Val{V: h.V, T: h.T, OK: true}
	default:
		return s, Val{}
	}
}

// Merge implements the three-way merge of Appendix B:
//
//	merge_s l a b = intersection l a b @ union (diff_s a l) (diff_s b l)
//
// where intersection keeps the elements of the LCA that neither branch
// has dequeued (in LCA order), diff_s extracts the elements a branch
// enqueued since the LCA, and union orders the two branches' new
// elements by enqueue timestamp. Membership is decided by the enqueue
// timestamp, which is globally unique (Ψ_ts): an LCA element absent from
// a branch was dequeued there and stays dequeued, an element absent from
// the LCA is new on its branch. Deciding by identity rather than by the
// positional suffix walks of Appendix B keeps the merge exact even when
// gossip has interleaved enqueue timestamps across branches and the LCA
// is no longer a timestamp-contiguous prefix of both sides.
func (Queue) Merge(lca, a, b State) State {
	l, as, bs := lca.ToSlice(), a.ToSlice(), b.ToSlice()
	merged := mergeSlices(l, as, bs)
	return FromSlice(merged)
}

func mergeSlices(l, a, b []Pair) []Pair {
	aSet, bSet, lSet := tsSet(a), tsSet(b), tsSet(l)
	out := make([]Pair, 0, len(a)+len(b))
	// intersection: LCA elements neither branch dequeued, in LCA order.
	for _, p := range l {
		if aSet[p.T] && bSet[p.T] {
			out = append(out, p)
		}
	}
	return append(out, union(diff(a, lSet), diff(b, lSet))...)
}

func tsSet(ps []Pair) map[core.Timestamp]bool {
	set := make(map[core.Timestamp]bool, len(ps))
	for _, p := range ps {
		set[p.T] = true
	}
	return set
}

// diff returns the elements of a not in the LCA — the branch's new
// enqueues — sorted by enqueue timestamp (Appendix B's diff_s). The sort
// is a no-op in ordered histories, where the new elements are already an
// ascending suffix.
func diff(a []Pair, l map[core.Timestamp]bool) []Pair {
	var out []Pair
	for _, p := range a {
		if !l[p.T] {
			out = append(out, p)
		}
	}
	slices.SortFunc(out, func(x, y Pair) int {
		switch {
		case x.T < y.T:
			return -1
		case x.T > y.T:
			return 1
		default:
			return 0
		}
	})
	return out
}

// union merges two timestamp-sorted lists of newly enqueued elements
// (Appendix B's union).
func union(l1, l2 []Pair) []Pair {
	out := make([]Pair, 0, len(l1)+len(l2))
	i, j := 0, 0
	for i < len(l1) && j < len(l2) {
		if l1[i].T < l2[j].T {
			out = append(out, l1[i])
			i++
		} else {
			out = append(out, l2[j])
			j++
		}
	}
	out = append(out, l1[i:]...)
	out = append(out, l2[j:]...)
	return out
}
