package queue

import (
	"slices"

	"repro/internal/core"
)

// match_I (§6.2): dequeue event d matches enqueue event e when d returned
// exactly e's element. Return values carry the enqueue timestamp, which is
// unique, so matching is unambiguous.
func matches(abs *core.AbstractState[Op, Val], e, d core.EventID) bool {
	if abs.Oper(e).Kind != Enqueue || abs.Oper(d).Kind != Dequeue {
		return false
	}
	rv := abs.Rval(d)
	return rv.OK && rv.T == abs.Time(e) && rv.V == abs.Oper(e).V
}

// unmatched returns the (timestamp, value) pairs of enqueue events with no
// matching dequeue in the visible history, sorted by enqueue timestamp.
// Timestamp order is a linear extension of visibility (Ψ_ts), so this is
// exactly the queue order the FIFO axioms induce.
func unmatched(abs *core.AbstractState[Op, Val]) []Pair {
	evs := abs.Events()
	var out []Pair
	for _, e := range evs {
		if abs.Oper(e).Kind != Enqueue {
			continue
		}
		consumed := false
		for _, d := range evs {
			if matches(abs, e, d) {
				consumed = true
				break
			}
		}
		if !consumed {
			out = append(out, Pair{T: abs.Time(e), V: abs.Oper(e).V})
		}
	}
	slices.SortFunc(out, func(a, b Pair) int {
		switch {
		case a.T < b.T:
			return -1
		case a.T > b.T:
			return 1
		default:
			return 0
		}
	})
	return out
}

// Spec is F_queue (§6.2): dequeue returns the oldest enqueued element whose
// matching dequeue is not in the visible history (EMPTY — OK=false — when
// every enqueue is matched). This is the unique return value for which
// extending the history with the new dequeue event satisfies the queue
// axioms AddRem, Empty, FIFO1 and FIFO2. Enqueue returns ⊥.
func Spec(op Op, abs *core.AbstractState[Op, Val]) Val {
	if op.Kind != Dequeue {
		return Val{}
	}
	u := unmatched(abs)
	if len(u) == 0 {
		return Val{}
	}
	return Val{V: u[0].V, T: u[0].T, OK: true}
}

// Rsim is the simulation relation of Appendix B.1: the concrete queue
// holds, oldest first, exactly the unmatched enqueues of the abstract
// state, ordered by visibility (with timestamps breaking ties between
// concurrent enqueues) — equivalently, ascending enqueue timestamp, since
// timestamps linearize visibility.
func Rsim(abs *core.AbstractState[Op, Val], s State) bool {
	return slices.Equal(s.ToSlice(), unmatched(abs))
}

// Queue axioms of §6.2, as executable predicates over abstract states.
// They are cross-checks on the specification: the harness asserts that
// every abstract state the store produces satisfies them.

// AxiomAddRem: every non-EMPTY dequeue has a matching enqueue.
func AxiomAddRem(abs *core.AbstractState[Op, Val]) bool {
	evs := abs.Events()
	for _, d := range evs {
		if abs.Oper(d).Kind != Dequeue || !abs.Rval(d).OK {
			continue
		}
		found := false
		for _, e := range evs {
			if matches(abs, e, d) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// AxiomEmpty: a dequeue that returned EMPTY has no unmatched enqueue
// visible to it — every enqueue it saw was already consumed by a dequeue it
// saw.
func AxiomEmpty(abs *core.AbstractState[Op, Val]) bool {
	evs := abs.Events()
	for _, d1 := range evs {
		if abs.Oper(d1).Kind != Dequeue || abs.Rval(d1).OK {
			continue
		}
		for _, e := range evs {
			if abs.Oper(e).Kind != Enqueue || !abs.Vis(e, d1) {
				continue
			}
			consumedBefore := false
			for _, d3 := range evs {
				if matches(abs, e, d3) && abs.Vis(d3, d1) {
					consumedBefore = true
					break
				}
			}
			if !consumedBefore {
				return false
			}
		}
	}
	return true
}

// AxiomFIFO1: if enqueue e1 precedes an enqueue whose element has been
// dequeued, then e1's element has been dequeued too (somewhere in the
// history).
func AxiomFIFO1(abs *core.AbstractState[Op, Val]) bool {
	evs := abs.Events()
	for _, e1 := range evs {
		if abs.Oper(e1).Kind != Enqueue {
			continue
		}
		for _, e2 := range evs {
			if abs.Oper(e2).Kind != Enqueue || !abs.Vis(e1, e2) {
				continue
			}
			e2Matched := false
			for _, d := range evs {
				if matches(abs, e2, d) {
					e2Matched = true
					break
				}
			}
			if !e2Matched {
				continue
			}
			e1Matched := false
			for _, d := range evs {
				if matches(abs, e1, d) {
					e1Matched = true
					break
				}
			}
			if !e1Matched {
				return false
			}
		}
	}
	return true
}

// AxiomFIFO2: no crossing matches — it cannot be that e1 precedes e2, yet
// e2's dequeue precedes e1's dequeue.
func AxiomFIFO2(abs *core.AbstractState[Op, Val]) bool {
	evs := abs.Events()
	for _, e1 := range evs {
		for _, e4 := range evs {
			if !matches(abs, e1, e4) {
				continue
			}
			for _, e2 := range evs {
				for _, e3 := range evs {
					if !matches(abs, e2, e3) {
						continue
					}
					if abs.Vis(e1, e2) && abs.Vis(e3, e4) {
						return false
					}
				}
			}
		}
	}
	return true
}

// Axioms checks all four queue axioms.
func Axioms(abs *core.AbstractState[Op, Val]) bool {
	return AxiomAddRem(abs) && AxiomEmpty(abs) && AxiomFIFO1(abs) && AxiomFIFO2(abs)
}
