package core

import (
	"errors"
	"testing"
)

// toyCounter is a minimal MRDT used to exercise the LTS: an increment-only
// counter with merge(l,a,b) = a + b - l.
type toyCounter struct{}

type toyOp struct{ Read bool } // Read=false means increment

func (toyCounter) Init() int { return 0 }

func (toyCounter) Do(op toyOp, s int, _ Timestamp) (int, int) {
	if op.Read {
		return s, s
	}
	return s + 1, -1
}

func (toyCounter) Merge(l, a, b int) int { return a + b - l }

func toySpec(op toyOp, abs *AbstractState[toyOp, int]) int {
	if !op.Read {
		return -1
	}
	n := 0
	for _, e := range abs.Events() {
		if !abs.Oper(e).Read {
			n++
		}
	}
	return n
}

func TestLTSSingleBranchDo(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	for i := 0; i < 5; i++ {
		if _, _, err := l.Do(0, toyOp{}); err != nil {
			t.Fatal(err)
		}
	}
	v, _, err := l.Do(0, toyOp{Read: true})
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("read = %d, want 5", v)
	}
	abs, err := l.Abstract(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := toySpec(toyOp{Read: true}, abs); got != 5 {
		t.Fatalf("spec over abstract state = %d, want 5", got)
	}
}

func TestLTSCreateBranchCopiesState(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	l.Do(0, toyOp{})
	l.Do(0, toyOp{})
	b, err := l.CreateBranch(0)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := l.Concrete(b)
	c0, _ := l.Concrete(0)
	if cb != c0 || cb != 2 {
		t.Fatalf("forked concrete state = %d, want 2", cb)
	}
	a0, _ := l.Abstract(0)
	ab, _ := l.Abstract(b)
	if !a0.SameEvents(ab) {
		t.Fatal("forked abstract state must equal source")
	}
}

func TestLTSMergeThreeWay(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	l.Do(0, toyOp{}) // lca has 1
	b, _ := l.CreateBranch(0)
	l.Do(0, toyOp{}) // branch 0: 2
	l.Do(b, toyOp{}) // branch b: 2
	l.Do(b, toyOp{}) // branch b: 3
	if !l.CanMerge(0, b) {
		t.Fatal("merge should be enabled")
	}
	if err := l.Merge(0, b); err != nil {
		t.Fatal(err)
	}
	c, _ := l.Concrete(0)
	if c != 4 { // 2 + 3 - 1
		t.Fatalf("merged counter = %d, want 4", c)
	}
	abs, _ := l.Abstract(0)
	if abs.NumEvents() != 4 {
		t.Fatalf("merged abstract has %d events, want 4", abs.NumEvents())
	}
}

func TestLTSMutualMergeConverges(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	l.Do(0, toyOp{})
	b, _ := l.CreateBranch(0)
	l.Do(0, toyOp{})
	l.Do(b, toyOp{})
	if err := l.Merge(0, b); err != nil {
		t.Fatal(err)
	}
	if err := l.Merge(b, 0); err != nil {
		t.Fatal(err)
	}
	a0, _ := l.Abstract(0)
	ab, _ := l.Abstract(b)
	if !a0.SameEvents(ab) {
		t.Fatal("after mutual merge both branches must have same abstract state")
	}
	c0, _ := l.Concrete(0)
	cb, _ := l.Concrete(b)
	if c0 != cb || c0 != 3 {
		t.Fatalf("converged states %d, %d; want 3, 3", c0, cb)
	}
}

func TestLTSCrissCrossMergeHasLCA(t *testing.T) {
	// A criss-cross pattern: both branches merge each other, diverge again,
	// then merge again. The second merge's LCA event set is the union from
	// the first mutual merge, which exists as a recorded version.
	l := NewLTS[int, toyOp, int](toyCounter{})
	b, _ := l.CreateBranch(0)
	l.Do(0, toyOp{})
	l.Do(b, toyOp{})
	if err := l.Merge(0, b); err != nil {
		t.Fatal(err)
	}
	if err := l.Merge(b, 0); err != nil {
		t.Fatal(err)
	}
	l.Do(0, toyOp{})
	l.Do(b, toyOp{})
	if !l.CanMerge(0, b) {
		t.Fatal("criss-cross second merge should find the mutual-merge version as LCA")
	}
	if err := l.Merge(0, b); err != nil {
		t.Fatal(err)
	}
	c0, _ := l.Concrete(0)
	if c0 != 4 {
		t.Fatalf("merged counter = %d, want 4", c0)
	}
}

func TestLTSErrors(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	if _, _, err := l.Do(99, toyOp{}); !errors.Is(err, ErrNoBranch) {
		t.Fatalf("Do on unknown branch: %v", err)
	}
	if _, err := l.CreateBranch(42); !errors.Is(err, ErrNoBranch) {
		t.Fatalf("CreateBranch on unknown branch: %v", err)
	}
	if err := l.Merge(0, 7); !errors.Is(err, ErrNoBranch) {
		t.Fatalf("Merge with unknown branch: %v", err)
	}
	if _, err := l.Concrete(13); !errors.Is(err, ErrNoBranch) {
		t.Fatalf("Concrete on unknown branch: %v", err)
	}
	if _, err := l.Abstract(13); !errors.Is(err, ErrNoBranch) {
		t.Fatalf("Abstract on unknown branch: %v", err)
	}
}

func TestLTSTimestampsUniqueIncreasing(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	b, _ := l.CreateBranch(0)
	for i := 0; i < 10; i++ {
		l.Do(0, toyOp{})
		l.Do(b, toyOp{})
	}
	l.Merge(0, b)
	abs, _ := l.Abstract(0)
	if !PsiTS(abs) {
		t.Fatal("Ψ_ts must hold on every abstract state the LTS produces")
	}
}

func TestLTSPsiLCA(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	l.Do(0, toyOp{})
	l.Do(0, toyOp{})
	b, _ := l.CreateBranch(0)
	l.Do(0, toyOp{})
	l.Do(b, toyOp{})
	aAbs, _ := l.Abstract(0)
	bAbs, _ := l.Abstract(b)
	lcaAbs, lcaConc, err := l.LCAOf(0, b)
	if err != nil {
		t.Fatal(err)
	}
	if lcaConc != 2 {
		t.Fatalf("lca concrete = %d, want 2", lcaConc)
	}
	if !PsiLCA(lcaAbs, aAbs, bAbs) {
		t.Fatal("Ψ_lca must hold for LTS-produced LCA")
	}
	if !lcaAbs.SameEvents(aAbs.LCAAbs(bAbs)) {
		t.Fatal("LCA abstract state must equal lca# of the branches")
	}
}

func TestLTSBranchesListing(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	l.CreateBranch(0)
	l.CreateBranch(0)
	got := l.Branches()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("Branches = %v", got)
	}
}
