// Package core implements the formal model of mergeable replicated data
// types (MRDTs) from "Certified Mergeable Replicated Data Types" (PLDI 2022):
// data type implementations (Definition 2.1), abstract states and visibility
// (Definition 2.2), declarative specifications (Definition 2.3), the
// replicated-store labelled transition system of §3 (Figure 3), the store
// properties Ψ_ts and Ψ_lca (Table 1), and observational equivalence with
// convergence modulo observable behaviour (Definitions 3.4–3.5).
//
// The package is deliberately split in two roles:
//
//   - The MRDT interface and Timestamp type are the production surface that
//     concrete data types (internal/counter, internal/orset, internal/queue,
//     …) implement and that the versioned store (internal/store) drives.
//
//   - History/AbstractState/LTS mirror the paper's semantics and exist to
//     state and check correctness. They shadow every concrete branch state
//     with the abstract event history the paper's specifications are written
//     against; the certification harness (internal/sim) walks the LTS and
//     checks the proof obligations of Table 2 at every transition.
package core

// Timestamp is the totally ordered, globally unique operation timestamp
// supplied by the datastore (§2.1). The store guarantees that
// happens-before implies strictly increasing timestamps and that no two
// operations share a timestamp (property Ψ_ts).
type Timestamp int64

// EventID identifies an event in a History. IDs are dense, assigned in the
// order events are performed.
type EventID int

// BranchID identifies a branch (replica) in the replicated store.
type BranchID int

// MRDT is a mergeable replicated data type implementation
// D_τ = (Σ, σ0, do, merge) (Definition 2.1).
//
// S is the type of concrete branch states Σ, Op the operation type Op_τ and
// Val the return-value type Val_τ. Implementations must be purely
// functional: Do and Merge must not mutate their arguments, because the
// store retains ancestor states for use as lowest common ancestors.
type MRDT[S, Op, Val any] interface {
	// Init returns the initial state σ0.
	Init() S
	// Do applies operation op at state s with the store-provided unique
	// timestamp t, returning the updated state and the return value.
	Do(op Op, s S, t Timestamp) (S, Val)
	// Merge performs the three-way merge of two divergent states a and b
	// with their lowest common ancestor lca.
	Merge(lca, a, b S) S
}

// Spec is a replicated data type specification F_τ (Definition 2.3): given
// an operation and the abstract state visible to it, it returns the value
// the operation must return.
type Spec[Op, Val any] func(op Op, abs *AbstractState[Op, Val]) Val

// Rsim is a replication-aware simulation relation (§4.1) relating the
// abstract state at a branch to the concrete state at that branch.
type Rsim[S, Op, Val any] func(abs *AbstractState[Op, Val], s S) bool

// ValEq compares return values. Specifications frequently return slices
// (e.g. the contents of a set), which are not comparable with ==, so
// equality is supplied per data type.
type ValEq[Val any] func(a, b Val) bool

// ObsEquiv reports whether two concrete states are observationally
// equivalent (Definition 3.4) with respect to a finite probe alphabet:
// every probe operation returns equal values on both states. Probes are
// applied with the same fresh timestamp on both sides and the resulting
// states are discarded.
func ObsEquiv[S, Op, Val any](impl MRDT[S, Op, Val], probes []Op, eq ValEq[Val], a, b S, t Timestamp) bool {
	for _, op := range probes {
		_, va := impl.Do(op, a, t)
		_, vb := impl.Do(op, b, t)
		if !eq(va, vb) {
			return false
		}
	}
	return true
}
