package core

// Append records an event with an explicitly supplied visibility set and
// returns its id. It is the low-level constructor behind do#; it also lets
// compositional specifications (the α-map projection of §5.4) and tests
// build abstract executions with arbitrary — not necessarily
// branch-generated — visibility relations.
func (h *History[Op, Val]) Append(op Op, rval Val, t Timestamp, preds []EventID) EventID {
	id := EventID(len(h.events))
	var p Bitset
	for _, e := range preds {
		p.Add(int(e))
	}
	h.events = append(h.events, Event[Op, Val]{ID: id, Op: op, Rval: rval, Time: t})
	h.pred = append(h.pred, p)
	return id
}

// StateOf returns the abstract state over h containing exactly the given
// events.
func StateOf[Op, Val any](h *History[Op, Val], events []EventID) *AbstractState[Op, Val] {
	var s Bitset
	for _, e := range events {
		s.Add(int(e))
	}
	return &AbstractState[Op, Val]{h: h, set: s}
}
