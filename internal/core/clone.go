package core

import "maps"

// CloneHistory returns a deep copy of the history's tables. Event payloads
// and visibility bitsets are copied shallowly: both are immutable once
// recorded.
func (h *History[Op, Val]) CloneHistory() *History[Op, Val] {
	events := make([]Event[Op, Val], len(h.events))
	copy(events, h.events)
	pred := make([]Bitset, len(h.pred))
	copy(pred, h.pred)
	return &History[Op, Val]{events: events, pred: pred}
}

// Clone returns an independent copy of the LTS, so that an exhaustive
// explorer can branch the search without replaying prefixes. Concrete
// states are shared between the copies — MRDT implementations are required
// to be purely functional, so shared states are never mutated.
func (l *LTS[S, Op, Val]) Clone() *LTS[S, Op, Val] {
	hist := l.hist.CloneHistory()
	versions := make([]version[S, Op, Val], len(l.versions))
	for i, v := range l.versions {
		versions[i] = version[S, Op, Val]{
			conc:    v.conc,
			abs:     &AbstractState[Op, Val]{h: hist, set: v.abs.set.Clone()},
			parents: v.parents,
		}
	}
	return &LTS[S, Op, Val]{
		impl:       l.impl,
		hist:       hist,
		versions:   versions,
		byKey:      maps.Clone(l.byKey),
		heads:      maps.Clone(l.heads),
		nextBranch: l.nextBranch,
		clock:      l.clock,
	}
}
