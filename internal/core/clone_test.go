package core

import "testing"

func TestLTSCloneIsIndependent(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	l.Do(0, toyOp{})
	b, _ := l.CreateBranch(0)
	l.Do(b, toyOp{})

	c := l.Clone()
	// Divergent evolution after the clone.
	l.Do(0, toyOp{})
	c.Do(b, toyOp{})
	c.Do(b, toyOp{})

	lv, _ := l.Concrete(0)
	cv, _ := c.Concrete(0)
	if lv != 2 || cv != 1 {
		t.Fatalf("original b0=%d (want 2), clone b0=%d (want 1)", lv, cv)
	}
	// Branch b forked from b0 at value 1, then incremented once before the
	// clone (2); only the clone increments it further (4).
	lb, _ := l.Concrete(b)
	cb, _ := c.Concrete(b)
	if lb != 2 || cb != 4 {
		t.Fatalf("original b1=%d (want 2), clone b1=%d (want 4)", lb, cb)
	}
	// Histories diverge without interference.
	la, _ := l.Abstract(0)
	ca, _ := c.Abstract(0)
	if la.NumEvents() != 2 || ca.NumEvents() != 1 {
		t.Fatalf("original events=%d (want 2), clone events=%d (want 1)", la.NumEvents(), ca.NumEvents())
	}
}

func TestLTSCloneSupportsMergesOnBothSides(t *testing.T) {
	l := NewLTS[int, toyOp, int](toyCounter{})
	b, _ := l.CreateBranch(0)
	l.Do(0, toyOp{})
	l.Do(b, toyOp{})
	c := l.Clone()
	if err := l.Merge(0, b); err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(b, 0); err != nil {
		t.Fatal(err)
	}
	lv, _ := l.Concrete(0)
	cv, _ := c.Concrete(b)
	if lv != 2 || cv != 2 {
		t.Fatalf("merge on original=%d, on clone=%d; want 2, 2", lv, cv)
	}
}

func TestHistoryCloneSharesNothingMutable(t *testing.T) {
	h := NewHistory[string, int]()
	s1, _ := EmptyAbstract(h).DoAbs("a", 0, 1)
	h2 := h.CloneHistory()
	// Extending the original must not leak into the clone.
	s1.DoAbs("b", 0, 2)
	if h.NumEvents() != 2 || h2.NumEvents() != 1 {
		t.Fatalf("original=%d clone=%d events", h.NumEvents(), h2.NumEvents())
	}
}

func TestStateOfAndAppend(t *testing.T) {
	h := NewHistory[string, int]()
	e1 := h.Append("x", 1, 10, nil)
	e2 := h.Append("y", 2, 20, []EventID{e1})
	st := StateOf(h, []EventID{e1, e2})
	if !st.Vis(e1, e2) || st.Vis(e2, e1) {
		t.Fatal("explicit visibility must be respected")
	}
	partial := StateOf(h, []EventID{e2})
	if partial.Contains(e1) || !partial.Contains(e2) {
		t.Fatal("StateOf must include exactly the given events")
	}
	if partial.Vis(e1, e2) {
		t.Fatal("visibility is restricted to the state's events")
	}
}
