package core

import (
	"errors"
	"fmt"
)

// ErrNoLCA is returned by Merge when no recorded version's event set equals
// the intersection of the two branches' event sets. The MERGE rule of
// Figure 3 requires such a version (the store always provides one in
// practice; see internal/store for the production implementation).
var ErrNoLCA = errors.New("core: no lowest common ancestor version")

// ErrNoBranch is returned for operations on unknown branches.
var ErrNoBranch = errors.New("core: unknown branch")

type versionID int

type version[S, Op, Val any] struct {
	conc    S
	abs     *AbstractState[Op, Val]
	parents []versionID
}

// LTS is the labelled transition system M_{D_τ} of §3 (Figure 3). Each
// branch maps to both a concrete state (as computed by the MRDT
// implementation) and an abstract state (as computed by do#/merge#/lca#).
// All versions ever produced are retained in a DAG so that the concrete
// state at the lowest common ancestor of two branches is available to the
// three-way merge, exactly as a Git-like store would provide it.
//
// The LTS is the reference semantics used for certification; the production
// store lives in internal/store and does not track abstract states.
type LTS[S, Op, Val any] struct {
	impl       MRDT[S, Op, Val]
	hist       *History[Op, Val]
	versions   []version[S, Op, Val]
	byKey      map[string]versionID // canonical event-set key → version
	heads      map[BranchID]versionID
	nextBranch BranchID
	clock      Timestamp
}

// NewLTS returns the initial store state C⊥: a single branch b0 holding the
// implementation's initial state and the empty abstract state.
func NewLTS[S, Op, Val any](impl MRDT[S, Op, Val]) *LTS[S, Op, Val] {
	hist := NewHistory[Op, Val]()
	l := &LTS[S, Op, Val]{
		impl:  impl,
		hist:  hist,
		byKey: make(map[string]versionID),
		heads: make(map[BranchID]versionID),
	}
	v0 := version[S, Op, Val]{conc: impl.Init(), abs: EmptyAbstract(hist)}
	l.versions = append(l.versions, v0)
	l.byKey[v0.abs.Key()] = 0
	l.heads[0] = 0
	l.nextBranch = 1
	return l
}

// Impl returns the data type implementation the LTS runs.
func (l *LTS[S, Op, Val]) Impl() MRDT[S, Op, Val] { return l.impl }

// History returns the execution's shared event history.
func (l *LTS[S, Op, Val]) History() *History[Op, Val] { return l.hist }

// Branches returns the ids of all live branches in creation order.
func (l *LTS[S, Op, Val]) Branches() []BranchID {
	out := make([]BranchID, 0, len(l.heads))
	for b := BranchID(0); b < l.nextBranch; b++ {
		if _, ok := l.heads[b]; ok {
			out = append(out, b)
		}
	}
	return out
}

// Concrete returns φ(b), the concrete state at branch b.
func (l *LTS[S, Op, Val]) Concrete(b BranchID) (S, error) {
	v, ok := l.heads[b]
	if !ok {
		var zero S
		return zero, fmt.Errorf("%w: %d", ErrNoBranch, b)
	}
	return l.versions[v].conc, nil
}

// Abstract returns δ(b), the abstract state at branch b.
func (l *LTS[S, Op, Val]) Abstract(b BranchID) (*AbstractState[Op, Val], error) {
	v, ok := l.heads[b]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoBranch, b)
	}
	return l.versions[v].abs, nil
}

// Clock returns the next timestamp the store will hand out.
func (l *LTS[S, Op, Val]) Clock() Timestamp { return l.clock }

// CreateBranch applies the CREATEBRANCH rule: fork a new branch from src,
// copying both its concrete and abstract state. It returns the new branch's
// id.
func (l *LTS[S, Op, Val]) CreateBranch(src BranchID) (BranchID, error) {
	v, ok := l.heads[src]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoBranch, src)
	}
	b := l.nextBranch
	l.nextBranch++
	l.heads[b] = v
	return b, nil
}

// Do applies the DO rule at branch b: the implementation's do runs on the
// concrete state with a fresh unique timestamp, and do# shadows it on the
// abstract state. It returns the operation's return value and the new
// event's id.
func (l *LTS[S, Op, Val]) Do(b BranchID, op Op) (Val, EventID, error) {
	var zero Val
	hv, ok := l.heads[b]
	if !ok {
		return zero, 0, fmt.Errorf("%w: %d", ErrNoBranch, b)
	}
	cur := l.versions[hv]
	t := l.clock
	l.clock++
	conc, rval := l.impl.Do(op, cur.conc, t)
	abs, ev := cur.abs.DoAbs(op, rval, t)
	l.addVersion(b, version[S, Op, Val]{conc: conc, abs: abs, parents: []versionID{hv}})
	return rval, ev, nil
}

// Merge applies the MERGE rule, merging branch src into branch dst. The
// lowest common ancestor version is located by its event set (the
// intersection of the two branches' event sets, per lca#); its concrete
// state seeds the implementation's three-way merge while merge# computes
// the new abstract state.
func (l *LTS[S, Op, Val]) Merge(dst, src BranchID) error {
	hd, ok := l.heads[dst]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoBranch, dst)
	}
	hs, ok := l.heads[src]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoBranch, src)
	}
	vd, vs := l.versions[hd], l.versions[hs]
	lcaAbs := vd.abs.LCAAbs(vs.abs)
	lv, ok := l.byKey[lcaAbs.Key()]
	if !ok {
		return ErrNoLCA
	}
	lca := l.versions[lv]
	merged := l.impl.Merge(lca.conc, vd.conc, vs.conc)
	abs := vd.abs.MergeAbs(vs.abs)
	l.addVersion(dst, version[S, Op, Val]{conc: merged, abs: abs, parents: []versionID{hd, hs}})
	return nil
}

// LCAOf returns the abstract and concrete states at the lowest common
// ancestor of two branches, for use by the certification harness.
func (l *LTS[S, Op, Val]) LCAOf(b1, b2 BranchID) (*AbstractState[Op, Val], S, error) {
	var zero S
	h1, ok := l.heads[b1]
	if !ok {
		return nil, zero, fmt.Errorf("%w: %d", ErrNoBranch, b1)
	}
	h2, ok := l.heads[b2]
	if !ok {
		return nil, zero, fmt.Errorf("%w: %d", ErrNoBranch, b2)
	}
	lcaAbs := l.versions[h1].abs.LCAAbs(l.versions[h2].abs)
	lv, ok := l.byKey[lcaAbs.Key()]
	if !ok {
		return nil, zero, ErrNoLCA
	}
	return l.versions[lv].abs, l.versions[lv].conc, nil
}

// CanMerge reports whether the MERGE rule is enabled for (dst, src), i.e.
// whether a version with the LCA event set exists.
func (l *LTS[S, Op, Val]) CanMerge(dst, src BranchID) bool {
	hd, ok1 := l.heads[dst]
	hs, ok2 := l.heads[src]
	if !ok1 || !ok2 {
		return false
	}
	_, ok := l.byKey[l.versions[hd].abs.LCAAbs(l.versions[hs].abs).Key()]
	return ok
}

// PsiLCASound reports whether a merge of src into dst satisfies the store
// property Ψ_lca (Table 1): every event in the LCA is visible to every
// event on either branch outside the LCA. The paper's Φ_merge obligation
// assumes Ψ_lca, so the certification explorer only takes merges for
// which this holds. The production store (internal/store) maintains the
// property by construction: the merge base it hands the data type is the
// join of every maximal common ancestor of the two heads, whose events
// are exactly the events common to both branches.
func (l *LTS[S, Op, Val]) PsiLCASound(dst, src BranchID) bool {
	hd, ok1 := l.heads[dst]
	hs, ok2 := l.heads[src]
	if !ok1 || !ok2 {
		return false
	}
	ia, ib := l.versions[hd].abs, l.versions[hs].abs
	return PsiLCA(ia.LCAAbs(ib), ia, ib)
}

func (l *LTS[S, Op, Val]) addVersion(b BranchID, v version[S, Op, Val]) {
	id := versionID(len(l.versions))
	l.versions = append(l.versions, v)
	if _, dup := l.byKey[v.abs.Key()]; !dup {
		l.byKey[v.abs.Key()] = id
	}
	l.heads[b] = id
}
