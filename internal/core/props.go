package core

// Store properties (Table 1). These hold by construction of the store
// semantics; the certification harness re-checks them on every abstract
// state it produces, both as a sanity check on the semantics and because
// they are premises of the proof obligations Φ_do and Φ_merge (Table 2).

// PsiTS checks Ψ_ts(I): causally related events have strictly increasing
// timestamps, and timestamps are unique.
func PsiTS[Op, Val any](a *AbstractState[Op, Val]) bool {
	evs := a.Events()
	seen := make(map[Timestamp]EventID, len(evs))
	for _, e := range evs {
		t := a.Time(e)
		if prev, dup := seen[t]; dup && prev != e {
			return false
		}
		seen[t] = e
	}
	for _, e := range evs {
		for _, f := range evs {
			if e != f && a.Vis(e, f) && a.Time(e) >= a.Time(f) {
				return false
			}
		}
	}
	return true
}

// PsiLCA checks Ψ_lca(I_l, I_a, I_b) for I_l = lca#(I_a, I_b): the
// visibility relation restricted to the LCA's events agrees across all
// three states, and every LCA event is visible to every event newly added
// on either branch.
func PsiLCA[Op, Val any](l, a, b *AbstractState[Op, Val]) bool {
	lev := l.Events()
	// vis agreement on I_l.E: with a shared history this is structural, but
	// we check the definition literally.
	for _, e := range lev {
		for _, f := range lev {
			if e == f {
				continue
			}
			if l.Vis(e, f) != a.Vis(e, f) || l.Vis(e, f) != b.Vis(e, f) {
				return false
			}
		}
	}
	// Every event of I_l is visible to every event in (I_a.E ∪ I_b.E) \ I_l.E.
	check := func(s *AbstractState[Op, Val]) bool {
		for _, f := range s.Events() {
			if l.Contains(f) {
				continue
			}
			for _, e := range lev {
				if !s.Vis(e, f) {
					return false
				}
			}
		}
		return true
	}
	return check(a) && check(b)
}
