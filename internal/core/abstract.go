package core

// Event is a single operation instance in an execution (Definition 2.2):
// the operation performed, its return value and its unique timestamp.
type Event[Op, Val any] struct {
	ID   EventID
	Op   Op
	Rval Val
	Time Timestamp
}

// History is the global event table of one execution. Abstract states are
// subsets of its events; the visibility relation is stored once per event
// (the set of events visible to it), because visibility edges are created
// only when an event is performed (do#) and never change afterwards.
type History[Op, Val any] struct {
	events []Event[Op, Val]
	pred   []Bitset // pred[e] = set of events visible to e (vis → e)
}

// NewHistory returns an empty history.
func NewHistory[Op, Val any]() *History[Op, Val] {
	return &History[Op, Val]{}
}

// NumEvents returns the number of events recorded so far.
func (h *History[Op, Val]) NumEvents() int { return len(h.events) }

// Event returns the event with the given id.
func (h *History[Op, Val]) Event(e EventID) Event[Op, Val] { return h.events[e] }

// AbstractState is an abstract state I = ⟨E, oper, rval, time, vis⟩
// (Definition 2.2), represented as a subset of the events of a shared
// History. oper/rval/time are projections of the event table and vis is the
// restriction of the history's visibility relation to the subset.
type AbstractState[Op, Val any] struct {
	h   *History[Op, Val]
	set Bitset
}

// EmptyAbstract returns the empty abstract state I0 over history h.
func EmptyAbstract[Op, Val any](h *History[Op, Val]) *AbstractState[Op, Val] {
	return &AbstractState[Op, Val]{h: h}
}

// Clone returns an independent copy of the abstract state (sharing the
// immutable history).
func (a *AbstractState[Op, Val]) Clone() *AbstractState[Op, Val] {
	return &AbstractState[Op, Val]{h: a.h, set: a.set.Clone()}
}

// History returns the shared history the state draws its events from.
func (a *AbstractState[Op, Val]) History() *History[Op, Val] { return a.h }

// Events returns the event ids in the state, in increasing id order.
func (a *AbstractState[Op, Val]) Events() []EventID {
	raw := a.set.Elems()
	out := make([]EventID, len(raw))
	for i, e := range raw {
		out[i] = EventID(e)
	}
	return out
}

// Contains reports whether event e is in the state.
func (a *AbstractState[Op, Val]) Contains(e EventID) bool { return a.set.Has(int(e)) }

// NumEvents returns |E|.
func (a *AbstractState[Op, Val]) NumEvents() int { return a.set.Count() }

// Oper returns oper(e).
func (a *AbstractState[Op, Val]) Oper(e EventID) Op { return a.h.events[e].Op }

// Rval returns rval(e).
func (a *AbstractState[Op, Val]) Rval(e EventID) Val { return a.h.events[e].Rval }

// Time returns time(e).
func (a *AbstractState[Op, Val]) Time(e EventID) Timestamp { return a.h.events[e].Time }

// Vis reports e --vis--> f restricted to this state: both events are in the
// state and e was visible to f when f was performed.
func (a *AbstractState[Op, Val]) Vis(e, f EventID) bool {
	return a.set.Has(int(e)) && a.set.Has(int(f)) && a.h.pred[f].Has(int(e))
}

// Concurrent reports that e and f are both in the state and neither is
// visible to the other.
func (a *AbstractState[Op, Val]) Concurrent(e, f EventID) bool {
	if !a.set.Has(int(e)) || !a.set.Has(int(f)) || e == f {
		return false
	}
	return !a.h.pred[f].Has(int(e)) && !a.h.pred[e].Has(int(f))
}

// SameEvents reports whether a and b contain exactly the same events
// (abstract state equality δ(b1) = δ(b2), given a shared history).
func (a *AbstractState[Op, Val]) SameEvents(b *AbstractState[Op, Val]) bool {
	return a.set.Equal(b.set)
}

// Key returns a canonical map key for the event set.
func (a *AbstractState[Op, Val]) Key() string { return a.set.Key() }

// DoAbs is the abstract operation do# (§3): it records a new event with the
// given operation, return value and timestamp, visible from every event
// currently in the state, and returns the extended abstract state.
func (a *AbstractState[Op, Val]) DoAbs(op Op, rval Val, t Timestamp) (*AbstractState[Op, Val], EventID) {
	id := EventID(len(a.h.events))
	a.h.events = append(a.h.events, Event[Op, Val]{ID: id, Op: op, Rval: rval, Time: t})
	a.h.pred = append(a.h.pred, a.set.Clone())
	next := a.set.Clone()
	next.Add(int(id))
	return &AbstractState[Op, Val]{h: a.h, set: next}, id
}

// MergeAbs is merge# (§3): the union of the two event sets. The visibility
// relation needs no explicit union because each event's visibility set is
// fixed at creation and shared through the history.
func (a *AbstractState[Op, Val]) MergeAbs(b *AbstractState[Op, Val]) *AbstractState[Op, Val] {
	return &AbstractState[Op, Val]{h: a.h, set: a.set.Union(b.set)}
}

// LCAAbs is lca# (§3): the intersection of the two event sets, with the
// event properties and visibility restricted to it.
func (a *AbstractState[Op, Val]) LCAAbs(b *AbstractState[Op, Val]) *AbstractState[Op, Val] {
	return &AbstractState[Op, Val]{h: a.h, set: a.set.Intersect(b.set)}
}
