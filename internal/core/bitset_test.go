package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	var s Bitset
	if s.Count() != 0 || s.Has(0) || s.Has(100) {
		t.Fatal("zero value should be empty")
	}
	s.Add(3)
	s.Add(64)
	s.Add(130)
	if !s.Has(3) || !s.Has(64) || !s.Has(130) {
		t.Fatal("missing added elements")
	}
	if s.Has(4) || s.Has(65) {
		t.Fatal("phantom elements")
	}
	if got := s.Elems(); !reflect.DeepEqual(got, []int{3, 64, 130}) {
		t.Fatalf("Elems = %v", got)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestBitsetAddIdempotent(t *testing.T) {
	var s Bitset
	s.Add(7)
	s.Add(7)
	if s.Count() != 1 {
		t.Fatalf("Count = %d after duplicate Add", s.Count())
	}
}

func TestBitsetUnionIntersect(t *testing.T) {
	var a, b Bitset
	a.Add(1)
	a.Add(100)
	b.Add(100)
	b.Add(200)
	u := a.Union(b)
	if got := u.Elems(); !reflect.DeepEqual(got, []int{1, 100, 200}) {
		t.Fatalf("Union = %v", got)
	}
	i := a.Intersect(b)
	if got := i.Elems(); !reflect.DeepEqual(got, []int{100}) {
		t.Fatalf("Intersect = %v", got)
	}
}

func TestBitsetEqualDifferentCapacity(t *testing.T) {
	a := NewBitset(512)
	var b Bitset
	a.Add(5)
	b.Add(5)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("sets with equal contents but different capacity must be Equal")
	}
	if a.Key() != b.Key() {
		t.Fatal("canonical keys must agree regardless of capacity")
	}
}

func TestBitsetSubset(t *testing.T) {
	var a, b Bitset
	a.Add(2)
	b.Add(2)
	b.Add(90)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a expected")
	}
	var empty Bitset
	if !empty.SubsetOf(a) || !empty.SubsetOf(empty) {
		t.Fatal("empty set is subset of everything")
	}
}

func TestBitsetCloneIndependent(t *testing.T) {
	var a Bitset
	a.Add(1)
	c := a.Clone()
	c.Add(2)
	if a.Has(2) {
		t.Fatal("Clone must be independent")
	}
}

// Property: Union is commutative, associative and idempotent; Intersect is
// the dual; De Morgan-ish containment relations hold.
func TestBitsetAlgebraProperties(t *testing.T) {
	gen := func(r *rand.Rand) Bitset {
		var s Bitset
		n := r.Intn(40)
		for i := 0; i < n; i++ {
			s.Add(r.Intn(300))
		}
		return s
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(gen(r))
			}
		},
	}
	comm := func(a, b Bitset) bool {
		return a.Union(b).Equal(b.Union(a)) && a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c Bitset) bool {
		return a.Union(b).Union(c).Equal(a.Union(b.Union(c))) &&
			a.Intersect(b).Intersect(c).Equal(a.Intersect(b.Intersect(c)))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Error(err)
	}
	idem := func(a Bitset) bool {
		return a.Union(a).Equal(a) && a.Intersect(a).Equal(a)
	}
	if err := quick.Check(idem, cfg); err != nil {
		t.Error(err)
	}
	contain := func(a, b Bitset) bool {
		return a.Intersect(b).SubsetOf(a) && a.SubsetOf(a.Union(b))
	}
	if err := quick.Check(contain, cfg); err != nil {
		t.Error(err)
	}
	keyEq := func(a, b Bitset) bool {
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(keyEq, cfg); err != nil {
		t.Error(err)
	}
}
