package core

import "math/bits"

// Bitset is a growable set of small non-negative integers, used to represent
// sets of events (abstract states are event sets over a shared History).
// The zero value is an empty set. All binary operations treat missing words
// as zero, so sets of different lengths compose freely.
type Bitset struct {
	words []uint64
}

// NewBitset returns an empty bitset with capacity hint n bits.
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64)}
}

// Clone returns an independent copy of s.
func (s Bitset) Clone() Bitset {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Bitset{words: w}
}

// Add inserts i into the set.
func (s *Bitset) Add(i int) {
	w := i / 64
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(i) % 64)
}

// Has reports whether i is in the set.
func (s Bitset) Has(i int) bool {
	w := i / 64
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(i)%64)) != 0
}

// Union returns s ∪ t as a new set.
func (s Bitset) Union(t Bitset) Bitset {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	w := make([]uint64, n)
	for i := range w {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		w[i] = a | b
	}
	return Bitset{words: w}
}

// Intersect returns s ∩ t as a new set.
func (s Bitset) Intersect(t Bitset) Bitset {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	w := make([]uint64, n)
	for i := range w {
		w[i] = s.words[i] & t.words[i]
	}
	return Bitset{words: w}
}

// Equal reports whether s and t contain the same elements.
func (s Bitset) Equal(t Bitset) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s Bitset) SubsetOf(t Bitset) bool {
	for i, a := range s.words {
		var b uint64
		if i < len(t.words) {
			b = t.words[i]
		}
		if a&^b != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of elements in the set.
func (s Bitset) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Elems returns the elements of the set in increasing order.
func (s Bitset) Elems() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// Key returns a canonical string key for the set contents, usable as a map
// key (two sets with equal elements produce equal keys).
func (s Bitset) Key() string {
	// Trim trailing zero words so equal sets of different capacity agree.
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	buf := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		w := s.words[i]
		for b := 0; b < 8; b++ {
			buf = append(buf, byte(w>>(8*b)))
		}
	}
	return string(buf)
}
