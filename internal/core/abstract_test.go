package core

import "testing"

func TestAbstractDoVisibility(t *testing.T) {
	h := NewHistory[string, int]()
	i0 := EmptyAbstract(h)
	i1, e1 := i0.DoAbs("a", 0, 1)
	i2, e2 := i1.DoAbs("b", 0, 2)
	if !i2.Vis(e1, e2) {
		t.Fatal("e1 must be visible to e2 (same branch, earlier)")
	}
	if i2.Vis(e2, e1) {
		t.Fatal("visibility must not be symmetric")
	}
	if i2.NumEvents() != 2 {
		t.Fatalf("NumEvents = %d", i2.NumEvents())
	}
	if i0.NumEvents() != 0 || i1.NumEvents() != 1 {
		t.Fatal("DoAbs must not mutate its receiver's event set")
	}
}

func TestAbstractConcurrentEvents(t *testing.T) {
	h := NewHistory[string, int]()
	base, e0 := EmptyAbstract(h).DoAbs("base", 0, 1)
	// Fork: two events each performed against `base` independently.
	ia, ea := base.DoAbs("a", 0, 2)
	ib, eb := base.DoAbs("b", 0, 3)
	m := ia.MergeAbs(ib)
	if !m.Concurrent(ea, eb) {
		t.Fatal("events from divergent branches must be concurrent")
	}
	if m.Vis(ea, eb) || m.Vis(eb, ea) {
		t.Fatal("no visibility between concurrent events")
	}
	if !m.Vis(e0, ea) || !m.Vis(e0, eb) {
		t.Fatal("base event visible to both")
	}
	if m.Concurrent(e0, ea) {
		t.Fatal("causally ordered events are not concurrent")
	}
	if m.Concurrent(ea, ea) {
		t.Fatal("an event is not concurrent with itself")
	}
}

func TestAbstractMergeLCA(t *testing.T) {
	h := NewHistory[string, int]()
	base, _ := EmptyAbstract(h).DoAbs("base", 0, 1)
	ia, _ := base.DoAbs("a", 0, 2)
	ib, _ := base.DoAbs("b", 0, 3)
	lca := ia.LCAAbs(ib)
	if !lca.SameEvents(base) {
		t.Fatal("lca# must be the common prefix")
	}
	m := ia.MergeAbs(ib)
	if m.NumEvents() != 3 {
		t.Fatalf("merge# events = %d, want 3", m.NumEvents())
	}
	// merge# then lca# with one side is that side.
	if !m.LCAAbs(ia).SameEvents(ia) {
		t.Fatal("lca#(merge#(a,b), a) = a")
	}
}

func TestAbstractAccessors(t *testing.T) {
	h := NewHistory[string, int]()
	i1, e1 := EmptyAbstract(h).DoAbs("op1", 42, 7)
	if i1.Oper(e1) != "op1" || i1.Rval(e1) != 42 || i1.Time(e1) != 7 {
		t.Fatal("accessor mismatch")
	}
	if !i1.Contains(e1) {
		t.Fatal("Contains")
	}
	if h.NumEvents() != 1 || h.Event(e1).Op != "op1" {
		t.Fatal("history accessor mismatch")
	}
	c := i1.Clone()
	if !c.SameEvents(i1) || c.History() != h {
		t.Fatal("Clone must preserve events and history")
	}
}

func TestPsiTSViolations(t *testing.T) {
	// Duplicate timestamps violate Ψ_ts.
	h := NewHistory[string, int]()
	i1, _ := EmptyAbstract(h).DoAbs("a", 0, 5)
	i2, _ := i1.DoAbs("b", 0, 5)
	if PsiTS(i2) {
		t.Fatal("duplicate timestamps must violate Ψ_ts")
	}
	// Causally ordered events with non-increasing timestamps violate Ψ_ts.
	h2 := NewHistory[string, int]()
	j1, _ := EmptyAbstract(h2).DoAbs("a", 0, 9)
	j2, _ := j1.DoAbs("b", 0, 3)
	if PsiTS(j2) {
		t.Fatal("vis with decreasing timestamps must violate Ψ_ts")
	}
	// A well-formed history satisfies Ψ_ts.
	h3 := NewHistory[string, int]()
	k1, _ := EmptyAbstract(h3).DoAbs("a", 0, 1)
	k2, _ := k1.DoAbs("b", 0, 2)
	if !PsiTS(k2) {
		t.Fatal("well-formed history must satisfy Ψ_ts")
	}
}

func TestPsiLCAHolds(t *testing.T) {
	h := NewHistory[string, int]()
	base, _ := EmptyAbstract(h).DoAbs("base", 0, 1)
	ia, _ := base.DoAbs("a", 0, 2)
	ib, _ := base.DoAbs("b", 0, 3)
	if !PsiLCA(ia.LCAAbs(ib), ia, ib) {
		t.Fatal("Ψ_lca must hold for genuine fork")
	}
}

func TestObsEquiv(t *testing.T) {
	impl := toyCounter{}
	probes := []toyOp{{Read: true}}
	eq := func(a, b int) bool { return a == b }
	if !ObsEquiv[int, toyOp, int](impl, probes, eq, 3, 3, 100) {
		t.Fatal("equal states must be observationally equivalent")
	}
	if ObsEquiv[int, toyOp, int](impl, probes, eq, 3, 4, 100) {
		t.Fatal("counters 3 and 4 are distinguishable by read")
	}
}
