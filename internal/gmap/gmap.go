// Package gmap implements the grow-only map MRDT (§7.1): a map from string
// keys to values in which keys are never removed and concurrent writes to
// the same key are resolved last-writer-wins by operation timestamp — i.e.
// a composition of a grow-only key set with per-key LWW registers.
package gmap

import (
	"slices"

	"repro/internal/core"
)

// OpKind distinguishes map operations.
type OpKind int

// Map operations.
const (
	Get OpKind = iota
	Put
	Keys
)

// Op is a map operation. K is the key (Get/Put); V the value (Put).
type Op struct {
	Kind OpKind
	K    string
	V    int64
}

// Val is an operation's return value.
type Val struct {
	V     int64    // Get: the bound value (0 if unbound)
	Found bool     // Get: whether the key is bound
	Ks    []string // Keys: the bound keys, sorted
}

// ValEq compares return values.
func ValEq(a, b Val) bool {
	return a.V == b.V && a.Found == b.Found && slices.Equal(a.Ks, b.Ks)
}

// Entry is a single binding with the timestamp of the write that produced
// it.
type Entry struct {
	K string
	T core.Timestamp
	V int64
}

// State is the concrete map state: entries sorted by key. Treat as
// immutable.
type State []Entry

// Map is the grow-only map MRDT.
type Map struct{}

var _ core.MRDT[State, Op, Val] = Map{}

// Init returns the empty map.
func (Map) Init() State { return nil }

func find(s State, k string) (int, bool) {
	return slices.BinarySearchFunc(s, k, func(e Entry, k string) int {
		switch {
		case e.K < k:
			return -1
		case e.K > k:
			return 1
		default:
			return 0
		}
	})
}

// Do applies op at state s with timestamp t.
func (Map) Do(op Op, s State, t core.Timestamp) (State, Val) {
	switch op.Kind {
	case Get:
		if i, ok := find(s, op.K); ok {
			return s, Val{V: s[i].V, Found: true}
		}
		return s, Val{}
	case Keys:
		ks := make([]string, len(s))
		for i, e := range s {
			ks[i] = e.K
		}
		return s, Val{Ks: ks}
	case Put:
		i, ok := find(s, op.K)
		next := make(State, 0, len(s)+1)
		next = append(next, s[:i]...)
		next = append(next, Entry{K: op.K, T: t, V: op.V})
		if ok {
			next = append(next, s[i+1:]...)
		} else {
			next = append(next, s[i:]...)
		}
		return next, Val{}
	default:
		return s, Val{}
	}
}

// Merge unions the key sets of the two branches; a key bound on both sides
// keeps the binding with the larger write timestamp. As with the LWW
// register, the LCA binding is dominated by both branches and needs no
// consulting.
func (Map) Merge(_, a, b State) State {
	out := make(State, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].K < b[j].K:
			out = append(out, a[i])
			i++
		case a[i].K > b[j].K:
			out = append(out, b[j])
			j++
		default:
			if a[i].T >= b[j].T {
				out = append(out, a[i])
			} else {
				out = append(out, b[j])
			}
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Spec is F_gmap: get(k) returns the value of the maximal-timestamp put to
// k in the visible history; keys returns every key ever put.
func Spec(op Op, abs *core.AbstractState[Op, Val]) Val {
	switch op.Kind {
	case Get:
		e, ok := latestPut(abs, op.K)
		if !ok {
			return Val{}
		}
		return Val{V: abs.Oper(e).V, Found: true}
	case Keys:
		seen := make(map[string]bool)
		var ks []string
		for _, e := range abs.Events() {
			if o := abs.Oper(e); o.Kind == Put && !seen[o.K] {
				seen[o.K] = true
				ks = append(ks, o.K)
			}
		}
		slices.Sort(ks)
		return Val{Ks: ks}
	default:
		return Val{}
	}
}

// Rsim relates abstract and concrete states: the concrete entries are
// exactly, per key, the maximal-timestamp put events of the abstract
// history.
func Rsim(abs *core.AbstractState[Op, Val], s State) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1].K >= s[i].K {
			return false
		}
	}
	want := make(map[string]Entry)
	for _, e := range abs.Events() {
		if o := abs.Oper(e); o.Kind == Put {
			if cur, ok := want[o.K]; !ok || abs.Time(e) > cur.T {
				want[o.K] = Entry{K: o.K, T: abs.Time(e), V: o.V}
			}
		}
	}
	if len(want) != len(s) {
		return false
	}
	for _, e := range s {
		if want[e.K] != e {
			return false
		}
	}
	return true
}

func latestPut(abs *core.AbstractState[Op, Val], k string) (core.EventID, bool) {
	var best core.EventID
	bestT := core.Timestamp(-1)
	for _, e := range abs.Events() {
		if o := abs.Oper(e); o.Kind == Put && o.K == k && abs.Time(e) > bestT {
			best, bestT = e, abs.Time(e)
		}
	}
	return best, bestT >= 0
}
