package gmap

import (
	"slices"
	"testing"

	"repro/internal/core"
)

func TestMapPutGet(t *testing.T) {
	var impl Map
	s := impl.Init()
	s, _ = impl.Do(Op{Kind: Put, K: "x", V: 1}, s, 1)
	s, _ = impl.Do(Op{Kind: Put, K: "y", V: 2}, s, 2)
	s, _ = impl.Do(Op{Kind: Put, K: "x", V: 3}, s, 3)
	_, v := impl.Do(Op{Kind: Get, K: "x"}, s, 4)
	if !v.Found || v.V != 3 {
		t.Fatalf("get x = %+v", v)
	}
	_, v = impl.Do(Op{Kind: Get, K: "z"}, s, 5)
	if v.Found {
		t.Fatal("get of unbound key must not be found")
	}
	_, v = impl.Do(Op{Kind: Keys}, s, 6)
	if !slices.Equal(v.Ks, []string{"x", "y"}) {
		t.Fatalf("keys = %v", v.Ks)
	}
}

func TestMapDoIsPersistent(t *testing.T) {
	var impl Map
	s1, _ := impl.Do(Op{Kind: Put, K: "a", V: 1}, impl.Init(), 1)
	s2, _ := impl.Do(Op{Kind: Put, K: "a", V: 2}, s1, 2)
	if s1[0].V != 1 || s2[0].V != 2 {
		t.Fatal("Put must copy, not mutate")
	}
}

func TestMergePerKeyLWW(t *testing.T) {
	var impl Map
	lca := State{{K: "k", T: 1, V: 10}}
	a := State{{K: "k", T: 5, V: 50}, {K: "onlyA", T: 2, V: 1}}
	b := State{{K: "k", T: 3, V: 30}, {K: "onlyB", T: 4, V: 2}}
	m := impl.Merge(lca, a, b)
	want := State{{K: "k", T: 5, V: 50}, {K: "onlyA", T: 2, V: 1}, {K: "onlyB", T: 4, V: 2}}
	if !slices.Equal(m, want) {
		t.Fatalf("merge = %+v, want %+v", m, want)
	}
	// Symmetric outcome.
	if !slices.Equal(impl.Merge(lca, b, a), want) {
		t.Fatal("merge must be symmetric")
	}
}

func TestMergeKeysNeverDisappear(t *testing.T) {
	var impl Map
	lca := State{{K: "k", T: 1, V: 10}}
	a := lca
	b := lca
	m := impl.Merge(lca, a, b)
	if len(m) != 1 || m[0] != lca[0] {
		t.Fatalf("idle merge = %+v", m)
	}
}

func TestSpecAndRsim(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	p1 := h.Append(Op{Kind: Put, K: "a", V: 1}, Val{}, 1, nil)
	p2 := h.Append(Op{Kind: Put, K: "a", V: 2}, Val{}, 2, nil) // concurrent, later
	p3 := h.Append(Op{Kind: Put, K: "b", V: 7}, Val{}, 3, []core.EventID{p1})
	abs := core.StateOf(h, []core.EventID{p1, p2, p3})
	if v := Spec(Op{Kind: Get, K: "a"}, abs); !v.Found || v.V != 2 {
		t.Fatalf("spec get a = %+v, want 2 (LWW)", v)
	}
	if v := Spec(Op{Kind: Keys}, abs); !slices.Equal(v.Ks, []string{"a", "b"}) {
		t.Fatalf("spec keys = %v", v.Ks)
	}
	good := State{{K: "a", T: 2, V: 2}, {K: "b", T: 3, V: 7}}
	if !Rsim(abs, good) {
		t.Fatal("Rsim must accept the faithful state")
	}
	if Rsim(abs, State{{K: "a", T: 1, V: 1}, {K: "b", T: 3, V: 7}}) {
		t.Fatal("Rsim must reject a stale binding")
	}
	if Rsim(abs, State{{K: "b", T: 3, V: 7}, {K: "a", T: 2, V: 2}}) {
		t.Fatal("Rsim must reject unsorted states")
	}
	if Rsim(abs, good[:1]) {
		t.Fatal("Rsim must reject missing keys")
	}
}

func TestValEq(t *testing.T) {
	if !ValEq(Val{V: 1, Found: true}, Val{V: 1, Found: true}) {
		t.Fatal("equal")
	}
	if ValEq(Val{Ks: []string{"a"}}, Val{Ks: []string{"b"}}) {
		t.Fatal("different key lists")
	}
}
