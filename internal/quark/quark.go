// Package quark reimplements the merge strategy of Kaki et al. (OOPSLA
// 2019, "Mergeable Replicated Data Types") — the paper's baseline, called
// Quark in §7.2. Quark derives merges automatically from a relational
// (set-based) representation of the data type: at every merge the concrete
// states are *reified* into their characteristic relations, the relations
// are merged set-wise with
//
//	merged = (R_lca ∩ R_a ∩ R_b) ∪ (R_a − R_lca) ∪ (R_b − R_lca)
//
// and the result is *concretized* back into the data type's representation.
//
// For a queue the characteristic relations are membership (unary) and
// ordering (binary); the ordering relation of an n-element queue has n²
// entries, which is what makes Quark's queue merge quadratic (Figure 12).
// For an OR-set the automatic derivation cannot express "drop duplicate
// elements, keeping the newest id", so duplicates accumulate (Figure 13).
package quark

import (
	"sort"

	"repro/internal/core"
	"repro/internal/orset"
	"repro/internal/queue"
)

// MergeQueue is Quark's queue merge: reify each version into membership
// and ordering relations, merge the relations set-wise, and concretize by
// topologically sorting the merged membership under the merged ordering
// (ties — concurrent enqueues never ordered by either branch — broken by
// timestamp). Time and space are Θ(n²) in the queue length, versus the
// linear merge of internal/queue.
func MergeQueue(lca, a, b []queue.Pair) []queue.Pair {
	in := newInterner()
	memL, ordL := reify(in, lca)
	memA, ordA := reify(in, a)
	memB, ordB := reify(in, b)

	mem := mergeRelation(memL, memA, memB)
	ord := mergeRelation(ordL, ordA, ordB)

	return concretize(in, mem, ord)
}

// interner maps queue elements to dense ids so that relation entries are
// single machine words.
type interner struct {
	ids   map[queue.Pair]int32
	pairs []queue.Pair
}

func newInterner() *interner {
	return &interner{ids: make(map[queue.Pair]int32)}
}

func (in *interner) id(p queue.Pair) int32 {
	if id, ok := in.ids[p]; ok {
		return id
	}
	id := int32(len(in.pairs))
	in.ids[p] = id
	in.pairs = append(in.pairs, p)
	return id
}

// relation is a set of entries; unary entries use the element id, binary
// entries pack two ids.
type relation map[int64]struct{}

func pack(x, y int32) int64 { return int64(x)<<32 | int64(uint32(y)) }

func unpack(e int64) (int32, int32) { return int32(e >> 32), int32(uint32(e)) }

// reify computes a queue version's characteristic relations: membership
// R_mem = {x | x ∈ q} and ordering R_ob = {(x, y) | x before y in q} — the
// n² reification that §7.2.1 measures.
func reify(in *interner, q []queue.Pair) (mem, ord relation) {
	mem = make(relation, len(q))
	ord = make(relation, len(q)*len(q)/2)
	ids := make([]int32, len(q))
	for i, p := range q {
		ids[i] = in.id(p)
		mem[int64(ids[i])] = struct{}{}
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			ord[pack(ids[i], ids[j])] = struct{}{}
		}
	}
	return mem, ord
}

// mergeRelation applies Quark's set-wise merge formula.
func mergeRelation(l, a, b relation) relation {
	out := make(relation, len(a)+len(b))
	for e := range a {
		if _, inL := l[e]; !inL { // a − l
			out[e] = struct{}{}
			continue
		}
		if _, inB := b[e]; inB { // l ∩ a ∩ b
			out[e] = struct{}{}
		}
	}
	for e := range b {
		if _, inL := l[e]; !inL { // b − l
			out[e] = struct{}{}
		}
	}
	return out
}

// concretize rebuilds a queue from the merged relations: a topological
// sort of the members under the merged ordering, breaking ties between
// unordered (concurrently enqueued) elements by enqueue timestamp.
func concretize(in *interner, mem, ord relation) []queue.Pair {
	members := make([]int32, 0, len(mem))
	for e := range mem {
		members = append(members, int32(e))
	}
	indeg := make(map[int32]int, len(members))
	succs := make(map[int32][]int32, len(members))
	for _, m := range members {
		indeg[m] = 0
	}
	for e := range ord {
		x, y := unpack(e)
		if _, okX := indeg[x]; !okX {
			continue // ordering entry about a dropped (dequeued) element
		}
		if _, okY := indeg[y]; !okY {
			continue
		}
		succs[x] = append(succs[x], y)
		indeg[y]++
	}
	// Kahn's algorithm with a timestamp-ordered frontier for determinism.
	frontier := make([]int32, 0, len(members))
	for _, m := range members {
		if indeg[m] == 0 {
			frontier = append(frontier, m)
		}
	}
	out := make([]queue.Pair, 0, len(members))
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool {
			return in.pairs[frontier[i]].T < in.pairs[frontier[j]].T
		})
		next := frontier[0]
		frontier = frontier[1:]
		out = append(out, in.pairs[next])
		for _, s := range succs[next] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	return out
}

// Queue is the Quark queue as an MRDT: the same two-list functional queue
// as internal/queue (identical operations and costs), differing only in
// the merge, which goes through relational reification.
type Queue struct{ queue.Queue }

var _ core.MRDT[queue.State, queue.Op, queue.Val] = Queue{}

// Merge reifies, merges relations, and concretizes.
func (Queue) Merge(lca, a, b queue.State) queue.State {
	return queue.FromSlice(MergeQueue(lca.ToSlice(), a.ToSlice(), b.ToSlice()))
}

// OrSet is the Quark OR-set: because the merge is derived automatically
// from the membership relation over (element, id) pairs, a re-added
// element keeps accumulating pairs — the duplicates that Figure 13 counts.
// Operationally it behaves like the unoptimized OR-set of §2.1.1, with the
// merge routed through the relational machinery.
type OrSet struct{ orset.OrSet }

var _ core.MRDT[orset.State, orset.Op, orset.Val] = OrSet{}

// Merge reifies each version into its membership relation, merges
// set-wise, and concretizes into the sorted-pairs representation.
func (OrSet) Merge(lca, a, b orset.State) orset.State {
	in := newInterner()
	memOf := func(s orset.State) relation {
		r := make(relation, len(s))
		for _, p := range s {
			r[int64(in.id(queue.Pair{T: p.T, V: p.E}))] = struct{}{}
		}
		return r
	}
	merged := mergeRelation(memOf(lca), memOf(a), memOf(b))
	out := make(orset.State, 0, len(merged))
	for e := range merged {
		p := in.pairs[int32(e)]
		out = append(out, orset.Pair{E: p.V, T: p.T})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].E != out[j].E {
			return out[i].E < out[j].E
		}
		return out[i].T < out[j].T
	})
	return out
}
