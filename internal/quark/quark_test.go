package quark_test

import (
	"testing"

	"repro/internal/bench"

	"repro/internal/core"
	"repro/internal/orset"
	"repro/internal/quark"
	"repro/internal/queue"
	"repro/internal/sim"
)

func pairs(ts ...int64) []queue.Pair {
	out := make([]queue.Pair, len(ts))
	for i, t := range ts {
		out[i] = queue.Pair{T: core.Timestamp(t), V: t}
	}
	return out
}

func TestQuarkQueueMergeMatchesPaperExample(t *testing.T) {
	// Figure 11's merge, through the relational path: LCA [1..5],
	// A = [3,4,5] ++ [8,9] (two dequeues, enq 8, 9),
	// B = [2,3,4,5] ++ [6,7] (one dequeue, enq 6, 7).
	lca := pairs(1, 2, 3, 4, 5)
	a := pairs(2, 3, 4, 5, 8, 9)
	b := pairs(3, 4, 5, 6, 7)
	got := quark.MergeQueue(lca, a, b)
	want := pairs(3, 4, 5, 6, 7, 8, 9)
	if len(got) != len(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestQuarkQueueMergeAgreesWithPeepul(t *testing.T) {
	// On any divergence pattern built from the LTS, the Quark merge must
	// produce the same queue as the Peepul linear merge — they implement
	// the same conflict-resolution policy at wildly different cost.
	h := &sim.Harness[queue.State, queue.Op, queue.Val]{
		Name:  "quark-queue",
		Impl:  quark.Queue{},
		Spec:  queue.Spec,
		Rsim:  queue.Rsim,
		ValEq: queue.ValEq,
		Ops: []queue.Op{
			{Kind: queue.Enqueue, V: 1},
			{Kind: queue.Enqueue, V: 2},
			{Kind: queue.Dequeue},
		},
		Probes: []queue.Op{{Kind: queue.Dequeue}},
	}
	cfg := sim.Config{
		MaxBranches:      2,
		MaxSteps:         4,
		RandomExecutions: 60,
		RandomSteps:      14,
		RandomBranches:   3,
		Seed:             11,
	}
	if rep := h.Certify(cfg); rep.Err != nil {
		t.Fatalf("Quark queue fails the queue obligations: %v", rep.Err)
	}
}

func TestQuarkQueueEmptyAndDisjoint(t *testing.T) {
	if got := quark.MergeQueue(nil, nil, nil); len(got) != 0 {
		t.Fatalf("empty merge = %v", got)
	}
	// Disjoint new suffixes with empty LCA interleave by timestamp.
	got := quark.MergeQueue(nil, pairs(1, 4), pairs(2, 3))
	want := pairs(1, 2, 3, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func TestQuarkOrSetKeepsDuplicates(t *testing.T) {
	// The same element added on both branches under different ids survives
	// twice — Quark's derived merge cannot deduplicate (§7.2.1).
	var impl quark.OrSet
	lca := orset.State{}
	a, _ := impl.Do(orset.Op{Kind: orset.Add, E: 7}, lca, 1)
	b, _ := impl.Do(orset.Op{Kind: orset.Add, E: 7}, lca, 2)
	merged := impl.Merge(lca, a, b)
	if len(merged) != 2 {
		t.Fatalf("merged = %v, want two (7, ·) pairs", merged)
	}
	if merged[0].E != 7 || merged[1].E != 7 {
		t.Fatalf("merged = %v", merged)
	}
}

func TestQuarkOrSetSatisfiesORSetSpec(t *testing.T) {
	// Duplicates are wasteful, not wrong: the Quark OR-set still meets the
	// add-wins specification with the unoptimized simulation relation.
	h := &sim.Harness[orset.State, orset.Op, orset.Val]{
		Name:  "quark-or-set",
		Impl:  quark.OrSet{},
		Spec:  orset.Spec,
		Rsim:  orset.Rsim,
		ValEq: orset.ValEq,
		Ops: []orset.Op{
			{Kind: orset.Read},
			{Kind: orset.Add, E: 1},
			{Kind: orset.Add, E: 2},
			{Kind: orset.Remove, E: 1},
		},
		Probes: []orset.Op{{Kind: orset.Read}},
	}
	cfg := sim.Config{
		MaxBranches:      2,
		MaxSteps:         4,
		RandomExecutions: 80,
		RandomSteps:      16,
		RandomBranches:   3,
		Seed:             5,
	}
	if rep := h.Certify(cfg); rep.Err != nil {
		t.Fatalf("Quark OR-set violates the OR-set spec: %v", rep.Err)
	}
}

func TestQuarkQueueConcurrentDequeueAtLeastOnce(t *testing.T) {
	// Both branches dequeue the same element; after the Quark merge it is
	// gone (dequeue wins), matching the at-least-once semantics.
	lca := pairs(1, 2, 3)
	a := pairs(2, 3) // dequeued 1
	b := pairs(2, 3) // dequeued 1 concurrently
	got := quark.MergeQueue(lca, a, b)
	want := pairs(2, 3)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("merge = %v, want %v", got, want)
	}
}

// TestQuarkPeepulMergeEquivalenceQuick drives randomized diverging queue
// workloads and asserts the two merge strategies — linear three-pointer vs
// relational reification — produce identical queues: they implement the
// same conflict-resolution policy at different costs, which is the premise
// of Figure 12's comparison.
func TestQuarkPeepulMergeEquivalenceQuick(t *testing.T) {
	var peepul queue.Queue
	var qk quark.Queue
	for seed := int64(0); seed < 40; seed++ {
		lca, a, b := bench.QueueWorkload(120, seed)
		pm := peepul.Merge(lca, a, b).ToSlice()
		qm := qk.Merge(lca, a, b).ToSlice()
		if len(pm) != len(qm) {
			t.Fatalf("seed %d: lengths differ: %d vs %d", seed, len(pm), len(qm))
		}
		for i := range pm {
			if pm[i] != qm[i] {
				t.Fatalf("seed %d: element %d differs: %v vs %v", seed, i, pm[i], qm[i])
			}
		}
	}
}

// TestQuarkOrSetMergeMatchesPlain checks the relationally derived OR-set
// merge coincides with the hand-written unoptimized merge of Figure 1 on
// random workloads.
func TestQuarkOrSetMergeMatchesPlain(t *testing.T) {
	var qk quark.OrSet
	var plain orset.OrSet
	for seed := int64(0); seed < 40; seed++ {
		lca, a, b := bench.OrSetMergeWorkload[orset.State](plain, 150, 25, seed)
		qm := qk.Merge(lca, a, b)
		pm := plain.Merge(lca, a, b)
		if len(qm) != len(pm) {
			t.Fatalf("seed %d: sizes differ: %d vs %d", seed, len(qm), len(pm))
		}
		for i := range qm {
			if qm[i] != pm[i] {
				t.Fatalf("seed %d: pair %d differs: %v vs %v", seed, i, qm[i], pm[i])
			}
		}
	}
}
