package store

// Reference implementations of the DAG queries, retained from before the
// generation-guided rewrite (lca.go, walk.go). They materialize full
// ancestor sets — O(history) per query — and serve as the executable
// specification: the randomized-DAG property tests
// (lca_property_test.go) require the fast walks to agree with these on
// every seed. GC keeps using ancestors() directly, where the full
// reachability set is the point of the computation.

// ancestors returns the set of commits reachable from h, including h.
func (s *Store[S, Op, Val]) ancestors(h Hash) map[Hash]bool {
	seen := map[Hash]bool{h: true}
	stack := []Hash{h}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range s.commitAtLocked(cur).Parents {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// refLCA is the reference counterpart of lca: identical fold over the
// reference candidate set. Content addressing makes its virtual base
// commits bit-identical to the fast implementation's.
func (s *Store[S, Op, Val]) refLCA(a, b Hash) (Hash, error) {
	return s.foldBases(s.refMaximalCommonAncestors(a, b), s.refLCA)
}

// refMaximalCommonAncestors is the full-ancestor-set merge-base search:
// intersect the two ancestor sets, then discard candidates dominated by
// a higher-generation candidate.
func (s *Store[S, Op, Val]) refMaximalCommonAncestors(a, b Hash) []Hash {
	aAnc := s.ancestors(a)
	bAnc := s.ancestors(b)
	var common []Hash
	for h := range aAnc {
		if bAnc[h] {
			common = append(common, h)
		}
	}
	// A common ancestor is maximal if no *other* common ancestor descends
	// from it. Sort candidates by generation descending and sweep: anything
	// reachable from an already-kept candidate is dominated.
	inCommon := make(map[Hash]bool, len(common))
	for _, h := range common {
		inCommon[h] = true
	}
	var maximal []Hash
	dominated := make(map[Hash]bool)
	// Process highest generation first.
	for len(common) > 1 {
		best := -1
		var bestH Hash
		for _, h := range common {
			if g := s.commitAtLocked(h).Gen; g > best {
				best, bestH = g, h
			}
		}
		next := common[:0]
		for _, h := range common {
			if h != bestH {
				next = append(next, h)
			}
		}
		common = next
		if dominated[bestH] {
			continue
		}
		maximal = append(maximal, bestH)
		for h := range s.ancestors(bestH) {
			if h != bestH && inCommon[h] {
				dominated[h] = true
			}
		}
	}
	for _, h := range common {
		if !dominated[h] {
			maximal = append(maximal, h)
		}
	}
	return maximal
}

// refExclusiveOps is the full-set counterpart of exclusiveOps: set
// difference over materialized ancestor sets, operation commits only.
func (s *Store[S, Op, Val]) refExclusiveOps(a, b Hash) (aOps, bOps []Hash) {
	aAnc, bAnc := s.ancestors(a), s.ancestors(b)
	for h := range aAnc {
		if !bAnc[h] && len(s.commitAtLocked(h).Parents) == 1 {
			aOps = append(aOps, h)
		}
	}
	for h := range bAnc {
		if !aAnc[h] && len(s.commitAtLocked(h).Parents) == 1 {
			bOps = append(bOps, h)
		}
	}
	return aOps, bOps
}
