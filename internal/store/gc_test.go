package store_test

import (
	"errors"
	"testing"

	"repro/internal/counter"
	"repro/internal/store"
)

func TestGCKeepsReachableHistory(t *testing.T) {
	s := counterStore()
	for i := 0; i < 10; i++ {
		inc(t, s, "main", 1)
	}
	before := s.NumCommits()
	if got := s.GC(); got != 0 {
		t.Fatalf("GC collected %d commits while all are reachable", got)
	}
	if s.NumCommits() != before {
		t.Fatal("GC changed the live commit count")
	}
	v, _ := s.Head("main")
	if v != 10 {
		t.Fatalf("state after GC = %d", v)
	}
}

func TestGCCollectsDeletedBranchHistory(t *testing.T) {
	s := counterStore()
	inc(t, s, "main", 1)
	if err := s.Fork("main", "scratch"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		inc(t, s, "scratch", 1)
	}
	if err := s.DeleteBranch("scratch"); err != nil {
		t.Fatal(err)
	}
	collected := s.GC()
	if collected != 20 {
		t.Fatalf("GC collected %d commits, want scratch's 20", collected)
	}
	// main still works, including new merges.
	if err := s.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}
	inc(t, s, "main", 1)
	inc(t, s, "dev", 1)
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Head("main")
	if v != 3 {
		t.Fatalf("post-GC merge = %d, want 3", v)
	}
}

func TestGCPreservesMergeBases(t *testing.T) {
	// Diverged branches must keep their future merge base across a GC.
	s := counterStore()
	inc(t, s, "main", 1)
	if err := s.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}
	inc(t, s, "main", 2)
	inc(t, s, "dev", 4)
	s.GC()
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatalf("merge after GC: %v", err)
	}
	v, _ := s.Head("main")
	if v != 7 {
		t.Fatalf("merge after GC = %d, want 7", v)
	}
}

func TestDeleteBranchErrors(t *testing.T) {
	s := counterStore()
	if err := s.DeleteBranch("ghost"); !errors.Is(err, store.ErrNoBranch) {
		t.Fatalf("DeleteBranch ghost: %v", err)
	}
	if err := s.DeleteBranch("main"); !errors.Is(err, store.ErrLastBranch) {
		t.Fatalf("DeleteBranch last: %v", err)
	}
	if err := s.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteBranch("dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Head("dev"); !errors.Is(err, store.ErrNoBranch) {
		t.Fatal("deleted branch still resolves")
	}
	_ = counter.Op{}
}
