package store

// Persistence: the store's durability seam. A store constructed with
// WithPersister reports every durable mutation — new commits, new pack
// objects, branch-head moves, branch deletions, replica-id allocation —
// to a Persister as it happens, in an order that keeps any prefix of the
// record stream self-consistent (an object precedes the commit that pins
// it, a commit precedes the branch record that points at it). GC hands
// the persister the complete live state instead, so the persister can
// rewrite its log to exactly the survivors (compaction).
//
// The concrete persister is internal/disk's segmented pack log; the
// interface lives here so the store stays free of file-format concerns
// and tests can substitute an in-memory recorder.

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
)

// ObjectRecord is the persisted form of one pack object: the stored
// bytes (snapshot or patch), the chain base for patches, and the
// recorded full size and chain depth, exactly as pack.go keeps them.
//
// A checkpoint-recovered record may carry its stored bytes lazily: Data
// is nil, Stored records the on-disk length, and Load fetches (and
// CRC-verifies) the bytes from the durable log on first use. The store
// installs such records as lazy pack objects, so opening a deep history
// costs the index, not the state bytes.
type ObjectRecord struct {
	Data  []byte
	Base  Hash
	Delta bool
	Size  int
	Depth int
	// Stored is the stored-byte length when Data is nil (lazy); ignored
	// (recomputed from Data) otherwise.
	Stored int
	// Load fetches the stored bytes from the durable log; nil when Data
	// is resident. Implementations must verify integrity (the disk log
	// re-checks the record's CRC) and must stay callable until the store
	// compacts — compaction forces every live object resident first.
	Load func() ([]byte, error)
}

// BranchRecord is the persisted form of one branch: its head commit and
// the state of its Lamport clock (replica id plus counter), enough to
// resume issuing unique, monotonic timestamps after a restart.
type BranchRecord struct {
	Head    Hash
	Replica int
	Clock   int64
}

// RecoveredState is a store's durable contents in persister-neutral
// form: what a Persister replays from its log on open, and what GC hands
// to Compact. Maps may be shared with the store on the Compact path;
// persisters must not mutate them.
type RecoveredState struct {
	Commits  map[Hash]Commit
	Objects  map[Hash]ObjectRecord
	Branches map[string]BranchRecord
	NextID   int
	// Frozen, when non-nil, is the checkpoint's index in serialized form
	// (frozen.go): Commits and Objects then hold only the replayed suffix
	// — records appended after the checkpoint, which shadow the frozen
	// sections. Compact never receives a frozen index; the store
	// dissolves it before compacting.
	Frozen *FrozenIndex
}

// Persister receives every durable mutation of a store. Append* calls
// happen under the store's write lock and may buffer; Flush is called
// once at the end of each mutating store operation and must make the
// batch durable to the persister's configured degree (its fsync policy).
// A Persister error makes the store fail-stop: the error is surfaced
// from the current (or next) mutating call and every later mutation
// keeps failing, so a replica can never silently run ahead of its log.
type Persister interface {
	AppendCommit(h Hash, c Commit) error
	AppendObject(h Hash, o ObjectRecord) error
	AppendBranch(name string, b BranchRecord) error
	AppendBranchDelete(name string) error
	AppendNextID(id int) error
	// Compact replaces the persisted contents with exactly rs — the
	// store's live state after a GC sweep.
	Compact(rs *RecoveredState) error
	Flush() error
}

// persistCommitLocked reports a freshly stored commit.
func (s *Store[S, Op, Val]) persistCommitLocked(h Hash, c Commit) {
	if p := s.opts.Persister; p != nil && s.persistErr == nil {
		if err := p.AppendCommit(h, c); err != nil {
			s.persistErr = err
		}
	}
}

// persistObjectLocked reports a freshly stored pack object.
func (s *Store[S, Op, Val]) persistObjectLocked(h Hash, o *packObject) {
	if p := s.opts.Persister; p != nil && s.persistErr == nil {
		err := p.AppendObject(h, ObjectRecord{
			Data: o.data, Base: o.base, Delta: o.delta, Size: o.size, Depth: o.depth, Stored: o.stored,
		})
		if err != nil {
			s.persistErr = err
		}
	}
}

// persistBranchLocked reports branch b's current head and clock.
func (s *Store[S, Op, Val]) persistBranchLocked(b string) {
	p := s.opts.Persister
	if p == nil || s.persistErr != nil {
		return
	}
	c := s.clocks[b]
	err := p.AppendBranch(b, BranchRecord{Head: s.heads[b], Replica: c.Replica(), Clock: c.Now()})
	if err != nil {
		s.persistErr = err
	}
}

// persistNextIDLocked reports the replica-id allocator's position.
func (s *Store[S, Op, Val]) persistNextIDLocked() {
	if p := s.opts.Persister; p != nil && s.persistErr == nil {
		if err := p.AppendNextID(s.nextID); err != nil {
			s.persistErr = err
		}
	}
}

// finishPersistLocked ends one mutating operation: flush the persister's
// batch and surface the sticky error, if any. Mutations on a store
// without a persister pay a nil check and nothing else.
func (s *Store[S, Op, Val]) finishPersistLocked() error {
	p := s.opts.Persister
	if p == nil {
		return nil
	}
	if s.persistErr == nil {
		if err := p.Flush(); err != nil {
			s.persistErr = err
		}
	}
	if s.persistErr != nil {
		return fmt.Errorf("store: persistence failed: %w", s.persistErr)
	}
	return nil
}

// FlushStorage flushes any buffered persistence and reports the sticky
// persistence error, if one has occurred. It is a no-op without a
// persister. Node shutdown calls it so a close cannot mask a disk
// failure.
func (s *Store[S, Op, Val]) FlushStorage() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finishPersistLocked()
}

// OpenRecovered constructs a store from a persister's replayed state.
// A nil or branchless rs builds a fresh store exactly like NewAt —
// writing the initial records through the persister, when one is
// configured — so callers need not special-case first open.
//
// A non-empty rs is installed and then validated: every branch head must
// resolve, every reachable commit's parents and state object must be
// present, and the generation invariant must hold — an O(commit index)
// walk that never touches state bytes. State objects install lazily:
// records carrying a Load hook keep their bytes on disk until first
// read, and nothing is decoded at open. With WithVerifyOnOpen(true),
// VerifyPack additionally reassembles and decodes every retained object
// before the store is handed out (the pre-lazy behaviour — crash tests
// and tools use it to fail at open instead of first read). When
// recovering, replicaBase only acts as a floor for the replica-id
// allocator — recovered branches keep the ids they were created with.
func OpenRecovered[S, Op, Val any](impl core.MRDT[S, Op, Val], codec Codec[S], main string, replicaBase int, rs *RecoveredState, opts ...Option) (*Store[S, Op, Val], error) {
	o := DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	nc, no := 0, 0
	if rs != nil {
		nc, no = len(rs.Commits), len(rs.Objects)
	}
	s := &Store[S, Op, Val]{
		impl:    impl,
		codec:   codec,
		opts:    o,
		objects: make(map[Hash]*packObject, no+1),
		cache:   newStateCache[S](o.StateCacheSize),
		commits: make(map[Hash]Commit, nc+1),
		heads:   make(map[string]Hash),
		clocks:  make(map[string]*clock.Clock),
		metrics: newStoreMetrics(o.Obs),
	}
	if rs == nil || len(rs.Branches) == 0 {
		// Fresh start — possibly over a log whose branch records were
		// truncated away. Respect a recovered allocator floor so new
		// branch clocks never reuse replica ids that orphaned records
		// already spent.
		s.nextID = replicaBase
		if rs != nil && rs.NextID > s.nextID {
			s.nextID = rs.NextID
		}
		init := impl.Init()
		st := s.putState(init, Hash{})
		root := s.putCommit(Commit{State: st, Gen: 1})
		s.heads[main] = root
		c, err := clock.New(s.nextID)
		if err != nil {
			return nil, err
		}
		s.clocks[main] = c
		s.nextID++
		s.persistBranchLocked(main)
		s.persistNextIDLocked()
		if err := s.finishPersistLocked(); err != nil {
			return nil, err
		}
		return s, nil
	}

	// With a frozen index, nothing decodes per entry at open: commits and
	// objects alike resolve by binary search over the index's raw
	// sections, and only the replayed suffix lands in the maps (skipping
	// hashes the index already holds, keeping map and index disjoint so
	// counts stay exact). Open time is O(suffix), flat in history.
	s.frozen = rs.Frozen
	for h, c := range rs.Commits {
		if s.frozen != nil && s.frozen.HasCommit(h) {
			continue
		}
		s.commits[h] = Commit{
			Parents: append([]Hash(nil), c.Parents...),
			State:   c.State,
			Gen:     c.Gen,
			Time:    c.Time,
		}
	}
	for h, or := range rs.Objects {
		obj := &packObject{
			data: or.Data, base: or.Base, delta: or.Delta, size: or.Size, depth: or.Depth,
			stored: len(or.Data), load: or.Load,
		}
		if or.Data == nil && or.Load != nil {
			obj.stored = or.Stored
		}
		s.objects[h] = obj
	}
	maxReplica := -1
	for name, b := range rs.Branches {
		c, err := clock.New(b.Replica)
		if err != nil {
			return nil, fmt.Errorf("store: recovered branch %q: %w", name, err)
		}
		c.Observe(clock.Pack(b.Clock, 0))
		s.heads[name] = b.Head
		s.clocks[name] = c
		if b.Replica > maxReplica {
			maxReplica = b.Replica
		}
	}
	s.nextID = max(rs.NextID, maxReplica+1, replicaBase)
	if _, ok := s.heads[main]; !ok {
		return nil, fmt.Errorf("%w: recovered state has no branch %q (log belongs to another node?)", ErrCorruptPack, main)
	}
	if rs.Frozen != nil {
		// Checkpoint recovery validates heads only: the index arrived
		// under a CRC-verified frame, every chain re-checks its content
		// address at first materialization, and the recovery ladder
		// (internal/replica) reopens with a full replay when a checkpoint
		// turns out bad — so open stays flat instead of O(history).
		if err := s.validateHeads(); err != nil {
			return nil, err
		}
	} else if err := s.validateRecovered(); err != nil {
		return nil, err
	}
	if o.VerifyOnOpen {
		if err := s.VerifyPack(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// validateRecovered checks the reachable closure of every branch head:
// commits resolve, parents and pinned state objects are present, and
// generation numbers respect Gen = 1 + max parent generation (the
// invariant the generation-guided DAG walks assume).
func (s *Store[S, Op, Val]) validateRecovered() error {
	seen := make(map[Hash]bool)
	var stack []Hash
	for b, head := range s.heads {
		if _, ok := s.commits[head]; !ok {
			return fmt.Errorf("%w: branch %s heads missing commit %v", ErrCorruptPack, b, head)
		}
		if !seen[head] {
			seen[head] = true
			stack = append(stack, head)
		}
	}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := s.commits[h]
		if !s.objExistsLocked(c.State) {
			return fmt.Errorf("%w: commit %v pins missing state %v", ErrCorruptPack, h, c.State)
		}
		wantGen := 1
		for _, p := range c.Parents {
			pc, ok := s.commits[p]
			if !ok {
				return fmt.Errorf("%w: commit %v references missing parent %v", ErrCorruptPack, h, p)
			}
			if pc.Gen >= wantGen {
				wantGen = pc.Gen + 1
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
		if c.Gen != wantGen {
			return fmt.Errorf("%w: commit %v has generation %d, want %d", ErrCorruptPack, h, c.Gen, wantGen)
		}
	}
	return nil
}

// validateHeads checks that every branch head resolves to a present
// commit pinning a present state object — the O(heads) validation
// checkpoint recoveries run in place of the full closure walk.
func (s *Store[S, Op, Val]) validateHeads() error {
	for b, head := range s.heads {
		c, ok := s.commitLocked(head)
		if !ok {
			return fmt.Errorf("%w: branch %s heads missing commit %v", ErrCorruptPack, b, head)
		}
		if !s.objExistsLocked(c.State) {
			return fmt.Errorf("%w: branch %s pins missing state %v", ErrCorruptPack, b, c.State)
		}
	}
	return nil
}

// liveStateLocked assembles the store's current durable contents for a
// persister's Compact. The maps are shared with the store; the persister
// reads them synchronously under the store's write lock. Lazily
// recovered objects are forced resident here — compaction rewrites (and
// then deletes) the segments their bytes live in, so every live object
// must be in memory before the persister starts.
func (s *Store[S, Op, Val]) liveStateLocked() (*RecoveredState, error) {
	rs := &RecoveredState{
		Commits:  s.commits,
		Objects:  make(map[Hash]ObjectRecord, len(s.objects)),
		Branches: make(map[string]BranchRecord, len(s.heads)),
		NextID:   s.nextID,
	}
	for h, o := range s.objects {
		data, err := o.bytes()
		if err != nil {
			return nil, err
		}
		rs.Objects[h] = ObjectRecord{Data: data, Base: o.base, Delta: o.delta, Size: o.size, Depth: o.depth, Stored: o.stored}
	}
	for b, head := range s.heads {
		c := s.clocks[b]
		rs.Branches[b] = BranchRecord{Head: head, Replica: c.Replica(), Clock: c.Now()}
	}
	return rs, nil
}
