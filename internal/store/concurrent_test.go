package store_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/counter"
)

// TestConcurrentReadersAndWriters exercises the store's read-parallel
// locking discipline under -race: queries (Head, HeadHash, Size,
// Branches, Frontier, Export, ExportSince, Commit, NumCommits) run on
// shared read locks while writers apply operations and merge branches.
// The assertions are deliberately weak — no reader may ever observe an
// error or a torn state; the race detector does the heavy lifting.
func TestConcurrentReadersAndWriters(t *testing.T) {
	s := counterStore()
	if err := s.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}

	const writerOps = 300
	var done atomic.Bool
	var wg sync.WaitGroup
	fail := func(err error) {
		if err != nil {
			done.Store(true)
			t.Error(err)
		}
	}

	// Writers: one per branch, plus a syncer converging them. Sync holds
	// the write lock across both pulls, so every merge is a clean diamond.
	for _, branch := range []string{"main", "dev"} {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			for i := 0; i < writerOps && !done.Load(); i++ {
				if _, err := s.Apply(b, counter.Op{Kind: counter.Inc, N: 1}); err != nil {
					fail(err)
					return
				}
			}
		}(branch)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerOps/4 && !done.Load(); i++ {
			if err := s.Sync("main", "dev"); err != nil {
				fail(err)
				return
			}
		}
	}()

	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()

	// Readers: hammer every query until the writers finish.
	readers := []func() error{
		func() error { _, err := s.Head("main"); return err },
		func() error {
			h, err := s.HeadHash("dev")
			if err != nil {
				return err
			}
			s.Commit(h)
			return nil
		},
		func() error {
			f, err := s.Frontier("main")
			if err != nil {
				return err
			}
			_, _, err = s.ExportSince("main", f.HaveSet())
			return err
		},
		func() error { _, _, err := s.Export("dev"); return err },
		func() error {
			s.Branches()
			s.NumCommits()
			_, err := s.Size("main")
			return err
		},
	}
	var rg sync.WaitGroup
	for _, read := range readers {
		rg.Add(1)
		go func(read func() error) {
			defer rg.Done()
			for {
				select {
				case <-writersDone:
					return
				default:
				}
				if err := read(); err != nil {
					fail(err)
					return
				}
			}
		}(read)
	}
	rg.Wait()
	<-writersDone

	if t.Failed() {
		return
	}
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	v, err := s.Head("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2*writerOps {
		t.Fatalf("converged value = %d, want %d (every increment exactly once)", v, 2*writerOps)
	}
}
