package store_test

import (
	"errors"
	"testing"

	"repro/internal/counter"
	"repro/internal/store"
	"repro/internal/wire"
)

func TestExportImportRoundTrip(t *testing.T) {
	src := counterStore()
	inc(t, src, "main", 1)
	inc(t, src, "main", 2)
	commits, head, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != 3 { // root + two ops
		t.Fatalf("exported %d commits, want 3", len(commits))
	}

	dst := store.NewAt[int64, counter.Op, counter.Val](
		counter.IncCounter{}, wire.IncCounter{}, "local", 64)
	if err := dst.Import("remote/main", commits, head); err != nil {
		t.Fatal(err)
	}
	v, err := dst.Head("remote/main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("imported head = %d, want 3", v)
	}
	// The tracking branch merges into local like any other branch.
	if _, err := dst.Apply("local", counter.Op{Kind: counter.Inc, N: 10}); err != nil {
		t.Fatal(err)
	}
	if err := dst.Pull("local", "remote/main"); err != nil {
		t.Fatal(err)
	}
	lv, _ := dst.Head("local")
	if lv != 13 {
		t.Fatalf("merged local = %d, want 13", lv)
	}
}

func TestImportIsIdempotent(t *testing.T) {
	src := counterStore()
	inc(t, src, "main", 5)
	commits, head, _ := src.Export("main")
	dst := store.NewAt[int64, counter.Op, counter.Val](
		counter.IncCounter{}, wire.IncCounter{}, "local", 64)
	if err := dst.Import("remote/main", commits, head); err != nil {
		t.Fatal(err)
	}
	after := dst.NumCommits()
	for i := 0; i < 3; i++ {
		if err := dst.Import("remote/main", commits, head); err != nil {
			t.Fatal(err)
		}
	}
	if got := dst.NumCommits(); got != after {
		t.Fatalf("commits after repeated import = %d, want %d (content addressing dedupes)", got, after)
	}
}

func TestImportRejectsUnknownParent(t *testing.T) {
	src := counterStore()
	inc(t, src, "main", 1)
	inc(t, src, "main", 2)
	commits, head, _ := src.Export("main")
	dst := counterStore()
	// Drop the middle commit: the final op commit now references a parent
	// the destination has never seen. (Dropping the root would not do —
	// both stores share the identical content-addressed root.)
	err := dst.Import("remote/x", append([]store.ExportedCommit{commits[0]}, commits[2:]...), head)
	if !errors.Is(err, store.ErrBadImport) {
		t.Fatalf("Import = %v, want ErrBadImport", err)
	}
}

func TestImportRejectsBogusHead(t *testing.T) {
	src := counterStore()
	inc(t, src, "main", 1)
	commits, _, _ := src.Export("main")
	dst := counterStore()
	err := dst.Import("remote/x", commits, store.Hash{0xde, 0xad})
	if !errors.Is(err, store.ErrBadImport) {
		t.Fatalf("Import = %v, want ErrBadImport", err)
	}
}

func TestImportRejectsUndecodableState(t *testing.T) {
	src := counterStore()
	inc(t, src, "main", 1)
	commits, head, _ := src.Export("main")
	commits[0].State = []byte{1, 2, 3} // not a valid counter payload
	dst := counterStore()
	err := dst.Import("remote/x", commits, head)
	if !errors.Is(err, store.ErrBadImport) {
		t.Fatalf("Import = %v, want ErrBadImport", err)
	}
}

func TestExportUnknownBranch(t *testing.T) {
	s := counterStore()
	if _, _, err := s.Export("ghost"); !errors.Is(err, store.ErrNoBranch) {
		t.Fatalf("Export = %v, want ErrNoBranch", err)
	}
}

func TestExportTopologicalOrder(t *testing.T) {
	s := counterStore()
	inc(t, s, "main", 1)
	s.Fork("main", "dev")
	inc(t, s, "main", 2)
	inc(t, s, "dev", 4)
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	commits, head, err := s.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	// Re-import into a fresh store in the given order: parents must always
	// precede children or the import fails.
	dst := store.NewAt[int64, counter.Op, counter.Val](
		counter.IncCounter{}, wire.IncCounter{}, "local", 64)
	if err := dst.Import("remote/main", commits, head); err != nil {
		t.Fatalf("topological order violated: %v", err)
	}
	v, _ := dst.Head("remote/main")
	if v != 7 {
		t.Fatalf("imported merge head = %d, want 7", v)
	}
}

// TestImportRejectsBogusGeneration pins the generation invariant at the
// trust boundary: the generation-guided DAG walks assume
// Gen = 1 + max parent generation, so Import must verify transferred
// generations rather than install whatever a peer shipped.
func TestImportRejectsBogusGeneration(t *testing.T) {
	src := counterStore()
	inc(t, src, "main", 1)
	inc(t, src, "main", 2)
	commits, head, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []int{-1, 1, -10} {
		tampered := append([]store.ExportedCommit(nil), commits...)
		tampered[len(tampered)-1].Gen += delta
		dst := store.NewAt[int64, counter.Op, counter.Val](
			counter.IncCounter{}, wire.IncCounter{}, "local", 64)
		err := dst.Import("remote/main", tampered, head)
		if !errors.Is(err, store.ErrBadImport) {
			t.Fatalf("Gen%+d: import = %v, want ErrBadImport", delta, err)
		}
	}
}

// TestExportedCommitsAreCopies is the aliasing regression test: Export
// used to hand callers the store's own object buffers (and parent
// slices), so a caller mutating an exported commit silently corrupted
// the store. Exported commits must be copies — mutate every buffer of
// one export, then check the store still reads, re-exports identically,
// and re-imports cleanly elsewhere.
func TestExportedCommitsAreCopies(t *testing.T) {
	src := counterStore()
	inc(t, src, "main", 1)
	inc(t, src, "main", 2)
	if err := src.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}
	inc(t, src, "main", 4)
	inc(t, src, "dev", 8)
	if err := src.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	wantHead, _ := src.Head("main")
	wantSize, _ := src.Size("main")

	pristine, head, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	mutated, _, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	for i := range mutated {
		for j := range mutated[i].State {
			mutated[i].State[j] ^= 0xff
		}
		for j := range mutated[i].Parents {
			mutated[i].Parents[j] = store.Hash{0xbb}
		}
	}

	// The store must be untouched by the mutation...
	if got, _ := src.Head("main"); got != wantHead {
		t.Fatalf("head changed after mutating an export: %d, want %d", got, wantHead)
	}
	if got, _ := src.Size("main"); got != wantSize {
		t.Fatalf("size changed after mutating an export: %d, want %d", got, wantSize)
	}
	again, _, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(pristine) {
		t.Fatalf("re-export has %d commits, want %d", len(again), len(pristine))
	}
	for i := range again {
		if string(again[i].State) != string(pristine[i].State) {
			t.Fatalf("re-exported commit %d state changed after caller mutation", i)
		}
		for j := range again[i].Parents {
			if again[i].Parents[j] != pristine[i].Parents[j] {
				t.Fatalf("re-exported commit %d parents changed after caller mutation", i)
			}
		}
	}
	// ...and the pristine export still imports into a fresh store.
	dst := store.NewAt[int64, counter.Op, counter.Val](
		counter.IncCounter{}, wire.IncCounter{}, "local", 64)
	if err := dst.Import("remote/main", pristine, head); err != nil {
		t.Fatalf("pristine export no longer imports: %v", err)
	}
	if v, _ := dst.Head("remote/main"); v != wantHead {
		t.Fatalf("imported head = %d, want %d", v, wantHead)
	}
}

// paddedCodec decodes like the int64 wire codec but tolerates trailing
// garbage, making non-canonical encodings representable: Decode accepts
// them, Encode never produces them.
type paddedCodec struct{ wire.IncCounter }

func (paddedCodec) Decode(b []byte) (int64, error) {
	if len(b) > 8 {
		b = b[:8]
	}
	return wire.IncCounter{}.Decode(b)
}

// TestImportRejectsNonCanonicalState: an encoded state that decodes fine
// but does not re-encode to the same bytes would give one logical state
// two content addresses (the peer's hash and the local one), forking
// identical histories forever — Import must refuse it.
func TestImportRejectsNonCanonicalState(t *testing.T) {
	src := store.New[int64, counter.Op, counter.Val](counter.IncCounter{}, paddedCodec{}, "main")
	inc(t, src, "main", 3)
	commits, head, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]store.ExportedCommit(nil), commits...)
	last := tampered[len(tampered)-1]
	last.State = append(append([]byte(nil), last.State...), 0xff)
	tampered[len(tampered)-1] = last
	dst := store.New[int64, counter.Op, counter.Val](counter.IncCounter{}, paddedCodec{}, "local")
	if err := dst.Import("remote/main", tampered, head); !errors.Is(err, store.ErrBadImport) {
		t.Fatalf("non-canonical state: import = %v, want ErrBadImport", err)
	}
	// The untampered batch still imports cleanly.
	if err := dst.Import("remote/main", commits, head); err != nil {
		t.Fatal(err)
	}
}
