package store

import (
	"encoding/binary"

	"repro/internal/core"
)

// FuncCodec adapts a plain function to the Codec interface.
type FuncCodec[S any] func(S) []byte

// Encode invokes the function.
func (f FuncCodec[S]) Encode(s S) []byte { return f(s) }

// AppendInt64 appends v to buf in big-endian order; a helper for writing
// compact codecs.
func AppendInt64(buf []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(buf, uint64(v))
}

// AppendTimestamp appends a timestamp to buf.
func AppendTimestamp(buf []byte, t core.Timestamp) []byte {
	return AppendInt64(buf, int64(t))
}

// AppendString appends a length-prefixed string to buf.
func AppendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}
