package store_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mlog"
	"repro/internal/store"
	"repro/internal/wire"
)

// GC over delta chains: deleting branches and collecting must never leave
// a surviving commit whose state cannot be materialized — a live delta
// chain may run through states only dead commits pinned, and GC has to
// re-snapshot those chain roots before the sweep. This is the randomized
// oracle test in the style of the reference-implementation property tests
// (store/reference.go): build a random DAG through the public API, delete
// most branches, GC, then verify the pack end to end and check every
// surviving head against values recorded before the collection.

func TestGCDeltaChainsRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// Tight spacing and a tiny cache make chains common and force
			// cold materialization everywhere.
			spacing := 2 + rng.Intn(7)
			s := logStore(
				store.WithSnapshotEvery(spacing),
				store.WithStateCacheSize(1+rng.Intn(3)),
			)
			branches := []string{"main"}
			nextBranch := 0

			for step := 0; step < 400; step++ {
				switch r := rng.Intn(20); {
				case r == 0 && len(branches) < 8:
					src := branches[rng.Intn(len(branches))]
					name := fmt.Sprintf("b%d", nextBranch)
					nextBranch++
					if err := s.Fork(src, name); err != nil {
						t.Fatal(err)
					}
					branches = append(branches, name)
				case r == 1 && len(branches) > 1:
					a := branches[rng.Intn(len(branches))]
					b := branches[rng.Intn(len(branches))]
					if a != b {
						if err := s.Sync(a, b); err != nil {
							t.Fatal(err)
						}
					}
				case r == 2 && len(branches) > 3:
					i := 1 + rng.Intn(len(branches)-1) // never delete main
					if err := s.DeleteBranch(branches[i]); err != nil {
						t.Fatal(err)
					}
					branches = append(branches[:i], branches[i+1:]...)
				case r == 3:
					s.GC()
				default:
					b := branches[rng.Intn(len(branches))]
					if _, err := s.Apply(b, mlog.Op{Kind: mlog.Append, Msg: fmt.Sprintf("s%d-%d", seed, step)}); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Heavy deletion: keep main and at most one other branch.
			for len(branches) > 2 {
				i := 1 + rng.Intn(len(branches)-1)
				if err := s.DeleteBranch(branches[i]); err != nil {
					t.Fatal(err)
				}
				branches = append(branches[:i], branches[i+1:]...)
			}

			want := make(map[string]int)
			for _, b := range branches {
				st, err := s.Head(b)
				if err != nil {
					t.Fatal(err)
				}
				want[b] = len(st)
			}

			s.GC()
			if err := s.VerifyPack(); err != nil {
				t.Fatalf("pack verification after GC: %v", err)
			}
			// Re-snapshotting chain roots recomputes surviving depths, so
			// the spacing bound must hold exactly after a collection too.
			if ps := s.PackStats(); ps.MaxDepth >= spacing {
				t.Fatalf("post-GC MaxDepth %d breaches SnapshotEvery %d", ps.MaxDepth, spacing)
			}
			for _, b := range branches {
				st, err := s.Head(b)
				if err != nil {
					t.Fatalf("head %s after GC: %v", b, err)
				}
				if len(st) != want[b] {
					t.Fatalf("branch %s has %d entries after GC, want %d", b, len(st), want[b])
				}
			}
			// The survivors keep merging and exporting.
			if len(branches) == 2 {
				_ = s.Sync(branches[0], branches[1])
			}
			commits, head, err := s.ExportSincePacked(branches[0], nil)
			if err != nil {
				t.Fatal(err)
			}
			dst := store.NewAt[mlog.State, mlog.Op, mlog.Val](mlog.Log{}, wire.MLog{}, "peer", 512)
			if err := dst.Import("remote", commits, head); err != nil {
				t.Fatalf("packed export after GC does not import: %v", err)
			}
			if err := dst.VerifyPack(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
