package store_test

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/store"
	"repro/internal/wire"
)

func TestFrontierShape(t *testing.T) {
	s := counterStore()
	for i := 0; i < 40; i++ {
		inc(t, s, "main", 1)
	}
	f, err := s.Frontier("main")
	if err != nil {
		t.Fatal(err)
	}
	head, _ := s.HeadHash("main")
	if f.Head != head {
		t.Fatal("frontier head must be the branch head")
	}
	headCommit, _ := s.Commit(head)
	headGen := headCommit.Gen
	if headGen != 41 { // root + 40 ops
		t.Fatalf("head gen = %d, want 41", headGen)
	}
	// The sample must be dense near the head and include power-of-two
	// distances further back, without ever containing the head itself.
	dists := make(map[int]bool)
	for _, h := range f.Have {
		if h == head {
			t.Fatal("Have must not contain the head")
		}
		c, ok := s.Commit(h)
		if !ok {
			t.Fatal("Have contains an unknown commit")
		}
		dists[headGen-c.Gen] = true
	}
	for d := 1; d <= 16; d++ {
		if !dists[d] {
			t.Fatalf("dense window misses distance %d", d)
		}
	}
	if !dists[32] {
		t.Fatal("sparse sample misses distance 32")
	}
	if dists[33] {
		t.Fatal("distance 33 is neither dense nor a power of two")
	}
}

// TestFrontierSparseTailReserved pins the budget split: when the dense
// window alone would exhaust the sample cap, part of the budget must
// still be spent on sparse power-of-two ancestors, so deep cut points
// survive in the sample.
func TestFrontierSparseTailReserved(t *testing.T) {
	s := store.New[int64, counter.Op, counter.Val](
		counter.IncCounter{}, wire.IncCounter{}, "main",
		store.WithFrontierDense(16), store.WithFrontierMaxHave(8))
	for i := 0; i < 200; i++ {
		inc(t, s, "main", 1)
	}
	f, err := s.Frontier("main")
	if err != nil {
		t.Fatal(err)
	}
	head, _ := s.HeadHash("main")
	headCommit, _ := s.Commit(head)
	dists := make(map[int]bool)
	for _, h := range f.Have {
		c, ok := s.Commit(h)
		if !ok {
			t.Fatal("Have contains an unknown commit")
		}
		dists[headCommit.Gen-c.Gen] = true
	}
	if len(f.Have) > 8 {
		t.Fatalf("sample size %d exceeds FrontierMaxHave", len(f.Have))
	}
	// 16 dense candidates compete for 6 dense slots; the reserved quarter
	// (2 slots) must still surface sparse ancestors at distances 32, 64.
	for _, d := range []int{32, 64} {
		if !dists[d] {
			t.Fatalf("sparse tail misses distance %d; sampled distances %v", d, dists)
		}
	}
	if !dists[1] {
		t.Fatal("dense window must still cover the head's immediate ancestry")
	}
}

// TestFrontierTinyBudgets pins the rounding of the sparse reservation.
// The quarter is taken rounded up — budgets of 2 and 3, where a floored
// quarter is zero, must still reserve one deep-cut slot — while a budget
// of 1 spends its only slot on the dense window.
func TestFrontierTinyBudgets(t *testing.T) {
	for _, tc := range []struct {
		maxHave               int
		wantDense, wantSparse int
	}{
		{1, 1, 0},
		{2, 1, 1},
		{3, 2, 1},
	} {
		s := store.New[int64, counter.Op, counter.Val](
			counter.IncCounter{}, wire.IncCounter{}, "main",
			store.WithFrontierDense(16), store.WithFrontierMaxHave(tc.maxHave))
		// Deep enough that dense candidates overflow any tiny budget and
		// sparse power-of-two ancestors exist (32, 64 beyond the window).
		for i := 0; i < 100; i++ {
			inc(t, s, "main", 1)
		}
		f, err := s.Frontier("main")
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Have) > tc.maxHave {
			t.Fatalf("MaxHave=%d: sample size %d exceeds budget", tc.maxHave, len(f.Have))
		}
		head, _ := s.HeadHash("main")
		headCommit, _ := s.Commit(head)
		dense, sparse := 0, 0
		for _, h := range f.Have {
			c, ok := s.Commit(h)
			if !ok {
				t.Fatal("Have contains an unknown commit")
			}
			if headCommit.Gen-c.Gen <= 16 {
				dense++
			} else {
				sparse++
			}
		}
		if dense != tc.wantDense || sparse != tc.wantSparse {
			t.Fatalf("MaxHave=%d: dense=%d sparse=%d, want dense=%d sparse=%d",
				tc.maxHave, dense, sparse, tc.wantDense, tc.wantSparse)
		}
	}
}

func TestFrontierUnknownBranch(t *testing.T) {
	s := counterStore()
	if _, err := s.Frontier("nope"); err == nil {
		t.Fatal("unknown branch must fail")
	}
	if _, _, err := s.ExportSince("nope", nil); err == nil {
		t.Fatal("unknown branch must fail")
	}
}

func TestExportSinceConvergedIsEmpty(t *testing.T) {
	s := counterStore()
	for i := 0; i < 10; i++ {
		inc(t, s, "main", 1)
	}
	head, _ := s.HeadHash("main")
	commits, h, err := s.ExportSince("main", []store.Hash{head})
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != 0 || h != head {
		t.Fatalf("cut at head must be empty, got %d commits", len(commits))
	}
}

func TestExportSinceSuffixOnly(t *testing.T) {
	s := counterStore()
	for i := 0; i < 5; i++ {
		inc(t, s, "main", 1)
	}
	mid, _ := s.HeadHash("main")
	for i := 0; i < 3; i++ {
		inc(t, s, "main", 1)
	}
	commits, _, err := s.ExportSince("main", []store.Hash{mid})
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != 3 {
		t.Fatalf("delta above mid = %d commits, want 3", len(commits))
	}
	// Unknown have hashes cut nothing and break nothing.
	commits, _, err = s.ExportSince("main", []store.Hash{{0xde, 0xad}})
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != 9 { // root + 8 ops: degenerate full export
		t.Fatalf("unknown haves must degenerate to full export, got %d", len(commits))
	}
}

// TestExportSinceGrafts is the store-level core of delta sync: ship a
// prefix, then ship only the suffix, and have Import graft it onto the
// already-present commits.
func TestExportSinceGrafts(t *testing.T) {
	src := counterStore()
	for i := 0; i < 6; i++ {
		inc(t, src, "main", 1)
	}
	dst := store.NewAt[int64, counter.Op, counter.Val](
		counter.IncCounter{}, wire.IncCounter{}, "local", 64)

	commits, head, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Import("remote/main", commits, head); err != nil {
		t.Fatal(err)
	}

	// src advances; dst advertises its frontier; only the gap ships.
	for i := 0; i < 4; i++ {
		inc(t, src, "main", 1)
	}
	f, err := dst.Frontier("remote/main")
	if err != nil {
		t.Fatal(err)
	}
	delta, newHead, err := src.ExportSince("main", f.HaveSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 4 {
		t.Fatalf("delta = %d commits, want 4", len(delta))
	}
	if err := dst.Import("remote/main", delta, newHead); err != nil {
		t.Fatal(err)
	}
	v, err := dst.Head("remote/main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Fatalf("grafted head = %d, want 10", v)
	}
	if err := dst.Pull("local", "remote/main"); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Head("local"); v != 10 {
		t.Fatalf("local after pull = %d, want 10", v)
	}
}

func TestImportEmptyDeltaMovesBranch(t *testing.T) {
	src := counterStore()
	inc(t, src, "main", 7)
	commits, head, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	dst := store.NewAt[int64, counter.Op, counter.Val](
		counter.IncCounter{}, wire.IncCounter{}, "local", 64)
	if err := dst.Import("remote/main", commits, head); err != nil {
		t.Fatal(err)
	}
	// An empty delta whose head is already known is a no-op re-point.
	if err := dst.Import("remote/main", nil, head); err != nil {
		t.Fatal(err)
	}
	// An empty delta with an unknown head still fails.
	if err := dst.Import("remote/main", nil, store.Hash{1}); err == nil {
		t.Fatal("unknown head must fail the import")
	}
}

func TestImportDanglingParentFails(t *testing.T) {
	src := counterStore()
	for i := 0; i < 5; i++ {
		inc(t, src, "main", 1)
	}
	mid, _ := src.HeadHash("main")
	inc(t, src, "main", 1)
	delta, head, err := src.ExportSince("main", []store.Hash{mid})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh store lacks the cut-point commit, so the graft must fail
	// instead of installing a dangling DAG.
	dst := store.NewAt[int64, counter.Op, counter.Val](
		counter.IncCounter{}, wire.IncCounter{}, "local", 64)
	if err := dst.Import("remote/main", delta, head); err == nil {
		t.Fatal("delta onto a store missing the cut point must fail")
	}
}
