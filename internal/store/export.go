package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/delta"
)

// ExportedCommit is one commit prepared for transfer to another store:
// the commit metadata plus the state it pins, carried either as the full
// encoding (State) or — in packed exports — as a binary patch against the
// state of the commit's first parent (Patch). Exactly one of State and
// Patch is set. Hashes are recomputed on import from the reassembled
// bytes, so a corrupted transfer cannot forge history, and the buffers
// are copies: mutating an exported commit never reaches into the store.
type ExportedCommit struct {
	Parents []Hash
	State   []byte
	// Patch is a delta (internal/delta) from the encoded state of
	// Parents[0]'s commit to this commit's encoded state. Packed exports
	// use it for every commit the receiver can provably rebase: the
	// parent is either earlier in the batch or inside the have-set the
	// export was cut at.
	Patch []byte
	Gen   int
	Time  core.Timestamp
}

// ErrBadImport is wrapped by Import failures.
var ErrBadImport = errors.New("store: bad import")

// Export returns branch b's full history — every ancestor commit of its
// head in parents-before-children order — together with the head hash.
// Feeding the result to another store's Import reproduces the history
// bit-for-bit (content addressing makes re-imported commits identical).
func (s *Store[S, Op, Val]) Export(b string) ([]ExportedCommit, Hash, error) {
	return s.export(b, nil, false)
}

// ExportSince returns the part of branch b's history a peer is missing:
// every ancestor of the head not dominated by the have-set, a set of
// commit hashes the peer is known to possess (possession of a commit
// implies possession of all its ancestors, so the walk cuts there).
// Commits come parents-before-children; any parent outside the returned
// slice is a member of the have-set, so the peer's Import grafts the
// partial DAG onto commits it already holds. Have hashes unknown locally
// are harmless: they cannot lie on any walked path. An empty have-set
// degenerates to Export.
func (s *Store[S, Op, Val]) ExportSince(b string, have []Hash) ([]ExportedCommit, Hash, error) {
	return s.export(b, have, false)
}

// ExportSincePacked is ExportSince in the packed wire form: commits whose
// stored object is a delta against their first parent's state ship that
// patch instead of a re-materialized full encoding — O(op) bytes per
// commit instead of O(state). Every patched commit's parent is provably
// available to the receiver (topological order puts it earlier in the
// batch, or it is a member of the have-set the walk was cut at), so
// Import can always reassemble. Snapshots and commits whose chain base is
// not their parent (deduplicated states) ship full.
func (s *Store[S, Op, Val]) ExportSincePacked(b string, have []Hash) ([]ExportedCommit, Hash, error) {
	return s.export(b, have, true)
}

func (s *Store[S, Op, Val]) export(b string, have []Hash, packed bool) ([]ExportedCommit, Hash, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	head, ok := s.heads[b]
	if !ok {
		return nil, Hash{}, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	var cut map[Hash]bool
	if len(have) > 0 {
		cut = make(map[Hash]bool, len(have))
		for _, h := range have {
			cut[h] = true
		}
	}
	order := s.topoOrderSince(head, cut)
	commits, err := s.exportOrderLocked(order, packed)
	return commits, head, err
}

// exportOrderLocked materializes the commits of a parents-first order
// into the wire form. Callers must hold s.mu (read or write).
func (s *Store[S, Op, Val]) exportOrderLocked(order []Hash, packed bool) ([]ExportedCommit, error) {
	out := make([]ExportedCommit, 0, len(order))
	// The walk materializes states in topological order, so the previous
	// result is almost always the next commit's chain base; carrying it
	// as a local hint keeps a full-state export O(patch) per commit even
	// when concurrent exports race the store's shared reassembly slot.
	var lastHash Hash
	var lastEnc []byte
	for _, h := range order {
		c := s.commitAtLocked(h)
		ec := ExportedCommit{
			Parents: append([]Hash(nil), c.Parents...),
			Gen:     c.Gen,
			Time:    c.Time,
		}
		obj, _ := s.objLocked(c.State)
		switch parentState, hasParent := s.parentState(c); {
		case packed && hasParent && c.State == parentState:
			// A deduplicated no-op commit pins exactly its parent's
			// state: an identity patch costs a dozen bytes where the
			// stored chain (based elsewhere) would force a full ship.
			ec.Patch = delta.Identity(obj.size)
		case packed && hasParent && obj.delta && obj.base == parentState:
			patch, err := obj.bytes()
			if err != nil {
				return nil, err
			}
			ec.Patch = append([]byte(nil), patch...)
		default:
			enc, err := s.materializeHintLocked(c.State, lastHash, lastEnc)
			if err != nil {
				return nil, err
			}
			lastHash, lastEnc = c.State, enc
			ec.State = append([]byte(nil), enc...)
		}
		out = append(out, ec)
	}
	return out, nil
}

// parentState returns the state hash of c's first parent, if any.
func (s *Store[S, Op, Val]) parentState(c Commit) (Hash, bool) {
	if len(c.Parents) == 0 {
		return Hash{}, false
	}
	return s.commitAtLocked(c.Parents[0]).State, true
}

// topoOrder returns the ancestors of head (inclusive) with every commit
// after its parents.
func (s *Store[S, Op, Val]) topoOrder(head Hash) []Hash {
	return s.topoOrderSince(head, nil)
}

// topoOrderSince is topoOrder with a cut: members of cut are neither
// emitted nor walked through, so the result is exactly the commits above
// the cut. The walk is iterative; history depth does not grow the stack.
func (s *Store[S, Op, Val]) topoOrderSince(head Hash, cut map[Hash]bool) []Hash {
	if cut[head] {
		return nil
	}
	var order []Hash
	state := make(map[Hash]int) // 0 unseen, 1 visiting, 2 done
	stack := []Hash{head}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		switch state[h] {
		case 0:
			state[h] = 1
			for _, p := range s.commitAtLocked(h).Parents {
				if state[p] == 0 && !cut[p] {
					stack = append(stack, p)
				}
			}
		case 1:
			state[h] = 2
			order = append(order, h)
			stack = stack[:len(stack)-1]
		default:
			stack = stack[:len(stack)-1] // finished via another path
		}
	}
	return order
}

// Import installs a transferred history — full or partial — and points
// branch name at its head. The branch is created if needed (tracking
// branches for remote peers); the caller is expected to merge via Pull
// afterwards. A partial history (from ExportSince) grafts onto the local
// DAG: every parent must resolve either earlier in the batch or among
// commits already present, so a dangling parent fails the import. Commit
// hashes are recomputed locally; a corrupted transfer cannot forge
// history. An empty batch is a valid delta as long as the advertised
// head is already known. States decode through the store's own codec,
// except that an encoded state whose hash is already present — re-shipped
// history a frontier sample failed to advertise — skips the decode.
//
// A commit may carry its state as a Patch against its first parent's
// state (packed exports); the parent is necessarily known — the batch is
// parents-before-children and dangling parents fail the import — so the
// patch is applied to the parent's materialized encoding and the result
// goes through the same hash/decode/canonicality verification as a full
// state. A corrupt patch therefore cannot forge state: the reassembled
// bytes hash to a state address the commit chain must be consistent with,
// and the advertised head check fails otherwise.
func (s *Store[S, Op, Val]) Import(name string, commits []ExportedCommit, head Hash) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.importLocked(name, commits, head)
}

// ImportCaptured is Import returning the hashes of the commits the
// batch freshly installed (already-present re-ships excluded), in
// installation order. The record is cut inside Import's own critical
// section, so a concurrent Apply can never leak into it — the exactness
// the reconciliation dialect's redundancy accounting and reply skip set
// depend on.
func (s *Store[S, Op, Val]) ImportCaptured(name string, commits []ExportedCommit, head Hash) ([]Hash, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tok := s.beginInstallCaptureLocked()
	err := s.importLocked(name, commits, head)
	return s.endInstallCaptureLocked(tok), err
}

func (s *Store[S, Op, Val]) importLocked(name string, commits []ExportedCommit, head Hash) error {
	for i, ec := range commits {
		// The generation-guided DAG walks (lca.go) are only correct under
		// the invariant Gen = 1 + max parent generation, so a transferred
		// generation is verified, never trusted: a peer shipping a bogus
		// one gets a rejected import instead of silently wrong merges.
		wantGen := 1
		for _, p := range ec.Parents {
			pc, known := s.commitLocked(p)
			if !known {
				return fmt.Errorf("%w: commit %d references unknown parent %v", ErrBadImport, i, p)
			}
			if pc.Gen >= wantGen {
				wantGen = pc.Gen + 1
			}
		}
		if ec.Gen != wantGen {
			return fmt.Errorf("%w: commit %d generation %d, want %d", ErrBadImport, i, ec.Gen, wantGen)
		}
		// Resolve the commit's encoded state: either shipped whole, or a
		// patch reassembled against the first parent's state.
		enc := ec.State
		var chainBase Hash
		var patch []byte
		if len(ec.Parents) > 0 {
			chainBase = s.commitAtLocked(ec.Parents[0]).State
		}
		if ec.Patch != nil {
			if ec.State != nil {
				return fmt.Errorf("%w: commit %d carries both a state and a patch", ErrBadImport, i)
			}
			if len(ec.Parents) == 0 {
				return fmt.Errorf("%w: commit %d is a patch with no parent", ErrBadImport, i)
			}
			baseEnc, err := s.materializeLocked(chainBase)
			if err != nil {
				return fmt.Errorf("%w: commit %d base: %v", ErrBadImport, i, err)
			}
			enc, err = delta.Apply(baseEnc, ec.Patch)
			if err != nil {
				return fmt.Errorf("%w: commit %d patch: %v", ErrBadImport, i, err)
			}
			patch = ec.Patch
		}
		// Content addressing lets re-imported history short-circuit: when
		// the encoded state is already present, skip the decode entirely.
		// A first-seen state must round-trip to the same bytes — accepting
		// a non-canonical encoding would give one logical state two
		// content addresses and fork identical histories forever.
		st := sha256.Sum256(enc)
		if !s.objExistsLocked(st) {
			state, err := s.codec.Decode(enc)
			if err != nil {
				return fmt.Errorf("%w: commit %d state: %v", ErrBadImport, i, err)
			}
			reenc := s.codec.Encode(state)
			if !bytes.Equal(reenc, enc) {
				return fmt.Errorf("%w: commit %d state encoding is not canonical", ErrBadImport, i)
			}
			s.cache.put(st, state)
			// The defensive copy happens only for first-seen states:
			// re-shipped known history never stores the patch at all.
			if patch != nil {
				patch = append([]byte(nil), patch...)
			}
			s.packLocked(st, reenc, chainBase, patch)
		}
		s.putCommit(Commit{Parents: append([]Hash(nil), ec.Parents...), State: st, Gen: ec.Gen, Time: ec.Time})
	}
	if !s.commitExistsLocked(head) {
		return fmt.Errorf("%w: advertised head %v not present after import", ErrBadImport, head)
	}
	if _, ok := s.heads[name]; !ok {
		if s.nextID > clock.MaxReplica {
			return fmt.Errorf("store: replica id space exhausted")
		}
		c, err := clock.New(s.nextID)
		if err != nil {
			return err
		}
		s.nextID++
		s.clocks[name] = c
		s.persistNextIDLocked()
	}
	// Tracking branches never Apply; their clock only needs to dominate
	// the imported history so merges hand out later timestamps. A delta
	// batch alone may not witness the maximum (an empty delta moves the
	// branch to an already-known head), but head commits always carry the
	// largest timestamp of their history, so observing the head covers
	// whatever arrived through other tracking branches.
	maxT := s.commitAtLocked(head).Time
	for _, ec := range commits {
		if ec.Time > maxT {
			maxT = ec.Time
		}
	}
	s.clocks[name].Observe(maxT)
	s.heads[name] = head
	s.persistBranchLocked(name)
	return s.finishPersistLocked()
}
