package store

import (
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
)

// ExportedCommit is one commit prepared for transfer to another store:
// the commit metadata plus the encoded state it pins. Hashes are
// recomputed on import, so a corrupted transfer cannot forge history.
type ExportedCommit struct {
	Parents []Hash
	State   []byte
	Gen     int
	Time    core.Timestamp
}

// ErrBadImport is wrapped by Import failures.
var ErrBadImport = errors.New("store: bad import")

// Decoder deserializes transferred states (the write half lives in Codec).
type Decoder[S any] interface {
	Decode([]byte) (S, error)
}

// Export returns branch b's full history — every ancestor commit of its
// head in parents-before-children order — together with the head hash.
// Feeding the result to another store's Import reproduces the history
// bit-for-bit (content addressing makes re-imported commits identical).
func (s *Store[S, Op, Val]) Export(b string) ([]ExportedCommit, Hash, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	head, ok := s.heads[b]
	if !ok {
		return nil, Hash{}, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	order := s.topoOrder(head)
	out := make([]ExportedCommit, 0, len(order))
	for _, h := range order {
		c := s.commits[h]
		out = append(out, ExportedCommit{
			Parents: c.Parents,
			State:   s.objects[c.State],
			Gen:     c.Gen,
			Time:    c.Time,
		})
	}
	return out, head, nil
}

// topoOrder returns the ancestors of head (inclusive) with every commit
// after its parents.
func (s *Store[S, Op, Val]) topoOrder(head Hash) []Hash {
	var order []Hash
	state := make(map[Hash]int) // 0 unseen, 1 visiting, 2 done
	var visit func(h Hash)
	visit = func(h Hash) {
		if state[h] != 0 {
			return
		}
		state[h] = 1
		for _, p := range s.commits[h].Parents {
			visit(p)
		}
		state[h] = 2
		order = append(order, h)
	}
	visit(head)
	return order
}

// Import installs a transferred history and points branch name at its
// head. The branch is created if needed (tracking branches for remote
// peers); an existing branch is moved only if the new head's history
// includes every commit the import carries consistently — the caller is
// expected to merge via Pull afterwards. Commit hashes are recomputed
// locally; a commit referencing an unknown parent fails the import.
func (s *Store[S, Op, Val]) Import(name string, commits []ExportedCommit, head Hash, dec Decoder[S]) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, ec := range commits {
		for _, p := range ec.Parents {
			if _, known := s.commits[p]; !known {
				return fmt.Errorf("%w: commit %d references unknown parent %v", ErrBadImport, i, p)
			}
		}
		state, err := dec.Decode(ec.State)
		if err != nil {
			return fmt.Errorf("%w: commit %d state: %v", ErrBadImport, i, err)
		}
		st := s.putState(state)
		s.putCommit(Commit{Parents: ec.Parents, State: st, Gen: ec.Gen, Time: ec.Time})
	}
	if _, ok := s.commits[head]; !ok {
		return fmt.Errorf("%w: advertised head %v not present after import", ErrBadImport, head)
	}
	if _, ok := s.heads[name]; !ok {
		if s.nextID > clock.MaxReplica {
			return fmt.Errorf("store: replica id space exhausted")
		}
		c, err := clock.New(s.nextID)
		if err != nil {
			return err
		}
		s.nextID++
		s.clocks[name] = c
	}
	// Tracking branches never Apply; their clock only needs to dominate
	// the imported history so merges hand out later timestamps.
	maxT := core.Timestamp(0)
	for _, ec := range commits {
		if ec.Time > maxT {
			maxT = ec.Time
		}
	}
	s.clocks[name].Observe(maxT)
	s.heads[name] = head
	return nil
}
