package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
)

// ExportedCommit is one commit prepared for transfer to another store:
// the commit metadata plus the encoded state it pins. Hashes are
// recomputed on import, so a corrupted transfer cannot forge history.
type ExportedCommit struct {
	Parents []Hash
	State   []byte
	Gen     int
	Time    core.Timestamp
}

// ErrBadImport is wrapped by Import failures.
var ErrBadImport = errors.New("store: bad import")

// Export returns branch b's full history — every ancestor commit of its
// head in parents-before-children order — together with the head hash.
// Feeding the result to another store's Import reproduces the history
// bit-for-bit (content addressing makes re-imported commits identical).
func (s *Store[S, Op, Val]) Export(b string) ([]ExportedCommit, Hash, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	head, ok := s.heads[b]
	if !ok {
		return nil, Hash{}, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	order := s.topoOrder(head)
	out := make([]ExportedCommit, 0, len(order))
	for _, h := range order {
		c := s.commits[h]
		out = append(out, ExportedCommit{
			Parents: c.Parents,
			State:   s.objects[c.State],
			Gen:     c.Gen,
			Time:    c.Time,
		})
	}
	return out, head, nil
}

// ExportSince returns the part of branch b's history a peer is missing:
// every ancestor of the head not dominated by the have-set, a set of
// commit hashes the peer is known to possess (possession of a commit
// implies possession of all its ancestors, so the walk cuts there).
// Commits come parents-before-children; any parent outside the returned
// slice is a member of the have-set, so the peer's Import grafts the
// partial DAG onto commits it already holds. Have hashes unknown locally
// are harmless: they cannot lie on any walked path. An empty have-set
// degenerates to Export.
func (s *Store[S, Op, Val]) ExportSince(b string, have []Hash) ([]ExportedCommit, Hash, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	head, ok := s.heads[b]
	if !ok {
		return nil, Hash{}, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	cut := make(map[Hash]bool, len(have))
	for _, h := range have {
		cut[h] = true
	}
	order := s.topoOrderSince(head, cut)
	out := make([]ExportedCommit, 0, len(order))
	for _, h := range order {
		c := s.commits[h]
		out = append(out, ExportedCommit{
			Parents: c.Parents,
			State:   s.objects[c.State],
			Gen:     c.Gen,
			Time:    c.Time,
		})
	}
	return out, head, nil
}

// topoOrder returns the ancestors of head (inclusive) with every commit
// after its parents.
func (s *Store[S, Op, Val]) topoOrder(head Hash) []Hash {
	return s.topoOrderSince(head, nil)
}

// topoOrderSince is topoOrder with a cut: members of cut are neither
// emitted nor walked through, so the result is exactly the commits above
// the cut. The walk is iterative; history depth does not grow the stack.
func (s *Store[S, Op, Val]) topoOrderSince(head Hash, cut map[Hash]bool) []Hash {
	if cut[head] {
		return nil
	}
	var order []Hash
	state := make(map[Hash]int) // 0 unseen, 1 visiting, 2 done
	stack := []Hash{head}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		switch state[h] {
		case 0:
			state[h] = 1
			for _, p := range s.commits[h].Parents {
				if state[p] == 0 && !cut[p] {
					stack = append(stack, p)
				}
			}
		case 1:
			state[h] = 2
			order = append(order, h)
			stack = stack[:len(stack)-1]
		default:
			stack = stack[:len(stack)-1] // finished via another path
		}
	}
	return order
}

// Import installs a transferred history — full or partial — and points
// branch name at its head. The branch is created if needed (tracking
// branches for remote peers); the caller is expected to merge via Pull
// afterwards. A partial history (from ExportSince) grafts onto the local
// DAG: every parent must resolve either earlier in the batch or among
// commits already present, so a dangling parent fails the import. Commit
// hashes are recomputed locally; a corrupted transfer cannot forge
// history. An empty batch is a valid delta as long as the advertised
// head is already known. States decode through the store's own codec,
// except that an encoded state whose hash is already present — re-shipped
// history a frontier sample failed to advertise — skips the decode.
func (s *Store[S, Op, Val]) Import(name string, commits []ExportedCommit, head Hash) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, ec := range commits {
		// The generation-guided DAG walks (lca.go) are only correct under
		// the invariant Gen = 1 + max parent generation, so a transferred
		// generation is verified, never trusted: a peer shipping a bogus
		// one gets a rejected import instead of silently wrong merges.
		wantGen := 1
		for _, p := range ec.Parents {
			pc, known := s.commits[p]
			if !known {
				return fmt.Errorf("%w: commit %d references unknown parent %v", ErrBadImport, i, p)
			}
			if pc.Gen >= wantGen {
				wantGen = pc.Gen + 1
			}
		}
		if ec.Gen != wantGen {
			return fmt.Errorf("%w: commit %d generation %d, want %d", ErrBadImport, i, ec.Gen, wantGen)
		}
		// Content addressing lets re-imported history short-circuit: when
		// the encoded state is already present, skip the decode entirely.
		// A first-seen state must round-trip to the same bytes — accepting
		// a non-canonical encoding would give one logical state two
		// content addresses and fork identical histories forever.
		st := sha256.Sum256(ec.State)
		if _, known := s.objects[st]; !known {
			state, err := s.codec.Decode(ec.State)
			if err != nil {
				return fmt.Errorf("%w: commit %d state: %v", ErrBadImport, i, err)
			}
			enc := s.codec.Encode(state)
			if !bytes.Equal(enc, ec.State) {
				return fmt.Errorf("%w: commit %d state encoding is not canonical", ErrBadImport, i)
			}
			s.objects[st] = enc
			s.states[st] = state
		}
		s.putCommit(Commit{Parents: ec.Parents, State: st, Gen: ec.Gen, Time: ec.Time})
	}
	if _, ok := s.commits[head]; !ok {
		return fmt.Errorf("%w: advertised head %v not present after import", ErrBadImport, head)
	}
	if _, ok := s.heads[name]; !ok {
		if s.nextID > clock.MaxReplica {
			return fmt.Errorf("store: replica id space exhausted")
		}
		c, err := clock.New(s.nextID)
		if err != nil {
			return err
		}
		s.nextID++
		s.clocks[name] = c
	}
	// Tracking branches never Apply; their clock only needs to dominate
	// the imported history so merges hand out later timestamps. A delta
	// batch alone may not witness the maximum (an empty delta moves the
	// branch to an already-known head), but head commits always carry the
	// largest timestamp of their history, so observing the head covers
	// whatever arrived through other tracking branches.
	maxT := s.commits[head].Time
	for _, ec := range commits {
		if ec.Time > maxT {
			maxT = ec.Time
		}
	}
	s.clocks[name].Observe(maxT)
	s.heads[name] = head
	return nil
}
