package store

// The frozen index: the store's commit-graph/multi-pack-index analogue.
//
// A durable checkpoint (internal/disk) carries the log's complete index —
// every commit and every pack object's metadata — and recovery used to
// decode it entry by entry into the store's maps, which made reopen time
// linear in history with a map-insert constant (~microseconds per commit
// on one core). A FrozenIndex keeps the checkpoint's index sections as
// raw fixed-width entry arrays instead, both sorted ascending by hash:
// commits and pack objects alike are looked up by binary search over the
// raw bytes and materialized only when a walk actually touches them. The
// store's maps overlay the index — post-recovery writes and thawed
// entries shadow it — so opening a store over a frozen index costs O(1)
// in history, the same shape Git gets from commit-graph and midx sidecars
// over its packs. The DAG walks are O(divergence), so the per-lookup
// binary search (a dozen hash compares) never multiplies against history
// depth.
//
// The raw sections alias the checkpoint record's payload, which the CRC
// frame already verified end to end; entries are never re-validated
// individually. Object bytes themselves are re-checked on load (the lazy
// loader re-reads the record's CRC) and by content address when chains
// reassemble, so a frozen entry pointing at damaged bytes fails loudly at
// first use — and the recovery ladder (internal/replica) then reopens
// with a full replay.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Fixed entry layouts. Integers are big-endian. A commit has at most two
// parents (root, operation, merge), so parent slots are inlined.
const (
	frozenCommitSize = 32 + 32 + 4 + 8 + 1 + 32 + 32 // hash state gen time np p0 p1
	frozenObjectSize = 32 + 32 + 1 + 8 + 4 + 8 + 4 + 8
	// hash base flags size depth stored seg off
)

// FrozenObject is one pack object's decoded index entry: chain metadata
// plus the (segment, offset) its record lives at in the durable log.
type FrozenObject struct {
	Base   Hash
	Delta  bool
	Size   int
	Depth  int
	Stored int
	Seg    int
	Off    int64
}

// FrozenLoader fetches (and integrity-checks) the stored bytes of the
// object addressed by h from the durable log position (seg, off).
type FrozenLoader func(h Hash, seg int, off int64) ([]byte, error)

// FrozenIndex is a checkpoint's index held in its serialized form:
// fixed-width commit and pack-object entries, each section sorted
// ascending by hash. It is immutable and safe for concurrent readers.
type FrozenIndex struct {
	commits []byte
	objects []byte
	// Loader serves lazy object loads for entries of this index; set by
	// the persister that decoded it.
	Loader FrozenLoader
}

// NewFrozenIndex wraps raw index sections. The byte slices are adopted,
// not copied, and must stay immutable; lengths must be whole multiples of
// the entry sizes.
func NewFrozenIndex(commits, objects []byte, loader FrozenLoader) (*FrozenIndex, error) {
	if len(commits)%frozenCommitSize != 0 {
		return nil, fmt.Errorf("store: frozen commit section is %d bytes, not a multiple of %d", len(commits), frozenCommitSize)
	}
	if len(objects)%frozenObjectSize != 0 {
		return nil, fmt.Errorf("store: frozen object section is %d bytes, not a multiple of %d", len(objects), frozenObjectSize)
	}
	return &FrozenIndex{commits: commits, objects: objects, Loader: loader}, nil
}

// NumCommits returns the number of commit entries.
func (x *FrozenIndex) NumCommits() int { return len(x.commits) / frozenCommitSize }

// NumObjects returns the number of object entries.
func (x *FrozenIndex) NumObjects() int { return len(x.objects) / frozenObjectSize }

// CommitAt decodes commit entry i.
func (x *FrozenIndex) CommitAt(i int) (Hash, Commit) {
	e := x.commits[i*frozenCommitSize : (i+1)*frozenCommitSize]
	var h Hash
	copy(h[:], e[:32])
	var c Commit
	copy(c.State[:], e[32:64])
	c.Gen = int(binary.BigEndian.Uint32(e[64:68]))
	c.Time = core.Timestamp(int64(binary.BigEndian.Uint64(e[68:76])))
	if np := int(e[76]); np > 0 {
		c.Parents = make([]Hash, np)
		copy(c.Parents[0][:], e[77:109])
		if np > 1 {
			copy(c.Parents[1][:], e[109:141])
		}
	}
	return h, c
}

// RawCommit returns commit entry i's raw bytes (for re-emitting the entry
// into a new checkpoint without a decode/encode round trip).
func (x *FrozenIndex) RawCommit(i int) []byte {
	return x.commits[i*frozenCommitSize : (i+1)*frozenCommitSize]
}

// CommitHashAt returns just the hash of commit entry i.
func (x *FrozenIndex) CommitHashAt(i int) Hash {
	var h Hash
	copy(h[:], x.commits[i*frozenCommitSize:])
	return h
}

// ObjectAt decodes object entry i.
func (x *FrozenIndex) ObjectAt(i int) (Hash, FrozenObject) {
	e := x.objects[i*frozenObjectSize : (i+1)*frozenObjectSize]
	var h Hash
	copy(h[:], e[:32])
	var o FrozenObject
	copy(o.Base[:], e[32:64])
	o.Delta = e[64]&1 != 0
	o.Size = int(binary.BigEndian.Uint64(e[65:73]))
	o.Depth = int(binary.BigEndian.Uint32(e[73:77]))
	o.Stored = int(binary.BigEndian.Uint64(e[77:85]))
	o.Seg = int(binary.BigEndian.Uint32(e[85:89]))
	o.Off = int64(binary.BigEndian.Uint64(e[89:97]))
	return h, o
}

// RawObject returns object entry i's raw bytes.
func (x *FrozenIndex) RawObject(i int) []byte {
	return x.objects[i*frozenObjectSize : (i+1)*frozenObjectSize]
}

// ObjectHashAt returns just the hash of object entry i.
func (x *FrozenIndex) ObjectHashAt(i int) Hash {
	var h Hash
	copy(h[:], x.objects[i*frozenObjectSize:])
	return h
}

// FindObject binary-searches the hash-sorted object section.
func (x *FrozenIndex) FindObject(h Hash) (FrozenObject, bool) {
	n := x.NumObjects()
	i := sort.Search(n, func(i int) bool {
		return bytes.Compare(x.objects[i*frozenObjectSize:i*frozenObjectSize+32], h[:]) >= 0
	})
	if i < n && bytes.Equal(x.objects[i*frozenObjectSize:i*frozenObjectSize+32], h[:]) {
		_, o := x.ObjectAt(i)
		return o, true
	}
	return FrozenObject{}, false
}

// findCommit binary-searches the hash-sorted commit section, returning
// the entry index.
func (x *FrozenIndex) findCommit(h Hash) (int, bool) {
	n := x.NumCommits()
	i := sort.Search(n, func(i int) bool {
		return bytes.Compare(x.commits[i*frozenCommitSize:i*frozenCommitSize+32], h[:]) >= 0
	})
	if i < n && bytes.Equal(x.commits[i*frozenCommitSize:i*frozenCommitSize+32], h[:]) {
		return i, true
	}
	return 0, false
}

// FindCommit binary-searches the hash-sorted commit section and decodes
// the hit.
func (x *FrozenIndex) FindCommit(h Hash) (Commit, bool) {
	if i, ok := x.findCommit(h); ok {
		_, c := x.CommitAt(i)
		return c, true
	}
	return Commit{}, false
}

// HasCommit reports whether the commit section holds h, without decoding
// (FindCommit allocates the hit's parent slice; existence checks need
// not).
func (x *FrozenIndex) HasCommit(h Hash) bool {
	_, ok := x.findCommit(h)
	return ok
}

// AppendFrozenCommit appends one fixed-width commit entry to buf. Commits
// with more than two parents cannot exist (root/op/merge); extra parents
// would be silently dropped, so callers must uphold the invariant.
func AppendFrozenCommit(buf []byte, h Hash, c Commit) []byte {
	var e [frozenCommitSize]byte
	copy(e[:32], h[:])
	copy(e[32:64], c.State[:])
	binary.BigEndian.PutUint32(e[64:68], uint32(c.Gen))
	binary.BigEndian.PutUint64(e[68:76], uint64(c.Time))
	e[76] = byte(len(c.Parents))
	if len(c.Parents) > 0 {
		copy(e[77:109], c.Parents[0][:])
		if len(c.Parents) > 1 {
			copy(e[109:141], c.Parents[1][:])
		}
	}
	return append(buf, e[:]...)
}

// AppendFrozenObject appends one fixed-width object entry to buf.
func AppendFrozenObject(buf []byte, h Hash, o FrozenObject) []byte {
	var e [frozenObjectSize]byte
	copy(e[:32], h[:])
	copy(e[32:64], o.Base[:])
	if o.Delta {
		e[64] = 1
	}
	binary.BigEndian.PutUint64(e[65:73], uint64(o.Size))
	binary.BigEndian.PutUint32(e[73:77], uint32(o.Depth))
	binary.BigEndian.PutUint64(e[77:85], uint64(o.Stored))
	binary.BigEndian.PutUint32(e[85:89], uint32(o.Seg))
	binary.BigEndian.PutUint64(e[89:97], uint64(o.Off))
	return append(buf, e[:]...)
}

// FrozenCommitBytes and FrozenObjectBytes expose the entry widths so a
// persister can size sections exactly.
const (
	FrozenCommitBytes = frozenCommitSize
	FrozenObjectBytes = frozenObjectSize
)

// frozenPackObject is the in-memory form of a frozen entry: a lazy
// packObject whose bytes load through the index's loader on first use.
func frozenPackObject(h Hash, fo FrozenObject, loader FrozenLoader) *packObject {
	return &packObject{
		base: fo.Base, delta: fo.Delta, size: fo.Size, depth: fo.Depth, stored: fo.Stored,
		load: func() ([]byte, error) { return loader(h, fo.Seg, fo.Off) },
	}
}

// objLocked resolves the pack object addressed by h: the mutable map
// first (post-recovery writes and thawed entries shadow the index), then
// the frozen index. Frozen hits construct a fresh lazy packObject per
// call rather than caching it in the map — readers hold only the shared
// read lock; the state LRU and the reassembly slot keep repeated reads
// cheap regardless. Callers must hold s.mu (read or write).
func (s *Store[S, Op, Val]) objLocked(h Hash) (*packObject, bool) {
	if o, ok := s.objects[h]; ok {
		return o, true
	}
	if s.frozen != nil {
		if fo, ok := s.frozen.FindObject(h); ok {
			return frozenPackObject(h, fo, s.frozen.Loader), true
		}
	}
	return nil, false
}

// objExistsLocked reports whether a pack object is addressed by h, in
// the map or the frozen index. Callers must hold s.mu.
func (s *Store[S, Op, Val]) objExistsLocked(h Hash) bool {
	if _, ok := s.objects[h]; ok {
		return true
	}
	if s.frozen != nil {
		_, ok := s.frozen.FindObject(h)
		return ok
	}
	return false
}

// allObjectsLocked assembles the complete object index — map entries
// plus frozen entries the map does not shadow — for whole-pack walks
// (VerifyPack). With no frozen index it returns s.objects itself;
// otherwise a fresh map whose frozen-backed entries are lazy and die
// with it. Callers must hold s.mu and must not mutate a returned map
// they did not verify is fresh.
func (s *Store[S, Op, Val]) allObjectsLocked() map[Hash]*packObject {
	if s.frozen == nil {
		return s.objects
	}
	all := make(map[Hash]*packObject, len(s.objects)+s.frozen.NumObjects())
	for i, n := 0, s.frozen.NumObjects(); i < n; i++ {
		h, fo := s.frozen.ObjectAt(i)
		all[h] = frozenPackObject(h, fo, s.frozen.Loader)
	}
	for h, o := range s.objects {
		all[h] = o
	}
	return all
}

// commitLocked resolves the commit addressed by h: the mutable map first
// (post-recovery commits and thawed entries shadow the index), then the
// frozen index by binary search. Callers must hold s.mu (read or write).
func (s *Store[S, Op, Val]) commitLocked(h Hash) (Commit, bool) {
	if c, ok := s.commits[h]; ok {
		return c, true
	}
	if s.frozen != nil {
		return s.frozen.FindCommit(h)
	}
	return Commit{}, false
}

// commitAtLocked is commitLocked without the presence bit — the zero
// Commit when absent, the map-indexing idiom the DAG walks use (they
// only ask for hashes the graph contains). Callers must hold s.mu.
func (s *Store[S, Op, Val]) commitAtLocked(h Hash) Commit {
	c, _ := s.commitLocked(h)
	return c
}

// commitExistsLocked reports whether a commit is addressed by h, in the
// map or the frozen index. Callers must hold s.mu.
func (s *Store[S, Op, Val]) commitExistsLocked(h Hash) bool {
	if _, ok := s.commits[h]; ok {
		return true
	}
	return s.frozen != nil && s.frozen.HasCommit(h)
}

// numCommitsLocked counts retained commits across the map and the frozen
// index. The two are disjoint by construction: putCommit refuses hashes
// the index already holds, and recovery installs a replayed suffix entry
// only when the index lacks it.
func (s *Store[S, Op, Val]) numCommitsLocked() int {
	n := len(s.commits)
	if s.frozen != nil {
		n += s.frozen.NumCommits()
	}
	return n
}

// thawLocked dissolves the frozen index into the mutable maps. GC calls
// it first thing: the mark phase iterates the full commit map, the sweep
// mutates object depths in place, deletes entries, and compacts the log —
// after which frozen (segment, offset) positions would dangle. Requires
// the write lock.
func (s *Store[S, Op, Val]) thawLocked() {
	fz := s.frozen
	if fz == nil {
		return
	}
	for i, n := 0, fz.NumCommits(); i < n; i++ {
		h, c := fz.CommitAt(i)
		if _, ok := s.commits[h]; !ok {
			s.commits[h] = c
		}
	}
	for i, n := 0, fz.NumObjects(); i < n; i++ {
		h, fo := fz.ObjectAt(i)
		if _, ok := s.objects[h]; !ok {
			s.objects[h] = frozenPackObject(h, fo, fz.Loader)
		}
	}
	s.frozen = nil
}
