package store

import "fmt"

// Frontier is a compact summary of a branch's history used to negotiate
// incremental syncs: the head hash and generation plus a sample of
// ancestor hashes — dense over the most recent commits, exponentially
// sparse further back (the spacing trick of Git's commit negotiation).
// A peer subtracts everything dominated by the frontier's hashes from
// what it ships, so re-syncing an already-converged pair transfers
// O(frontier) bytes instead of O(history).
//
// The sampling caps — dense window, sample size, walk budget — default to
// DefaultOptions and are tuned per store via WithFrontierDense,
// WithFrontierMaxHave and WithFrontierWalkBudget.
type Frontier struct {
	// Head is the branch's current head commit.
	Head Hash
	// Have samples ancestors of Head (Head itself excluded): every commit
	// within the dense generation window, then power-of-two distances.
	Have []Hash
}

// HaveSet returns the frontier's hashes — head and sample — as the
// have-set understood by ExportSince.
func (f Frontier) HaveSet() []Hash {
	out := make([]Hash, 0, len(f.Have)+1)
	out = append(out, f.Head)
	return append(out, f.Have...)
}

// Frontier summarizes branch b for sync negotiation.
//
// The sample budget is split: a quarter of FrontierMaxHave is reserved
// for the sparse power-of-two tail, the rest goes to the dense window.
// On wide DAGs (many merges close to the head) the dense window alone
// can hold more commits than the whole budget, and an unsplit budget
// would fill up before the walk ever reaches a sparse ancestor — losing
// exactly the old merge-cut points that let a long-diverged peer find a
// deep common commit.
func (s *Store[S, Op, Val]) Frontier(b string) (Frontier, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	head, ok := s.heads[b]
	if !ok {
		return Frontier{}, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	headGen := s.commitAtLocked(head).Gen
	// A quarter of the budget, rounded up, goes to the sparse tail —
	// rounding up rather than down so tiny budgets (2 and 3, where the
	// quarter truncates to zero) still reserve a deep-cut slot — while
	// the dense window always keeps at least one slot, so a budget of 1
	// spends it on the freshest ancestor rather than a deep one.
	sparseCap := (s.opts.FrontierMaxHave + 3) / 4
	if sparseCap > s.opts.FrontierMaxHave-1 {
		sparseCap = s.opts.FrontierMaxHave - 1
	}
	if sparseCap < 0 {
		sparseCap = 0
	}
	denseCap := s.opts.FrontierMaxHave - sparseCap
	var dense, sparse []Hash
	seen := map[Hash]bool{head: true}
	queue := []Hash{head}
	for visited := 0; len(queue) > 0 && visited < s.opts.FrontierWalkBudget &&
		(len(dense) < denseCap || len(sparse) < sparseCap); visited++ {
		h := queue[0]
		queue = queue[1:]
		if h != head {
			switch d := headGen - s.commitAtLocked(h).Gen; {
			case d <= s.opts.FrontierDense:
				if len(dense) < denseCap {
					dense = append(dense, h)
				}
			case d&(d-1) == 0: // power of two
				if len(sparse) < sparseCap {
					sparse = append(sparse, h)
				}
			}
		}
		for _, p := range s.commitAtLocked(h).Parents {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	f := Frontier{Head: head, Have: append(dense, sparse...)}
	return f, nil
}
