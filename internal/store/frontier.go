package store

import "fmt"

// Frontier is a compact summary of a branch's history used to negotiate
// incremental syncs: the head hash and generation plus a sample of
// ancestor hashes — dense over the most recent commits, exponentially
// sparse further back (the spacing trick of Git's commit negotiation).
// A peer subtracts everything dominated by the frontier's hashes from
// what it ships, so re-syncing an already-converged pair transfers
// O(frontier) bytes instead of O(history).
//
// The sampling caps — dense window, sample size, walk budget — default to
// DefaultOptions and are tuned per store via WithFrontierDense,
// WithFrontierMaxHave and WithFrontierWalkBudget.
type Frontier struct {
	// Head is the branch's current head commit.
	Head Hash
	// Have samples ancestors of Head (Head itself excluded): every commit
	// within the dense generation window, then power-of-two distances.
	Have []Hash
}

// HaveSet returns the frontier's hashes — head and sample — as the
// have-set understood by ExportSince.
func (f Frontier) HaveSet() []Hash {
	out := make([]Hash, 0, len(f.Have)+1)
	out = append(out, f.Head)
	return append(out, f.Have...)
}

// Frontier summarizes branch b for sync negotiation.
func (s *Store[S, Op, Val]) Frontier(b string) (Frontier, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	head, ok := s.heads[b]
	if !ok {
		return Frontier{}, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	headGen := s.commits[head].Gen
	f := Frontier{Head: head}
	seen := map[Hash]bool{head: true}
	queue := []Hash{head}
	for visited := 0; len(queue) > 0 && visited < s.opts.FrontierWalkBudget && len(f.Have) < s.opts.FrontierMaxHave; visited++ {
		h := queue[0]
		queue = queue[1:]
		if h != head && sampled(headGen-s.commits[h].Gen, s.opts.FrontierDense) {
			f.Have = append(f.Have, h)
		}
		for _, p := range s.commits[h].Parents {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return f, nil
}

// sampled reports whether an ancestor at generation distance d below the
// head belongs in a frontier sample with dense window dense.
func sampled(d, dense int) bool {
	if d <= dense {
		return true
	}
	return d&(d-1) == 0 // power of two
}
