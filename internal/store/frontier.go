package store

import "fmt"

// Frontier is a compact summary of a branch's history used to negotiate
// incremental syncs: the head hash and generation plus a sample of
// ancestor hashes — dense over the most recent commits, exponentially
// sparse further back (the spacing trick of Git's commit negotiation).
// A peer subtracts everything dominated by the frontier's hashes from
// what it ships, so re-syncing an already-converged pair transfers
// O(frontier) bytes instead of O(history).
type Frontier struct {
	// Head is the branch's current head commit.
	Head Hash
	// Have samples ancestors of Head (Head itself excluded): every commit
	// within frontierDense generations, then power-of-two distances.
	Have []Hash
}

const (
	// frontierDense is the generation window below the head inside which
	// every ancestor joins the sample, so short divergences cut exactly.
	frontierDense = 16
	// frontierMaxHave caps the sample size: a frontier stays O(1) on the
	// wire no matter how long the history grows.
	frontierMaxHave = 128
	// frontierWalkBudget caps the commits visited while sampling, bounding
	// the local cost of frontier construction on huge DAGs. Beyond the
	// budget the sample is merely sparser; correctness is unaffected.
	frontierWalkBudget = 4096
)

// HaveSet returns the frontier's hashes — head and sample — as the
// have-set understood by ExportSince.
func (f Frontier) HaveSet() []Hash {
	out := make([]Hash, 0, len(f.Have)+1)
	out = append(out, f.Head)
	return append(out, f.Have...)
}

// Frontier summarizes branch b for sync negotiation.
func (s *Store[S, Op, Val]) Frontier(b string) (Frontier, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	head, ok := s.heads[b]
	if !ok {
		return Frontier{}, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	headGen := s.commits[head].Gen
	f := Frontier{Head: head}
	seen := map[Hash]bool{head: true}
	queue := []Hash{head}
	for visited := 0; len(queue) > 0 && visited < frontierWalkBudget && len(f.Have) < frontierMaxHave; visited++ {
		h := queue[0]
		queue = queue[1:]
		if h != head && sampled(headGen-s.commits[h].Gen) {
			f.Have = append(f.Have, h)
		}
		for _, p := range s.commits[h].Parents {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return f, nil
}

// sampled reports whether an ancestor at generation distance d below the
// head belongs in the frontier sample.
func sampled(d int) bool {
	if d <= frontierDense {
		return true
	}
	return d&(d-1) == 0 // power of two
}
