package store

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/counter"
)

// Property tests pinning the generation-guided DAG walks (lca.go) to the
// retained full-ancestor-set reference implementations (reference.go) on
// randomized DAGs. Commits are constructed directly so the DAGs include
// shapes the public API's soundness discipline forbids — criss-cross
// merges on both sides, merges of concurrent merge commits, and nested
// criss-crosses that force the virtual-base recursion.

// randomDAG builds a DAG of roughly size commits over the store's root:
// mostly operation commits on random existing tips, with a merge mixed in
// about a third of the time. Returns every created hash (root included).
func randomDAG(s *Store[int64, counter.Op, counter.Val], r *rand.Rand, size int) []Hash {
	hashes := []Hash{s.heads["main"]}
	for len(hashes) < size {
		if r.Intn(3) == 0 && len(hashes) > 2 {
			a := hashes[r.Intn(len(hashes))]
			b := hashes[r.Intn(len(hashes))]
			if a == b {
				continue
			}
			hashes = append(hashes, mergeCommit(s, a, b, int64(r.Intn(512))))
		} else {
			hashes = append(hashes, commitChain(s, hashes[r.Intn(len(hashes))], 1))
		}
	}
	return hashes
}

func sortedHashes(hs []Hash) []Hash {
	out := append([]Hash(nil), hs...)
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

func sameHashSet(a, b []Hash) bool {
	a, b = sortedHashes(a), sortedHashes(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMaximalCommonAncestorsMatchReferenceOnRandomDAGs(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := newInternalCounterStore()
		hashes := randomDAG(s, r, 60)
		for k := 0; k < 50; k++ {
			a := hashes[r.Intn(len(hashes))]
			b := hashes[r.Intn(len(hashes))]
			fast := s.maximalCommonAncestors(a, b)
			ref := s.refMaximalCommonAncestors(a, b)
			if !sameHashSet(fast, ref) {
				t.Fatalf("seed %d: maximalCommonAncestors(%v, %v) = %v, reference says %v",
					seed, a, b, sortedHashes(fast), sortedHashes(ref))
			}
		}
	}
}

func TestLCAMatchesReferenceOnRandomDAGs(t *testing.T) {
	for seed := int64(100); seed <= 125; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := newInternalCounterStore()
		hashes := randomDAG(s, r, 50)
		for k := 0; k < 30; k++ {
			a := hashes[r.Intn(len(hashes))]
			b := hashes[r.Intn(len(hashes))]
			// The reference runs first; the fast walk must reproduce its
			// virtual commits bit-for-bit (they deduplicate by content
			// address), so the bases must be identical hashes.
			refBase, refErr := s.refLCA(a, b)
			fastBase, fastErr := s.lca(a, b)
			if (refErr == nil) != (fastErr == nil) {
				t.Fatalf("seed %d: lca errors diverge: ref=%v fast=%v", seed, refErr, fastErr)
			}
			if refErr == nil && refBase != fastBase {
				t.Fatalf("seed %d: lca(%v, %v) = %v, reference says %v", seed, a, b, fastBase, refBase)
			}
		}
	}
}

// TestLCANestedCrissCrossMatchesReference builds deliberately nested
// criss-crosses — at every level two opposite merges of the previous
// level's tips — so the merge-base search keeps finding two maximal
// common ancestors and lca recurses through virtual bases several levels
// deep. Fast and reference must agree at every level.
func TestLCANestedCrissCrossMatchesReference(t *testing.T) {
	s := newInternalCounterStore()
	x := commitChain(s, s.heads["main"], 1)
	y := commitChain(s, x, 1)
	x = commitChain(s, x, 2)
	for level := 0; level < 4; level++ {
		ma := mergeCommit(s, x, y, int64(10+level))
		mb := mergeCommit(s, y, x, int64(10+level))
		x = commitChain(s, ma, 1)
		y = commitChain(s, mb, 1)

		fastCands := s.maximalCommonAncestors(x, y)
		refCands := s.refMaximalCommonAncestors(x, y)
		if !sameHashSet(fastCands, refCands) {
			t.Fatalf("level %d: candidates diverge: fast %v ref %v", level, fastCands, refCands)
		}
		if len(fastCands) != 2 {
			t.Fatalf("level %d: expected a criss-cross (2 candidates), got %d", level, len(fastCands))
		}
		refBase, err := s.refLCA(x, y)
		if err != nil {
			t.Fatal(err)
		}
		fastBase, err := s.lca(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if refBase != fastBase {
			t.Fatalf("level %d: virtual base diverges: fast %v ref %v", level, fastBase, refBase)
		}
		if c := s.commits[fastBase]; len(c.Parents) != 2 {
			t.Fatalf("level %d: virtual base must be a merge commit", level)
		}
	}
}

// TestMergeBaseCarriesExactCommonOps is the executable statement of
// Ψ_lca: on arbitrary DAGs — including criss-crosses whose base is a
// virtual fold commit — the merge base lca returns must carry exactly
// the operation commits reachable from both heads, no more and no less.
// Every pull hands the data type merge such a base, which is what makes
// the three-way merges exact whatever order gossip built the history in.
func TestMergeBaseCarriesExactCommonOps(t *testing.T) {
	opsOf := func(s *Store[int64, counter.Op, counter.Val], h Hash) map[Hash]bool {
		out := map[Hash]bool{}
		for anc := range s.ancestors(h) {
			if len(s.commitAtLocked(anc).Parents) == 1 {
				out[anc] = true
			}
		}
		return out
	}
	for seed := int64(200); seed <= 230; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := newInternalCounterStore()
		hashes := randomDAG(s, r, 50)
		for k := 0; k < 40; k++ {
			a := hashes[r.Intn(len(hashes))]
			b := hashes[r.Intn(len(hashes))]
			base, err := s.lca(a, b)
			if err != nil {
				t.Fatal(err)
			}
			aOps, bOps, baseOps := opsOf(s, a), opsOf(s, b), opsOf(s, base)
			for h := range baseOps {
				if !aOps[h] || !bOps[h] {
					t.Fatalf("seed %d: base op %v not common to both heads", seed, h)
				}
			}
			for h := range aOps {
				if bOps[h] && !baseOps[h] {
					t.Fatalf("seed %d: common op %v missing from the base", seed, h)
				}
			}
		}
	}
}

func TestExclusiveOpsMatchReferenceOnRandomDAGs(t *testing.T) {
	for seed := int64(300); seed <= 330; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := newInternalCounterStore()
		hashes := randomDAG(s, r, 50)
		for k := 0; k < 40; k++ {
			a := hashes[r.Intn(len(hashes))]
			b := hashes[r.Intn(len(hashes))]
			fastA, fastB := s.exclusiveOps(a, b)
			refA, refB := s.refExclusiveOps(a, b)
			if !sameHashSet(fastA, refA) || !sameHashSet(fastB, refB) {
				t.Fatalf("seed %d: exclusiveOps(%v, %v) diverges from reference", seed, a, b)
			}
			// The fast walk promises strictly decreasing generation order.
			for _, side := range [][]Hash{fastA, fastB} {
				for i := 1; i < len(side); i++ {
					if s.commits[side[i]].Gen > s.commits[side[i-1]].Gen {
						t.Fatalf("seed %d: exclusiveOps not generation-sorted", seed)
					}
				}
			}
		}
	}
}
