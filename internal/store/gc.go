package store

import "repro/internal/recon"

// GC discards history that no future merge can need, the role the paper
// assigns to the MRDT middleware ("the MRDT middleware garbage collects
// the causal histories when appropriate", §1.1). A commit must be retained
// if it is reachable from a branch head or can still serve as (part of) a
// merge base for some pair of branches — conservatively, everything
// reachable from any head. Unreachable commits, their states and encoded
// objects are dropped.
//
// It returns the number of commits collected.
//
// The pack layer makes collection two-phase: a surviving state may be
// stored as a delta whose chain runs through states only dead commits
// pin. Deleting those bases would orphan the chain, so before anything is
// dropped, every live delta whose base is about to vanish is re-packed as
// a full snapshot (chain roots are re-snapshotted, in the packfile
// sense); live-on-live links are kept as deltas. Only then are dead
// commits and their objects removed.
func (s *Store[S, Op, Val]) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()

	// The sweep iterates the full commit map, rewrites the object set in
	// place (depth fixes, deletions) and ends in a log compaction that
	// invalidates frozen (segment, offset) positions, so a
	// checkpoint-recovered index must dissolve into the maps first.
	s.thawLocked()

	live := make(map[Hash]bool)
	for _, head := range s.heads {
		for h := range s.ancestors(head) {
			live[h] = true
		}
	}

	liveStates := make(map[Hash]bool, len(live))
	for h, c := range s.commits {
		if live[h] {
			liveStates[c.State] = true
		}
	}
	// Re-snapshot chain roots the sweep would orphan, while every base is
	// still present. After this loop each surviving delta's base is
	// itself a surviving state, so chains stay closed under liveness. If
	// a chain fails to materialize (corruption), its bases are retained
	// instead of deleted, keeping the store readable for diagnosis.
	for h := range liveStates {
		obj := s.objects[h]
		// A nil object can only appear through the corruption-retention
		// path below (a chain base whose object is itself missing was
		// marked live mid-iteration); there is nothing to re-pack.
		if obj == nil || !obj.delta || liveStates[obj.base] {
			continue
		}
		enc, err := s.materializeLocked(h)
		if err != nil {
			for cur := obj; cur != nil && cur.delta && !liveStates[cur.base]; cur = s.objects[cur.base] {
				liveStates[cur.base] = true
			}
			continue
		}
		s.objects[h] = &packObject{data: append([]byte(nil), enc...), size: len(enc)}
	}
	// Re-snapshotting moved some chain roots to depth 0, so surviving
	// descendants' recorded depths over-count their true chain length.
	// Recompute them (memoized descent over base links) so future
	// packLocked spacing decisions and PackStats stay exact.
	depth := make(map[Hash]int, len(liveStates))
	var fixDepth func(h Hash) int
	fixDepth = func(h Hash) int {
		if d, ok := depth[h]; ok {
			return d
		}
		obj, ok := s.objects[h]
		if !ok || !obj.delta {
			depth[h] = 0
			return 0
		}
		d := fixDepth(obj.base) + 1
		obj.depth = d
		depth[h] = d
		return d
	}
	for h := range liveStates {
		fixDepth(h)
	}

	collected := 0
	for h, c := range s.commits {
		if !live[h] {
			delete(s.commits, h)
			if s.rtree != nil {
				s.rtree.Remove(recon.MakeItem(uint64(c.Gen), h))
			}
			collected++
		}
	}
	for h := range s.objects {
		if !liveStates[h] {
			delete(s.objects, h)
			s.cache.remove(h)
		}
	}
	// Drop the reassembly cache if its subject died with the sweep.
	s.encMu.Lock()
	if !liveStates[s.encHash] {
		s.encHash, s.encBuf = Hash{}, nil
	}
	s.encMu.Unlock()
	// A GC is the persister's compaction point: the log is rewritten to
	// exactly the survivors (including the re-snapshotted chain roots and
	// recomputed depths), so on-disk bytes shrink with resident bytes. A
	// compaction failure is sticky like any persistence failure; GC's
	// counting return stays useful, and the next mutation surfaces the
	// error.
	if p := s.opts.Persister; p != nil && s.persistErr == nil {
		rs, err := s.liveStateLocked()
		if err == nil {
			err = p.Compact(rs)
		}
		if err != nil {
			s.persistErr = err
		}
	}
	return collected
}

// NumCommits returns the number of commits currently retained.
func (s *Store[S, Op, Val]) NumCommits() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.numCommitsLocked()
}

// DeleteBranch removes a branch head (its commits become collectable once
// no other branch reaches them). The last branch cannot be deleted.
func (s *Store[S, Op, Val]) DeleteBranch(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.heads[name]; !ok {
		return ErrNoBranch
	}
	if len(s.heads) == 1 {
		return ErrLastBranch
	}
	delete(s.heads, name)
	delete(s.clocks, name)
	if p := s.opts.Persister; p != nil && s.persistErr == nil {
		if err := p.AppendBranchDelete(name); err != nil {
			s.persistErr = err
		}
	}
	return s.finishPersistLocked()
}
