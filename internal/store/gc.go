package store

// GC discards history that no future merge can need, the role the paper
// assigns to the MRDT middleware ("the MRDT middleware garbage collects
// the causal histories when appropriate", §1.1). A commit must be retained
// if it is reachable from a branch head or can still serve as (part of) a
// merge base for some pair of branches — conservatively, everything
// reachable from any head. Unreachable commits, their states and encoded
// objects are dropped.
//
// It returns the number of commits collected.
func (s *Store[S, Op, Val]) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()

	live := make(map[Hash]bool)
	for _, head := range s.heads {
		for h := range s.ancestors(head) {
			live[h] = true
		}
	}

	collected := 0
	liveStates := make(map[Hash]bool, len(live))
	for h, c := range s.commits {
		if live[h] {
			liveStates[c.State] = true
			continue
		}
		delete(s.commits, h)
		collected++
	}
	for h := range s.states {
		if !liveStates[h] {
			delete(s.states, h)
			delete(s.objects, h)
		}
	}
	return collected
}

// NumCommits returns the number of commits currently retained.
func (s *Store[S, Op, Val]) NumCommits() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.commits)
}

// DeleteBranch removes a branch head (its commits become collectable once
// no other branch reaches them). The last branch cannot be deleted.
func (s *Store[S, Op, Val]) DeleteBranch(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.heads[name]; !ok {
		return ErrNoBranch
	}
	if len(s.heads) == 1 {
		return ErrLastBranch
	}
	delete(s.heads, name)
	delete(s.clocks, name)
	return nil
}
