package store

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/recon"
)

// Set reconciliation support: the store mirrors its commit set into an
// incrementally maintained recon.Tree, so the sync layer can answer
// range-fingerprint probes in O(log n) and resolve the exact symmetric
// difference between two replicas instead of trusting sampled frontiers.
//
// Tree items are (generation, hash) keys: the commit's generation number
// — 1 + max parent generation, a deterministic function of the DAG, so
// identical on every replica holding the commit — prefixes its content
// address. Generation order gives the keyspace the locality that makes
// the descent cheap: two replicas that diverged recently differ only in
// high-generation commits, one contiguous tail of the keyspace, so the
// probe descent prunes the whole shared prefix in O(log n) matches
// instead of chasing uniformly scattered hashes through every subtree.
//
// The tree is built lazily on the first recon query — an O(n log n)
// seeding over the commit map plus any frozen checkpoint index — so a
// node that never syncs (or syncs only with pre-recon peers) pays
// nothing, and checkpointed recovery stays flat in history. Once built,
// putCommit and GC keep it exact: every commit installation funnels
// through putCommit (Apply, Import, merges), and GC's sweep removes the
// collected hashes.

// ensureRecon builds the recon tree if it does not exist yet. It takes
// the write lock only on the build path; steady-state callers get a
// read-locked presence check.
func (s *Store[S, Op, Val]) ensureRecon() {
	s.mu.RLock()
	ok := s.rtree != nil
	s.mu.RUnlock()
	if ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rtree != nil {
		return
	}
	t := &recon.Tree{}
	for h, c := range s.commits {
		t.Add(recon.MakeItem(uint64(c.Gen), h))
	}
	if s.frozen != nil {
		for i, n := 0, s.frozen.NumCommits(); i < n; i++ {
			h, c := s.frozen.CommitAt(i)
			t.Add(recon.MakeItem(uint64(c.Gen), h))
		}
	}
	s.rtree = t
}

// ReconRoot returns the fingerprint and count of the store's whole
// commit set.
func (s *Store[S, Op, Val]) ReconRoot() (recon.Fingerprint, int) {
	s.ensureRecon()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rtree.Root()
}

// ReconRange returns the fingerprint and count of the commit keys in
// [x, y) (zero y: unbounded above).
func (s *Store[S, Op, Val]) ReconRange(x, y recon.Item) (recon.Fingerprint, int) {
	s.ensureRecon()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rtree.Range(x, y)
}

// ReconItems returns the commit keys in [x, y) in ascending order, at
// most max of them (max < 0: all).
func (s *Store[S, Op, Val]) ReconItems(x, y recon.Item, max int) []recon.Item {
	s.ensureRecon()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rtree.Items(nil, x, y, max)
}

// ReconSelect returns the k-th commit key (0-based, ascending) of
// [x, y) — the split-point oracle of the recursive range descent.
func (s *Store[S, Op, Val]) ReconSelect(x, y recon.Item, k int) (recon.Item, bool) {
	s.ensureRecon()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rtree.Select(x, y, k)
}

// HasCommit reports whether the store holds the commit addressed by h.
func (s *Store[S, Op, Val]) HasCommit(h Hash) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commitExistsLocked(h)
}

// BeginInstallCapture starts recording the hash of every commit newly
// installed by subsequent mutations (Apply, Import, merge commits minted
// by Pull), until the returned token is collected by EndInstallCapture
// or consumed by ExportSetCapture. Captures nest: each live token keeps
// its own log, so the sync layer can hold one capture across a whole
// reconciliation session (every commit a concurrent local Apply slips
// past the probe descent) while Integrate opens short inner captures to
// separate redundant re-ships from freshly minted merge commits.
func (s *Store[S, Op, Val]) BeginInstallCapture() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beginInstallCaptureLocked()
}

func (s *Store[S, Op, Val]) beginInstallCaptureLocked() int {
	if s.installLogs == nil {
		s.installLogs = make(map[int][]Hash)
	}
	s.installSeq++
	s.installLogs[s.installSeq] = []Hash{}
	return s.installSeq
}

// EndInstallCapture stops the token's recording and returns the hashes
// installed since its BeginInstallCapture, in installation order. A
// token already ended (or consumed by ExportSetCapture) returns nil, so
// cleanup paths may call it unconditionally.
func (s *Store[S, Op, Val]) EndInstallCapture(token int) []Hash {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.endInstallCaptureLocked(token)
}

func (s *Store[S, Op, Val]) endInstallCaptureLocked(token int) []Hash {
	log, ok := s.installLogs[token]
	if !ok {
		return nil
	}
	delete(s.installLogs, token)
	return log
}

// ExportSet exports exactly the commits in ship, parents-before-children,
// in generation order — Gen = 1 + max parent generation, so a parent
// always sorts strictly before its children and no DAG walk is needed.
// The returned head is branch b's current head (the graft point the
// receiver's Import expects). Ship hashes the store does not hold are
// skipped silently (the peer re-negotiates them next round).
//
// Enumerating the set directly — rather than walking down from the
// branch heads — matters for completeness: a reconciliation can
// legitimately resolve a commit that no branch head reaches any more (a
// tracking branch moved past it and GC has not run), and a reachability
// walk would silently drop it, leaving the two fingerprint trees
// permanently different and the pair re-probing the same dead diff
// every round.
//
// The receiver can graft the batch because its holdings are closed
// under ancestry and the caller builds ship as "commits the receiver
// provably lacks": a parent outside the batch is therefore a commit the
// receiver already holds. Packed exports may ship a commit as a patch
// against its first parent for the same reason.
func (s *Store[S, Op, Val]) ExportSet(b string, ship map[Hash]bool, packed bool) ([]ExportedCommit, Hash, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.exportSetLocked(b, ship, packed)
}

// ExportSetCapture is ExportSet with the race between a negotiated ship
// set and concurrent local commits closed: under one critical section it
// folds the commits recorded by the capture token — minus the skip set —
// into ship, then exports. The token spans the whole negotiation
// (armed before the first probe), so a commit a local Apply installs
// after its range was already compared still reaches the ship set, and
// because putCommit serializes on the same lock, any commit the exported
// head can reach is either pre-negotiation (resolved by the probes), in
// the capture, or in skip (known held by the receiver) — the ancestry
// closure ExportSet's pruning relies on. skip is the receiver's own
// just-imported delta: commits it provably holds and must not be shipped
// back.
func (s *Store[S, Op, Val]) ExportSetCapture(b string, ship map[Hash]bool, token int, skip map[Hash]bool, packed bool) ([]ExportedCommit, Hash, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.endInstallCaptureLocked(token) {
		if !skip[h] {
			ship[h] = true
		}
	}
	return s.exportSetLocked(b, ship, packed)
}

func (s *Store[S, Op, Val]) exportSetLocked(b string, ship map[Hash]bool, packed bool) ([]ExportedCommit, Hash, error) {
	head, ok := s.heads[b]
	if !ok {
		return nil, Hash{}, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	if len(ship) == 0 {
		return nil, head, nil
	}
	order := make([]Hash, 0, len(ship))
	for h := range ship {
		if s.commitExistsLocked(h) {
			order = append(order, h)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		gi, gj := s.commitAtLocked(order[i]).Gen, s.commitAtLocked(order[j]).Gen
		if gi != gj {
			return gi < gj
		}
		return bytes.Compare(order[i][:], order[j][:]) < 0
	})
	commits, err := s.exportOrderLocked(order, packed)
	return commits, head, err
}
