package store

// Generation-guided DAG walks. The merge-base search and the exclusive
// operation partition are flag-propagation walks over the commit DAG
// that visit commits in strictly non-increasing generation order, which
// gives them two properties the old full-ancestor-set implementations
// lacked:
//
//   - Flag completeness at pop: every path from a walk source down to a
//     commit consists of commits with strictly larger generations, so by
//     the time a commit is popped, every flag that can ever reach it has
//     reached it. Decisions made at pop time are final.
//
//   - Early termination: the walk stops as soon as every queued commit
//     carries the walk's "boring" flag (STALE), so it never descends
//     past the region the query is actually about — cost is
//     O(divergence), not O(history).
//
// The retained full-set implementations in reference.go are the
// executable specification; property tests require the two to agree on
// randomized DAGs.

// Flag bits carried by painted commits: the walks paint flagP1/flagP2
// down from the two tips and mark common ancestors' histories flagStale.
const (
	flagP1    uint8 = 1 << iota // reachable from the first tip
	flagP2                      // reachable from the second tip
	flagStale                   // ancestor of an already-found common ancestor
)

// genItem is one queued commit keyed by its generation number.
type genItem struct {
	h   Hash
	gen int
}

// genHeap is a binary max-heap on generation number.
type genHeap []genItem

func (q *genHeap) push(it genItem) {
	*q = append(*q, it)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*q)[parent].gen >= (*q)[i].gen {
			break
		}
		(*q)[parent], (*q)[i] = (*q)[i], (*q)[parent]
		i = parent
	}
}

func (q *genHeap) pop() genItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h[l].gen > h[big].gen {
			big = l
		}
		if r < n && h[r].gen > h[big].gen {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return top
}

// painter runs a generation-ordered flag-propagation walk. boring is the
// flag that makes a queued commit irrelevant to termination: the walk is
// done when every queued commit carries it.
type painter struct {
	// commit resolves a hash to its commit — a bound store accessor, so
	// the walk reads through the frozen checkpoint index as well as the
	// mutable map.
	commit      func(Hash) Commit
	flags       map[Hash]uint8
	inQueue     map[Hash]bool
	queue       genHeap
	boring      uint8
	interesting int // queued commits whose flags lack the boring bit
}

func newPainter(commit func(Hash) Commit, boring uint8) *painter {
	return &painter{
		commit:  commit,
		flags:   make(map[Hash]uint8),
		inQueue: make(map[Hash]bool),
		boring:  boring,
	}
}

// add merges f into h's flags, queueing h if it is new. Flags only ever
// flow from a popped commit to its parents, whose generations are
// strictly smaller than every generation popped so far, so a commit that
// already left the queue can never gain flags here.
func (p *painter) add(h Hash, f uint8) {
	old, seen := p.flags[h]
	merged := old | f
	if seen && merged == old {
		return
	}
	p.flags[h] = merged
	if !seen {
		p.queue.push(genItem{h: h, gen: p.commit(h).Gen})
		p.inQueue[h] = true
		if merged&p.boring == 0 {
			p.interesting++
		}
		return
	}
	if p.inQueue[h] && old&p.boring == 0 && merged&p.boring != 0 {
		p.interesting--
	}
}

// active reports whether any queued commit still lacks the boring flag.
func (p *painter) active() bool { return p.interesting > 0 }

// pop removes the queued commit with the highest generation and returns
// it with its (final) flags.
func (p *painter) pop() (Hash, uint8) {
	it := p.queue.pop()
	p.inQueue[it.h] = false
	f := p.flags[it.h]
	if f&p.boring == 0 {
		p.interesting--
	}
	return it.h, f
}
