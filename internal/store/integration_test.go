package store_test

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/chat"
	"repro/internal/counter"
	"repro/internal/ewflag"
	"repro/internal/gset"
	"repro/internal/lwwreg"
	"repro/internal/mlog"
	"repro/internal/orset"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/wire"
)

// The integration suite runs every MRDT through the production store in
// randomized fork-join rounds (the topology the certification envelope
// covers): several replicas apply random operations, then all synchronize
// through a hub and must converge to observationally equal states.

type integration[S, Op, Val any] struct {
	name    string
	store   *store.Store[S, Op, Val]
	randOp  func(r *rand.Rand) Op
	probeEq func(t *testing.T, a, b S)
}

func runFJ[S, Op, Val any](t *testing.T, it integration[S, Op, Val], seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	replicas := []string{"main", "r1", "r2"}
	for _, name := range replicas[1:] {
		if err := it.store.Fork("main", name); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 6; round++ {
		for _, rep := range replicas {
			for k, n := 0, r.Intn(5); k < n; k++ {
				if _, err := it.store.Apply(rep, it.randOp(r)); err != nil {
					t.Fatalf("%s apply: %v", it.name, err)
				}
			}
		}
		// Fork-join: everyone joins through main, then main's result is
		// fanned back out (each sync is a diamond or a fast-forward).
		for _, rep := range replicas[1:] {
			if err := it.store.Sync("main", rep); err != nil {
				t.Fatalf("%s sync round %d: %v", it.name, round, err)
			}
		}
		for _, rep := range replicas[1:] {
			if err := it.store.Sync("main", rep); err != nil {
				t.Fatalf("%s re-sync round %d: %v", it.name, round, err)
			}
		}
		h0, _ := it.store.Head("main")
		for _, rep := range replicas[1:] {
			h, _ := it.store.Head(rep)
			it.probeEq(t, h0, h)
		}
	}
}

func TestStoreIntegrationCounter(t *testing.T) {
	st := store.New[counter.PNState, counter.Op, counter.Val](counter.PNCounter{}, wire.PNCounter{}, "main")
	runFJ(t, integration[counter.PNState, counter.Op, counter.Val]{
		name:  "pn-counter",
		store: st,
		randOp: func(r *rand.Rand) counter.Op {
			if r.Intn(2) == 0 {
				return counter.Op{Kind: counter.Inc, N: int64(r.Intn(5) + 1)}
			}
			return counter.Op{Kind: counter.Dec, N: int64(r.Intn(3) + 1)}
		},
		probeEq: func(t *testing.T, a, b counter.PNState) {
			if a != b {
				t.Fatalf("counter replicas diverged: %+v vs %+v", a, b)
			}
		},
	}, 1)
}

func TestStoreIntegrationEWFlag(t *testing.T) {
	st := store.New[ewflag.State, ewflag.Op, ewflag.Val](ewflag.Flag{}, wire.EWFlag{}, "main")
	runFJ(t, integration[ewflag.State, ewflag.Op, ewflag.Val]{
		name:  "ew-flag",
		store: st,
		randOp: func(r *rand.Rand) ewflag.Op {
			if r.Intn(2) == 0 {
				return ewflag.Op{Kind: ewflag.Enable}
			}
			return ewflag.Op{Kind: ewflag.Disable}
		},
		probeEq: func(t *testing.T, a, b ewflag.State) {
			if a != b {
				t.Fatalf("flag replicas diverged: %+v vs %+v", a, b)
			}
		},
	}, 2)
}

func TestStoreIntegrationLWWAndGSet(t *testing.T) {
	lst := store.New[lwwreg.State, lwwreg.Op, lwwreg.Val](lwwreg.Reg{}, wire.LWWReg{}, "main")
	runFJ(t, integration[lwwreg.State, lwwreg.Op, lwwreg.Val]{
		name:  "lww",
		store: lst,
		randOp: func(r *rand.Rand) lwwreg.Op {
			return lwwreg.Op{Kind: lwwreg.Write, V: int64(r.Intn(100))}
		},
		probeEq: func(t *testing.T, a, b lwwreg.State) {
			if a != b {
				t.Fatalf("register replicas diverged: %+v vs %+v", a, b)
			}
		},
	}, 3)

	gst := store.New[gset.State, gset.Op, gset.Val](gset.Set{}, wire.GSet{}, "main")
	runFJ(t, integration[gset.State, gset.Op, gset.Val]{
		name:  "g-set",
		store: gst,
		randOp: func(r *rand.Rand) gset.Op {
			return gset.Op{Kind: gset.Add, E: int64(r.Intn(40))}
		},
		probeEq: func(t *testing.T, a, b gset.State) {
			if !slices.Equal(a, b) {
				t.Fatalf("g-set replicas diverged: %v vs %v", a, b)
			}
		},
	}, 4)
}

func TestStoreIntegrationORSets(t *testing.T) {
	sst := store.New[orset.SpaceState, orset.Op, orset.Val](orset.OrSetSpace{}, wire.OrSetSpace{}, "main")
	randOp := func(r *rand.Rand) orset.Op {
		e := int64(r.Intn(20))
		if r.Intn(3) == 0 {
			return orset.Op{Kind: orset.Remove, E: e}
		}
		return orset.Op{Kind: orset.Add, E: e}
	}
	runFJ(t, integration[orset.SpaceState, orset.Op, orset.Val]{
		name:   "or-set-space",
		store:  sst,
		randOp: randOp,
		probeEq: func(t *testing.T, a, b orset.SpaceState) {
			if !slices.Equal(a, b) {
				t.Fatalf("or-set-space replicas diverged: %v vs %v", a, b)
			}
		},
	}, 5)

	tst := store.New[orset.TreeState, orset.Op, orset.Val](orset.OrSetSpaceTime{}, wire.OrSetSpaceTime{}, "main")
	runFJ(t, integration[orset.TreeState, orset.Op, orset.Val]{
		name:   "or-set-spacetime",
		store:  tst,
		randOp: randOp,
		probeEq: func(t *testing.T, a, b orset.TreeState) {
			// Convergence modulo observable behaviour: tree shapes may
			// differ, the contents may not.
			if !slices.Equal(orset.Flatten(a), orset.Flatten(b)) {
				t.Fatalf("or-set-spacetime replicas diverged: %v vs %v", orset.Flatten(a), orset.Flatten(b))
			}
			if !orset.ValidAVL(a) || !orset.ValidAVL(b) {
				t.Fatal("replica holds an unbalanced tree")
			}
		},
	}, 6)
}

func TestStoreIntegrationQueue(t *testing.T) {
	st := store.New[queue.State, queue.Op, queue.Val](queue.Queue{}, wire.Queue{}, "main")
	next := int64(0)
	runFJ(t, integration[queue.State, queue.Op, queue.Val]{
		name:  "queue",
		store: st,
		randOp: func(r *rand.Rand) queue.Op {
			if r.Intn(3) == 0 {
				return queue.Op{Kind: queue.Dequeue}
			}
			next++
			return queue.Op{Kind: queue.Enqueue, V: next}
		},
		probeEq: func(t *testing.T, a, b queue.State) {
			as, bs := a.ToSlice(), b.ToSlice()
			if !slices.Equal(as, bs) {
				t.Fatalf("queue replicas diverged: %v vs %v", as, bs)
			}
			for i := 1; i < len(as); i++ {
				if as[i-1].T >= as[i].T {
					t.Fatal("queue not sorted by enqueue timestamp")
				}
			}
		},
	}, 7)
}

func TestStoreIntegrationMLogAndChat(t *testing.T) {
	mst := store.New[mlog.State, mlog.Op, mlog.Val](mlog.Log{}, wire.MLog{}, "main")
	n := 0
	runFJ(t, integration[mlog.State, mlog.Op, mlog.Val]{
		name:  "mlog",
		store: mst,
		randOp: func(r *rand.Rand) mlog.Op {
			n++
			return mlog.Op{Kind: mlog.Append, Msg: fmt.Sprintf("m%d", n)}
		},
		probeEq: func(t *testing.T, a, b mlog.State) {
			if !slices.Equal(a, b) {
				t.Fatalf("log replicas diverged:\n%v\n%v", a, b)
			}
			for i := 1; i < len(a); i++ {
				if a[i-1].T <= a[i].T {
					t.Fatal("log not reverse chronological")
				}
			}
		},
	}, 8)

	cst := store.New[chat.State, chat.Op, chat.Val](chat.Chat{}, wire.Chat{}, "main")
	m := 0
	channels := []string{"#a", "#b", "#c"}
	runFJ(t, integration[chat.State, chat.Op, chat.Val]{
		name:  "chat",
		store: cst,
		randOp: func(r *rand.Rand) chat.Op {
			m++
			return chat.Op{Kind: chat.Send, Ch: channels[r.Intn(len(channels))], Msg: fmt.Sprintf("msg%d", m)}
		},
		probeEq: func(t *testing.T, a, b chat.State) {
			if len(a) != len(b) {
				t.Fatalf("chat replicas diverged: %d vs %d channels", len(a), len(b))
			}
			for i := range a {
				if a[i].K != b[i].K || !slices.Equal(a[i].V, b[i].V) {
					t.Fatalf("chat channel %s diverged", a[i].K)
				}
			}
		},
	}, 9)
}
