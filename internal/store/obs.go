package store

// Store-layer observability: merge and pull latency, LCA walk effort,
// and the hit ratios of the two caches that make deep histories cheap
// (the decoded-state LRU and the one-slot reassembly cache). All
// instruments hang off an optional obs.Registry handed in with WithObs;
// without one s.metrics stays nil and every instrumented site pays a
// single nil check. Instruments are looked up by name, so several
// stores on one node (one per replicated object) share the same series.

import "repro/internal/obs"

type storeMetrics struct {
	pullNs    *obs.Histogram
	mergeNs   *obs.Histogram
	lcaSteps  *obs.Counter
	cacheHit  *obs.Counter
	cacheMiss *obs.Counter
	reasmHit  *obs.Counter
	reasmMiss *obs.Counter
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	m := &storeMetrics{
		pullNs:    reg.Histogram("peepul_store_pull_ns", obs.LatencyBuckets),
		mergeNs:   reg.Histogram("peepul_store_merge_ns", obs.LatencyBuckets),
		lcaSteps:  reg.Counter("peepul_store_lca_steps_total"),
		cacheHit:  reg.Counter("peepul_store_state_cache_total", "result", "hit"),
		cacheMiss: reg.Counter("peepul_store_state_cache_total", "result", "miss"),
		reasmHit:  reg.Counter("peepul_store_reassembly_total", "result", "hit"),
		reasmMiss: reg.Counter("peepul_store_reassembly_total", "result", "miss"),
	}
	reg.Describe("peepul_store_pull_ns", "wall time of one branch pull, merge base to head move")
	reg.Describe("peepul_store_merge_ns", "wall time of one three-way data type merge commit")
	reg.Describe("peepul_store_lca_steps_total", "commits popped by paint-down-to-common LCA walks")
	reg.Describe("peepul_store_state_cache_total", "decoded-state LRU lookups by result")
	reg.Describe("peepul_store_reassembly_total", "pack chain reassemblies short-circuited by the one-slot cache vs walked")
	return m
}
