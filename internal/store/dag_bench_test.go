package store

import (
	"fmt"
	"testing"

	"repro/internal/counter"
)

// DAG-scaling benchmarks: the generation-guided walks must cost
// O(divergence) regardless of history length, where the retained
// reference implementations grow linearly with history. Run with
//
//	go test ./internal/store -bench 'PullDeepHistory|ExclusiveOps|LCA' -benchtime 1x
//
// and compare across history= sub-benchmarks: the fast rows stay flat,
// the Ref rows grow with history.

var benchHistories = []int{100, 1000, 10000}

// deepPair builds a store with history operations on main and a dev
// branch forked at the tip, returning the store.
func deepPair(history int) *Store[int64, counter.Op, counter.Val] {
	s := newInternalCounterStore()
	for i := 0; i < history; i++ {
		if _, err := s.Apply("main", counter.Op{Kind: counter.Inc, N: 1}); err != nil {
			panic(err)
		}
	}
	if err := s.Fork("main", "dev"); err != nil {
		panic(err)
	}
	return s
}

// BenchmarkStorePullDeepHistory measures a constant-size diamond merge —
// one fresh operation on each side, then Sync — on top of histories of
// growing depth. The acceptance bar for the O(divergence) engine is that
// ns/op stays flat (±2×) from history=100 to history=10000.
func BenchmarkStorePullDeepHistory(b *testing.B) {
	for _, history := range benchHistories {
		b.Run(fmt.Sprintf("history=%d", history), func(b *testing.B) {
			b.ReportAllocs()
			s := deepPair(history)
			op := counter.Op{Kind: counter.Inc, N: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Apply("main", op); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Apply("dev", op); err != nil {
					b.Fatal(err)
				}
				if err := s.Sync("main", "dev"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// diamond builds a history-deep chain with a divergence-sized fork pair
// above it and returns (base, headA, headB) for direct walk benchmarks.
func diamond(history, divergence int) (*Store[int64, counter.Op, counter.Val], Hash, Hash, Hash) {
	s := newInternalCounterStore()
	base := commitChain(s, s.heads["main"], history)
	a := commitChain(s, base, divergence)
	b := commitChain(s, base, divergence)
	return s, base, a, b
}

func BenchmarkStoreExclusiveOps(b *testing.B) {
	for _, history := range benchHistories {
		b.Run(fmt.Sprintf("history=%d", history), func(b *testing.B) {
			b.ReportAllocs()
			s, _, x, y := diamond(history, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xo, yo := s.exclusiveOps(x, y)
				if len(xo) != 8 || len(yo) != 8 {
					b.Fatal("diamond sides must each hold their own ops")
				}
			}
		})
	}
}

func BenchmarkStoreExclusiveOpsRef(b *testing.B) {
	for _, history := range benchHistories {
		b.Run(fmt.Sprintf("history=%d", history), func(b *testing.B) {
			b.ReportAllocs()
			s, _, x, y := diamond(history, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xo, yo := s.refExclusiveOps(x, y)
				if len(xo) != 8 || len(yo) != 8 {
					b.Fatal("diamond sides must each hold their own ops")
				}
			}
		})
	}
}

func BenchmarkStoreLCA(b *testing.B) {
	for _, history := range benchHistories {
		b.Run(fmt.Sprintf("history=%d", history), func(b *testing.B) {
			b.ReportAllocs()
			s, _, x, y := diamond(history, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.lca(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreLCARef(b *testing.B) {
	for _, history := range benchHistories {
		b.Run(fmt.Sprintf("history=%d", history), func(b *testing.B) {
			b.ReportAllocs()
			s, _, x, y := diamond(history, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.refLCA(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreLCACrissCross exercises the virtual-base recursion: a
// criss-cross (two maximal common ancestors) sitting on top of a deep
// history. The paint-down walk must still never descend past the fork.
func BenchmarkStoreLCACrissCross(b *testing.B) {
	for _, history := range benchHistories {
		b.Run(fmt.Sprintf("history=%d", history), func(b *testing.B) {
			b.ReportAllocs()
			s := newInternalCounterStore()
			fork := commitChain(s, s.heads["main"], history)
			t1 := commitChain(s, fork, 1)
			t2 := commitChain(s, fork, 2)
			ma := mergeCommit(s, t1, t2, 100)
			mb := mergeCommit(s, t2, t1, 100)
			x := commitChain(s, ma, 1)
			y := commitChain(s, mb, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.lca(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
