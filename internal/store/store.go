// Package store is the Git-like replicated datastore the MRDTs run on —
// the reproduction's substitute for Irmin (§7.1). It keeps versioned,
// content-addressed states in a commit DAG with named branches; operations
// commit new versions, and a branch pulls from another via an MRDT
// three-way merge whose base is the branches' lowest common ancestor.
//
// The store provides exactly the guarantees the paper's semantics assume:
// unique, happens-before-respecting timestamps (Ψ_ts, from internal/clock)
// and a well-defined LCA for every pair of branches (Ψ_lca). Criss-cross
// merge patterns, where the DAG has several maximal common ancestors, are
// handled the way Git's recursive strategy handles them: the candidate
// ancestors are merged into a virtual base commit, which restores the
// "intersection of histories" reading of the LCA.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/recon"
)

// Hash is a content address: the SHA-256 of an encoded object.
type Hash [sha256.Size]byte

// String renders the short form of the hash.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:6]) }

// Codec serializes and deserializes concrete states. Encoding drives
// content addressing and the space-accounting used by the benchmarks;
// decoding lets the store install transferred histories (Import) without
// a side-channel decoder, which is what allows a registry of data types
// to round-trip states uniformly.
type Codec[S any] interface {
	Encode(S) []byte
	Decode([]byte) (S, error)
}

// Options collects the store's tunables; the zero value is never used
// directly — DefaultOptions supplies the defaults and functional Option
// values override them.
type Options struct {
	// FrontierDense is the generation window below the head inside which
	// every ancestor joins the frontier sample, so short divergences cut
	// exactly.
	FrontierDense int
	// FrontierMaxHave caps the sample size: a frontier stays O(1) on the
	// wire no matter how long the history grows. A quarter of the budget
	// is reserved for the sparse power-of-two tail so that dense-window
	// commits on wide DAGs cannot crowd out deep cut points.
	FrontierMaxHave int
	// FrontierWalkBudget caps the commits visited while sampling, bounding
	// the local cost of frontier construction on huge DAGs. Beyond the
	// budget the sample is merely sparser; correctness is unaffected.
	FrontierWalkBudget int
	// SnapshotEvery is the pack layer's snapshot spacing: a state is
	// stored as a full snapshot whenever chaining it would put more than
	// SnapshotEvery-1 patches between it and the nearest snapshot, so no
	// read walks a longer chain. 1 disables packing (every state a
	// snapshot — the pre-pack storage format).
	SnapshotEvery int
	// StateCacheSize bounds the LRU of decoded states: branch heads and
	// recent merge bases stay hot while deep history is re-materialized
	// on demand instead of pinning memory.
	StateCacheSize int
	// Persister, when non-nil, receives every durable mutation (see
	// persist.go). nil keeps the store purely in-memory.
	Persister Persister
	// Obs, when non-nil, receives the store's metrics (merge/pull
	// latency, LCA walk steps, cache hit ratios — see obs.go). nil
	// disables instrumentation; the hot paths then pay one nil check.
	Obs *obs.Registry
	// VerifyOnOpen makes OpenRecovered run VerifyPack — the full
	// chain-forest reassembly and decode of every recovered state object
	// — before handing the store out. Off by default: recovery installs
	// the commit and pack index without touching state bytes (O(live
	// index), flat in history), the CRC framing of the durable log
	// already guards integrity, and materialize re-verifies every chain
	// it reassembles on first read. Tests and crash-injection properties
	// turn it on to fail at open instead of first read.
	VerifyOnOpen bool
}

// DefaultOptions returns the store defaults: frontier sampling dense for
// 16 generations, at most 128 sampled hashes, a 4096-commit walk, a
// snapshot every 32 states, and 128 cached decoded states.
func DefaultOptions() Options {
	return Options{
		FrontierDense:      16,
		FrontierMaxHave:    128,
		FrontierWalkBudget: 4096,
		SnapshotEvery:      32,
		StateCacheSize:     128,
	}
}

// Option adjusts store construction.
type Option func(*Options)

// WithFrontierDense sets the dense generation window of frontier
// sampling. Values below zero are clamped to zero.
func WithFrontierDense(n int) Option {
	return func(o *Options) { o.FrontierDense = max(n, 0) }
}

// WithFrontierMaxHave caps the frontier sample size. Values below one are
// clamped to one so a frontier always advertises at least one ancestor.
func WithFrontierMaxHave(n int) Option {
	return func(o *Options) { o.FrontierMaxHave = max(n, 1) }
}

// WithFrontierWalkBudget caps the sampling walk. Values below one are
// clamped to one.
func WithFrontierWalkBudget(n int) Option {
	return func(o *Options) { o.FrontierWalkBudget = max(n, 1) }
}

// WithSnapshotEvery sets the pack layer's snapshot spacing — the maximum
// delta-chain length between a state and the snapshot it reassembles
// from. Smaller values trade resident bytes for cheaper cold reads; 1
// stores every state as a full snapshot. Values below one are clamped to
// one.
func WithSnapshotEvery(n int) Option {
	return func(o *Options) { o.SnapshotEvery = max(n, 1) }
}

// WithStateCacheSize bounds the store's LRU of decoded states. Values
// below one are clamped to one so the hot head state is always cached.
func WithStateCacheSize(n int) Option {
	return func(o *Options) { o.StateCacheSize = max(n, 1) }
}

// WithVerifyOnOpen controls whether OpenRecovered runs VerifyPack on the
// recovered state (default false — lazy open; see Options.VerifyOnOpen).
func WithVerifyOnOpen(v bool) Option {
	return func(o *Options) { o.VerifyOnOpen = v }
}

// WithPersister attaches a durable log (e.g. internal/disk's segmented
// pack log) to the store: every commit, pack object and branch move is
// appended to it, and GC compacts it. Stores opened over a recovered log
// use OpenRecovered so history survives restarts.
func WithPersister(p Persister) Option {
	return func(o *Options) { o.Persister = p }
}

// WithObs attaches an observability registry: the store registers its
// latency histograms, LCA walk counter and cache hit-ratio counters on
// it. A nil registry keeps instrumentation disabled.
func WithObs(reg *obs.Registry) Option {
	return func(o *Options) { o.Obs = reg }
}

// Commit is one version in the DAG.
type Commit struct {
	// Parents are the commit's parents: none for the root, one for an
	// operation commit, two for a merge commit.
	Parents []Hash
	// State addresses the encoded state this commit pins.
	State Hash
	// Gen is the commit's generation number: 1 + max parent generation.
	Gen int
	// Time is the timestamp of the operation that created the commit (the
	// merge point's clock for merge commits).
	Time core.Timestamp
}

// Errors returned by the store.
var (
	ErrNoBranch     = errors.New("store: unknown branch")
	ErrBranchExists = errors.New("store: branch already exists")

	// ErrLastBranch is returned by DeleteBranch when asked to remove the
	// only remaining branch.
	ErrLastBranch = errors.New("store: cannot delete the last branch")
)

// Store is a single-object replicated datastore for one MRDT. It is safe
// for concurrent use and read-parallel: queries (Head, HeadHash, Size,
// Branches, Frontier, Export, ExportSince, Commit, NumCommits) take a
// shared read lock and run concurrently with each other, while mutations
// (Apply, Pull, Sync, Fork, Import, GC, DeleteBranch) serialize behind
// the write lock. Each branch carries its own Lamport clock, modelling
// one replica per branch.
type Store[S, Op, Val any] struct {
	mu      sync.RWMutex
	impl    core.MRDT[S, Op, Val]
	codec   Codec[S]
	opts    Options
	objects map[Hash]*packObject
	// frozen is a checkpoint's object index kept in serialized form
	// (frozen.go): entries not shadowed by the objects map resolve
	// through it by binary search and materialize lazily. nil except
	// after a checkpoint recovery; GC thaws and drops it.
	frozen  *FrozenIndex
	cache   *stateCache[S]
	commits map[Hash]Commit
	heads   map[string]Hash
	clocks  map[string]*clock.Clock
	nextID  int
	// rtree mirrors the commit-hash set for range-fingerprint set
	// reconciliation (recon.go). Built lazily on the first recon query —
	// so open time stays flat in history — and kept exact by putCommit
	// and GC from then on.
	rtree *recon.Tree
	// installLogs records every commit putCommit newly installs, one
	// log per live capture token (BeginInstallCapture /
	// EndInstallCapture); installSeq mints the tokens.
	installLogs map[int][]Hash
	installSeq  int
	// persistErr is the sticky persistence failure (persist.go): once a
	// Persister call fails, every later mutation reports it.
	persistErr error
	// metrics is the optional instrumentation (obs.go); nil when no
	// registry was attached.
	metrics *storeMetrics

	// One-slot reassembly cache (pack.go); own lock so readers holding
	// mu.RLock can refresh it.
	encMu   sync.Mutex
	encHash Hash
	encBuf  []byte
}

// New creates a store for impl with a single branch named main, holding
// the initial state. Branch clocks draw replica ids starting at 0; a
// process running several stores of the same object (e.g. one per network
// replica) must give each store a distinct id range via NewAt so that
// timestamps stay globally unique.
func New[S, Op, Val any](impl core.MRDT[S, Op, Val], codec Codec[S], main string, opts ...Option) *Store[S, Op, Val] {
	return NewAt(impl, codec, main, 0, opts...)
}

// NewAt is New with an explicit replica-id base for the store's branch
// clocks: branch k created in this store uses replica id replicaBase+k.
// It panics if initialization fails, which can only happen when a
// Persister rejects the initial records — persistent stores are opened
// with OpenRecovered, whose error return covers that path.
func NewAt[S, Op, Val any](impl core.MRDT[S, Op, Val], codec Codec[S], main string, replicaBase int, opts ...Option) *Store[S, Op, Val] {
	s, err := OpenRecovered(impl, codec, main, replicaBase, nil, opts...)
	if err != nil {
		panic(fmt.Sprintf("store: NewAt: %v", err))
	}
	return s
}

// Branches returns the branch names, sorted.
func (s *Store[S, Op, Val]) Branches() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.heads))
	for b := range s.heads {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Fork creates branch name from the current head of src (the
// CREATEBRANCH rule).
func (s *Store[S, Op, Val]) Fork(src, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.heads[src]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoBranch, src)
	}
	if _, dup := s.heads[name]; dup {
		return fmt.Errorf("%w: %s", ErrBranchExists, name)
	}
	if s.nextID > clock.MaxReplica {
		return fmt.Errorf("store: replica id space exhausted")
	}
	s.heads[name] = h
	c, err := clock.New(s.nextID)
	if err != nil {
		return err
	}
	// The new replica's clock must dominate everything it has seen.
	c.Observe(clock.Pack(s.clocks[src].Now(), 0))
	s.clocks[name] = c
	s.nextID++
	s.persistBranchLocked(name)
	s.persistNextIDLocked()
	return s.finishPersistLocked()
}

// Apply performs op on branch b (the DO rule) and commits the resulting
// state. It returns the operation's value.
func (s *Store[S, Op, Val]) Apply(b string, op Op) (Val, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero Val
	head, ok := s.heads[b]
	if !ok {
		return zero, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	hc := s.commitAtLocked(head)
	cur, err := s.stateLocked(hc.State)
	if err != nil {
		return zero, err
	}
	t := s.clocks[b].Tick()
	next, val := s.impl.Do(op, cur, t)
	st := s.putState(next, hc.State)
	s.heads[b] = s.putCommit(Commit{
		Parents: []Hash{head},
		State:   st,
		Gen:     hc.Gen + 1,
		Time:    t,
	})
	s.persistBranchLocked(b)
	if err := s.finishPersistLocked(); err != nil {
		return zero, err
	}
	return val, nil
}

// Head returns the current state of branch b.
func (s *Store[S, Op, Val]) Head(b string) (S, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var zero S
	head, ok := s.heads[b]
	if !ok {
		return zero, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	return s.stateLocked(s.commitAtLocked(head).State)
}

// HeadHash returns the commit hash at the head of branch b.
func (s *Store[S, Op, Val]) HeadHash(b string) (Hash, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	head, ok := s.heads[b]
	if !ok {
		return Hash{}, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	return head, nil
}

// Size returns the encoded size in bytes of branch b's state — the space
// metric reported by Figure 15.
func (s *Store[S, Op, Val]) Size(b string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	head, ok := s.heads[b]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoBranch, b)
	}
	obj, _ := s.objLocked(s.commitAtLocked(head).State)
	return obj.size, nil
}

// Pull merges branch src into branch dst (the MERGE rule). Degenerate
// cases avoid the data type merge entirely:
//
//   - If the merge base is src's head, dst already has everything: the
//     pull is a no-op. When the two heads carry identical operation sets
//     under different merge commits — replicas that absorbed the same
//     operations through different exchanges — the pull instead elects
//     the smaller head hash as the canonical commit, so gossiping
//     replicas converge to one head, not just one state.
//   - If the merge base is dst's head, the pull fast-forwards by
//     adopting src's head commit. Likewise when dst's exclusive commits
//     are all merges (merges create no operations): adopting src's head
//     loses nothing, and declining to mint a fresh merge commit is what
//     lets repeated gossip rounds terminate instead of chasing each
//     other's heads forever.
//
// Otherwise a three-way merge of the two heads over their merge base is
// committed with both heads as parents. The base handed to the data type
// merge is the join of every maximal common ancestor (see lca), so its
// operation set is exactly the intersection of the heads' — the Ψ_lca
// property the data type merges are verified against holds by
// construction, for any divergence shape arbitrary-order gossip
// produces. dst's clock observes src's so that later operations on dst
// carry larger timestamps than everything merged in.
func (s *Store[S, Op, Val]) Pull(dst, src string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.pullLocked(dst, src); err != nil {
		return err
	}
	return s.finishPersistLocked()
}

// PullCaptured is Pull returning the hashes of the commits the pull
// minted (the merge commits a reconciliation reply must ship on top of
// the peer's want list). Like ImportCaptured, the record is cut inside
// the pull's own critical section, immune to concurrent Applies.
func (s *Store[S, Op, Val]) PullCaptured(dst, src string) ([]Hash, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tok := s.beginInstallCaptureLocked()
	err := s.pullLocked(dst, src)
	minted := s.endInstallCaptureLocked(tok)
	if err != nil {
		return minted, err
	}
	return minted, s.finishPersistLocked()
}

func (s *Store[S, Op, Val]) pullLocked(dst, src string) error {
	if m := s.metrics; m != nil {
		start := time.Now()
		defer func() { m.pullNs.Observe(time.Since(start).Nanoseconds()) }()
	}
	hs, ok := s.heads[src]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoBranch, src)
	}
	hd, ok := s.heads[dst]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoBranch, dst)
	}
	if hd == hs {
		return nil // already identical
	}
	base, err := s.lca(hd, hs)
	if err != nil {
		return err
	}
	if base == hs {
		return nil // src is behind dst: nothing to pull
	}
	s.clocks[dst].Observe(clock.Pack(s.clocks[src].Now(), 0))
	if base == hd {
		// Fast-forward: dst has no exclusive history; adopting src's
		// head commit is exact and keeps the DAG transparent for
		// future LCAs.
		s.heads[dst] = hs
		s.persistBranchLocked(dst)
		return nil
	}
	// Heads that differ without differing in operations are convergence
	// bookkeeping, not merges: minting a merge commit for them would
	// move the heads forever without bringing them together.
	dstOps, srcOps := s.exclusiveOps(hd, hs)
	if len(srcOps) == 0 {
		if len(dstOps) == 0 && bytes.Compare(hs[:], hd[:]) < 0 {
			// Identical operation sets under different merge commits:
			// elect the smaller hash as the canonical head, so every
			// replica converges to one commit, not just one state.
			s.heads[dst] = hs
			s.persistBranchLocked(dst)
		}
		return nil // src has no operations dst lacks
	}
	if len(dstOps) == 0 {
		// Semantic fast-forward: src's head carries every operation
		// dst has (dst's exclusive commits are merges, which create
		// no events), so adopting it loses nothing.
		s.heads[dst] = hs
		s.persistBranchLocked(dst)
		return nil
	}
	return s.mergeHeadsLocked(dst, hd, hs, base)
}

// mergeHeadsLocked commits the three-way merge of dst's head hd with
// commit other over base, and advances dst to the merge commit. The
// caller has already observed the source clock.
func (s *Store[S, Op, Val]) mergeHeadsLocked(dst string, hd, other, base Hash) error {
	if m := s.metrics; m != nil {
		start := time.Now()
		defer func() { m.mergeNs.Observe(time.Since(start).Nanoseconds()) }()
	}
	dc, oc := s.commitAtLocked(hd), s.commitAtLocked(other)
	baseState, err := s.stateLocked(s.commitAtLocked(base).State)
	if err != nil {
		return err
	}
	dstState, err := s.stateLocked(dc.State)
	if err != nil {
		return err
	}
	otherState, err := s.stateLocked(oc.State)
	if err != nil {
		return err
	}
	merged := s.impl.Merge(baseState, dstState, otherState)
	// The merge commit's timestamp must dominate its whole ancestry;
	// the absorbed head's own timestamp bounds everything it carries.
	s.clocks[dst].Observe(oc.Time)
	t := s.clocks[dst].Tick()
	gen := dc.Gen
	if oc.Gen > gen {
		gen = oc.Gen
	}
	// The merge commit's first parent is dst's head: the pack layer
	// chains the merged state against it, and packed exports ship that
	// patch to peers that hold the parent.
	st := s.putState(merged, dc.State)
	s.heads[dst] = s.putCommit(Commit{
		Parents: []Hash{hd, other},
		State:   st,
		Gen:     gen + 1,
		Time:    t,
	})
	s.persistBranchLocked(dst)
	return nil
}

// Sync converges two branches atomically: a pulls b (a three-way merge
// over their merge base), then b adopts the result — no operation can
// interleave between the two pulls, so the second leg is always a
// fast-forward or election, never a second data type merge. After Sync
// the two branches hold equal heads.
func (s *Store[S, Op, Val]) Sync(a, b string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.pullLocked(a, b); err != nil {
		return err
	}
	if err := s.pullLocked(b, a); err != nil {
		return err
	}
	return s.finishPersistLocked()
}

// Commit returns the commit object at hash h.
func (s *Store[S, Op, Val]) Commit(h Hash) (Commit, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commitLocked(h)
}

// putState packs state, chained against the base state hash (its commit
// parent's state; zero for the root), and returns its content address.
func (s *Store[S, Op, Val]) putState(state S, base Hash) Hash {
	enc := s.codec.Encode(state)
	h := sha256.Sum256(enc)
	s.cache.put(h, state)
	s.packLocked(h, enc, base, nil)
	return h
}

func (s *Store[S, Op, Val]) putCommit(c Commit) Hash {
	// A commit's preimage is at most 3 hashes (two parents + state) and
	// two fixed-width integers; seeding the appends from a stack array
	// keeps the hot Apply path free of a per-commit heap allocation.
	var arr [3*sha256.Size + 16]byte
	buf := arr[:0]
	for _, p := range c.Parents {
		buf = append(buf, p[:]...)
	}
	buf = append(buf, c.State[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.Gen))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.Time))
	h := sha256.Sum256(buf)
	if s.commitExistsLocked(h) {
		return h // already present: content addressing makes it identical
	}
	s.commits[h] = c
	if s.rtree != nil {
		s.rtree.Add(recon.MakeItem(uint64(c.Gen), h))
	}
	for tok := range s.installLogs {
		s.installLogs[tok] = append(s.installLogs[tok], h)
	}
	s.persistCommitLocked(h, c)
	return h
}
