package store

import (
	"bytes"
	"errors"
	"sort"
)

// ErrNoCommonAncestor is returned when two commits share no ancestor; it
// cannot happen for commits created through the store's API (every branch
// descends from the root), and indicates corruption.
var ErrNoCommonAncestor = errors.New("store: no common ancestor")

// lca returns the merge base for two commits: the unique maximal common
// ancestor when there is one, or — in criss-cross histories with several
// maximal common ancestors — a virtual commit produced by recursively
// merging the candidates, as in Git's recursive merge strategy. The
// virtual commit is recorded in the DAG (but on no branch), so nested
// criss-crosses terminate.
//
// The returned base is what makes every pull satisfy Ψ_lca: a commit
// reachable from both heads is a common ancestor, every common ancestor
// is dominated by a maximal one, and the fold joins all maximal ones —
// so the base's operation set is exactly the intersection of the heads'
// operation sets. The data type merges are verified against precisely
// that property (the base carries the common information, no more, no
// less), so any pair of heads may be merged over it, whatever order
// gossip delivered their histories in.
func (s *Store[S, Op, Val]) lca(a, b Hash) (Hash, error) {
	return s.foldBases(s.maximalCommonAncestors(a, b), s.lca)
}

// foldBases reduces a candidate merge-base set to a single base,
// recursively merging pairs into virtual commits via rec (the LCA
// function folding — fast or reference — so each keeps its own
// recursion). Candidates are folded in hash order: content addressing
// then makes both implementations materialize bit-identical virtual
// commits, which is what lets the property tests compare them.
func (s *Store[S, Op, Val]) foldBases(cands []Hash, rec func(a, b Hash) (Hash, error)) (Hash, error) {
	switch len(cands) {
	case 0:
		return Hash{}, ErrNoCommonAncestor
	case 1:
		return cands[0], nil
	}
	sort.Slice(cands, func(i, j int) bool {
		return bytes.Compare(cands[i][:], cands[j][:]) < 0
	})
	base := cands[0]
	for _, next := range cands[1:] {
		vbase, err := rec(base, next)
		if err != nil {
			return Hash{}, err
		}
		baseCommit, nextCommit := s.commitAtLocked(base), s.commitAtLocked(next)
		vbaseState, err := s.stateLocked(s.commitAtLocked(vbase).State)
		if err != nil {
			return Hash{}, err
		}
		baseState, err := s.stateLocked(baseCommit.State)
		if err != nil {
			return Hash{}, err
		}
		nextState, err := s.stateLocked(nextCommit.State)
		if err != nil {
			return Hash{}, err
		}
		merged := s.impl.Merge(vbaseState, baseState, nextState)
		gen := baseCommit.Gen
		if nextCommit.Gen > gen {
			gen = nextCommit.Gen
		}
		st := s.putState(merged, baseCommit.State)
		base = s.putCommit(Commit{
			Parents: []Hash{base, next},
			State:   st,
			Gen:     gen + 1,
		})
	}
	return base, nil
}

// maximalCommonAncestors returns the common ancestors of a and b that are
// not ancestors of another common ancestor. Commits count as their own
// ancestors, so a fast-forward situation (a an ancestor of b) yields a.
//
// This is Git's paint-down-to-common walk guided by generation numbers:
// commits are colored flagP1/flagP2 as the walk descends from the two
// tips in decreasing generation order, a commit reached by both colors is
// a common ancestor and poisons its own ancestry flagStale, and the walk
// stops once every queued commit is stale — it never descends past the
// merge base's generation band, so the cost is bounded by the divergence
// region rather than total history. Generation order makes flags final at
// pop time, so unlike Git (which orders by fallible commit dates) no
// post-pass over the candidates is needed: a dominated common ancestor is
// always painted stale before it is popped.
func (s *Store[S, Op, Val]) maximalCommonAncestors(a, b Hash) []Hash {
	if a == b {
		return []Hash{a}
	}
	p := newPainter(s.commitAtLocked, flagStale)
	p.add(a, flagP1)
	p.add(b, flagP2)
	var maximal []Hash
	steps := 0
	for p.active() {
		h, f := p.pop()
		steps++
		if f&flagStale == 0 && f&(flagP1|flagP2) == flagP1|flagP2 {
			maximal = append(maximal, h)
			f |= flagStale
		}
		for _, par := range s.commitAtLocked(h).Parents {
			p.add(par, f)
		}
	}
	if m := s.metrics; m != nil {
		m.lcaSteps.Add(int64(steps))
	}
	return maximal
}

// exclusiveOps partitions the operation commits of the divergence region
// of a and b: those reachable only from a and those reachable only from
// b. Operation commits reachable from both are shared history and
// reported by neither side; merge commits create no events and are never
// reported. The walk is the merge-base paint (generation-ordered, common
// ancestry goes stale), so both slices come back in non-increasing
// generation order and the cost is O(divergence).
func (s *Store[S, Op, Val]) exclusiveOps(a, b Hash) (aOps, bOps []Hash) {
	p := newPainter(s.commitAtLocked, flagStale)
	p.add(a, flagP1)
	p.add(b, flagP2)
	steps := 0
	for p.active() {
		h, f := p.pop()
		steps++
		c := s.commitAtLocked(h)
		if f&flagStale == 0 && f&(flagP1|flagP2) == flagP1|flagP2 {
			f |= flagStale
		}
		if f&flagStale == 0 && len(c.Parents) == 1 {
			if f&flagP1 != 0 {
				aOps = append(aOps, h)
			} else {
				bOps = append(bOps, h)
			}
		}
		for _, par := range c.Parents {
			p.add(par, f)
		}
	}
	if m := s.metrics; m != nil {
		m.lcaSteps.Add(int64(steps))
	}
	return aOps, bOps
}
