package store

import (
	"bytes"
	"errors"
	"sort"
)

// ErrNoCommonAncestor is returned when two commits share no ancestor; it
// cannot happen for commits created through the store's API (every branch
// descends from the root), and indicates corruption.
var ErrNoCommonAncestor = errors.New("store: no common ancestor")

// lca returns the merge base for two commits: the unique maximal common
// ancestor when there is one, or — in criss-cross histories with several
// maximal common ancestors — a virtual commit produced by recursively
// merging the candidates, as in Git's recursive merge strategy. The
// virtual commit is recorded in the DAG (but on no branch), so nested
// criss-crosses terminate.
func (s *Store[S, Op, Val]) lca(a, b Hash) (Hash, error) {
	return s.foldBases(s.maximalCommonAncestors(a, b), s.lca)
}

// foldBases reduces a candidate merge-base set to a single base,
// recursively merging pairs into virtual commits via rec (the LCA
// function folding — fast or reference — so each keeps its own
// recursion). Candidates are folded in hash order: content addressing
// then makes both implementations materialize bit-identical virtual
// commits, which is what lets the property tests compare them.
func (s *Store[S, Op, Val]) foldBases(cands []Hash, rec func(a, b Hash) (Hash, error)) (Hash, error) {
	switch len(cands) {
	case 0:
		return Hash{}, ErrNoCommonAncestor
	case 1:
		return cands[0], nil
	}
	sort.Slice(cands, func(i, j int) bool {
		return bytes.Compare(cands[i][:], cands[j][:]) < 0
	})
	base := cands[0]
	for _, next := range cands[1:] {
		vbase, err := rec(base, next)
		if err != nil {
			return Hash{}, err
		}
		baseCommit, nextCommit := s.commitAtLocked(base), s.commitAtLocked(next)
		vbaseState, err := s.stateLocked(s.commitAtLocked(vbase).State)
		if err != nil {
			return Hash{}, err
		}
		baseState, err := s.stateLocked(baseCommit.State)
		if err != nil {
			return Hash{}, err
		}
		nextState, err := s.stateLocked(nextCommit.State)
		if err != nil {
			return Hash{}, err
		}
		merged := s.impl.Merge(vbaseState, baseState, nextState)
		gen := baseCommit.Gen
		if nextCommit.Gen > gen {
			gen = nextCommit.Gen
		}
		st := s.putState(merged, baseCommit.State)
		base = s.putCommit(Commit{
			Parents: []Hash{base, next},
			State:   st,
			Gen:     gen + 1,
		})
	}
	return base, nil
}

// maximalCommonAncestors returns the common ancestors of a and b that are
// not ancestors of another common ancestor. Commits count as their own
// ancestors, so a fast-forward situation (a an ancestor of b) yields a.
//
// This is Git's paint-down-to-common walk guided by generation numbers:
// commits are colored flagP1/flagP2 as the walk descends from the two
// tips in decreasing generation order, a commit reached by both colors is
// a common ancestor and poisons its own ancestry flagStale, and the walk
// stops once every queued commit is stale — it never descends past the
// merge base's generation band, so the cost is bounded by the divergence
// region rather than total history. Generation order makes flags final at
// pop time, so unlike Git (which orders by fallible commit dates) no
// post-pass over the candidates is needed: a dominated common ancestor is
// always painted stale before it is popped.
func (s *Store[S, Op, Val]) maximalCommonAncestors(a, b Hash) []Hash {
	if a == b {
		return []Hash{a}
	}
	p := newPainter(s.commitAtLocked, flagStale)
	p.add(a, flagP1)
	p.add(b, flagP2)
	var maximal []Hash
	for p.active() {
		h, f := p.pop()
		if f&flagStale == 0 && f&(flagP1|flagP2) == flagP1|flagP2 {
			maximal = append(maximal, h)
			f |= flagStale
		}
		for _, par := range s.commitAtLocked(h).Parents {
			p.add(par, f)
		}
	}
	return maximal
}

// soundBase reports whether the three-way merge of heads a and b over
// base satisfies Ψ_lca on the commit DAG: every operation commit reachable
// from either head but not from the base must descend from the base.
// Operation commits are the only event creators, so this is exactly "every
// event outside the LCA observed every event in the LCA".
//
// One two-color walk decides this: flagBase paints the base's ancestry,
// flagHead paints the heads' reachability, both descending in generation
// order so flags are final at pop time. A commit popped with flagBase is
// inside the base's history and exempt, and so is everything beneath it;
// the walk stops when only such commits remain queued. A commit popped
// with flagHead alone is in the merge region proper, and if it is an
// operation commit it must descend from the base — checked by a memoized
// descent search that never expands commits at or below the base's
// generation (an ancestor's generation is strictly smaller, so such
// commits cannot reach the base going down). Total cost is O(region),
// not O(n²).
func (s *Store[S, Op, Val]) soundBase(base, a, b Hash) bool {
	baseGen := s.commitAtLocked(base).Gen
	p := newPainter(s.commitAtLocked, flagBase)
	p.add(base, flagBase)
	p.add(a, flagHead)
	p.add(b, flagHead)
	memo := make(map[Hash]bool)
	for p.active() {
		h, f := p.pop()
		parents := s.commitAtLocked(h).Parents
		if f&flagBase != 0 {
			// Inside the base's history: exempt, and everything below is
			// too, so only the base color continues downward.
			f = flagBase
		} else if len(parents) == 1 && !s.descendsWithin(h, base, baseGen, memo) {
			return false
		}
		for _, par := range parents {
			p.add(par, f)
		}
	}
	return true
}

// descendsWithin reports whether base is an ancestor of h, exploring only
// commits above base's generation (ancestors have strictly smaller
// generations, so anything at or below baseGen other than base itself
// cannot reach it). memo is shared across the queries of one soundBase
// call, so the merge region is traversed once overall. The walk is
// iterative; region depth does not grow the stack.
func (s *Store[S, Op, Val]) descendsWithin(h, base Hash, baseGen int, memo map[Hash]bool) bool {
	decided := func(x Hash) (verdict, known bool) {
		if x == base {
			return true, true
		}
		if s.commitAtLocked(x).Gen <= baseGen {
			return false, true
		}
		v, ok := memo[x]
		return v, ok
	}
	if v, ok := decided(h); ok {
		return v
	}
	stack := []Hash{h}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		if _, ok := decided(cur); ok {
			stack = stack[:len(stack)-1]
			continue
		}
		settled, verdict := true, false
		for _, par := range s.commitAtLocked(cur).Parents {
			v, ok := decided(par)
			if !ok {
				stack = append(stack, par)
				settled = false
				break
			}
			if v {
				verdict = true
				break
			}
		}
		if settled {
			memo[cur] = verdict
			stack = stack[:len(stack)-1]
		}
	}
	return memo[h]
}
