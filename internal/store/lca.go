package store

import "errors"

// ErrNoCommonAncestor is returned when two commits share no ancestor; it
// cannot happen for commits created through the store's API (every branch
// descends from the root), and indicates corruption.
var ErrNoCommonAncestor = errors.New("store: no common ancestor")

// lca returns the merge base for two commits: the unique maximal common
// ancestor when there is one, or — in criss-cross histories with several
// maximal common ancestors — a virtual commit produced by recursively
// merging the candidates, as in Git's recursive merge strategy. The
// virtual commit is recorded in the DAG (but on no branch), so nested
// criss-crosses terminate.
func (s *Store[S, Op, Val]) lca(a, b Hash) (Hash, error) {
	cands := s.maximalCommonAncestors(a, b)
	switch len(cands) {
	case 0:
		return Hash{}, ErrNoCommonAncestor
	case 1:
		return cands[0], nil
	}
	// Recursive strategy: fold the candidates into one virtual base.
	base := cands[0]
	for _, next := range cands[1:] {
		vbase, err := s.lca(base, next)
		if err != nil {
			return Hash{}, err
		}
		merged := s.impl.Merge(
			s.states[s.commits[vbase].State],
			s.states[s.commits[base].State],
			s.states[s.commits[next].State],
		)
		gen := s.commits[base].Gen
		if g := s.commits[next].Gen; g > gen {
			gen = g
		}
		st := s.putState(merged)
		base = s.putCommit(Commit{
			Parents: []Hash{base, next},
			State:   st,
			Gen:     gen + 1,
		})
	}
	return base, nil
}

// maximalCommonAncestors returns the common ancestors of a and b that are
// not ancestors of another common ancestor. Commits count as their own
// ancestors, so a fast-forward situation (a an ancestor of b) yields a.
func (s *Store[S, Op, Val]) maximalCommonAncestors(a, b Hash) []Hash {
	aAnc := s.ancestors(a)
	bAnc := s.ancestors(b)
	var common []Hash
	for h := range aAnc {
		if bAnc[h] {
			common = append(common, h)
		}
	}
	// A common ancestor is maximal if no *other* common ancestor descends
	// from it. Sort candidates by generation descending and sweep: anything
	// reachable from an already-kept candidate is dominated.
	inCommon := make(map[Hash]bool, len(common))
	for _, h := range common {
		inCommon[h] = true
	}
	var maximal []Hash
	dominated := make(map[Hash]bool)
	// Process highest generation first.
	for len(common) > 1 {
		best := -1
		var bestH Hash
		for _, h := range common {
			if g := s.commits[h].Gen; g > best {
				best, bestH = g, h
			}
		}
		next := common[:0]
		for _, h := range common {
			if h != bestH {
				next = append(next, h)
			}
		}
		common = next
		if dominated[bestH] {
			continue
		}
		maximal = append(maximal, bestH)
		for h := range s.ancestors(bestH) {
			if h != bestH && inCommon[h] {
				dominated[h] = true
			}
		}
	}
	for _, h := range common {
		if !dominated[h] {
			maximal = append(maximal, h)
		}
	}
	return maximal
}

// soundBase reports whether the three-way merge of heads a and b over
// base satisfies Ψ_lca on the commit DAG: every operation commit reachable
// from either head but not from the base must descend from the base.
// Operation commits are the only event creators, so this is exactly "every
// event outside the LCA observed every event in the LCA".
func (s *Store[S, Op, Val]) soundBase(base, a, b Hash) bool {
	baseAnc := s.ancestors(base)
	for h := range s.ancestors(a) {
		if !s.opDescendsFromBase(h, base, baseAnc) {
			return false
		}
	}
	for h := range s.ancestors(b) {
		if !s.opDescendsFromBase(h, base, baseAnc) {
			return false
		}
	}
	return true
}

func (s *Store[S, Op, Val]) opDescendsFromBase(h, base Hash, baseAnc map[Hash]bool) bool {
	if baseAnc[h] {
		return true // inside the base's history
	}
	c := s.commits[h]
	if len(c.Parents) != 1 {
		return true // root or merge commit: creates no event
	}
	return s.ancestors(h)[base]
}

// ancestors returns the set of commits reachable from h, including h.
func (s *Store[S, Op, Val]) ancestors(h Hash) map[Hash]bool {
	seen := map[Hash]bool{h: true}
	stack := []Hash{h}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range s.commits[cur].Parents {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}
