package store_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/mlog"
	"repro/internal/store"
	"repro/internal/wire"
)

// Pack-layer tests run on the mergeable log: its state grows with every
// append, so delta chains actually form (an 8-byte counter state is
// smaller than any patch and always stores as a snapshot).

func logStore(opts ...store.Option) *store.Store[mlog.State, mlog.Op, mlog.Val] {
	return store.New[mlog.State, mlog.Op, mlog.Val](mlog.Log{}, wire.MLog{}, "main", opts...)
}

func appendN(t *testing.T, s *store.Store[mlog.State, mlog.Op, mlog.Val], b string, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Apply(b, mlog.Op{Kind: mlog.Append, Msg: fmt.Sprintf("%s-%04d", tag, i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPackSnapshotSpacing(t *testing.T) {
	s := logStore(store.WithSnapshotEvery(8))
	appendN(t, s, "main", 100, "op")

	ps := s.PackStats()
	if ps.Deltas == 0 {
		t.Fatal("no delta objects formed on a growing log")
	}
	if ps.MaxDepth >= 8 {
		t.Fatalf("MaxDepth = %d, want < SnapshotEvery (8)", ps.MaxDepth)
	}
	if ps.PackedBytes >= ps.FullBytes {
		t.Fatalf("packed bytes %d not below full bytes %d", ps.PackedBytes, ps.FullBytes)
	}
	// Roughly one snapshot per 8 states (plus the root); the exact count
	// depends on patch-vs-encoding size races early in the history.
	if ps.Snapshots > ps.Objects/4 {
		t.Fatalf("%d snapshots of %d objects — spacing is not bounding snapshots", ps.Snapshots, ps.Objects)
	}
	if err := s.VerifyPack(); err != nil {
		t.Fatal(err)
	}
	st, err := s.Head("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 100 {
		t.Fatalf("head log has %d entries, want 100", len(st))
	}
}

func TestPackSnapshotEveryOneIsLegacyFormat(t *testing.T) {
	s := logStore(store.WithSnapshotEvery(1))
	appendN(t, s, "main", 40, "op")
	ps := s.PackStats()
	if ps.Deltas != 0 {
		t.Fatalf("SnapshotEvery(1) stored %d deltas, want none", ps.Deltas)
	}
	if ps.PackedBytes != ps.FullBytes {
		t.Fatalf("unpacked store: packed %d != full %d", ps.PackedBytes, ps.FullBytes)
	}
}

func TestPackColdReadThroughTinyCache(t *testing.T) {
	// A one-entry state cache forces every branch switch through
	// materialize: chains must reassemble and verify on every read.
	s := logStore(store.WithSnapshotEvery(8), store.WithStateCacheSize(1))
	appendN(t, s, "main", 5, "base")
	if err := s.Fork("main", "old"); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, "main", 80, "deep")
	for i := 0; i < 3; i++ {
		old, err := s.Head("old")
		if err != nil {
			t.Fatal(err)
		}
		if len(old) != 5 {
			t.Fatalf("old branch has %d entries, want 5", len(old))
		}
		cur, err := s.Head("main")
		if err != nil {
			t.Fatal(err)
		}
		if len(cur) != 85 {
			t.Fatalf("main has %d entries, want 85", len(cur))
		}
	}
}

func TestPackedExportImportRoundTrip(t *testing.T) {
	s := logStore(store.WithSnapshotEvery(8))
	appendN(t, s, "main", 30, "a")
	if err := s.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, "main", 10, "b")
	appendN(t, s, "dev", 10, "c")
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}

	commits, head, err := s.ExportSincePacked("main", nil)
	if err != nil {
		t.Fatal(err)
	}
	patches, fulls := 0, 0
	for _, c := range commits {
		switch {
		case c.Patch != nil && c.State != nil:
			t.Fatal("commit carries both state and patch")
		case c.Patch != nil:
			patches++
		default:
			fulls++
		}
	}
	if patches == 0 {
		t.Fatal("packed export shipped no patches")
	}
	if fulls == 0 {
		t.Fatal("packed export shipped no snapshots (root must be full)")
	}

	dst := store.NewAt[mlog.State, mlog.Op, mlog.Val](mlog.Log{}, wire.MLog{}, "local", 64,
		store.WithSnapshotEvery(8))
	if err := dst.Import("remote/main", commits, head); err != nil {
		t.Fatal(err)
	}
	want, _ := s.Head("main")
	got, err := dst.Head("remote/main")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("imported head has %d entries, want %d", len(got), len(want))
	}
	// The packed transfer must leave the receiver packed too.
	if ps := dst.PackStats(); ps.Deltas == 0 {
		t.Fatal("imported store retains no deltas")
	}
	if err := dst.VerifyPack(); err != nil {
		t.Fatal(err)
	}
}

func TestPackedExportSinceGraftsOntoHaves(t *testing.T) {
	// A converged peer re-syncing: the export is cut at the frontier, and
	// patched commits rebase onto commits the peer already holds.
	src := logStore(store.WithSnapshotEvery(8))
	appendN(t, src, "main", 40, "shared")
	commits, head, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	dst := store.NewAt[mlog.State, mlog.Op, mlog.Val](mlog.Log{}, wire.MLog{}, "local", 64,
		store.WithSnapshotEvery(8))
	if err := dst.Import("remote/main", commits, head); err != nil {
		t.Fatal(err)
	}

	appendN(t, src, "main", 6, "fresh")
	f, err := dst.Frontier("remote/main")
	if err != nil {
		t.Fatal(err)
	}
	delta, head2, err := src.ExportSincePacked("main", f.HaveSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 6 {
		t.Fatalf("delta ships %d commits, want 6", len(delta))
	}
	patches := 0
	for _, c := range delta {
		if c.Patch != nil {
			patches++
		}
	}
	// At most one of six consecutive states lands on a snapshot boundary
	// (SnapshotEvery is 8); the rest must ship as patches.
	if patches < 5 {
		t.Fatalf("delta shipped %d patches of 6 commits, want at least 5", patches)
	}
	if err := dst.Import("remote/main", delta, head2); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Head("remote/main")
	if len(got) != 46 {
		t.Fatalf("grafted head has %d entries, want 46", len(got))
	}
}

func TestImportRejectsCorruptPatch(t *testing.T) {
	src := logStore(store.WithSnapshotEvery(8))
	appendN(t, src, "main", 20, "op")
	commits, head, err := src.ExportSincePacked("main", nil)
	if err != nil {
		t.Fatal(err)
	}
	corruptAt := -1
	for i, c := range commits {
		if c.Patch != nil {
			corruptAt = i
			break
		}
	}
	if corruptAt < 0 {
		t.Fatal("no patched commit to corrupt")
	}
	for _, mut := range []func([]byte){
		func(p []byte) { p[len(p)-1] ^= 0xff },
		func(p []byte) { p[0] ^= 0x40 },
	} {
		tampered := make([]store.ExportedCommit, len(commits))
		copy(tampered, commits)
		patch := append([]byte(nil), commits[corruptAt].Patch...)
		mut(patch)
		tampered[corruptAt].Patch = patch
		dst := store.NewAt[mlog.State, mlog.Op, mlog.Val](mlog.Log{}, wire.MLog{}, "local", 64)
		if err := dst.Import("remote/x", tampered, head); !errors.Is(err, store.ErrBadImport) {
			t.Fatalf("corrupt patch: import = %v, want ErrBadImport", err)
		}
	}
}

func TestImportRejectsMalformedPatchCommits(t *testing.T) {
	src := logStore()
	appendN(t, src, "main", 2, "op")
	commits, head, err := src.Export("main")
	if err != nil {
		t.Fatal(err)
	}
	// Both state and patch set.
	both := make([]store.ExportedCommit, len(commits))
	copy(both, commits)
	both[1].Patch = []byte{1, 2, 3}
	dst := store.NewAt[mlog.State, mlog.Op, mlog.Val](mlog.Log{}, wire.MLog{}, "local", 64)
	if err := dst.Import("remote/x", both, head); !errors.Is(err, store.ErrBadImport) {
		t.Fatalf("state+patch commit: import = %v, want ErrBadImport", err)
	}
	// Patch on the parentless root.
	rootPatch := make([]store.ExportedCommit, len(commits))
	copy(rootPatch, commits)
	rootPatch[0].State = nil
	rootPatch[0].Patch = []byte{0, 0}
	dst = store.NewAt[mlog.State, mlog.Op, mlog.Val](mlog.Log{}, wire.MLog{}, "local", 64)
	if err := dst.Import("remote/x", rootPatch, head); !errors.Is(err, store.ErrBadImport) {
		t.Fatalf("parentless patch: import = %v, want ErrBadImport", err)
	}
}

func TestSizeIsFullEncodedSize(t *testing.T) {
	// Size reports the full encoded state size (the Figure 15 metric)
	// even when the head is stored as a delta.
	s := logStore(store.WithSnapshotEvery(16))
	appendN(t, s, "main", 20, "op")
	sz, err := s.Size("main")
	if err != nil {
		t.Fatal(err)
	}
	enc := wire.MLog{}.Encode(mustHead(t, s))
	if sz != len(enc) {
		t.Fatalf("Size = %d, want full encoding %d", sz, len(enc))
	}
}

func mustHead(t *testing.T, s *store.Store[mlog.State, mlog.Op, mlog.Val]) mlog.State {
	t.Helper()
	st, err := s.Head("main")
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEncodedStateMatchesCodec(t *testing.T) {
	s := logStore(store.WithSnapshotEvery(4), store.WithStateCacheSize(1))
	appendN(t, s, "main", 25, "op")
	h, err := s.HeadHash("main")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s.Commit(h)
	if !ok {
		t.Fatal("head commit missing")
	}
	enc, err := s.EncodedState(c.State)
	if err != nil {
		t.Fatal(err)
	}
	want := wire.MLog{}.Encode(mustHead(t, s))
	if string(enc) != string(want) {
		t.Fatal("EncodedState differs from the codec encoding of the head")
	}
}
