package store

import (
	"container/list"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"repro/internal/delta"
)

// The pack layer: how the store keeps encoded states resident.
//
// Every state used to pin its full encoding forever, so resident bytes
// grew O(history × state size). Packed, each state object is either a
// full snapshot or a binary delta (internal/delta) chained to the state
// of its commit-parent, with a snapshot every SnapshotEvery links so no
// read ever walks an unbounded chain — Git's packfile discipline applied
// to the paper's version store. Reads reassemble through materialize,
// which verifies the content hash of everything it rebuilds; decoded
// states are held in a small LRU so branch heads stay hot while deep
// history stops pinning memory.

// ErrCorruptPack is returned when a stored object fails to reassemble to
// its content address — a broken chain or a corrupted patch.
var ErrCorruptPack = errors.New("store: corrupt pack object")

// packObject is one stored state encoding.
type packObject struct {
	// data is the full encoding when delta is false, the patch against
	// base's encoding when delta is true. nil for a lazily recovered
	// object whose bytes are still on disk; bytes() loads it on first use.
	data []byte
	// base is the state hash the patch chains to (zero for snapshots).
	base Hash
	// delta distinguishes patches from snapshots.
	delta bool
	// size is the length of the full encoding, whatever the storage form
	// — it keeps Size O(1) and the space accounting exact.
	size int
	// depth is the number of patches between this object and its chain's
	// snapshot; snapshots are depth 0.
	depth int
	// stored is the length of the stored bytes (== len(data) once
	// resident); recovery records it so PackStats stays exact without
	// forcing lazy objects off disk.
	stored int
	// load fetches the stored bytes of a lazily recovered object from the
	// durable log; nil when data is resident. once/loadErr make the fetch
	// race-safe under the store's shared read lock.
	load    func() ([]byte, error)
	once    sync.Once
	loadErr error
}

// bytes returns the object's stored bytes, fetching them from the
// durable log on first use for lazily recovered objects. Safe under the
// store's read lock: sync.Once publishes data with a happens-before edge
// for every concurrent reader.
func (o *packObject) bytes() ([]byte, error) {
	if o.load == nil {
		return o.data, nil
	}
	o.once.Do(func() {
		data, err := o.load()
		if err != nil {
			o.loadErr = fmt.Errorf("%w: %v", ErrCorruptPack, err)
			return
		}
		o.data = data
	})
	if o.loadErr != nil {
		return nil, o.loadErr
	}
	return o.data, nil
}

// PackStats is a snapshot of the pack layer's space accounting.
type PackStats struct {
	// Objects is the number of distinct state objects retained.
	Objects int
	// Snapshots and Deltas split Objects by storage form.
	Snapshots int
	Deltas    int
	// PackedBytes is the resident encoded bytes: Σ len(stored data).
	PackedBytes int64
	// FullBytes is what the same states would pin unpacked: Σ full
	// encoded size — the pre-pack resident footprint.
	FullBytes int64
	// MaxDepth is the longest patch chain below any object.
	MaxDepth int
}

// PackStats reports the pack layer's space accounting.
func (s *Store[S, Op, Val]) PackStats() PackStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ps PackStats
	add := func(delta bool, stored, size, depth int) {
		ps.Objects++
		if delta {
			ps.Deltas++
		} else {
			ps.Snapshots++
		}
		ps.PackedBytes += int64(stored)
		ps.FullBytes += int64(size)
		if depth > ps.MaxDepth {
			ps.MaxDepth = depth
		}
	}
	for _, o := range s.objects {
		add(o.delta, o.stored, o.size, o.depth)
	}
	if s.frozen != nil {
		for i, n := 0, s.frozen.NumObjects(); i < n; i++ {
			h, fo := s.frozen.ObjectAt(i)
			if _, shadowed := s.objects[h]; shadowed {
				continue
			}
			add(fo.Delta, fo.Stored, fo.Size, fo.Depth)
		}
	}
	return ps
}

// stateCache is a bounded LRU of decoded states keyed by state hash. It
// has its own lock: readers holding the store's shared read lock still
// mutate recency.
type stateCache[S any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Hash]*list.Element
}

type cacheEntry[S any] struct {
	h Hash
	s S
}

func newStateCache[S any](capacity int) *stateCache[S] {
	return &stateCache[S]{cap: capacity, ll: list.New(), items: make(map[Hash]*list.Element)}
}

func (c *stateCache[S]) get(h Hash) (S, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[h]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(*cacheEntry[S]).s, true
	}
	var zero S
	return zero, false
}

func (c *stateCache[S]) put(h Hash, s S) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[h]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry[S]).s = s
		return
	}
	c.items[h] = c.ll.PushFront(&cacheEntry[S]{h: h, s: s})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry[S]).h)
	}
}

func (c *stateCache[S]) remove(h Hash) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[h]; ok {
		c.ll.Remove(e)
		delete(c.items, h)
	}
}

// materializeLocked reassembles the full encoding of the state addressed
// by h: walk the delta chain down to its snapshot, apply the patches back
// up, and verify the result against the content address. Callers must
// hold s.mu (read or write) and must not modify the returned buffer — it
// may be the stored snapshot or the reassembly cache.
//
// A one-slot reassembly cache keyed by state hash makes chain-sequential
// access — Apply deltifying against the state it just built, imports
// walking a shipped chain — O(patch) instead of O(chain).
func (s *Store[S, Op, Val]) materializeLocked(h Hash) ([]byte, error) {
	return s.materializeHintLocked(h, Hash{}, nil)
}

// materializeHintLocked is materializeLocked with a caller-local
// (hash, encoding) pair the chain walk may stop at. Concurrent readers
// each racing a long loop of materializations (exports under the shared
// read lock) thrash the store-global slot; carrying the previous result
// through the loop keeps each of them O(patch) per commit regardless of
// interleaving.
func (s *Store[S, Op, Val]) materializeHintLocked(h Hash, hintHash Hash, hintEnc []byte) ([]byte, error) {
	if hintHash == h && hintEnc != nil {
		if m := s.metrics; m != nil {
			m.reasmHit.Inc()
		}
		return hintEnc, nil
	}
	s.encMu.Lock()
	cached, cachedHash := s.encBuf, s.encHash
	s.encMu.Unlock()
	if cachedHash == h && cached != nil {
		if m := s.metrics; m != nil {
			m.reasmHit.Inc()
		}
		return cached, nil
	}
	if m := s.metrics; m != nil {
		m.reasmMiss.Inc()
	}

	var chain []*packObject // objects from h down, snapshot excluded
	cur := h
	var enc []byte
	for {
		if cur == hintHash && hintEnc != nil {
			enc = hintEnc
			break
		}
		if cur == cachedHash && cached != nil {
			enc = cached
			break
		}
		obj, ok := s.objLocked(cur)
		if !ok {
			return nil, fmt.Errorf("%w: missing object %v in chain of %v", ErrCorruptPack, cur, h)
		}
		if !obj.delta {
			var err error
			enc, err = obj.bytes()
			if err != nil {
				return nil, err
			}
			break
		}
		chain = append(chain, obj)
		cur = obj.base
	}
	for i := len(chain) - 1; i >= 0; i-- {
		patch, err := chain[i].bytes()
		if err != nil {
			return nil, err
		}
		enc, err = delta.Apply(enc, patch)
		if err != nil {
			return nil, fmt.Errorf("%w: %v (chain of %v)", ErrCorruptPack, err, h)
		}
	}
	if sha256.Sum256(enc) != h {
		return nil, fmt.Errorf("%w: object %v reassembles to a different hash", ErrCorruptPack, h)
	}
	if len(chain) > 0 {
		s.encMu.Lock()
		s.encHash, s.encBuf = h, enc
		s.encMu.Unlock()
	}
	return enc, nil
}

// stateLocked returns the decoded state addressed by h, via the LRU.
// Callers must hold s.mu (read or write).
func (s *Store[S, Op, Val]) stateLocked(h Hash) (S, error) {
	if st, ok := s.cache.get(h); ok {
		if m := s.metrics; m != nil {
			m.cacheHit.Inc()
		}
		return st, nil
	}
	if m := s.metrics; m != nil {
		m.cacheMiss.Inc()
	}
	var zero S
	enc, err := s.materializeLocked(h)
	if err != nil {
		return zero, err
	}
	st, err := s.codec.Decode(enc)
	if err != nil {
		return zero, fmt.Errorf("%w: object %v does not decode: %v", ErrCorruptPack, h, err)
	}
	s.cache.put(h, st)
	return st, nil
}

// packLocked stores encoding enc under its content address h, as a delta
// chained to base when the spacing policy permits, else as a snapshot.
// patch, when non-nil, is a ready-made delta from base's encoding to enc
// (a patch that arrived over the wire) and is reused instead of being
// recomputed; packLocked owns both slices. Callers hold the write lock.
func (s *Store[S, Op, Val]) packLocked(h Hash, enc []byte, base Hash, patch []byte) {
	if s.objExistsLocked(h) {
		return
	}
	obj := &packObject{size: len(enc)}
	// States beyond the patch format's target limit always snapshot:
	// Apply rejects larger announced targets (its allocation bound), so
	// chaining them would make the state unreadable.
	if bo, ok := s.objLocked(base); ok && base != h && len(enc) <= delta.MaxTarget &&
		bo.depth+1 < s.opts.SnapshotEvery {
		if patch == nil {
			if baseEnc, err := s.materializeLocked(base); err == nil {
				patch = delta.Make(baseEnc, enc)
			}
		}
		if patch != nil && len(patch) < len(enc) {
			obj.data, obj.base, obj.delta, obj.depth = patch, base, true, bo.depth+1
		}
	}
	if !obj.delta {
		obj.data = enc
	}
	obj.stored = len(obj.data)
	s.objects[h] = obj
	s.persistObjectLocked(h, obj)
	// The freshly packed encoding is the likeliest next chain base.
	s.encMu.Lock()
	s.encHash, s.encBuf = h, enc
	s.encMu.Unlock()
}

// VerifyPack materializes every retained state object, checking that each
// chain reassembles to its content address and decodes. It is the pack
// layer's integrity check, used by tests (notably the GC-over-chains
// property test), by recovery-on-open (OpenRecovered runs it before a
// recovered store is handed out), and available to tools.
//
// Objects are visited chain-forest order — each snapshot's dependent
// patches depth-first, every encoding built with exactly one patch
// application from its base — so a full verification costs O(total
// state bytes), not O(chain length × state bytes). Objects no such walk
// reaches (a missing or cyclic chain base) are verified individually,
// which yields the precise corruption error.
func (s *Store[S, Op, Val]) VerifyPack() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// A whole-pack walk needs every object, including frozen entries the
	// map does not hold; materialize the combined index once up front.
	objects := s.allObjectsLocked()
	children := make(map[Hash][]Hash)
	var roots []Hash
	for h, obj := range objects {
		if obj.delta {
			children[obj.base] = append(children[obj.base], h)
		} else {
			roots = append(roots, h)
		}
	}
	verify := func(h Hash, enc []byte) error {
		obj := objects[h]
		if sha256.Sum256(enc) != h {
			return fmt.Errorf("%w: object %v reassembles to a different hash", ErrCorruptPack, h)
		}
		if len(enc) != obj.size {
			return fmt.Errorf("%w: object %v is %d bytes, %d recorded", ErrCorruptPack, h, len(enc), obj.size)
		}
		if _, err := s.codec.Decode(enc); err != nil {
			return fmt.Errorf("%w: object %v does not decode: %v", ErrCorruptPack, h, err)
		}
		return nil
	}
	reached := make(map[Hash]bool, len(objects))
	type frame struct {
		h   Hash
		enc []byte
	}
	for _, root := range roots {
		rootEnc, err := objects[root].bytes()
		if err != nil {
			return err
		}
		stack := []frame{{h: root, enc: rootEnc}}
		if err := verify(root, stack[0].enc); err != nil {
			return err
		}
		reached[root] = true
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, child := range children[top.h] {
				patch, err := objects[child].bytes()
				if err != nil {
					return err
				}
				enc, err := delta.Apply(top.enc, patch)
				if err != nil {
					return fmt.Errorf("%w: %v (chain of %v)", ErrCorruptPack, err, child)
				}
				if err := verify(child, enc); err != nil {
					return err
				}
				reached[child] = true
				stack = append(stack, frame{h: child, enc: enc})
			}
		}
	}
	if len(reached) != len(objects) {
		// Some delta's chain never reaches a snapshot: its base is either
		// absent or part of a base cycle. Diagnose the first one exactly.
		for h := range objects {
			if reached[h] {
				continue
			}
			onPath := map[Hash]bool{h: true}
			for cur := h; ; {
				base := objects[cur].base
				if _, ok := objects[base]; !ok {
					return fmt.Errorf("%w: missing object %v in chain of %v", ErrCorruptPack, base, h)
				}
				if onPath[base] {
					return fmt.Errorf("%w: object %v chains in a cycle", ErrCorruptPack, h)
				}
				onPath[base] = true
				cur = base
			}
		}
	}
	for b, head := range s.heads {
		c, ok := s.commitLocked(head)
		if !ok {
			return fmt.Errorf("%w: branch %s heads a missing commit", ErrCorruptPack, b)
		}
		if _, ok := objects[c.State]; !ok {
			return fmt.Errorf("%w: branch %s pins a missing state", ErrCorruptPack, b)
		}
	}
	return nil
}

// StateSize reports the full encoded size of the state pinned by commit
// c, without materializing it — the per-commit space accounting the
// benchmarks aggregate.
func (s *Store[S, Op, Val]) StateSize(c Hash) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cm, ok := s.commitLocked(c)
	if !ok {
		return 0, false
	}
	obj, ok := s.objLocked(cm.State)
	if !ok {
		return 0, false
	}
	return obj.size, true
}

// EncodedState materializes the encoded state pinned by state hash h and
// returns a copy (benchmarks use it to time cold chain reassembly).
func (s *Store[S, Op, Val]) EncodedState(h Hash) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc, err := s.materializeLocked(h)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), enc...), nil
}
