package store

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/counter"
)

// White-box tests of the merge-base machinery: the public API's soundness
// discipline makes some DAG shapes (criss-cross with merge commits on both
// sides) unreachable, so the recursive virtual-base path is exercised here
// by constructing commits directly.

// int64Codec is a minimal in-package codec (the wire package's codecs
// would import-cycle back into store).
type int64Codec struct{}

func (int64Codec) Encode(s int64) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(s))
}

func (int64Codec) Decode(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("int64 codec: %d bytes", len(b))
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}

func newInternalCounterStore() *Store[int64, counter.Op, counter.Val] {
	return New[int64, counter.Op, counter.Val](counter.IncCounter{}, int64Codec{}, "main")
}

// nextTime distinguishes synthetic commits: the store is content
// addressed, so two chains built from the same parent with the same states
// would otherwise collapse into one.
var nextTime int64

// commitChain appends n operation commits on top of parent, returning the
// final hash. Each commit's state adds one.
func commitChain(s *Store[int64, counter.Op, counter.Val], parent Hash, n int) Hash {
	h := parent
	for i := 0; i < n; i++ {
		c := s.commits[h]
		cur, err := s.stateLocked(c.State)
		if err != nil {
			panic(err)
		}
		st := s.putState(cur+1, c.State)
		nextTime++
		h = s.putCommit(Commit{Parents: []Hash{h}, State: st, Gen: c.Gen + 1, Time: core.Timestamp(nextTime)})
	}
	return h
}

func mergeCommit(s *Store[int64, counter.Op, counter.Val], a, b Hash, state int64) Hash {
	gen := s.commits[a].Gen
	if g := s.commits[b].Gen; g > gen {
		gen = g
	}
	st := s.putState(state, s.commits[a].State)
	return s.putCommit(Commit{Parents: []Hash{a, b}, State: st, Gen: gen + 1})
}

func TestLCASimpleFork(t *testing.T) {
	s := newInternalCounterStore()
	root := s.heads["main"]
	base := commitChain(s, root, 2)
	a := commitChain(s, base, 3)
	b := commitChain(s, base, 1)
	got, err := s.lca(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatalf("lca = %v, want the fork point %v", got, base)
	}
}

func TestLCAAncestorCases(t *testing.T) {
	s := newInternalCounterStore()
	root := s.heads["main"]
	mid := commitChain(s, root, 2)
	tip := commitChain(s, mid, 2)
	if got, _ := s.lca(mid, tip); got != mid {
		t.Fatal("lca(ancestor, descendant) must be the ancestor")
	}
	if got, _ := s.lca(tip, tip); got != tip {
		t.Fatal("lca(x, x) must be x")
	}
}

func TestLCACrissCrossVirtualBase(t *testing.T) {
	// Classic criss-cross: fork at base into a1 and b1; create merge
	// commits ma = merge(a1, b1) and mb = merge(b1, a1); extend both.
	// a1 and b1 are then both maximal common ancestors, and the merge
	// base must be their recursive (virtual) merge.
	s := newInternalCounterStore()
	root := s.heads["main"]
	base := commitChain(s, root, 1) // state 1
	a1 := commitChain(s, base, 1)   // state 2
	b1 := commitChain(s, base, 2)   // state 3
	// Correct three-way merges by hand: a1+b1-base = 2+3-1 = 4.
	ma := mergeCommit(s, a1, b1, 4)
	mb := mergeCommit(s, b1, a1, 4)
	a2 := commitChain(s, ma, 1) // state 5
	b2 := commitChain(s, mb, 2) // state 6

	maximal := s.maximalCommonAncestors(a2, b2)
	if len(maximal) != 2 {
		t.Fatalf("expected 2 maximal common ancestors, got %d", len(maximal))
	}
	vbase, err := s.lca(a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	c := s.commits[vbase]
	if len(c.Parents) != 2 {
		t.Fatalf("virtual base must be a merge commit, got %+v", c)
	}
	// The virtual base's state is merge(base, a1, b1) = 4, so a final
	// three-way merge yields 5 + 6 − 4 = 7 — each increment counted once.
	mustState := func(h Hash) int64 {
		st, err := s.stateLocked(h)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if got := mustState(c.State); got != 4 {
		t.Fatalf("virtual base state = %d, want 4", got)
	}
	merged := s.impl.Merge(mustState(c.State), mustState(s.commits[a2].State), mustState(s.commits[b2].State))
	if merged != 7 {
		t.Fatalf("merge over virtual base = %d, want 7", merged)
	}
}

func TestExclusiveOpsPartition(t *testing.T) {
	s := newInternalCounterStore()
	root := s.heads["main"]
	base := commitChain(s, root, 2)
	shared := commitChain(s, base, 1) // op below both heads: reported by neither
	a1 := commitChain(s, shared, 2)
	b1 := commitChain(s, shared, 1)
	m := mergeCommit(s, a1, b1, 0) // merge commit: creates no event
	a := commitChain(s, m, 1)
	aOps, bOps := s.exclusiveOps(a, b1)
	// a's side: its own two ops above shared, plus the op atop the merge.
	// b1's ops are reachable from a through the merge, so b has none.
	if len(aOps) != 3 || len(bOps) != 0 {
		t.Fatalf("exclusiveOps = %d/%d ops, want 3/0", len(aOps), len(bOps))
	}
	aOps, bOps = s.exclusiveOps(a1, b1)
	if len(aOps) != 2 || len(bOps) != 1 {
		t.Fatalf("exclusiveOps(a1, b1) = %d/%d ops, want 2/1", len(aOps), len(bOps))
	}
	if x, y := s.exclusiveOps(a, a); x != nil || y != nil {
		t.Fatal("exclusiveOps(x, x) must be empty")
	}
}

func TestMaximalCommonAncestorsDominated(t *testing.T) {
	// A chain: every common ancestor of two descendants is dominated by
	// the deepest one; only one maximal ancestor must be reported.
	s := newInternalCounterStore()
	root := s.heads["main"]
	deep := commitChain(s, root, 5)
	a := commitChain(s, deep, 1)
	b := commitChain(s, deep, 2)
	maximal := s.maximalCommonAncestors(a, b)
	if len(maximal) != 1 || maximal[0] != deep {
		t.Fatalf("maximal = %v, want just the deepest fork point", maximal)
	}
}
