package store_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/orset"
	"repro/internal/store"
	"repro/internal/wire"
)

func counterStore() *store.Store[int64, counter.Op, counter.Val] {
	return store.New[int64, counter.Op, counter.Val](counter.IncCounter{}, wire.IncCounter{}, "main")
}

func orsetStore() *store.Store[orset.SpaceState, orset.Op, orset.Val] {
	return store.New[orset.SpaceState, orset.Op, orset.Val](orset.OrSetSpace{}, wire.OrSetSpace{}, "main")
}

func inc(t *testing.T, s *store.Store[int64, counter.Op, counter.Val], b string, n int64) {
	t.Helper()
	if _, err := s.Apply(b, counter.Op{Kind: counter.Inc, N: n}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreApplyAndHead(t *testing.T) {
	s := counterStore()
	inc(t, s, "main", 5)
	inc(t, s, "main", 2)
	v, err := s.Head("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("head = %d, want 7", v)
	}
}

func TestStoreForkAndDiverge(t *testing.T) {
	s := counterStore()
	inc(t, s, "main", 1)
	if err := s.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}
	inc(t, s, "main", 10)
	inc(t, s, "dev", 100)
	m, _ := s.Head("main")
	d, _ := s.Head("dev")
	if m != 11 || d != 101 {
		t.Fatalf("main=%d dev=%d", m, d)
	}
}

func TestStorePullThreeWay(t *testing.T) {
	s := counterStore()
	inc(t, s, "main", 1)
	if err := s.Fork("main", "dev"); err != nil {
		t.Fatal(err)
	}
	inc(t, s, "main", 10)
	inc(t, s, "dev", 100)
	if err := s.Pull("main", "dev"); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Head("main")
	if m != 111 { // 11 + 101 - 1
		t.Fatalf("merged = %d, want 111", m)
	}
}

func TestStoreSyncConverges(t *testing.T) {
	s := counterStore()
	s.Fork("main", "dev")
	inc(t, s, "main", 3)
	inc(t, s, "dev", 4)
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Head("main")
	d, _ := s.Head("dev")
	if m != d || m != 7 {
		t.Fatalf("after sync main=%d dev=%d, want 7", m, d)
	}
}

func TestStoreRepeatedSyncRounds(t *testing.T) {
	// Diverge, sync, rediverge, sync: the second round's pulls use the
	// first round's sync point as the base (the back-pull of each Sync is
	// a fast-forward that adopts the merge commit), so every three-way
	// merge is a clean diamond and a+b−lca counts each increment once.
	s := counterStore()
	inc(t, s, "main", 1) // shared prefix: 1
	s.Fork("main", "dev")
	inc(t, s, "main", 2) // main: 3
	inc(t, s, "dev", 4)  // dev: 5
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err) // both: 7
	}
	inc(t, s, "main", 8) // main: 15
	inc(t, s, "dev", 16) // dev: 23
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Head("main")
	d, _ := s.Head("dev")
	if m != 31 || d != 31 { // 1+2+4+8+16
		t.Fatalf("after two sync rounds main=%d dev=%d, want 31", m, d)
	}
}

func TestStorePullCompletesAsymmetricPingPong(t *testing.T) {
	// Asymmetric ping-pong with an interleaved local operation: main pulls
	// dev, then dev — which performed an operation concurrently with
	// main's — pulls main back. The merge base of that back-pull (dev's
	// pre-op head) does not causally dominate main's exclusive operation,
	// but it still carries exactly the common operations, so the merge
	// counts everything once and the pair converges.
	s := counterStore()
	inc(t, s, "main", 1)
	s.Fork("main", "dev")
	inc(t, s, "main", 2)
	inc(t, s, "dev", 4)
	if err := s.Pull("main", "dev"); err != nil {
		t.Fatal(err) // plain diamond
	}
	inc(t, s, "dev", 8) // interleaved local op on dev
	if err := s.Pull("dev", "main"); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Head("dev")
	if d != 15 { // 1+2+4+8, each counted once
		t.Fatalf("dev = %d, want 15", d)
	}
	// The reverse direction brings main no new operations; it converges by
	// semantic fast-forward onto dev's completed head.
	if err := s.Pull("main", "dev"); err != nil {
		t.Fatal(err)
	}
	hm, _ := s.HeadHash("main")
	hd, _ := s.HeadHash("dev")
	m, _ := s.Head("main")
	if m != 15 || hm != hd {
		t.Fatalf("main = %d head %v, want 15 at dev's head %v", m, hm, hd)
	}
}

func TestStoreGossipOrderCompletion(t *testing.T) {
	// Ring gossip applied in "backwards" edge order with one interleaved
	// operation: b2 syncs b1 before b1 has absorbed main's chain, then
	// commits locally, then syncs b1 again — so main's root-forked chain
	// arrives behind a merge that does not dominate it. The pulls merge
	// over the exact common base and the ring converges to identical
	// heads.
	s := counterStore()
	s.Fork("main", "b1")
	s.Fork("main", "b2")
	for i, b := range []string{"main", "b1", "b2"} {
		for j := 0; j < 3; j++ {
			inc(t, s, b, int64(i+1))
		}
	}
	if err := s.Sync("b2", "b1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync("b1", "main"); err != nil {
		t.Fatal(err)
	}
	inc(t, s, "b2", 1)
	if err := s.Sync("b2", "b1"); err != nil {
		t.Fatal(err)
	}
	v2, _ := s.Head("b2")
	v1, _ := s.Head("b1")
	h2, _ := s.HeadHash("b2")
	h1, _ := s.HeadHash("b1")
	if v2 != 19 || v1 != 19 || h1 != h2 { // 3·1 + 3·2 + 3·3 + 1
		t.Fatalf("b2=%d b1=%d heads equal=%v, want 19/19/true", v2, v1, h1 == h2)
	}
}

func TestStoreEntangledTimestampsMergeExactly(t *testing.T) {
	// Deliberately interleaved Lamport timestamps: main commits an
	// operation just after merging aux's pumped-clock chain, so old's
	// long offline chain carries timestamps both below and above main's
	// operation; srv merges old's chain behind main's back and commits on
	// top. The merge bases here are nowhere near timestamp-contiguous
	// with the regions above them — exactly the shape that breaks
	// positional suffix diffs — and the pulls must still count every
	// operation exactly once.
	s := counterStore()
	if err := s.Fork("main", "aux"); err != nil {
		t.Fatal(err)
	}
	if err := s.Fork("main", "old"); err != nil {
		t.Fatal(err)
	}
	inc(t, s, "main", 1)
	for i := 0; i < 10; i++ {
		inc(t, s, "aux", 1) // pump aux's clock to ~10
	}
	if err := s.Pull("main", "aux"); err != nil {
		t.Fatal(err)
	}
	if err := s.Fork("main", "srv"); err != nil {
		t.Fatal(err)
	}
	inc(t, s, "main", 1) // main's interleaved op, timestamp ~12
	for i := 0; i < 15; i++ {
		inc(t, s, "old", 1) // offline chain, timestamps 1..15
	}
	if err := s.Pull("srv", "old"); err != nil {
		t.Fatal(err)
	}
	inc(t, s, "srv", 1) // srv's op atop the entangled merge
	if err := s.Sync("main", "srv"); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Head("main")
	v, _ := s.Head("srv")
	hm, _ := s.HeadHash("main")
	hv, _ := s.HeadHash("srv")
	if m != 28 || v != 28 || hm != hv { // 1 + 10 + 1 + 15 + 1, each once
		t.Fatalf("main=%d srv=%d heads equal=%v, want 28/28/true", m, v, hm == hv)
	}
}

func TestStoreSyncDiscipline(t *testing.T) {
	// The ping-pong workload converging with atomic Sync at each
	// exchange: both legs of every exchange happen with no interleaved
	// operation, so each is one plain diamond merge.
	s := counterStore()
	inc(t, s, "main", 1)
	s.Fork("main", "dev")
	inc(t, s, "main", 2)
	inc(t, s, "dev", 4)
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	inc(t, s, "dev", 8)
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Head("main")
	d, _ := s.Head("dev")
	if m != 15 || d != 15 {
		t.Fatalf("converged main=%d dev=%d, want 15", m, d)
	}
}

func TestStoreFastForwardAdoptsCommit(t *testing.T) {
	// A fast-forward pull must adopt the source's head commit rather than
	// create a new one, keeping the DAG transparent for later LCAs.
	s := counterStore()
	s.Fork("main", "dev")
	inc(t, s, "main", 3)
	if err := s.Pull("dev", "main"); err != nil {
		t.Fatal(err)
	}
	hm, _ := s.HeadHash("main")
	hd, _ := s.HeadHash("dev")
	if hm != hd {
		t.Fatal("fast-forward must adopt the source head commit")
	}
}

func TestStoreFastForwardLCA(t *testing.T) {
	// dev is strictly behind main: LCA is dev's own head, and pulling from
	// an identical or ancestor branch must not change anything incorrectly.
	s := counterStore()
	inc(t, s, "main", 1)
	s.Fork("main", "dev")
	inc(t, s, "main", 2)
	if err := s.Pull("dev", "main"); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Head("dev")
	if d != 3 {
		t.Fatalf("fast-forward pull = %d, want 3", d)
	}
	// Pull with no divergence is a no-op.
	before, _ := s.HeadHash("main")
	if err := s.Pull("main", "main"); err == nil {
		// merging a branch into itself: heads equal, no-op
		after, _ := s.HeadHash("main")
		if before != after {
			t.Fatal("self-pull must be a no-op")
		}
	}
}

func TestStoreErrors(t *testing.T) {
	s := counterStore()
	if _, err := s.Apply("ghost", counter.Op{Kind: counter.Inc, N: 1}); !errors.Is(err, store.ErrNoBranch) {
		t.Fatalf("Apply: %v", err)
	}
	if err := s.Fork("ghost", "x"); !errors.Is(err, store.ErrNoBranch) {
		t.Fatalf("Fork src: %v", err)
	}
	if err := s.Fork("main", "main"); !errors.Is(err, store.ErrBranchExists) {
		t.Fatalf("Fork dup: %v", err)
	}
	if _, err := s.Head("ghost"); !errors.Is(err, store.ErrNoBranch) {
		t.Fatalf("Head: %v", err)
	}
	if err := s.Pull("main", "ghost"); !errors.Is(err, store.ErrNoBranch) {
		t.Fatalf("Pull: %v", err)
	}
	if _, err := s.Size("ghost"); !errors.Is(err, store.ErrNoBranch) {
		t.Fatalf("Size: %v", err)
	}
	if _, err := s.HeadHash("ghost"); !errors.Is(err, store.ErrNoBranch) {
		t.Fatalf("HeadHash: %v", err)
	}
}

func TestStoreBranchesSorted(t *testing.T) {
	s := counterStore()
	s.Fork("main", "zeta")
	s.Fork("main", "alpha")
	got := s.Branches()
	if len(got) != 3 || got[0] != "alpha" || got[1] != "main" || got[2] != "zeta" {
		t.Fatalf("Branches = %v", got)
	}
}

func TestStoreORSetAddWinsAcrossBranches(t *testing.T) {
	s := orsetStore()
	if _, err := s.Apply("main", orset.Op{Kind: orset.Add, E: 7}); err != nil {
		t.Fatal(err)
	}
	s.Fork("main", "dev")
	// main re-adds 7 (refreshing its timestamp); dev removes it.
	s.Apply("main", orset.Op{Kind: orset.Add, E: 7})
	s.Apply("dev", orset.Op{Kind: orset.Remove, E: 7})
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	v, err := s.Apply("main", orset.Op{Kind: orset.Lookup, E: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Found {
		t.Fatal("concurrent add must win against remove")
	}
	d, _ := s.Apply("dev", orset.Op{Kind: orset.Lookup, E: 7})
	if !d.Found {
		t.Fatal("both replicas must converge to the add-wins outcome")
	}
}

func TestStoreTimestampsRespectMergeOrder(t *testing.T) {
	// After a pull, new operations on the destination must carry larger
	// timestamps than everything merged in (Ψ_ts across replicas).
	s := orsetStore()
	s.Fork("main", "dev")
	for i := 0; i < 20; i++ {
		s.Apply("dev", orset.Op{Kind: orset.Add, E: int64(i)})
	}
	if err := s.Pull("main", "dev"); err != nil {
		t.Fatal(err)
	}
	s.Apply("main", orset.Op{Kind: orset.Add, E: 99})
	head, _ := s.Head("main")
	var tsOf99, maxOther core.Timestamp
	for _, p := range head {
		if p.E == 99 {
			tsOf99 = p.T
		} else if p.T > maxOther {
			maxOther = p.T
		}
	}
	if tsOf99 <= maxOther {
		t.Fatalf("post-merge op timestamp %d must exceed merged-in max %d", tsOf99, maxOther)
	}
}

func TestStoreConcurrentApplies(t *testing.T) {
	s := counterStore()
	s.Fork("main", "dev")
	var wg sync.WaitGroup
	for _, b := range []string{"main", "dev"} {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := s.Apply(b, counter.Op{Kind: counter.Inc, N: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Sync("main", "dev"); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Head("main")
	if m != 400 {
		t.Fatalf("converged counter = %d, want 400", m)
	}
}

func TestStoreCommitDAGShape(t *testing.T) {
	s := counterStore()
	inc(t, s, "main", 1)
	h, _ := s.HeadHash("main")
	c, ok := s.Commit(h)
	if !ok {
		t.Fatal("head commit missing")
	}
	if len(c.Parents) != 1 || c.Gen != 2 {
		t.Fatalf("op commit shape: %+v", c)
	}
	s.Fork("main", "dev")
	inc(t, s, "main", 1)
	inc(t, s, "dev", 1)
	s.Pull("main", "dev")
	h, _ = s.HeadHash("main")
	c, _ = s.Commit(h)
	if len(c.Parents) != 2 {
		t.Fatalf("merge commit must have two parents: %+v", c)
	}
	if _, ok := s.Commit(store.Hash{}); ok {
		t.Fatal("zero hash must not resolve")
	}
}
