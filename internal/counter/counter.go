// Package counter implements the two counter MRDTs of the paper's
// evaluation (§7.1): the increment-only counter and the PN-counter, with
// their declarative specifications and replication-aware simulation
// relations.
package counter

import "repro/internal/core"

// OpKind distinguishes counter operations.
type OpKind int

// Counter operations.
const (
	Read OpKind = iota // read the counter value
	Inc                // add N (increment-only and PN counter)
	Dec                // subtract N (PN counter only)
)

// Op is a counter operation. N is the increment/decrement amount and is
// ignored for Read.
type Op struct {
	Kind OpKind
	N    int64
}

// Val is an operation's return value: the counter value for Read, 0 (⊥)
// otherwise.
type Val = int64

// ValEq compares return values.
func ValEq(a, b Val) bool { return a == b }

// Inc is the increment-only counter MRDT: Σ = int64, do(inc n) adds n, and
// merge(l, a, b) = a + b − l, which counts every increment exactly once
// because the LCA's increments are contained in both branches.
type IncCounter struct{}

var _ core.MRDT[int64, Op, Val] = IncCounter{}

// Init returns the initial state 0.
func (IncCounter) Init() int64 { return 0 }

// Do applies op at state s.
func (IncCounter) Do(op Op, s int64, _ core.Timestamp) (int64, Val) {
	switch op.Kind {
	case Read:
		return s, s
	case Inc:
		return s + op.N, 0
	default: // Dec is not part of the increment-only counter; ignore.
		return s, 0
	}
}

// Merge implements three-way merge: a + b − lca.
func (IncCounter) Merge(lca, a, b int64) int64 { return a + b - lca }

// IncSpec is F_counter: read returns the sum of all increment amounts in
// the visible history.
func IncSpec(op Op, abs *core.AbstractState[Op, Val]) Val {
	if op.Kind != Read {
		return 0
	}
	var sum int64
	for _, e := range abs.Events() {
		if o := abs.Oper(e); o.Kind == Inc {
			sum += o.N
		}
	}
	return sum
}

// IncRsim relates abstract and concrete states: the concrete counter equals
// the sum of increments in the abstract state.
func IncRsim(abs *core.AbstractState[Op, Val], s int64) bool {
	return s == IncSpec(Op{Kind: Read}, abs)
}

// PNState is the PN-counter state: separate totals of increments and
// decrements, each itself an increment-only counter.
type PNState struct {
	P int64 // total increments
	N int64 // total decrements
}

// PNCounter is the PN-counter MRDT. Reads return P − N; merge merges the
// two components independently, exactly as two increment-only counters.
type PNCounter struct{}

var _ core.MRDT[PNState, Op, Val] = PNCounter{}

// Init returns the initial state (0, 0).
func (PNCounter) Init() PNState { return PNState{} }

// Do applies op at state s.
func (PNCounter) Do(op Op, s PNState, _ core.Timestamp) (PNState, Val) {
	switch op.Kind {
	case Read:
		return s, s.P - s.N
	case Inc:
		return PNState{P: s.P + op.N, N: s.N}, 0
	case Dec:
		return PNState{P: s.P, N: s.N + op.N}, 0
	default:
		return s, 0
	}
}

// Merge merges componentwise: p = pa + pb − pl, n = na + nb − nl.
func (PNCounter) Merge(lca, a, b PNState) PNState {
	return PNState{P: a.P + b.P - lca.P, N: a.N + b.N - lca.N}
}

// PNSpec is F_pncounter: read returns Σ inc − Σ dec over the visible
// history.
func PNSpec(op Op, abs *core.AbstractState[Op, Val]) Val {
	if op.Kind != Read {
		return 0
	}
	var sum int64
	for _, e := range abs.Events() {
		switch o := abs.Oper(e); o.Kind {
		case Inc:
			sum += o.N
		case Dec:
			sum -= o.N
		}
	}
	return sum
}

// PNRsim relates abstract and concrete PN-counter states componentwise.
func PNRsim(abs *core.AbstractState[Op, Val], s PNState) bool {
	var p, n int64
	for _, e := range abs.Events() {
		switch o := abs.Oper(e); o.Kind {
		case Inc:
			p += o.N
		case Dec:
			n += o.N
		}
	}
	return s.P == p && s.N == n
}
