package counter

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestIncCounterDo(t *testing.T) {
	var impl IncCounter
	s := impl.Init()
	if s != 0 {
		t.Fatal("initial state must be 0")
	}
	s, v := impl.Do(Op{Kind: Inc, N: 5}, s, 1)
	if s != 5 || v != 0 {
		t.Fatalf("after inc 5: state=%d val=%d", s, v)
	}
	s, v = impl.Do(Op{Kind: Read}, s, 2)
	if s != 5 || v != 5 {
		t.Fatalf("read: state=%d val=%d", s, v)
	}
	// Dec is ignored by the increment-only counter.
	s, _ = impl.Do(Op{Kind: Dec, N: 3}, s, 3)
	if s != 5 {
		t.Fatal("inc-only counter must ignore Dec")
	}
}

func TestIncCounterMergeProperties(t *testing.T) {
	var impl IncCounter
	// Merge with self as LCA keeps a branch's increments.
	if got := impl.Merge(2, 7, 2); got != 7 {
		t.Fatalf("merge(2,7,2) = %d, want 7", got)
	}
	// Symmetry.
	f := func(l, da, db int64) bool {
		base := clamp(l)
		a, b := base+clamp(da), base+clamp(db)
		return impl.Merge(base, a, b) == impl.Merge(base, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Idempotence: two branches with identical histories have themselves as
	// LCA (lca#(I,I) = I), so merge(a, a, a) = a.
	g := func(d int64) bool {
		a := clamp(d)
		return impl.Merge(a, a, a) == a
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func clamp(d int64) int64 {
	if d < 0 {
		d = -d
	}
	return d % 1000
}

func TestPNCounterDo(t *testing.T) {
	var impl PNCounter
	s := impl.Init()
	s, _ = impl.Do(Op{Kind: Inc, N: 10}, s, 1)
	s, _ = impl.Do(Op{Kind: Dec, N: 4}, s, 2)
	_, v := impl.Do(Op{Kind: Read}, s, 3)
	if v != 6 {
		t.Fatalf("read = %d, want 6", v)
	}
	if s.P != 10 || s.N != 4 {
		t.Fatalf("state = %+v", s)
	}
}

func TestPNCounterCanGoNegative(t *testing.T) {
	var impl PNCounter
	s := impl.Init()
	s, _ = impl.Do(Op{Kind: Dec, N: 3}, s, 1)
	_, v := impl.Do(Op{Kind: Read}, s, 2)
	if v != -3 {
		t.Fatalf("read = %d, want -3", v)
	}
}

func TestPNCounterMergeConcurrent(t *testing.T) {
	var impl PNCounter
	lca := PNState{P: 5, N: 1}
	a := PNState{P: 8, N: 1} // +3 on a
	b := PNState{P: 5, N: 4} // -3 on b
	m := impl.Merge(lca, a, b)
	if m.P != 8 || m.N != 4 {
		t.Fatalf("merge = %+v, want {8 4}", m)
	}
}

func TestPNCounterMergeSymmetric(t *testing.T) {
	var impl PNCounter
	f := func(lp, ln, dap, dan, dbp, dbn int64) bool {
		l := PNState{P: clamp(lp), N: clamp(ln)}
		a := PNState{P: l.P + clamp(dap), N: l.N + clamp(dan)}
		b := PNState{P: l.P + clamp(dbp), N: l.N + clamp(dbn)}
		return impl.Merge(l, a, b) == impl.Merge(l, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecsOnBuiltHistories(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	e1 := h.Append(Op{Kind: Inc, N: 3}, 0, 1, nil)
	e2 := h.Append(Op{Kind: Inc, N: 4}, 0, 2, []core.EventID{e1})
	e3 := h.Append(Op{Kind: Dec, N: 5}, 0, 3, []core.EventID{e1})
	abs := core.StateOf(h, []core.EventID{e1, e2, e3})
	if got := IncSpec(Op{Kind: Read}, abs); got != 7 {
		t.Fatalf("IncSpec = %d, want 7 (Dec ignored)", got)
	}
	if got := PNSpec(Op{Kind: Read}, abs); got != 2 {
		t.Fatalf("PNSpec = %d, want 2", got)
	}
	if !IncRsim(abs, 7) || IncRsim(abs, 8) {
		t.Fatal("IncRsim")
	}
	if !PNRsim(abs, PNState{P: 7, N: 5}) || PNRsim(abs, PNState{P: 7, N: 4}) {
		t.Fatal("PNRsim")
	}
}

func TestValEq(t *testing.T) {
	if !ValEq(3, 3) || ValEq(3, 4) {
		t.Fatal("ValEq")
	}
}
