// Package gset implements the grow-only set MRDT (§7.1). Elements can only
// be added; merge is set union (the LCA is redundant because its elements
// are contained in both branches).
//
// The state is an immutable sorted slice; operations copy on write so that
// ancestor states retained by the store stay intact.
package gset

import (
	"slices"

	"repro/internal/core"
)

// OpKind distinguishes set operations.
type OpKind int

// Set operations.
const (
	Read OpKind = iota
	Add
	Lookup
)

// Op is a set operation. E is the element for Add/Lookup.
type Op struct {
	Kind OpKind
	E    int64
}

// Val is an operation's return value.
type Val struct {
	Elems []int64 // Read: the contents, sorted ascending
	Found bool    // Lookup: membership
}

// ValEq compares return values.
func ValEq(a, b Val) bool {
	return a.Found == b.Found && slices.Equal(a.Elems, b.Elems)
}

// State is the concrete set state: a sorted slice without duplicates.
// Treat as immutable.
type State []int64

// Set is the grow-only set MRDT.
type Set struct{}

var _ core.MRDT[State, Op, Val] = Set{}

// Init returns the empty set.
func (Set) Init() State { return nil }

// Do applies op at state s.
func (Set) Do(op Op, s State, _ core.Timestamp) (State, Val) {
	switch op.Kind {
	case Read:
		return s, Val{Elems: slices.Clone(s)}
	case Lookup:
		_, ok := slices.BinarySearch(s, op.E)
		return s, Val{Found: ok}
	case Add:
		i, ok := slices.BinarySearch(s, op.E)
		if ok {
			return s, Val{}
		}
		next := make(State, 0, len(s)+1)
		next = append(next, s[:i]...)
		next = append(next, op.E)
		next = append(next, s[i:]...)
		return next, Val{}
	default:
		return s, Val{}
	}
}

// Merge is set union of the two branches (linear merge of sorted slices).
func (Set) Merge(_, a, b State) State {
	out := make(State, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Spec is F_gset: read returns every element ever added; lookup reports
// whether the element was ever added.
func Spec(op Op, abs *core.AbstractState[Op, Val]) Val {
	members := specMembers(abs)
	switch op.Kind {
	case Read:
		return Val{Elems: members}
	case Lookup:
		_, ok := slices.BinarySearch(members, op.E)
		return Val{Found: ok}
	default:
		return Val{}
	}
}

// Rsim relates abstract and concrete states: the concrete slice is exactly
// the sorted set of added elements.
func Rsim(abs *core.AbstractState[Op, Val], s State) bool {
	if !slices.IsSorted([]int64(s)) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return false
		}
	}
	return slices.Equal(specMembers(abs), []int64(s))
}

func specMembers(abs *core.AbstractState[Op, Val]) []int64 {
	seen := make(map[int64]bool)
	var members []int64
	for _, e := range abs.Events() {
		if o := abs.Oper(e); o.Kind == Add && !seen[o.E] {
			seen[o.E] = true
			members = append(members, o.E)
		}
	}
	slices.Sort(members)
	return members
}
