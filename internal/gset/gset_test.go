package gset

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func apply(t *testing.T, s State, ops ...Op) State {
	t.Helper()
	var impl Set
	for i, op := range ops {
		s, _ = impl.Do(op, s, core.Timestamp(i+1))
	}
	return s
}

func TestSetAddRead(t *testing.T) {
	var impl Set
	s := apply(t, impl.Init(),
		Op{Kind: Add, E: 3}, Op{Kind: Add, E: 1}, Op{Kind: Add, E: 3})
	_, v := impl.Do(Op{Kind: Read}, s, 10)
	if !slices.Equal(v.Elems, []int64{1, 3}) {
		t.Fatalf("read = %v", v.Elems)
	}
	_, v = impl.Do(Op{Kind: Lookup, E: 3}, s, 11)
	if !v.Found {
		t.Fatal("lookup 3 must succeed")
	}
	_, v = impl.Do(Op{Kind: Lookup, E: 2}, s, 12)
	if v.Found {
		t.Fatal("lookup 2 must fail")
	}
}

func TestSetDoIsPersistent(t *testing.T) {
	var impl Set
	s1 := apply(t, impl.Init(), Op{Kind: Add, E: 1})
	s2, _ := impl.Do(Op{Kind: Add, E: 2}, s1, 5)
	if len(s1) != 1 || len(s2) != 2 {
		t.Fatal("Do must not mutate its input state")
	}
}

func TestMergeUnion(t *testing.T) {
	var impl Set
	a := State{1, 3, 5}
	b := State{2, 3, 4}
	got := impl.Merge(State{3}, a, b)
	if !slices.Equal([]int64(got), []int64{1, 2, 3, 4, 5}) {
		t.Fatalf("merge = %v", got)
	}
}

func TestMergePropertiesQuick(t *testing.T) {
	var impl Set
	gen := func(r *rand.Rand) State {
		n := r.Intn(10)
		m := map[int64]bool{}
		for i := 0; i < n; i++ {
			m[int64(r.Intn(20))] = true
		}
		var s State
		for e := range m {
			s = append(s, e)
		}
		slices.Sort([]int64(s))
		return s
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(gen(r))
			}
		},
	}
	symmetric := func(l, a, b State) bool {
		return slices.Equal([]int64(impl.Merge(l, a, b)), []int64(impl.Merge(l, b, a)))
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Error(err)
	}
	idempotent := func(l, a State) bool {
		return slices.Equal([]int64(impl.Merge(l, a, a)), []int64(a))
	}
	if err := quick.Check(idempotent, cfg); err != nil {
		t.Error(err)
	}
	sortedNoDup := func(l, a, b State) bool {
		m := impl.Merge(l, a, b)
		for i := 1; i < len(m); i++ {
			if m[i-1] >= m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(sortedNoDup, cfg); err != nil {
		t.Error(err)
	}
}

func TestSpecAndRsim(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	e1 := h.Append(Op{Kind: Add, E: 5}, Val{}, 1, nil)
	e2 := h.Append(Op{Kind: Add, E: 2}, Val{}, 2, []core.EventID{e1})
	e3 := h.Append(Op{Kind: Add, E: 5}, Val{}, 3, nil) // concurrent duplicate
	abs := core.StateOf(h, []core.EventID{e1, e2, e3})
	v := Spec(Op{Kind: Read}, abs)
	if !slices.Equal(v.Elems, []int64{2, 5}) {
		t.Fatalf("spec read = %v", v.Elems)
	}
	if !Spec(Op{Kind: Lookup, E: 2}, abs).Found || Spec(Op{Kind: Lookup, E: 9}, abs).Found {
		t.Fatal("spec lookup")
	}
	if !Rsim(abs, State{2, 5}) {
		t.Fatal("Rsim must accept the faithful state")
	}
	if Rsim(abs, State{2}) || Rsim(abs, State{5, 2}) || Rsim(abs, State{2, 2, 5}) {
		t.Fatal("Rsim must reject missing, unsorted, or duplicated states")
	}
}

func TestValEq(t *testing.T) {
	if !ValEq(Val{Elems: []int64{1}}, Val{Elems: []int64{1}}) {
		t.Fatal("equal values must compare equal")
	}
	if ValEq(Val{Elems: []int64{1}}, Val{Elems: []int64{2}}) {
		t.Fatal("different elems")
	}
	if ValEq(Val{Found: true}, Val{Found: false}) {
		t.Fatal("different found")
	}
}
