package mesh

// Quarantine state-machine tests against the scripted Syncer: the
// classifier decides transient vs. violation, violations accumulate
// toward quarantine across interleaved transient failures, the
// quarantine schedule replaces the ordinary backoff, and one clean
// exchange lifts the state while keeping the recorded reason.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

var errCorrupt = errors.New("corrupt frame from peer")

// violationConfig is fastConfig plus a classifier that marks errCorrupt
// a violation and a tight quarantine window.
func violationConfig() Config {
	c := fastConfig()
	c.Classify = func(err error) FailureClass {
		if errors.Is(err, errCorrupt) {
			return FailViolation
		}
		return FailTransient
	}
	c.QuarantineAfter = 3
	c.QuarantineMin = 60 * time.Millisecond
	c.QuarantineMax = 240 * time.Millisecond
	return c
}

func peerState(t *testing.T, e *Engine, addr string) PeerStats {
	t.Helper()
	st, ok := e.PeerStats(addr)
	if !ok {
		t.Fatalf("peer %s not supervised", addr)
	}
	return st
}

func TestQuarantineAfterConsecutiveViolations(t *testing.T) {
	s := &script{fn: func(ctx context.Context, n int, addr string, objects []string) (Report, error) {
		return Report{}, errCorrupt
	}}
	e := New(s, violationConfig())
	defer e.Close()
	e.AddPeer("p1")
	waitFor(t, "quarantine", func() bool { return peerState(t, e, "p1").Quarantined })
	st := peerState(t, e, "p1")
	if st.Violations < 3 || st.ConsecutiveViolations < 3 {
		t.Fatalf("violations = %d (consecutive %d), want >= 3", st.Violations, st.ConsecutiveViolations)
	}
	if st.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", st.Quarantines)
	}
	if !strings.Contains(st.QuarantineReason, "corrupt frame") {
		t.Fatalf("quarantine reason %q does not record the violation", st.QuarantineReason)
	}
	if st.Backoff < 60*time.Millisecond {
		t.Fatalf("backoff %v below the quarantine schedule's minimum", st.Backoff)
	}
}

func TestTransientFailuresNeverQuarantine(t *testing.T) {
	s := &script{fn: func(ctx context.Context, n int, addr string, objects []string) (Report, error) {
		return Report{}, errors.New("connection refused")
	}}
	e := New(s, violationConfig())
	defer e.Close()
	e.AddPeer("p1")
	waitFor(t, "a failing streak", func() bool { return peerState(t, e, "p1").ConsecutiveFailures >= 5 })
	st := peerState(t, e, "p1")
	if st.Quarantined || st.Violations != 0 {
		t.Fatalf("transient failures quarantined the peer: %+v", st)
	}
	if st.Backoff > 40*time.Millisecond {
		t.Fatalf("backoff %v escaped the ordinary schedule", st.Backoff)
	}
}

func TestTransientFailureDoesNotResetViolationStreak(t *testing.T) {
	// Violations interleaved with resets — the signature of a corrupting
	// peer whose cuts sometimes beat its corruption. The streak must
	// survive the transient failures, or mixed-fault peers never
	// quarantine.
	s := &script{fn: func(ctx context.Context, n int, addr string, objects []string) (Report, error) {
		if n%2 == 0 {
			return Report{}, errCorrupt
		}
		return Report{}, errors.New("connection reset")
	}}
	e := New(s, violationConfig())
	defer e.Close()
	e.AddPeer("p1")
	waitFor(t, "quarantine despite interleaved resets", func() bool {
		return peerState(t, e, "p1").Quarantined
	})
}

func TestQuarantineRecoveryOnCleanExchange(t *testing.T) {
	s := &script{fn: func(ctx context.Context, n int, addr string, objects []string) (Report, error) {
		if n < 4 {
			return Report{}, errCorrupt
		}
		return Report{}, nil
	}}
	e := New(s, violationConfig())
	defer e.Close()
	e.AddPeer("p1")
	waitFor(t, "quarantine then recovery", func() bool {
		st := peerState(t, e, "p1")
		return !st.Quarantined && st.Quarantines == 1 && st.LastError == ""
	})
	st := peerState(t, e, "p1")
	if st.ConsecutiveViolations != 0 || st.ConsecutiveFailures != 0 {
		t.Fatalf("streaks not cleared on recovery: %+v", st)
	}
	if !strings.Contains(st.QuarantineReason, "corrupt frame") {
		t.Fatalf("recovery erased the quarantine record: %q", st.QuarantineReason)
	}
	if st.Violations < 3 {
		t.Fatalf("violation total %d lost history", st.Violations)
	}
}

func TestQuarantineBackoffDoublesToMax(t *testing.T) {
	s := &script{fn: func(ctx context.Context, n int, addr string, objects []string) (Report, error) {
		return Report{}, errCorrupt
	}}
	e := New(s, violationConfig())
	defer e.Close()
	e.AddPeer("p1")
	waitFor(t, "quarantine backoff cap", func() bool {
		return peerState(t, e, "p1").Backoff == 240*time.Millisecond
	})
	// Still quarantined, still counting, never past the cap.
	st := peerState(t, e, "p1")
	if !st.Quarantined {
		t.Fatalf("peer left quarantine while still violating: %+v", st)
	}
}

func TestNilClassifierNeverQuarantines(t *testing.T) {
	s := &script{fn: func(ctx context.Context, n int, addr string, objects []string) (Report, error) {
		return Report{}, errCorrupt
	}}
	e := New(s, fastConfig()) // no Classify
	defer e.Close()
	e.AddPeer("p1")
	waitFor(t, "a failing streak", func() bool { return peerState(t, e, "p1").ConsecutiveFailures >= 4 })
	if st := peerState(t, e, "p1"); st.Quarantined || st.Violations != 0 {
		t.Fatalf("nil classifier produced violations: %+v", st)
	}
}
