package mesh

// Engine unit tests against a scripted Syncer: supervision cadence,
// push-on-commit coalescing, backoff growth and recovery, outbox
// overflow, interest learning, removal and drain. Timing assertions are
// one-sided (at least / at most with generous slack) so loaded CI
// machines do not flake them.

import (
	"context"
	"errors"
	"slices"
	"sync"
	"testing"
	"time"
)

// call records one MeshSync invocation.
type call struct {
	addr    string
	objects []string
}

// script is a programmable Syncer: fn decides each call's outcome, and
// every call is recorded.
type script struct {
	mu    sync.Mutex
	calls []call
	fn    func(ctx context.Context, n int, addr string, objects []string) (Report, error)
}

func (s *script) MeshSync(ctx context.Context, addr string, objects []string) (Report, error) {
	s.mu.Lock()
	n := len(s.calls)
	s.calls = append(s.calls, call{addr: addr, objects: slices.Clone(objects)})
	fn := s.fn
	s.mu.Unlock()
	if fn == nil {
		return Report{}, nil
	}
	return fn(ctx, n, addr, objects)
}

func (s *script) snapshot() []call {
	s.mu.Lock()
	defer s.mu.Unlock()
	return slices.Clone(s.calls)
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastConfig is a test cadence: rounds every 20ms, no jitter, tight
// backoff so failure paths run inside the test timeout.
func fastConfig() Config {
	return Config{
		Interval:   20 * time.Millisecond,
		Jitter:     -1,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 40 * time.Millisecond,
		PushDelay:  2 * time.Millisecond,
		OutboxSize: 4,
	}
}

func TestAntiEntropyRounds(t *testing.T) {
	s := &script{}
	e := New(s, fastConfig())
	defer e.Close()
	e.AddPeer("p1")

	waitFor(t, "three anti-entropy rounds", func() bool {
		st, _ := e.PeerStats("p1")
		return st.Rounds >= 3
	})
	for _, c := range s.snapshot() {
		if c.addr != "p1" {
			t.Fatalf("synced unexpected peer %q", c.addr)
		}
		if c.objects != nil {
			t.Fatalf("anti-entropy round narrowed to %v, want all objects", c.objects)
		}
	}
	st, ok := e.PeerStats("p1")
	if !ok {
		t.Fatal("peer stats missing")
	}
	if st.Failures != 0 || st.Backoff != 0 || st.Score != 1 {
		t.Fatalf("healthy peer has failure state: %+v", st)
	}
	if st.LastConverged.IsZero() {
		t.Fatal("LastConverged not set after successful rounds")
	}
}

func TestPushOnCommitCoalesces(t *testing.T) {
	cfg := fastConfig()
	cfg.Interval = 10 * time.Second // isolate the push path
	cfg.PushDelay = 20 * time.Millisecond
	s := &script{}
	e := New(s, cfg)
	defer e.Close()
	e.AddPeer("p1")

	// The initial probe round runs at Interval/16; let it pass so the
	// next call observed is the push.
	waitFor(t, "initial probe", func() bool { return len(s.snapshot()) >= 1 })

	e.NotifyCommit("a")
	e.NotifyCommit("b") // lands within PushDelay: same push
	waitFor(t, "push round", func() bool {
		st, _ := e.PeerStats("p1")
		return st.Pushes >= 1
	})
	var push *call
	for _, c := range s.snapshot() {
		if c.objects != nil {
			push = &c
			break
		}
	}
	if push == nil {
		t.Fatal("no narrowed push round recorded")
	}
	slices.Sort(push.objects)
	if !slices.Equal(push.objects, []string{"a", "b"}) {
		t.Fatalf("push round covered %v, want [a b]", push.objects)
	}
	st, _ := e.PeerStats("p1")
	if st.Pushes != 1 {
		t.Fatalf("burst of two commits cost %d pushes, want 1", st.Pushes)
	}
}

func TestBackoffGrowsAndRecovers(t *testing.T) {
	cfg := fastConfig()
	var failing sync.Map
	failing.Store("on", true)
	s := &script{}
	s.fn = func(_ context.Context, n int, addr string, objects []string) (Report, error) {
		if on, _ := failing.Load("on"); on.(bool) {
			return Report{}, errors.New("dial refused")
		}
		return Report{}, nil
	}
	e := New(s, cfg)
	defer e.Close()
	e.AddPeer("p1")

	waitFor(t, "three consecutive failures", func() bool {
		st, _ := e.PeerStats("p1")
		return st.ConsecutiveFailures >= 3
	})
	st, _ := e.PeerStats("p1")
	if st.Backoff < cfg.BackoffMax {
		t.Fatalf("backoff %v after %d failures, want cap %v", st.Backoff, st.ConsecutiveFailures, cfg.BackoffMax)
	}
	if st.Score >= 0.5 {
		t.Fatalf("score %v after repeated failures, want < 0.5", st.Score)
	}
	if st.LastError == "" {
		t.Fatal("LastError empty while failing")
	}

	failing.Store("on", false)
	waitFor(t, "recovery", func() bool {
		st, _ := e.PeerStats("p1")
		return st.ConsecutiveFailures == 0 && st.Rounds >= 1
	})
	st, _ = e.PeerStats("p1")
	if st.Backoff != 0 {
		t.Fatalf("backoff %v after success, want 0", st.Backoff)
	}
	if st.Score <= 0.5 {
		t.Fatalf("score %v after recovery, want > 0.5 (halfway to 1)", st.Score)
	}
	if st.LastError != "" {
		t.Fatalf("LastError %q after success, want cleared", st.LastError)
	}
	if st.Failures < 3 {
		t.Fatalf("cumulative Failures %d, want >= 3", st.Failures)
	}
}

func TestBackoffSchedule(t *testing.T) {
	e := New(&script{}, Config{BackoffMin: 10 * time.Millisecond, BackoffMax: 65 * time.Millisecond})
	defer e.Close()
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		65 * time.Millisecond, 65 * time.Millisecond,
	}
	for i, w := range want {
		if got := e.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestOutboxOverflowDegradesToFullRound(t *testing.T) {
	cfg := fastConfig()
	cfg.Interval = 10 * time.Second
	cfg.OutboxSize = 2
	cfg.PushDelay = 20 * time.Millisecond
	s := &script{}
	e := New(s, cfg)
	defer e.Close()
	e.AddPeer("p1")
	waitFor(t, "initial probe", func() bool { return len(s.snapshot()) >= 1 })

	before := len(s.snapshot())
	for _, o := range []string{"a", "b", "c"} { // third enqueue overflows
		e.NotifyCommit(o)
	}
	waitFor(t, "overflow push", func() bool {
		st, _ := e.PeerStats("p1")
		return st.Pushes >= 1
	})
	calls := s.snapshot()
	if got := calls[before].objects; got != nil {
		t.Fatalf("overflowed outbox pushed %v, want nil (full round)", got)
	}
}

func TestUninterestedObjectsSkipPushes(t *testing.T) {
	cfg := fastConfig()
	cfg.Interval = 10 * time.Second
	s := &script{}
	s.fn = func(_ context.Context, n int, addr string, objects []string) (Report, error) {
		if objects == nil {
			return Report{Missed: []string{"x"}}, nil // full rounds probe: peer lacks x
		}
		return Report{}, nil
	}
	e := New(s, cfg)
	defer e.Close()
	e.AddPeer("p1")
	waitFor(t, "initial probe learning interest", func() bool {
		st, _ := e.PeerStats("p1")
		return st.Rounds >= 1
	})

	e.NotifyCommit("x") // peer known uninterested: no push
	e.NotifyCommit("y")
	waitFor(t, "push for y", func() bool {
		st, _ := e.PeerStats("p1")
		return st.Pushes >= 1
	})
	for _, c := range s.snapshot() {
		if slices.Contains(c.objects, "x") {
			t.Fatalf("pushed uninterested object x: %v", c.objects)
		}
	}
}

func TestRemovePeerStopsSupervision(t *testing.T) {
	s := &script{}
	e := New(s, fastConfig())
	defer e.Close()
	e.AddPeer("p1")
	e.AddPeer("p2")
	if got := e.Peers(); !slices.Equal(got, []string{"p1", "p2"}) {
		t.Fatalf("Peers() = %v", got)
	}
	waitFor(t, "p1 round", func() bool {
		st, _ := e.PeerStats("p1")
		return st.Rounds >= 1
	})
	e.RemovePeer("p1")
	e.RemovePeer("p1") // idempotent
	if got := e.Peers(); !slices.Equal(got, []string{"p2"}) {
		t.Fatalf("Peers() after remove = %v", got)
	}
	if _, ok := e.PeerStats("p1"); ok {
		t.Fatal("removed peer still reports stats")
	}
	// The supervisor exits: over a few intervals, the call count for p1
	// stops moving.
	var p1Calls = func() int {
		n := 0
		for _, c := range s.snapshot() {
			if c.addr == "p1" {
				n++
			}
		}
		return n
	}
	settled := p1Calls()
	time.Sleep(100 * time.Millisecond)         // ≥ 5 intervals: an alive supervisor would round
	if again := p1Calls(); again > settled+1 { // +1: a round already in flight may land
		t.Fatalf("removed peer kept syncing: %d -> %d calls", settled, again)
	}
}

// TestCloseDrainsBlockedSync: a sync that blocks until its context is
// cancelled does not wedge Close — Close cancels the engine context
// (unblocking the exchange) and waits for the supervisor to exit.
func TestCloseDrainsBlockedSync(t *testing.T) {
	started := make(chan struct{}, 1)
	s := &script{}
	s.fn = func(ctx context.Context, n int, addr string, objects []string) (Report, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done() // the real syncer's dial/exchange aborts the same way
		return Report{}, ctx.Err()
	}
	e := New(s, fastConfig())
	e.AddPeer("p1")
	<-started

	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on a blocked sync")
	}
	e.Close() // idempotent
	e.AddPeer("p2")
	if got := e.Peers(); !slices.Equal(got, []string{"p1"}) {
		t.Fatalf("AddPeer after Close changed the peer set: %v", got)
	}
}
