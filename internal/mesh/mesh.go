// Package mesh is the always-on replication engine: the background
// daemon that keeps a node converged with its peers without the
// application ever calling SyncWith. The paper's system model (and every
// deployment of it) assumes replicas that gossip continuously; this
// package supplies that loop as a supervisor per configured peer.
//
// Each peer gets one supervisor goroutine running jittered anti-entropy
// rounds: every Interval (± up to Jitter) the supervisor syncs every
// shared object with the peer through the same negotiate-and-ship-missing
// code path a manual SyncWith uses. Between rounds, local commits are
// pushed immediately: the replica layer calls NotifyCommit on every local
// operation and every remote-merge head move, the engine enqueues the
// object in a bounded per-peer outbox (bursts coalesce — the outbox is a
// set, and the supervisor waits PushDelay before draining it), and the
// supervisor runs a push round covering only the dirty objects. An outbox
// that overflows OutboxSize degrades to a full round, never drops a
// commit.
//
// Failure handling is per peer and classified: a transient failure (a
// failed dial, a reset — the peer is presumed down) doubles the retry
// delay (BackoffMin up to BackoffMax) and halves the peer's health
// score; a success resets the backoff instantly and recovers the score
// halfway to 1 — fast recovery, so one blip does not linger. A protocol
// violation (Config.Classify reports FailViolation: corrupt frames, bad
// hellos, hash mismatches) additionally counts toward quarantine: after
// QuarantineAfter violations in a row the peer moves to the quarantine
// schedule (QuarantineMin doubling to QuarantineMax) with the triggering
// reason recorded in its PeerStats, and stays there until one clean
// exchange proves it recovered. While a peer is backing off or
// quarantined, pushes to it are suppressed (the outbox keeps
// accumulating) and the retry timer owns the schedule. Close cancels the
// engine context — aborting any in-flight dial or exchange — and drains
// every supervisor before returning, so a peer that is down can never
// wedge node shutdown.
//
// The engine knows nothing of the sync protocol: it drives a Syncer (the
// replica node) and consumes the per-round Report, including which
// objects the peer turned out not to host — those are skipped by later
// pushes until a full anti-entropy round observes the peer hosting them
// (the subscription model: interest is learned from the wire, not
// configured).
package mesh

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Report is what one sync exchange with a peer cost and found out.
// The replica layer fills it from its per-call byte and commit counters.
type Report struct {
	BytesSent   int64
	BytesRecv   int64
	CommitsSent int64
	CommitsRecv int64
	// Missed lists the requested objects the peer answered "not hosted"
	// (or "different datatype") for; the engine uses it to learn peer
	// interest so pushes skip objects the peer does not subscribe to.
	Missed []string
}

// Syncer runs one sync exchange with the peer at addr. objects narrows
// the exchange to the named objects (a push round); nil means every
// object the node hosts (an anti-entropy round). The context aborts an
// in-flight dial or exchange — engine shutdown cancels it. The Report
// must be valid (best-effort counters) even when err is non-nil.
type Syncer interface {
	MeshSync(ctx context.Context, addr string, objects []string) (Report, error)
}

// FailureClass is how the supervisor schedules retries after a failed
// exchange: the engine knows nothing of the sync protocol, so the
// Config.Classify hook (supplied by the replica layer) maps errors to
// classes.
type FailureClass int

const (
	// FailTransient is ordinary network trouble — refused or timed-out
	// dials, resets, stalls. The peer is presumed honest and merely
	// unreachable: the exponential backoff schedule applies.
	FailTransient FailureClass = iota
	// FailViolation is a protocol violation — corrupt frames, malformed
	// payloads, hash mismatches. The bytes arrived and were wrong:
	// enough violations in a row move the peer into quarantine, a far
	// slower retry schedule with the triggering reason recorded in
	// PeerStats.
	FailViolation
)

// Config tunes the engine. The zero value of any field selects its
// default; DefaultConfig lists them.
type Config struct {
	// Interval is the anti-entropy round period per peer.
	Interval time.Duration
	// Jitter is the maximum random addition to each round's delay,
	// de-synchronizing supervisors so a fleet does not dial in lockstep.
	// Negative disables jitter; zero selects the default Interval/4.
	Jitter time.Duration
	// BackoffMin is the retry delay after the first failure; each further
	// consecutive failure doubles it up to BackoffMax.
	BackoffMin time.Duration
	// BackoffMax caps the retry delay.
	BackoffMax time.Duration
	// PushDelay is how long a supervisor waits after a commit
	// notification before draining the outbox, so a burst of commits
	// coalesces into one push round. Negative disables the wait.
	PushDelay time.Duration
	// OutboxSize bounds the per-peer outbox (distinct dirty objects); an
	// overflowing outbox degrades to a full anti-entropy round.
	OutboxSize int
	// Classify maps a failed exchange's error to its FailureClass. Nil
	// classifies everything transient (no quarantine).
	Classify func(error) FailureClass
	// QuarantineAfter is how many violations in a row — without an
	// intervening success; transient failures in between do not reset
	// the streak — move a peer into quarantine.
	QuarantineAfter int
	// QuarantineMin is the quarantined retry delay, doubling per further
	// violation up to QuarantineMax. Both default far above the ordinary
	// backoff window: a hostile peer is probed occasionally for
	// recovery, not retried eagerly.
	QuarantineMin time.Duration
	QuarantineMax time.Duration
	// Obs, when non-nil, receives the engine's metrics (round outcomes,
	// overflows, quarantine transitions — see obs.go). Nil disables
	// instrumentation.
	Obs *obs.Registry
	// Recorder, when non-nil, receives lifecycle events: backoff
	// changes, quarantine enter/lift with the triggering reason.
	Recorder *obs.Recorder
}

// DefaultConfig returns the engine defaults: 2s rounds with up to 500ms
// of jitter, backoff 250ms doubling to 30s, 5ms push coalescing, a
// 64-object outbox, and quarantine after 3 straight violations with
// retries from 1m doubling to 15m.
func DefaultConfig() Config {
	return Config{
		Interval:        2 * time.Second,
		Jitter:          500 * time.Millisecond,
		BackoffMin:      250 * time.Millisecond,
		BackoffMax:      30 * time.Second,
		PushDelay:       5 * time.Millisecond,
		OutboxSize:      64,
		QuarantineAfter: 3,
		QuarantineMin:   time.Minute,
		QuarantineMax:   15 * time.Minute,
	}
}

// withDefaults resolves zero fields to the defaults.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	switch {
	case c.Jitter < 0:
		c.Jitter = 0
	case c.Jitter == 0:
		c.Jitter = c.Interval / 4
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = d.BackoffMin
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = max(d.BackoffMax, c.BackoffMin)
	}
	switch {
	case c.PushDelay < 0:
		c.PushDelay = 0
	case c.PushDelay == 0:
		c.PushDelay = d.PushDelay
	}
	if c.OutboxSize <= 0 {
		c.OutboxSize = d.OutboxSize
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = d.QuarantineAfter
	}
	if c.QuarantineMin <= 0 {
		c.QuarantineMin = d.QuarantineMin
	}
	if c.QuarantineMax < c.QuarantineMin {
		c.QuarantineMax = max(d.QuarantineMax, c.QuarantineMin)
	}
	return c
}

// PeerStats is a snapshot of one peer's supervisor state.
type PeerStats struct {
	// Addr is the peer's dial address.
	Addr string
	// Rounds counts completed anti-entropy rounds; Pushes counts
	// completed push-on-commit rounds.
	Rounds int64
	Pushes int64
	// Failures counts failed exchanges; ConsecutiveFailures is the
	// current failing streak (zero for a healthy peer).
	Failures            int64
	ConsecutiveFailures int
	// Backoff is the current retry delay (zero when healthy) and Score
	// the peer's health in (0, 1]: halved per failure, recovered halfway
	// to 1 per success.
	Backoff time.Duration
	Score   float64
	// Wire cost accumulated across this peer's exchanges, both
	// directions, client side.
	BytesSent   int64
	BytesRecv   int64
	CommitsSent int64
	CommitsRecv int64
	// LastConverged is when the last exchange completed successfully
	// (zero before the first); LastError is the most recent failure
	// message, cleared on success.
	LastConverged time.Time
	LastError     string
	// Violations counts exchanges that failed with a protocol violation
	// (as classified by Config.Classify) rather than plain network
	// trouble; ConsecutiveViolations is the streak since the last
	// success (transient failures in between do not reset it).
	Violations            int64
	ConsecutiveViolations int
	// Quarantined reports the peer is on the quarantine retry schedule;
	// Quarantines counts how many times it entered that state. The first
	// clean exchange lifts the quarantine. QuarantineReason is the error
	// that triggered the most recent quarantine; it is retained after
	// recovery as a record of what happened.
	Quarantined      bool
	Quarantines      int64
	QuarantineReason string
}

// Engine runs one supervisor per peer. Create with New, wire commits in
// with NotifyCommit, and Close to drain. Safe for concurrent use.
type Engine struct {
	syncer Syncer
	cfg    Config

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	wg     sync.WaitGroup

	mu     sync.RWMutex
	peers  map[string]*peer
	closed bool

	rngMu sync.Mutex
	rng   *rand.Rand

	// metrics and rec are the optional instrumentation (obs.go); nil
	// without Config.Obs / Config.Recorder.
	metrics *meshMetrics
	rec     *obs.Recorder
}

// New creates an engine driving s. No goroutines start until AddPeer.
func New(s Syncer, cfg Config) *Engine {
	ctx, cancel := context.WithCancel(context.Background())
	return &Engine{
		syncer:  s,
		cfg:     cfg.withDefaults(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		peers:   make(map[string]*peer),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		metrics: newMeshMetrics(cfg.Obs),
		rec:     cfg.Recorder,
	}
}

// peer is one supervised peer: its outbox, failure state and counters,
// all guarded by mu except the channels.
type peer struct {
	addr    string
	kick    chan struct{} // cap 1: commit notifications, naturally coalescing
	removed chan struct{} // closed by RemovePeer

	mu sync.Mutex
	// outbox is the set of dirty objects awaiting a push; full records an
	// overflow (the next push degrades to a full round).
	outbox map[string]struct{}
	full   bool
	// uninterested is the learned non-subscription set: objects the peer
	// answered HelloMiss for on its most recent probe.
	uninterested map[string]struct{}
	stats        PeerStats
	removeOnce   sync.Once
}

// AddPeer registers addr and starts its supervisor. Re-adding a present
// peer (or adding after Close) is a no-op.
func (e *Engine) AddPeer(addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	if _, ok := e.peers[addr]; ok {
		return
	}
	p := &peer{
		addr:    addr,
		kick:    make(chan struct{}, 1),
		removed: make(chan struct{}),
		stats:   PeerStats{Addr: addr, Score: 1},
	}
	e.peers[addr] = p
	e.wg.Add(1)
	go e.supervise(p)
}

// RemovePeer stops addr's supervisor (cancelling nothing in flight —
// the current exchange, if any, finishes or fails on its own) and
// forgets the peer. Removing an unknown peer is a no-op.
func (e *Engine) RemovePeer(addr string) {
	e.mu.Lock()
	p, ok := e.peers[addr]
	if ok {
		delete(e.peers, addr)
	}
	e.mu.Unlock()
	if ok {
		p.removeOnce.Do(func() {
			close(p.removed)
			e.forget(p)
		})
	}
}

// Peers returns the supervised peer addresses, sorted.
func (e *Engine) Peers() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.peers))
	for addr := range e.peers {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots every peer's supervisor state, keyed by address.
func (e *Engine) Stats() map[string]PeerStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]PeerStats, len(e.peers))
	for addr, p := range e.peers {
		p.mu.Lock()
		out[addr] = p.stats
		p.mu.Unlock()
	}
	return out
}

// PeerStats snapshots one peer's state; ok is false for unknown peers.
func (e *Engine) PeerStats(addr string) (PeerStats, bool) {
	e.mu.RLock()
	p, ok := e.peers[addr]
	e.mu.RUnlock()
	if !ok {
		return PeerStats{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats, true
}

// NotifyCommit records that object changed locally (a commit or a
// remote-merge head move) and kicks every peer's supervisor for an
// immediate push. Peers known not to host the object are skipped; peers
// in backoff accumulate the object for their next retry instead of being
// dialled while failing.
func (e *Engine) NotifyCommit(object string) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return
	}
	for _, p := range e.peers {
		if p.enqueue(object, e.cfg.OutboxSize) {
			e.metrics.overflowed()
			e.event("outbox-overflow", p.addr, "next push degrades to a full round")
		}
	}
}

// enqueue adds object to the outbox (degrading to a full round on
// overflow) and kicks the supervisor. It reports whether this call
// overflowed the outbox (the transition, not the steady state).
func (p *peer) enqueue(object string, limit int) (overflowed bool) {
	p.mu.Lock()
	if _, skip := p.uninterested[object]; skip {
		p.mu.Unlock()
		return false
	}
	if !p.full {
		if p.outbox == nil {
			p.outbox = make(map[string]struct{})
		}
		if len(p.outbox) >= limit {
			p.outbox, p.full = nil, true
			overflowed = true
		} else {
			p.outbox[object] = struct{}{}
		}
	}
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
	return overflowed
}

// takeOutbox drains the outbox: the dirty object names (nil with
// full=true after an overflow — sync everything) and resets it.
func (p *peer) takeOutbox() (objects []string, full bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	full = p.full
	for o := range p.outbox {
		objects = append(objects, o)
	}
	p.outbox, p.full = nil, false
	return objects, full
}

// inBackoff reports whether the peer is on a failing streak.
func (p *peer) inBackoff() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats.ConsecutiveFailures > 0
}

// Close stops every supervisor, cancels any in-flight exchange, and
// waits for the drain. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	close(e.done)
	e.wg.Wait()
}

// jitter returns a uniform duration in [0, max).
func (e *Engine) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return time.Duration(e.rng.Int63n(int64(max)))
}

// supervise is one peer's daemon loop: an initial probe round almost
// immediately (jitter only), then anti-entropy every Interval+jitter,
// push rounds on kicks, and backoff-timed retries while failing.
func (e *Engine) supervise(p *peer) {
	defer e.wg.Done()
	timer := time.NewTimer(e.jitter(e.cfg.Jitter) + e.cfg.Interval/16)
	defer timer.Stop()
	for {
		push := false
		select {
		case <-e.done:
			return
		case <-p.removed:
			return
		case <-timer.C:
		case <-p.kick:
			// Coalesce the burst: commits arriving within PushDelay join
			// this push instead of paying one round each.
			if d := e.cfg.PushDelay; d > 0 {
				coalesce := time.NewTimer(d)
				select {
				case <-e.done:
					coalesce.Stop()
					return
				case <-p.removed:
					coalesce.Stop()
					return
				case <-coalesce.C:
				}
			}
			if p.inBackoff() {
				// A failing peer is the backoff timer's job; the outbox
				// keeps accumulating until the retry succeeds.
				continue
			}
			push = true
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		var objects []string
		if push {
			var full bool
			objects, full = p.takeOutbox()
			if full || len(objects) == 0 {
				objects = nil // overflow (or spurious kick): full round
			}
		}
		err := e.round(p, objects, push)
		timer.Reset(e.nextDelay(p, err))
	}
}

// round runs one exchange and folds its outcome into the peer's state.
func (e *Engine) round(p *peer, objects []string, push bool) error {
	kind := "full"
	if push {
		kind = "push"
	}
	rep, err := e.syncer.MeshSync(e.ctx, p.addr, objects)
	p.mu.Lock()
	defer p.mu.Unlock()
	st := &p.stats
	prevBackoff, prevQuar := st.Backoff, st.Quarantined
	st.BytesSent += rep.BytesSent
	st.BytesRecv += rep.BytesRecv
	st.CommitsSent += rep.CommitsSent
	st.CommitsRecv += rep.CommitsRecv
	if err != nil {
		st.Failures++
		st.ConsecutiveFailures++
		st.Score /= 2
		st.LastError = err.Error()
		outcome := "transient"
		if e.cfg.Classify != nil && e.cfg.Classify(err) == FailViolation {
			outcome = "violation"
			st.Violations++
			st.ConsecutiveViolations++
			if !st.Quarantined && st.ConsecutiveViolations >= e.cfg.QuarantineAfter {
				st.Quarantined = true
				st.Quarantines++
				st.QuarantineReason = err.Error()
			}
		}
		// A quarantined peer retries on the quarantine schedule whatever
		// its failures look like now — recovery is declared by a clean
		// exchange, not by the violations merely pausing.
		if st.Quarantined {
			st.Backoff = e.quarantineBackoff(st.ConsecutiveViolations - e.cfg.QuarantineAfter + 1)
		} else {
			st.Backoff = e.backoff(st.ConsecutiveFailures)
		}
		e.metrics.round(kind, outcome)
		e.transitions(p, prevBackoff, prevQuar, st, err)
		return err
	}
	if push {
		st.Pushes++
		e.metrics.pushed(len(objects))
	} else {
		st.Rounds++
	}
	st.ConsecutiveFailures = 0
	st.ConsecutiveViolations = 0
	st.Quarantined = false
	st.Backoff = 0
	st.Score += (1 - st.Score) / 2
	st.LastError = ""
	st.LastConverged = time.Now()
	// Learn interest from the misses: a full round probed everything, so
	// its miss list replaces the set; a push round only refreshes the
	// objects it asked about.
	if objects == nil {
		p.uninterested = nil
		for _, o := range rep.Missed {
			if p.uninterested == nil {
				p.uninterested = make(map[string]struct{})
			}
			p.uninterested[o] = struct{}{}
		}
	} else {
		missed := make(map[string]struct{}, len(rep.Missed))
		for _, o := range rep.Missed {
			missed[o] = struct{}{}
		}
		for _, o := range objects {
			if _, m := missed[o]; m {
				if p.uninterested == nil {
					p.uninterested = make(map[string]struct{})
				}
				p.uninterested[o] = struct{}{}
			} else {
				delete(p.uninterested, o)
			}
		}
	}
	e.metrics.round(kind, "ok")
	e.transitions(p, prevBackoff, prevQuar, st, nil)
	return nil
}

// backoff is the retry delay for the n-th consecutive failure:
// BackoffMin doubling per failure, capped at BackoffMax.
func (e *Engine) backoff(n int) time.Duration {
	d := e.cfg.BackoffMin
	for i := 1; i < n; i++ {
		d *= 2
		if d >= e.cfg.BackoffMax {
			return e.cfg.BackoffMax
		}
	}
	return min(d, e.cfg.BackoffMax)
}

// quarantineBackoff is the retry delay for the n-th violation past the
// quarantine threshold: QuarantineMin doubling up to QuarantineMax.
func (e *Engine) quarantineBackoff(n int) time.Duration {
	d := e.cfg.QuarantineMin
	for i := 1; i < n; i++ {
		d *= 2
		if d >= e.cfg.QuarantineMax {
			return e.cfg.QuarantineMax
		}
	}
	return min(d, e.cfg.QuarantineMax)
}

// nextDelay schedules the supervisor's next wake-up: the jittered round
// interval when healthy, the current backoff (plus a fraction of jitter)
// when failing.
func (e *Engine) nextDelay(p *peer, err error) time.Duration {
	if err != nil {
		p.mu.Lock()
		d := p.stats.Backoff
		p.mu.Unlock()
		return d + e.jitter(e.cfg.Jitter/4+1)
	}
	return e.cfg.Interval + e.jitter(e.cfg.Jitter)
}
