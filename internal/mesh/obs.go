package mesh

// Mesh-layer observability: round outcomes by kind, outbox overflows,
// quarantine transitions, and how many peers are currently backing off
// or quarantined. Lifecycle transitions (backoff changes, quarantine
// enter/lift) are additionally emitted as flight-recorder events when a
// Recorder is configured, so a trace shows *why* a peer went quiet.
// Both hooks are nil-safe: an unconfigured engine pays nothing.

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

type meshMetrics struct {
	reg         *obs.Registry
	overflows   *obs.Counter
	quarEnter   *obs.Counter
	quarLift    *obs.Counter
	backingOff  *obs.Gauge
	quarantined *obs.Gauge
	pushObjects *obs.Counter
}

func newMeshMetrics(reg *obs.Registry) *meshMetrics {
	if reg == nil {
		return nil
	}
	m := &meshMetrics{
		reg:         reg,
		overflows:   reg.Counter("peepul_mesh_outbox_overflows_total"),
		quarEnter:   reg.Counter("peepul_mesh_quarantine_transitions_total", "change", "enter"),
		quarLift:    reg.Counter("peepul_mesh_quarantine_transitions_total", "change", "lift"),
		backingOff:  reg.Gauge("peepul_mesh_peers_backing_off"),
		quarantined: reg.Gauge("peepul_mesh_peers_quarantined"),
		pushObjects: reg.Counter("peepul_mesh_push_objects_total"),
	}
	reg.Describe("peepul_mesh_rounds_total", "completed exchanges by kind (full/push) and outcome (ok/transient/violation)")
	reg.Describe("peepul_mesh_outbox_overflows_total", "outbox overflows degrading the next push to a full round")
	reg.Describe("peepul_mesh_quarantine_transitions_total", "peers entering and leaving quarantine")
	reg.Describe("peepul_mesh_peers_backing_off", "peers currently on the backoff schedule")
	reg.Describe("peepul_mesh_peers_quarantined", "peers currently quarantined")
	reg.Describe("peepul_mesh_push_objects_total", "objects shipped by push rounds (compare with push-round count for coalescing)")
	return m
}

// round records one exchange outcome. The (kind, outcome) counter is
// resolved by name — rounds run at anti-entropy cadence, so the lookup
// cost is irrelevant.
func (m *meshMetrics) round(kind, outcome string) {
	if m != nil {
		m.reg.Counter("peepul_mesh_rounds_total", "kind", kind, "outcome", outcome).Inc()
	}
}

func (m *meshMetrics) overflowed() {
	if m != nil {
		m.overflows.Inc()
	}
}

func (m *meshMetrics) pushed(objects int) {
	if m != nil {
		m.pushObjects.Add(int64(objects))
	}
}

// transitions folds one round's before/after supervisor state into the
// gauges, the quarantine counters, and the event stream.
func (e *Engine) transitions(p *peer, prevBackoff time.Duration, prevQuar bool, st *PeerStats, err error) {
	m := e.metrics
	if prevQuar != st.Quarantined {
		if st.Quarantined {
			if m != nil {
				m.quarEnter.Inc()
				m.quarantined.Add(1)
			}
			e.event("quarantine-enter", p.addr, st.QuarantineReason)
		} else {
			if m != nil {
				m.quarLift.Inc()
				m.quarantined.Add(-1)
			}
			e.event("quarantine-lift", p.addr, "clean exchange")
		}
	}
	if (prevBackoff > 0) != (st.Backoff > 0) {
		if m != nil {
			if st.Backoff > 0 {
				m.backingOff.Add(1)
			} else {
				m.backingOff.Add(-1)
			}
		}
	}
	if prevBackoff != st.Backoff {
		if st.Backoff > 0 {
			detail := fmt.Sprintf("backoff %v after %d consecutive failures", st.Backoff, st.ConsecutiveFailures)
			if err != nil {
				detail += ": " + err.Error()
			}
			e.event("backoff", p.addr, detail)
		} else if prevBackoff > 0 {
			e.event("backoff-reset", p.addr, "exchange succeeded")
		}
	}
}

// event appends one lifecycle event to the flight recorder, nil-safely.
func (e *Engine) event(kind, peer, detail string) {
	if e.rec != nil {
		e.rec.AddEvent(obs.Event{Kind: kind, Peer: peer, Detail: detail})
	}
}

// forget clears a removed (or shut-down) peer's contribution to the
// currently-backing-off / currently-quarantined gauges so they do not
// drift permanently positive.
func (e *Engine) forget(p *peer) {
	m := e.metrics
	if m == nil {
		return
	}
	p.mu.Lock()
	backoff, quar := p.stats.Backoff, p.stats.Quarantined
	p.mu.Unlock()
	if backoff > 0 {
		m.backingOff.Add(-1)
	}
	if quar {
		m.quarantined.Add(-1)
	}
}
