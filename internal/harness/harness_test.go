package harness_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
)

// TestCertifyAll runs the full certification (exhaustive + random
// exploration of the store LTS, checking Φ_do, Φ_merge, Φ_spec, Φ_con at
// every transition) for every registered MRDT. This is the reproduction's
// counterpart of the paper's Table 3 verification runs.
func TestCertifyAll(t *testing.T) {
	for _, r := range harness.All() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := r.Config()
			if testing.Short() {
				cfg.RandomExecutions = min(cfg.RandomExecutions, 25)
			}
			rep := r.Certify(cfg)
			if rep.Err != nil {
				t.Fatalf("certification failed: %v", rep.Err)
			}
			if rep.Obligations == 0 || rep.Executions == 0 {
				t.Fatalf("suspicious report: %+v", rep)
			}
			t.Logf("%s: %d executions, %d transitions, %d obligations in %v",
				rep.Name, rep.Executions, rep.Transitions, rep.Obligations, rep.Duration)
		})
	}
}

// TestCertifyDeep pushes the exhaustive bound one level deeper (the state
// space grows by roughly an order of magnitude) and runs a second random
// seed. Skipped under -short; the default depth already covers every
// two-branch interaction of up to four transitions.
func TestCertifyDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep certification skipped in -short mode")
	}
	for _, r := range harness.All() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := r.Config()
			cfg.MaxSteps++
			cfg.RandomExecutions /= 2
			cfg.Seed = 2
			rep := r.Certify(cfg)
			if rep.Err != nil {
				t.Fatalf("deep certification failed: %v", rep.Err)
			}
			t.Logf("%s: %d executions, %d obligations in %v",
				rep.Name, rep.Executions, rep.Obligations, rep.Duration)
		})
	}
}

// TestCertifySmokeFastBounds keeps a cheap always-on configuration so a
// broken obligation fails fast even under -short.
func TestCertifySmokeFastBounds(t *testing.T) {
	cfg := sim.Config{
		MaxBranches:      2,
		MaxSteps:         3,
		RandomExecutions: 10,
		RandomSteps:      12,
		RandomBranches:   3,
		Seed:             7,
	}
	for _, r := range harness.All() {
		if rep := r.Certify(cfg); rep.Err != nil {
			t.Errorf("%s: %v", r.Name(), rep.Err)
		}
	}
}
