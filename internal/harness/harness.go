// Package harness assembles the certification harnesses for every MRDT in
// the library: implementation + specification + simulation relation +
// operation alphabet, with exploration bounds tuned per data type. It is
// the single registry behind `peepul-verify` (Table 3′) and the
// certification test suite.
package harness

import (
	"repro/internal/alphamap"
	"repro/internal/chat"
	"repro/internal/counter"
	"repro/internal/ewflag"
	"repro/internal/gmap"
	"repro/internal/gset"
	"repro/internal/lwwreg"
	"repro/internal/mlog"
	"repro/internal/orset"
	"repro/internal/queue"
	"repro/internal/sim"
)

// Runner is a type-erased certification harness, so heterogeneous data
// types can be registered and iterated uniformly.
type Runner interface {
	// Name identifies the data type.
	Name() string
	// Certify runs the harness under the given bounds.
	Certify(cfg sim.Config) sim.Report
	// Config returns the recommended exploration bounds for this type.
	Config() sim.Config
}

type runner[S, Op, Val any] struct {
	h   *sim.Harness[S, Op, Val]
	cfg sim.Config
}

func (r runner[S, Op, Val]) Name() string                      { return r.h.Name }
func (r runner[S, Op, Val]) Certify(cfg sim.Config) sim.Report { return r.h.Certify(cfg) }
func (r runner[S, Op, Val]) Config() sim.Config                { return r.cfg }

// All returns every registered harness, in the order of the paper's
// Table 3.
func All() []Runner {
	return []Runner{
		Counter(),
		PNCounter(),
		EWFlag(),
		DWFlag(),
		LWWReg(),
		GSet(),
		GMap(),
		MLog(),
		OrSet(),
		OrSetSpace(),
		OrSetSpaceTime(),
		Queue(),
		AlphaMapCounter(),
		AlphaMapOrSet(),
		Chat(),
	}
}

// Counter returns the increment-only counter harness.
func Counter() Runner {
	return runner[int64, counter.Op, counter.Val]{
		h: &sim.Harness[int64, counter.Op, counter.Val]{
			Name:  "inc-counter",
			Impl:  counter.IncCounter{},
			Spec:  counter.IncSpec,
			Rsim:  counter.IncRsim,
			ValEq: counter.ValEq,
			Ops: []counter.Op{
				{Kind: counter.Read},
				{Kind: counter.Inc, N: 1},
				{Kind: counter.Inc, N: 2},
			},
			Probes: []counter.Op{{Kind: counter.Read}},
		},
		cfg: sim.DefaultConfig(),
	}
}

// PNCounter returns the PN-counter harness.
func PNCounter() Runner {
	return runner[counter.PNState, counter.Op, counter.Val]{
		h: &sim.Harness[counter.PNState, counter.Op, counter.Val]{
			Name:  "pn-counter",
			Impl:  counter.PNCounter{},
			Spec:  counter.PNSpec,
			Rsim:  counter.PNRsim,
			ValEq: counter.ValEq,
			Ops: []counter.Op{
				{Kind: counter.Read},
				{Kind: counter.Inc, N: 1},
				{Kind: counter.Dec, N: 1},
			},
			Probes: []counter.Op{{Kind: counter.Read}},
		},
		cfg: sim.DefaultConfig(),
	}
}

// EWFlag returns the enable-wins flag harness.
func EWFlag() Runner {
	return runner[ewflag.State, ewflag.Op, ewflag.Val]{
		h: &sim.Harness[ewflag.State, ewflag.Op, ewflag.Val]{
			Name:  "ew-flag",
			Impl:  ewflag.Flag{},
			Spec:  ewflag.Spec,
			Rsim:  ewflag.Rsim,
			ValEq: ewflag.ValEq,
			Ops: []ewflag.Op{
				{Kind: ewflag.Read},
				{Kind: ewflag.Enable},
				{Kind: ewflag.Disable},
			},
			Probes: []ewflag.Op{{Kind: ewflag.Read}},
		},
		cfg: sim.DefaultConfig(),
	}
}

// DWFlag returns the disable-wins flag harness — the dual policy, not in
// the paper's library; certifying it shows the framework is policy
// agnostic.
func DWFlag() Runner {
	return runner[ewflag.DWState, ewflag.Op, ewflag.Val]{
		h: &sim.Harness[ewflag.DWState, ewflag.Op, ewflag.Val]{
			Name:  "dw-flag",
			Impl:  ewflag.DWFlag{},
			Spec:  ewflag.DWSpec,
			Rsim:  ewflag.DWRsim,
			ValEq: ewflag.ValEq,
			Ops: []ewflag.Op{
				{Kind: ewflag.Read},
				{Kind: ewflag.Enable},
				{Kind: ewflag.Disable},
			},
			Probes: []ewflag.Op{{Kind: ewflag.Read}},
		},
		cfg: sim.DefaultConfig(),
	}
}

// LWWReg returns the last-writer-wins register harness.
func LWWReg() Runner {
	return runner[lwwreg.State, lwwreg.Op, lwwreg.Val]{
		h: &sim.Harness[lwwreg.State, lwwreg.Op, lwwreg.Val]{
			Name:  "lww-register",
			Impl:  lwwreg.Reg{},
			Spec:  lwwreg.Spec,
			Rsim:  lwwreg.Rsim,
			ValEq: lwwreg.ValEq,
			Ops: []lwwreg.Op{
				{Kind: lwwreg.Read},
				{Kind: lwwreg.Write, V: 1},
				{Kind: lwwreg.Write, V: 2},
			},
			Probes: []lwwreg.Op{{Kind: lwwreg.Read}},
		},
		cfg: sim.DefaultConfig(),
	}
}

// GSet returns the grow-only set harness.
func GSet() Runner {
	return runner[gset.State, gset.Op, gset.Val]{
		h: &sim.Harness[gset.State, gset.Op, gset.Val]{
			Name:  "g-set",
			Impl:  gset.Set{},
			Spec:  gset.Spec,
			Rsim:  gset.Rsim,
			ValEq: gset.ValEq,
			Ops: []gset.Op{
				{Kind: gset.Read},
				{Kind: gset.Add, E: 1},
				{Kind: gset.Add, E: 2},
				{Kind: gset.Lookup, E: 1},
			},
			Probes: []gset.Op{{Kind: gset.Read}},
		},
		cfg: sim.DefaultConfig(),
	}
}

// GMap returns the grow-only map harness.
func GMap() Runner {
	return runner[gmap.State, gmap.Op, gmap.Val]{
		h: &sim.Harness[gmap.State, gmap.Op, gmap.Val]{
			Name:  "g-map",
			Impl:  gmap.Map{},
			Spec:  gmap.Spec,
			Rsim:  gmap.Rsim,
			ValEq: gmap.ValEq,
			Ops: []gmap.Op{
				{Kind: gmap.Get, K: "a"},
				{Kind: gmap.Put, K: "a", V: 1},
				{Kind: gmap.Put, K: "a", V: 2},
				{Kind: gmap.Put, K: "b", V: 1},
				{Kind: gmap.Keys},
			},
			Probes: []gmap.Op{
				{Kind: gmap.Get, K: "a"},
				{Kind: gmap.Get, K: "b"},
				{Kind: gmap.Keys},
			},
		},
		cfg: sim.DefaultConfig(),
	}
}

// MLog returns the mergeable log harness.
func MLog() Runner {
	return runner[mlog.State, mlog.Op, mlog.Val]{
		h: &sim.Harness[mlog.State, mlog.Op, mlog.Val]{
			Name:  "mergeable-log",
			Impl:  mlog.Log{},
			Spec:  mlog.Spec,
			Rsim:  mlog.Rsim,
			ValEq: mlog.ValEq,
			Ops: []mlog.Op{
				{Kind: mlog.Read},
				{Kind: mlog.Append, Msg: "x"},
				{Kind: mlog.Append, Msg: "y"},
			},
			Probes: []mlog.Op{{Kind: mlog.Read}},
		},
		cfg: sim.DefaultConfig(),
	}
}

func orsetOps() []orset.Op {
	return []orset.Op{
		{Kind: orset.Read},
		{Kind: orset.Add, E: 1},
		{Kind: orset.Add, E: 2},
		{Kind: orset.Remove, E: 1},
		{Kind: orset.Lookup, E: 1},
	}
}

func orsetProbes() []orset.Op {
	return []orset.Op{{Kind: orset.Read}}
}

// OrSet returns the unoptimized OR-set harness (§2.1.1).
func OrSet() Runner {
	return runner[orset.State, orset.Op, orset.Val]{
		h: &sim.Harness[orset.State, orset.Op, orset.Val]{
			Name:   "or-set",
			Impl:   orset.OrSet{},
			Spec:   orset.Spec,
			Rsim:   orset.Rsim,
			ValEq:  orset.ValEq,
			Ops:    orsetOps(),
			Probes: orsetProbes(),
		},
		cfg: sim.DefaultConfig(),
	}
}

// OrSetSpace returns the space-efficient OR-set harness (§2.1.2).
func OrSetSpace() Runner {
	return runner[orset.SpaceState, orset.Op, orset.Val]{
		h: &sim.Harness[orset.SpaceState, orset.Op, orset.Val]{
			Name:   "or-set-space",
			Impl:   orset.OrSetSpace{},
			Spec:   orset.Spec,
			Rsim:   orset.RsimSpace,
			ValEq:  orset.ValEq,
			Ops:    orsetOps(),
			Probes: orsetProbes(),
		},
		cfg: sim.DefaultConfig(),
	}
}

// OrSetSpaceTime returns the space- and time-efficient OR-set harness
// (§7.1).
func OrSetSpaceTime() Runner {
	return runner[orset.TreeState, orset.Op, orset.Val]{
		h: &sim.Harness[orset.TreeState, orset.Op, orset.Val]{
			Name:   "or-set-spacetime",
			Impl:   orset.OrSetSpaceTime{},
			Spec:   orset.Spec,
			Rsim:   orset.RsimSpaceTime,
			ValEq:  orset.ValEq,
			Ops:    orsetOps(),
			Probes: orsetProbes(),
		},
		cfg: sim.DefaultConfig(),
	}
}

// Queue returns the replicated functional queue harness (§6), with the
// queue axioms of §6.2 installed as an abstract-state invariant.
func Queue() Runner {
	return runner[queue.State, queue.Op, queue.Val]{
		h: &sim.Harness[queue.State, queue.Op, queue.Val]{
			Name:  "functional-queue",
			Impl:  queue.Queue{},
			Spec:  queue.Spec,
			Rsim:  queue.Rsim,
			ValEq: queue.ValEq,
			Ops: []queue.Op{
				{Kind: queue.Enqueue, V: 1},
				{Kind: queue.Enqueue, V: 2},
				{Kind: queue.Dequeue},
			},
			Probes:    []queue.Op{{Kind: queue.Dequeue}},
			Invariant: queue.Axioms,
		},
		// The axioms are O(n⁴) in the number of events; keep walks shorter.
		cfg: sim.Config{
			MaxBranches:      2,
			MaxSteps:         4,
			RandomExecutions: 200,
			RandomSteps:      18,
			RandomBranches:   3,
			Seed:             1,
		},
	}
}

// AlphaMapCounter returns the generic α-map harness instantiated with the
// PN-counter — certifying the composition machinery of §5.3–5.4 on a
// non-trivial inner type.
func AlphaMapCounter() Runner {
	m := alphamap.New[counter.PNState, counter.Op, counter.Val](counter.PNCounter{})
	return runner[alphamap.State[counter.PNState], alphamap.Op[counter.Op], counter.Val]{
		h: &sim.Harness[alphamap.State[counter.PNState], alphamap.Op[counter.Op], counter.Val]{
			Name:  "alpha-map<pn-counter>",
			Impl:  m,
			Spec:  alphamap.Spec[counter.Op, counter.Val](counter.PNSpec),
			Rsim:  alphamap.Rsim[counter.PNState, counter.Op, counter.Val](m, counter.PNRsim),
			ValEq: counter.ValEq,
			Ops: []alphamap.Op[counter.Op]{
				{K: "a", Inner: counter.Op{Kind: counter.Inc, N: 1}},
				{K: "a", Inner: counter.Op{Kind: counter.Dec, N: 1}},
				{K: "b", Inner: counter.Op{Kind: counter.Inc, N: 1}},
				{Get: true, K: "a", Inner: counter.Op{Kind: counter.Read}},
			},
			Probes: []alphamap.Op[counter.Op]{
				{Get: true, K: "a", Inner: counter.Op{Kind: counter.Read}},
				{Get: true, K: "b", Inner: counter.Op{Kind: counter.Read}},
			},
		},
		cfg: sim.Config{
			MaxBranches:      2,
			MaxSteps:         4,
			RandomExecutions: 150,
			RandomSteps:      20,
			RandomBranches:   3,
			Seed:             1,
		},
	}
}

// AlphaMapOrSet returns the α-map harness instantiated with the
// space-efficient OR-set — a second composition instance demonstrating
// that the derived specification and simulation relation are agnostic to
// the inner data type (§5.3's parametric polymorphism).
func AlphaMapOrSet() Runner {
	m := alphamap.New[orset.SpaceState, orset.Op, orset.Val](orset.OrSetSpace{})
	return runner[alphamap.State[orset.SpaceState], alphamap.Op[orset.Op], orset.Val]{
		h: &sim.Harness[alphamap.State[orset.SpaceState], alphamap.Op[orset.Op], orset.Val]{
			Name:  "alpha-map<or-set-space>",
			Impl:  m,
			Spec:  alphamap.Spec[orset.Op, orset.Val](orset.Spec),
			Rsim:  alphamap.Rsim[orset.SpaceState, orset.Op, orset.Val](m, orset.RsimSpace),
			ValEq: orset.ValEq,
			Ops: []alphamap.Op[orset.Op]{
				{K: "a", Inner: orset.Op{Kind: orset.Add, E: 1}},
				{K: "a", Inner: orset.Op{Kind: orset.Remove, E: 1}},
				{K: "b", Inner: orset.Op{Kind: orset.Add, E: 2}},
				{Get: true, K: "a", Inner: orset.Op{Kind: orset.Read}},
			},
			Probes: []alphamap.Op[orset.Op]{
				{Get: true, K: "a", Inner: orset.Op{Kind: orset.Read}},
				{Get: true, K: "b", Inner: orset.Op{Kind: orset.Read}},
			},
		},
		cfg: sim.Config{
			MaxBranches:      2,
			MaxSteps:         4,
			RandomExecutions: 150,
			RandomSteps:      20,
			RandomBranches:   3,
			Seed:             1,
		},
	}
}

// Chat returns the IRC-style chat harness (§5.1) — the composition α-map
// over mergeable logs, certified end to end.
func Chat() Runner {
	return runner[chat.State, chat.Op, chat.Val]{
		h: &sim.Harness[chat.State, chat.Op, chat.Val]{
			Name:  "irc-chat",
			Impl:  chat.Chat{},
			Spec:  chat.Spec,
			Rsim:  chat.Rsim,
			ValEq: chat.ValEq,
			Ops: []chat.Op{
				{Kind: chat.Send, Ch: "#go", Msg: "hi"},
				{Kind: chat.Send, Ch: "#go", Msg: "yo"},
				{Kind: chat.Send, Ch: "#ml", Msg: "hey"},
				{Kind: chat.Read, Ch: "#go"},
			},
			Probes: []chat.Op{
				{Kind: chat.Read, Ch: "#go"},
				{Kind: chat.Read, Ch: "#ml"},
			},
		},
		cfg: sim.Config{
			MaxBranches:      2,
			MaxSteps:         4,
			RandomExecutions: 150,
			RandomSteps:      20,
			RandomBranches:   3,
			Seed:             1,
		},
	}
}
