// Package harness adapts the public datatype registry (package peepul)
// to the certification tooling: a Runner is the type-erased view of one
// registered datatype's certification harness — implementation +
// specification + simulation relation + operation alphabet, with
// exploration bounds tuned per data type. Historically this package
// hand-wired every datatype; it is now a thin iteration over
// peepul.All(), so registering a datatype is the only step needed to
// certify it via `peepul-verify` (Table 3′) and the certification test
// suite.
package harness

import (
	"repro/internal/sim"
	"repro/peepul"
)

// Runner is a type-erased certification harness, so heterogeneous data
// types can be registered and iterated uniformly.
type Runner interface {
	// Name identifies the data type.
	Name() string
	// Certify runs the harness under the given bounds.
	Certify(cfg sim.Config) sim.Report
	// Config returns the recommended exploration bounds for this type.
	Config() sim.Config
}

// All returns every registered harness, in registration order (the
// built-in library registers in the order of the paper's Table 3).
func All() []Runner {
	ds := peepul.All()
	out := make([]Runner, 0, len(ds))
	for _, d := range ds {
		out = append(out, d)
	}
	return out
}
