package lwwreg

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestRegDo(t *testing.T) {
	var impl Reg
	s := impl.Init()
	if s.T != -1 {
		t.Fatal("initial state must be unwritten")
	}
	_, v := impl.Do(Op{Kind: Read}, s, 1)
	if v != 0 {
		t.Fatalf("read of unwritten register = %d, want 0", v)
	}
	s, _ = impl.Do(Op{Kind: Write, V: 42}, s, 5)
	if s.T != 5 || s.V != 42 {
		t.Fatalf("after write: %+v", s)
	}
	_, v = impl.Do(Op{Kind: Read}, s, 6)
	if v != 42 {
		t.Fatalf("read = %d, want 42", v)
	}
}

func TestMergeLastWriterWins(t *testing.T) {
	var impl Reg
	lca := State{T: 1, V: 10}
	a := State{T: 5, V: 50}
	b := State{T: 3, V: 30}
	if m := impl.Merge(lca, a, b); m != a {
		t.Fatalf("merge = %+v, want the later write %+v", m, a)
	}
	if m := impl.Merge(lca, b, a); m != a {
		t.Fatal("merge must be symmetric in outcome")
	}
}

func TestMergeWithUntouchedBranch(t *testing.T) {
	var impl Reg
	lca := State{T: 2, V: 20}
	a := State{T: 9, V: 90}
	if m := impl.Merge(lca, a, lca); m != a {
		t.Fatalf("merge = %+v, want %+v", m, a)
	}
	if m := impl.Merge(lca, lca, lca); m != lca {
		t.Fatal("idle merge must keep the lca state")
	}
}

func TestMergeSymmetricProperty(t *testing.T) {
	var impl Reg
	f := func(ta, tb uint16, va, vb int64) bool {
		a := State{T: core.Timestamp(ta), V: va}
		b := State{T: core.Timestamp(tb) + 1<<16, V: vb} // distinct timestamps
		return impl.Merge(State{T: -1}, a, b) == impl.Merge(State{T: -1}, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecPicksMaxTimestamp(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	w1 := h.Append(Op{Kind: Write, V: 1}, 0, 10, nil)
	w2 := h.Append(Op{Kind: Write, V: 2}, 0, 20, nil) // concurrent, later ts
	abs := core.StateOf(h, []core.EventID{w1, w2})
	if got := Spec(Op{Kind: Read}, abs); got != 2 {
		t.Fatalf("spec read = %d, want 2", got)
	}
	if got := Spec(Op{Kind: Write, V: 9}, abs); got != 0 {
		t.Fatal("writes return ⊥")
	}
}

func TestRsim(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	w1 := h.Append(Op{Kind: Write, V: 1}, 0, 10, nil)
	abs := core.StateOf(h, []core.EventID{w1})
	if !Rsim(abs, State{T: 10, V: 1}) {
		t.Fatal("Rsim must accept the faithful state")
	}
	if Rsim(abs, State{T: 10, V: 2}) || Rsim(abs, State{T: 9, V: 1}) {
		t.Fatal("Rsim must reject wrong value or timestamp")
	}
	empty := core.StateOf(h, nil)
	if !Rsim(empty, State{T: -1}) {
		t.Fatal("Rsim must accept the initial state for the empty history")
	}
}
