// Package lwwreg implements the last-writer-wins register MRDT (§7.1): a
// register whose conflicting concurrent writes are resolved in favour of
// the write with the larger store-supplied timestamp.
package lwwreg

import "repro/internal/core"

// OpKind distinguishes register operations.
type OpKind int

// Register operations.
const (
	Read OpKind = iota
	Write
)

// Op is a register operation; V is the written value (ignored for Read).
type Op struct {
	Kind OpKind
	V    int64
}

// Val is the return value: the register contents for Read, 0 (⊥) for
// Write.
type Val = int64

// ValEq compares return values.
func ValEq(a, b Val) bool { return a == b }

// State is the register state: the last write's timestamp and value.
// T < 0 means the register has never been written and reads return 0.
type State struct {
	T core.Timestamp
	V int64
}

// Reg is the LWW register MRDT.
type Reg struct{}

var _ core.MRDT[State, Op, Val] = Reg{}

// Init returns the never-written state.
func (Reg) Init() State { return State{T: -1} }

// Do applies op at state s with timestamp t.
func (Reg) Do(op Op, s State, t core.Timestamp) (State, Val) {
	switch op.Kind {
	case Read:
		return s, s.V
	case Write:
		return State{T: t, V: op.V}, 0
	default:
		return s, 0
	}
}

// Merge keeps whichever of the two branch states carries the larger write
// timestamp. The LCA's write (if any) is contained in both branches, so it
// never needs to be consulted: max over the union of visible writes equals
// max(max_a, max_b).
func (Reg) Merge(_, a, b State) State {
	if a.T >= b.T {
		return a
	}
	return b
}

// Spec is F_lww: read returns the value of the write event with the
// greatest timestamp in the visible history, or 0 if there is none.
func Spec(op Op, abs *core.AbstractState[Op, Val]) Val {
	if op.Kind != Read {
		return 0
	}
	best := State{T: -1}
	for _, e := range abs.Events() {
		if o := abs.Oper(e); o.Kind == Write && abs.Time(e) > best.T {
			best = State{T: abs.Time(e), V: o.V}
		}
	}
	return best.V
}

// Rsim relates abstract and concrete states: the concrete state is exactly
// the maximal-timestamp write of the abstract history (or the initial
// state when no write is visible).
func Rsim(abs *core.AbstractState[Op, Val], s State) bool {
	best := State{T: -1}
	for _, e := range abs.Events() {
		if o := abs.Oper(e); o.Kind == Write && abs.Time(e) > best.T {
			best = State{T: abs.Time(e), V: o.V}
		}
	}
	return s == best
}
