// Package wire provides compact binary codecs for every MRDT state in the
// library. The versioned store uses encoding for content addressing and
// space accounting; the network replication layer (internal/replica)
// additionally needs decoding to ship states between geo-distributed
// replicas, which is how the paper's system model deploys MRDTs (replicas
// exchange branch states, not operations).
//
// The format is deliberately simple: fixed-width big-endian integers and
// length-prefixed strings, concatenated in state order. Every Decode
// validates lengths and returns an error on truncated or trailing input.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/store"
)

// ErrMalformed is wrapped by all decoding errors.
var ErrMalformed = errors.New("wire: malformed payload")

// Codec serializes and deserializes states of type S. It is the store's
// codec interface: one codec value serves content addressing, import
// round-trips and wire transfer alike.
type Codec[S any] = store.Codec[S]

// Writer accumulates a payload.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// PutInt64 appends a fixed-width integer.
func (w *Writer) PutInt64(v int64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v))
}

// PutTimestamp appends a timestamp.
func (w *Writer) PutTimestamp(t core.Timestamp) { w.PutInt64(int64(t)) }

// PutBool appends a boolean.
func (w *Writer) PutBool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// PutString appends a length-prefixed string.
func (w *Writer) PutString(s string) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// PutLen appends a collection length.
func (w *Writer) PutLen(n int) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(n))
}

// Reader consumes a payload.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrMalformed, n, r.off, len(r.buf))
		return false
	}
	return true
}

// Int64 consumes a fixed-width integer.
func (r *Reader) Int64() int64 {
	if !r.need(8) {
		return 0
	}
	v := int64(binary.BigEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// Timestamp consumes a timestamp.
func (r *Reader) Timestamp() core.Timestamp { return core.Timestamp(r.Int64()) }

// Bool consumes a boolean.
func (r *Reader) Bool() bool {
	if !r.need(1) {
		return false
	}
	v := r.buf[r.off]
	r.off++
	if v > 1 {
		r.err = fmt.Errorf("%w: bad bool byte %d", ErrMalformed, v)
		return false
	}
	return v == 1
}

// Len consumes a collection length, bounding it by the remaining payload
// so corrupt lengths cannot trigger huge allocations.
func (r *Reader) Len(elemMin int) int {
	if !r.need(4) {
		return 0
	}
	n := int(binary.BigEndian.Uint32(r.buf[r.off:]))
	r.off += 4
	if elemMin > 0 && n > (len(r.buf)-r.off)/elemMin {
		r.err = fmt.Errorf("%w: length %d exceeds remaining payload", ErrMalformed, n)
		return 0
	}
	return n
}

// String consumes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	if r.err != nil || !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Close verifies the payload was fully consumed and returns the first
// error.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf)-r.off)
	}
	return nil
}
