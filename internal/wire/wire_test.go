package wire_test

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/alphamap"
	"repro/internal/chat"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/ewflag"
	"repro/internal/gmap"
	"repro/internal/gset"
	"repro/internal/lwwreg"
	"repro/internal/mlog"
	"repro/internal/orset"
	"repro/internal/queue"
	"repro/internal/wire"
)

func roundTrip[S any](t *testing.T, c wire.Codec[S], s S, eq func(a, b S) bool) {
	t.Helper()
	enc := c.Encode(s)
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !eq(dec, s) {
		t.Fatalf("round trip: got %+v, want %+v", dec, s)
	}
}

func TestScalarCodecs(t *testing.T) {
	roundTrip[int64](t, wire.IncCounter{}, 42, func(a, b int64) bool { return a == b })
	roundTrip(t, wire.PNCounter{}, counter.PNState{P: 7, N: 3}, func(a, b counter.PNState) bool { return a == b })
	roundTrip(t, wire.EWFlag{}, ewflag.State{Enables: 5, Flag: true}, func(a, b ewflag.State) bool { return a == b })
	roundTrip(t, wire.LWWReg{}, lwwreg.State{T: 9, V: -1}, func(a, b lwwreg.State) bool { return a == b })
	roundTrip(t, wire.LWWReg{}, lwwreg.State{T: -1}, func(a, b lwwreg.State) bool { return a == b })
}

func TestCollectionCodecs(t *testing.T) {
	roundTrip(t, wire.GSet{}, gset.State{1, 5, 9}, func(a, b gset.State) bool {
		return slices.Equal(a, b)
	})
	roundTrip(t, wire.GSet{}, gset.State(nil), func(a, b gset.State) bool { return len(a) == len(b) })
	roundTrip(t, wire.GMap{},
		gmap.State{{K: "a", T: 1, V: 10}, {K: "b", T: 2, V: 20}},
		func(a, b gmap.State) bool { return slices.Equal(a, b) })
	roundTrip(t, wire.MLog{},
		mlog.State{{T: 9, Msg: "newer"}, {T: 2, Msg: "older"}},
		func(a, b mlog.State) bool { return slices.Equal(a, b) })
	roundTrip(t, wire.OrSet{},
		orset.State{{E: 1, T: 1}, {E: 1, T: 4}},
		func(a, b orset.State) bool { return slices.Equal(a, b) })
	roundTrip(t, wire.OrSetSpace{},
		orset.SpaceState{{E: 1, T: 4}, {E: 2, T: 5}},
		func(a, b orset.SpaceState) bool { return slices.Equal(a, b) })
}

func TestTreeCodecPreservesContentsAndBalance(t *testing.T) {
	var impl orset.OrSetSpaceTime
	s := impl.Init()
	for i := int64(0); i < 100; i++ {
		s, _ = impl.Do(orset.Op{Kind: orset.Add, E: i * 3}, s, core.Timestamp(i+1))
	}
	var c wire.OrSetSpaceTime
	dec, err := c.Decode(c.Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(orset.Flatten(dec), orset.Flatten(s)) {
		t.Fatal("tree contents changed across the wire")
	}
	if !orset.ValidAVL(dec) {
		t.Fatal("decoded tree must be balanced")
	}
}

func TestQueueCodec(t *testing.T) {
	var impl queue.Queue
	s := impl.Init()
	for i := int64(1); i <= 5; i++ {
		s, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: i * 10}, s, core.Timestamp(i))
	}
	s, _ = impl.Do(queue.Op{Kind: queue.Dequeue}, s, 9)
	var c wire.Queue
	dec, err := c.Decode(c.Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(dec.ToSlice(), s.ToSlice()) {
		t.Fatal("queue contents changed across the wire")
	}
}

func TestChatCodec(t *testing.T) {
	s := chat.State{
		alphamap.Entry[mlog.State]{K: "#go", V: mlog.State{{T: 3, Msg: "hey"}, {T: 1, Msg: "hi"}}},
		alphamap.Entry[mlog.State]{K: "#ml", V: nil},
	}
	var c wire.Chat
	dec, err := c.Decode(c.Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[0].K != "#go" || len(dec[0].V) != 2 || dec[0].V[0].Msg != "hey" {
		t.Fatalf("chat round trip: %+v", dec)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	var c wire.GMap
	full := c.Encode(gmap.State{{K: "key", T: 1, V: 2}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := c.Decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	var c wire.PNCounter
	enc := append(c.Encode(counter.PNState{P: 1, N: 2}), 0xFF)
	if _, err := c.Decode(enc); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeRejectsHugeLengths(t *testing.T) {
	// A corrupt length prefix must not cause a huge allocation; the
	// reader bounds lengths by the remaining payload.
	var w wire.Writer
	w.PutLen(1 << 30)
	var c wire.GSet
	if _, err := c.Decode(w.Bytes()); err == nil {
		t.Fatal("absurd length accepted")
	}
}

func TestGSetCodecQuick(t *testing.T) {
	var c wire.GSet
	f := func(raw []int64) bool {
		slices.Sort(raw)
		raw = slices.Compact(raw)
		dec, err := c.Decode(c.Encode(gset.State(raw)))
		return err == nil && slices.Equal(dec, gset.State(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMLogCodecQuick(t *testing.T) {
	var c wire.MLog
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(20)
			s := make(mlog.State, n)
			for i := range s {
				s[i] = mlog.Entry{T: core.Timestamp(r.Int63n(1 << 40)), Msg: randString(r)}
			}
			vals[0] = reflect.ValueOf(s)
		},
	}
	f := func(s mlog.State) bool {
		dec, err := c.Decode(c.Encode(s))
		return err == nil && slices.Equal(dec, s)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randString(r *rand.Rand) string {
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}
