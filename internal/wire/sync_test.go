package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

func testCommits(n, stateBytes int) []store.ExportedCommit {
	var prev store.Hash
	commits := make([]store.ExportedCommit, 0, n)
	for i := 0; i < n; i++ {
		state := bytes.Repeat([]byte{byte(i)}, stateBytes)
		c := store.ExportedCommit{
			State: state,
			Gen:   i + 1,
			Time:  core.Timestamp(i * 7),
		}
		if i > 0 {
			c.Parents = []store.Hash{prev}
		}
		prev = store.Hash{byte(i), byte(i >> 8)}
		commits = append(commits, c)
	}
	return commits
}

func sameCommits(a, b []store.ExportedCommit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Parents) != len(b[i].Parents) || !bytes.Equal(a[i].State, b[i].State) ||
			a[i].Gen != b[i].Gen || a[i].Time != b[i].Time {
			return false
		}
		for j := range a[i].Parents {
			if a[i].Parents[j] != b[i].Parents[j] {
				return false
			}
		}
	}
	return true
}

func TestMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, FrameHello, []byte("a"), []byte("bb")); err != nil {
		t.Fatal(err)
	}
	kind, fields, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameHello || len(fields) != 2 || string(fields[0]) != "a" || string(fields[1]) != "bb" {
		t.Fatalf("round trip mismatch: kind=%d fields=%q", kind, fields)
	}
}

func TestReadMsgCapsFieldSize(t *testing.T) {
	var raw []byte
	raw = append(raw, byte(FrameCommits))
	raw = binary.BigEndian.AppendUint32(raw, 1)
	raw = binary.BigEndian.AppendUint32(raw, MaxFieldBytes+1)
	if _, _, err := ReadMsg(bytes.NewReader(raw)); !errors.Is(err, ErrFraming) {
		t.Fatalf("oversized field must be rejected, got %v", err)
	}
}

func TestReadMsgCapsFieldCount(t *testing.T) {
	var raw []byte
	raw = append(raw, byte(FrameHello))
	raw = binary.BigEndian.AppendUint32(raw, maxFields+1)
	if _, _, err := ReadMsg(bytes.NewReader(raw)); !errors.Is(err, ErrFraming) {
		t.Fatalf("oversized field count must be rejected, got %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{
		Node:     "node-7",
		Object:   "cart",
		Datatype: "or-set-space",
		Frontier: store.Frontier{
			Head: store.Hash{1, 2, 3},
			Have: []store.Hash{{4}, {5}, {6}},
		},
	}
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "node-7" || got.Object != "cart" || got.Datatype != "or-set-space" ||
		got.Frontier.Head != h.Frontier.Head || len(got.Frontier.Have) != 3 ||
		got.Frontier.Have[2] != h.Frontier.Have[2] {
		t.Fatalf("hello mismatch: %+v", got)
	}
}

func TestDecodeHelloForgedCountFails(t *testing.T) {
	var w Writer
	w.PutString("x")
	w.PutString("obj")
	w.PutString("dt")
	w.PutHash(store.Hash{})
	w.PutLen(1 << 30) // claims a billion hashes with no payload behind it
	if _, err := DecodeHello(w.Bytes()); err == nil {
		t.Fatal("forged have count must fail")
	}
}

func TestCommitListRoundTrip(t *testing.T) {
	commits := testCommits(17, 9)
	head := store.Hash{9, 9}
	got, gotHead, err := DecodeCommitList(EncodeCommitList(commits, head))
	if err != nil {
		t.Fatal(err)
	}
	if gotHead != head || !sameCommits(commits, got) {
		t.Fatal("commit list round trip mismatch")
	}
}

func TestDecodeCommitListRejectsTrailing(t *testing.T) {
	b := EncodeCommitList(testCommits(2, 4), store.Hash{})
	if _, _, err := DecodeCommitList(append(b, 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	if _, _, err := DecodeCommitList(b[:len(b)-1]); err == nil {
		t.Fatal("truncation must fail")
	}
}

func TestDeltaRoundTripChunked(t *testing.T) {
	// 2000 commits with 1 KiB states: forces several chunks by both the
	// commit-count bound and the byte bound.
	commits := testCommits(2000, 1024)
	head := store.Hash{7}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, commits, head); err != nil {
		t.Fatal(err)
	}
	// The stream must be made of bounded frames, not one big buffer.
	frames := 0
	rd := bytes.NewReader(buf.Bytes())
	for {
		kind, fields, err := ReadMsg(rd)
		if err != nil {
			t.Fatal(err)
		}
		if kind == FrameCommits {
			frames++
			if len(fields[0]) > commitChunkBytes+64<<10 {
				t.Fatalf("chunk of %d bytes exceeds bound", len(fields[0]))
			}
		}
		if kind == FrameDeltaEnd {
			break
		}
	}
	if frames < 4 {
		t.Fatalf("expected several chunks, got %d", frames)
	}
	got, gotHead, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotHead != head || !sameCommits(commits, got) {
		t.Fatal("delta round trip mismatch")
	}
}

func TestDeltaEmpty(t *testing.T) {
	head := store.Hash{1}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, nil, head); err != nil {
		t.Fatal(err)
	}
	got, gotHead, err := ReadDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || gotHead != head {
		t.Fatalf("empty delta mismatch: %d commits", len(got))
	}
}

func TestReadDeltaCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	var hdr Writer
	hdr.PutHash(store.Hash{})
	hdr.PutLen(5) // announce five, deliver none
	if err := WriteMsg(&buf, FrameDeltaHeader, hdr.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(&buf, FrameDeltaEnd); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDelta(&buf); !errors.Is(err, ErrFraming) {
		t.Fatalf("count mismatch must fail, got %v", err)
	}
}

func TestReadDeltaHugeAnnouncementFails(t *testing.T) {
	var buf bytes.Buffer
	var hdr Writer
	hdr.PutHash(store.Hash{})
	hdr.PutLen(MaxDeltaCommits + 1)
	if err := WriteMsg(&buf, FrameDeltaHeader, hdr.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDelta(&buf); !errors.Is(err, ErrFraming) {
		t.Fatalf("oversized announcement must fail, got %v", err)
	}
}

func TestReadDeltaSurfacesPeerError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, FrameErr, []byte("merge refused")); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadDelta(&buf)
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Msg != "merge refused" {
		t.Fatalf("want PeerError, got %v", err)
	}
}

func TestReadDeltaExtraCommitsFail(t *testing.T) {
	commits := testCommits(3, 8)
	var buf bytes.Buffer
	var hdr Writer
	hdr.PutHash(store.Hash{})
	hdr.PutLen(2) // announce fewer than shipped
	if err := WriteMsg(&buf, FrameDeltaHeader, hdr.Bytes()); err != nil {
		t.Fatal(err)
	}
	var chunk Writer
	for i := range commits {
		appendCommit(&chunk, commits[i])
	}
	if err := WriteMsg(&buf, FrameCommits, chunk.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDelta(&buf); !errors.Is(err, ErrFraming) {
		t.Fatalf("overdelivery must fail, got %v", err)
	}
}

func TestPeerErrorMessage(t *testing.T) {
	err := peerErr(nil)
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Msg != "unspecified" {
		t.Fatalf("empty peer error: %v", err)
	}
	if fmt.Sprint(peerErr([][]byte{[]byte("x")})) != "wire: peer error: x" {
		t.Fatal("peer error rendering")
	}
}

// packedTestCommits mixes full-state and patch-bearing commits.
func packedTestCommits(n int) []store.ExportedCommit {
	commits := testCommits(n, 24)
	for i := range commits {
		if i%3 == 1 {
			commits[i].Patch = append([]byte{0x7f}, commits[i].State...)
			commits[i].State = nil
		}
	}
	return commits
}

func samePackedCommits(a, b []store.ExportedCommit) bool {
	if !sameCommits(a, b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Patch, b[i].Patch) {
			return false
		}
	}
	return true
}

func TestPackedDeltaRoundTrip(t *testing.T) {
	commits := packedTestCommits(40)
	head := store.Hash{9, 9}
	var buf bytes.Buffer
	if err := WriteDeltaPacked(&buf, commits, head); err != nil {
		t.Fatal(err)
	}
	got, gotHead, err := ReadDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotHead != head || !samePackedCommits(got, commits) {
		t.Fatal("packed delta round trip mismatch")
	}
}

func TestWriteDeltaRejectsPatchCommits(t *testing.T) {
	// The full-state writer must never silently drop a patch — sending
	// one to a legacy peer would ship a nil state in its place.
	commits := packedTestCommits(4)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, commits, store.Hash{}); !errors.Is(err, ErrFraming) {
		t.Fatalf("WriteDelta with patch commits = %v, want ErrFraming", err)
	}
}

func TestPackedCommitRejectsBadForm(t *testing.T) {
	var w Writer
	w.PutLen(0)              // no parents
	w.buf = append(w.buf, 7) // unknown state form
	w.PutBytes([]byte("x"))
	w.PutInt64(1)
	w.PutTimestamp(0)
	r := NewReader(w.Bytes())
	readPackedCommit(r)
	if r.Err() == nil {
		t.Fatal("unknown state form must fail")
	}
}

func TestPackedCommitRejectsEmptyPatch(t *testing.T) {
	var w Writer
	w.PutLen(0)
	w.buf = append(w.buf, statePatch)
	w.PutBytes(nil) // empty patch field
	w.PutInt64(1)
	w.PutTimestamp(0)
	r := NewReader(w.Bytes())
	readPackedCommit(r)
	if r.Err() == nil {
		t.Fatal("empty patch field must fail")
	}
}

func TestCapsRoundTrip(t *testing.T) {
	for _, caps := range []uint64{0, CapPatch, CapPatch | 1<<7} {
		got, err := DecodeCaps(EncodeCaps(caps))
		if err != nil {
			t.Fatal(err)
		}
		if got != caps {
			t.Fatalf("caps round trip: got %x, want %x", got, caps)
		}
	}
	if _, err := DecodeCaps([]byte{1, 2}); err == nil {
		t.Fatal("truncated caps must fail")
	}
}
