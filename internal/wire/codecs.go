package wire

import (
	"repro/internal/alphamap"
	"repro/internal/chat"
	"repro/internal/counter"
	"repro/internal/ewflag"
	"repro/internal/gmap"
	"repro/internal/gset"
	"repro/internal/lwwreg"
	"repro/internal/mlog"
	"repro/internal/orset"
	"repro/internal/queue"
)

// IncCounter is the codec for the increment-only counter.
type IncCounter struct{}

// Encode serializes the counter.
func (IncCounter) Encode(s int64) []byte {
	var w Writer
	w.PutInt64(s)
	return w.Bytes()
}

// Decode deserializes the counter.
func (IncCounter) Decode(b []byte) (int64, error) {
	r := NewReader(b)
	v := r.Int64()
	return v, r.Close()
}

// PNCounter is the codec for the PN-counter.
type PNCounter struct{}

// Encode serializes the PN-counter.
func (PNCounter) Encode(s counter.PNState) []byte {
	var w Writer
	w.PutInt64(s.P)
	w.PutInt64(s.N)
	return w.Bytes()
}

// Decode deserializes the PN-counter.
func (PNCounter) Decode(b []byte) (counter.PNState, error) {
	r := NewReader(b)
	s := counter.PNState{P: r.Int64(), N: r.Int64()}
	return s, r.Close()
}

// DWFlag is the codec for the disable-wins flag.
type DWFlag struct{}

// Encode serializes the flag.
func (DWFlag) Encode(s ewflag.DWState) []byte {
	var w Writer
	w.PutInt64(s.Disables)
	w.PutBool(s.Flag)
	return w.Bytes()
}

// Decode deserializes the flag.
func (DWFlag) Decode(b []byte) (ewflag.DWState, error) {
	r := NewReader(b)
	s := ewflag.DWState{Disables: r.Int64(), Flag: r.Bool()}
	return s, r.Close()
}

// EWFlag is the codec for the enable-wins flag.
type EWFlag struct{}

// Encode serializes the flag.
func (EWFlag) Encode(s ewflag.State) []byte {
	var w Writer
	w.PutInt64(s.Enables)
	w.PutBool(s.Flag)
	return w.Bytes()
}

// Decode deserializes the flag.
func (EWFlag) Decode(b []byte) (ewflag.State, error) {
	r := NewReader(b)
	s := ewflag.State{Enables: r.Int64(), Flag: r.Bool()}
	return s, r.Close()
}

// LWWReg is the codec for the last-writer-wins register.
type LWWReg struct{}

// Encode serializes the register.
func (LWWReg) Encode(s lwwreg.State) []byte {
	var w Writer
	w.PutTimestamp(s.T)
	w.PutInt64(s.V)
	return w.Bytes()
}

// Decode deserializes the register.
func (LWWReg) Decode(b []byte) (lwwreg.State, error) {
	r := NewReader(b)
	s := lwwreg.State{T: r.Timestamp(), V: r.Int64()}
	return s, r.Close()
}

// GSet is the codec for the grow-only set.
type GSet struct{}

// Encode serializes the set.
func (GSet) Encode(s gset.State) []byte {
	var w Writer
	w.PutLen(len(s))
	for _, e := range s {
		w.PutInt64(e)
	}
	return w.Bytes()
}

// Decode deserializes the set.
func (GSet) Decode(b []byte) (gset.State, error) {
	r := NewReader(b)
	n := r.Len(8)
	s := make(gset.State, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, r.Int64())
	}
	return s, r.Close()
}

// GMap is the codec for the grow-only map.
type GMap struct{}

// Encode serializes the map.
func (GMap) Encode(s gmap.State) []byte {
	var w Writer
	w.PutLen(len(s))
	for _, e := range s {
		w.PutString(e.K)
		w.PutTimestamp(e.T)
		w.PutInt64(e.V)
	}
	return w.Bytes()
}

// Decode deserializes the map.
func (GMap) Decode(b []byte) (gmap.State, error) {
	r := NewReader(b)
	n := r.Len(20)
	s := make(gmap.State, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, gmap.Entry{K: r.String(), T: r.Timestamp(), V: r.Int64()})
	}
	return s, r.Close()
}

// MLog is the codec for the mergeable log.
type MLog struct{}

// Encode serializes the log.
func (MLog) Encode(s mlog.State) []byte {
	var w Writer
	w.PutLen(len(s))
	for _, e := range s {
		w.PutTimestamp(e.T)
		w.PutString(e.Msg)
	}
	return w.Bytes()
}

// Decode deserializes the log.
func (MLog) Decode(b []byte) (mlog.State, error) {
	r := NewReader(b)
	n := r.Len(12)
	s := make(mlog.State, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, mlog.Entry{T: r.Timestamp(), Msg: r.String()})
	}
	return s, r.Close()
}

func encodePairs(w *Writer, ps []orset.Pair) {
	w.PutLen(len(ps))
	for _, p := range ps {
		w.PutInt64(p.E)
		w.PutTimestamp(p.T)
	}
}

func decodePairs(r *Reader) []orset.Pair {
	n := r.Len(16)
	ps := make([]orset.Pair, 0, n)
	for i := 0; i < n; i++ {
		ps = append(ps, orset.Pair{E: r.Int64(), T: r.Timestamp()})
	}
	return ps
}

// OrSet is the codec for the unoptimized OR-set.
type OrSet struct{}

// Encode serializes the set.
func (OrSet) Encode(s orset.State) []byte {
	var w Writer
	encodePairs(&w, s)
	return w.Bytes()
}

// Decode deserializes the set.
func (OrSet) Decode(b []byte) (orset.State, error) {
	r := NewReader(b)
	ps := decodePairs(r)
	return orset.State(ps), r.Close()
}

// OrSetSpace is the codec for the space-efficient OR-set.
type OrSetSpace struct{}

// Encode serializes the set.
func (OrSetSpace) Encode(s orset.SpaceState) []byte {
	var w Writer
	encodePairs(&w, s)
	return w.Bytes()
}

// Decode deserializes the set.
func (OrSetSpace) Decode(b []byte) (orset.SpaceState, error) {
	r := NewReader(b)
	ps := decodePairs(r)
	return orset.SpaceState(ps), r.Close()
}

// OrSetSpaceTime is the codec for the tree-backed OR-set. The tree is
// serialized as its in-order pair sequence and rebuilt perfectly balanced,
// which preserves observable behaviour (the paper's convergence modulo
// observable behaviour makes tree shape unobservable).
type OrSetSpaceTime struct{}

// Encode serializes the set.
func (OrSetSpaceTime) Encode(s orset.TreeState) []byte {
	var w Writer
	encodePairs(&w, orset.Flatten(s))
	return w.Bytes()
}

// Decode deserializes the set.
func (OrSetSpaceTime) Decode(b []byte) (orset.TreeState, error) {
	r := NewReader(b)
	ps := decodePairs(r)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return orset.BuildBalanced(orset.SpaceState(ps)), nil
}

// Queue is the codec for the replicated functional queue. The queue is
// serialized oldest-first; decoding rebuilds the two-list representation
// with everything in the front list, an observationally equivalent state.
type Queue struct{}

// Encode serializes the queue.
func (Queue) Encode(s queue.State) []byte {
	var w Writer
	ps := s.ToSlice()
	w.PutLen(len(ps))
	for _, p := range ps {
		w.PutTimestamp(p.T)
		w.PutInt64(p.V)
	}
	return w.Bytes()
}

// Decode deserializes the queue.
func (Queue) Decode(b []byte) (queue.State, error) {
	r := NewReader(b)
	n := r.Len(16)
	ps := make([]queue.Pair, 0, n)
	for i := 0; i < n; i++ {
		ps = append(ps, queue.Pair{T: r.Timestamp(), V: r.Int64()})
	}
	if err := r.Close(); err != nil {
		return queue.State{}, err
	}
	return queue.FromSlice(ps), nil
}

// AlphaMap is the codec for α-map states over any inner state codec —
// one generic codec serves every composition instance (chat, α-map of
// counters, α-map of OR-sets, …).
type AlphaMap[S any] struct {
	// Inner serializes the value states the map binds.
	Inner Codec[S]
}

// Encode serializes the map as length-prefixed (key, inner payload)
// pairs in binding order.
func (c AlphaMap[S]) Encode(s alphamap.State[S]) []byte {
	var w Writer
	w.PutLen(len(s))
	for _, e := range s {
		w.PutString(e.K)
		w.PutBytes(c.Inner.Encode(e.V))
	}
	return w.Bytes()
}

// Decode deserializes the map.
func (c AlphaMap[S]) Decode(b []byte) (alphamap.State[S], error) {
	r := NewReader(b)
	n := r.Len(8)
	s := make(alphamap.State[S], 0, n)
	for i := 0; i < n; i++ {
		k := r.String()
		payload := r.Bytes()
		if r.Err() != nil {
			break
		}
		inner, err := c.Inner.Decode(payload)
		if err != nil {
			return nil, err
		}
		s = append(s, alphamap.Entry[S]{K: k, V: inner})
	}
	return s, r.Close()
}

// Chat is the codec for the IRC-style chat (an α-map of mergeable logs).
type Chat struct{}

// Encode serializes the chat state.
func (Chat) Encode(s chat.State) []byte {
	return AlphaMap[mlog.State]{Inner: MLog{}}.Encode(s)
}

// Decode deserializes the chat state.
func (Chat) Decode(b []byte) (chat.State, error) {
	return AlphaMap[mlog.State]{Inner: MLog{}}.Decode(b)
}
