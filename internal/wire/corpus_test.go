package wire_test

// Recorded-session fuzz corpus: real sync and recon exchanges between
// two live nodes, captured byte-for-byte through a faultnet tap, split
// into frames, and committed as FuzzReadMsg seeds — each frame whole,
// truncated mid-body, and with a bit flipped. `go test` replays every
// committed seed through the fuzz target, so the parser is exercised
// against genuine wire traffic (and hostile mutations of it) on every
// run, not just synthetic frames.
//
// Regenerate with PEEPUL_WRITE_CORPUS=1 go test ./internal/wire
// -run TestWriteFuzzCorpus after wire-format changes.

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/counter"
	"repro/internal/faultnet"
	"repro/internal/replica"
	"repro/internal/wire"
)

const corpusDir = "testdata/fuzz/FuzzReadMsg"

// TestRecordedSessionCorpusCommitted guards the committed corpus: the
// recorded-session seeds must exist and carry the corpus file format.
func TestRecordedSessionCorpusCommitted(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("recorded-session corpus missing (%v); regenerate with PEEPUL_WRITE_CORPUS=1", err)
	}
	sessions := 0
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "go test fuzz v1\n") {
			t.Fatalf("seed %s is not in go corpus format", e.Name())
		}
		if strings.HasPrefix(e.Name(), "session-") {
			sessions++
		}
	}
	if sessions < 10 {
		t.Fatalf("only %d recorded-session seeds committed, want a real capture", sessions)
	}
}

// TestWriteFuzzCorpus records live sessions and rewrites the seed
// files. Gated behind PEEPUL_WRITE_CORPUS so ordinary runs never churn
// testdata.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("PEEPUL_WRITE_CORPUS") == "" {
		t.Skip("set PEEPUL_WRITE_CORPUS=1 to re-record the session corpus")
	}

	// Tap every byte both directions of every connection.
	var mu sync.Mutex
	streams := make(map[[2]string]*bytes.Buffer)
	tap := func(from, to string, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		key := [2]string{from, to}
		if streams[key] == nil {
			streams[key] = &bytes.Buffer{}
		}
		streams[key].Write(data)
	}
	fn := faultnet.New(1, faultnet.WithTap(tap))

	mk := func(name string, id int) (*replica.Node, *replica.TypedObject[counter.PNState, counter.Op, counter.Val]) {
		n, err := replica.NewNode(name, id, replica.WithTransport(fn.Transport(name)))
		if err != nil {
			t.Fatal(err)
		}
		obj, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
			n, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n, obj
	}
	a, aobj := mk("a", 1)
	b, bobj := mk("b", 2)

	// Several rounds with commits on both sides: the first exchange runs
	// the capability hello and delta dialect, later ones negotiate the
	// recon dialect off the peer memo, so the capture holds hello,
	// commit, and recon probe/want frames.
	for i := 0; i < 4; i++ {
		if _, err := aobj.Do(counter.Op{Kind: counter.Inc, N: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		if _, err := bobj.Do(counter.Op{Kind: counter.Dec, N: 1}); err != nil {
			t.Fatal(err)
		}
		if err := a.SyncWith(b.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := b.SyncWith(a.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// Split each direction's stream into frames and emit seed variants.
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	old, err := filepath.Glob(filepath.Join(corpusDir, "session-*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range old {
		os.Remove(f)
	}

	seen := make(map[[32]byte]bool)
	count := 0
	emit := func(variant string, data []byte) {
		if len(data) == 0 || count >= 120 {
			return
		}
		h := sha256.Sum256(data)
		if seen[h] {
			return
		}
		seen[h] = true
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		name := fmt.Sprintf("session-%s-%x", variant, h[:6])
		if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		count++
	}

	mu.Lock()
	defer mu.Unlock()
	for _, buf := range streams {
		r := bytes.NewReader(buf.Bytes())
		for {
			kind, fields, err := wire.ReadMsg(r)
			if err != nil {
				break
			}
			var frame bytes.Buffer
			if err := wire.WriteMsg(&frame, kind, fields...); err != nil {
				t.Fatal(err)
			}
			fb := frame.Bytes()
			emit("whole", fb)
			// Truncated mid-frame: the header's promise outlives the bytes.
			emit("trunc", fb[:len(fb)*3/5])
			// One bit flipped a third of the way in.
			flipped := append([]byte(nil), fb...)
			flipped[len(flipped)/3] ^= 0x10
			emit("flip", flipped)
		}
	}
	if count < 10 {
		t.Fatalf("capture produced only %d seeds; sessions did not record", count)
	}
	t.Logf("wrote %d recorded-session seeds", count)
}
