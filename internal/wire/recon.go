// Recon codec: the range-fingerprint set-reconciliation frames of the
// sync protocol. A client probes a hash range with its fingerprint and
// count; the server answers with a match, an empty-range marker, the
// range's items, or a split into two fingerprinted halves. Recursion on
// mismatched halves resolves the exact symmetric difference in
// O(diff · log n) frames, after which a want list and an exact delta
// finish the exchange. As everywhere in this package, every count read
// off the wire is validated before it sizes an allocation.

package wire

import (
	"fmt"

	"repro/internal/recon"
	"repro/internal/store"
)

// Recon frames, negotiated by CapRecon. The probe/answer pairs reference
// half-open hash ranges [x, y) where a zero y means "unbounded above"
// (so the zero pair spans the whole keyspace).
const (
	// FrameReconFP probes a range: x, y, fingerprint, count.
	FrameReconFP FrameKind = 11
	// FrameReconMatch answers a probe whose fingerprint and count both
	// matched: the ranges hold identical sets. No payload.
	FrameReconMatch FrameKind = 12
	// FrameReconEmptyRange answers a probe for a range the responder
	// holds nothing in: everything the prober has there is missing on the
	// responder. No payload.
	FrameReconEmptyRange FrameKind = 13
	// FrameReconItems answers a probe by enumerating the responder's
	// items in the range (sent when the count is small enough that
	// enumeration beats recursion).
	FrameReconItems FrameKind = 14
	// FrameReconSplit answers a probe by splitting the range at a median
	// item: mid, then fingerprint and count of [x, mid) and [mid, y).
	FrameReconSplit FrameKind = 15
	// FrameReconWant closes the descent: the exact commit hashes the
	// sender is missing. The receiver answers with a delta stream
	// containing those commits (plus any merge commits the exchange
	// mints).
	FrameReconWant FrameKind = 16
	// FrameReconSpan probes a whole node pair at once: a fingerprint
	// folded over every hosted object's commit set, name and head, plus
	// the total commit count. A matching responder answers
	// FrameReconMatch — one round trip to confirm a converged mesh pair —
	// and a differing one answers with its own span, telling the prober
	// to run per-object syncs.
	FrameReconSpan FrameKind = 17
)

// CapRecon: the sender understands the recon frames and prefers
// fingerprint negotiation over frontier sampling. Negotiated in the same
// hello capabilities field as CapPatch.
const CapRecon uint64 = 1 << 1

// MaxReconItems bounds the item count of one FrameReconItems payload; a
// responder enumerates only small ranges, so a larger announcement is a
// protocol violation, not a big allocation.
const MaxReconItems = 4096

// PutFingerprint appends a fixed-width range fingerprint.
func (w *Writer) PutFingerprint(f recon.Fingerprint) { w.buf = append(w.buf, f[:]...) }

// PutItem appends a fixed-width recon key (locality prefix ‖ address).
func (w *Writer) PutItem(it recon.Item) { w.buf = append(w.buf, it[:]...) }

// Item consumes a fixed-width recon key.
func (r *Reader) Item() recon.Item {
	var it recon.Item
	if !r.need(len(it)) {
		return it
	}
	copy(it[:], r.buf[r.off:])
	r.off += len(it)
	return it
}

// Fingerprint consumes a fixed-width range fingerprint.
func (r *Reader) Fingerprint() recon.Fingerprint {
	var f recon.Fingerprint
	if !r.need(len(f)) {
		return f
	}
	copy(f[:], r.buf[r.off:])
	r.off += len(f)
	return f
}

// ReconRange is a fingerprinted key range: the FrameReconFP payload, and
// twice over the FrameReconSplit payload.
type ReconRange struct {
	X, Y  recon.Item
	FP    recon.Fingerprint
	Count int
}

// EncodeReconRange serializes a range probe (FrameReconFP payload).
func EncodeReconRange(rr ReconRange) []byte {
	var w Writer
	w.PutItem(rr.X)
	w.PutItem(rr.Y)
	w.PutFingerprint(rr.FP)
	w.PutLen(rr.Count)
	return w.Bytes()
}

// DecodeReconRange parses a range probe.
func DecodeReconRange(b []byte) (ReconRange, error) {
	r := NewReader(b)
	var rr ReconRange
	rr.X = r.Item()
	rr.Y = r.Item()
	rr.FP = r.Fingerprint()
	rr.Count = r.Len(0)
	if err := r.Close(); err != nil {
		return ReconRange{}, err
	}
	if rr.Count > MaxDeltaCommits {
		return ReconRange{}, fmt.Errorf("%w: range announces %d items, limit %d", ErrMalformed, rr.Count, MaxDeltaCommits)
	}
	return rr, nil
}

// ReconSplit is a range bisected at a median item, each half
// fingerprinted: the FrameReconSplit payload. The halves are [x, Mid)
// and [Mid, y) of the probed range.
type ReconSplit struct {
	Mid              recon.Item
	FPLo, FPHi       recon.Fingerprint
	CountLo, CountHi int
}

// EncodeReconSplit serializes a split answer.
func EncodeReconSplit(sp ReconSplit) []byte {
	var w Writer
	w.PutItem(sp.Mid)
	w.PutFingerprint(sp.FPLo)
	w.PutLen(sp.CountLo)
	w.PutFingerprint(sp.FPHi)
	w.PutLen(sp.CountHi)
	return w.Bytes()
}

// DecodeReconSplit parses a split answer.
func DecodeReconSplit(b []byte) (ReconSplit, error) {
	r := NewReader(b)
	var sp ReconSplit
	sp.Mid = r.Item()
	sp.FPLo = r.Fingerprint()
	sp.CountLo = r.Len(0)
	sp.FPHi = r.Fingerprint()
	sp.CountHi = r.Len(0)
	if err := r.Close(); err != nil {
		return ReconSplit{}, err
	}
	if sp.CountLo > MaxDeltaCommits || sp.CountHi > MaxDeltaCommits {
		return ReconSplit{}, fmt.Errorf("%w: split announces %d+%d items, limit %d", ErrMalformed, sp.CountLo, sp.CountHi, MaxDeltaCommits)
	}
	return sp, nil
}

// EncodeReconItems serializes a range enumeration (FrameReconItems
// payload).
func EncodeReconItems(items []recon.Item) []byte {
	var w Writer
	w.PutLen(len(items))
	for _, it := range items {
		w.PutItem(it)
	}
	return w.Bytes()
}

// DecodeReconItems parses a range enumeration. The count is bounded by
// MaxReconItems and the preallocation by the bytes actually present.
func DecodeReconItems(b []byte) ([]recon.Item, error) {
	r := NewReader(b)
	n := r.Len(len(recon.Item{}))
	if r.Err() == nil && n > MaxReconItems {
		return nil, fmt.Errorf("%w: %d items exceeds limit %d", ErrMalformed, n, MaxReconItems)
	}
	out := make([]recon.Item, 0, min(n, maxHashPrealloc))
	for i := 0; i < n; i++ {
		out = append(out, r.Item())
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeReconWant serializes the want list that ends a descent
// (FrameReconWant payload).
func EncodeReconWant(want []store.Hash) []byte {
	var w Writer
	w.PutLen(len(want))
	for _, h := range want {
		w.PutHash(h)
	}
	return w.Bytes()
}

// DecodeReconWant parses a want list. The count is bounded by
// MaxDeltaCommits — a want can legitimately span a whole diverged
// history — with preallocation still capped independently.
func DecodeReconWant(b []byte) ([]store.Hash, error) {
	r := NewReader(b)
	n := r.Len(len(store.Hash{}))
	if r.Err() == nil && n > MaxDeltaCommits {
		return nil, fmt.Errorf("%w: want of %d commits exceeds limit %d", ErrMalformed, n, MaxDeltaCommits)
	}
	out := make([]store.Hash, 0, min(n, maxHashPrealloc))
	for i := 0; i < n; i++ {
		out = append(out, r.Hash())
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReconSpan is a whole-node digest: the fold of every hosted object's
// commit-set fingerprint, name and head, plus the total commit count
// (the FrameReconSpan payload).
type ReconSpan struct {
	FP    recon.Fingerprint
	Count int
}

// EncodeReconSpan serializes a node-span probe.
func EncodeReconSpan(sp ReconSpan) []byte {
	var w Writer
	w.PutFingerprint(sp.FP)
	w.PutLen(sp.Count)
	return w.Bytes()
}

// DecodeReconSpan parses a node-span probe.
func DecodeReconSpan(b []byte) (ReconSpan, error) {
	r := NewReader(b)
	var sp ReconSpan
	sp.FP = r.Fingerprint()
	sp.Count = r.Len(0)
	if err := r.Close(); err != nil {
		return ReconSpan{}, err
	}
	return sp, nil
}
