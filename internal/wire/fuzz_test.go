package wire_test

// Frame-reader fuzzing. The sync protocol's first line of defense is
// ReadMsg: every byte a peer sends flows through it before any codec
// sees a payload, so hostile or truncated frames must produce a clean
// error — never a panic, never an allocation sized by an unbacked
// length announcement. The delta codec already has fuzz targets
// (internal/delta); these cover the framing layer above it.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/recon"
	"repro/internal/store"
	"repro/internal/wire"
)

// frame builds a well-formed message for the seed corpus.
func frame(kind wire.FrameKind, fields ...[]byte) []byte {
	var buf bytes.Buffer
	if err := wire.WriteMsg(&buf, kind, fields...); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzReadMsg(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(wire.FrameHello, []byte("payload")))
	f.Add(frame(wire.FrameErr, []byte("oops"), []byte("extra")))
	f.Add(frame(wire.FrameDeltaEnd))
	// Truncated frame: header promises more than the stream holds.
	f.Add(frame(wire.FrameCommits, bytes.Repeat([]byte{7}, 64))[:12])
	// Hostile field length: announces MaxFieldBytes with 4 bytes behind it.
	hostile := []byte{byte(wire.FrameHello)}
	hostile = binary.BigEndian.AppendUint32(hostile, 1)
	hostile = binary.BigEndian.AppendUint32(hostile, wire.MaxFieldBytes)
	hostile = append(hostile, 1, 2, 3, 4)
	f.Add(hostile)
	// Hostile field count.
	manyFields := []byte{byte(wire.FrameHello)}
	manyFields = binary.BigEndian.AppendUint32(manyFields, 1<<31)
	f.Add(manyFields)

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, fields, err := wire.ReadMsg(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, wire.ErrFraming) && err != io.EOF {
				t.Fatalf("ReadMsg error is neither ErrFraming nor io.EOF: %v", err)
			}
			return
		}
		// A successful parse must be backed by the input: the fields
		// plus framing can never exceed what was actually supplied.
		total := 5
		for _, fl := range fields {
			total += 4 + len(fl)
		}
		if total > len(data) {
			t.Fatalf("parsed %d framed bytes out of a %d-byte input", total, len(data))
		}
		// And it must round-trip through the writer.
		var buf bytes.Buffer
		if err := wire.WriteMsg(&buf, kind, fields...); err != nil {
			t.Fatalf("re-encoding parsed message: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:total]) {
			t.Fatalf("re-encoded message differs from input prefix")
		}
	})
}

// FuzzDecodeRecon: the recon payloads are decoded from untrusted peers
// in the probe loop, often many per sync, so arbitrary bytes must
// produce a clean ErrMalformed — never a panic, never an allocation
// sized by a hostile count. One fuzz target drives all five codecs: the
// decoders share the length-validating reader, and feeding each the
// others' valid encodings exercises exactly the cross-kind confusion a
// buggy peer would produce.
func FuzzDecodeRecon(f *testing.F) {
	f.Add([]byte{})
	f.Add(wire.EncodeReconRange(wire.ReconRange{
		X: recon.MakeItem(1, [32]byte{1}), Y: recon.MakeItem(2, [32]byte{2}), Count: 7,
	}))
	f.Add(wire.EncodeReconSplit(wire.ReconSplit{
		Mid: recon.MakeItem(3, [32]byte{3}), CountLo: 1, CountHi: 2,
	}))
	f.Add(wire.EncodeReconItems([]recon.Item{{4}, {5}}))
	f.Add(wire.EncodeReconWant([]store.Hash{{6}}))
	f.Add(wire.EncodeReconSpan(wire.ReconSpan{Count: 9}))
	// Hostile count: announces MaxDeltaCommits hashes backed by none.
	hostile := binary.BigEndian.AppendUint32(nil, wire.MaxDeltaCommits)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		if rr, err := wire.DecodeReconRange(data); err == nil {
			if !bytes.Equal(wire.EncodeReconRange(rr), data) {
				t.Fatal("decoded range does not re-encode to its input")
			}
		}
		if sp, err := wire.DecodeReconSplit(data); err == nil {
			if !bytes.Equal(wire.EncodeReconSplit(sp), data) {
				t.Fatal("decoded split does not re-encode to its input")
			}
		}
		if items, err := wire.DecodeReconItems(data); err == nil {
			if len(items) > wire.MaxReconItems {
				t.Fatalf("decoder admitted %d items past the cap", len(items))
			}
			if !bytes.Equal(wire.EncodeReconItems(items), data) {
				t.Fatal("decoded items do not re-encode to their input")
			}
		}
		if want, err := wire.DecodeReconWant(data); err == nil {
			if len(want) > wire.MaxDeltaCommits {
				t.Fatalf("decoder admitted %d wants past the cap", len(want))
			}
			if !bytes.Equal(wire.EncodeReconWant(want), data) {
				t.Fatal("decoded want does not re-encode to its input")
			}
		}
		if sp, err := wire.DecodeReconSpan(data); err == nil {
			if !bytes.Equal(wire.EncodeReconSpan(sp), data) {
				t.Fatal("decoded span does not re-encode to its input")
			}
		}
	})
}

// FuzzDecodeHello: the first payload a server decodes from an untrusted
// peer must never panic or over-allocate on arbitrary bytes.
func FuzzDecodeHello(f *testing.F) {
	f.Add([]byte{})
	good := wire.EncodeHello(wire.Hello{
		Node: "a", Object: "o", Datatype: "mergeable-log",
		Frontier: store.Frontier{Have: []store.Hash{{1}, {2}}},
	})
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := wire.DecodeHello(data)
		if err != nil {
			return
		}
		if !bytes.Equal(wire.EncodeHello(h), data) {
			t.Fatalf("decoded hello does not re-encode to its input")
		}
	})
}
