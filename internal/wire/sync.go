// Sync codec: the framing and commit/frontier encodings of the replica
// sync protocol. Messages are kind-tagged with length-prefixed fields;
// commit deltas stream as bounded chunks so a sync never materializes one
// history-sized buffer. Every count or length read off the wire is
// validated against a hard cap before it sizes an allocation.

package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/store"
)

// FrameKind tags one protocol message.
type FrameKind byte

// Protocol frames. The first three are the legacy v1 one-shot protocol
// (whole history in a single field); the rest implement the v2
// negotiate-and-ship-missing exchange. A v1 peer answers any v2 frame
// with FrameErr, which v2 clients treat as "fall back to full export".
const (
	FrameSyncRequest  FrameKind = 1 // v1: name [+ object + datatype] + full commit list
	FrameSyncResponse FrameKind = 2 // v1: full commit list
	FrameErr          FrameKind = 3 // error text (any phase, either protocol)
	FrameHello        FrameKind = 4 // v2: name + object + datatype + frontier
	FrameHelloAck     FrameKind = 5 // v2: responder name + object + datatype + frontier
	FrameDeltaHeader  FrameKind = 6 // v2: head hash + announced commit count
	FrameCommits      FrameKind = 7 // v2: one chunk of commits
	FrameDeltaEnd     FrameKind = 8 // v2: end of commit stream
	// FrameHelloMiss answers a hello for an object the responder does not
	// host (or hosts under a different datatype): the pair skips that
	// object and the session continues with the client's next hello.
	FrameHelloMiss FrameKind = 9
	// FramePackedCommits is the delta-state chunk: commits whose state
	// may travel as a binary patch against the first parent instead of a
	// full encoding. Only sent to peers that advertised CapPatch in the
	// hello negotiation; full-state FrameCommits chunks remain the format
	// for chain snapshots and legacy peers.
	FramePackedCommits FrameKind = 10
)

// Capability bits negotiated in the hello exchange: a hello (or ack)
// carrying a capabilities field is the packed dialect of the v2 protocol.
// A peer that predates capabilities rejects the extended hello outright,
// which the client treats as "retry without capabilities, then fall back
// to v1" — so every pairing converges on the richest protocol both ends
// speak.
const (
	// CapPatch: the sender understands FramePackedCommits chunks and
	// commits shipped as patches.
	CapPatch uint64 = 1 << 0
)

// EncodeCaps serializes a capability set (the optional second hello
// field).
func EncodeCaps(caps uint64) []byte {
	var w Writer
	w.PutInt64(int64(caps))
	return w.Bytes()
}

// DecodeCaps parses a capability set.
func DecodeCaps(b []byte) (uint64, error) {
	r := NewReader(b)
	caps := uint64(r.Int64())
	if err := r.Close(); err != nil {
		return 0, err
	}
	return caps, nil
}

// Wire limits. Chunk constants shape writes; Max* constants are enforced
// on reads.
const (
	// MaxFieldBytes bounds one message field (the ceiling for a legacy
	// one-shot history transfer).
	MaxFieldBytes = 64 << 20
	// maxFields bounds the field count of one message.
	maxFields = 4
	// commitChunkBytes is the target payload size of one FrameCommits
	// chunk; WriteDelta flushes a chunk once it crosses this size.
	commitChunkBytes = 256 << 10
	// commitChunkMax bounds commits per chunk even when states are tiny.
	commitChunkMax = 512
	// MaxDeltaCommits bounds the commit count a delta may announce.
	MaxDeltaCommits = 1 << 20
	// MaxDeltaBytes bounds the cumulative chunk payload of one delta.
	MaxDeltaBytes = 256 << 20
	// maxCommitPrealloc caps slice preallocation sized from a
	// wire-supplied commit count.
	maxCommitPrealloc = 4096
	// maxHashPrealloc caps slice preallocation sized from a wire-supplied
	// hash count.
	maxHashPrealloc = 1024
)

// ErrFraming is wrapped by message-framing failures.
var ErrFraming = errors.New("wire: framing error")

// PeerError is an error the remote side reported over the wire.
type PeerError struct{ Msg string }

// Error renders the peer's message.
func (e *PeerError) Error() string { return "wire: peer error: " + e.Msg }

// FrameMeter is the observability hook of the framing layer: a stream
// that also implements it has every complete framed message reported —
// kind plus total on-the-wire bytes (header, length prefixes, fields).
// ReadMsg and WriteMsg type-assert their stream for it, so metering
// needs no wrapper types and unmetered streams pay one interface check.
type FrameMeter interface {
	FrameRead(kind FrameKind, bytes int)
	FrameWrote(kind FrameKind, bytes int)
}

// WriteMsg frames a message: kind byte, field count, then length-prefixed
// fields.
func WriteMsg(w io.Writer, kind FrameKind, fields ...[]byte) error {
	var hdr []byte
	hdr = append(hdr, byte(kind))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(fields)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	total := len(hdr)
	for _, f := range fields {
		var lp [4]byte
		binary.BigEndian.PutUint32(lp[:], uint32(len(f)))
		if _, err := w.Write(lp[:]); err != nil {
			return err
		}
		if _, err := w.Write(f); err != nil {
			return err
		}
		total += len(lp) + len(f)
	}
	if m, ok := w.(FrameMeter); ok {
		m.FrameWrote(kind, total)
	}
	return nil
}

// fieldChunkBytes bounds how much of an announced field is allocated
// ahead of the bytes actually arriving: a hostile length prefix costs at
// most one chunk of memory, not MaxFieldBytes, because the buffer only
// grows as data is really received.
const fieldChunkBytes = 1 << 20

// readField reads one size-announced field without trusting the
// announcement for allocation: bytes are read in bounded chunks and the
// field grows only as data actually arrives.
func readField(r io.Reader, size int) ([]byte, error) {
	field := make([]byte, 0, min(size, fieldChunkBytes))
	for len(field) < size {
		n := min(size-len(field), fieldChunkBytes)
		start := len(field)
		field = append(field, make([]byte, n)...)
		if _, err := io.ReadFull(r, field[start:]); err != nil {
			return nil, err
		}
	}
	return field, nil
}

// ReadMsg reads one framed message, capping the field count and each
// field's size; a field's bytes are read incrementally, so an announced
// size never drives an allocation larger than the data that actually
// arrives (plus one bounded chunk). Field-count validation per kind is
// the caller's job. A clean end of stream before any header byte
// surfaces as bare io.EOF, so session loops can tell "peer hung up"
// from a framing violation.
func ReadMsg(r io.Reader) (FrameKind, [][]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: %w", ErrFraming, err)
	}
	kind := FrameKind(hdr[0])
	count := int(binary.BigEndian.Uint32(hdr[1:]))
	if count > maxFields {
		return 0, nil, fmt.Errorf("%w: %d fields exceeds limit", ErrFraming, count)
	}
	fields := make([][]byte, count)
	total := len(hdr)
	for i := range fields {
		var lp [4]byte
		if _, err := io.ReadFull(r, lp[:]); err != nil {
			return 0, nil, fmt.Errorf("%w: %w", ErrFraming, err)
		}
		size := binary.BigEndian.Uint32(lp[:])
		if size > MaxFieldBytes {
			return 0, nil, fmt.Errorf("%w: field of %d bytes exceeds limit", ErrFraming, size)
		}
		// The cause stays in the chain (%w): callers distinguish a framing
		// violation over a healthy connection (hostile bytes) from a read
		// that died of a reset or deadline (plain network trouble).
		field, err := readField(r, int(size))
		if err != nil {
			return 0, nil, fmt.Errorf("%w: %w", ErrFraming, err)
		}
		fields[i] = field
		total += len(lp) + len(field)
	}
	if m, ok := r.(FrameMeter); ok {
		m.FrameRead(kind, total)
	}
	return kind, fields, nil
}

// PutHash appends a fixed-width commit hash.
func (w *Writer) PutHash(h store.Hash) { w.buf = append(w.buf, h[:]...) }

// Hash consumes a fixed-width commit hash.
func (r *Reader) Hash() store.Hash {
	var h store.Hash
	if !r.need(len(h)) {
		return h
	}
	copy(h[:], r.buf[r.off:])
	r.off += len(h)
	return h
}

// PutBytes appends a length-prefixed byte field.
func (w *Writer) PutBytes(b []byte) {
	w.PutLen(len(b))
	w.buf = append(w.buf, b...)
}

// Bytes consumes a length-prefixed byte field.
func (r *Reader) Bytes() []byte {
	n := r.Len(1)
	if r.err != nil || !r.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

// Remaining reports the unconsumed payload bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Hello is the negotiation payload of one object's sync: who is asking,
// which named object on the node, the datatype it is expected to hold
// (so mismatched registrations fail cleanly instead of corrupting
// states), and the branch frontier to subtract from the transfer.
type Hello struct {
	// Node is the sending node's name.
	Node string
	// Object names the replicated object on the node.
	Object string
	// Datatype is the registered datatype name of the object.
	Datatype string
	// Frontier summarizes the sender's branch for delta negotiation.
	Frontier store.Frontier
}

// EncodeHello serializes a hello for the v2 negotiation (FrameHello /
// FrameHelloAck payload).
func EncodeHello(h Hello) []byte {
	var w Writer
	w.PutString(h.Node)
	w.PutString(h.Object)
	w.PutString(h.Datatype)
	w.PutHash(h.Frontier.Head)
	w.PutLen(len(h.Frontier.Have))
	for _, hh := range h.Frontier.Have {
		w.PutHash(hh)
	}
	return w.Bytes()
}

// DecodeHello parses a hello payload.
func DecodeHello(b []byte) (Hello, error) {
	r := NewReader(b)
	var h Hello
	h.Node = r.String()
	h.Object = r.String()
	h.Datatype = r.String()
	h.Frontier.Head = r.Hash()
	n := r.Len(len(store.Hash{}))
	h.Frontier.Have = make([]store.Hash, 0, min(n, maxHashPrealloc))
	for i := 0; i < n; i++ {
		h.Frontier.Have = append(h.Frontier.Have, r.Hash())
	}
	if err := r.Close(); err != nil {
		return Hello{}, err
	}
	return h, nil
}

// appendCommit serializes one commit: parent hashes, pinned state, then
// generation and timestamp (the full-state form; patches never travel in
// these chunks).
func appendCommit(w *Writer, c store.ExportedCommit) {
	w.PutLen(len(c.Parents))
	for _, p := range c.Parents {
		w.PutHash(p)
	}
	w.PutBytes(c.State)
	w.PutInt64(int64(c.Gen))
	w.PutTimestamp(c.Time)
}

// readCommit deserializes one commit; errors surface through the reader.
func readCommit(r *Reader) store.ExportedCommit {
	var c store.ExportedCommit
	np := r.Len(len(store.Hash{}))
	if np > 0 {
		c.Parents = make([]store.Hash, 0, min(np, 4))
		for i := 0; i < np; i++ {
			c.Parents = append(c.Parents, r.Hash())
		}
	}
	c.State = r.Bytes()
	c.Gen = int(r.Int64())
	c.Time = r.Timestamp()
	return c
}

// State-form tags of the packed commit encoding.
const (
	stateFull  = 0 // full encoded state follows
	statePatch = 1 // binary patch against the first parent's state follows
)

// appendPackedCommit serializes one commit in the packed form: parents,
// a form byte, the state or patch bytes, then generation and timestamp.
func appendPackedCommit(w *Writer, c store.ExportedCommit) {
	w.PutLen(len(c.Parents))
	for _, p := range c.Parents {
		w.PutHash(p)
	}
	if c.Patch != nil {
		w.buf = append(w.buf, statePatch)
		w.PutBytes(c.Patch)
	} else {
		w.buf = append(w.buf, stateFull)
		w.PutBytes(c.State)
	}
	w.PutInt64(int64(c.Gen))
	w.PutTimestamp(c.Time)
}

// readPackedCommit deserializes one packed-form commit.
func readPackedCommit(r *Reader) store.ExportedCommit {
	var c store.ExportedCommit
	np := r.Len(len(store.Hash{}))
	if np > 0 {
		c.Parents = make([]store.Hash, 0, min(np, 4))
		for i := 0; i < np; i++ {
			c.Parents = append(c.Parents, r.Hash())
		}
	}
	if !r.need(1) {
		return c
	}
	form := r.buf[r.off]
	r.off++
	switch form {
	case stateFull:
		c.State = r.Bytes()
	case statePatch:
		if c.Patch = r.Bytes(); len(c.Patch) == 0 && r.err == nil {
			// No valid patch is empty, and a nil Patch would read back as
			// a full state; reject rather than mistranslate.
			r.err = fmt.Errorf("%w: empty patch field", ErrMalformed)
		}
	default:
		r.err = fmt.Errorf("%w: unknown state form %d", ErrMalformed, form)
	}
	c.Gen = int(r.Int64())
	c.Time = r.Timestamp()
	return c
}

// EncodeCommitList serializes a whole history plus head in one buffer —
// the legacy v1 one-shot payload.
func EncodeCommitList(commits []store.ExportedCommit, head store.Hash) []byte {
	var w Writer
	w.PutLen(len(commits))
	for i := range commits {
		appendCommit(&w, commits[i])
	}
	w.PutHash(head)
	return w.Bytes()
}

// DecodeCommitList parses a legacy one-shot payload. Preallocation is
// capped, so a forged count cannot force a huge allocation.
func DecodeCommitList(b []byte) ([]store.ExportedCommit, store.Hash, error) {
	r := NewReader(b)
	n := r.Len(1)
	commits := make([]store.ExportedCommit, 0, min(n, maxCommitPrealloc))
	for i := 0; i < n; i++ {
		c := readCommit(r)
		if r.Err() != nil {
			return nil, store.Hash{}, r.Err()
		}
		commits = append(commits, c)
	}
	head := r.Hash()
	if err := r.Close(); err != nil {
		return nil, store.Hash{}, err
	}
	return commits, head, nil
}

// WriteDelta streams a commit delta: a header frame announcing the head
// and commit count, then commit chunks of bounded size, then an end
// frame. The caller's slice is never re-buffered whole. Commits must
// carry full states (the legacy-compatible form); use WriteDeltaPacked
// for a peer that negotiated CapPatch.
func WriteDelta(w io.Writer, commits []store.ExportedCommit, head store.Hash) error {
	return writeDelta(w, commits, head, false)
}

// WriteDeltaPacked streams a commit delta in the packed form: chunks are
// FramePackedCommits and each commit ships either its full state or a
// patch against its first parent. Only send to peers that advertised
// CapPatch.
func WriteDeltaPacked(w io.Writer, commits []store.ExportedCommit, head store.Hash) error {
	return writeDelta(w, commits, head, true)
}

func writeDelta(w io.Writer, commits []store.ExportedCommit, head store.Hash, packed bool) error {
	var hdr Writer
	hdr.PutHash(head)
	hdr.PutLen(len(commits))
	if err := WriteMsg(w, FrameDeltaHeader, hdr.Bytes()); err != nil {
		return err
	}
	kind := FrameCommits
	if packed {
		kind = FramePackedCommits
	}
	for start := 0; start < len(commits); {
		var chunk Writer
		n := 0
		for start+n < len(commits) && n < commitChunkMax && len(chunk.buf) < commitChunkBytes {
			c := commits[start+n]
			if packed {
				appendPackedCommit(&chunk, c)
			} else {
				if c.Patch != nil {
					return fmt.Errorf("%w: patch commit in a full-state delta", ErrFraming)
				}
				appendCommit(&chunk, c)
			}
			n++
		}
		if err := WriteMsg(w, kind, chunk.Bytes()); err != nil {
			return err
		}
		start += n
	}
	return WriteMsg(w, FrameDeltaEnd)
}

// ReadDelta consumes one delta stream and returns the commits and head.
// The announced count, cumulative chunk bytes, and per-chunk contents are
// all length-checked; a FrameErr from the peer surfaces as *PeerError.
func ReadDelta(r io.Reader) ([]store.ExportedCommit, store.Hash, error) {
	kind, fields, err := ReadMsg(r)
	if err != nil {
		return nil, store.Hash{}, err
	}
	if kind == FrameErr {
		return nil, store.Hash{}, peerErr(fields)
	}
	if kind != FrameDeltaHeader || len(fields) != 1 {
		return nil, store.Hash{}, fmt.Errorf("%w: expected delta header, got kind %d", ErrFraming, kind)
	}
	hr := NewReader(fields[0])
	head := hr.Hash()
	total := hr.Len(0)
	if err := hr.Close(); err != nil {
		return nil, store.Hash{}, err
	}
	if total > MaxDeltaCommits {
		return nil, store.Hash{}, fmt.Errorf("%w: delta announces %d commits, limit %d", ErrFraming, total, MaxDeltaCommits)
	}
	commits := make([]store.ExportedCommit, 0, min(total, maxCommitPrealloc))
	bytesRead := 0
	for {
		kind, fields, err := ReadMsg(r)
		if err != nil {
			return nil, store.Hash{}, err
		}
		switch kind {
		case FrameCommits, FramePackedCommits:
			if len(fields) != 1 {
				return nil, store.Hash{}, fmt.Errorf("%w: commit chunk wants 1 field, got %d", ErrFraming, len(fields))
			}
			bytesRead += len(fields[0])
			if bytesRead > MaxDeltaBytes {
				return nil, store.Hash{}, fmt.Errorf("%w: delta exceeds %d bytes", ErrFraming, MaxDeltaBytes)
			}
			cr := NewReader(fields[0])
			for cr.Remaining() > 0 {
				var c store.ExportedCommit
				if kind == FramePackedCommits {
					c = readPackedCommit(cr)
				} else {
					c = readCommit(cr)
				}
				if err := cr.Err(); err != nil {
					return nil, store.Hash{}, err
				}
				if len(commits) >= total {
					return nil, store.Hash{}, fmt.Errorf("%w: more commits than the %d announced", ErrFraming, total)
				}
				commits = append(commits, c)
			}
		case FrameDeltaEnd:
			if len(commits) != total {
				return nil, store.Hash{}, fmt.Errorf("%w: got %d commits, %d announced", ErrFraming, len(commits), total)
			}
			return commits, head, nil
		case FrameErr:
			return nil, store.Hash{}, peerErr(fields)
		default:
			return nil, store.Hash{}, fmt.Errorf("%w: unexpected kind %d in delta stream", ErrFraming, kind)
		}
	}
}

func peerErr(fields [][]byte) error {
	msg := "unspecified"
	if len(fields) > 0 {
		msg = string(fields[0])
	}
	return &PeerError{Msg: msg}
}
