package wire_test

import (
	"testing"

	"repro/internal/recon"
	"repro/internal/store"
	"repro/internal/wire"
)

func TestReconRangeRoundTrip(t *testing.T) {
	in := wire.ReconRange{
		X:     recon.MakeItem(3, [32]byte{1, 2}),
		Y:     recon.MakeItem(9, [32]byte{0xff}),
		FP:    recon.Fingerprint{9, 8, 7},
		Count: 12345,
	}
	out, err := wire.DecodeReconRange(wire.EncodeReconRange(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	// The zero range (whole keyspace) survives too.
	out, err = wire.DecodeReconRange(wire.EncodeReconRange(wire.ReconRange{}))
	if err != nil {
		t.Fatal(err)
	}
	if out != (wire.ReconRange{}) {
		t.Fatalf("zero range round trip: got %+v", out)
	}
}

func TestReconRangeHugeCountFails(t *testing.T) {
	b := wire.EncodeReconRange(wire.ReconRange{Count: wire.MaxDeltaCommits + 1})
	if _, err := wire.DecodeReconRange(b); err == nil {
		t.Fatal("count above MaxDeltaCommits must fail")
	}
}

func TestReconSplitRoundTrip(t *testing.T) {
	in := wire.ReconSplit{
		Mid:     recon.MakeItem(7, [32]byte{0x42}),
		FPLo:    recon.Fingerprint{1},
		CountLo: 10,
		FPHi:    recon.Fingerprint{2},
		CountHi: 11,
	}
	out, err := wire.DecodeReconSplit(wire.EncodeReconSplit(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	in.CountHi = wire.MaxDeltaCommits + 1
	if _, err := wire.DecodeReconSplit(wire.EncodeReconSplit(in)); err == nil {
		t.Fatal("half count above MaxDeltaCommits must fail")
	}
}

func TestReconItemsRoundTrip(t *testing.T) {
	in := []recon.Item{recon.MakeItem(1, [32]byte{1}), recon.MakeItem(2, [32]byte{2}), recon.MakeItem(2, [32]byte{3})}
	out, err := wire.DecodeReconItems(wire.EncodeReconItems(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d items, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("item %d: got %v, want %v", i, out[i], in[i])
		}
	}
	empty, err := wire.DecodeReconItems(wire.EncodeReconItems(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty enumeration: %v, %d items", err, len(empty))
	}
}

// TestReconForgedCountsFail pins the allocation defense: a count field
// announcing more elements than the payload carries must be rejected by
// the length-validating reader, and a count above the per-frame cap must
// be rejected even when backed by bytes.
func TestReconForgedCountsFail(t *testing.T) {
	// Items: forge the count prefix upward on a valid 2-item payload.
	b := wire.EncodeReconItems([]recon.Item{{1}, {2}})
	forged := append([]byte(nil), b...)
	forged[3] = 0xEE // count varint/fixed prefix corrupted upward
	if _, err := wire.DecodeReconItems(forged); err == nil {
		t.Fatal("forged item count must fail, not allocate")
	}
	// Want: same shape, same defense.
	w := wire.EncodeReconWant([]store.Hash{{1}})
	forgedW := append([]byte(nil), w...)
	forgedW[3] = 0xEE
	if _, err := wire.DecodeReconWant(forgedW); err == nil {
		t.Fatal("forged want count must fail, not allocate")
	}
	// Items above MaxReconItems are a protocol violation outright.
	big := make([]recon.Item, wire.MaxReconItems+1)
	if _, err := wire.DecodeReconItems(wire.EncodeReconItems(big)); err == nil {
		t.Fatal("items above MaxReconItems must fail")
	}
}

func TestReconWantRoundTrip(t *testing.T) {
	in := []store.Hash{{7}, {8}}
	out, err := wire.DecodeReconWant(wire.EncodeReconWant(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip: got %v", out)
	}
}

func TestReconSpanRoundTrip(t *testing.T) {
	in := wire.ReconSpan{FP: recon.Fingerprint{0xAB}, Count: 99}
	out, err := wire.DecodeReconSpan(wire.EncodeReconSpan(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if _, err := wire.DecodeReconSpan([]byte{1, 2}); err == nil {
		t.Fatal("truncated span must fail")
	}
}

func TestCapReconNegotiation(t *testing.T) {
	caps, err := wire.DecodeCaps(wire.EncodeCaps(wire.CapPatch | wire.CapRecon))
	if err != nil {
		t.Fatal(err)
	}
	if caps&wire.CapRecon == 0 || caps&wire.CapPatch == 0 {
		t.Fatalf("caps round trip lost bits: %b", caps)
	}
}
