// Package delta implements the binary delta encoding the store's pack
// layer chains state objects with: a patch is a sequence of copy/insert
// opcodes that rebuilds a target byte string from a base byte string,
// the way Git packfiles delta-chain objects against a nearby version.
// Patches are pure data — Apply validates every offset and length against
// the base and the announced target size, so a corrupted or hostile patch
// yields an error, never an out-of-bounds read or an oversized
// allocation.
//
// The format is deliberately small. A patch opens with two uvarints, the
// base length and the target length (Apply refuses a patch whose base
// length does not match the base it is given), followed by opcodes:
//
//	0x00 <uvarint n> <n bytes>      insert the next n literal bytes
//	0x01 <uvarint off> <uvarint n>  copy n bytes from base offset off
//
// Make is a greedy block-matching encoder: it indexes the base in
// blockSize-aligned windows, scans the target for matching windows, and
// extends every match as far as possible in both directions. It always
// produces a valid patch; when base and target share nothing, the patch
// degenerates to one insert of the whole target (plus the header).
package delta

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is wrapped by every Apply failure.
var ErrCorrupt = errors.New("delta: corrupt patch")

// MaxTarget bounds the target length a patch may announce — the same
// 64 MiB ceiling the wire layer puts on one full encoded state, so a
// patch can never be used to reassemble (or allocate for) anything a
// full-state transfer could not have shipped. The store falls back to
// snapshots for states beyond it.
const MaxTarget = 64 << 20

// Opcode tags.
const (
	opInsert = 0x00
	opCopy   = 0x01
)

// blockSize is the match granularity of Make: base windows of this size
// are indexed, and only matches at least this long are worth a copy
// opcode (a copy costs up to 1+2·binary.MaxVarintLen64 bytes).
const blockSize = 16

// maxChainProbe bounds how many same-hash base offsets Make considers per
// target window, so adversarially repetitive inputs stay O(n).
const maxChainProbe = 8

// Make encodes target as a patch against base. The result is always a
// valid input for Apply(base, ·); it is never larger than
// len(target)+2·binary.MaxVarintLen64+header bytes beyond the target
// itself, so callers comparing against storing target verbatim can simply
// compare lengths.
func Make(base, target []byte) []byte {
	patch := make([]byte, 0, 2*binary.MaxVarintLen64+len(target)/8+16)
	patch = binary.AppendUvarint(patch, uint64(len(base)))
	patch = binary.AppendUvarint(patch, uint64(len(target)))

	if len(base) < blockSize || len(target) < blockSize {
		return appendInsert(patch, target)
	}

	// Index the base in aligned windows: hash → offsets.
	index := make(map[uint64][]int, len(base)/blockSize)
	for off := 0; off+blockSize <= len(base); off += blockSize {
		h := blockHash(base[off : off+blockSize])
		if c := index[h]; len(c) < maxChainProbe {
			index[h] = append(c, off)
		}
	}

	insertStart := 0
	i := 0
	for i+blockSize <= len(target) {
		bestOff, bestStart, bestLen := -1, 0, 0
		for _, off := range index[blockHash(target[i:i+blockSize])] {
			if !bytes.Equal(base[off:off+blockSize], target[i:i+blockSize]) {
				continue
			}
			// Extend forward.
			end, bend := i+blockSize, off+blockSize
			for end < len(target) && bend < len(base) && target[end] == base[bend] {
				end++
				bend++
			}
			// Extend backward into the pending insert run.
			start, bstart := i, off
			for start > insertStart && bstart > 0 && target[start-1] == base[bstart-1] {
				start--
				bstart--
			}
			if l := end - start; l > bestLen {
				bestOff, bestStart, bestLen = bstart, start, l
			}
		}
		if bestLen >= blockSize {
			patch = appendInsert(patch, target[insertStart:bestStart])
			patch = append(patch, opCopy)
			patch = binary.AppendUvarint(patch, uint64(bestOff))
			patch = binary.AppendUvarint(patch, uint64(bestLen))
			i = bestStart + bestLen
			insertStart = i
		} else {
			i++
		}
	}
	return appendInsert(patch, target[insertStart:])
}

// Identity returns the patch that rebuilds an n-byte base unchanged —
// one copy of the whole base. Stores ship it for commits that pin
// exactly their parent's state (deduplicated no-op operations), where
// the base's length is known without materializing the bytes.
func Identity(n int) []byte {
	patch := make([]byte, 0, 2*binary.MaxVarintLen64+4)
	patch = binary.AppendUvarint(patch, uint64(n))
	patch = binary.AppendUvarint(patch, uint64(n))
	if n == 0 {
		return patch
	}
	patch = append(patch, opCopy)
	patch = binary.AppendUvarint(patch, 0)
	return binary.AppendUvarint(patch, uint64(n))
}

// appendInsert emits one insert opcode for lit (nothing for empty lit).
func appendInsert(patch, lit []byte) []byte {
	if len(lit) == 0 {
		return patch
	}
	patch = append(patch, opInsert)
	patch = binary.AppendUvarint(patch, uint64(len(lit)))
	return append(patch, lit...)
}

// blockHash is an FNV-1a over one window — cheap, and collisions only
// cost a failed byte comparison.
func blockHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// Apply rebuilds the target from base and patch. Every opcode is
// validated *before* it produces output: copies must lie inside base,
// no opcode may push the output past the announced target length, the
// announced length is capped at MaxTarget, and the announced base
// length must match len(base) — so a hostile patch can neither read out
// of bounds nor drive allocation beyond MaxTarget, however many
// whole-base copy opcodes it stacks. The returned slice is freshly
// allocated.
func Apply(base, patch []byte) ([]byte, error) {
	baseLen, n := binary.Uvarint(patch)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad base length", ErrCorrupt)
	}
	patch = patch[n:]
	if baseLen != uint64(len(base)) {
		return nil, fmt.Errorf("%w: patch is against a %d-byte base, have %d bytes", ErrCorrupt, baseLen, len(base))
	}
	targetLen, n := binary.Uvarint(patch)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad target length", ErrCorrupt)
	}
	if targetLen > MaxTarget {
		return nil, fmt.Errorf("%w: announced target of %d bytes exceeds the %d limit", ErrCorrupt, targetLen, MaxTarget)
	}
	patch = patch[n:]
	// Every opcode below is checked against the remaining room before
	// appending, so out never grows past targetLen; still cap the
	// prealloc at what the patch could plausibly produce, so a forged
	// length paired with a tiny patch does not get a large buffer for
	// free.
	prealloc := targetLen
	if lim := uint64(len(base)+len(patch)) * 8; prealloc > lim {
		prealloc = lim
	}
	out := make([]byte, 0, prealloc)
	for len(patch) > 0 {
		op := patch[0]
		patch = patch[1:]
		room := targetLen - uint64(len(out))
		switch op {
		case opInsert:
			l, n := binary.Uvarint(patch)
			if n <= 0 || l > uint64(len(patch)-n) {
				return nil, fmt.Errorf("%w: truncated insert", ErrCorrupt)
			}
			if l > room {
				return nil, fmt.Errorf("%w: output exceeds announced %d bytes", ErrCorrupt, targetLen)
			}
			patch = patch[n:]
			out = append(out, patch[:l]...)
			patch = patch[l:]
		case opCopy:
			off, n := binary.Uvarint(patch)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad copy offset", ErrCorrupt)
			}
			patch = patch[n:]
			l, n := binary.Uvarint(patch)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad copy length", ErrCorrupt)
			}
			patch = patch[n:]
			if off > uint64(len(base)) || l > uint64(len(base))-off {
				return nil, fmt.Errorf("%w: copy [%d,%d) outside %d-byte base", ErrCorrupt, off, off+l, len(base))
			}
			if l > room {
				return nil, fmt.Errorf("%w: output exceeds announced %d bytes", ErrCorrupt, targetLen)
			}
			out = append(out, base[off:off+l]...)
		default:
			return nil, fmt.Errorf("%w: unknown opcode %#x", ErrCorrupt, op)
		}
	}
	if uint64(len(out)) != targetLen {
		return nil, fmt.Errorf("%w: output is %d bytes, %d announced", ErrCorrupt, len(out), targetLen)
	}
	return out, nil
}
