package delta_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/delta"
)

func roundTrip(t *testing.T, base, target []byte) []byte {
	t.Helper()
	patch := delta.Make(base, target)
	got, err := delta.Apply(base, patch)
	if err != nil {
		t.Fatalf("Apply(Make): %v (base %d bytes, target %d bytes)", err, len(base), len(target))
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return patch
}

func TestRoundTripEdgeCases(t *testing.T) {
	cases := []struct{ name, base, target string }{
		{"both-empty", "", ""},
		{"empty-base", "", "hello world, this is a fresh target"},
		{"empty-target", "some base content that vanishes", ""},
		{"identical", "the exact same sixteen-plus bytes", "the exact same sixteen-plus bytes"},
		{"append", "a shared prefix of decent length", "a shared prefix of decent length plus a tail"},
		{"prepend", "a shared suffix of decent length", "fresh head then a shared suffix of decent length"},
		{"middle-edit", "left side 0123456789abcdef right side", "left side FEDCBA9876543210 right side"},
		{"short", "ab", "abc"},
		{"disjoint", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			roundTrip(t, []byte(c.base), []byte(c.target))
		})
	}
}

func TestPatchCompressesSmallEdits(t *testing.T) {
	// A small edit on a large base must yield a patch much smaller than
	// the target — the whole point of chaining states as deltas.
	base := bytes.Repeat([]byte("0123456789abcdef"), 512) // 8 KiB
	target := append(append([]byte{}, base...), []byte("one appended operation")...)
	patch := roundTrip(t, base, target)
	if len(patch) > len(target)/16 {
		t.Fatalf("patch is %d bytes for a %d-byte target with a tiny edit", len(patch), len(target))
	}
}

func TestIdentity(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4096} {
		base := bytes.Repeat([]byte{0xab}, n)
		got, err := delta.Apply(base, delta.Identity(n))
		if err != nil {
			t.Fatalf("Identity(%d): %v", n, err)
		}
		if !bytes.Equal(got, base) {
			t.Fatalf("Identity(%d) does not rebuild the base", n)
		}
	}
	if _, err := delta.Apply([]byte("abc"), delta.Identity(4)); err == nil {
		t.Fatal("identity patch for the wrong length must fail")
	}
}

func TestApplyRejectsWrongBase(t *testing.T) {
	base := []byte("the original base, sixteen plus")
	patch := delta.Make(base, []byte("the original base, sixteen plus and more"))
	if _, err := delta.Apply([]byte("a different base"), patch); err == nil {
		t.Fatal("Apply accepted a patch made against another base")
	}
}

func TestApplyRejectsCorruptPatches(t *testing.T) {
	base := bytes.Repeat([]byte("abcdefgh"), 16)
	target := append(bytes.Repeat([]byte("abcdefgh"), 16), []byte("tail")...)
	patch := delta.Make(base, target)
	for i := range patch {
		for _, flip := range []byte{0xff, 0x80, 0x01} {
			mut := append([]byte(nil), patch...)
			mut[i] ^= flip
			if bytes.Equal(mut, patch) {
				continue
			}
			out, err := delta.Apply(base, mut)
			// A flipped byte may still decode (e.g. inside insert
			// literals) — then the output must simply differ; it must
			// never panic or read out of bounds.
			if err == nil && len(out) != len(target) {
				t.Fatalf("corrupt patch (byte %d ^ %#x) produced %d bytes without error, want %d",
					i, flip, len(out), len(target))
			}
		}
	}
	// Truncations must all fail or produce a short, caught output.
	for i := 0; i < len(patch); i++ {
		if _, err := delta.Apply(base, patch[:i]); err == nil {
			t.Fatalf("truncated patch (%d of %d bytes) applied cleanly", i, len(patch))
		}
	}
}

// TestApplyBoundsHostileAmplification: a tiny patch stacking whole-base
// copy opcodes under a huge announced target length must be rejected at
// the first opcode that would push output past the announced length (and
// a length beyond MaxTarget must be rejected outright) — Apply's
// allocation is bounded by min(MaxTarget, announced), never by
// opcode-count × base-size.
func TestApplyBoundsHostileAmplification(t *testing.T) {
	base := bytes.Repeat([]byte{0x5a}, 1<<20) // 1 MiB base
	hostile := func(targetLen uint64, copies int) []byte {
		p := binary.AppendUvarint(nil, uint64(len(base)))
		p = binary.AppendUvarint(p, targetLen)
		for i := 0; i < copies; i++ {
			p = append(p, 0x01) // opCopy
			p = binary.AppendUvarint(p, 0)
			p = binary.AppendUvarint(p, uint64(len(base)))
		}
		return p
	}
	// Announced length beyond MaxTarget: rejected before any output.
	if _, err := delta.Apply(base, hostile(1<<40, 2000)); err == nil {
		t.Fatal("patch announcing 1 TiB must be rejected")
	}
	// Announced length inside MaxTarget but amplified past it by copies:
	// the opcode crossing the announced length fails the apply.
	if _, err := delta.Apply(base, hostile(delta.MaxTarget, 2000)); err == nil {
		t.Fatal("copy amplification past the announced length must be rejected")
	}
}

// TestRandomizedRoundTrip is the property test: targets derived from a
// random base by random splices must always round-trip, whatever the
// mutation pattern.
func TestRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		base := make([]byte, rng.Intn(4096))
		// Low-entropy alphabet: repeated windows stress the match index.
		for i := range base {
			base[i] = byte('a' + rng.Intn(4))
		}
		target := append([]byte(nil), base...)
		for edits := rng.Intn(8); edits > 0; edits-- {
			if len(target) == 0 {
				target = append(target, 'x')
				continue
			}
			at := rng.Intn(len(target))
			switch rng.Intn(3) {
			case 0: // delete a run
				end := at + rng.Intn(64)
				if end > len(target) {
					end = len(target)
				}
				target = append(target[:at], target[end:]...)
			case 1: // insert a run
				ins := make([]byte, rng.Intn(64))
				for i := range ins {
					ins[i] = byte(rng.Intn(256))
				}
				target = append(target[:at], append(ins, target[at:]...)...)
			case 2: // overwrite a byte
				target[at] ^= byte(1 + rng.Intn(255))
			}
		}
		roundTrip(t, base, target)
	}
}

// FuzzApply: arbitrary patches against arbitrary bases must error or
// produce output — never panic, never over-allocate via forged lengths.
func FuzzApply(f *testing.F) {
	base := []byte("seed base content, sixteen plus bytes")
	f.Add(base, delta.Make(base, []byte("seed base content, sixteen plus bytes edited")))
	f.Add([]byte(""), []byte{0, 0})
	f.Add(base, []byte{37, 1, 1, 0, 5})
	f.Fuzz(func(t *testing.T, base, patch []byte) {
		out, err := delta.Apply(base, patch)
		if err != nil {
			return
		}
		// A successful apply must be deterministic.
		again, err := delta.Apply(base, patch)
		if err != nil || !bytes.Equal(out, again) {
			t.Fatal("Apply is not deterministic")
		}
	})
}

// FuzzRoundTrip: Make/Apply agree for arbitrary byte pairs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("some base"), []byte("some target"))
	f.Add([]byte(""), []byte(""))
	f.Fuzz(func(t *testing.T, base, target []byte) {
		patch := delta.Make(base, target)
		got, err := delta.Apply(base, patch)
		if err != nil {
			t.Fatalf("Apply(Make): %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatal("round trip mismatch")
		}
	})
}
