package mlog

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestLogAppendRead(t *testing.T) {
	var impl Log
	s := impl.Init()
	s, _ = impl.Do(Op{Kind: Append, Msg: "first"}, s, 1)
	s, _ = impl.Do(Op{Kind: Append, Msg: "second"}, s, 2)
	_, v := impl.Do(Op{Kind: Read}, s, 3)
	want := []Entry{{T: 2, Msg: "second"}, {T: 1, Msg: "first"}}
	if !slices.Equal(v.Log, want) {
		t.Fatalf("read = %v, want %v (newest first)", v.Log, want)
	}
}

func TestLogDoIsPersistent(t *testing.T) {
	var impl Log
	s1, _ := impl.Do(Op{Kind: Append, Msg: "a"}, impl.Init(), 1)
	s2, _ := impl.Do(Op{Kind: Append, Msg: "b"}, s1, 2)
	if len(s1) != 1 || len(s2) != 2 || s1[0].Msg != "a" {
		t.Fatal("Append must not mutate its input")
	}
}

func TestMergeInterleavesByTimestamp(t *testing.T) {
	var impl Log
	lca := State{{T: 1, Msg: "base"}}
	a := State{{T: 4, Msg: "a2"}, {T: 2, Msg: "a1"}, {T: 1, Msg: "base"}}
	b := State{{T: 3, Msg: "b1"}, {T: 1, Msg: "base"}}
	m := impl.Merge(lca, a, b)
	want := State{{T: 4, Msg: "a2"}, {T: 3, Msg: "b1"}, {T: 2, Msg: "a1"}, {T: 1, Msg: "base"}}
	if !slices.Equal(m, want) {
		t.Fatalf("merge = %v, want %v", m, want)
	}
	if !slices.Equal(impl.Merge(lca, b, a), want) {
		t.Fatal("merge must be symmetric")
	}
}

func TestMergeEmptyDiffs(t *testing.T) {
	var impl Log
	lca := State{{T: 1, Msg: "x"}}
	if m := impl.Merge(lca, lca, lca); !slices.Equal(m, lca) {
		t.Fatalf("idle merge = %v", m)
	}
	var empty State
	if m := impl.Merge(empty, empty, empty); len(m) != 0 {
		t.Fatalf("empty merge = %v", m)
	}
}

// Property: merging random divergent extensions of a random LCA yields a
// strictly descending log containing exactly the union of entries.
func TestMergePropertyQuick(t *testing.T) {
	var impl Log
	type tri struct{ lca, a, b State }
	gen := func(r *rand.Rand) tri {
		next := core.Timestamp(1)
		mk := func(n int, base State) State {
			s := base
			for i := 0; i < n; i++ {
				s = append(State{{T: next, Msg: "m"}}, s...)
				next++
			}
			return s
		}
		lca := mk(r.Intn(5), nil)
		// Interleave timestamps between the two branches.
		a, b := lca, lca
		for i, n := 0, r.Intn(6); i < n; i++ {
			if r.Intn(2) == 0 {
				a = mk(1, a)
			} else {
				b = mk(1, b)
			}
		}
		return tri{lca, a, b}
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(gen(r))
		},
	}
	prop := func(x tri) bool {
		m := impl.Merge(x.lca, x.a, x.b)
		if len(m) != len(x.a)+len(x.b)-len(x.lca) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i-1].T <= m[i].T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestSpecAndRsim(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	a1 := h.Append(Op{Kind: Append, Msg: "x"}, Val{}, 5, nil)
	a2 := h.Append(Op{Kind: Append, Msg: "y"}, Val{}, 2, nil)
	abs := core.StateOf(h, []core.EventID{a1, a2})
	v := Spec(Op{Kind: Read}, abs)
	want := []Entry{{T: 5, Msg: "x"}, {T: 2, Msg: "y"}}
	if !slices.Equal(v.Log, want) {
		t.Fatalf("spec read = %v", v.Log)
	}
	if !Rsim(abs, State(want)) {
		t.Fatal("Rsim must accept the faithful log")
	}
	if Rsim(abs, State{{T: 2, Msg: "y"}, {T: 5, Msg: "x"}}) {
		t.Fatal("Rsim must reject a mis-ordered log")
	}
	if Rsim(abs, State(want[:1])) {
		t.Fatal("Rsim must reject a truncated log")
	}
}
