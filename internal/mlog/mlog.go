// Package mlog implements the mergeable log MRDT of §5.2 (Figure 7): an
// append-only log that totally orders messages in reverse chronological
// order of their operation timestamps. It is the value type the IRC-style
// chat of §5.1 stores per channel.
package mlog

import (
	"slices"

	"repro/internal/core"
)

// OpKind distinguishes log operations.
type OpKind int

// Log operations.
const (
	Read OpKind = iota
	Append
)

// Op is a log operation; Msg is the appended message (ignored for Read).
type Op struct {
	Kind OpKind
	Msg  string
}

// Entry is a timestamped message.
type Entry struct {
	T   core.Timestamp
	Msg string
}

// Val is an operation's return value: the log contents (newest first) for
// Read, nil (⊥) for Append.
type Val struct {
	Log []Entry
}

// ValEq compares return values.
func ValEq(a, b Val) bool { return slices.Equal(a.Log, b.Log) }

// State is the concrete log: entries in strictly descending timestamp
// order (newest first). Treat as immutable.
type State []Entry

// Log is the mergeable log MRDT.
type Log struct{}

var _ core.MRDT[State, Op, Val] = Log{}

// Init returns the empty log.
func (Log) Init() State { return nil }

// Do applies op at state s with timestamp t. Append prepends (the new
// timestamp is larger than every timestamp already present).
func (Log) Do(op Op, s State, t core.Timestamp) (State, Val) {
	switch op.Kind {
	case Read:
		return s, Val{Log: slices.Clone(s)}
	case Append:
		next := make(State, 0, len(s)+1)
		next = append(next, Entry{T: t, Msg: op.Msg})
		next = append(next, s...)
		return next, Val{}
	default:
		return s, Val{}
	}
}

// Merge implements Figure 7's specification — the merged log holds every
// entry of both branches, ordered by strictly decreasing timestamp — as
// a linear two-way sorted merge of a and b, deduplicated by timestamp.
// Timestamps are globally unique (Ψ_ts), so an equal-timestamp pair is
// one entry seen from both branches, and the LCA's entries are a subset
// of each side's: the union needs no explicit lca term. Working on the
// whole lists rather than diffing against the LCA keeps the merge exact
// even when gossip has interleaved entry timestamps across the branches
// and the LCA is no longer a contiguous suffix of either side.
func (Log) Merge(lca, a, b State) State {
	out := make(State, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].T > b[j].T:
			out = append(out, a[i])
			i++
		case a[i].T < b[j].T:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Spec is F_log (Figure 7): read returns exactly the appended messages,
// ordered by strictly decreasing timestamp.
func Spec(op Op, abs *core.AbstractState[Op, Val]) Val {
	if op.Kind != Read {
		return Val{}
	}
	var log []Entry
	for _, e := range abs.Events() {
		if o := abs.Oper(e); o.Kind == Append {
			log = append(log, Entry{T: abs.Time(e), Msg: o.Msg})
		}
	}
	slices.SortFunc(log, func(x, y Entry) int {
		switch {
		case x.T > y.T:
			return -1
		case x.T < y.T:
			return 1
		default:
			return 0
		}
	})
	return Val{Log: log}
}

// Rsim is R_sim-log (Figure 7): the concrete log contains exactly the
// append events' (timestamp, message) pairs, in reverse chronological
// order.
func Rsim(abs *core.AbstractState[Op, Val], s State) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1].T <= s[i].T {
			return false
		}
	}
	return slices.Equal(Spec(Op{Kind: Read}, abs).Log, []Entry(s))
}
