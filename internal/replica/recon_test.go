package replica_test

// Tests for the range-fingerprint reconciliation dialect: the O(1)
// converged re-sync it promises, the exactness of its diffs (zero
// redundant commits), the per-object counters it adds, and every rung of
// the downgrade ladder down to the legacy one-shot protocol.

import (
	"fmt"
	"testing"

	"repro/internal/counter"
	"repro/internal/replica"
	"repro/internal/wire"
)

// convergePair drives two syncs so both nodes hold equal sets and equal
// heads (the first sync merges, the second ships the merge back).
func convergePair(t *testing.T, a, b *counterNode) {
	t.Helper()
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if av, bv := peek(t, a), peek(t, b); av != bv {
		t.Fatalf("pair failed to converge: a=%d b=%d", av, bv)
	}
}

// TestReconConvergedResyncO1 is the acceptance core of the dialect: a
// converged pair's re-sync costs O(1) frames and zero commits, and the
// cost is flat in history depth — the same bound at 10² and at 10⁴
// commits, where a sampled frontier would still ship its whole sample.
func TestReconConvergedResyncO1(t *testing.T) {
	resyncBytes := func(history int, idBase int) int64 {
		a := newCounterNode(t, fmt.Sprintf("a%d", history), idBase)
		b := newCounterNode(t, fmt.Sprintf("b%d", history), idBase+1)
		for i := 0; i < history; i++ {
			if i%2 == 0 {
				inc(t, a, 1)
			} else {
				inc(t, b, 1)
			}
		}
		convergePair(t, a, b)
		before := a.Stats()
		if err := a.SyncWith(b.Addr()); err != nil {
			t.Fatal(err)
		}
		after := a.Stats()
		if moved := commitsMoved(before, after); moved != 0 {
			t.Fatalf("history %d: converged re-sync moved %d commits, want 0", history, moved)
		}
		if after.RedundantCommits != before.RedundantCommits {
			t.Fatalf("history %d: converged re-sync re-shipped %d commits",
				history, after.RedundantCommits-before.RedundantCommits)
		}
		// The whole re-sync is one span probe and one match frame.
		if probes := after.RangesSent - before.RangesSent; probes != 1 {
			t.Fatalf("history %d: converged re-sync sent %d probes, want exactly 1", history, probes)
		}
		return bytesMoved(before, after)
	}
	at100 := resyncBytes(100, 1)
	at10k := resyncBytes(10_000, 3)
	// O(1): a hard small-constant ceiling at both depths (two frames of
	// ~50 bytes plus framing), and flat across two orders of magnitude.
	const ceiling = 512
	if at100 > ceiling || at10k > ceiling {
		t.Fatalf("converged re-sync cost %d bytes at 10², %d at 10⁴; want ≤ %d", at100, at10k, ceiling)
	}
	if at10k != at100 {
		t.Fatalf("converged re-sync cost must be flat in depth: %d bytes at 10², %d at 10⁴", at100, at10k)
	}
}

// TestReconExactDiffNoRedundant pins the dialect's contract on deep
// divergence: after a long shared prefix, two sides that each diverge by
// d commits exchange exactly their diffs — no commit crosses the wire
// that the receiver already held.
func TestReconExactDiffNoRedundant(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	for i := 0; i < 200; i++ {
		inc(t, a, 1)
	}
	convergePair(t, a, b)
	const gap = 40
	for i := 0; i < gap; i++ {
		inc(t, a, 1)
		inc(t, b, 1)
	}
	before := a.Stats()
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	after := a.Stats()
	sb := b.Stats()
	if after.RedundantCommits != before.RedundantCommits || sb.RedundantCommits != 0 {
		t.Fatalf("exact negotiation re-shipped commits: client %d, server %d",
			after.RedundantCommits-before.RedundantCommits, sb.RedundantCommits)
	}
	// Each side ships its gap; the merge adds a couple of minted commits.
	if moved := commitsMoved(before, after); moved > 2*gap+3 {
		t.Fatalf("diff of 2×%d commits moved %d, want the exact diff", gap, moved)
	}
	if av, bv := peek(t, a), read(t, b); av != bv {
		t.Fatalf("diverged after sync: a=%d b=%d", av, bv)
	}
}

// TestReconStatsPerObject pins the new SyncStats fields end to end: the
// probe counters tick on the right role and the right object, and both
// the node aggregate and the per-object snapshot carry them.
func TestReconStatsPerObject(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	for i := 0; i < 50; i++ {
		inc(t, a, 1)
		inc(t, b, 1)
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	ca, cb := a.ObjectStats("counter"), b.ObjectStats("counter")
	if ca.RangesSent == 0 {
		t.Fatalf("client object stats must count probes sent: %+v", ca)
	}
	if ca.RangesRecv != 0 {
		t.Fatalf("client answered no probes, counted %d", ca.RangesRecv)
	}
	if cb.RangesRecv != ca.RangesSent {
		t.Fatalf("server answered %d probes, client sent %d", cb.RangesRecv, ca.RangesSent)
	}
	if cb.RangesSent != 0 {
		t.Fatalf("server sent no probes, counted %d", cb.RangesSent)
	}
	if na := a.Stats(); na.RangesSent != ca.RangesSent {
		t.Fatalf("node aggregate %d probes, object %d", na.RangesSent, ca.RangesSent)
	}
	if ca.RedundantCommits != 0 || cb.RedundantCommits != 0 {
		t.Fatalf("redundant commits on an exact exchange: client %d, server %d",
			ca.RedundantCommits, cb.RedundantCommits)
	}
	if ca.DeltaSyncs != 1 || cb.DeltaSyncs != 1 {
		t.Fatalf("one recon exchange counts one delta sync per role: client %+v server %+v", ca, cb)
	}
}

// TestReconDisabledPeerDowngrade: a recon client meeting a server with
// the dialect switched off converges over the patch dialect on the same
// connection — the ack simply does not echo the capability.
func TestReconDisabledPeerDowngrade(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	b.SetReconEnabled(false)
	inc(t, a, 2)
	inc(t, b, 5)
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if av, bv := peek(t, a), peek(t, b); av != 7 || bv != 7 {
		t.Fatalf("a=%d b=%d, want 7", av, bv)
	}
	sa := a.Stats()
	if sa.DeltaSyncs != 1 || sa.Fallbacks != 0 || sa.FullSyncs != 0 {
		t.Fatalf("downgrade must stay a delta sync: %+v", sa)
	}
	if sa.RangesSent != 0 {
		t.Fatalf("no probes may flow to a recon-disabled peer: %+v", sa)
	}
	// And the reverse: a recon-disabled client never advertises the
	// capability, so a recon-capable server stays on the patch dialect.
	c := newCounterNode(t, "c", 3)
	d := newCounterNode(t, "d", 4)
	c.SetReconEnabled(false)
	inc(t, c, 1)
	inc(t, d, 2)
	if err := c.SyncWith(d.Addr()); err != nil {
		t.Fatal(err)
	}
	if sd := d.Stats(); sd.RangesRecv != 0 {
		t.Fatalf("recon-disabled client still triggered %d probes", sd.RangesRecv)
	}
	if sc := c.Stats(); sc.DeltaSyncs != 1 || sc.Fallbacks != 0 {
		t.Fatalf("patch dialect must complete: %+v", sc)
	}
}

// TestReconStaleMemoSpanRefused: a peer that spoke recon once and was
// then switched off refuses the next round's span probe; the client
// clears its memo, retries the session without the span, and the pair
// still converges on the patch dialect.
func TestReconStaleMemoSpanRefused(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	inc(t, a, 1)
	inc(t, b, 2)
	if err := a.SyncWith(b.Addr()); err != nil { // memorizes b as recon-capable
		t.Fatal(err)
	}
	b.SetReconEnabled(false)
	inc(t, a, 4)
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if av, bv := peek(t, a), peek(t, b); av != 7 || bv != 7 {
		t.Fatalf("a=%d b=%d, want 7 after the stale-memo round", av, bv)
	}
	if sa := a.Stats(); sa.Fallbacks != 0 || sa.FullSyncs != 0 {
		t.Fatalf("span refusal must not cascade past the delta dialects: %+v", sa)
	}
	// The memo is gone: the following round opens without a span probe
	// and completes directly on the patch dialect.
	inc(t, a, 1)
	before := a.Stats()
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if after := a.Stats(); after.RangesSent != before.RangesSent {
		t.Fatalf("cleared memo must suppress span probes: %d -> %d", before.RangesSent, after.RangesSent)
	}
}

// TestReconLadderToPlainV2 runs the recon client against the strict
// pre-capability v2 server: the capability hello is refused outright and
// the client lands on the plain delta dialect, not v1.
func TestReconLadderToPlainV2(t *testing.T) {
	addr, st := plainV2Server(t)
	if _, err := st.Apply("v2", counter.Op{Kind: counter.Inc, N: 5}); err != nil {
		t.Fatal(err)
	}
	a := newCounterNode(t, "a", 1)
	inc(t, a, 2)
	if err := a.SyncWith(addr); err != nil {
		t.Fatal(err)
	}
	sa := a.Stats()
	if sa.DeltaSyncs != 1 || sa.FullSyncs != 0 || sa.Fallbacks != 0 {
		t.Fatalf("plain-v2 downgrade stats: %+v", sa)
	}
	if sa.RangesSent != 0 || sa.PatchesSent != 0 {
		t.Fatalf("plain dialect carries neither probes nor patches: %+v", sa)
	}
	if v := read(t, a); v != 7 {
		t.Fatalf("a = %d, want 7", v)
	}
}

// TestReconLadderToLegacyV1 runs the recon client all the way down the
// ladder to the one-shot v1 protocol.
func TestReconLadderToLegacyV1(t *testing.T) {
	addr, legacy := legacyV1Server(t)
	if _, err := legacy.Apply("legacy", counter.Op{Kind: counter.Inc, N: 5}); err != nil {
		t.Fatal(err)
	}
	a := newCounterNode(t, "a", 1)
	inc(t, a, 2)
	if err := a.SyncWith(addr); err != nil {
		t.Fatal(err)
	}
	sa := a.Stats()
	if sa.Fallbacks != 1 || sa.FullSyncs != 1 || sa.DeltaSyncs != 0 {
		t.Fatalf("v1 fallback stats: %+v", sa)
	}
	if v := read(t, a); v != 7 {
		t.Fatalf("a = %d, want 7", v)
	}
}

// TestReconMultiObjectSpan: a converged multi-object pair re-syncs on a
// single span probe — one probe for the whole node, not one per object —
// and per-object counters still tick.
func TestReconMultiObjectSpan(t *testing.T) {
	a, err := replica.NewNode("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := replica.NewNode("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	var objs []*replica.TypedObject[counter.PNState, counter.Op, counter.Val]
	for _, n := range []*replica.Node{a, b} {
		for _, name := range []string{"x", "y", "z"} {
			o, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
				n, name, "pn-counter", counter.PNCounter{}, wire.PNCounter{})
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, o)
		}
	}
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs[:3] { // a's objects
		if _, err := o.Do(counter.Op{Kind: counter.Inc, N: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	before := a.Stats()
	beforeX := a.ObjectStats("x")
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	after := a.Stats()
	if probes := after.RangesSent - before.RangesSent; probes != 1 {
		t.Fatalf("converged 3-object re-sync sent %d probes, want 1 span", probes)
	}
	if moved := commitsMoved(before, after); moved != 0 {
		t.Fatalf("converged re-sync moved %d commits", moved)
	}
	if ax := a.ObjectStats("x"); ax.DeltaSyncs != beforeX.DeltaSyncs+1 {
		t.Fatalf("span match must count one exchange per object: %d -> %d",
			beforeX.DeltaSyncs, ax.DeltaSyncs)
	}
}
