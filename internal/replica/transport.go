package replica

// Transport abstraction: every connection a node makes or accepts goes
// through a Transport, so the same engine runs over real TCP in
// production and over an in-process fault-injection net (internal/
// faultnet) in chaos tests and benchmarks. The default is plain TCP.

import (
	"context"
	"net"
	"time"
)

// Transport is how a node reaches the network: Dial opens a client sync
// connection to a peer address, Listen binds the node's serving
// listener. Implementations must be safe for concurrent use; Dial must
// honour ctx cancellation (node close aborts in-flight dials through
// it).
type Transport interface {
	Dial(ctx context.Context, addr string) (net.Conn, error)
	Listen(addr string) (net.Listener, error)
}

// TCPTransport is the default Transport: plain TCP with a bounded dial.
type TCPTransport struct {
	// DialTimeout bounds one dial attempt; zero selects the package
	// default (10s). Context cancellation still aborts earlier.
	DialTimeout time.Duration
}

// Dial opens a TCP connection to addr.
func (t TCPTransport) Dial(ctx context.Context, addr string) (net.Conn, error) {
	timeout := t.DialTimeout
	if timeout <= 0 {
		timeout = dialTimeout
	}
	d := net.Dialer{Timeout: timeout}
	return d.DialContext(ctx, "tcp", addr)
}

// Listen binds a TCP listener on addr.
func (t TCPTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
