package replica_test

// Daemon integration tests: real nodes, real TCP, the mesh engine
// driving the same sync path SyncWith uses. Cadences are tightened so
// convergence lands in tens of milliseconds; waits are generous so
// loaded CI machines do not flake.

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/counter"
	"repro/internal/replica"
	"repro/internal/wire"
)

// meshOpts is the tight daemon cadence the integration tests run at.
func meshOpts() []replica.NodeOption {
	return []replica.NodeOption{
		replica.WithMeshInterval(25 * time.Millisecond),
		replica.WithMeshJitter(5 * time.Millisecond),
		replica.WithMeshBackoff(10*time.Millisecond, 100*time.Millisecond),
	}
}

// newMeshCounterNode builds a listening counter node with daemon-tuned
// options (plus any extra), without configuring peers yet.
func newMeshCounterNode(t *testing.T, name string, id int, extra ...replica.NodeOption) *counterNode {
	t.Helper()
	n, err := replica.NewNode(name, id, append(meshOpts(), extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		n, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return &counterNode{Node: n, obj: obj}
}

// value reads the counter without committing (Do(Read) would commit and
// kick the daemon, perturbing what the test observes).
func value(t *testing.T, n *counterNode) int64 {
	t.Helper()
	s, err := n.obj.State()
	if err != nil {
		t.Fatal(err)
	}
	return s.P - s.N
}

// waitValue polls until every node's counter reads want.
func waitValue(t *testing.T, want int64, timeout time.Duration, nodes ...*counterNode) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, n := range nodes {
			if value(t, n) != want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range nodes {
		t.Logf("node %s: counter = %d, want %d", n.Name(), value(t, n), want)
	}
	t.Fatalf("nodes did not converge to %d within %v", want, timeout)
}

// TestDaemonConvergesWithoutSyncWith: two nodes peered through the
// daemon converge after commits on both sides, with zero application
// SyncWith calls.
func TestDaemonConvergesWithoutSyncWith(t *testing.T) {
	a := newMeshCounterNode(t, "a", 1)
	b := newMeshCounterNode(t, "b", 2)
	a.AddPeer(b.Addr())
	b.AddPeer(a.Addr())

	inc(t, a, 10)
	inc(t, b, 5)
	waitValue(t, 15, 10*time.Second, a, b)

	st, ok := a.PeerMeshStats(b.Addr())
	if !ok {
		t.Fatal("no mesh stats for b")
	}
	if st.Rounds+st.Pushes == 0 {
		t.Fatalf("converged with zero completed exchanges: %+v", st)
	}
	if st.LastConverged.IsZero() {
		t.Fatal("LastConverged unset after convergence")
	}
}

// TestDaemonRetriesUnreachablePeer: a peer that is down when configured
// is retried with backoff, and the pair converges once it comes up at
// the same address.
func TestDaemonRetriesUnreachablePeer(t *testing.T) {
	// Reserve an address, then free it: the daemon dials a dead port
	// until the peer is brought up on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	a := newMeshCounterNode(t, "a", 1)
	a.AddPeer(addr)
	inc(t, a, 7)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := a.PeerMeshStats(addr)
		if ok && st.Failures >= 2 {
			if st.Backoff <= 0 {
				t.Fatalf("failing peer has no backoff: %+v", st)
			}
			if st.Score >= 1 {
				t.Fatalf("failing peer score not degraded: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never recorded failures for the dead peer: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Bring the peer up on the reserved address; backoff retries find it.
	b, err := replica.NewNode("b", 2, meshOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	bobj, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		b, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	bn := &counterNode{Node: b, obj: bobj}

	waitValue(t, 7, 10*time.Second, bn)
	st, _ := a.PeerMeshStats(addr)
	if st.ConsecutiveFailures != 0 {
		t.Fatalf("recovered peer still failing: %+v", st)
	}
}

// TestDownPeerNeverWedgesClose: a node whose only peer stays down
// closes promptly — the engine drain cancels any in-flight dial.
func TestDownPeerNeverWedgesClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	n, err := replica.NewNode("a", 1, append(meshOpts(), replica.WithPeers(addr))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		n, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the supervisor fail a round or two

	done := make(chan error, 1)
	go func() { done <- n.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on a down peer")
	}
}

// TestManualSyncDuringDaemonRounds: concurrent SyncWith calls while the
// daemon runs its own rounds against the same peers are safe (the race
// detector guards this test) and everything still converges.
func TestManualSyncDuringDaemonRounds(t *testing.T) {
	a := newMeshCounterNode(t, "a", 1)
	b := newMeshCounterNode(t, "b", 2)
	a.AddPeer(b.Addr())
	b.AddPeer(a.Addr())

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				// Overlaps daemon rounds to the same address: the per-peer
				// lock serializes them, never errors.
				if err := a.SyncWith(b.Addr()); err != nil {
					t.Errorf("manual SyncWith during daemon rounds: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			inc(t, a, 1)
			inc(t, b, 1)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	waitValue(t, 40, 10*time.Second, a, b)
}
