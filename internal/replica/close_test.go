package replica_test

import (
	"testing"

	"repro/internal/chat"
	"repro/internal/replica"
	"repro/internal/wire"
)

// TestCloseIdempotent: Close must be safe to call any number of times —
// deferred cleanup plus explicit shutdown is the common pattern — and
// must keep returning the first call's result instead of panicking on
// the closed channel.
func TestCloseIdempotent(t *testing.T) {
	n, err := replica.NewNode("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	first := n.Close()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("second Close panicked: %v", r)
		}
	}()
	if second := n.Close(); second != first {
		t.Fatalf("second Close returned %v, first returned %v", second, first)
	}
	if third := n.Close(); third != first {
		t.Fatalf("third Close returned %v, first returned %v", third, first)
	}
}

// TestCloseIdempotentWithoutListen: a node that never listened must
// close cleanly twice as well.
func TestCloseIdempotentWithoutListen(t *testing.T) {
	n, err := replica.NewNode("y", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Ensure[chat.State, chat.Op, chat.Val](n, "room", "chat", chat.Chat{}, wire.Chat{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
