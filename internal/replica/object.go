package replica

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/recon"
	"repro/internal/store"
)

// Object is the type-erased view of one named replicated object a Node
// hosts: exactly the surface the sync protocol needs, so heterogeneous
// datatypes share one session. Concrete objects are TypedObjects.
type Object interface {
	// Datatype is the registered datatype name; hellos carry it so two
	// nodes never merge states of different types under one object name.
	Datatype() string
	// Frontier summarizes the node's branch for sync negotiation.
	Frontier() (store.Frontier, error)
	// Export returns the branch's full history (legacy v1 transfers).
	Export() ([]store.ExportedCommit, store.Hash, error)
	// ExportSince returns the commits a peer with the given have-set is
	// missing. When packed, commits ship in the patch-bearing wire form
	// (for peers that negotiated wire.CapPatch); otherwise every commit
	// carries its full state.
	ExportSince(have []store.Hash, packed bool) ([]store.ExportedCommit, store.Hash, error)
	// Integrate installs a peer's (possibly partial) history under a
	// tracking branch and pulls it into the node's branch.
	Integrate(track string, commits []store.ExportedCommit, head store.Hash) error
	// IntegrateExact is Integrate for the reconciliation dialect: it
	// additionally reports how many of the shipped commits were already
	// present (redundant re-ships — zero when the negotiation resolved
	// the exact diff), which shipped commits were freshly installed
	// (commits the peer provably holds, excluded from any reply), and
	// which commits the exchange minted locally (merge commits a reply
	// must ship on top of the peer's want list).
	IntegrateExact(track string, commits []store.ExportedCommit, head store.Hash) (redundant int, fresh, minted []store.Hash, err error)
	// Head returns the node branch's current head hash.
	Head() (store.Hash, error)
	// HasCommit reports whether the object's store holds commit h.
	HasCommit(h store.Hash) bool
	// ReconRoot, ReconRange, ReconItems and ReconSelect expose the
	// store's fingerprint tree to the reconciliation protocol: the
	// fingerprint and count of the whole commit set or a hash range
	// [x, y), the range's members, and its k-th member (the split-point
	// oracle of the recursive descent).
	ReconRoot() (recon.Fingerprint, int)
	ReconRange(x, y recon.Item) (recon.Fingerprint, int)
	ReconItems(x, y recon.Item, max int) []recon.Item
	ReconSelect(x, y recon.Item, k int) (recon.Item, bool)
	// ExportSet exports exactly the given commit set (plus the branch
	// head as graft point) — the ship phase after a reconciliation
	// resolved the precise missing commits.
	ExportSet(ship map[store.Hash]bool, packed bool) ([]store.ExportedCommit, store.Hash, error)
	// BeginInstallCapture / EndInstallCapture / ExportSetCapture expose
	// the store's install-capture tokens: a reconciliation session arms
	// a capture before its first probe and exports through it, so
	// commits a concurrent local Apply installs mid-descent still reach
	// the ship set atomically with the exported head (store.Store has
	// the full contract).
	BeginInstallCapture() int
	EndInstallCapture(token int) []store.Hash
	ExportSetCapture(ship map[store.Hash]bool, token int, skip map[store.Hash]bool, packed bool) ([]store.ExportedCommit, store.Hash, error)
	// FlushStorage pushes buffered persistence out and surfaces any
	// sticky storage error; a no-op on in-memory objects.
	FlushStorage() error
}

// TypedObject is one named object with its concrete types intact: a full
// versioned store whose branch named after the node carries the node's
// state. The public peepul package wraps it in a typed handle.
type TypedObject[S, Op, Val any] struct {
	datatype string
	branch   string
	object   string
	node     *Node
	entry    *objectEntry
	st       *store.Store[S, Op, Val]
	log      *disk.Log // nil on in-memory nodes
}

// Ensure returns node n's object named object, creating it if absent.
// An existing object must have been created with the same datatype name
// and the same concrete types; a mismatch is an ErrObject error.
//
// On a durable node (WithStorage), the object's segmented pack log is
// opened (and recovered) from its own subdirectory of the storage
// directory: a fresh directory starts empty and records the datatype in
// the log's metadata; an existing one replays the object's entire
// history — refusing a log written under a different datatype or by a
// node of a different name, so storage mix-ups fail loudly instead of
// merging incompatible states.
func Ensure[S, Op, Val any](n *Node, object, datatype string, impl core.MRDT[S, Op, Val], codec store.Codec[S]) (*TypedObject[S, Op, Val], error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.objects[object]; ok {
		to, ok := e.obj.(*TypedObject[S, Op, Val])
		if !ok || to.datatype != datatype {
			return nil, fmt.Errorf("%w: object %q already open as datatype %s", ErrObject, object, e.obj.Datatype())
		}
		return to, nil
	}
	// Every object is an independent DAG, so objects can share the node's
	// replica-id block: timestamps are only ever compared within one
	// object.
	if n.cfg.storageDir == "" {
		st := store.NewAt(impl, codec, n.name, n.replicaID*64, n.cfg.storeOptions()...)
		to := &TypedObject[S, Op, Val]{datatype: datatype, branch: n.name, object: object, node: n, st: st}
		e := &objectEntry{obj: to, watchers: newWatcherSet()}
		to.entry = e
		n.objects[object] = e
		return to, nil
	}

	// The recovery ladder: open normally (checkpoint seek with lazy
	// state, falling back to segment replay inside disk.Open), and if the
	// recovered index fails store-level validation, reopen once with a
	// forced full replay — the checkpoint may index bytes that a crash
	// damaged behind it, and a full replay truncates at the damage and
	// recovers the clean prefix instead.
	dir := n.cfg.objectDir(object)
	logOpts := n.cfg.logOptions()
	log, rec, err := disk.Open(dir, logOpts...)
	if err != nil {
		return nil, fmt.Errorf("%w: opening storage for %q: %v", ErrObject, object, err)
	}
	st, err := openRecoveredStore(n, log, rec, object, datatype, impl, codec)
	if err != nil && rec.Mode == disk.ModeCheckpoint {
		log.Close()
		log, rec, err = disk.Open(dir, append(append([]disk.Option(nil), logOpts...), disk.WithFullReplay())...)
		if err != nil {
			return nil, fmt.Errorf("%w: opening storage for %q: %v", ErrObject, object, err)
		}
		st, err = openRecoveredStore(n, log, rec, object, datatype, impl, codec)
	}
	if err != nil {
		log.Close()
		return nil, err
	}
	to := &TypedObject[S, Op, Val]{datatype: datatype, branch: n.name, object: object, node: n, st: st, log: log}
	e := &objectEntry{obj: to, log: log, watchers: newWatcherSet()}
	to.entry = e
	n.objects[object] = e
	return to, nil
}

// openRecoveredStore checks the log's datatype guard (stamping it on
// first open) and builds the object's store from the recovered state —
// one rung of Ensure's recovery ladder.
func openRecoveredStore[S, Op, Val any](n *Node, log *disk.Log, rec *disk.Recovered, object, datatype string, impl core.MRDT[S, Op, Val], codec store.Codec[S]) (*store.Store[S, Op, Val], error) {
	if dt, ok := log.Meta("datatype"); ok {
		if dt != datatype {
			return nil, fmt.Errorf("%w: storage for %q holds datatype %s, want %s", ErrObject, object, dt, datatype)
		}
	} else {
		// Record the datatype *before* the store writes its first
		// records, so no crash window can leave a log with history but
		// no type guard. (A meta-less log with recovered branches —
		// pre-guard or damaged — gets the guard stamped now.)
		if err := log.SetMeta("datatype", datatype); err != nil {
			return nil, fmt.Errorf("%w: storage for %q: %v", ErrObject, object, err)
		}
	}
	storeOpts := append(n.cfg.storeOptions(), store.WithPersister(log))
	if n.cfg.verifyOnOpen {
		storeOpts = append(storeOpts, store.WithVerifyOnOpen(true))
	}
	st, err := store.OpenRecovered(impl, codec, n.name, n.replicaID*64, &rec.State, storeOpts...)
	if err != nil {
		return nil, fmt.Errorf("%w: recovering %q: %v", ErrObject, object, err)
	}
	return st, nil
}

// Datatype returns the object's registered datatype name.
func (o *TypedObject[S, Op, Val]) Datatype() string { return o.datatype }

// Branch returns the node branch the object's state lives on.
func (o *TypedObject[S, Op, Val]) Branch() string { return o.branch }

// Store exposes the object's embedded versioned store (read-mostly; the
// node's branch carries its state).
func (o *TypedObject[S, Op, Val]) Store() *store.Store[S, Op, Val] { return o.st }

// Do applies an operation on the node's branch with a fresh timestamp
// and notifies the node's mesh daemon, which pushes the commit to
// interested peers (bursts coalesce into one push). Do takes the node's
// sync freeze: if an exchange is mid-flight, the commit waits for its
// integrate, so the exchange's reply always merges against the head it
// was computed for.
func (o *TypedObject[S, Op, Val]) Do(op Op) (Val, error) {
	o.node.syncMu.Lock()
	v, err := o.st.Apply(o.branch, op)
	o.node.syncMu.Unlock()
	if err == nil {
		o.node.engine.NotifyCommit(o.object)
	}
	return v, err
}

// PullLocal merges local branch src into dst under the node's sync
// freeze, so a pull that lands on the node branch cannot slip inside an
// exchange's export-to-integrate window. A pull that moves the node
// branch notifies the mesh daemon like any other commit.
func (o *TypedObject[S, Op, Val]) PullLocal(dst, src string) error {
	o.node.syncMu.Lock()
	err := o.st.Pull(dst, src)
	o.node.syncMu.Unlock()
	if err == nil && dst == o.branch {
		o.node.engine.NotifyCommit(o.object)
	}
	return err
}

// SyncLocal converges two local branches atomically under the node's
// sync freeze (see PullLocal); involving the node branch notifies the
// mesh daemon.
func (o *TypedObject[S, Op, Val]) SyncLocal(a, b string) error {
	o.node.syncMu.Lock()
	err := o.st.Sync(a, b)
	o.node.syncMu.Unlock()
	if err == nil && (a == o.branch || b == o.branch) {
		o.node.engine.NotifyCommit(o.object)
	}
	return err
}

// Watch returns a channel of this object's remote-merge head moves:
// one event per sync exchange that changed the node branch's head with
// a peer's commits. Local Do calls never produce events. Delivery is
// non-blocking with drop-oldest semantics (buffer of 16): a slow
// consumer sees the newest moves, not the stalest. The channel closes
// when ctx is cancelled or the node closes, and the watcher detaches
// without leaking a goroutine.
func (o *TypedObject[S, Op, Val]) Watch(ctx context.Context) <-chan WatchEvent {
	return o.entry.watchers.add(ctx)
}

// State returns the current state of the node's branch.
func (o *TypedObject[S, Op, Val]) State() (S, error) {
	return o.st.Head(o.branch)
}

// Frontier implements Object.
func (o *TypedObject[S, Op, Val]) Frontier() (store.Frontier, error) {
	return o.st.Frontier(o.branch)
}

// Export implements Object.
func (o *TypedObject[S, Op, Val]) Export() ([]store.ExportedCommit, store.Hash, error) {
	return o.st.Export(o.branch)
}

// ExportSince implements Object.
func (o *TypedObject[S, Op, Val]) ExportSince(have []store.Hash, packed bool) ([]store.ExportedCommit, store.Hash, error) {
	if packed {
		return o.st.ExportSincePacked(o.branch, have)
	}
	return o.st.ExportSince(o.branch, have)
}

// Integrate implements Object. A pull that moves the node branch's head
// fires the object's watchers and re-notifies the mesh daemon: the news
// a merge brought in is itself pushed onward, so commits cascade
// hop-by-hop through ring and mesh topologies instead of waiting out a
// full anti-entropy round per hop. (The cascade terminates: once peers
// converge, re-syncs ship zero commits and move no heads.)
func (o *TypedObject[S, Op, Val]) Integrate(track string, commits []store.ExportedCommit, head store.Hash) error {
	_, _, _, err := o.IntegrateExact(track, commits, head)
	return err
}

// IntegrateExact implements Object. The captured import and pull
// variants separate the two kinds of news an exchange creates — commits
// the peer shipped that were already present (redundant), and commits
// the pull minted locally (merges the peer has never seen) — with each
// record cut inside the store's own critical section, so concurrent
// local Applies can never blur the attribution (their commits land only
// in the session-long capture the reconciliation handlers hold).
func (o *TypedObject[S, Op, Val]) IntegrateExact(track string, commits []store.ExportedCommit, head store.Hash) (int, []store.Hash, []store.Hash, error) {
	before, _ := o.st.HeadHash(o.branch)
	fresh, importErr := o.st.ImportCaptured(track, commits, head)
	if importErr != nil {
		return 0, nil, nil, importErr
	}
	redundant := len(commits) - len(fresh)
	// Even a failing Pull (a storage error, say) may have moved the head
	// before reporting — any movement is real news and must still fan
	// out to watchers and peers.
	minted, pullErr := o.st.PullCaptured(o.branch, track)
	if after, err := o.st.HeadHash(o.branch); err == nil && after != before {
		o.entry.watchers.broadcast(WatchEvent{
			Object: o.object,
			From:   strings.TrimPrefix(track, "remote/"),
			Head:   after,
		})
		o.node.engine.NotifyCommit(o.object)
	}
	return redundant, fresh, minted, pullErr
}

// Head implements Object.
func (o *TypedObject[S, Op, Val]) Head() (store.Hash, error) {
	return o.st.HeadHash(o.branch)
}

// HasCommit implements Object.
func (o *TypedObject[S, Op, Val]) HasCommit(h store.Hash) bool { return o.st.HasCommit(h) }

// ReconRoot implements Object.
func (o *TypedObject[S, Op, Val]) ReconRoot() (recon.Fingerprint, int) { return o.st.ReconRoot() }

// ReconRange implements Object.
func (o *TypedObject[S, Op, Val]) ReconRange(x, y recon.Item) (recon.Fingerprint, int) {
	return o.st.ReconRange(x, y)
}

// ReconItems implements Object.
func (o *TypedObject[S, Op, Val]) ReconItems(x, y recon.Item, max int) []recon.Item {
	return o.st.ReconItems(x, y, max)
}

// ReconSelect implements Object.
func (o *TypedObject[S, Op, Val]) ReconSelect(x, y recon.Item, k int) (recon.Item, bool) {
	return o.st.ReconSelect(x, y, k)
}

// ExportSet implements Object.
func (o *TypedObject[S, Op, Val]) ExportSet(ship map[store.Hash]bool, packed bool) ([]store.ExportedCommit, store.Hash, error) {
	return o.st.ExportSet(o.branch, ship, packed)
}

// BeginInstallCapture implements Object.
func (o *TypedObject[S, Op, Val]) BeginInstallCapture() int { return o.st.BeginInstallCapture() }

// EndInstallCapture implements Object.
func (o *TypedObject[S, Op, Val]) EndInstallCapture(token int) []store.Hash {
	return o.st.EndInstallCapture(token)
}

// ExportSetCapture implements Object.
func (o *TypedObject[S, Op, Val]) ExportSetCapture(ship map[store.Hash]bool, token int, skip map[store.Hash]bool, packed bool) ([]store.ExportedCommit, store.Hash, error) {
	return o.st.ExportSetCapture(o.branch, ship, token, skip, packed)
}

// FlushStorage implements Object.
func (o *TypedObject[S, Op, Val]) FlushStorage() error {
	if o.log == nil {
		return nil
	}
	return o.st.FlushStorage()
}

// StorageStats reports the object's pack-log accounting; ok is false on
// in-memory nodes.
func (o *TypedObject[S, Op, Val]) StorageStats() (disk.Stats, bool) {
	if o.log == nil {
		return disk.Stats{}, false
	}
	return o.log.Stats(), true
}
