package replica

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/store"
)

// Object is the type-erased view of one named replicated object a Node
// hosts: exactly the surface the sync protocol needs, so heterogeneous
// datatypes share one session. Concrete objects are TypedObjects.
type Object interface {
	// Datatype is the registered datatype name; hellos carry it so two
	// nodes never merge states of different types under one object name.
	Datatype() string
	// Frontier summarizes the node's branch for sync negotiation.
	Frontier() (store.Frontier, error)
	// Export returns the branch's full history (legacy v1 transfers).
	Export() ([]store.ExportedCommit, store.Hash, error)
	// ExportSince returns the commits a peer with the given have-set is
	// missing. When packed, commits ship in the patch-bearing wire form
	// (for peers that negotiated wire.CapPatch); otherwise every commit
	// carries its full state.
	ExportSince(have []store.Hash, packed bool) ([]store.ExportedCommit, store.Hash, error)
	// Integrate installs a peer's (possibly partial) history under a
	// tracking branch and pulls it into the node's branch.
	Integrate(track string, commits []store.ExportedCommit, head store.Hash) error
}

// TypedObject is one named object with its concrete types intact: a full
// versioned store whose branch named after the node carries the node's
// state. The public peepul package wraps it in a typed handle.
type TypedObject[S, Op, Val any] struct {
	datatype string
	branch   string
	st       *store.Store[S, Op, Val]
}

// Ensure returns node n's object named object, creating it if absent.
// An existing object must have been created with the same datatype name
// and the same concrete types; a mismatch is an ErrObject error.
func Ensure[S, Op, Val any](n *Node, object, datatype string, impl core.MRDT[S, Op, Val], codec store.Codec[S]) (*TypedObject[S, Op, Val], error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.objects[object]; ok {
		to, ok := e.obj.(*TypedObject[S, Op, Val])
		if !ok || to.datatype != datatype {
			return nil, fmt.Errorf("%w: object %q already open as datatype %s", ErrObject, object, e.obj.Datatype())
		}
		return to, nil
	}
	// Every object is an independent DAG, so objects can share the node's
	// replica-id block: timestamps are only ever compared within one
	// object.
	st := store.NewAt(impl, codec, n.name, n.replicaID*64, n.storeOpts...)
	to := &TypedObject[S, Op, Val]{datatype: datatype, branch: n.name, st: st}
	n.objects[object] = &objectEntry{obj: to}
	return to, nil
}

// Datatype returns the object's registered datatype name.
func (o *TypedObject[S, Op, Val]) Datatype() string { return o.datatype }

// Branch returns the node branch the object's state lives on.
func (o *TypedObject[S, Op, Val]) Branch() string { return o.branch }

// Store exposes the object's embedded versioned store (read-mostly; the
// node's branch carries its state).
func (o *TypedObject[S, Op, Val]) Store() *store.Store[S, Op, Val] { return o.st }

// Do applies an operation on the node's branch with a fresh timestamp.
func (o *TypedObject[S, Op, Val]) Do(op Op) (Val, error) {
	return o.st.Apply(o.branch, op)
}

// State returns the current state of the node's branch.
func (o *TypedObject[S, Op, Val]) State() (S, error) {
	return o.st.Head(o.branch)
}

// Frontier implements Object.
func (o *TypedObject[S, Op, Val]) Frontier() (store.Frontier, error) {
	return o.st.Frontier(o.branch)
}

// Export implements Object.
func (o *TypedObject[S, Op, Val]) Export() ([]store.ExportedCommit, store.Hash, error) {
	return o.st.Export(o.branch)
}

// ExportSince implements Object.
func (o *TypedObject[S, Op, Val]) ExportSince(have []store.Hash, packed bool) ([]store.ExportedCommit, store.Hash, error) {
	if packed {
		return o.st.ExportSincePacked(o.branch, have)
	}
	return o.st.ExportSince(o.branch, have)
}

// Integrate implements Object.
func (o *TypedObject[S, Op, Val]) Integrate(track string, commits []store.ExportedCommit, head store.Hash) error {
	if err := o.st.Import(track, commits, head); err != nil {
		return err
	}
	return o.st.Pull(o.branch, track)
}
