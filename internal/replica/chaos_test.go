package replica_test

// The chaos acceptance gate: a ten-node mesh runs through a seeded
// fault-injection net — 25% connection drops, rolling two-way
// partitions, and one peer whose every byte stream is corrupted — with
// commits landing throughout. After the partitions heal, the nine
// honest nodes must converge to identical heads with VerifyPack-clean
// stores, and the corrupter's supervisor must have quarantined it with
// a recorded reason. Once the corrupter is repaired, the full ten
// converge and the quarantine lifts. The race detector guards the
// whole run in CI.

import (
	"context"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/store"
)

// waitConverged polls until every node reports the same counter value
// AND the same head hash — equal values can coincide while commits are
// still in flight; equal heads cannot.
func waitConverged(t *testing.T, want int64, timeout time.Duration, nodes ...*counterNode) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		var ref store.Hash
		for i, n := range nodes {
			if value(t, n) != want {
				ok = false
				break
			}
			head, err := n.obj.Head()
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = head
			} else if head != ref {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, n := range nodes {
		head, _ := n.obj.Head()
		t.Logf("node %s: counter = %d (want %d), head %v", n.Name(), value(t, n), want, head)
	}
	t.Fatalf("nodes did not converge to identical heads at %d within %v", want, timeout)
}

func TestChaosMeshConvergesAndQuarantinesCorrupter(t *testing.T) {
	fn := faultnet.New(42)
	fn.SetDefaultLink(faultnet.Link{
		DropRate: 0.25,
		Latency:  time.Millisecond,
		Jitter:   time.Millisecond,
	})
	// Every byte stream the corrupter writes — and every stream an
	// honest dialer reads from it — gets bits flipped.
	fn.SetLink("c", faultnet.Any, faultnet.Link{CorruptRate: 0.9})

	names := []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8", "c"}
	nodes := make([]*counterNode, len(names))
	for i, name := range names {
		nodes[i] = newMeshCounterNode(t, name, i+1,
			replica.WithTransport(fn.Transport(name)),
			replica.WithSyncTimeout(300*time.Millisecond),
			replica.WithSessionTimeout(2*time.Second),
			replica.WithMeshQuarantine(2, 100*time.Millisecond, time.Second),
			replica.WithObservability(),
		)
	}
	honest := nodes[:9]
	corrupter := nodes[9]
	// Forensics on failure: the corrupter's flight recorder and its
	// supervisor's (n8 — the node that must quarantine it) say which
	// sessions broke, how they were classified, and when the quarantine
	// moved.
	defer func() {
		if t.Failed() {
			t.Logf("corrupter flight recorder:\n%s", obs.FormatTrace(corrupter.Trace()))
			t.Logf("supervisor (n8) flight recorder:\n%s", obs.FormatTrace(nodes[8].Trace()))
		}
	}()
	// Ring supervision: node i keeps node i+1 in sync, so n8 supervises
	// the corrupter and is the node that must quarantine it.
	for i, n := range nodes {
		n.AddPeer(nodes[(i+1)%len(nodes)].Addr())
	}

	// Rolling partitions: two splits that cut the ring along different
	// axes, with healed holds between, looping for the fault horizon.
	ctx, cancel := context.WithCancel(context.Background())
	steps := []faultnet.Step{
		{Hold: 150 * time.Millisecond, Groups: [][]string{
			{"n0", "n1", "n2", "n3", "n4"}, {"n5", "n6", "n7", "n8", "c"}}},
		{Hold: 100 * time.Millisecond},
		{Hold: 150 * time.Millisecond, Groups: [][]string{
			{"n0", "n2", "n4", "n6", "n8"}, {"n1", "n3", "n5", "n7", "c"}}},
		{Hold: 100 * time.Millisecond},
	}
	scheduleDone := fn.RunSchedule(ctx, steps, true)

	// Commits land on every honest node throughout the fault horizon.
	var total int64
	for round := 0; round < 10; round++ {
		for _, n := range honest {
			inc(t, n, 1)
			total++
		}
		time.Sleep(100 * time.Millisecond)
	}

	// End the horizon: heal partitions and clear the default drops, but
	// the corrupter stays corrupting.
	cancel()
	select {
	case <-scheduleDone:
	case <-time.After(5 * time.Second):
		t.Fatal("partition schedule did not stop")
	}
	fn.SetDefaultLink(faultnet.Link{})

	// Phase 1: the nine honest nodes converge to identical heads despite
	// the corrupter still poisoning its links.
	waitConverged(t, total, 45*time.Second, honest...)
	for _, n := range honest {
		if err := n.obj.Store().VerifyPack(); err != nil {
			t.Fatalf("node %s store corrupt after chaos: %v", n.Name(), err)
		}
	}

	// The corrupter's supervisor has it quarantined, reason recorded.
	supervisor := nodes[8]
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, ok := supervisor.PeerMeshStats(corrupter.Addr())
		if ok && st.Quarantined {
			if st.QuarantineReason == "" {
				t.Fatalf("quarantine recorded no reason: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("corrupter never quarantined: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: repair the corrupter. Its next clean exchange lifts the
	// quarantine and the full ten-node mesh converges, corrupter included.
	fn.SetLink("c", faultnet.Any, faultnet.Link{})
	inc(t, corrupter, 5)
	total += 5
	waitConverged(t, total, 45*time.Second, nodes...)
	for _, n := range nodes {
		if err := n.obj.Store().VerifyPack(); err != nil {
			t.Fatalf("node %s store corrupt after heal: %v", n.Name(), err)
		}
	}
	// The supervisor lifts the quarantine on its next clean exchange —
	// which waits out the quarantine backoff, so convergence (via the
	// corrupter's own dials) can land first.
	deadline = time.Now().Add(30 * time.Second)
	for {
		st, ok := supervisor.PeerMeshStats(corrupter.Addr())
		if ok && !st.Quarantined {
			if st.QuarantineReason == "" {
				t.Fatalf("recovery erased the quarantine record: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quarantine not lifted by a clean exchange: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
