package replica

// Failure classification: the mesh supervisor treats a peer that is
// merely unreachable very differently from one that breaks the
// protocol. This file is the taxonomy — the replica layer knows which
// error values mean what, the engine only consumes the class.

import (
	"context"
	"errors"
	"io"
	"net"

	"repro/internal/mesh"
	"repro/internal/store"
	"repro/internal/wire"
)

// classifyFailure maps one sync-exchange error to the mesh engine's
// failure taxonomy. Transport trouble — refused or timed-out dials,
// resets, cut connections, deadlines — is transient: the peer is down
// or the network is flaky, and the ordinary exponential backoff is the
// right schedule. Protocol violations — corrupt frames, malformed
// payloads, bad hellos, hash or canonicality failures on import — mean
// the bytes arrived and were wrong: the peer (or the path to it) is
// hostile or broken, and earns quarantine. Network causes are checked
// first because a framing error wrapping ECONNRESET is a cut wire, not
// a hostile peer.
func classifyFailure(err error) mesh.FailureClass {
	if err == nil || isNetworkCause(err) {
		return mesh.FailTransient
	}
	switch {
	case errors.Is(err, ErrPeerBusy), errors.Is(err, errFallback):
		return mesh.FailTransient
	case errors.Is(err, ErrProtocol),
		errors.Is(err, wire.ErrFraming),
		errors.Is(err, wire.ErrMalformed),
		errors.Is(err, store.ErrBadImport),
		errors.Is(err, store.ErrCorruptPack):
		return mesh.FailViolation
	}
	return mesh.FailTransient
}

// isNetworkCause reports whether err's chain contains a transport-level
// cause: a net.Error (timeouts, resets, refused dials — all *net.OpError
// values, and os.ErrDeadlineExceeded), a closed connection, a plain or
// mid-stream EOF, or a cancelled context.
func isNetworkCause(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
