package replica_test

import (
	"fmt"
	"slices"
	"sync"
	"testing"

	"repro/internal/counter"
	"repro/internal/lwwreg"
	"repro/internal/mlog"
	"repro/internal/orset"
	"repro/internal/queue"
	"repro/internal/replica"
	"repro/internal/wire"
)

// counterNode is a node hosting a single PN-counter object — the
// single-object shape most protocol tests use.
type counterNode struct {
	*replica.Node
	obj *replica.TypedObject[counter.PNState, counter.Op, counter.Val]
}

func newCounterNode(t *testing.T, name string, id int) *counterNode {
	t.Helper()
	n, err := replica.NewNode(name, id)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		n, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return &counterNode{Node: n, obj: obj}
}

func inc(t *testing.T, n *counterNode, amount int64) {
	t.Helper()
	if _, err := n.obj.Do(counter.Op{Kind: counter.Inc, N: amount}); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, n *counterNode) int64 {
	t.Helper()
	v, err := n.obj.Do(counter.Op{Kind: counter.Read})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTwoNodesConverge(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	inc(t, a, 10)
	inc(t, b, 5)
	if _, err := b.obj.Do(counter.Op{Kind: counter.Dec, N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if av, bv := read(t, a), read(t, b); av != 13 || bv != 13 {
		t.Fatalf("a=%d b=%d, want 13", av, bv)
	}
}

func TestRepeatedRounds(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	total := int64(0)
	for round := 0; round < 5; round++ {
		inc(t, a, 1)
		inc(t, b, 2)
		total += 3
		if err := a.SyncWith(b.Addr()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if av := read(t, a); av != total {
			t.Fatalf("round %d: a=%d, want %d", round, av, total)
		}
		if bv := read(t, b); bv != total {
			t.Fatalf("round %d: b=%d, want %d", round, bv, total)
		}
	}
}

// TestRingGossipConverges is the test that motivated shipping commit DAGs
// instead of bare states: with per-pair merge bases, history arriving
// indirectly (eu's updates reaching eu again via us and ap) is
// double-counted; with the DAG, the store's LCA sees through third
// parties and the ring converges exactly.
func TestRingGossipConverges(t *testing.T) {
	eu := newCounterNode(t, "eu", 1)
	us := newCounterNode(t, "us", 2)
	ap := newCounterNode(t, "ap", 3)
	inc(t, eu, 1)
	inc(t, us, 10)
	inc(t, ap, 100)
	for round := 0; round < 3; round++ {
		if err := eu.SyncWith(us.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := us.SyncWith(ap.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := ap.SyncWith(eu.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []*counterNode{eu, us, ap} {
		if v := read(t, n); v != 111 {
			t.Fatalf("%s = %d, want 111 (no double counting around the ring)", n.Name(), v)
		}
	}
}

func TestORSetAddWinsOverTheWire(t *testing.T) {
	type orsetNode struct {
		*replica.Node
		obj *replica.TypedObject[orset.SpaceState, orset.Op, orset.Val]
	}
	mk := func(name string, id int) *orsetNode {
		n, err := replica.NewNode(name, id)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := replica.Ensure[orset.SpaceState, orset.Op, orset.Val](
			n, "cart", "or-set-space", orset.OrSetSpace{}, wire.OrSetSpace{})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return &orsetNode{Node: n, obj: obj}
	}
	phone := mk("phone", 1)
	laptop := mk("laptop", 2)
	phone.obj.Do(orset.Op{Kind: orset.Add, E: 7})
	if err := phone.SyncWith(laptop.Addr()); err != nil {
		t.Fatal(err)
	}
	// Concurrent: laptop removes, phone re-adds.
	laptop.obj.Do(orset.Op{Kind: orset.Remove, E: 7})
	phone.obj.Do(orset.Op{Kind: orset.Add, E: 7})
	if err := phone.SyncWith(laptop.Addr()); err != nil {
		t.Fatal(err)
	}
	if v, _ := phone.obj.Do(orset.Op{Kind: orset.Lookup, E: 7}); !v.Found {
		t.Fatal("phone: add must win")
	}
	if v, _ := laptop.obj.Do(orset.Op{Kind: orset.Lookup, E: 7}); !v.Found {
		t.Fatal("laptop: add must win")
	}
}

func TestQueueWorkersOverTheWire(t *testing.T) {
	type queueNode struct {
		*replica.Node
		obj *replica.TypedObject[queue.State, queue.Op, queue.Val]
	}
	mk := func(name string, id int) *queueNode {
		n, err := replica.NewNode(name, id)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := replica.Ensure[queue.State, queue.Op, queue.Val](
			n, "jobs", "functional-queue", queue.Queue{}, wire.Queue{})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return &queueNode{Node: n, obj: obj}
	}
	producer := mk("producer", 1)
	worker := mk("worker", 2)
	for i := int64(1); i <= 4; i++ {
		producer.obj.Do(queue.Op{Kind: queue.Enqueue, V: i})
	}
	if err := worker.SyncWith(producer.Addr()); err != nil {
		t.Fatal(err)
	}
	// Both consume the head concurrently: at-least-once.
	v1, _ := producer.obj.Do(queue.Op{Kind: queue.Dequeue})
	v2, _ := worker.obj.Do(queue.Op{Kind: queue.Dequeue})
	if !v1.OK || !v2.OK || v1.V != 1 || v2.V != 1 {
		t.Fatalf("heads: %+v %+v", v1, v2)
	}
	if err := worker.SyncWith(producer.Addr()); err != nil {
		t.Fatal(err)
	}
	st, err := worker.obj.State()
	if err != nil {
		t.Fatal(err)
	}
	var remaining []int64
	for _, p := range st.ToSlice() {
		remaining = append(remaining, p.V)
	}
	if !slices.Equal(remaining, []int64{2, 3, 4}) {
		t.Fatalf("remaining = %v, want [2 3 4]", remaining)
	}
}

func TestManyNodesStarTopology(t *testing.T) {
	const spokes = 4
	hub := newCounterNode(t, "hub", 100)
	var nodes []*counterNode
	for i := 0; i < spokes; i++ {
		nodes = append(nodes, newCounterNode(t, fmt.Sprintf("spoke%d", i), i+1))
	}
	var want int64
	for i, n := range nodes {
		inc(t, n, int64(i+1))
		want += int64(i + 1)
	}
	// Two gossip rounds through the hub spread everything everywhere.
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			if err := n.SyncWith(hub.Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if hv := read(t, hub); hv != want {
		t.Fatalf("hub = %d, want %d", hv, want)
	}
	for i, n := range nodes {
		if v := read(t, n); v != want {
			t.Fatalf("spoke%d = %d, want %d", i, v, want)
		}
	}
}

func TestConcurrentOpsDuringGossip(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			inc(t, a, 1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			inc(t, b, 1)
		}
	}()
	for i := 0; i < 10; i++ {
		if err := a.SyncWith(b.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if v := read(t, a); v != 100 {
		t.Fatalf("converged = %d, want 100", v)
	}
	if v := read(t, b); v != 100 {
		t.Fatalf("converged = %d, want 100", v)
	}
}

// TestMultiObjectSession syncs two differently-typed named objects over a
// single connection and checks per-object frontier negotiation: a
// re-sync of the converged pair ships zero commits for each object.
func TestMultiObjectSession(t *testing.T) {
	mk := func(name string, id int) (*replica.Node,
		*replica.TypedObject[counter.PNState, counter.Op, counter.Val],
		*replica.TypedObject[mlog.State, mlog.Op, mlog.Val]) {
		n, err := replica.NewNode(name, id)
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
			n, "hits", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
		if err != nil {
			t.Fatal(err)
		}
		feed, err := replica.Ensure[mlog.State, mlog.Op, mlog.Val](
			n, "feed", "mergeable-log", mlog.Log{}, wire.MLog{})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n, cnt, feed
	}
	a, aCnt, aFeed := mk("a", 1)
	b, bCnt, bFeed := mk("b", 2)

	aCnt.Do(counter.Op{Kind: counter.Inc, N: 7})
	bCnt.Do(counter.Op{Kind: counter.Inc, N: 5})
	aFeed.Do(mlog.Op{Kind: mlog.Append, Msg: "from-a"})
	bFeed.Do(mlog.Op{Kind: mlog.Append, Msg: "from-b"})

	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, cnt := range []*replica.TypedObject[counter.PNState, counter.Op, counter.Val]{aCnt, bCnt} {
		s, err := cnt.State()
		if err != nil {
			t.Fatal(err)
		}
		if got := s.P - s.N; got != 12 {
			t.Fatalf("counter = %d, want 12", got)
		}
	}
	for _, feed := range []*replica.TypedObject[mlog.State, mlog.Op, mlog.Val]{aFeed, bFeed} {
		s, err := feed.State()
		if err != nil {
			t.Fatal(err)
		}
		if len(s) != 2 {
			t.Fatalf("feed has %d entries, want 2", len(s))
		}
	}

	// Converged: a re-sync ships zero commits per object, on both sides.
	before := map[string][2]replica.SyncStats{
		"hits": {a.ObjectStats("hits"), b.ObjectStats("hits")},
		"feed": {a.ObjectStats("feed"), b.ObjectStats("feed")},
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	for object, prev := range before {
		for i, n := range []*replica.Node{a, b} {
			after := n.ObjectStats(object)
			moved := (after.CommitsSent - prev[i].CommitsSent) + (after.CommitsRecv - prev[i].CommitsRecv)
			if moved != 0 {
				t.Fatalf("%s re-sync moved %d commits on %s, want 0", object, moved, n.Name())
			}
			if after.DeltaSyncs != prev[i].DeltaSyncs+1 {
				t.Fatalf("%s on %s: delta syncs %d -> %d, want one more",
					object, n.Name(), prev[i].DeltaSyncs, after.DeltaSyncs)
			}
		}
	}
}

// TestPartialObjectOverlap syncs nodes whose object sets only partially
// overlap: shared objects converge, unshared ones are skipped and
// counted as misses, and the session survives the miss.
func TestPartialObjectOverlap(t *testing.T) {
	a, err := replica.NewNode("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := replica.NewNode("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	aCnt, _ := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		a, "shared", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	if _, err := replica.Ensure[mlog.State, mlog.Op, mlog.Val](
		a, "a-only", "mergeable-log", mlog.Log{}, wire.MLog{}); err != nil {
		t.Fatal(err)
	}
	bCnt, _ := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		b, "shared", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	aCnt.Do(counter.Op{Kind: counter.Inc, N: 3})
	bCnt.Do(counter.Op{Kind: counter.Inc, N: 4})
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	s, _ := aCnt.State()
	if got := s.P - s.N; got != 7 {
		t.Fatalf("shared counter = %d, want 7", got)
	}
	if st := a.Stats(); st.Misses != 1 {
		t.Fatalf("client misses = %d, want 1", st.Misses)
	}
	if st := a.ObjectStats("a-only"); st.Misses != 1 || st.CommitsSent != 0 {
		t.Fatalf("a-only object stats: %+v", st)
	}
	if st := a.ObjectStats("shared"); st.DeltaSyncs != 1 {
		t.Fatalf("shared object stats: %+v", st)
	}
}

// TestDatatypeMismatchIsMiss: the same object name registered under
// different datatypes must not merge; the hello is answered with a miss.
func TestDatatypeMismatchIsMiss(t *testing.T) {
	a, _ := replica.NewNode("a", 1)
	b, _ := replica.NewNode("b", 2)
	t.Cleanup(func() { a.Close(); b.Close() })
	aObj, _ := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		a, "thing", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	replica.Ensure[mlog.State, mlog.Op, mlog.Val](
		b, "thing", "mergeable-log", mlog.Log{}, wire.MLog{})
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	aObj.Do(counter.Op{Kind: counter.Inc, N: 1})
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Misses != 1 || st.DeltaSyncs != 0 {
		t.Fatalf("mismatched datatype must miss, got %+v", st)
	}
}

// TestEnsureRejectsMismatch: re-opening an object under another datatype
// or concrete type fails instead of corrupting the store.
func TestEnsureRejectsMismatch(t *testing.T) {
	n, _ := replica.NewNode("x", 1)
	defer n.Close()
	if _, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		n, "obj", "pn-counter", counter.PNCounter{}, wire.PNCounter{}); err != nil {
		t.Fatal(err)
	}
	// Same name and types: idempotent.
	if _, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		n, "obj", "pn-counter", counter.PNCounter{}, wire.PNCounter{}); err != nil {
		t.Fatal(err)
	}
	// Same name, different datatype: refused.
	if _, err := replica.Ensure[mlog.State, mlog.Op, mlog.Val](
		n, "obj", "mergeable-log", mlog.Log{}, wire.MLog{}); err == nil {
		t.Fatal("mismatched Ensure must fail")
	}
}

// TestFullSyncAgainstMultiObjectServer: a single-object client forced
// onto the v1 full protocol must still sync with a server hosting
// several objects — the named request form resolves the object.
func TestFullSyncAgainstMultiObjectServer(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b, err := replica.NewNode("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	bCnt, _ := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		b, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	if _, err := replica.Ensure[mlog.State, mlog.Op, mlog.Val](
		b, "extra", "mergeable-log", mlog.Log{}, wire.MLog{}); err != nil {
		t.Fatal(err)
	}
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	inc(t, a, 2)
	bCnt.Do(counter.Op{Kind: counter.Inc, N: 3})
	a.SetFullSyncOnly(true)
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if v := peek(t, a); v != 5 {
		t.Fatalf("a = %d, want 5", v)
	}
	if st := a.Stats(); st.FullSyncs != 1 {
		t.Fatalf("expected one full sync, got %+v", st)
	}
}

// TestFullSyncRejectsDatatypeMismatch: the named v1 request carries the
// datatype, so byte-compatible states of different types are refused
// instead of merged into garbage — and the legacy two-field retry must
// not bypass the check.
func TestFullSyncRejectsDatatypeMismatch(t *testing.T) {
	a, _ := replica.NewNode("a", 1)
	b, _ := replica.NewNode("b", 2)
	t.Cleanup(func() { a.Close(); b.Close() })
	// pn-counter and lww-register states are both 16 bytes: a decode
	// succeeds, only the datatype name tells them apart.
	aObj, _ := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		a, "x", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	bObj, _ := replica.Ensure[lwwreg.State, lwwreg.Op, lwwreg.Val](
		b, "x", "lww-register", lwwreg.Reg{}, wire.LWWReg{})
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	aObj.Do(counter.Op{Kind: counter.Inc, N: 9})
	bObj.Do(lwwreg.Op{Kind: lwwreg.Write, V: 4})
	a.SetFullSyncOnly(true)
	if err := a.SyncWith(b.Addr()); err == nil {
		t.Fatal("full sync across datatypes must fail")
	}
	s, err := bObj.State()
	if err != nil {
		t.Fatal(err)
	}
	if s.V != 4 {
		t.Fatalf("server register corrupted: %+v", s)
	}
}

func TestSyncWithUnreachablePeer(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	if err := a.SyncWith("127.0.0.1:1"); err == nil {
		t.Fatal("dial to unreachable peer must fail")
	}
}

func TestNewNodeValidatesID(t *testing.T) {
	if _, err := replica.NewNode("x", -1); err == nil {
		t.Fatal("negative replica id accepted")
	}
	if _, err := replica.NewNode("x", replica.MaxReplicaID+1); err == nil {
		t.Fatal("oversized replica id accepted")
	}
}

func TestNodeAccessors(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	if a.Name() != "a" {
		t.Fatal("Name")
	}
	if a.Addr() == "" {
		t.Fatal("Addr must be set after Listen")
	}
	if a.obj.Store() == nil {
		t.Fatal("Store accessor")
	}
	if got := a.Objects(); !slices.Equal(got, []string{"counter"}) {
		t.Fatalf("Objects = %v", got)
	}
	if _, ok := a.Object("counter"); !ok {
		t.Fatal("Object lookup")
	}
	if _, ok := a.Object("ghost"); ok {
		t.Fatal("ghost object must not resolve")
	}
	n, _ := replica.NewNode("x", 9)
	if n.Addr() != "" {
		t.Fatal("Addr before Listen must be empty")
	}
	n.Close()
}
