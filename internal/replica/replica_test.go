package replica_test

import (
	"fmt"
	"slices"
	"sync"
	"testing"

	"repro/internal/counter"
	"repro/internal/orset"
	"repro/internal/queue"
	"repro/internal/replica"
	"repro/internal/wire"
)

type counterNode = replica.Node[counter.PNState, counter.Op, counter.Val]

func newCounterNode(t *testing.T, name string, id int) *counterNode {
	t.Helper()
	n, err := replica.NewNode[counter.PNState, counter.Op, counter.Val](name, id, counter.PNCounter{}, wire.PNCounter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func inc(t *testing.T, n *counterNode, amount int64) {
	t.Helper()
	if _, err := n.Do(counter.Op{Kind: counter.Inc, N: amount}); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, n *counterNode) int64 {
	t.Helper()
	v, err := n.Do(counter.Op{Kind: counter.Read})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTwoNodesConverge(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	inc(t, a, 10)
	inc(t, b, 5)
	if _, err := b.Do(counter.Op{Kind: counter.Dec, N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if av, bv := read(t, a), read(t, b); av != 13 || bv != 13 {
		t.Fatalf("a=%d b=%d, want 13", av, bv)
	}
}

func TestRepeatedRounds(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	total := int64(0)
	for round := 0; round < 5; round++ {
		inc(t, a, 1)
		inc(t, b, 2)
		total += 3
		if err := a.SyncWith(b.Addr()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if av := read(t, a); av != total {
			t.Fatalf("round %d: a=%d, want %d", round, av, total)
		}
		if bv := read(t, b); bv != total {
			t.Fatalf("round %d: b=%d, want %d", round, bv, total)
		}
	}
}

// TestRingGossipConverges is the test that motivated shipping commit DAGs
// instead of bare states: with per-pair merge bases, history arriving
// indirectly (eu's updates reaching eu again via us and ap) is
// double-counted; with the DAG, the store's LCA sees through third
// parties and the ring converges exactly.
func TestRingGossipConverges(t *testing.T) {
	eu := newCounterNode(t, "eu", 1)
	us := newCounterNode(t, "us", 2)
	ap := newCounterNode(t, "ap", 3)
	inc(t, eu, 1)
	inc(t, us, 10)
	inc(t, ap, 100)
	for round := 0; round < 3; round++ {
		if err := eu.SyncWith(us.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := us.SyncWith(ap.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := ap.SyncWith(eu.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []*counterNode{eu, us, ap} {
		if v := read(t, n); v != 111 {
			t.Fatalf("%s = %d, want 111 (no double counting around the ring)", n.Name(), v)
		}
	}
}

func TestORSetAddWinsOverTheWire(t *testing.T) {
	mk := func(name string, id int) *replica.Node[orset.SpaceState, orset.Op, orset.Val] {
		n, err := replica.NewNode[orset.SpaceState, orset.Op, orset.Val](name, id, orset.OrSetSpace{}, wire.OrSetSpace{})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	phone := mk("phone", 1)
	laptop := mk("laptop", 2)
	phone.Do(orset.Op{Kind: orset.Add, E: 7})
	if err := phone.SyncWith(laptop.Addr()); err != nil {
		t.Fatal(err)
	}
	// Concurrent: laptop removes, phone re-adds.
	laptop.Do(orset.Op{Kind: orset.Remove, E: 7})
	phone.Do(orset.Op{Kind: orset.Add, E: 7})
	if err := phone.SyncWith(laptop.Addr()); err != nil {
		t.Fatal(err)
	}
	if v, _ := phone.Do(orset.Op{Kind: orset.Lookup, E: 7}); !v.Found {
		t.Fatal("phone: add must win")
	}
	if v, _ := laptop.Do(orset.Op{Kind: orset.Lookup, E: 7}); !v.Found {
		t.Fatal("laptop: add must win")
	}
}

func TestQueueWorkersOverTheWire(t *testing.T) {
	mk := func(name string, id int) *replica.Node[queue.State, queue.Op, queue.Val] {
		n, err := replica.NewNode[queue.State, queue.Op, queue.Val](name, id, queue.Queue{}, wire.Queue{})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	producer := mk("producer", 1)
	worker := mk("worker", 2)
	for i := int64(1); i <= 4; i++ {
		producer.Do(queue.Op{Kind: queue.Enqueue, V: i})
	}
	if err := worker.SyncWith(producer.Addr()); err != nil {
		t.Fatal(err)
	}
	// Both consume the head concurrently: at-least-once.
	v1, _ := producer.Do(queue.Op{Kind: queue.Dequeue})
	v2, _ := worker.Do(queue.Op{Kind: queue.Dequeue})
	if !v1.OK || !v2.OK || v1.V != 1 || v2.V != 1 {
		t.Fatalf("heads: %+v %+v", v1, v2)
	}
	if err := worker.SyncWith(producer.Addr()); err != nil {
		t.Fatal(err)
	}
	st, err := worker.State()
	if err != nil {
		t.Fatal(err)
	}
	var remaining []int64
	for _, p := range st.ToSlice() {
		remaining = append(remaining, p.V)
	}
	if !slices.Equal(remaining, []int64{2, 3, 4}) {
		t.Fatalf("remaining = %v, want [2 3 4]", remaining)
	}
}

func TestManyNodesStarTopology(t *testing.T) {
	const spokes = 4
	hub := newCounterNode(t, "hub", 100)
	var nodes []*counterNode
	for i := 0; i < spokes; i++ {
		nodes = append(nodes, newCounterNode(t, fmt.Sprintf("spoke%d", i), i+1))
	}
	var want int64
	for i, n := range nodes {
		inc(t, n, int64(i+1))
		want += int64(i + 1)
	}
	// Two gossip rounds through the hub spread everything everywhere.
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			if err := n.SyncWith(hub.Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if hv := read(t, hub); hv != want {
		t.Fatalf("hub = %d, want %d", hv, want)
	}
	for i, n := range nodes {
		if v := read(t, n); v != want {
			t.Fatalf("spoke%d = %d, want %d", i, v, want)
		}
	}
}

func TestConcurrentOpsDuringGossip(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			inc(t, a, 1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			inc(t, b, 1)
		}
	}()
	for i := 0; i < 10; i++ {
		if err := a.SyncWith(b.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if v := read(t, a); v != 100 {
		t.Fatalf("converged = %d, want 100", v)
	}
	if v := read(t, b); v != 100 {
		t.Fatalf("converged = %d, want 100", v)
	}
}

func TestSyncWithUnreachablePeer(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	if err := a.SyncWith("127.0.0.1:1"); err == nil {
		t.Fatal("dial to unreachable peer must fail")
	}
}

func TestNewNodeValidatesID(t *testing.T) {
	if _, err := replica.NewNode[counter.PNState, counter.Op, counter.Val]("x", -1, counter.PNCounter{}, wire.PNCounter{}); err == nil {
		t.Fatal("negative replica id accepted")
	}
	if _, err := replica.NewNode[counter.PNState, counter.Op, counter.Val]("x", replica.MaxReplicaID+1, counter.PNCounter{}, wire.PNCounter{}); err == nil {
		t.Fatal("oversized replica id accepted")
	}
}

func TestNodeAccessors(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	if a.Name() != "a" {
		t.Fatal("Name")
	}
	if a.Addr() == "" {
		t.Fatal("Addr must be set after Listen")
	}
	if a.Store() == nil {
		t.Fatal("Store accessor")
	}
	n, _ := replica.NewNode[counter.PNState, counter.Op, counter.Val]("x", 9, counter.PNCounter{}, wire.PNCounter{})
	if n.Addr() != "" {
		t.Fatal("Addr before Listen must be empty")
	}
	n.Close()
}
