package replica_test

// Observability tests: the negotiation-ladder tier counters partition
// the session stats truthfully, the Stats/Trace/Snapshot surfaces stay
// race-free under peer churn, and the live debug endpoint serves
// parseable metrics and a round-trippable snapshot, then shuts down
// with the node without leaking its goroutines.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/counter"
	"repro/internal/replica"
	"repro/internal/wire"
)

// newObsCounterNode is newCounterNode with construction options.
func newObsCounterNode(t *testing.T, name string, id int, opts ...replica.NodeOption) *counterNode {
	t.Helper()
	n, err := replica.NewNode(name, id, opts...)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		n, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return &counterNode{Node: n, obj: obj}
}

// tiersOf extracts the four ladder-tier counters for assertion messages.
func tiersOf(s replica.SyncStats) [4]int64 {
	return [4]int64{s.ReconSessions, s.PackedSessions, s.PlainSessions, s.V1Sessions}
}

// checkTierPartition: the first three tiers partition DeltaSyncs and v1
// mirrors FullSyncs — on every node, always.
func checkTierPartition(t *testing.T, n *counterNode) {
	t.Helper()
	s := n.Stats()
	if got := s.ReconSessions + s.PackedSessions + s.PlainSessions; got != s.DeltaSyncs {
		t.Fatalf("%s: tier counters %v sum to %d, want DeltaSyncs %d",
			n.Name(), tiersOf(s), got, s.DeltaSyncs)
	}
	if s.V1Sessions != s.FullSyncs {
		t.Fatalf("%s: V1Sessions %d != FullSyncs %d", n.Name(), s.V1Sessions, s.FullSyncs)
	}
}

// TestTierCountersRecon: a default pairing lands on the reconciliation
// tier and counts nothing anywhere else.
func TestTierCountersRecon(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	inc(t, a, 5)
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*counterNode{a, b} {
		s := n.Stats()
		if s.ReconSessions == 0 || s.PackedSessions != 0 || s.PlainSessions != 0 || s.V1Sessions != 0 {
			t.Fatalf("%s: tiers %v, want only recon sessions", n.Name(), tiersOf(s))
		}
		checkTierPartition(t, n)
	}
}

// TestTierCountersReconDisabledPeer is the ladder regression pin: a
// peer with reconciliation switched off must drag the pairing down to
// exactly the packed-v2 tier — no recon sessions, no plain fallback.
func TestTierCountersReconDisabledPeer(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	b.SetReconEnabled(false)
	inc(t, a, 3)
	inc(t, b, 4)
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*counterNode{a, b} {
		s := n.Stats()
		if s.PackedSessions == 0 {
			t.Fatalf("%s: no packed sessions counted, tiers %v", n.Name(), tiersOf(s))
		}
		if s.ReconSessions != 0 || s.PlainSessions != 0 || s.V1Sessions != 0 {
			t.Fatalf("%s: recon-disabled pairing leaked onto other tiers: %v", n.Name(), tiersOf(s))
		}
		checkTierPartition(t, n)
	}
}

// TestTierCountersV1: the legacy protocol counts on the v1 tier, and
// the tier also lands in the session-outcome metric when observability
// is on.
func TestTierCountersV1(t *testing.T) {
	a := newObsCounterNode(t, "a", 1, replica.WithObservability())
	b := newCounterNode(t, "b", 2)
	a.SetFullSyncOnly(true)
	inc(t, a, 2)
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.V1Sessions == 0 || s.DeltaSyncs != 0 {
		t.Fatalf("full-sync-only client: tiers %v, DeltaSyncs %d; want only v1", tiersOf(s), s.DeltaSyncs)
	}
	checkTierPartition(t, a)
	checkTierPartition(t, b)
	found := false
	for _, m := range a.Registry().Snapshot() {
		if m.Name == "peepul_replica_sessions_total" &&
			m.Labels["tier"] == "v1" && m.Labels["outcome"] == "ok" && m.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("registry holds no ok v1 session sample")
	}
}

// TestStatsSurfacesRaceFree hammers every read surface — Stats,
// MeshStats, DebugSnapshot, Trace, the registry snapshot and the
// Prometheus writer — while peers churn through AddPeer/RemovePeer and
// sync traffic flows. It asserts nothing beyond "no race, no panic";
// the race detector is the assertion.
func TestStatsSurfacesRaceFree(t *testing.T) {
	a := newObsCounterNode(t, "a", 1, replica.WithObservability(),
		replica.WithMeshInterval(5*time.Millisecond), replica.WithMeshJitter(time.Millisecond))
	b := newCounterNode(t, "b", 2)
	c := newCounterNode(t, "c", 3)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	work := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	work(func() { // peer churn
		a.AddPeer(b.Addr())
		time.Sleep(2 * time.Millisecond)
		a.RemovePeer(b.Addr())
	})
	work(func() { // manual sync traffic + commits
		inc(t, a, 1)
		_ = a.SyncWith(c.Addr())
	})
	work(func() { // every read surface at once
		_ = a.Stats()
		_ = a.MeshStats()
		_ = a.DebugSnapshot()
		_ = a.Trace()
		_ = a.Registry().Snapshot()
		_ = a.Registry().WriteProm(io.Discard)
	})
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	checkTierPartition(t, a)
}

// expositionLine is the grammar every non-comment /metrics line must
// match: name{labels} value.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?\d+$`)

// TestDebugEndpoint drives the full HTTP surface of WithDebugAddr:
// /healthz answers, /metrics parses line by line and carries live
// session counters, the snapshot JSON round-trips through its typed
// struct, the trace renders as text — and closing the node tears the
// server down without leaking its goroutines.
func TestDebugEndpoint(t *testing.T) {
	baseline := runtime.NumGoroutine()
	a := newObsCounterNode(t, "a", 1, replica.WithDebugAddr("127.0.0.1:0"))
	b := newCounterNode(t, "b", 2)
	inc(t, a, 7)
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) string {
		t.Helper()
		resp, err := client.Get("http://" + a.DebugAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}

	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("healthz: %q", got)
	}

	metrics := get("/metrics")
	sc := bufio.NewScanner(strings.NewReader(metrics))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
	if !strings.Contains(metrics, `peepul_replica_sessions_total{role="client",tier="recon",outcome="ok"}`) {
		t.Fatalf("scrape is missing the client session counter:\n%s", metrics)
	}

	var snap replica.DebugSnapshot
	if err := json.Unmarshal([]byte(get("/debug/peepul/snapshot")), &snap); err != nil {
		t.Fatalf("snapshot does not decode: %v", err)
	}
	if snap.Node != "a" || snap.Stats.DeltaSyncs == 0 || len(snap.Metrics) == 0 || len(snap.Spans) == 0 {
		t.Fatalf("snapshot incomplete: node=%q delta=%d metrics=%d spans=%d",
			snap.Node, snap.Stats.DeltaSyncs, len(snap.Metrics), len(snap.Spans))
	}
	if o, ok := snap.Objects["counter"]; !ok || o.Commits == 0 || o.Datatype != "pn-counter" {
		t.Fatalf("snapshot object row wrong: %+v (present %v)", o, ok)
	}
	reencoded, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var again replica.DebugSnapshot
	if err := json.Unmarshal(reencoded, &again); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, again) {
		t.Fatal("snapshot does not round-trip through its JSON encoding")
	}

	trace := get("/debug/peepul/trace?format=text")
	if !strings.Contains(trace, "client") || !strings.Contains(trace, "recon") {
		t.Fatalf("text trace shows no recon client session:\n%s", trace)
	}

	// Teardown: the debug server dies with the node, and nothing —
	// handler, accept loop, session goroutine — outlives Close.
	client.CloseIdleConnections()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if a.DebugAddr() == "" {
		t.Fatal("DebugAddr forgot its address after Close")
	}
	if _, err := client.Get(fmt.Sprintf("http://%s/healthz", a.DebugAddr())); err == nil {
		t.Fatal("debug endpoint still serving after Close")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}
