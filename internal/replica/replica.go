// Package replica is the network replication layer: it runs an MRDT on
// geo-distributed nodes that exchange their commit histories peer-to-peer
// over TCP — the deployment model of the paper's system (Irmin replicas
// synchronizing Git-style, §1, §7).
//
// Each node embeds a full versioned store (internal/store). A sync ships
// the whole commit DAG of the sender's branch; the receiver imports it
// under a tracking branch (content addressing deduplicates commits both
// sides already share) and performs a store Pull, whose DAG-based lowest
// common ancestor is correct even when history reached a node indirectly
// through third parties — ring and mesh gossip topologies converge, which
// per-pair state exchange cannot achieve. The store's Ψ_lca soundness
// discipline applies verbatim: unsound merges are refused, fast-forwards
// adopt commits.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/wire"
)

// Protocol constants.
const (
	msgSyncRequest  = byte(1)
	msgSyncResponse = byte(2)
	msgError        = byte(3)

	// maxPayload bounds a single history transfer (64 MiB).
	maxPayload = 64 << 20
)

// ErrProtocol is wrapped by all protocol-level failures.
var ErrProtocol = errors.New("replica: protocol error")

// Node is one replica of an MRDT object. It is safe for concurrent use.
type Node[S, Op, Val any] struct {
	name  string
	store *store.Store[S, Op, Val]
	codec wire.Codec[S]

	syncMu sync.Mutex // serializes sync exchanges on this node

	ln     net.Listener
	closed chan struct{}
	wg     sync.WaitGroup
}

// MaxReplicaID is the largest node id; each node reserves a block of 64
// branch-clock replica ids so that timestamps are unique fleet-wide.
const MaxReplicaID = 1023

// NewNode creates a replica named name with fleet-unique id replicaID.
// Node names double as branch names in the embedded store and as peer
// identities on the wire; names and ids must be unique across the fleet.
func NewNode[S, Op, Val any](name string, replicaID int, impl core.MRDT[S, Op, Val], codec wire.Codec[S]) (*Node[S, Op, Val], error) {
	if replicaID < 0 || replicaID > MaxReplicaID {
		return nil, fmt.Errorf("replica: id %d out of range [0, %d]", replicaID, MaxReplicaID)
	}
	return &Node[S, Op, Val]{
		name:   name,
		store:  store.NewAt[S, Op, Val](impl, codec, name, replicaID*64),
		codec:  codec,
		closed: make(chan struct{}),
	}, nil
}

// Name returns the node's name.
func (n *Node[S, Op, Val]) Name() string { return n.name }

// Store exposes the embedded versioned store (read-mostly; the node's own
// branch carries its state).
func (n *Node[S, Op, Val]) Store() *store.Store[S, Op, Val] { return n.store }

// Do applies an operation locally with a fresh timestamp.
func (n *Node[S, Op, Val]) Do(op Op) (Val, error) {
	return n.store.Apply(n.name, op)
}

// State returns the current local state.
func (n *Node[S, Op, Val]) State() (S, error) {
	return n.store.Head(n.name)
}

// Listen starts serving sync requests on addr ("127.0.0.1:0" picks a free
// port). The chosen address is available from Addr.
func (n *Node[S, Op, Val]) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	n.ln = ln
	n.wg.Add(1)
	go n.serve()
	return nil
}

// Addr returns the listening address, or "" before Listen.
func (n *Node[S, Op, Val]) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Close stops serving and waits for in-flight handlers.
func (n *Node[S, Op, Val]) Close() error {
	close(n.closed)
	var err error
	if n.ln != nil {
		err = n.ln.Close()
	}
	n.wg.Wait()
	return err
}

func (n *Node[S, Op, Val]) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			n.handle(conn)
		}()
	}
}

// handle serves one sync: import the client's history, merge it into the
// local branch, reply with the merged history.
func (n *Node[S, Op, Val]) handle(conn net.Conn) {
	kind, fields, err := readMsg(conn, 2)
	if err != nil || kind != msgSyncRequest {
		writeMsg(conn, msgError, []byte("bad request"))
		return
	}
	peer := string(fields[0])
	commits, head, err := decodeExport(fields[1])
	if err != nil {
		writeMsg(conn, msgError, []byte(err.Error()))
		return
	}

	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	if err := n.integrate(peer, commits, head); err != nil {
		writeMsg(conn, msgError, []byte(err.Error()))
		return
	}
	reply, replyHead, err := n.store.Export(n.name)
	if err != nil {
		writeMsg(conn, msgError, []byte(err.Error()))
		return
	}
	writeMsg(conn, msgSyncResponse, encodeExport(reply, replyHead))
}

// integrate installs a peer's history under its tracking branch and pulls
// it into the local branch.
func (n *Node[S, Op, Val]) integrate(peer string, commits []store.ExportedCommit, head store.Hash) error {
	if err := n.store.Import("remote/"+peer, commits, head, n.codec); err != nil {
		return err
	}
	return n.store.Pull(n.name, "remote/"+peer)
}

// SyncWith synchronizes this node with the peer listening at addr: the
// peer merges this node's history into its branch, and this node then
// merges the peer's reply (usually a fast-forward, since the reply already
// contains everything local). After a successful exchange both nodes'
// branches hold equal states.
func (n *Node[S, Op, Val]) SyncWith(addr string) error {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()

	commits, head, err := n.store.Export(n.name)
	if err != nil {
		return err
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := writeMsg(conn, msgSyncRequest, []byte(n.name), encodeExport(commits, head)); err != nil {
		return err
	}
	kind, fields, err := readMsg(conn, 1)
	if err != nil {
		return err
	}
	if kind == msgError {
		return fmt.Errorf("%w: peer: %s", ErrProtocol, string(fields[0]))
	}
	if kind != msgSyncResponse {
		return fmt.Errorf("%w: unexpected message kind %d", ErrProtocol, kind)
	}
	peerCommits, peerHead, err := decodeExport(fields[0])
	if err != nil {
		return err
	}
	return n.integrate("peer@"+addr, peerCommits, peerHead)
}

// encodeExport frames a commit history for transfer.
func encodeExport(commits []store.ExportedCommit, head store.Hash) []byte {
	var w wire.Writer
	w.PutLen(len(commits))
	for _, c := range commits {
		w.PutLen(len(c.Parents))
		for _, p := range c.Parents {
			w.PutString(string(p[:]))
		}
		w.PutString(string(c.State))
		w.PutInt64(int64(c.Gen))
		w.PutTimestamp(c.Time)
	}
	w.PutString(string(head[:]))
	return w.Bytes()
}

// decodeExport parses a framed commit history.
func decodeExport(b []byte) ([]store.ExportedCommit, store.Hash, error) {
	r := wire.NewReader(b)
	n := r.Len(1)
	commits := make([]store.ExportedCommit, 0, n)
	for i := 0; i < n; i++ {
		np := r.Len(1)
		parents := make([]store.Hash, 0, np)
		for j := 0; j < np; j++ {
			h, err := toHash(r.String())
			if err != nil {
				return nil, store.Hash{}, err
			}
			parents = append(parents, h)
		}
		commits = append(commits, store.ExportedCommit{
			Parents: parents,
			State:   []byte(r.String()),
			Gen:     int(r.Int64()),
			Time:    r.Timestamp(),
		})
	}
	head, err := toHash(r.String())
	if err != nil {
		return nil, store.Hash{}, err
	}
	if err := r.Close(); err != nil {
		return nil, store.Hash{}, err
	}
	return commits, head, nil
}

func toHash(s string) (store.Hash, error) {
	var h store.Hash
	if len(s) != len(h) {
		return h, fmt.Errorf("%w: bad hash length %d", ErrProtocol, len(s))
	}
	copy(h[:], s)
	return h, nil
}

// writeMsg frames a message: kind byte, field count, then length-prefixed
// fields.
func writeMsg(w io.Writer, kind byte, fields ...[]byte) error {
	var hdr []byte
	hdr = append(hdr, kind)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(fields)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, f := range fields {
		var lp [4]byte
		binary.BigEndian.PutUint32(lp[:], uint32(len(f)))
		if _, err := w.Write(lp[:]); err != nil {
			return err
		}
		if _, err := w.Write(f); err != nil {
			return err
		}
	}
	return nil
}

// readMsg reads one framed message, expecting exactly wantFields fields
// for non-error kinds (error messages carry one field).
func readMsg(r io.Reader, wantFields int) (byte, [][]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	kind := hdr[0]
	count := int(binary.BigEndian.Uint32(hdr[1:]))
	if kind == msgError {
		wantFields = 1
	}
	if count != wantFields {
		return 0, nil, fmt.Errorf("%w: got %d fields, want %d", ErrProtocol, count, wantFields)
	}
	fields := make([][]byte, count)
	for i := range fields {
		var lp [4]byte
		if _, err := io.ReadFull(r, lp[:]); err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		size := binary.BigEndian.Uint32(lp[:])
		if size > maxPayload {
			return 0, nil, fmt.Errorf("%w: payload %d exceeds limit", ErrProtocol, size)
		}
		fields[i] = make([]byte, size)
		if _, err := io.ReadFull(r, fields[i]); err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
	}
	return kind, fields, nil
}
