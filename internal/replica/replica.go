// Package replica is the network replication layer: it runs an MRDT on
// geo-distributed nodes that exchange their commit histories peer-to-peer
// over TCP — the deployment model of the paper's system (Irmin replicas
// synchronizing Git-style, §1, §7).
//
// Each node embeds a full versioned store (internal/store). A sync is an
// incremental delta exchange (protocol v2): the client opens with a hello
// carrying its branch frontier — head hash plus a sampled have-set — the
// server answers with its own frontier, and then each side streams only
// the commits the other's frontier does not dominate. The receiver grafts
// the partial DAG onto the commits it already holds (content addressing
// deduplicates anything shipped twice) and performs a store Pull, whose
// DAG-based lowest common ancestor is correct even when history reached a
// node indirectly through third parties — ring and mesh gossip topologies
// converge, which per-pair state exchange cannot achieve. A re-sync of an
// already-converged pair therefore costs O(frontier) bytes, not
// O(history). Peers that do not speak the frontier negotiation (or fail
// it) are handled by falling back to the legacy v1 one-shot full-history
// exchange. The store's Ψ_lca soundness discipline applies verbatim:
// unsound merges are refused, fast-forwards adopt commits.
package replica

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/wire"
)

// ErrProtocol is wrapped by all protocol-level failures.
var ErrProtocol = errors.New("replica: protocol error")

// errFallback marks a failed v2 negotiation; SyncWith retries with the
// legacy full-history protocol.
var errFallback = errors.New("replica: delta negotiation unavailable")

// SyncStats counts a node's sync traffic across both client and server
// roles. Byte counts cover both directions of every connection the node
// took part in; commit counts are commits shipped, before content-address
// deduplication on the receiving side.
type SyncStats struct {
	BytesSent   int64
	BytesRecv   int64
	CommitsSent int64
	CommitsRecv int64
	// DeltaSyncs and FullSyncs count completed exchanges by protocol, one
	// per role (a two-node delta exchange increments each node once).
	DeltaSyncs int64
	FullSyncs  int64
	// Fallbacks counts delta negotiations abandoned for the full path.
	Fallbacks int64
}

type syncStats struct {
	bytesSent, bytesRecv     atomic.Int64
	commitsSent, commitsRecv atomic.Int64
	deltaSyncs, fullSyncs    atomic.Int64
	fallbacks                atomic.Int64
}

func (s *syncStats) snapshot() SyncStats {
	return SyncStats{
		BytesSent:   s.bytesSent.Load(),
		BytesRecv:   s.bytesRecv.Load(),
		CommitsSent: s.commitsSent.Load(),
		CommitsRecv: s.commitsRecv.Load(),
		DeltaSyncs:  s.deltaSyncs.Load(),
		FullSyncs:   s.fullSyncs.Load(),
		Fallbacks:   s.fallbacks.Load(),
	}
}

// syncIdleTimeout bounds how long one read or write of a sync exchange
// may stall. A peer that keeps making progress can transfer arbitrarily
// much; one that goes silent errors out instead of wedging the node
// (handlers and SyncWith serialize on syncMu, so an unbounded stall
// would block every later sync on the node).
const syncIdleTimeout = 30 * time.Second

// countedConn counts the bytes crossing a connection into a node's stats
// and refreshes the idle deadline on every read and write.
type countedConn struct {
	net.Conn
	stats *syncStats
}

func (c countedConn) Read(p []byte) (int, error) {
	c.Conn.SetReadDeadline(time.Now().Add(syncIdleTimeout))
	n, err := c.Conn.Read(p)
	c.stats.bytesRecv.Add(int64(n))
	return n, err
}

func (c countedConn) Write(p []byte) (int, error) {
	c.Conn.SetWriteDeadline(time.Now().Add(syncIdleTimeout))
	n, err := c.Conn.Write(p)
	c.stats.bytesSent.Add(int64(n))
	return n, err
}

// Node is one replica of an MRDT object. It is safe for concurrent use.
type Node[S, Op, Val any] struct {
	name  string
	store *store.Store[S, Op, Val]
	codec wire.Codec[S]

	syncMu sync.Mutex // serializes sync exchanges on this node

	stats    syncStats
	fullOnly atomic.Bool

	ln     net.Listener
	closed chan struct{}
	wg     sync.WaitGroup
}

// MaxReplicaID is the largest node id; each node reserves a block of 64
// branch-clock replica ids so that timestamps are unique fleet-wide.
const MaxReplicaID = 1023

// NewNode creates a replica named name with fleet-unique id replicaID.
// Node names double as branch names in the embedded store and as peer
// identities on the wire; names and ids must be unique across the fleet.
func NewNode[S, Op, Val any](name string, replicaID int, impl core.MRDT[S, Op, Val], codec wire.Codec[S]) (*Node[S, Op, Val], error) {
	if replicaID < 0 || replicaID > MaxReplicaID {
		return nil, fmt.Errorf("replica: id %d out of range [0, %d]", replicaID, MaxReplicaID)
	}
	return &Node[S, Op, Val]{
		name:   name,
		store:  store.NewAt[S, Op, Val](impl, codec, name, replicaID*64),
		codec:  codec,
		closed: make(chan struct{}),
	}, nil
}

// Name returns the node's name.
func (n *Node[S, Op, Val]) Name() string { return n.name }

// Store exposes the embedded versioned store (read-mostly; the node's own
// branch carries its state).
func (n *Node[S, Op, Val]) Store() *store.Store[S, Op, Val] { return n.store }

// Do applies an operation locally with a fresh timestamp.
func (n *Node[S, Op, Val]) Do(op Op) (Val, error) {
	return n.store.Apply(n.name, op)
}

// State returns the current local state.
func (n *Node[S, Op, Val]) State() (S, error) {
	return n.store.Head(n.name)
}

// Stats returns a snapshot of the node's sync counters.
func (n *Node[S, Op, Val]) Stats() SyncStats { return n.stats.snapshot() }

// SetFullSyncOnly forces outgoing syncs onto the legacy v1 full-history
// protocol (the serving side always speaks both). Benchmarks use it to
// compare protocols; tests use it to pin down the fallback path.
func (n *Node[S, Op, Val]) SetFullSyncOnly(v bool) { n.fullOnly.Store(v) }

// Listen starts serving sync requests on addr ("127.0.0.1:0" picks a free
// port). The chosen address is available from Addr.
func (n *Node[S, Op, Val]) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	n.ln = ln
	n.wg.Add(1)
	go n.serve()
	return nil
}

// Addr returns the listening address, or "" before Listen.
func (n *Node[S, Op, Val]) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Close stops serving and waits for in-flight handlers.
func (n *Node[S, Op, Val]) Close() error {
	close(n.closed)
	var err error
	if n.ln != nil {
		err = n.ln.Close()
	}
	n.wg.Wait()
	return err
}

func (n *Node[S, Op, Val]) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			n.handle(countedConn{Conn: conn, stats: &n.stats})
		}()
	}
}

// handle dispatches one inbound sync by its opening frame: a v2 hello
// starts the delta negotiation, a v1 request gets the one-shot exchange.
func (n *Node[S, Op, Val]) handle(conn io.ReadWriter) {
	kind, fields, err := wire.ReadMsg(conn)
	if err != nil {
		wire.WriteMsg(conn, wire.FrameErr, []byte("bad request"))
		return
	}
	switch kind {
	case wire.FrameHello:
		n.handleHello(conn, fields)
	case wire.FrameSyncRequest:
		n.handleFull(conn, fields)
	default:
		wire.WriteMsg(conn, wire.FrameErr, []byte("bad request"))
	}
}

// handleHello serves the v2 exchange: answer with the local frontier,
// read the client's missing-commit delta, merge it, and stream back the
// commits the client's frontier does not dominate.
func (n *Node[S, Op, Val]) handleHello(conn io.ReadWriter, fields [][]byte) {
	fail := func(msg string) { wire.WriteMsg(conn, wire.FrameErr, []byte(msg)) }
	if len(fields) != 1 {
		fail("bad hello")
		return
	}
	peer, theirs, err := wire.DecodeHello(fields[0])
	if err != nil {
		fail(err.Error())
		return
	}

	// The network round-trips happen outside syncMu: a stalled or
	// malicious client must only tie up its own handler, never the
	// node's sync path. The frontier needs no lock — it advertises
	// commits we have, which stays true however concurrent exchanges
	// advance the branch.
	mine, err := n.store.Frontier(n.name)
	if err != nil {
		fail(err.Error())
		return
	}
	if err := wire.WriteMsg(conn, wire.FrameHelloAck, wire.EncodeHello(n.name, mine)); err != nil {
		return
	}
	commits, head, err := wire.ReadDelta(conn)
	if err != nil {
		fail(err.Error())
		return
	}

	n.syncMu.Lock()
	err = n.integrate("remote/"+peer, commits, head)
	var reply []store.ExportedCommit
	var replyHead store.Hash
	if err == nil {
		reply, replyHead, err = n.store.ExportSince(n.name, theirs.HaveSet())
	}
	n.syncMu.Unlock()
	if err != nil {
		fail(err.Error())
		return
	}
	// Commits are immutable, so the materialized reply stays valid even
	// if another exchange advances the branch while it streams out.
	if err := wire.WriteDelta(conn, reply, replyHead); err != nil {
		return
	}
	n.stats.deltaSyncs.Add(1)
	n.stats.commitsRecv.Add(int64(len(commits)))
	n.stats.commitsSent.Add(int64(len(reply)))
}

// handleFull serves the legacy v1 exchange: import the client's whole
// history, merge it, reply with the merged whole history.
func (n *Node[S, Op, Val]) handleFull(conn io.ReadWriter, fields [][]byte) {
	fail := func(msg string) { wire.WriteMsg(conn, wire.FrameErr, []byte(msg)) }
	if len(fields) != 2 {
		fail("bad request")
		return
	}
	peer := string(fields[0])
	commits, head, err := wire.DecodeCommitList(fields[1])
	if err != nil {
		fail(err.Error())
		return
	}

	n.syncMu.Lock()
	err = n.integrate("remote/"+peer, commits, head)
	var reply []store.ExportedCommit
	var replyHead store.Hash
	if err == nil {
		reply, replyHead, err = n.store.Export(n.name)
	}
	n.syncMu.Unlock()
	if err != nil {
		fail(err.Error())
		return
	}
	if err := wire.WriteMsg(conn, wire.FrameSyncResponse, wire.EncodeCommitList(reply, replyHead)); err != nil {
		return
	}
	n.stats.fullSyncs.Add(1)
	n.stats.commitsRecv.Add(int64(len(commits)))
	n.stats.commitsSent.Add(int64(len(reply)))
}

// integrate installs a peer's (possibly partial) history under a tracking
// branch and pulls it into the local branch.
func (n *Node[S, Op, Val]) integrate(track string, commits []store.ExportedCommit, head store.Hash) error {
	if err := n.store.Import(track, commits, head, n.codec); err != nil {
		return err
	}
	return n.store.Pull(n.name, track)
}

// SyncWith synchronizes this node with the peer listening at addr: the
// peer merges this node's missing commits into its branch, and this node
// then merges the peer's reply delta (usually a fast-forward, since the
// reply is computed after the peer merged). After a successful exchange
// both nodes' branches hold equal states. The delta protocol is tried
// first; if the peer does not speak it or the negotiation fails, the
// exchange falls back to the legacy full-history protocol.
func (n *Node[S, Op, Val]) SyncWith(addr string) error {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	if !n.fullOnly.Load() {
		err := n.syncDelta(addr)
		if err == nil || !errors.Is(err, errFallback) {
			return err
		}
		n.stats.fallbacks.Add(1)
	}
	return n.syncFull(addr)
}

// syncDelta runs the client side of the v2 exchange. Failures before the
// negotiation completes are reported as errFallback; failures after it
// are real errors.
func (n *Node[S, Op, Val]) syncDelta(addr string) error {
	mine, err := n.store.Frontier(n.name)
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	c := countedConn{Conn: conn, stats: &n.stats}

	if err := wire.WriteMsg(c, wire.FrameHello, wire.EncodeHello(n.name, mine)); err != nil {
		return err
	}
	kind, fields, err := wire.ReadMsg(c)
	switch {
	case err != nil:
		return fmt.Errorf("%w: %v", errFallback, err)
	case kind == wire.FrameErr:
		return fmt.Errorf("%w: peer refused hello", errFallback)
	case kind != wire.FrameHelloAck || len(fields) != 1:
		return fmt.Errorf("%w: unexpected reply kind %d", errFallback, kind)
	}
	peer, theirs, err := wire.DecodeHello(fields[0])
	if err != nil {
		return fmt.Errorf("%w: %v", errFallback, err)
	}

	commits, head, err := n.store.ExportSince(n.name, theirs.HaveSet())
	if err != nil {
		return err
	}
	if err := wire.WriteDelta(c, commits, head); err != nil {
		return err
	}
	reply, replyHead, err := wire.ReadDelta(c)
	if err != nil {
		var pe *wire.PeerError
		if errors.As(err, &pe) {
			return fmt.Errorf("%w: peer: %s", ErrProtocol, pe.Msg)
		}
		return err
	}
	if err := n.integrate("remote/"+peer, reply, replyHead); err != nil {
		return err
	}
	n.stats.deltaSyncs.Add(1)
	n.stats.commitsSent.Add(int64(len(commits)))
	n.stats.commitsRecv.Add(int64(len(reply)))
	return nil
}

// syncFull runs the client side of the legacy v1 exchange: ship the whole
// branch history, merge the peer's whole merged history from the reply.
func (n *Node[S, Op, Val]) syncFull(addr string) error {
	commits, head, err := n.store.Export(n.name)
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	c := countedConn{Conn: conn, stats: &n.stats}

	if err := wire.WriteMsg(c, wire.FrameSyncRequest, []byte(n.name), wire.EncodeCommitList(commits, head)); err != nil {
		return err
	}
	kind, fields, err := wire.ReadMsg(c)
	if err != nil {
		return err
	}
	if kind == wire.FrameErr {
		msg := "unspecified"
		if len(fields) > 0 {
			msg = string(fields[0])
		}
		return fmt.Errorf("%w: peer: %s", ErrProtocol, msg)
	}
	if kind != wire.FrameSyncResponse || len(fields) != 1 {
		return fmt.Errorf("%w: unexpected message kind %d", ErrProtocol, kind)
	}
	peerCommits, peerHead, err := wire.DecodeCommitList(fields[0])
	if err != nil {
		return err
	}
	if err := n.integrate("remote/peer@"+addr, peerCommits, peerHead); err != nil {
		return err
	}
	n.stats.fullSyncs.Add(1)
	n.stats.commitsSent.Add(int64(len(commits)))
	n.stats.commitsRecv.Add(int64(len(peerCommits)))
	return nil
}
