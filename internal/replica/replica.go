// Package replica is the network replication layer: it runs MRDTs on
// geo-distributed nodes that exchange their commit histories peer-to-peer
// over TCP — the deployment model of the paper's system (Irmin replicas
// synchronizing Git-style, §1, §7).
//
// A Node hosts any number of named replicated objects, the way an Irmin
// repository hosts many keys: each object is an independent versioned
// store (internal/store) of one registered datatype. One sync connection
// negotiates and delta-syncs every object the two nodes share. Per object,
// a sync is an incremental delta exchange (protocol v2): the client opens
// with a hello carrying the object's name, its datatype, and the branch
// frontier — head hash plus a sampled have-set — the server answers with
// its own frontier (or a miss for objects it does not host), and then each
// side streams only the commits the other's frontier does not dominate.
// The receiver grafts the partial DAG onto the commits it already holds
// (content addressing deduplicates anything shipped twice) and performs a
// store Pull, whose DAG-based lowest common ancestor is correct even when
// history reached a node indirectly through third parties — ring and mesh
// gossip topologies converge, which per-pair state exchange cannot
// achieve. A re-sync of an already-converged pair therefore costs
// O(frontier) bytes, not O(history). Peers that do not speak the frontier
// negotiation (or fail it before it starts) are handled by falling back to
// the legacy v1 one-shot full-history exchange. Merging is the store's
// job and keeps its guarantees verbatim: every pull merges over a base
// carrying exactly the operations common to both heads (Ψ_lca by
// construction), and fast-forwards adopt commits.
//
// Replication can be always-on: every node embeds an internal/mesh
// engine. Peers configured with WithPeers (or added with AddPeer) get a
// supervisor goroutine running jittered anti-entropy rounds through the
// same syncPeer code path a manual SyncWith uses, local commits and
// remote-merge head moves are pushed to interested peers immediately,
// and failures back off exponentially per peer. Watch exposes the merge
// path's head moves as a notification channel.
//
// Concurrency discipline: an exchange must integrate the peer's reply
// against the same head it exported — an operation slipped into that
// window would make the reply merge against a moved head, minting merge
// commits the peer has never seen and forcing another full round to
// reconcile them. The node therefore holds syncMu across the whole
// client exchange and takes it for every local commit (Do) and inbound
// merge, freezing the branch for the exchange's duration. Two nodes
// syncing each other simultaneously would deadlock on that discipline,
// so lock acquisition is tie-broken by node name: a server asked to
// merge by a client whose name sorts after its own only try-locks,
// answering
// "busy" when the node is itself mid-exchange — the client retries its
// round later, and no waits-for cycle can form because every blocking
// edge goes from a smaller to a larger name. Exchanges additionally
// serialize per peer address, so a daemon round and a manual SyncWith
// to the same peer never duplicate each other's transfer.
package replica

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/recon"
	"repro/internal/store"
	"repro/internal/wire"
)

// ErrProtocol is wrapped by all protocol-level failures.
var ErrProtocol = errors.New("replica: protocol error")

// ErrObject is wrapped by object lookup and registration failures.
var ErrObject = errors.New("replica: object error")

// errFallback marks a failed v2 negotiation; SyncWith retries with the
// legacy full-history protocol.
var errFallback = errors.New("replica: delta negotiation unavailable")

// ErrPeerBusy reports that the peer declined to merge because it was
// mid-exchange itself and the deadlock tie-break told it not to wait.
// The state is momentary: a retry (the mesh daemon's next round, or the
// caller repeating SyncWith) succeeds once the peer's exchange ends.
var ErrPeerBusy = errors.New("replica: peer busy")

// busyMsg is the wire form of ErrPeerBusy, recognized by both protocol
// versions' clients.
const busyMsg = "busy: node is mid-exchange, retry"

// Merge-lock patience: how long a handler on the busy-reject side of the
// name tie-break keeps try-locking before answering busy. Long enough to
// ride out other handlers' brief merge sections, far shorter than a
// client exchange it must not wait for.
const (
	mergeLockPatience = 25 * time.Millisecond
	mergeLockPoll     = 250 * time.Microsecond
)

// SyncStats counts sync traffic across both client and server roles.
// The node's aggregate stats cover both directions of every connection
// the node took part in; per-object stats attribute commits exactly and
// bytes to the object whose exchange was in flight when they crossed the
// wire. Commit counts are commits shipped, before content-address
// deduplication on the receiving side.
type SyncStats struct {
	BytesSent   int64
	BytesRecv   int64
	CommitsSent int64
	CommitsRecv int64
	// DeltaSyncs and FullSyncs count completed exchanges by protocol, one
	// per role (a two-node delta exchange increments each node once).
	DeltaSyncs int64
	FullSyncs  int64
	// Fallbacks counts delta negotiations abandoned for the full path.
	Fallbacks int64
	// Misses counts hellos answered with "object not hosted here".
	Misses int64
	// PatchesSent and PatchesRecv count commits that crossed the wire as
	// binary patches rather than full states — the packed dialect's win.
	PatchesSent int64
	PatchesRecv int64
	// RangesSent and RangesRecv count reconciliation range probes, by
	// role: probes this node issued as a client and probes it answered
	// as a server. A converged pair exchanges exactly one per re-sync.
	RangesSent int64
	RangesRecv int64
	// RedundantCommits counts received commits that were already present
	// — re-ships a sampled frontier failed to subtract. The
	// reconciliation dialect's contract is to keep this at zero.
	RedundantCommits int64
	// InboundShed counts inbound connections closed unserved because the
	// concurrent-session cap (WithMaxInbound) was reached.
	InboundShed int64
	// ReconSessions, PackedSessions, PlainSessions and V1Sessions count
	// completed per-object exchanges by the negotiation-ladder tier they
	// ran at: range-fingerprint reconciliation, packed (patch-bearing)
	// delta, plain (full-state) delta, and the legacy v1 full-history
	// protocol. The first three partition DeltaSyncs; V1Sessions mirrors
	// FullSyncs. They pin down which rung a pairing actually negotiated.
	ReconSessions  int64
	PackedSessions int64
	PlainSessions  int64
	V1Sessions     int64
}

type syncStats struct {
	bytesSent, bytesRecv     atomic.Int64
	commitsSent, commitsRecv atomic.Int64
	deltaSyncs, fullSyncs    atomic.Int64
	fallbacks, misses        atomic.Int64
	patchesSent, patchesRecv atomic.Int64
	rangesSent, rangesRecv   atomic.Int64
	redundantCommits         atomic.Int64
	inboundShed              atomic.Int64
	reconSessions            atomic.Int64
	packedSessions           atomic.Int64
	plainSessions            atomic.Int64
	v1Sessions               atomic.Int64
}

// addTier counts one completed per-object exchange at its ladder tier.
func (s *syncStats) addTier(t tier) {
	switch t {
	case tierRecon:
		s.reconSessions.Add(1)
	case tierPacked:
		s.packedSessions.Add(1)
	case tierPlain:
		s.plainSessions.Add(1)
	case tierV1:
		s.v1Sessions.Add(1)
	}
}

func (s *syncStats) snapshot() SyncStats {
	return SyncStats{
		BytesSent:        s.bytesSent.Load(),
		BytesRecv:        s.bytesRecv.Load(),
		CommitsSent:      s.commitsSent.Load(),
		CommitsRecv:      s.commitsRecv.Load(),
		DeltaSyncs:       s.deltaSyncs.Load(),
		FullSyncs:        s.fullSyncs.Load(),
		Fallbacks:        s.fallbacks.Load(),
		Misses:           s.misses.Load(),
		PatchesSent:      s.patchesSent.Load(),
		PatchesRecv:      s.patchesRecv.Load(),
		RangesSent:       s.rangesSent.Load(),
		RangesRecv:       s.rangesRecv.Load(),
		RedundantCommits: s.redundantCommits.Load(),
		InboundShed:      s.inboundShed.Load(),
		ReconSessions:    s.reconSessions.Load(),
		PackedSessions:   s.packedSessions.Load(),
		PlainSessions:    s.plainSessions.Load(),
		V1Sessions:       s.v1Sessions.Load(),
	}
}

// callState is one client exchange's in-flight context: the byte and
// commit counters feeding the mesh Report, the flight-recorder span,
// and the ladder tier the exchange settled at. span is nil (and every
// use of it a no-op) when the node runs without observability.
type callState struct {
	stats syncStats
	span  *spanRec
	tier  tier
}

// object records one completed per-object exchange at tier t.
func (cs *callState) object(t tier) {
	cs.tier = t
	cs.span.object(t)
}

// countPatches reports how many of the commits travel as patches.
func countPatches(commits []store.ExportedCommit) int64 {
	n := int64(0)
	for i := range commits {
		if commits[i].Patch != nil {
			n++
		}
	}
	return n
}

// defaultSyncTimeout bounds how long one read or write of a sync
// exchange may stall (override with WithSyncTimeout). A peer that keeps
// making progress can transfer arbitrarily much; one that goes silent
// errors out instead of wedging the node (exchanges serialize per peer
// address, so an unbounded stall would block every later sync with that
// peer).
const defaultSyncTimeout = 30 * time.Second

// defaultSessionTimeout bounds a whole sync session (override or
// disable with WithSessionTimeout). The idle timeout alone cannot stop
// a dribbling peer — one byte per idle window makes progress forever —
// and a client exchange holds the node's sync freeze, so the session
// bound is what caps how long a hostile peer can hold syncMu.
const defaultSessionTimeout = 3 * time.Minute

// countedConn counts the bytes crossing a connection into the node's
// aggregate stats, the stats of the object whose exchange is in flight,
// and (client side) the per-exchange counters the mesh engine attributes
// to one peer. Every read and write refreshes the idle deadline, capped
// by the absolute session deadline.
type countedConn struct {
	net.Conn
	total *syncStats
	call  *syncStats // one exchange's counters; nil on inbound handlers
	obj   atomic.Pointer[syncStats]
	// idle is the per-operation stall bound; sessionEnd (zero = none) is
	// the whole-session deadline no refresh may extend past.
	idle       time.Duration
	sessionEnd time.Time
	// metrics feeds the per-frame wire counters (nil when the node runs
	// without observability).
	metrics *nodeMetrics
}

// FrameRead and FrameWrote implement wire.FrameMeter: the framing layer
// reports each complete frame's kind and size here.
func (c *countedConn) FrameRead(kind wire.FrameKind, bytes int) {
	c.metrics.frame(false, kind, bytes)
}

func (c *countedConn) FrameWrote(kind wire.FrameKind, bytes int) {
	c.metrics.frame(true, kind, bytes)
}

// stamp computes the next operation deadline: now+idle, clipped to the
// session end.
func (c *countedConn) stamp() time.Time {
	d := time.Now().Add(c.idle)
	if !c.sessionEnd.IsZero() && c.sessionEnd.Before(d) {
		d = c.sessionEnd
	}
	return d
}

func (c *countedConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(c.stamp()); err != nil {
		return 0, err
	}
	n, err := c.Conn.Read(p)
	c.total.bytesRecv.Add(int64(n))
	if c.call != nil {
		c.call.bytesRecv.Add(int64(n))
	}
	if s := c.obj.Load(); s != nil {
		s.bytesRecv.Add(int64(n))
	}
	return n, err
}

func (c *countedConn) Write(p []byte) (int, error) {
	if err := c.Conn.SetWriteDeadline(c.stamp()); err != nil {
		return 0, err
	}
	n, err := c.Conn.Write(p)
	c.total.bytesSent.Add(int64(n))
	if c.call != nil {
		c.call.bytesSent.Add(int64(n))
	}
	if s := c.obj.Load(); s != nil {
		s.bytesSent.Add(int64(n))
	}
	return n, err
}

// newConn wraps a session connection with the node's byte accounting
// and deadline policy.
func (n *Node) newConn(conn net.Conn, call *syncStats) *countedConn {
	c := &countedConn{Conn: conn, total: &n.total, call: call, idle: n.cfg.syncTimeout(), metrics: n.metrics}
	if d := n.cfg.sessionTimeout(); d > 0 {
		c.sessionEnd = time.Now().Add(d)
	}
	return c
}

// dialTimeout bounds a sync dial to a peer; context cancellation (node
// close, peer removal) aborts earlier.
const dialTimeout = 10 * time.Second

// dialPeer opens a sync connection through the node's transport,
// honouring ctx for both the dial and — via the returned stop func's
// AfterFunc registration in the caller — the life of the exchange.
func (n *Node) dialPeer(ctx context.Context, addr string) (net.Conn, error) {
	return n.cfg.transportOrTCP().Dial(ctx, addr)
}

// objectEntry pairs a hosted object with its sync counters, its Watch
// subscribers and, on durable nodes, its pack log.
type objectEntry struct {
	obj      Object
	log      *disk.Log
	stats    syncStats
	watchers *watcherSet
}

// Node is one replica hosting a set of named MRDT objects. It is safe
// for concurrent use.
type Node struct {
	name      string
	replicaID int
	cfg       nodeConfig

	mu      sync.Mutex // guards objects
	objects map[string]*objectEntry

	// syncMu freezes the node's branches for the duration of a client
	// exchange: syncPeer holds it from first export to last integrate,
	// and every other head-moving path — Do, local-branch pulls, inbound
	// handler merges — takes it too, so replies always integrate against
	// the head that was exported (see the package comment); handlers
	// avoid the resulting cross-node deadlock with the name tie-break in
	// acquireMergeLock.
	syncMu sync.Mutex

	// peerMus serializes whole exchanges per peer address, so a manual
	// SyncWith and a mesh daemon round to the same peer never run
	// concurrently (and never duplicate each other's transfer), while
	// exchanges with different peers overlap freely.
	peerMus sync.Map // addr -> *sync.Mutex

	// engine is the always-on sync daemon; it has no peers (and spawns
	// no goroutines) until WithPeers or AddPeer names some.
	engine *mesh.Engine

	total    syncStats
	fullOnly atomic.Bool
	// reconOff disables the reconciliation dialect on both roles: the
	// node neither advertises nor echoes wire.CapRecon, so pairings
	// converge on the frontier-sampling dialect. Benchmarks use it as
	// the baseline switch; tests use it to pin the downgrade ladder.
	reconOff atomic.Bool
	// plainPeers remembers addresses that rejected the capability hello,
	// so periodic re-syncs with a pre-capability peer skip the doomed
	// probe connection instead of paying it every round. Like the
	// fullOnly switch it is best-effort session state: a peer upgraded
	// in place keeps getting the plain dialect until this node restarts.
	plainPeers sync.Map // addr -> struct{}
	// reconPeers remembers addresses that echoed wire.CapRecon, the
	// confidence gate for the two cheap openings of the recon dialect —
	// the whole-node span probe and head-only hello frontiers. Both
	// degrade safely when the memo goes stale (a span refusal clears it
	// and the round retries; a head-only frontier only costs re-shipped
	// commits), so like plainPeers it is best-effort session state.
	reconPeers sync.Map // addr -> struct{}

	ln     net.Listener
	closed chan struct{}
	// inbound tracks live inbound session connections so Close can sever
	// them: a handler parked mid-read would otherwise hold wg.Wait until
	// its idle deadline fires.
	inboundMu sync.Mutex
	inbound   map[net.Conn]struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	// metrics and rec are the node's observability hooks (obs.go),
	// allocated by WithObservability / WithDebugAddr; nil by default, in
	// which case every instrumentation site is one nil check. debug is
	// the live debug HTTP server (debug.go), nil without WithDebugAddr.
	metrics *nodeMetrics
	rec     *obs.Recorder
	debug   *debugServer
}

// MaxReplicaID is the largest node id; each node reserves a block of 64
// branch-clock replica ids per object so that timestamps are unique
// fleet-wide within every object's DAG.
const MaxReplicaID = 1023

// NewNode creates a replica named name with fleet-unique id replicaID.
// Node names double as branch names in each object's embedded store and
// as peer identities on the wire; names and ids must be unique across the
// fleet. Options configure durable storage (WithStorage, WithFsync) and
// per-object store tunables (WithStoreOptions); they apply to every
// object subsequently opened on the node.
func NewNode(name string, replicaID int, opts ...NodeOption) (*Node, error) {
	if replicaID < 0 || replicaID > MaxReplicaID {
		return nil, fmt.Errorf("replica: id %d out of range [0, %d]", replicaID, MaxReplicaID)
	}
	n := &Node{
		name:      name,
		replicaID: replicaID,
		objects:   make(map[string]*objectEntry),
		inbound:   make(map[net.Conn]struct{}),
		closed:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt(&n.cfg)
	}
	if n.cfg.obsEnabled {
		n.cfg.obsReg = obs.NewRegistry()
		n.cfg.obsRec = obs.NewRecorder()
		n.metrics = newNodeMetrics(n.cfg.obsReg)
		n.rec = n.cfg.obsRec
	}
	n.engine = mesh.New(n, n.cfg.meshConfig())
	for _, addr := range n.cfg.peers {
		n.engine.AddPeer(addr)
	}
	if n.cfg.debugAddr != "" {
		if err := n.startDebug(n.cfg.debugAddr); err != nil {
			n.engine.Close()
			return nil, err
		}
	}
	return n, nil
}

// AddPeer registers addr with the node's always-on sync daemon: a
// supervisor goroutine starts anti-entropy rounds against it immediately
// and receives push-on-commit notifications. Unreachable peers are
// retried with exponential backoff. Adding a present peer is a no-op.
func (n *Node) AddPeer(addr string) { n.engine.AddPeer(addr) }

// RemovePeer stops the daemon's supervision of addr. Removing an unknown
// peer is a no-op.
func (n *Node) RemovePeer(addr string) { n.engine.RemovePeer(addr) }

// Peers returns the daemon's supervised peer addresses, sorted.
func (n *Node) Peers() []string { return n.engine.Peers() }

// MeshStats snapshots the daemon's per-peer state: rounds, pushes,
// failures, backoff, health score, wire cost and last-converged time,
// keyed by peer address.
func (n *Node) MeshStats() map[string]mesh.PeerStats { return n.engine.Stats() }

// PeerMeshStats snapshots one peer's daemon state; ok is false for
// addresses the daemon does not supervise.
func (n *Node) PeerMeshStats(addr string) (mesh.PeerStats, bool) {
	return n.engine.PeerStats(addr)
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Objects returns the names of the hosted objects, sorted.
func (n *Node) Objects() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.objects))
	for name := range n.objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Object returns the hosted object named object.
func (n *Node) Object(object string) (Object, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.objects[object]
	if !ok {
		return nil, false
	}
	return e.obj, true
}

// Stats returns a snapshot of the node's aggregate sync counters.
func (n *Node) Stats() SyncStats { return n.total.snapshot() }

// ObjectStats returns a snapshot of one object's sync counters (zero for
// objects the node does not host).
func (n *Node) ObjectStats(object string) SyncStats {
	n.mu.Lock()
	e, ok := n.objects[object]
	n.mu.Unlock()
	if !ok {
		return SyncStats{}
	}
	return e.stats.snapshot()
}

// SetFullSyncOnly forces outgoing syncs onto the legacy v1 full-history
// protocol (the serving side always speaks both). Benchmarks use it to
// compare protocols; tests use it to pin down the fallback path.
func (n *Node) SetFullSyncOnly(v bool) { n.fullOnly.Store(v) }

// SetReconEnabled switches the set-reconciliation dialect on or off
// (default on) for both roles: disabled, the node negotiates the
// frontier-sampling dialects instead. Benchmarks use it to compare
// negotiation strategies; tests use it to pin the downgrade ladder.
func (n *Node) SetReconEnabled(v bool) { n.reconOff.Store(!v) }

func (n *Node) reconEnabled() bool { return !n.reconOff.Load() }

// entry returns the object entry for object, if hosted.
func (n *Node) entry(object string) (*objectEntry, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.objects[object]
	return e, ok
}

// soleEntry returns the node's only object, for legacy v1 requests that
// predate object naming.
func (n *Node) soleEntry() (string, *objectEntry, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.objects) != 1 {
		return "", nil, false
	}
	for name, e := range n.objects {
		return name, e, true
	}
	return "", nil, false // unreachable
}

// Listen starts serving sync requests on addr ("127.0.0.1:0" picks a free
// port) through the node's transport. The chosen address is available
// from Addr.
func (n *Node) Listen(addr string) error {
	ln, err := n.cfg.transportOrTCP().Listen(addr)
	if err != nil {
		return err
	}
	n.ln = ln
	n.wg.Add(1)
	go n.serve()
	return nil
}

// Addr returns the listening address, or "" before Listen.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Close drains the mesh daemon (cancelling any in-flight round — a peer
// that is down cannot wedge shutdown), stops serving, waits for in-flight
// handlers, detaches every watcher, then flushes and closes every
// object's pack log, so a durable node's on-disk state is complete the
// moment Close returns. Close is idempotent: second and later calls are
// no-ops returning the first call's error.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.engine.Close()
		close(n.closed)
		if n.debug != nil {
			n.debug.close()
		}
		if n.ln != nil {
			n.closeErr = n.ln.Close()
		}
		// Sever live inbound sessions: a handler parked mid-read must not
		// hold shutdown until its idle deadline.
		n.inboundMu.Lock()
		for conn := range n.inbound {
			conn.Close()
		}
		n.inboundMu.Unlock()
		n.wg.Wait()
		n.mu.Lock()
		defer n.mu.Unlock()
		for _, e := range n.objects {
			e.watchers.shutdown()
			if e.log == nil {
				continue
			}
			if err := e.obj.FlushStorage(); err != nil && n.closeErr == nil {
				n.closeErr = err
			}
			if err := e.log.Close(); err != nil && n.closeErr == nil {
				n.closeErr = err
			}
		}
	})
	return n.closeErr
}

// serve accepts inbound sync sessions, one handler goroutine each, with
// concurrency capped by a semaphore (WithMaxInbound): a dial storm gets
// its excess connections closed promptly instead of an unbounded
// goroutine pile-up (counted in SyncStats.InboundShed).
func (n *Node) serve() {
	defer n.wg.Done()
	sem := make(chan struct{}, n.cfg.inboundLimit())
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		select {
		case sem <- struct{}{}:
		default:
			n.total.inboundShed.Add(1)
			if m := n.metrics; m != nil {
				m.shed.Inc()
			}
			conn.Close()
			continue
		}
		n.inboundMu.Lock()
		n.inbound[conn] = struct{}{}
		n.inboundMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() { <-sem }()
			defer func() {
				conn.Close()
				n.inboundMu.Lock()
				delete(n.inbound, conn)
				n.inboundMu.Unlock()
			}()
			// A per-session stat set rides along so the handler's span can
			// report this session's bytes and commits in isolation.
			var sess syncStats
			n.handle(n.newConn(conn, &sess))
		}()
	}
}

// acquireMergeLock takes syncMu for an inbound merge on behalf of the
// named client, or reports false to answer busy. A server whose name
// sorts above the client's blocks outright; one whose name sorts below
// (or ties — a misconfigured fleet syncing itself) only try-locks, with
// a little patience to ride out other handlers' brief merge sections.
// Every blocking edge therefore goes from a smaller to a larger name,
// so the waits-for graph of a fleet of mutually-syncing nodes cannot
// contain a cycle: simultaneous exchanges resolve with one side's
// round answered busy and retried, never with a distributed deadlock.
func (n *Node) acquireMergeLock(client string) bool {
	if n.name > client {
		n.syncMu.Lock()
		return true
	}
	deadline := time.Now().Add(mergeLockPatience)
	for {
		if n.syncMu.TryLock() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(mergeLockPoll)
	}
}

// reconSession is the per-connection state of a reconciliation-dialect
// exchange: set by a hello that negotiated wire.CapRecon, consulted by
// the probe and want frames that follow on the same session, reset by
// the next hello. Sessions are single-goroutine, so no locking. token
// is a store install capture armed at the hello ack and consumed by the
// want handler's export: local commits installed while the descent is
// in flight (an Apply takes only the store lock, not the merge lock)
// would otherwise be invisible to both the probes and the want list,
// and a reply minted on top of them would graft onto commits the client
// has never heard of.
type reconSession struct {
	active    bool
	e         *objectEntry
	hello     wire.Hello
	peerPatch bool
	token     int
	// probes counts the range probes answered this exchange — the
	// server-side descent depth, observed when the want frame ends it.
	probes int
}

// release ends a live session's install capture (a no-op when the want
// handler's export already consumed it) and resets the session.
func (rs *reconSession) release() {
	if rs.active {
		rs.e.obj.EndInstallCapture(rs.token)
	}
	*rs = reconSession{}
}

// handle serves one inbound sync session. A session is a sequence of
// per-object exchanges on a single connection: each v2 hello negotiates
// and delta-syncs one named object — a hello that negotiated the recon
// dialect is instead followed by range probes and a want/delta finish on
// the same session — and the session ends when the client hangs up. A
// whole-node span probe may open a session (one frame confirms a
// converged pair). A v1 request gets the legacy one-shot exchange and
// closes the session.
func (n *Node) handle(conn *countedConn) {
	start := time.Now()
	sp := n.newSpan("server", "")
	// aborted marks a session this side ended on a violation; sessErr
	// carries the read error when the transport (not the dialect) broke,
	// so the span and outcome metric report the true failure class.
	aborted := false
	var sessErr error
	defer func() {
		if aborted && sessErr == nil && sp.failed() == "" {
			sessErr = fmt.Errorf("%w: session aborted", ErrProtocol)
		}
		sp.finish(conn.call, sessErr)
		if m := n.metrics; m != nil {
			m.sessionNsServer.Observe(time.Since(start).Nanoseconds())
			outcome := "ok"
			if sessErr != nil {
				outcome = failClassName(classifyFailure(sessErr))
			} else if c := sp.failed(); c != "" {
				outcome = c
			} else if aborted {
				outcome = "violation"
			}
			m.session("server", tierFromName(sp.tierName()), outcome)
		}
	}()
	var rs reconSession
	// A dropped connection or protocol error can abandon a session
	// mid-descent; its install capture must not keep recording forever.
	defer rs.release()
	for {
		kind, fields, err := wire.ReadMsg(conn)
		if err != nil {
			// Bare EOF is the client ending the session; anything else is
			// a framing violation worth reporting before hanging up.
			if !errors.Is(err, io.EOF) {
				wire.WriteMsg(conn, wire.FrameErr, []byte("bad request"))
				sessErr = err
			}
			return
		}
		switch kind {
		case wire.FrameHello:
			rs.release()
			if !n.handleHello(conn, fields, &rs, sp) {
				aborted = true
				return
			}
		case wire.FrameReconSpan:
			if !n.handleReconSpan(conn, fields, sp) {
				aborted = true
				return
			}
		case wire.FrameReconFP:
			if !n.handleReconProbe(conn, fields, &rs) {
				aborted = true
				return
			}
		case wire.FrameReconWant:
			if !n.handleReconWant(conn, fields, &rs, sp) {
				aborted = true
				return
			}
			rs.release()
		case wire.FrameSyncRequest:
			n.handleFull(conn, fields, sp)
			return
		default:
			wire.WriteMsg(conn, wire.FrameErr, []byte("bad request"))
			aborted = true
			return
		}
	}
}

// handleHello serves one object's v2 negotiation: answer with the local
// frontier (or a miss for unhosted objects) and, in the classic dialects,
// read the client's missing-commit delta, merge it, and stream back the
// commits the client's frontier does not dominate. A two-field hello
// carries the client's capability set; the ack then carries ours. A
// client that advertised wire.CapPatch exchanges packed (delta-state)
// commit chunks in both directions; one that advertised wire.CapRecon
// (and found it echoed) instead follows up with range-fingerprint probes
// — this handler only arms the session state and returns after the ack,
// the probe and want frames are dispatched by handle. One-field hellos
// are the pre-capability dialect and get full-state chunks. The return
// value reports whether the session may continue.
func (n *Node) handleHello(conn *countedConn, fields [][]byte, rs *reconSession, sp *spanRec) bool {
	fail := func(msg string) { wire.WriteMsg(conn, wire.FrameErr, []byte(msg)) }
	hStart := time.Now()
	if len(fields) != 1 && len(fields) != 2 {
		fail("bad hello")
		return false
	}
	peerPatch, peerRecon := false, false
	if len(fields) == 2 {
		caps, err := wire.DecodeCaps(fields[1])
		if err != nil {
			fail(err.Error())
			return false
		}
		peerPatch = caps&wire.CapPatch != 0
		peerRecon = caps&wire.CapRecon != 0 && n.reconEnabled()
	}
	hello, err := wire.DecodeHello(fields[0])
	if err != nil {
		fail(err.Error())
		return false
	}
	sp.setPeer(hello.Node)
	// Re-point byte attribution before any reply: traffic of this
	// exchange must not land on the previous exchange's object.
	conn.obj.Store(nil)
	e, ok := n.entry(hello.Object)
	if !ok {
		n.total.misses.Add(1)
		wire.WriteMsg(conn, wire.FrameHelloMiss, []byte("object not hosted: "+hello.Object))
		return true
	}
	conn.obj.Store(&e.stats)
	if dt := e.obj.Datatype(); dt != hello.Datatype {
		n.total.misses.Add(1)
		e.stats.misses.Add(1)
		wire.WriteMsg(conn, wire.FrameHelloMiss,
			[]byte(fmt.Sprintf("object %s is %s here, peer has %s", hello.Object, dt, hello.Datatype)))
		return true
	}

	// The network round-trips happen outside syncMu: a stalled or
	// malicious client must only tie up its own handler, never the
	// node's sync path. The frontier needs no lock — it advertises
	// commits we have, which stays true however concurrent exchanges
	// advance the branch.
	mine, err := e.obj.Frontier()
	if err != nil {
		fail(err.Error())
		return false
	}
	if peerRecon {
		// The probes resolve the exact diff, so the sampled have-set is
		// dead weight in this dialect; the head still rides along for the
		// client's converged-pair shortcut.
		mine.Have = nil
	}
	ack := wire.Hello{Node: n.name, Object: hello.Object, Datatype: hello.Datatype, Frontier: mine}
	caps := uint64(0)
	if peerPatch {
		caps |= wire.CapPatch
	}
	if peerRecon {
		caps |= wire.CapRecon
	}
	var ackErr error
	if caps != 0 {
		ackErr = wire.WriteMsg(conn, wire.FrameHelloAck,
			wire.EncodeHello(ack), wire.EncodeCaps(caps))
	} else {
		ackErr = wire.WriteMsg(conn, wire.FrameHelloAck, wire.EncodeHello(ack))
	}
	if ackErr != nil {
		return false
	}
	if peerRecon {
		// Arm the session's install capture before the first probe can
		// arrive: every commit a concurrent local Apply installs from
		// here on joins the want handler's reply, however the descent
		// races it.
		*rs = reconSession{active: true, e: e, hello: hello, peerPatch: peerPatch,
			token: e.obj.BeginInstallCapture()}
		sp.phase("negotiate", hello.Object, hStart)
		return true
	}
	commits, head, err := wire.ReadDelta(conn)
	if err != nil {
		fail(err.Error())
		return false
	}

	if !n.acquireMergeLock(hello.Node) {
		sp.failTransient(busyMsg)
		fail(busyMsg)
		return false
	}
	redundant, _, _, err := e.obj.IntegrateExact("remote/"+hello.Node, commits, head)
	var reply []store.ExportedCommit
	var replyHead store.Hash
	if err == nil {
		reply, replyHead, err = e.obj.ExportSince(hello.Frontier.HaveSet(), peerPatch)
	}
	n.syncMu.Unlock()
	if err != nil {
		fail(err.Error())
		return false
	}
	// Count the exchange before the reply streams out: the client may
	// read its own stats the moment its SyncWith returns, and this
	// handler goroutine has no happens-before edge past the write.
	exTier := tierPlain
	if peerPatch {
		exTier = tierPacked
	}
	for _, s := range []*syncStats{&n.total, &e.stats} {
		s.deltaSyncs.Add(1)
		s.commitsRecv.Add(int64(len(commits)))
		s.commitsSent.Add(int64(len(reply)))
		s.patchesRecv.Add(countPatches(commits))
		s.patchesSent.Add(countPatches(reply))
		s.redundantCommits.Add(int64(redundant))
		s.addTier(exTier)
	}
	sp.object(exTier)
	sp.phase("exchange", hello.Object, hStart)
	// Commits are immutable, so the materialized reply stays valid even
	// if another exchange advances the branch while it streams out.
	if peerPatch {
		return wire.WriteDeltaPacked(conn, reply, replyHead) == nil
	}
	return wire.WriteDelta(conn, reply, replyHead) == nil
}

// reconItemsCap is the range size below which a probed server
// enumerates the range instead of splitting it: recursion stops once
// enumeration is cheaper than more round trips.
const reconItemsCap = 64

// handleReconProbe answers one range-fingerprint probe. The answer needs
// no merge lock — it reads a consistent snapshot of the fingerprint tree
// under the store's read lock, and the client's own sync freeze keeps
// its side still; a range another exchange grows mid-descent surfaces as
// a re-negotiation next round, never as corruption.
func (n *Node) handleReconProbe(conn *countedConn, fields [][]byte, rs *reconSession) bool {
	fail := func(msg string) { wire.WriteMsg(conn, wire.FrameErr, []byte(msg)) }
	if !rs.active || len(fields) != 1 {
		fail("recon probe outside a recon exchange")
		return false
	}
	rr, err := wire.DecodeReconRange(fields[0])
	if err != nil {
		fail(err.Error())
		return false
	}
	n.total.rangesRecv.Add(1)
	rs.e.stats.rangesRecv.Add(1)
	rs.probes++
	if m := n.metrics; m != nil {
		m.rangesServer.Inc()
	}
	fp, count := rs.e.obj.ReconRange(rr.X, rr.Y)
	switch {
	case fp == rr.FP && count == rr.Count:
		return wire.WriteMsg(conn, wire.FrameReconMatch) == nil
	case count == 0:
		return wire.WriteMsg(conn, wire.FrameReconEmptyRange) == nil
	case count <= reconItemsCap:
		items := rs.e.obj.ReconItems(rr.X, rr.Y, count)
		return wire.WriteMsg(conn, wire.FrameReconItems, wire.EncodeReconItems(items)) == nil
	default:
		// Split at the median item; both halves are non-empty because
		// count > reconItemsCap ≥ 2, so the descent strictly shrinks.
		mid, ok := rs.e.obj.ReconSelect(rr.X, rr.Y, count/2)
		if !ok {
			fail("recon split lost the range")
			return false
		}
		fpLo, cLo := rs.e.obj.ReconRange(rr.X, mid)
		fpHi, cHi := rs.e.obj.ReconRange(mid, rr.Y)
		sp := wire.ReconSplit{Mid: mid, FPLo: fpLo, CountLo: cLo, FPHi: fpHi, CountHi: cHi}
		return wire.WriteMsg(conn, wire.FrameReconSplit, wire.EncodeReconSplit(sp)) == nil
	}
}

// handleReconWant finishes a recon exchange: read the client's want list
// and its delta of commits we lack, merge, and reply with exactly the
// wanted commits plus whatever merge commits the pull minted — commits
// the client cannot have, grafted onto commits it provably has, so the
// reply re-ships nothing.
func (n *Node) handleReconWant(conn *countedConn, fields [][]byte, rs *reconSession, sp *spanRec) bool {
	fail := func(msg string) { wire.WriteMsg(conn, wire.FrameErr, []byte(msg)) }
	wStart := time.Now()
	if !rs.active || len(fields) != 1 {
		fail("recon want outside a recon exchange")
		return false
	}
	want, err := wire.DecodeReconWant(fields[0])
	if err != nil {
		fail(err.Error())
		return false
	}
	commits, head, err := wire.ReadDelta(conn)
	if err != nil {
		fail(err.Error())
		return false
	}
	e := rs.e
	if !n.acquireMergeLock(rs.hello.Node) {
		sp.failTransient(busyMsg)
		fail(busyMsg)
		return false
	}
	redundant, fresh, minted, err := e.obj.IntegrateExact("remote/"+rs.hello.Node, commits, head)
	var reply []store.ExportedCommit
	var replyHead store.Hash
	if err == nil {
		ship := make(map[store.Hash]bool, len(want)+len(minted))
		for _, h := range want {
			ship[h] = true
		}
		for _, h := range minted {
			ship[h] = true
		}
		// The session capture holds everything installed since the hello
		// ack: the integrate's own installs plus any commits local Applies
		// raced in mid-descent. The latter must ship — the client's want
		// list cannot name them, yet the reply head reaches them — while
		// the client's just-imported delta (fresh) must not bounce back.
		skip := make(map[store.Hash]bool, len(fresh))
		for _, h := range fresh {
			skip[h] = true
		}
		reply, replyHead, err = e.obj.ExportSetCapture(ship, rs.token, skip, rs.peerPatch)
	}
	n.syncMu.Unlock()
	if err != nil {
		fail(err.Error())
		return false
	}
	// Count the exchange before the reply streams out: the client may
	// read its own stats the moment its SyncWith returns, and this
	// handler goroutine has no happens-before edge past the write.
	for _, s := range []*syncStats{&n.total, &e.stats} {
		s.deltaSyncs.Add(1)
		s.commitsRecv.Add(int64(len(commits)))
		s.commitsSent.Add(int64(len(reply)))
		s.patchesRecv.Add(countPatches(commits))
		s.patchesSent.Add(countPatches(reply))
		s.redundantCommits.Add(int64(redundant))
		s.addTier(tierRecon)
	}
	if m := n.metrics; m != nil {
		m.descent(rs.probes)
	}
	sp.object(tierRecon)
	sp.phase("ship", rs.hello.Object, wStart)
	if rs.peerPatch {
		return wire.WriteDeltaPacked(conn, reply, replyHead) == nil
	}
	return wire.WriteDelta(conn, reply, replyHead) == nil
}

// handleReconSpan answers a whole-node span probe: fold a fingerprint
// over every hosted object and reply FrameReconMatch when it equals the
// prober's — one frame confirming a converged pair — or our own span
// when it does not (the prober then runs per-object exchanges).
func (n *Node) handleReconSpan(conn *countedConn, fields [][]byte, sp *spanRec) bool {
	fail := func(msg string) { wire.WriteMsg(conn, wire.FrameErr, []byte(msg)) }
	sStart := time.Now()
	if !n.reconEnabled() || len(fields) != 1 {
		fail("bad request")
		return false
	}
	probe, err := wire.DecodeReconSpan(fields[0])
	if err != nil {
		fail(err.Error())
		return false
	}
	conn.obj.Store(nil)
	n.total.rangesRecv.Add(1)
	if m := n.metrics; m != nil {
		m.rangesServer.Inc()
	}
	names := n.Objects()
	mine := n.nodeSpan(names)
	if mine == probe {
		// Mirror the client's accounting: a matching span completes one
		// converged exchange per hosted object.
		for _, name := range names {
			if e, ok := n.entry(name); ok {
				e.stats.deltaSyncs.Add(1)
				e.stats.addTier(tierRecon)
			}
			n.total.deltaSyncs.Add(1)
			n.total.addTier(tierRecon)
		}
		if m := n.metrics; m != nil {
			m.spanMatch.Inc()
		}
		sp.objects(tierRecon, len(names))
		sp.phase("span-probe", "", sStart)
		return wire.WriteMsg(conn, wire.FrameReconMatch) == nil
	}
	if m := n.metrics; m != nil {
		m.spanDiff.Inc()
	}
	sp.phase("span-probe", "", sStart)
	return wire.WriteMsg(conn, wire.FrameReconSpan, wire.EncodeReconSpan(mine)) == nil
}

// nodeSpan folds the named objects into one digest: per object, the
// commit-set fingerprint XOR a domain-separated hash of the object's
// name and branch head. Equal spans mean the pair agrees on object
// names, commit sets and heads all at once; the count (total commits)
// guards the XOR against the trivial collision of swapped sets.
func (n *Node) nodeSpan(names []string) wire.ReconSpan {
	var sp wire.ReconSpan
	for _, name := range names {
		e, ok := n.entry(name)
		if !ok {
			continue
		}
		root, count := e.obj.ReconRoot()
		head, _ := e.obj.Head()
		h := sha256.New()
		h.Write([]byte("peepul-recon-span\x00"))
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write(head[:])
		var fold recon.Fingerprint
		copy(fold[:], h.Sum(nil))
		sp.FP.Xor(root)
		sp.FP.Xor(fold)
		sp.Count += count
	}
	return sp
}

// handleFull serves the legacy v1 exchange: import the client's whole
// history for one object, merge it, reply with the merged whole history.
// The request names its object and datatype in third and fourth fields;
// the two-field form predates object naming and resolves to the node's
// sole object with no datatype check (pre-multi-object peers cannot send
// one).
func (n *Node) handleFull(conn *countedConn, fields [][]byte, sp *spanRec) {
	fail := func(msg string) { wire.WriteMsg(conn, wire.FrameErr, []byte(msg)) }
	fStart := time.Now()
	var peer, object, datatype string
	var payload []byte
	switch len(fields) {
	case 2:
		peer, payload = string(fields[0]), fields[1]
		var ok bool
		if object, _, ok = n.soleEntry(); !ok {
			if len(n.Objects()) == 0 {
				fail("no objects hosted")
			} else {
				fail("object name required: node hosts several objects")
			}
			return
		}
	case 4:
		peer, object, datatype = string(fields[0]), string(fields[1]), string(fields[2])
		payload = fields[3]
	default:
		fail("bad request")
		return
	}
	e, ok := n.entry(object)
	if !ok {
		fail("object not hosted: " + object)
		return
	}
	if datatype != "" {
		if dt := e.obj.Datatype(); dt != datatype {
			fail(fmt.Sprintf("object %s is %s here, peer has %s", object, dt, datatype))
			return
		}
	}
	conn.obj.Store(&e.stats)
	commits, head, err := wire.DecodeCommitList(payload)
	if err != nil {
		fail(err.Error())
		return
	}

	if !n.acquireMergeLock(peer) {
		sp.failTransient(busyMsg)
		fail(busyMsg)
		return
	}
	err = e.obj.Integrate("remote/"+peer, commits, head)
	var reply []store.ExportedCommit
	var replyHead store.Hash
	if err == nil {
		reply, replyHead, err = e.obj.Export()
	}
	n.syncMu.Unlock()
	if err != nil {
		fail(err.Error())
		return
	}
	for _, s := range []*syncStats{&n.total, &e.stats} {
		s.fullSyncs.Add(1)
		s.commitsRecv.Add(int64(len(commits)))
		s.commitsSent.Add(int64(len(reply)))
		s.addTier(tierV1)
	}
	sp.setPeer(peer)
	sp.object(tierV1)
	sp.phase("exchange", object, fStart)
	wire.WriteMsg(conn, wire.FrameSyncResponse, wire.EncodeCommitList(reply, replyHead))
}

// SyncWith synchronizes every object this node hosts with the peer
// listening at addr, over a single connection: per object, the peer
// merges this node's missing commits into its branch, and this node then
// merges the peer's reply delta (usually a fast-forward, since the reply
// is computed after the peer merged). Objects the peer does not host (or
// hosts under a different datatype) are skipped and counted in Misses.
// After a successful exchange both nodes hold equal states on every
// shared object. Negotiation runs richest-first: the packed delta
// protocol (capability hellos, patch-bearing commit chunks), then the
// plain delta protocol (full-state chunks, for peers that predate
// capabilities), then the legacy full-history protocol, one connection
// per object.
func (n *Node) SyncWith(addr string) error {
	_, err := n.syncPeer(context.Background(), addr, nil)
	return err
}

// MeshSync implements mesh.Syncer: it is the daemon's entry into the
// exact code path SyncWith uses, restricted to the named objects (nil
// means every hosted object) and abortable through ctx. The returned
// Report is meaningful even on error — partial byte counts still feed
// the per-peer mesh stats.
func (n *Node) MeshSync(ctx context.Context, addr string, objects []string) (mesh.Report, error) {
	return n.syncPeer(ctx, addr, objects)
}

// peerLock returns the mutex serializing exchanges with addr: a manual
// SyncWith and a daemon round aimed at the same peer take turns instead
// of running duplicate concurrent sessions.
func (n *Node) peerLock(addr string) *sync.Mutex {
	mu, _ := n.peerMus.LoadOrStore(addr, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// syncPeer runs one client exchange with addr over the negotiation
// ladder, serialized per peer address. Each object's exchange holds the
// node-wide syncMu from the export of its frontier to the integrate of
// the peer's reply: the branch a hello advertises must not move until
// the reply is merged back, or the integrate lands on a moved head and
// the pair needs another round to reconcile (see the package comment).
// Local commits and inbound merges wait that window out; a peer
// simultaneously syncing us gets the acquireMergeLock tie-break instead
// of a deadlock. Dials stay outside the freeze, so an unreachable peer
// costs its supervisor a dial timeout but never stalls the node's
// commits.
func (n *Node) syncPeer(ctx context.Context, addr string, objects []string) (_ mesh.Report, retErr error) {
	lock := n.peerLock(addr)
	lock.Lock()
	defer lock.Unlock()
	names := objects
	if names == nil {
		names = n.Objects()
	}
	var call callState
	report := func(missed []string) mesh.Report {
		s := call.stats.snapshot()
		return mesh.Report{
			BytesSent:   s.BytesSent,
			BytesRecv:   s.BytesRecv,
			CommitsSent: s.CommitsSent,
			CommitsRecv: s.CommitsRecv,
			Missed:      missed,
		}
	}
	if len(names) == 0 {
		return report(nil), nil
	}
	start := time.Now()
	call.span = n.newSpan("client", addr)
	defer func() {
		call.span.finish(&call.stats, retErr)
		if m := n.metrics; m != nil {
			m.sessionNsClient.Observe(time.Since(start).Nanoseconds())
			outcome := "ok"
			if retErr != nil {
				outcome = failClassName(classifyFailure(retErr))
			}
			m.session("client", call.tier, outcome)
		}
	}()
	// A protocol violation poisons the rich-dialect memos: the next round
	// renegotiates from the bottom of the ladder instead of trusting
	// session state learned from a peer that just broke the protocol.
	// Transient failures keep the memos — a peer that is merely down
	// resumes its negotiated dialect on reconnect.
	defer func() {
		if retErr != nil && classifyFailure(retErr) == mesh.FailViolation {
			n.reconPeers.Delete(addr)
		}
	}()
	if !n.fullOnly.Load() {
		if _, plain := n.plainPeers.Load(addr); !plain {
			// The whole-node span probe is only worth a frame when every
			// hosted object is in scope (the server folds over all of its
			// objects) and the peer is memo-known to speak recon.
			spanOK := objects == nil
			missed, err := n.syncDelta(ctx, addr, names, true, spanOK, &call)
			if errors.Is(err, errSpanRetry) {
				// The peer refused the span probe (downgraded in place);
				// the memo is already cleared — retry the same dialect on
				// a fresh connection, without the span opening.
				missed, err = n.syncDelta(ctx, addr, names, true, false, &call)
			}
			if err == nil || !errors.Is(err, errFallback) {
				return report(missed), err
			}
			// The peer refused the capability hello outright (and closed
			// the session): remember that and retry the pre-capability
			// dialect on a fresh connection before abandoning delta sync
			// entirely.
			n.plainPeers.Store(addr, struct{}{})
		}
		missed, err := n.syncDelta(ctx, addr, names, false, false, &call)
		if err == nil || !errors.Is(err, errFallback) {
			return report(missed), err
		}
		n.total.fallbacks.Add(1)
	}
	for _, object := range names {
		if err := n.syncFull(ctx, addr, object, len(names) == 1, &call); err != nil {
			return report(nil), err
		}
	}
	return report(nil), nil
}

// errSpanRetry marks a span probe the peer refused: the recon memo was
// stale and has been cleared; the caller retries the session without the
// span opening.
var errSpanRetry = errors.New("replica: span probe refused")

// syncDelta runs the client side of a v2 session: one connection, one
// negotiate-and-ship-missing exchange per object. withCaps selects the
// capability dialects (capability hello; patch commits and range
// reconciliation when the peer acks them). When spanOK and the peer is
// memo-known to speak recon, the session opens with a whole-node span
// probe: a match ends the round after two frames — the converged mesh
// pair's steady-state cost. A failure of the first hello is reported as
// errFallback (the peer predates the dialect); failures after that are
// real errors. The returned list names the objects the peer answered
// with a miss — the mesh daemon uses it to learn which objects a peer
// is interested in.
func (n *Node) syncDelta(ctx context.Context, addr string, names []string, withCaps, spanOK bool, call *callState) ([]string, error) {
	reconKnown := false
	if withCaps && n.reconEnabled() {
		_, reconKnown = n.reconPeers.Load(addr)
	}
	conn, err := n.dialPeer(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	c := n.newConn(conn, &call.stats)

	if reconKnown && spanOK {
		done, err := n.syncSpan(c, addr, names, call)
		if err != nil {
			return nil, err
		}
		if done {
			return nil, nil
		}
	}
	var missed []string
	for i, object := range names {
		e, ok := n.entry(object)
		if !ok {
			continue // removed concurrently; nothing to sync
		}
		c.obj.Store(&e.stats)
		miss, err := n.syncObjectDelta(c, addr, object, e, i == 0, withCaps, reconKnown, call)
		if err != nil {
			return missed, err
		}
		if miss {
			missed = append(missed, object)
		}
	}
	return missed, nil
}

// syncSpan opens a session with the whole-node span probe, under the
// sync freeze so the digest cannot move between fold and answer. It
// reports done=true when the peer's span matched (nothing to sync
// anywhere), and errSpanRetry — after clearing the recon memo — when
// the peer refused the frame.
func (n *Node) syncSpan(c *countedConn, addr string, names []string, call *callState) (done bool, _ error) {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	pStart := time.Now()
	n.total.rangesSent.Add(1)
	if m := n.metrics; m != nil {
		m.rangesClient.Inc()
	}
	sp := n.nodeSpan(names)
	if err := wire.WriteMsg(c, wire.FrameReconSpan, wire.EncodeReconSpan(sp)); err != nil {
		return false, err
	}
	kind, _, err := wire.ReadMsg(c)
	switch {
	case err != nil, kind == wire.FrameErr:
		n.reconPeers.Delete(addr)
		return false, errSpanRetry
	case kind == wire.FrameReconMatch:
		// One converged exchange per object, resolved in aggregate: the
		// per-object counters tick exactly as if each object had run its
		// own (trivial) exchange.
		for _, name := range names {
			if e, ok := n.entry(name); ok {
				e.stats.deltaSyncs.Add(1)
				e.stats.addTier(tierRecon)
			}
			n.total.deltaSyncs.Add(1)
			n.total.addTier(tierRecon)
		}
		if m := n.metrics; m != nil {
			m.spanMatch.Inc()
		}
		call.tier = tierRecon
		call.span.objects(tierRecon, len(names))
		call.span.phase("span-probe", "", pStart)
		return true, nil
	case kind == wire.FrameReconSpan:
		if m := n.metrics; m != nil {
			m.spanDiff.Inc()
		}
		call.span.phase("span-probe", "", pStart)
		return false, nil // differs somewhere; run the per-object ladder
	default:
		return false, fmt.Errorf("%w: unexpected span reply kind %d", ErrProtocol, kind)
	}
}

// syncObjectDelta negotiates and transfers one object on an open
// session. It reports miss=true when the peer answered the hello with
// "object not hosted here" (the session stays usable for the next
// object). The node's syncMu is held for the whole call — network
// round-trips included — because the frontier the hello advertises is a
// promise that the branch will stand still until the reply is merged.
// A peer that echoes wire.CapRecon gets the reconciliation exchange
// instead of the frontier-delta one, on the same session.
func (n *Node) syncObjectDelta(c *countedConn, addr, object string, e *objectEntry, first, withCaps, reconKnown bool, call *callState) (miss bool, _ error) {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	negStart := time.Now()
	mine, err := e.obj.Frontier()
	if err != nil {
		return false, err
	}
	if reconKnown {
		// A memo-known recon peer resolves the diff by probing, so the
		// sampled have-set is dead weight; keep only the head. Should the
		// memo prove stale (the peer downgraded in place), the classic
		// exchange still works off the bare head — it just re-ships more.
		mine.Have = nil
	}
	hello := wire.Hello{Node: n.name, Object: object, Datatype: e.obj.Datatype(), Frontier: mine}
	if withCaps {
		caps := wire.CapPatch
		if n.reconEnabled() {
			caps |= wire.CapRecon
		}
		err = wire.WriteMsg(c, wire.FrameHello, wire.EncodeHello(hello), wire.EncodeCaps(caps))
	} else {
		err = wire.WriteMsg(c, wire.FrameHello, wire.EncodeHello(hello))
	}
	if err != nil {
		if first {
			return false, fmt.Errorf("%w: %v", errFallback, err)
		}
		return false, err
	}
	kind, fields, err := wire.ReadMsg(c)
	switch {
	case err != nil:
		if first {
			return false, fmt.Errorf("%w: %v", errFallback, err)
		}
		return false, err
	case kind == wire.FrameHelloMiss:
		// Peer does not host this object (or hosts it as another type).
		n.total.misses.Add(1)
		e.stats.misses.Add(1)
		return true, nil
	case kind == wire.FrameErr:
		if first {
			return false, fmt.Errorf("%w: peer refused hello", errFallback)
		}
		return false, fmt.Errorf("%w: peer refused hello for object %s", ErrProtocol, object)
	case kind != wire.FrameHelloAck || (len(fields) != 1 && len(fields) != 2):
		if first {
			return false, fmt.Errorf("%w: unexpected reply kind %d", errFallback, kind)
		}
		return false, fmt.Errorf("%w: unexpected reply kind %d", ErrProtocol, kind)
	}
	// The peer speaks the packed (and recon) dialects iff it echoed them
	// in a capability field (it never volunteers one to a pre-capability
	// hello).
	peerPatch, peerRecon := false, false
	if len(fields) == 2 {
		caps, err := wire.DecodeCaps(fields[1])
		if err != nil {
			return false, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		peerPatch = withCaps && caps&wire.CapPatch != 0
		peerRecon = withCaps && caps&wire.CapRecon != 0 && n.reconEnabled()
	}
	ack, err := wire.DecodeHello(fields[0])
	if err != nil {
		if first {
			return false, fmt.Errorf("%w: %v", errFallback, err)
		}
		return false, err
	}
	if ack.Object != object {
		return false, fmt.Errorf("%w: peer acked object %q, want %q", ErrProtocol, ack.Object, object)
	}
	if peerRecon {
		n.reconPeers.Store(addr, struct{}{})
		call.span.phase("negotiate", object, negStart)
		return false, n.syncObjectRecon(c, object, e, ack, peerPatch, call)
	}
	call.span.phase("negotiate", object, negStart)

	shipStart := time.Now()
	commits, head, err := e.obj.ExportSince(ack.Frontier.HaveSet(), peerPatch)
	if err != nil {
		return false, err
	}
	if peerPatch {
		err = wire.WriteDeltaPacked(c, commits, head)
	} else {
		err = wire.WriteDelta(c, commits, head)
	}
	if err != nil {
		return false, err
	}
	call.span.phase("ship", object, shipStart)
	importStart := time.Now()
	reply, replyHead, err := wire.ReadDelta(c)
	if err != nil {
		var pe *wire.PeerError
		if errors.As(err, &pe) {
			if pe.Msg == busyMsg {
				return false, fmt.Errorf("%w: %s", ErrPeerBusy, object)
			}
			return false, fmt.Errorf("%w: peer: %s", ErrProtocol, pe.Msg)
		}
		return false, err
	}
	redundant, _, _, err := e.obj.IntegrateExact("remote/"+ack.Node, reply, replyHead)
	if err != nil {
		return false, err
	}
	exTier := tierPlain
	if peerPatch {
		exTier = tierPacked
	}
	for _, s := range []*syncStats{&n.total, &e.stats} {
		s.deltaSyncs.Add(1)
		s.commitsSent.Add(int64(len(commits)))
		s.commitsRecv.Add(int64(len(reply)))
		s.patchesSent.Add(countPatches(commits))
		s.patchesRecv.Add(countPatches(reply))
		s.redundantCommits.Add(int64(redundant))
		s.addTier(exTier)
	}
	call.object(exTier)
	call.span.phase("import", object, importStart)
	return false, nil
}

// syncObjectRecon runs the client side of one object's reconciliation
// exchange, after the hello ack echoed wire.CapRecon. The client drives
// a lock-step descent over hash ranges: probe a range with its local
// fingerprint and count, and on mismatch either receive the server's
// items (small ranges — diffed locally into want and ship lists) or a
// split into two fingerprinted halves (matching halves are discarded
// locally, differing ones probed in turn). The descent terminates — every
// split strictly halves the server's range — and resolves the exact
// symmetric difference in O(diff · log n) frames. A want list and one
// delta in each direction then ship precisely the missing commits; the
// server's reply adds only the merge commits its pull minted. The
// caller holds syncMu throughout, so the local set stands still.
func (n *Node) syncObjectRecon(c *countedConn, object string, e *objectEntry, ack wire.Hello, peerPatch bool, call *callState) error {
	type keyRange struct{ x, y recon.Item }
	work := []keyRange{{}} // the zero pair spans the whole keyspace
	var want []store.Hash
	ship := make(map[store.Hash]bool)
	descStart, probes := time.Now(), 0
	// The node's sync freeze keeps other exchanges out, but a local
	// Apply takes only the store lock and can land a commit after its
	// range was already compared. Capture everything installed during
	// the descent and fold it into the ship set atomically with the
	// export — otherwise the shipped head could reach commits the
	// export's pruning hid from the peer. The deferred end is a no-op
	// once the export consumes the token.
	token := e.obj.BeginInstallCapture()
	defer e.obj.EndInstallCapture(token)
	shipRange := func(x, y recon.Item) {
		for _, it := range e.obj.ReconItems(x, y, -1) {
			ship[it.Addr()] = true
		}
	}
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		fp, count := e.obj.ReconRange(r.x, r.y)
		probe := wire.ReconRange{X: r.x, Y: r.y, FP: fp, Count: count}
		if err := wire.WriteMsg(c, wire.FrameReconFP, wire.EncodeReconRange(probe)); err != nil {
			return err
		}
		n.total.rangesSent.Add(1)
		e.stats.rangesSent.Add(1)
		probes++
		if m := n.metrics; m != nil {
			m.rangesClient.Inc()
		}
		kind, fields, err := wire.ReadMsg(c)
		if err != nil {
			return err
		}
		switch kind {
		case wire.FrameReconMatch:
			// Identical fingerprint and count: the range agrees.
		case wire.FrameReconEmptyRange:
			// The server holds nothing here: everything local is news.
			shipRange(r.x, r.y)
		case wire.FrameReconItems:
			if len(fields) != 1 {
				return fmt.Errorf("%w: recon items without payload", ErrProtocol)
			}
			items, err := wire.DecodeReconItems(fields[0])
			if err != nil {
				return err
			}
			theirs := make(map[recon.Item]bool, len(items))
			for _, it := range items {
				theirs[it] = true
				if !e.obj.HasCommit(it.Addr()) {
					want = append(want, it.Addr())
				}
			}
			for _, it := range e.obj.ReconItems(r.x, r.y, -1) {
				if !theirs[it] {
					ship[it.Addr()] = true
				}
			}
		case wire.FrameReconSplit:
			if len(fields) != 1 {
				return fmt.Errorf("%w: recon split without payload", ErrProtocol)
			}
			sp, err := wire.DecodeReconSplit(fields[0])
			if err != nil {
				return err
			}
			halves := []struct {
				x, y  recon.Item
				fp    recon.Fingerprint
				count int
			}{
				{r.x, sp.Mid, sp.FPLo, sp.CountLo},
				{sp.Mid, r.y, sp.FPHi, sp.CountHi},
			}
			for _, half := range halves {
				lfp, lcount := e.obj.ReconRange(half.x, half.y)
				switch {
				case lfp == half.fp && lcount == half.count:
					// This half agrees; only the other one descends.
				case half.count == 0:
					shipRange(half.x, half.y)
				default:
					work = append(work, keyRange{half.x, half.y})
				}
			}
		case wire.FrameErr:
			msg := "unspecified"
			if len(fields) > 0 {
				msg = string(fields[0])
			}
			return fmt.Errorf("%w: peer: %s", ErrProtocol, msg)
		default:
			return fmt.Errorf("%w: unexpected kind %d in recon descent", ErrProtocol, kind)
		}
	}
	call.span.phase("descend", object, descStart)
	if m := n.metrics; m != nil {
		m.descent(probes)
	}
	// Converged shortcut: equal sets and equal heads need no delta phase
	// at all — the whole re-sync was the root probe. (Equal sets with
	// differing branch heads still run the empty-delta exchange below,
	// which resolves the heads by pulling each other's.)
	localHead, err := e.obj.Head()
	if err != nil {
		return err
	}
	if len(want) == 0 && len(ship) == 0 && ack.Frontier.Head == localHead {
		for _, s := range []*syncStats{&n.total, &e.stats} {
			s.deltaSyncs.Add(1)
			s.addTier(tierRecon)
		}
		call.object(tierRecon)
		return nil
	}
	shipStart := time.Now()
	if err := wire.WriteMsg(c, wire.FrameReconWant, wire.EncodeReconWant(want)); err != nil {
		return err
	}
	commits, head, err := e.obj.ExportSetCapture(ship, token, nil, peerPatch)
	if err != nil {
		return err
	}
	if peerPatch {
		err = wire.WriteDeltaPacked(c, commits, head)
	} else {
		err = wire.WriteDelta(c, commits, head)
	}
	if err != nil {
		return err
	}
	call.span.phase("ship", object, shipStart)
	importStart := time.Now()
	reply, replyHead, err := wire.ReadDelta(c)
	if err != nil {
		var pe *wire.PeerError
		if errors.As(err, &pe) {
			if pe.Msg == busyMsg {
				return fmt.Errorf("%w: %s", ErrPeerBusy, object)
			}
			return fmt.Errorf("%w: peer: %s", ErrProtocol, pe.Msg)
		}
		return err
	}
	redundant, _, _, err := e.obj.IntegrateExact("remote/"+ack.Node, reply, replyHead)
	if err != nil {
		return err
	}
	for _, s := range []*syncStats{&n.total, &e.stats} {
		s.deltaSyncs.Add(1)
		s.commitsSent.Add(int64(len(commits)))
		s.commitsRecv.Add(int64(len(reply)))
		s.patchesSent.Add(countPatches(commits))
		s.patchesRecv.Add(countPatches(reply))
		s.redundantCommits.Add(int64(redundant))
		s.addTier(tierRecon)
	}
	call.object(tierRecon)
	call.span.phase("import", object, importStart)
	return nil
}

// syncFull runs the client side of the legacy v1 exchange for one
// object: ship the whole branch history, merge the peer's whole merged
// history from the reply. The named (four-field) request form is tried
// first — it carries the object and datatype, so multi-object peers
// resolve and type-check it; if the peer refuses it and this node hosts
// a single object, the original two-field form is retried on a fresh
// connection for interop with pre-multi-object peers.
func (n *Node) syncFull(ctx context.Context, addr string, object string, sole bool, call *callState) error {
	e, ok := n.entry(object)
	if !ok {
		return nil
	}
	err := n.syncFullOnce(ctx, addr, object, e, true, call)
	if err != nil && sole && errors.Is(err, errLegacyRequest) {
		return n.syncFullOnce(ctx, addr, object, e, false, call)
	}
	return err
}

// errLegacyRequest marks a v1 request the peer could not even parse —
// the answer a pre-multi-object node gives the named request form, and
// the one failure where retrying with the legacy two-field form can
// help. Semantic refusals (unknown object, datatype mismatch) do not
// qualify: retrying those through the unchecked legacy form would
// bypass the datatype check.
var errLegacyRequest = errors.New("replica: peer cannot parse request")

// syncFullOnce runs one v1 exchange on its own connection, using the
// named request form when named is true.
func (n *Node) syncFullOnce(ctx context.Context, addr, object string, e *objectEntry, named bool, call *callState) error {
	conn, err := n.dialPeer(ctx, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	c := n.newConn(conn, &call.stats)
	c.obj.Store(&e.stats)

	// As in syncObjectDelta, the branch freezes from export to integrate.
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	exStart := time.Now()
	commits, head, err := e.obj.Export()
	if err != nil {
		return err
	}
	payload := wire.EncodeCommitList(commits, head)
	if named {
		err = wire.WriteMsg(c, wire.FrameSyncRequest,
			[]byte(n.name), []byte(object), []byte(e.obj.Datatype()), payload)
	} else {
		err = wire.WriteMsg(c, wire.FrameSyncRequest, []byte(n.name), payload)
	}
	if err != nil {
		return err
	}
	kind, fields, err := wire.ReadMsg(c)
	if err != nil {
		return err
	}
	if kind == wire.FrameErr {
		msg := "unspecified"
		if len(fields) > 0 {
			msg = string(fields[0])
		}
		if msg == "bad request" {
			return fmt.Errorf("%w: %w", ErrProtocol, errLegacyRequest)
		}
		if msg == busyMsg {
			return fmt.Errorf("%w: %s", ErrPeerBusy, object)
		}
		return fmt.Errorf("%w: peer: %s", ErrProtocol, msg)
	}
	if kind != wire.FrameSyncResponse || len(fields) != 1 {
		return fmt.Errorf("%w: unexpected message kind %d", ErrProtocol, kind)
	}
	peerCommits, peerHead, err := wire.DecodeCommitList(fields[0])
	if err != nil {
		return err
	}
	if err := e.obj.Integrate("remote/peer@"+addr, peerCommits, peerHead); err != nil {
		return err
	}
	for _, s := range []*syncStats{&n.total, &e.stats} {
		s.fullSyncs.Add(1)
		s.commitsSent.Add(int64(len(commits)))
		s.commitsRecv.Add(int64(len(peerCommits)))
		s.addTier(tierV1)
	}
	call.object(tierV1)
	call.span.phase("exchange", object, exStart)
	return nil
}

var _ io.ReadWriter = (*countedConn)(nil)
