package replica

// Replica-layer observability: session duration and outcomes by
// negotiation-ladder tier, per-frame wire accounting, reconciliation
// descent depth, and the flight-recorder spans a sync session leaves
// behind. All of it is off by default: WithObservability (or
// WithDebugAddr, which implies it) allocates the node's registry and
// recorder; without them n.metrics and n.rec stay nil and every hook
// here is a single nil check.

import (
	"time"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/wire"
)

// tier is the rung of the negotiation ladder an exchange completed at.
type tier uint8

const (
	tierNone   tier = iota
	tierRecon       // range-fingerprint reconciliation (v2 + CapRecon)
	tierPacked      // packed delta exchange (v2 + CapPatch)
	tierPlain       // plain delta exchange (v2, pre-capability)
	tierV1          // legacy one-shot full-history exchange
)

func (t tier) String() string {
	switch t {
	case tierRecon:
		return "recon"
	case tierPacked:
		return "packed"
	case tierPlain:
		return "plain"
	case tierV1:
		return "v1"
	}
	return "none"
}

// maxFrameKind bounds the pre-resolved frame counter arrays; kinds past
// it (future protocol growth) land on index 0, exposed as kind "other".
const maxFrameKind = 24

// kindName labels a frame kind for the wire metrics.
func kindName(k wire.FrameKind) string {
	switch k {
	case wire.FrameSyncRequest:
		return "sync-request"
	case wire.FrameSyncResponse:
		return "sync-response"
	case wire.FrameErr:
		return "err"
	case wire.FrameHello:
		return "hello"
	case wire.FrameHelloAck:
		return "hello-ack"
	case wire.FrameDeltaHeader:
		return "delta-header"
	case wire.FrameCommits:
		return "commits"
	case wire.FrameDeltaEnd:
		return "delta-end"
	case wire.FrameHelloMiss:
		return "hello-miss"
	case wire.FramePackedCommits:
		return "packed-commits"
	case wire.FrameReconFP:
		return "recon-fp"
	case wire.FrameReconMatch:
		return "recon-match"
	case wire.FrameReconEmptyRange:
		return "recon-empty"
	case wire.FrameReconItems:
		return "recon-items"
	case wire.FrameReconSplit:
		return "recon-split"
	case wire.FrameReconWant:
		return "recon-want"
	case wire.FrameReconSpan:
		return "recon-span"
	}
	return "other"
}

// nodeMetrics is the replica layer's registry view. Frame counters are
// pre-resolved into arrays indexed by kind so the per-frame hot path is
// one bounds check and two atomic adds, never a registry lookup.
type nodeMetrics struct {
	reg             *obs.Registry
	sessionNsClient *obs.Histogram
	sessionNsServer *obs.Histogram
	shed            *obs.Counter
	descentDepth    *obs.Histogram
	rangesClient    *obs.Counter
	rangesServer    *obs.Counter
	spanMatch       *obs.Counter
	spanDiff        *obs.Counter

	framesIn, framesOut         [maxFrameKind + 1]*obs.Counter
	frameBytesIn, frameBytesOut [maxFrameKind + 1]*obs.Counter
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	if reg == nil {
		return nil
	}
	m := &nodeMetrics{
		reg:             reg,
		sessionNsClient: reg.Histogram("peepul_replica_session_ns", obs.LatencyBuckets, "role", "client"),
		sessionNsServer: reg.Histogram("peepul_replica_session_ns", obs.LatencyBuckets, "role", "server"),
		shed:            reg.Counter("peepul_replica_inbound_shed_total"),
		descentDepth:    reg.Histogram("peepul_recon_descent_ranges", obs.DepthBuckets),
		rangesClient:    reg.Counter("peepul_recon_ranges_total", "role", "client"),
		rangesServer:    reg.Counter("peepul_recon_ranges_total", "role", "server"),
		spanMatch:       reg.Counter("peepul_recon_span_probes_total", "result", "match"),
		spanDiff:        reg.Counter("peepul_recon_span_probes_total", "result", "diff"),
	}
	for k := wire.FrameKind(0); k <= maxFrameKind; k++ {
		name := kindName(k)
		if k == 0 {
			name = "other"
		}
		m.framesIn[k] = reg.Counter("peepul_wire_frames_total", "kind", name, "dir", "in")
		m.framesOut[k] = reg.Counter("peepul_wire_frames_total", "kind", name, "dir", "out")
		m.frameBytesIn[k] = reg.Counter("peepul_wire_frame_bytes_total", "kind", name, "dir", "in")
		m.frameBytesOut[k] = reg.Counter("peepul_wire_frame_bytes_total", "kind", name, "dir", "out")
	}
	reg.Describe("peepul_replica_session_ns", "wall time of whole sync sessions by role")
	reg.Describe("peepul_replica_sessions_total", "completed sync sessions by role, ladder tier and outcome")
	reg.Describe("peepul_replica_inbound_shed_total", "inbound connections closed unserved at the session cap")
	reg.Describe("peepul_recon_descent_ranges", "ranges probed per reconciliation descent")
	reg.Describe("peepul_recon_ranges_total", "reconciliation range probes issued (client) and answered (server)")
	reg.Describe("peepul_recon_span_probes_total", "whole-node span probes by result; a match short-circuits the round")
	reg.Describe("peepul_wire_frames_total", "protocol frames by kind and direction")
	reg.Describe("peepul_wire_frame_bytes_total", "protocol frame bytes by kind and direction")
	return m
}

// session counts one completed session. Sessions are per-round, not
// per-frame, so the lazy (role, tier, outcome) resolution is fine.
func (m *nodeMetrics) session(role string, t tier, outcome string) {
	if m == nil {
		return
	}
	m.reg.Counter("peepul_replica_sessions_total",
		"role", role, "tier", t.String(), "outcome", outcome).Inc()
}

// frame feeds one frame into the pre-resolved counters (FrameMeter).
func (m *nodeMetrics) frame(out bool, kind wire.FrameKind, bytes int) {
	if m == nil {
		return
	}
	if kind > maxFrameKind {
		kind = 0
	}
	if out {
		m.framesOut[kind].Inc()
		m.frameBytesOut[kind].Add(int64(bytes))
	} else {
		m.framesIn[kind].Inc()
		m.frameBytesIn[kind].Add(int64(bytes))
	}
}

// descent records one finished reconciliation descent's probe count.
func (m *nodeMetrics) descent(ranges int) {
	if m != nil {
		m.descentDepth.Observe(int64(ranges))
	}
}

// failClassName maps the mesh failure taxonomy to metric label values.
func failClassName(c mesh.FailureClass) string {
	if c == mesh.FailViolation {
		return "violation"
	}
	return "transient"
}

// spanRec accumulates one sync session's flight-recorder span. A nil
// *spanRec (tracing disabled) accepts every call as a no-op, so the
// sync paths stay unconditional.
type spanRec struct {
	rec  *obs.Recorder
	span obs.Span
	// class is the failure class of a handler-recorded failure ("" until
	// fail/failTransient ran); finish promotes it into the span.
	class string
}

// newSpan opens a span; nil when the node records no traces.
func (n *Node) newSpan(role, peer string) *spanRec {
	if n.rec == nil {
		return nil
	}
	return &spanRec{rec: n.rec, span: obs.Span{
		ID:    n.rec.NextSpanID(),
		Role:  role,
		Peer:  peer,
		Start: time.Now(),
	}}
}

// phase appends one named phase with its duration since start.
func (sr *spanRec) phase(name, object string, start time.Time) {
	if sr == nil {
		return
	}
	sr.span.Phases = append(sr.span.Phases, obs.Phase{
		Name: name, Object: object, DurNs: time.Since(start).Nanoseconds(),
	})
}

// setPeer fills the peer name once known (server side learns it from
// the hello).
func (sr *spanRec) setPeer(peer string) {
	if sr != nil && sr.span.Peer == "" {
		sr.span.Peer = peer
	}
}

// object records one completed per-object exchange at tier t. The
// span's tier is the last exchange's (sessions negotiate one dialect,
// so mixes are rare and the last value is representative).
func (sr *spanRec) object(t tier) {
	if sr != nil {
		sr.span.Tier = t.String()
		sr.span.Objects++
	}
}

// objects records k exchanges resolved at once (a span-probe match).
func (sr *spanRec) objects(t tier, k int) {
	if sr != nil {
		sr.span.Tier = t.String()
		sr.span.Objects += k
	}
}

// tierName returns the span's current tier label ("" when unset or
// tracing is disabled).
func (sr *spanRec) tierName() string {
	if sr == nil {
		return ""
	}
	return sr.span.Tier
}

// tierFromName inverts tier.String for the session-outcome metric.
func tierFromName(name string) tier {
	switch name {
	case "recon":
		return tierRecon
	case "packed":
		return tierPacked
	case "plain":
		return tierPlain
	case "v1":
		return tierV1
	}
	return tierNone
}

// fail marks the span failed on a protocol violation without an error
// value (server handlers report failure as a closed session, not an
// error).
func (sr *spanRec) fail(msg string) {
	if sr != nil && sr.span.Err == "" {
		sr.span.Err, sr.class = msg, "violation"
	}
}

// failTransient marks the span failed on a transient condition — the
// busy rejection, which the peer retries, is the canonical case.
func (sr *spanRec) failTransient(msg string) {
	if sr != nil && sr.span.Err == "" {
		sr.span.Err, sr.class = msg, "transient"
	}
}

// failed returns the recorded failure class ("" when the span has no
// handler-recorded failure).
func (sr *spanRec) failed() string {
	if sr == nil {
		return ""
	}
	return sr.class
}

// finish stamps duration, byte and commit totals (from the session's
// counters) and the failure classification, then commits the span to
// the ring.
func (sr *spanRec) finish(call *syncStats, err error) {
	if sr == nil {
		return
	}
	sr.span.DurNs = time.Since(sr.span.Start).Nanoseconds()
	if call != nil {
		sr.span.BytesSent = call.bytesSent.Load()
		sr.span.BytesRecv = call.bytesRecv.Load()
		sr.span.CommitsSent = call.commitsSent.Load()
		sr.span.CommitsRecv = call.commitsRecv.Load()
	}
	if err != nil && sr.span.Err == "" {
		sr.span.Err = err.Error()
		sr.span.FailClass = failClassName(classifyFailure(err))
	} else if sr.span.Err != "" && sr.span.FailClass == "" {
		sr.span.FailClass = sr.class
		if sr.span.FailClass == "" {
			sr.span.FailClass = "violation"
		}
	}
	sr.rec.AddSpan(sr.span)
}

// Trace snapshots the node's flight recorder: the retained sync-session
// spans and mesh lifecycle events, oldest first. Empty without
// WithObservability.
func (n *Node) Trace() obs.Trace {
	if n.rec == nil {
		return obs.Trace{}
	}
	return n.rec.Snapshot()
}

// Registry exposes the node's metrics registry, nil without
// WithObservability.
func (n *Node) Registry() *obs.Registry {
	if n.metrics == nil {
		return nil
	}
	return n.metrics.reg
}
