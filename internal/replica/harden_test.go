package replica_test

// Hardening regression tests: the inbound session cap under a dial
// storm, goroutine hygiene when peers misbehave (malformed hellos,
// mid-frame disconnects, Close racing in-flight sessions), and the
// idle/session deadlines that cut off silent and dribbling peers.

import (
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/counter"
	"repro/internal/replica"
	"repro/internal/wire"
)

// waitGoroutines polls until the goroutine count returns to (near) the
// baseline. The slack absorbs runtime bookkeeping goroutines; leaks
// from sync sessions come in whole handler stacks, well above it.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

// TestDialStormShedsExcessInbound: with a tiny inbound cap, a storm of
// silent connections is shed promptly — the excess are closed rather
// than piling up handler goroutines — and the node keeps serving real
// syncs once the storm passes.
func TestDialStormShedsExcessInbound(t *testing.T) {
	srv := newMeshCounterNode(t, "srv", 1,
		replica.WithMaxInbound(2),
		replica.WithSyncTimeout(200*time.Millisecond))
	inc(t, srv, 9)

	// 20 stormers connect and say nothing. At most 2 occupy handlers
	// (until the sync timeout cuts them); the rest must be shed.
	conns := make([]net.Conn, 0, 20)
	for i := 0; i < 20; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Shed connections are closed by the node: their reads hit EOF.
	closed := 0
	for _, c := range conns {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == io.EOF {
			closed++
		}
	}
	if closed == 0 {
		t.Fatal("no stormer was closed by the server")
	}
	if shed := srv.Stats().InboundShed; shed == 0 {
		t.Fatalf("InboundShed = 0 after a dial storm, %d conns closed", closed)
	}

	// The node is still healthy: a real peer syncs fine.
	cli := newMeshCounterNode(t, "cli", 2)
	if err := cli.SyncWith(srv.Addr()); err != nil {
		t.Fatalf("sync after storm: %v", err)
	}
	if got := value(t, cli); got != 9 {
		t.Fatalf("post-storm sync got %d, want 9", got)
	}
}

// TestMalformedHelloLeaksNoGoroutines: garbage instead of a hello must
// end the session and release its goroutine.
func TestMalformedHelloLeaksNoGoroutines(t *testing.T) {
	srv := newMeshCounterNode(t, "srv", 1)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c.Write([]byte("\xffnot a frame at all, not even close"))
		c.Close()
	}
	waitGoroutines(t, baseline)
}

// TestMidFrameDisconnectLeaksNoGoroutines: a peer that promises a frame
// and dies mid-body must not wedge the handler.
func TestMidFrameDisconnectLeaksNoGoroutines(t *testing.T) {
	srv := newMeshCounterNode(t, "srv", 1, replica.WithSyncTimeout(200*time.Millisecond))
	baseline := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		// Header: kind byte + field count 1, then a field length promising
		// 4096 bytes — deliver 10 and vanish.
		hdr := []byte{0x01}
		hdr = binary.BigEndian.AppendUint32(hdr, 1)
		hdr = binary.BigEndian.AppendUint32(hdr, 4096)
		c.Write(hdr)
		c.Write(make([]byte, 10))
		c.Close()
	}
	waitGoroutines(t, baseline)
}

// TestCloseDuringInflightInboundSession: Close while an inbound session
// is mid-read returns promptly and leaves no handler behind.
func TestCloseDuringInflightInboundSession(t *testing.T) {
	baseline := runtime.NumGoroutine()
	n, err := replica.NewNode("srv", 1, meshOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Ensure[counter.PNState, counter.Op, counter.Val](
		n, "counter", "pn-counter", counter.PNCounter{}, wire.PNCounter{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	// Park a session mid-frame: the handler is blocked reading the body
	// when Close lands.
	c, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hdr := []byte{0x01}
	hdr = binary.BigEndian.AppendUint32(hdr, 1)
	hdr = binary.BigEndian.AppendUint32(hdr, 4096)
	c.Write(hdr)
	time.Sleep(30 * time.Millisecond) // let the handler reach the blocking read

	done := make(chan error, 1)
	go func() { done <- n.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on an in-flight inbound session")
	}
	waitGoroutines(t, baseline)
}

// TestSyncTimeoutCutsSilentPeer: a connection that goes silent after
// connecting is cut within the idle window instead of holding its
// handler forever.
func TestSyncTimeoutCutsSilentPeer(t *testing.T) {
	srv := newMeshCounterNode(t, "srv", 1, replica.WithSyncTimeout(100*time.Millisecond))
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The server may report the violation with an error frame before
	// hanging up; what matters is that the session terminates within
	// the idle window rather than holding its handler forever.
	start := time.Now()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.Copy(io.Discard, c); err != nil {
		t.Fatalf("draining the cut session: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("silent peer held its handler for %v", d)
	}
}

// TestSessionTimeoutCutsDribblingPeer: one byte per idle window is
// progress forever under the idle deadline alone; the session deadline
// must cut the connection regardless.
func TestSessionTimeoutCutsDribblingPeer(t *testing.T) {
	srv := newMeshCounterNode(t, "srv", 1,
		replica.WithSyncTimeout(150*time.Millisecond),
		replica.WithSessionTimeout(300*time.Millisecond))
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Dribble a plausible frame header, then one body byte per 50ms —
	// always inside the idle window, never finishing.
	hdr := []byte{0x01}
	hdr = binary.BigEndian.AppendUint32(hdr, 1)
	hdr = binary.BigEndian.AppendUint32(hdr, 1<<20)
	if _, err := c.Write(hdr); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for time.Since(start) < 2*time.Second {
		if _, err := c.Write([]byte{0}); err != nil {
			break // server cut us off
		}
		time.Sleep(50 * time.Millisecond)
	}
	if d := time.Since(start); d >= 2*time.Second {
		t.Fatalf("dribbling peer survived %v past the session deadline", d)
	}
}
