package replica_test

import (
	"errors"
	"fmt"
	"net"
	"testing"

	"repro/internal/counter"
	"repro/internal/mlog"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/wire"
)

// commitsMoved sums the commits shipped in both directions between two
// stats snapshots of the same node.
func commitsMoved(before, after replica.SyncStats) int64 {
	return (after.CommitsSent - before.CommitsSent) + (after.CommitsRecv - before.CommitsRecv)
}

func bytesMoved(before, after replica.SyncStats) int64 {
	return (after.BytesSent - before.BytesSent) + (after.BytesRecv - before.BytesRecv)
}

// peek reads a counter node's value without committing an operation (Do
// with a Read op would append a commit and de-converge the fleet).
func peek(t *testing.T, n *counterNode) int64 {
	t.Helper()
	s, err := n.obj.State()
	if err != nil {
		t.Fatal(err)
	}
	return s.P - s.N
}

// TestDeltaResyncTransfersNothing is the heart of the refactor: once a
// pair has converged, another sync ships zero commits and O(frontier)
// bytes, independent of how long the shared history is.
func TestDeltaResyncTransfersNothing(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	const history = 300
	for i := 0; i < history; i++ {
		if i%2 == 0 {
			inc(t, a, 1)
		} else {
			inc(t, b, 1)
		}
		if i%32 == 31 {
			if err := a.SyncWith(b.Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}

	before := a.Stats()
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	after := a.Stats()
	if moved := commitsMoved(before, after); moved != 0 {
		t.Fatalf("re-sync of a converged pair moved %d commits, want 0", moved)
	}
	// One hello each way plus two empty deltas: a few KiB of frontier,
	// however long the history. 300+ commits of full export would be far
	// larger (each commit alone carries a 32-byte parent hash + state).
	if by := bytesMoved(before, after); by > 16<<10 {
		t.Fatalf("re-sync cost %d bytes, want O(frontier)", by)
	}
	if after.Fallbacks != before.Fallbacks {
		t.Fatal("converged re-sync must not fall back to full export")
	}

	// The same re-sync through the legacy protocol moves the whole
	// history — the contrast the delta engine exists to eliminate.
	a.SetFullSyncOnly(true)
	defer a.SetFullSyncOnly(false)
	before = a.Stats()
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	after = a.Stats()
	if moved := commitsMoved(before, after); moved < int64(history) {
		t.Fatalf("full re-sync moved %d commits, expected at least the %d-op history", moved, history)
	}
}

// TestDeltaCrissCrossConverges drives alternating-direction syncs with
// operations interleaved on both sides, producing criss-cross merge
// patterns in the DAG; the delta path must converge exactly like the
// full path, with the store's virtual merge bases doing their job.
func TestDeltaCrissCrossConverges(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	var want int64
	for round := 0; round < 6; round++ {
		inc(t, a, 1)
		inc(t, b, 10)
		want += 11
		var err error
		if round%2 == 0 {
			err = a.SyncWith(b.Addr())
		} else {
			err = b.SyncWith(a.Addr())
		}
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if av, bv := read(t, a), read(t, b); av != want || bv != want {
			t.Fatalf("round %d: a=%d b=%d, want %d", round, av, bv, want)
		}
	}
	if st := a.Stats(); st.DeltaSyncs == 0 || st.Fallbacks != 0 {
		t.Fatalf("criss-cross must run on the delta path: %+v", st)
	}
}

// TestDeltaRingGossip replays the third-party-gossip scenario on the
// delta path: history reaches a node indirectly around the ring, the
// store's LCA sees through it, and once the ring has converged a further
// gossip round moves zero commits.
func TestDeltaRingGossip(t *testing.T) {
	eu := newCounterNode(t, "eu", 1)
	us := newCounterNode(t, "us", 2)
	ap := newCounterNode(t, "ap", 3)
	ring := []*counterNode{eu, us, ap}
	inc(t, eu, 1)
	inc(t, us, 10)
	inc(t, ap, 100)
	ringRound := func() {
		t.Helper()
		if err := eu.SyncWith(us.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := us.SyncWith(ap.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := ap.SyncWith(eu.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		ringRound()
	}
	for _, n := range ring {
		if v := peek(t, n); v != 111 {
			t.Fatalf("%s = %d, want 111 (no double counting around the ring)", n.Name(), v)
		}
	}
	// Converged ring: one more full round is all frontier, no commits.
	var before [3]replica.SyncStats
	for i, n := range ring {
		before[i] = n.Stats()
	}
	ringRound()
	var moved int64
	for i, n := range ring {
		after := n.Stats()
		moved += after.CommitsSent - before[i].CommitsSent
		if after.Fallbacks != before[i].Fallbacks {
			t.Fatalf("%s fell back to full export on a converged ring", n.Name())
		}
	}
	if moved != 0 {
		t.Fatalf("converged ring round shipped %d commits, want 0", moved)
	}
}

// TestDeltaMeshGossip interleaves operations with syncs across every pair
// of a four-node mesh, then checks convergence and that a final sweep
// over all pairs ships zero commits.
func TestDeltaMeshGossip(t *testing.T) {
	const nodes = 4
	var mesh []*counterNode
	var want int64
	for i := 0; i < nodes; i++ {
		mesh = append(mesh, newCounterNode(t, fmt.Sprintf("m%d", i), i+1))
	}
	sweep := func() {
		t.Helper()
		for i := range mesh {
			for j := range mesh {
				if i == j {
					continue
				}
				if err := mesh[i].SyncWith(mesh[j].Addr()); err != nil {
					t.Fatalf("sync m%d -> m%d: %v", i, j, err)
				}
			}
		}
	}
	for round := 0; round < 3; round++ {
		for i, n := range mesh {
			amt := int64(i + 1)
			inc(t, n, amt)
			want += amt
		}
		sweep()
	}
	for i, n := range mesh {
		if v := peek(t, n); v != want {
			t.Fatalf("m%d = %d, want %d", i, v, want)
		}
	}
	var before []replica.SyncStats
	for _, n := range mesh {
		before = append(before, n.Stats())
	}
	sweep()
	var moved int64
	for i, n := range mesh {
		moved += n.Stats().CommitsSent - before[i].CommitsSent
	}
	if moved != 0 {
		t.Fatalf("converged mesh sweep shipped %d commits, want 0", moved)
	}
}

// legacyV1Server is a minimal peer speaking only the legacy one-shot
// protocol: any v2 hello is answered with an error, exactly like a
// pre-delta node. It drives the client's fallback path.
func legacyV1Server(t *testing.T) (addr string, st *store.Store[counter.PNState, counter.Op, counter.Val]) {
	t.Helper()
	st = store.NewAt[counter.PNState, counter.Op, counter.Val](
		counter.PNCounter{}, wire.PNCounter{}, "legacy", 900*64)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				kind, fields, err := wire.ReadMsg(conn)
				if err != nil || kind != wire.FrameSyncRequest || len(fields) != 2 {
					wire.WriteMsg(conn, wire.FrameErr, []byte("bad request"))
					return
				}
				commits, head, err := wire.DecodeCommitList(fields[1])
				if err != nil {
					wire.WriteMsg(conn, wire.FrameErr, []byte(err.Error()))
					return
				}
				track := "remote/" + string(fields[0])
				if err := st.Import(track, commits, head); err != nil {
					wire.WriteMsg(conn, wire.FrameErr, []byte(err.Error()))
					return
				}
				if err := st.Pull("legacy", track); err != nil {
					wire.WriteMsg(conn, wire.FrameErr, []byte(err.Error()))
					return
				}
				reply, replyHead, err := st.Export("legacy")
				if err != nil {
					wire.WriteMsg(conn, wire.FrameErr, []byte(err.Error()))
					return
				}
				wire.WriteMsg(conn, wire.FrameSyncResponse, wire.EncodeCommitList(reply, replyHead))
			}(conn)
		}
	}()
	return ln.Addr().String(), st
}

func TestFallbackToLegacyPeer(t *testing.T) {
	addr, legacy := legacyV1Server(t)
	if _, err := legacy.Apply("legacy", counter.Op{Kind: counter.Inc, N: 5}); err != nil {
		t.Fatal(err)
	}
	a := newCounterNode(t, "a", 1)
	inc(t, a, 2)
	if err := a.SyncWith(addr); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Fallbacks != 1 || st.FullSyncs != 1 || st.DeltaSyncs != 0 {
		t.Fatalf("expected one fallback to one full sync, got %+v", st)
	}
	if v := read(t, a); v != 7 {
		t.Fatalf("a = %d, want 7 after merging the legacy peer", v)
	}
	lv, err := legacy.Head("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if got := lv.P - lv.N; got != 7 {
		t.Fatalf("legacy = %d, want 7", got)
	}
}

func TestSetFullSyncOnly(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	a.SetFullSyncOnly(true)
	inc(t, a, 3)
	inc(t, b, 4)
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.FullSyncs != 1 || st.DeltaSyncs != 0 || st.Fallbacks != 0 {
		t.Fatalf("forced full sync stats: %+v", st)
	}
	if av, bv := read(t, a), read(t, b); av != 7 || bv != 7 {
		t.Fatalf("a=%d b=%d, want 7", av, bv)
	}
	// The server side of that exchange ran the v1 handler.
	if st := b.Stats(); st.FullSyncs != 1 {
		t.Fatalf("server should count a full sync: %+v", st)
	}
}

// TestDeltaShipsOnlyTheGap checks the proportionality claim directly: a
// node that falls k commits behind receives O(k) commits, not the whole
// history.
func TestDeltaShipsOnlyTheGap(t *testing.T) {
	a := newCounterNode(t, "a", 1)
	b := newCounterNode(t, "b", 2)
	for i := 0; i < 100; i++ {
		inc(t, a, 1)
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	const gap = 5
	for i := 0; i < gap; i++ {
		inc(t, a, 1)
	}
	before := a.Stats()
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	after := a.Stats()
	// a ships its gap commits; b's reply adds at most a couple of merge
	// commits on top.
	if moved := commitsMoved(before, after); moved > gap+3 {
		t.Fatalf("gap of %d commits moved %d, want O(gap)", gap, moved)
	}
	if av, bv := read(t, a), read(t, b); av != bv {
		t.Fatalf("diverged: a=%d b=%d", av, bv)
	}
	var pe *wire.PeerError
	if errors.As(errors.New("x"), &pe) {
		t.Fatal("sanity")
	}
}

// logNode hosts a mergeable-log object — unlike the 16-byte PN-counter
// state, a growing log is where the pack layer's patches actually beat
// full encodings, so these are the nodes the packed-dialect tests use.
type logNode struct {
	*replica.Node
	obj *replica.TypedObject[mlog.State, mlog.Op, mlog.Val]
}

func newLogNode(t *testing.T, name string, id int) *logNode {
	t.Helper()
	n, err := replica.NewNode(name, id)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := replica.Ensure[mlog.State, mlog.Op, mlog.Val](
		n, "log", "mlog", mlog.Log{}, wire.MLog{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return &logNode{Node: n, obj: obj}
}

func appendLog(t *testing.T, n *logNode, count int, tag string) {
	t.Helper()
	for i := 0; i < count; i++ {
		if _, err := n.obj.Do(mlog.Op{Kind: mlog.Append, Msg: fmt.Sprintf("%s %s entry %04d", n.Name(), tag, i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func logLen(t *testing.T, n *logNode) int {
	t.Helper()
	s, err := n.obj.State()
	if err != nil {
		t.Fatal(err)
	}
	return len(s)
}

// TestPackedSyncShipsPatches: two current nodes negotiate the packed
// dialect and most of a deep log history crosses the wire as binary
// patches, not full states.
func TestPackedSyncShipsPatches(t *testing.T) {
	a := newLogNode(t, "a", 1)
	b := newLogNode(t, "b", 2)
	appendLog(t, a, 80, "deep")
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if la, lb := logLen(t, a), logLen(t, b); la != 80 || lb != 80 {
		t.Fatalf("log lengths a=%d b=%d, want 80", la, lb)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.DeltaSyncs != 1 || sa.Fallbacks != 0 {
		t.Fatalf("client stats: %+v", sa)
	}
	// The bulk of 80+ shipped commits must have traveled as patches
	// (snapshot-boundary commits and the root ship full).
	if sa.PatchesSent < int64(sa.CommitsSent)/2 || sa.PatchesSent == 0 {
		t.Fatalf("client shipped %d patches of %d commits", sa.PatchesSent, sa.CommitsSent)
	}
	if sb.PatchesRecv != sa.PatchesSent {
		t.Fatalf("server received %d patches, client sent %d", sb.PatchesRecv, sa.PatchesSent)
	}
	// And the packed transfer must be far smaller than the full-state
	// transfer of the same history: re-sync a fresh legacy-mode pair as
	// the yardstick.
	c := newLogNode(t, "c", 3)
	d := newLogNode(t, "d", 4)
	appendLog(t, c, 80, "deep")
	c.SetFullSyncOnly(true)
	if err := c.SyncWith(d.Addr()); err != nil {
		t.Fatal(err)
	}
	if packed, full := sa.BytesSent, c.Stats().BytesSent; packed*2 > full {
		t.Fatalf("packed deep sync sent %d bytes, full sent %d — expected at least 2x win", packed, full)
	}
}

// plainV2Server speaks the pre-capability delta protocol verbatim:
// strict one-field hellos, full-state chunks — what a PR 1–3 node
// answers. It drives the packed→plain downgrade path.
func plainV2Server(t *testing.T) (string, *store.Store[counter.PNState, counter.Op, counter.Val]) {
	t.Helper()
	st := store.NewAt[counter.PNState, counter.Op, counter.Val](
		counter.PNCounter{}, wire.PNCounter{}, "v2", 901*64)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					kind, fields, err := wire.ReadMsg(conn)
					if err != nil {
						return
					}
					if kind != wire.FrameHello || len(fields) != 1 {
						wire.WriteMsg(conn, wire.FrameErr, []byte("bad hello"))
						return
					}
					hello, err := wire.DecodeHello(fields[0])
					if err != nil {
						wire.WriteMsg(conn, wire.FrameErr, []byte(err.Error()))
						return
					}
					f, err := st.Frontier("v2")
					if err != nil {
						wire.WriteMsg(conn, wire.FrameErr, []byte(err.Error()))
						return
					}
					ack := wire.Hello{Node: "v2", Object: hello.Object, Datatype: hello.Datatype, Frontier: f}
					if err := wire.WriteMsg(conn, wire.FrameHelloAck, wire.EncodeHello(ack)); err != nil {
						return
					}
					commits, head, err := wire.ReadDelta(conn)
					if err != nil {
						return
					}
					track := "remote/" + hello.Node
					if err := st.Import(track, commits, head); err != nil {
						wire.WriteMsg(conn, wire.FrameErr, []byte(err.Error()))
						return
					}
					if err := st.Pull("v2", track); err != nil {
						wire.WriteMsg(conn, wire.FrameErr, []byte(err.Error()))
						return
					}
					reply, replyHead, err := st.ExportSince("v2", hello.Frontier.HaveSet())
					if err != nil {
						wire.WriteMsg(conn, wire.FrameErr, []byte(err.Error()))
						return
					}
					if err := wire.WriteDelta(conn, reply, replyHead); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), st
}

// TestPlainV2PeerDowngrade: a packed-dialect client meeting a strict
// pre-capability peer retries with plain hellos and still completes a
// delta sync — no patches, no v1 fallback.
func TestPlainV2PeerDowngrade(t *testing.T) {
	addr, st := plainV2Server(t)
	if _, err := st.Apply("v2", counter.Op{Kind: counter.Inc, N: 5}); err != nil {
		t.Fatal(err)
	}
	a := newCounterNode(t, "a", 1)
	inc(t, a, 2)
	if err := a.SyncWith(addr); err != nil {
		t.Fatal(err)
	}
	sa := a.Stats()
	if sa.DeltaSyncs != 1 || sa.FullSyncs != 0 || sa.Fallbacks != 0 {
		t.Fatalf("downgrade stats: %+v", sa)
	}
	if sa.PatchesSent != 0 || sa.PatchesRecv != 0 {
		t.Fatalf("plain dialect must carry no patches: %+v", sa)
	}
	if v := read(t, a); v != 7 {
		t.Fatalf("a = %d, want 7 after merging the plain-v2 peer", v)
	}
	hv, err := st.Head("v2")
	if err != nil {
		t.Fatal(err)
	}
	if got := hv.P - hv.N; got != 7 {
		t.Fatalf("v2 peer = %d, want 7", got)
	}
	// The dialect is remembered: a second sync skips the doomed
	// capability probe and still completes a plain delta exchange.
	inc(t, a, 3)
	if err := a.SyncWith(addr); err != nil {
		t.Fatal(err)
	}
	if sa := a.Stats(); sa.DeltaSyncs != 2 || sa.FullSyncs != 0 || sa.Fallbacks != 0 {
		t.Fatalf("re-sync stats after remembered downgrade: %+v", sa)
	}
	if v := read(t, a); v != 10 {
		t.Fatalf("a = %d, want 10 after the second exchange", v)
	}
}
