package replica

// Watch: notification channels for remote-merge head moves. A watcher is
// a bounded channel fed from the sync path's Integrate — the single
// place every remote commit enters the node branch, whether the node was
// the client or the server of the exchange. Local commits never produce
// events (the application made them; it does not need to be told), which
// makes Watch exactly the "something changed under you" signal a live UI
// or cache needs.

import (
	"context"
	"sync"

	"repro/internal/store"
)

// watchBuffer is each watcher channel's capacity. A consumer that lags
// further behind loses the oldest events first: head moves supersede one
// another, so the newest is the one that matters.
const watchBuffer = 16

// WatchEvent reports one remote-merge head move of a watched object: a
// sync exchange with peer From moved the node branch's head to Head.
type WatchEvent struct {
	// Object is the object's name on the node.
	Object string
	// From is the name of the peer node whose commits moved the head.
	From string
	// Head is the branch's new head commit hash.
	Head store.Hash
}

// watcher is one Watch subscription.
type watcher struct {
	ch chan WatchEvent
}

// watcherSet holds one object's Watch subscribers.
type watcherSet struct {
	mu     sync.Mutex
	ws     map[*watcher]struct{}
	closed bool
	done   chan struct{} // closed when the node shuts the set down
}

func newWatcherSet() *watcherSet {
	return &watcherSet{ws: make(map[*watcher]struct{}), done: make(chan struct{})}
}

// add registers a watcher. The returned channel closes when ctx is
// cancelled or the node closes; the detaching goroutine exits on either,
// so cancelled watchers do not accumulate.
func (s *watcherSet) add(ctx context.Context) <-chan WatchEvent {
	ch := make(chan WatchEvent, watchBuffer)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(ch)
		return ch
	}
	w := &watcher{ch: ch}
	s.ws[w] = struct{}{}
	s.mu.Unlock()
	go func() {
		select {
		case <-ctx.Done():
		case <-s.done:
		}
		s.remove(w)
	}()
	return ch
}

// remove detaches w, closing its channel exactly once. The channel is
// only closed after w leaves the set, so broadcast never races a send
// against the close.
func (s *watcherSet) remove(w *watcher) {
	s.mu.Lock()
	_, present := s.ws[w]
	delete(s.ws, w)
	s.mu.Unlock()
	if present {
		close(w.ch)
	}
}

// shutdown detaches every watcher; the per-watcher goroutines, unblocked
// by done, perform the removals. Idempotent.
func (s *watcherSet) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
}

// broadcast delivers ev to every watcher without ever blocking the sync
// path: a full channel drops its oldest event to make room, so a slow
// consumer sees the newest head moves, not the stalest.
func (s *watcherSet) broadcast(ev WatchEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for w := range s.ws {
		for {
			select {
			case w.ch <- ev:
			default:
				// Full: drop the oldest and retry. The set's lock makes
				// this goroutine the only sender, so the retry lands.
				select {
				case <-w.ch:
				default:
				}
				continue
			}
			break
		}
	}
}
