package replica

// Node construction options. A NodeOption configures node-level concerns
// — durable storage, fsync policy — or carries store options through to
// every object store the node opens.

import (
	"path/filepath"
	"strings"
	"time"

	"repro/internal/disk"
	"repro/internal/mesh"
	"repro/internal/store"
)

// nodeConfig collects a node's construction-time settings.
type nodeConfig struct {
	storeOpts  []store.Option
	storageDir string
	fsync      disk.Policy
	segBytes   int64
	// checkpointEvery overrides the log's checkpoint cadence when ckptSet
	// (zero and below disable checkpoints); verifyOnOpen turns the full
	// pack verification back on at open time.
	checkpointEvery int
	ckptSet         bool
	verifyOnOpen    bool
	// peers seeds the mesh engine's supervised peer set; the mesh*
	// fields tune its cadence (zero values keep the engine defaults,
	// meshJitterSet distinguishes "explicitly no jitter" from unset).
	peers          []string
	meshInterval   time.Duration
	meshJitter     time.Duration
	meshJitterSet  bool
	meshBackoffMin time.Duration
	meshBackoffMax time.Duration
}

// NodeOption adjusts node construction.
type NodeOption func(*nodeConfig)

// WithStoreOptions passes store options (frontier sampling caps,
// snapshot spacing, cache sizes) through to every object store the node
// opens.
func WithStoreOptions(opts ...store.Option) NodeOption {
	return func(c *nodeConfig) { c.storeOpts = append(c.storeOpts, opts...) }
}

// WithStorage makes the node durable: every object opened on it keeps a
// segmented pack log (internal/disk) in its own subdirectory of dir, and
// reopening a node with the same name over the same directory resumes
// every object with its full history, branches and clocks intact.
func WithStorage(dir string) NodeOption {
	return func(c *nodeConfig) { c.storageDir = dir }
}

// WithFsync sets the fsync policy of the node's object logs; it has no
// effect without WithStorage.
func WithFsync(p disk.Policy) NodeOption {
	return func(c *nodeConfig) { c.fsync = p }
}

// WithSegmentBytes sets the log segment rotation threshold of the
// node's object logs; it has no effect without WithStorage.
func WithSegmentBytes(n int64) NodeOption {
	return func(c *nodeConfig) { c.segBytes = n }
}

// WithCheckpointEvery sets the checkpoint cadence of the node's object
// logs: after n mutations (a floor — deep logs throttle to geometric
// spacing) the log writes an index checkpoint, so reopening seeks past
// history instead of replaying it. Zero or negative disables
// checkpointing. It has no effect without WithStorage.
func WithCheckpointEvery(n int) NodeOption {
	return func(c *nodeConfig) { c.checkpointEvery, c.ckptSet = n, true }
}

// WithVerifyOnOpen makes every object open fully verify its recovered
// pack — reassembling and decoding each retained state — before the
// object is handed out, failing at open instead of on first read. The
// default (off) validates the commit index only and leaves state bytes
// on disk until used, which is what keeps reopening flat in history
// depth. It has no effect without WithStorage.
func WithVerifyOnOpen(v bool) NodeOption {
	return func(c *nodeConfig) { c.verifyOnOpen = v }
}

// WithPeers seeds the node's always-on sync daemon with peer addresses:
// from construction on, a supervisor goroutine per address runs jittered
// anti-entropy rounds and receives push-on-commit notifications, with
// exponential backoff while a peer is unreachable. Equivalent to calling
// AddPeer for each address right after NewNode.
func WithPeers(addrs ...string) NodeOption {
	return func(c *nodeConfig) { c.peers = append(c.peers, addrs...) }
}

// WithMeshInterval sets the daemon's anti-entropy round period per peer
// (default 2s). Zero and below keep the default.
func WithMeshInterval(d time.Duration) NodeOption {
	return func(c *nodeConfig) { c.meshInterval = d }
}

// WithMeshJitter caps the random addition to each round's delay (default
// a quarter of the interval). Zero disables jitter entirely.
func WithMeshJitter(d time.Duration) NodeOption {
	return func(c *nodeConfig) { c.meshJitter, c.meshJitterSet = d, true }
}

// WithMeshBackoff sets the daemon's failure retry window: min is the
// delay after a first failure, doubling per consecutive failure up to
// max (defaults 250ms and 30s). Non-positive values keep the defaults.
func WithMeshBackoff(min, max time.Duration) NodeOption {
	return func(c *nodeConfig) { c.meshBackoffMin, c.meshBackoffMax = min, max }
}

// meshConfig assembles the mesh engine configuration.
func (c *nodeConfig) meshConfig() mesh.Config {
	mc := mesh.Config{
		Interval:   c.meshInterval,
		BackoffMin: c.meshBackoffMin,
		BackoffMax: c.meshBackoffMax,
	}
	if c.meshJitterSet {
		mc.Jitter = c.meshJitter
		if c.meshJitter == 0 {
			mc.Jitter = -1 // explicit zero means "no jitter", not "default"
		}
	}
	return mc
}

// objectDirName maps an object name to a filesystem-safe directory name:
// alphanumerics, dot, dash and underscore pass through, every other byte
// is %XX-escaped — deterministic, collision-free, and readable for the
// common case of simple names.
func objectDirName(object string) string {
	var b strings.Builder
	b.WriteString("obj-")
	for i := 0; i < len(object); i++ {
		c := object[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
			b.WriteByte(c)
		default:
			const hex = "0123456789ABCDEF"
			b.WriteByte('%')
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xF])
		}
	}
	return b.String()
}

// objectDir is the storage directory of one object's log.
func (c *nodeConfig) objectDir(object string) string {
	return filepath.Join(c.storageDir, objectDirName(object))
}

// logOptions assembles the disk options for one object log.
func (c *nodeConfig) logOptions() []disk.Option {
	opts := []disk.Option{disk.WithFsync(c.fsync)}
	if c.segBytes > 0 {
		opts = append(opts, disk.WithSegmentBytes(c.segBytes))
	}
	if c.ckptSet {
		opts = append(opts, disk.WithCheckpointEvery(c.checkpointEvery))
	}
	return opts
}
