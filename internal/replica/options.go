package replica

// Node construction options. A NodeOption configures node-level concerns
// — durable storage, fsync policy — or carries store options through to
// every object store the node opens.

import (
	"path/filepath"
	"strings"
	"time"

	"repro/internal/disk"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/store"
)

// nodeConfig collects a node's construction-time settings.
type nodeConfig struct {
	storeOpts  []store.Option
	storageDir string
	fsync      disk.Policy
	segBytes   int64
	// checkpointEvery overrides the log's checkpoint cadence when ckptSet
	// (zero and below disable checkpoints); verifyOnOpen turns the full
	// pack verification back on at open time.
	checkpointEvery int
	ckptSet         bool
	verifyOnOpen    bool
	// peers seeds the mesh engine's supervised peer set; the mesh*
	// fields tune its cadence (zero values keep the engine defaults,
	// meshJitterSet distinguishes "explicitly no jitter" from unset).
	peers          []string
	meshInterval   time.Duration
	meshJitter     time.Duration
	meshJitterSet  bool
	meshBackoffMin time.Duration
	meshBackoffMax time.Duration
	// meshQuar* tune the quarantine schedule for protocol-violating
	// peers (zero values keep the engine defaults).
	meshQuarAfter int
	meshQuarMin   time.Duration
	meshQuarMax   time.Duration
	// transport overrides how the node dials and listens (nil = TCP).
	transport Transport
	// maxInbound caps concurrent inbound sync sessions; zero selects the
	// default, negative means unlimited.
	maxInbound int
	// syncTO is the per-read/write idle bound of a sync exchange;
	// sessionTO bounds a whole session (sessionTOSet distinguishes
	// "explicitly unbounded" from unset).
	syncTO       time.Duration
	sessionTO    time.Duration
	sessionTOSet bool
	// obsEnabled turns on the node's metrics registry and flight
	// recorder (WithObservability, or WithDebugAddr which implies it);
	// debugAddr, when set, serves the live debug endpoint. obsReg and
	// obsRec are resolved by NewNode once the options are folded, so
	// the store, disk and mesh layers all share the node's registry.
	obsEnabled bool
	debugAddr  string
	obsReg     *obs.Registry
	obsRec     *obs.Recorder
}

// defaultMaxInbound is the default cap on concurrent inbound sync
// sessions.
const defaultMaxInbound = 64

// transportOrTCP resolves the node's transport.
func (c *nodeConfig) transportOrTCP() Transport {
	if c.transport != nil {
		return c.transport
	}
	return TCPTransport{}
}

// inboundLimit resolves the inbound session cap.
func (c *nodeConfig) inboundLimit() int {
	switch {
	case c.maxInbound > 0:
		return c.maxInbound
	case c.maxInbound < 0:
		return int(^uint(0) >> 1) // effectively unlimited
	}
	return defaultMaxInbound
}

// syncTimeout resolves the per-operation idle bound.
func (c *nodeConfig) syncTimeout() time.Duration {
	if c.syncTO > 0 {
		return c.syncTO
	}
	return defaultSyncTimeout
}

// sessionTimeout resolves the whole-session bound (zero = unbounded).
func (c *nodeConfig) sessionTimeout() time.Duration {
	if c.sessionTOSet {
		return max(c.sessionTO, 0)
	}
	return defaultSessionTimeout
}

// NodeOption adjusts node construction.
type NodeOption func(*nodeConfig)

// WithStoreOptions passes store options (frontier sampling caps,
// snapshot spacing, cache sizes) through to every object store the node
// opens.
func WithStoreOptions(opts ...store.Option) NodeOption {
	return func(c *nodeConfig) { c.storeOpts = append(c.storeOpts, opts...) }
}

// WithStorage makes the node durable: every object opened on it keeps a
// segmented pack log (internal/disk) in its own subdirectory of dir, and
// reopening a node with the same name over the same directory resumes
// every object with its full history, branches and clocks intact.
func WithStorage(dir string) NodeOption {
	return func(c *nodeConfig) { c.storageDir = dir }
}

// WithFsync sets the fsync policy of the node's object logs; it has no
// effect without WithStorage.
func WithFsync(p disk.Policy) NodeOption {
	return func(c *nodeConfig) { c.fsync = p }
}

// WithSegmentBytes sets the log segment rotation threshold of the
// node's object logs; it has no effect without WithStorage.
func WithSegmentBytes(n int64) NodeOption {
	return func(c *nodeConfig) { c.segBytes = n }
}

// WithCheckpointEvery sets the checkpoint cadence of the node's object
// logs: after n mutations (a floor — deep logs throttle to geometric
// spacing) the log writes an index checkpoint, so reopening seeks past
// history instead of replaying it. Zero or negative disables
// checkpointing. It has no effect without WithStorage.
func WithCheckpointEvery(n int) NodeOption {
	return func(c *nodeConfig) { c.checkpointEvery, c.ckptSet = n, true }
}

// WithVerifyOnOpen makes every object open fully verify its recovered
// pack — reassembling and decoding each retained state — before the
// object is handed out, failing at open instead of on first read. The
// default (off) validates the commit index only and leaves state bytes
// on disk until used, which is what keeps reopening flat in history
// depth. It has no effect without WithStorage.
func WithVerifyOnOpen(v bool) NodeOption {
	return func(c *nodeConfig) { c.verifyOnOpen = v }
}

// WithPeers seeds the node's always-on sync daemon with peer addresses:
// from construction on, a supervisor goroutine per address runs jittered
// anti-entropy rounds and receives push-on-commit notifications, with
// exponential backoff while a peer is unreachable. Equivalent to calling
// AddPeer for each address right after NewNode.
func WithPeers(addrs ...string) NodeOption {
	return func(c *nodeConfig) { c.peers = append(c.peers, addrs...) }
}

// WithMeshInterval sets the daemon's anti-entropy round period per peer
// (default 2s). Zero and below keep the default.
func WithMeshInterval(d time.Duration) NodeOption {
	return func(c *nodeConfig) { c.meshInterval = d }
}

// WithMeshJitter caps the random addition to each round's delay (default
// a quarter of the interval). Zero disables jitter entirely.
func WithMeshJitter(d time.Duration) NodeOption {
	return func(c *nodeConfig) { c.meshJitter, c.meshJitterSet = d, true }
}

// WithMeshBackoff sets the daemon's failure retry window: min is the
// delay after a first failure, doubling per consecutive failure up to
// max (defaults 250ms and 30s). Non-positive values keep the defaults.
func WithMeshBackoff(min, max time.Duration) NodeOption {
	return func(c *nodeConfig) { c.meshBackoffMin, c.meshBackoffMax = min, max }
}

// WithMeshQuarantine tunes how the daemon quarantines protocol-violating
// peers: after violations in a row without an intervening success (ones
// the classifier marks — corrupt frames, bad hellos, hash mismatches) a
// peer moves to the quarantine retry schedule, min doubling to max per
// further violation (defaults 3, 1m, 15m). Non-positive values keep the
// defaults. PeerMeshStats reports the state and the recorded reason.
func WithMeshQuarantine(after int, min, max time.Duration) NodeOption {
	return func(c *nodeConfig) {
		c.meshQuarAfter, c.meshQuarMin, c.meshQuarMax = after, min, max
	}
}

// WithTransport makes the node dial and listen through t instead of
// plain TCP — the injection point for fault-injection transports
// (internal/faultnet) and, later, authenticated ones.
func WithTransport(t Transport) NodeOption {
	return func(c *nodeConfig) { c.transport = t }
}

// WithMaxInbound caps the node's concurrent inbound sync sessions
// (default 64): connections accepted past the cap are closed promptly
// and counted in SyncStats.InboundShed, so a dial storm cannot pile up
// goroutines. Zero keeps the default; negative removes the cap.
func WithMaxInbound(n int) NodeOption {
	return func(c *nodeConfig) { c.maxInbound = n }
}

// WithSyncTimeout bounds how long one read or write of a sync exchange
// may stall before the connection errors out (default 30s). A peer that
// keeps making progress can transfer arbitrarily much; one that goes
// silent is cut off. Zero and below keep the default.
func WithSyncTimeout(d time.Duration) NodeOption {
	return func(c *nodeConfig) { c.syncTO = d }
}

// WithObservability turns on the node's flight recorder and metrics
// registry: every layer — wire framing, store merges, disk appends,
// mesh rounds, sync sessions — records into one obs.Registry, sync
// sessions leave trace spans retrievable with Trace, and the registry
// is exposed through Registry (and, with WithDebugAddr, over HTTP).
// Off by default; the disabled hot paths pay one nil check per site.
func WithObservability() NodeOption {
	return func(c *nodeConfig) { c.obsEnabled = true }
}

// WithDebugAddr serves the node's debug endpoint on addr ("127.0.0.1:0"
// picks a free port — read it back with DebugAddr): /metrics in
// Prometheus text format, /debug/peepul/snapshot (one JSON document
// unifying sync stats, per-object stats, mesh peer state, the metric
// registry and the recent trace), /debug/peepul/trace, /healthz, and
// the net/http/pprof profiles under /debug/pprof/. Implies
// WithObservability.
func WithDebugAddr(addr string) NodeOption {
	return func(c *nodeConfig) { c.debugAddr, c.obsEnabled = addr, true }
}

// WithSessionTimeout bounds a whole sync session, client or server side
// (default 3m). The idle timeout cannot stop a dribbling peer — one
// byte per idle window is progress forever — and a client exchange
// holds the node's branch freeze, so this is the hard cap on how long
// any one peer can hold it. Zero or negative disables the bound.
func WithSessionTimeout(d time.Duration) NodeOption {
	return func(c *nodeConfig) { c.sessionTO, c.sessionTOSet = d, true }
}

// meshConfig assembles the mesh engine configuration.
func (c *nodeConfig) meshConfig() mesh.Config {
	mc := mesh.Config{
		Interval:        c.meshInterval,
		BackoffMin:      c.meshBackoffMin,
		BackoffMax:      c.meshBackoffMax,
		Classify:        classifyFailure,
		QuarantineAfter: c.meshQuarAfter,
		QuarantineMin:   c.meshQuarMin,
		QuarantineMax:   c.meshQuarMax,
	}
	if c.meshJitterSet {
		mc.Jitter = c.meshJitter
		if c.meshJitter == 0 {
			mc.Jitter = -1 // explicit zero means "no jitter", not "default"
		}
	}
	mc.Obs = c.obsReg
	mc.Recorder = c.obsRec
	return mc
}

// storeOptions assembles the store options for one object, including
// the node's observability registry when enabled.
func (c *nodeConfig) storeOptions() []store.Option {
	opts := append([]store.Option(nil), c.storeOpts...)
	if c.obsReg != nil {
		opts = append(opts, store.WithObs(c.obsReg))
	}
	return opts
}

// objectDirName maps an object name to a filesystem-safe directory name:
// alphanumerics, dot, dash and underscore pass through, every other byte
// is %XX-escaped — deterministic, collision-free, and readable for the
// common case of simple names.
func objectDirName(object string) string {
	var b strings.Builder
	b.WriteString("obj-")
	for i := 0; i < len(object); i++ {
		c := object[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
			b.WriteByte(c)
		default:
			const hex = "0123456789ABCDEF"
			b.WriteByte('%')
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xF])
		}
	}
	return b.String()
}

// objectDir is the storage directory of one object's log.
func (c *nodeConfig) objectDir(object string) string {
	return filepath.Join(c.storageDir, objectDirName(object))
}

// logOptions assembles the disk options for one object log.
func (c *nodeConfig) logOptions() []disk.Option {
	opts := []disk.Option{disk.WithFsync(c.fsync)}
	if c.segBytes > 0 {
		opts = append(opts, disk.WithSegmentBytes(c.segBytes))
	}
	if c.ckptSet {
		opts = append(opts, disk.WithCheckpointEvery(c.checkpointEvery))
	}
	if c.obsReg != nil {
		opts = append(opts, disk.WithObs(c.obsReg))
	}
	return opts
}
