package replica

// The live debug endpoint (WithDebugAddr): a small HTTP server owned by
// the node serving /metrics (Prometheus text), /debug/peepul/snapshot
// (one JSON document unifying every Stats surface, the metric registry
// and the flight recorder), /debug/peepul/trace, /healthz, and the
// net/http/pprof profiles. The server shares the node's lifecycle: it
// starts inside NewNode and Close tears it down before waiting on the
// node's goroutines.

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/disk"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// DebugSnapshot is the one-document view served at
// /debug/peepul/snapshot: node identity, aggregate and per-object sync
// stats, per-peer mesh state, the full metric registry, and the
// recorder's retained spans and events.
type DebugSnapshot struct {
	Node      string                    `json:"node"`
	ReplicaID int                       `json:"replica_id"`
	Time      time.Time                 `json:"time"`
	Addr      string                    `json:"addr,omitempty"`
	Stats     SyncStats                 `json:"stats"`
	Objects   map[string]ObjectDebug    `json:"objects"`
	Mesh      map[string]mesh.PeerStats `json:"mesh"`
	Metrics   []obs.Metric              `json:"metrics"`
	Spans     []obs.Span                `json:"spans"`
	Events    []obs.Event               `json:"events"`
}

// ObjectDebug is one object's row in the snapshot.
type ObjectDebug struct {
	Datatype string `json:"datatype"`
	// Commits is the object's current commit count (the size of its
	// reconciliation tree).
	Commits int         `json:"commits"`
	Head    string      `json:"head,omitempty"`
	Stats   SyncStats   `json:"stats"`
	Storage *disk.Stats `json:"storage,omitempty"`
}

// storageStatser is the optional per-object storage stats surface
// (TypedObject implements it; only durable objects report true).
type storageStatser interface {
	StorageStats() (disk.Stats, bool)
}

// DebugSnapshot assembles the unified debug document. It works without
// WithDebugAddr — any observability-enabled node can be snapshotted in
// process — and degrades to the plain Stats surfaces when even that is
// off.
func (n *Node) DebugSnapshot() DebugSnapshot {
	snap := DebugSnapshot{
		Node:      n.name,
		ReplicaID: n.replicaID,
		Time:      time.Now(),
		Addr:      n.Addr(),
		Stats:     n.Stats(),
		Objects:   make(map[string]ObjectDebug),
		Mesh:      n.MeshStats(),
	}
	for _, name := range n.Objects() {
		o, ok := n.Object(name)
		if !ok {
			continue
		}
		od := ObjectDebug{Datatype: o.Datatype(), Stats: n.ObjectStats(name)}
		_, od.Commits = o.ReconRoot()
		if h, err := o.Head(); err == nil {
			od.Head = hex.EncodeToString(h[:])
		}
		if ss, ok := o.(storageStatser); ok {
			if st, durable := ss.StorageStats(); durable {
				stCopy := st
				od.Storage = &stCopy
			}
		}
		snap.Objects[name] = od
	}
	if reg := n.Registry(); reg != nil {
		snap.Metrics = reg.Snapshot()
	}
	tr := n.Trace()
	snap.Spans, snap.Events = tr.Spans, tr.Events
	return snap
}

// debugServer is the node-owned HTTP listener behind WithDebugAddr.
type debugServer struct {
	ln  net.Listener
	srv *http.Server
}

func (d *debugServer) close() {
	// Close (not Shutdown): the debug endpoint must never hold up node
	// teardown, and a truncated scrape is harmless.
	d.srv.Close()
}

// startDebug binds the debug address and starts serving; the accept
// loop runs on the node's WaitGroup so Close waits for it.
func (n *Node) startDebug(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		n.Registry().WriteProm(w)
	})
	mux.HandleFunc("/debug/peepul/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(n.DebugSnapshot())
	})
	mux.HandleFunc("/debug/peepul/trace", func(w http.ResponseWriter, r *http.Request) {
		tr := n.Trace()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, obs.FormatTrace(tr))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tr)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	n.debug = &debugServer{ln: ln, srv: srv}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The only expected exit is our own close; anything else is
			// already reported to the scraper by the failed request.
			_ = err
		}
	}()
	return nil
}

// DebugAddr returns the bound address of the node's debug endpoint
// ("" without WithDebugAddr) — with ":0" this is how callers learn the
// picked port.
func (n *Node) DebugAddr() string {
	if n.debug == nil {
		return ""
	}
	return n.debug.ln.Addr().String()
}
