// Package orset implements the paper's three observed-removed set MRDTs:
//
//   - OrSet: the unoptimized OR-set of §2.1.1 — a list of (element, id)
//     pairs that may contain duplicate elements under different ids.
//   - OrSetSpace: the space-efficient OR-set of §2.1.2 (Figure 2) — at most
//     one pair per element; a duplicate add refreshes the timestamp so the
//     add still wins against a concurrent remove.
//   - OrSetSpaceTime: the space- and time-optimized OR-set of §7.1 — the
//     same semantics as OrSetSpace over a persistent height-balanced binary
//     search tree, with O(log n) add/remove/lookup and a merge that
//     produces a height-balanced tree.
//
// All three satisfy the same add-wins specification F_orset (§2.2.1); their
// simulation relations (§4.2) differ.
package orset

import (
	"slices"

	"repro/internal/core"
)

// OpKind distinguishes OR-set operations.
type OpKind int

// OR-set operations.
const (
	Read OpKind = iota
	Add
	Remove
	Lookup
)

// Op is an OR-set operation. E is the element (ignored for Read).
type Op struct {
	Kind OpKind
	E    int64
}

// Val is an operation's return value.
type Val struct {
	Elems []int64 // Read: distinct elements, sorted ascending
	Found bool    // Lookup: membership
}

// ValEq compares return values.
func ValEq(a, b Val) bool {
	return a.Found == b.Found && slices.Equal(a.Elems, b.Elems)
}

// Pair is one (element, unique id) entry; the id is the timestamp of the
// add operation that produced it.
type Pair struct {
	E int64
	T core.Timestamp
}

// pairLess orders pairs by element, then timestamp, the canonical order for
// the sorted-slice states.
func pairLess(a, b Pair) int {
	switch {
	case a.E < b.E:
		return -1
	case a.E > b.E:
		return 1
	case a.T < b.T:
		return -1
	case a.T > b.T:
		return 1
	default:
		return 0
	}
}

// readElems extracts the distinct elements of a sorted pair slice.
func readElems(s []Pair) []int64 {
	var out []int64
	for i, p := range s {
		if i == 0 || p.E != s[i-1].E {
			out = append(out, p.E)
		}
	}
	return out
}

// lookupElem reports membership in a sorted pair slice.
func lookupElem(s []Pair, e int64) bool {
	i, _ := slices.BinarySearchFunc(s, Pair{E: e, T: -1}, pairLess)
	return i < len(s) && s[i].E == e
}

// Spec is F_orset (§2.2.1): an element is in the set iff some add of it is
// not visible to any remove of it — so an add concurrent with a remove
// wins. Lookup is membership in the read result. The same specification
// governs all three implementations.
func Spec(op Op, abs *core.AbstractState[Op, Val]) Val {
	switch op.Kind {
	case Read:
		return Val{Elems: specMembers(abs)}
	case Lookup:
		_, ok := slices.BinarySearch(specMembers(abs), op.E)
		return Val{Found: ok}
	default:
		return Val{}
	}
}

func specMembers(abs *core.AbstractState[Op, Val]) []int64 {
	evs := abs.Events()
	seen := make(map[int64]bool)
	var members []int64
	for _, e := range evs {
		o := abs.Oper(e)
		if o.Kind != Add || seen[o.E] {
			continue
		}
		if unmatchedAdd(abs, evs, e) {
			seen[o.E] = true
			members = append(members, o.E)
		}
	}
	slices.Sort(members)
	return members
}

// unmatchedAdd reports that no remove of the same element observes add
// event e.
func unmatchedAdd(abs *core.AbstractState[Op, Val], evs []core.EventID, e core.EventID) bool {
	elem := abs.Oper(e).E
	for _, f := range evs {
		if o := abs.Oper(f); o.Kind == Remove && o.E == elem && abs.Vis(e, f) {
			return false
		}
	}
	return true
}
