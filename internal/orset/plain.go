package orset

import (
	"slices"

	"repro/internal/core"
)

// State is the unoptimized OR-set state (§2.1.1): pairs sorted by
// (element, timestamp), possibly with several pairs per element. Treat as
// immutable.
type State []Pair

// OrSet is the unoptimized OR-set MRDT of Figure 1.
type OrSet struct{}

var _ core.MRDT[State, Op, Val] = OrSet{}

// Init returns the empty set.
func (OrSet) Init() State { return nil }

// Do applies op at state s with timestamp t.
func (OrSet) Do(op Op, s State, t core.Timestamp) (State, Val) {
	switch op.Kind {
	case Read:
		return s, Val{Elems: readElems(s)}
	case Lookup:
		return s, Val{Found: lookupElem(s, op.E)}
	case Add:
		p := Pair{E: op.E, T: t}
		i, _ := slices.BinarySearchFunc(s, p, pairLess)
		next := make(State, 0, len(s)+1)
		next = append(next, s[:i]...)
		next = append(next, p)
		next = append(next, s[i:]...)
		return next, Val{}
	case Remove:
		next := make(State, 0, len(s))
		for _, p := range s {
			if p.E != op.E {
				next = append(next, p)
			}
		}
		return next, Val{}
	default:
		return s, Val{}
	}
}

// Merge implements Figure 1:
// (σ_lca ∩ σ_a ∩ σ_b) ∪ (σ_a − σ_lca) ∪ (σ_b − σ_lca),
// computed in a single linear pass over the three sorted slices.
func (OrSet) Merge(lca, a, b State) State {
	out := make(State, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		cmp := pairLess(a[i], b[j])
		switch {
		case cmp < 0:
			if !member(lca, a[i]) { // a − lca
				out = append(out, a[i])
			}
			i++
		case cmp > 0:
			if !member(lca, b[j]) { // b − lca
				out = append(out, b[j])
			}
			j++
		default:
			// In both branches: either surviving LCA pair (in the triple
			// intersection) or — impossible for distinct-timestamp adds —
			// a duplicate; keep once.
			out = append(out, a[i])
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		if !member(lca, a[i]) {
			out = append(out, a[i])
		}
	}
	for ; j < len(b); j++ {
		if !member(lca, b[j]) {
			out = append(out, b[j])
		}
	}
	return out
}

func member(s State, p Pair) bool {
	i, ok := slices.BinarySearchFunc(s, p, pairLess)
	_ = i
	return ok
}

// Rsim is the simulation relation of §4.2 (equation 3): a pair (a, t) is in
// the concrete state iff the abstract state has an add(a) event at time t
// with no remove(a) event observing it.
func Rsim(abs *core.AbstractState[Op, Val], s State) bool {
	if !slices.IsSortedFunc([]Pair(s), pairLess) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return false
		}
	}
	evs := abs.Events()
	// Concrete → abstract.
	for _, p := range s {
		found := false
		for _, e := range evs {
			o := abs.Oper(e)
			if o.Kind == Add && o.E == p.E && abs.Time(e) == p.T && unmatchedAdd(abs, evs, e) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	// Abstract → concrete.
	for _, e := range evs {
		o := abs.Oper(e)
		if o.Kind == Add && unmatchedAdd(abs, evs, e) {
			if !member(s, Pair{E: o.E, T: abs.Time(e)}) {
				return false
			}
		}
	}
	return true
}
