package orset

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestTreeInsertLookupDelete(t *testing.T) {
	var impl OrSetSpaceTime
	s := impl.Init()
	for i, e := range []int64{5, 2, 8, 1, 9, 3} {
		s, _ = impl.Do(Op{Kind: Add, E: e}, s, core.Timestamp(i+1))
	}
	if !validAVL(s) {
		t.Fatal("tree must stay AVL-balanced under inserts")
	}
	_, v := impl.Do(Op{Kind: Read}, s, 100)
	if !slices.Equal(v.Elems, []int64{1, 2, 3, 5, 8, 9}) {
		t.Fatalf("read = %v", v.Elems)
	}
	_, v = impl.Do(Op{Kind: Lookup, E: 8}, s, 101)
	if !v.Found {
		t.Fatal("lookup 8")
	}
	s, _ = impl.Do(Op{Kind: Remove, E: 5}, s, 102)
	if !validAVL(s) {
		t.Fatal("tree must stay AVL-balanced under deletes")
	}
	_, v = impl.Do(Op{Kind: Lookup, E: 5}, s, 103)
	if v.Found {
		t.Fatal("removed element must be gone")
	}
}

func TestTreePersistence(t *testing.T) {
	var impl OrSetSpaceTime
	s1 := impl.Init()
	for i := int64(0); i < 20; i++ {
		s1, _ = impl.Do(Op{Kind: Add, E: i}, s1, core.Timestamp(i+1))
	}
	before := flatten(s1)
	s2, _ := impl.Do(Op{Kind: Remove, E: 10}, s1, 100)
	s3, _ := impl.Do(Op{Kind: Add, E: 99}, s1, 101)
	if !slices.Equal(flatten(s1), before) {
		t.Fatal("operations must not mutate ancestor trees")
	}
	if len(flatten(s2)) != 19 || len(flatten(s3)) != 21 {
		t.Fatal("derived states have wrong sizes")
	}
}

func TestTreeRefreshTimestamp(t *testing.T) {
	var impl OrSetSpaceTime
	s := impl.Init()
	s, _ = impl.Do(Op{Kind: Add, E: 4}, s, 1)
	s, _ = impl.Do(Op{Kind: Add, E: 4}, s, 9)
	fl := flatten(s)
	if len(fl) != 1 || fl[0] != (Pair{E: 4, T: 9}) {
		t.Fatalf("refresh: %v", fl)
	}
}

func TestTreeMergeBalancedResult(t *testing.T) {
	var impl OrSetSpaceTime
	var lca TreeState
	a, b := lca, lca
	ts := core.Timestamp(1)
	for i := int64(0); i < 50; i++ {
		a, _ = impl.Do(Op{Kind: Add, E: i}, a, ts)
		ts++
	}
	for i := int64(50); i < 100; i++ {
		b, _ = impl.Do(Op{Kind: Add, E: i}, b, ts)
		ts++
	}
	m := impl.Merge(lca, a, b)
	if !validAVL(m) {
		t.Fatal("merge must produce a height-balanced tree")
	}
	if got := flatten(m); len(got) != 100 {
		t.Fatalf("merged size = %d, want 100", len(got))
	}
	// A perfectly balanced tree of 100 nodes has height 7.
	if h := height(m); h > 7 {
		t.Fatalf("merged height = %d, want ≤ 7", h)
	}
}

func TestTreeMergeAgreesWithSpace(t *testing.T) {
	var tree OrSetSpaceTime
	var space OrSetSpace
	type tri struct{ l, a, b SpaceState }
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			l, a, b := randomSpaceExec(r)
			vals[0] = reflect.ValueOf(tri{l, a, b})
		},
	}
	prop := func(x tri) bool {
		tm := tree.Merge(buildBalanced(x.l), buildBalanced(x.a), buildBalanced(x.b))
		sm := space.Merge(x.l, x.a, x.b)
		return validAVL(tm) && slices.Equal(flatten(tm), sm)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestTreeAVLInvariantUnderRandomOps(t *testing.T) {
	var impl OrSetSpaceTime
	r := rand.New(rand.NewSource(42))
	s := impl.Init()
	for i := 0; i < 3000; i++ {
		e := int64(r.Intn(200))
		if r.Intn(3) == 0 {
			s, _ = impl.Do(Op{Kind: Remove, E: e}, s, core.Timestamp(i+1))
		} else {
			s, _ = impl.Do(Op{Kind: Add, E: e}, s, core.Timestamp(i+1))
		}
		if i%250 == 0 && !validAVL(s) {
			t.Fatalf("AVL invariant broken at step %d", i)
		}
	}
	if !validAVL(s) {
		t.Fatal("AVL invariant broken at the end")
	}
}

func TestRsimSpaceTimeRejectsUnbalanced(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	var evs []core.EventID
	var prev []core.EventID
	for i := int64(1); i <= 4; i++ {
		id := h.Append(Op{Kind: Add, E: i}, Val{}, core.Timestamp(i), prev)
		prev = append(prev, id)
		evs = append(evs, id)
	}
	abs := core.StateOf(h, evs)
	// A degenerate right spine with correct contents.
	spine := mk(Pair{E: 1, T: 1},
		nil,
		mk(Pair{E: 2, T: 2}, nil, mk(Pair{E: 3, T: 3}, nil, mk(Pair{E: 4, T: 4}, nil, nil))))
	if RsimSpaceTime(abs, spine) {
		t.Fatal("RsimSpaceTime must reject an unbalanced tree")
	}
	balanced := buildBalanced(SpaceState{{E: 1, T: 1}, {E: 2, T: 2}, {E: 3, T: 3}, {E: 4, T: 4}})
	if !RsimSpaceTime(abs, balanced) {
		t.Fatal("RsimSpaceTime must accept the balanced faithful tree")
	}
}

func TestBuildBalancedProperties(t *testing.T) {
	f := func(n uint8) bool {
		s := make(SpaceState, n%60)
		for i := range s {
			s[i] = Pair{E: int64(i), T: core.Timestamp(i)}
		}
		tr := buildBalanced(s)
		return validAVL(tr) && slices.Equal(flatten(tr), s) && size(tr) == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestConvergenceModuloObservableBehaviour witnesses Definition 3.4/3.5's
// motivating example (§3): two replicas that applied the same events in
// different orders hold structurally different search trees, yet every
// operation returns the same values on both — the paper's justification
// for weakening convergence to observational equivalence.
func TestConvergenceModuloObservableBehaviour(t *testing.T) {
	var impl OrSetSpaceTime
	// Six elements: ascending and descending insertion orders rebalance to
	// mirrored (hence structurally different) AVL shapes. (Seven would
	// rebalance to the same perfect tree on both sides.)
	ops := []Op{
		{Kind: Add, E: 1}, {Kind: Add, E: 2}, {Kind: Add, E: 3},
		{Kind: Add, E: 4}, {Kind: Add, E: 5}, {Kind: Add, E: 6},
	}
	// Replica A inserts ascending; replica B descending. Same event set
	// (timestamps differ per event but contents coincide per element).
	a := impl.Init()
	for i, op := range ops {
		a, _ = impl.Do(op, a, core.Timestamp(i+1))
	}
	b := impl.Init()
	for i := len(ops) - 1; i >= 0; i-- {
		b, _ = impl.Do(ops[i], b, core.Timestamp(i+1))
	}
	if !slices.Equal(flatten(a), flatten(b)) {
		t.Fatal("same contents expected")
	}
	structurallyEqual := func(x, y *TreeNode) bool {
		var eq func(x, y *TreeNode) bool
		eq = func(x, y *TreeNode) bool {
			if x == nil || y == nil {
				return x == y
			}
			return x.Pair == y.Pair && eq(x.Left, y.Left) && eq(x.Right, y.Right)
		}
		return eq(x, y)
	}
	if structurallyEqual(a, b) {
		t.Fatal("the two insertion orders should produce different tree shapes for this to be a meaningful witness")
	}
	// Observational equivalence over the full probe alphabet.
	probes := []Op{{Kind: Read}}
	for e := int64(0); e <= 8; e++ {
		probes = append(probes, Op{Kind: Lookup, E: e})
	}
	if !core.ObsEquiv[TreeState, Op, Val](impl, probes, ValEq, a, b, 100) {
		t.Fatal("structurally different trees must be observationally equivalent")
	}
}
