package orset

import "repro/internal/core"

// TreeNode is a node of the persistent height-balanced (AVL) search tree
// that backs OrSetSpaceTime. Nodes are immutable: updates copy the path
// from the root, so ancestor states retained by the store as merge bases
// stay valid. The tree is keyed by element; each element appears at most
// once, carrying the timestamp of its latest add.
type TreeNode struct {
	Pair        Pair
	Left, Right *TreeNode
	height      int
}

// TreeState is the OR-set-spacetime state: the root of a persistent AVL
// tree (nil = empty set).
type TreeState = *TreeNode

// OrSetSpaceTime is the space- and time-optimized OR-set of §7.1: the
// semantics of OrSetSpace with O(log n) add/remove/lookup, and a merge that
// returns a height-balanced tree (the paper: "the merge function produces a
// height balanced binary tree").
type OrSetSpaceTime struct{}

var _ core.MRDT[TreeState, Op, Val] = OrSetSpaceTime{}

// Init returns the empty set.
func (OrSetSpaceTime) Init() TreeState { return nil }

// Do applies op at state s with timestamp t.
func (OrSetSpaceTime) Do(op Op, s TreeState, t core.Timestamp) (TreeState, Val) {
	switch op.Kind {
	case Read:
		var elems []int64
		walk(s, func(p Pair) {
			elems = append(elems, p.E)
		})
		return s, Val{Elems: elems}
	case Lookup:
		return s, Val{Found: treeLookup(s, op.E)}
	case Add:
		return treeInsert(s, Pair{E: op.E, T: t}), Val{}
	case Remove:
		return treeDelete(s, op.E), Val{}
	default:
		return s, Val{}
	}
}

// Merge flattens the three trees in order (O(n)), applies the OrSetSpace
// per-element merge on the sorted slices (O(n)), and rebuilds a perfectly
// height-balanced tree from the sorted result (O(n)).
func (OrSetSpaceTime) Merge(lca, a, b TreeState) TreeState {
	merged := OrSetSpace{}.Merge(flatten(lca), flatten(a), flatten(b))
	return buildBalanced(merged)
}

// RsimSpaceTime is the OR-set-spacetime simulation relation: the in-order
// flattening satisfies the OrSetSpace relation (equation 4), and — the
// implementation-specific strengthening — the tree is a valid
// height-balanced search tree.
func RsimSpaceTime(abs *core.AbstractState[Op, Val], s TreeState) bool {
	if !validAVL(s) {
		return false
	}
	return RsimSpace(abs, flatten(s))
}

// Flatten returns the tree's pairs in element order.
func Flatten(s TreeState) SpaceState { return flatten(s) }

// BuildBalanced constructs a perfectly height-balanced tree from an
// element-sorted pair slice (used by codecs and tests; merge uses it
// internally).
func BuildBalanced(s SpaceState) TreeState { return buildBalanced(s) }

// ValidAVL reports whether the tree satisfies the search-tree order and
// AVL balance invariants; exported for integration tests.
func ValidAVL(s TreeState) bool { return validAVL(s) }

func walk(n *TreeNode, f func(Pair)) {
	if n == nil {
		return
	}
	walk(n.Left, f)
	f(n.Pair)
	walk(n.Right, f)
}

func flatten(n *TreeNode) SpaceState {
	out := make(SpaceState, 0, size(n))
	walk(n, func(p Pair) { out = append(out, p) })
	return out
}

func size(n *TreeNode) int {
	if n == nil {
		return 0
	}
	return 1 + size(n.Left) + size(n.Right)
}

func height(n *TreeNode) int {
	if n == nil {
		return 0
	}
	return n.height
}

func mk(p Pair, l, r *TreeNode) *TreeNode {
	h := height(l)
	if hr := height(r); hr > h {
		h = hr
	}
	return &TreeNode{Pair: p, Left: l, Right: r, height: h + 1}
}

// balance restores the AVL invariant at a node whose subtrees differ in
// height by at most 2 (the situation after one insert/delete on a balanced
// tree).
func balance(p Pair, l, r *TreeNode) *TreeNode {
	switch {
	case height(l) > height(r)+1:
		if height(l.Left) >= height(l.Right) { // LL
			return mk(l.Pair, l.Left, mk(p, l.Right, r))
		}
		lr := l.Right // LR
		return mk(lr.Pair, mk(l.Pair, l.Left, lr.Left), mk(p, lr.Right, r))
	case height(r) > height(l)+1:
		if height(r.Right) >= height(r.Left) { // RR
			return mk(r.Pair, mk(p, l, r.Left), r.Right)
		}
		rl := r.Left // RL
		return mk(rl.Pair, mk(p, l, rl.Left), mk(r.Pair, rl.Right, r.Right))
	default:
		return mk(p, l, r)
	}
}

func treeLookup(n *TreeNode, e int64) bool {
	for n != nil {
		switch {
		case e < n.Pair.E:
			n = n.Left
		case e > n.Pair.E:
			n = n.Right
		default:
			return true
		}
	}
	return false
}

func treeInsert(n *TreeNode, p Pair) *TreeNode {
	if n == nil {
		return mk(p, nil, nil)
	}
	switch {
	case p.E < n.Pair.E:
		return balance(n.Pair, treeInsert(n.Left, p), n.Right)
	case p.E > n.Pair.E:
		return balance(n.Pair, n.Left, treeInsert(n.Right, p))
	default: // refresh the timestamp in place
		return mk(p, n.Left, n.Right)
	}
}

func treeDelete(n *TreeNode, e int64) *TreeNode {
	if n == nil {
		return nil
	}
	switch {
	case e < n.Pair.E:
		return balance(n.Pair, treeDelete(n.Left, e), n.Right)
	case e > n.Pair.E:
		return balance(n.Pair, n.Left, treeDelete(n.Right, e))
	default:
		if n.Left == nil {
			return n.Right
		}
		if n.Right == nil {
			return n.Left
		}
		minP, rest := popMin(n.Right)
		return balance(minP, n.Left, rest)
	}
}

func popMin(n *TreeNode) (Pair, *TreeNode) {
	if n.Left == nil {
		return n.Pair, n.Right
	}
	p, rest := popMin(n.Left)
	return p, balance(n.Pair, rest, n.Right)
}

// buildBalanced constructs a perfectly balanced tree from an
// element-sorted slice.
func buildBalanced(s SpaceState) *TreeNode {
	if len(s) == 0 {
		return nil
	}
	m := len(s) / 2
	return mk(s[m], buildBalanced(s[:m]), buildBalanced(s[m+1:]))
}

// validAVL checks the search-tree order, the AVL height invariant, and
// cached heights.
func validAVL(n *TreeNode) bool {
	ok := true
	var rec func(n *TreeNode, lo, hi *int64) int
	rec = func(n *TreeNode, lo, hi *int64) int {
		if n == nil {
			return 0
		}
		if lo != nil && n.Pair.E <= *lo {
			ok = false
		}
		if hi != nil && n.Pair.E >= *hi {
			ok = false
		}
		hl := rec(n.Left, lo, &n.Pair.E)
		hr := rec(n.Right, &n.Pair.E, hi)
		if hl-hr > 1 || hr-hl > 1 {
			ok = false
		}
		h := hl
		if hr > h {
			h = hr
		}
		if n.height != h+1 {
			ok = false
		}
		return h + 1
	}
	rec(n, nil, nil)
	return ok
}
