package orset

import (
	"slices"

	"repro/internal/core"
)

// SpaceState is the space-efficient OR-set state (§2.1.2): at most one pair
// per element, sorted by element. Treat as immutable.
type SpaceState []Pair

// OrSetSpace is the space-efficient OR-set MRDT of Figure 2. Adding an
// element already in the set refreshes its timestamp in place, recording
// the effect of the duplicate add so a concurrent remove cannot erase it.
type OrSetSpace struct{}

var _ core.MRDT[SpaceState, Op, Val] = OrSetSpace{}

// Init returns the empty set.
func (OrSetSpace) Init() SpaceState { return nil }

func findElem(s SpaceState, e int64) (int, bool) {
	return slices.BinarySearchFunc(s, e, func(p Pair, e int64) int {
		switch {
		case p.E < e:
			return -1
		case p.E > e:
			return 1
		default:
			return 0
		}
	})
}

// Do applies op at state s with timestamp t.
func (OrSetSpace) Do(op Op, s SpaceState, t core.Timestamp) (SpaceState, Val) {
	switch op.Kind {
	case Read:
		elems := make([]int64, len(s))
		for i, p := range s {
			elems[i] = p.E
		}
		return s, Val{Elems: elems}
	case Lookup:
		_, ok := findElem(s, op.E)
		return s, Val{Found: ok}
	case Add:
		i, ok := findElem(s, op.E)
		next := make(SpaceState, 0, len(s)+1)
		next = append(next, s[:i]...)
		next = append(next, Pair{E: op.E, T: t})
		if ok {
			next = append(next, s[i+1:]...)
		} else {
			next = append(next, s[i:]...)
		}
		return next, Val{}
	case Remove:
		i, ok := findElem(s, op.E)
		if !ok {
			return s, Val{}
		}
		next := make(SpaceState, 0, len(s)-1)
		next = append(next, s[:i]...)
		next = append(next, s[i+1:]...)
		return next, Val{}
	default:
		return s, Val{}
	}
}

// Merge implements Figure 2, decided per element in one linear pass over
// the three element-sorted slices:
//
//   - the pair is unchanged everywhere (in lca ∩ a ∩ b): keep it;
//   - the element was added/refreshed on exactly one branch (the pair is in
//     that branch's diff and the element is absent from the other diff):
//     keep that branch's pair;
//   - the element was added/refreshed on both branches: keep the pair with
//     the larger timestamp;
//   - otherwise (unchanged on one side, removed on the other, or removed on
//     both): drop it.
func (OrSetSpace) Merge(lca, a, b SpaceState) SpaceState {
	out := make(SpaceState, 0, max(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].E < b[j].E):
			if !pairInState(lca, a[i]) { // in a − lca, element absent from b
				out = append(out, a[i])
			}
			i++
		case i >= len(a) || b[j].E < a[i].E:
			if !pairInState(lca, b[j]) {
				out = append(out, b[j])
			}
			j++
		default: // same element on both branches
			pa, pb := a[i], b[j]
			newA := !pairInState(lca, pa)
			newB := !pairInState(lca, pb)
			switch {
			case newA && newB:
				if pa.T >= pb.T {
					out = append(out, pa)
				} else {
					out = append(out, pb)
				}
			case newA:
				out = append(out, pa)
			case newB:
				out = append(out, pb)
			default: // pa == pb == lca's pair: in the triple intersection
				out = append(out, pa)
			}
			i++
			j++
		}
	}
	return out
}

func pairInState(s SpaceState, p Pair) bool {
	i, ok := findElem(s, p.E)
	return ok && s[i] == p
}

// RsimSpace is the simulation relation of §4.2 (equation 4). On top of the
// unoptimized relation it pins each element's concrete timestamp to the
// *latest* unmatched add of that element, and requires every element with
// an unmatched add to be present exactly once.
func RsimSpace(abs *core.AbstractState[Op, Val], s SpaceState) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1].E >= s[i].E {
			return false
		}
	}
	want := latestUnmatchedAdds(abs)
	if len(want) != len(s) {
		return false
	}
	for _, p := range s {
		if want[p.E] != p.T {
			return false
		}
	}
	return true
}

// latestUnmatchedAdds maps each element with at least one unmatched add to
// the maximal timestamp among its unmatched adds.
func latestUnmatchedAdds(abs *core.AbstractState[Op, Val]) map[int64]core.Timestamp {
	evs := abs.Events()
	want := make(map[int64]core.Timestamp)
	for _, e := range evs {
		o := abs.Oper(e)
		if o.Kind != Add || !unmatchedAdd(abs, evs, e) {
			continue
		}
		if t, ok := want[o.E]; !ok || abs.Time(e) > t {
			want[o.E] = abs.Time(e)
		}
	}
	return want
}
