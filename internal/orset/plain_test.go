package orset

import (
	"slices"
	"testing"

	"repro/internal/core"
)

func TestOrSetAddRemoveRead(t *testing.T) {
	var impl OrSet
	s := impl.Init()
	s, _ = impl.Do(Op{Kind: Add, E: 1}, s, 1)
	s, _ = impl.Do(Op{Kind: Add, E: 2}, s, 2)
	s, _ = impl.Do(Op{Kind: Add, E: 1}, s, 3) // duplicate with fresh id
	if len(s) != 3 {
		t.Fatalf("unoptimized OR-set keeps duplicates: %v", s)
	}
	_, v := impl.Do(Op{Kind: Read}, s, 4)
	if !slices.Equal(v.Elems, []int64{1, 2}) {
		t.Fatalf("read = %v", v.Elems)
	}
	s, _ = impl.Do(Op{Kind: Remove, E: 1}, s, 5)
	if len(s) != 1 || s[0].E != 2 {
		t.Fatalf("remove must drop all pairs of the element: %v", s)
	}
}

func TestOrSetLookup(t *testing.T) {
	var impl OrSet
	s := impl.Init()
	s, _ = impl.Do(Op{Kind: Add, E: 10}, s, 1)
	_, v := impl.Do(Op{Kind: Lookup, E: 10}, s, 2)
	if !v.Found {
		t.Fatal("lookup of present element")
	}
	_, v = impl.Do(Op{Kind: Lookup, E: 11}, s, 3)
	if v.Found {
		t.Fatal("lookup of absent element")
	}
}

func TestOrSetMergeAddWins(t *testing.T) {
	var impl OrSet
	lca := State{{E: 7, T: 1}}
	// Branch a re-adds 7 with a fresh id; branch b removes 7.
	a := State{{E: 7, T: 1}, {E: 7, T: 5}}
	b := State{}
	m := impl.Merge(lca, a, b)
	if len(m) != 1 || m[0] != (Pair{E: 7, T: 5}) {
		t.Fatalf("merge = %v, want the fresh add to survive", m)
	}
}

func TestOrSetMergeRemoveOldAdd(t *testing.T) {
	var impl OrSet
	lca := State{{E: 7, T: 1}}
	a := lca // untouched
	b := State{}
	if m := impl.Merge(lca, a, b); len(m) != 0 {
		t.Fatalf("merge = %v, remove must erase the observed add", m)
	}
}

func TestOrSetMergeDisjointAdds(t *testing.T) {
	var impl OrSet
	var lca State
	a := State{{E: 1, T: 1}}
	b := State{{E: 2, T: 2}}
	m := impl.Merge(lca, a, b)
	want := State{{E: 1, T: 1}, {E: 2, T: 2}}
	if !slices.Equal(m, want) {
		t.Fatalf("merge = %v, want %v", m, want)
	}
	if !slices.Equal(impl.Merge(lca, b, a), want) {
		t.Fatal("merge must be symmetric")
	}
}

func TestOrSetSpecConcurrentAddRemove(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	add := h.Append(Op{Kind: Add, E: 3}, Val{}, 1, nil)
	rem := h.Append(Op{Kind: Remove, E: 3}, Val{}, 2, nil) // concurrent
	abs := core.StateOf(h, []core.EventID{add, rem})
	if v := Spec(Op{Kind: Read}, abs); !slices.Equal(v.Elems, []int64{3}) {
		t.Fatalf("spec: concurrent add must win, got %v", v.Elems)
	}
	// When the remove observes the add, the element is gone.
	h2 := core.NewHistory[Op, Val]()
	add2 := h2.Append(Op{Kind: Add, E: 3}, Val{}, 1, nil)
	rem2 := h2.Append(Op{Kind: Remove, E: 3}, Val{}, 2, []core.EventID{add2})
	abs2 := core.StateOf(h2, []core.EventID{add2, rem2})
	if v := Spec(Op{Kind: Read}, abs2); len(v.Elems) != 0 {
		t.Fatalf("spec: observed add must be removed, got %v", v.Elems)
	}
}

func TestOrSetRsim(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	a1 := h.Append(Op{Kind: Add, E: 3}, Val{}, 1, nil)
	a2 := h.Append(Op{Kind: Add, E: 3}, Val{}, 2, []core.EventID{a1})
	abs := core.StateOf(h, []core.EventID{a1, a2})
	if !Rsim(abs, State{{E: 3, T: 1}, {E: 3, T: 2}}) {
		t.Fatal("Rsim must accept both unmatched adds")
	}
	if Rsim(abs, State{{E: 3, T: 2}}) {
		t.Fatal("Rsim (plain) must reject a deduplicated state")
	}
	if Rsim(abs, State{{E: 3, T: 2}, {E: 3, T: 1}}) {
		t.Fatal("Rsim must reject unsorted states")
	}
	if Rsim(abs, State{{E: 3, T: 1}, {E: 3, T: 1}, {E: 3, T: 2}}) {
		t.Fatal("Rsim must reject duplicate pairs")
	}
}
