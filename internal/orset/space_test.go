package orset

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestOrSetSpaceNoDuplicates(t *testing.T) {
	var impl OrSetSpace
	s := impl.Init()
	s, _ = impl.Do(Op{Kind: Add, E: 1}, s, 1)
	s, _ = impl.Do(Op{Kind: Add, E: 1}, s, 2)
	if len(s) != 1 {
		t.Fatalf("duplicate add must refresh in place: %v", s)
	}
	if s[0].T != 2 {
		t.Fatalf("timestamp must be refreshed to 2: %v", s)
	}
}

func TestOrSetSpaceRefreshBeatsConcurrentRemove(t *testing.T) {
	var impl OrSetSpace
	lca := SpaceState{{E: 7, T: 1}}
	a, _ := impl.Do(Op{Kind: Add, E: 7}, lca, 5)    // refresh on a
	b, _ := impl.Do(Op{Kind: Remove, E: 7}, lca, 6) // remove on b
	m := impl.Merge(lca, a, b)
	if len(m) != 1 || m[0] != (Pair{E: 7, T: 5}) {
		t.Fatalf("merge = %v; the refreshed add must win", m)
	}
}

func TestOrSetSpaceRemoveBeatsObservedAdd(t *testing.T) {
	var impl OrSetSpace
	lca := SpaceState{{E: 7, T: 1}}
	b, _ := impl.Do(Op{Kind: Remove, E: 7}, lca, 6)
	if m := impl.Merge(lca, lca, b); len(m) != 0 {
		t.Fatalf("merge = %v; unrefreshed element must be removed", m)
	}
}

func TestOrSetSpaceConcurrentAddsKeepLatest(t *testing.T) {
	var impl OrSetSpace
	var lca SpaceState
	a, _ := impl.Do(Op{Kind: Add, E: 9}, lca, 3)
	b, _ := impl.Do(Op{Kind: Add, E: 9}, lca, 8)
	m := impl.Merge(lca, a, b)
	if len(m) != 1 || m[0] != (Pair{E: 9, T: 8}) {
		t.Fatalf("merge = %v; concurrent adds keep the larger timestamp", m)
	}
	if m2 := impl.Merge(lca, b, a); !slices.Equal(m, m2) {
		t.Fatal("merge must be symmetric")
	}
}

func TestOrSetSpaceMergeTripleIntersection(t *testing.T) {
	var impl OrSetSpace
	lca := SpaceState{{E: 1, T: 1}, {E: 2, T: 2}}
	if m := impl.Merge(lca, lca, lca); !slices.Equal(m, lca) {
		t.Fatalf("idle merge = %v", m)
	}
}

// randomSpaceExec drives an LCA plus two divergent branches with random
// adds/removes through the real Do, returning the three states.
func randomSpaceExec(r *rand.Rand) (lca, a, b SpaceState) {
	var impl OrSetSpace
	ts := core.Timestamp(1)
	step := func(s SpaceState) SpaceState {
		e := int64(r.Intn(6))
		var op Op
		if r.Intn(3) == 0 {
			op = Op{Kind: Remove, E: e}
		} else {
			op = Op{Kind: Add, E: e}
		}
		next, _ := impl.Do(op, s, ts)
		ts++
		return next
	}
	lca = impl.Init()
	for i, n := 0, r.Intn(6); i < n; i++ {
		lca = step(lca)
	}
	a, b = lca, lca
	for i, n := 0, r.Intn(8); i < n; i++ {
		if r.Intn(2) == 0 {
			a = step(a)
		} else {
			b = step(b)
		}
	}
	return lca, a, b
}

func TestOrSetSpaceMergePropertiesQuick(t *testing.T) {
	var impl OrSetSpace
	type tri struct{ l, a, b SpaceState }
	cfg := &quick.Config{
		MaxCount: 400,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			l, a, b := randomSpaceExec(r)
			vals[0] = reflect.ValueOf(tri{l, a, b})
		},
	}
	wellFormed := func(x tri) bool {
		m := impl.Merge(x.l, x.a, x.b)
		for i := 1; i < len(m); i++ {
			if m[i-1].E >= m[i].E {
				return false
			}
		}
		return true
	}
	if err := quick.Check(wellFormed, cfg); err != nil {
		t.Error(err)
	}
	symmetric := func(x tri) bool {
		return slices.Equal(impl.Merge(x.l, x.a, x.b), impl.Merge(x.l, x.b, x.a))
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Error(err)
	}
	selfIsIdentity := func(x tri) bool {
		return slices.Equal(impl.Merge(x.a, x.a, x.a), x.a)
	}
	if err := quick.Check(selfIsIdentity, cfg); err != nil {
		t.Error(err)
	}
	// The space-efficient merge agrees with the plain OR-set merge up to
	// duplicate elimination: same element sets.
	agreesWithPlain := func(x tri) bool {
		var plain OrSet
		m := impl.Merge(x.l, x.a, x.b)
		p := plain.Merge(State(x.l), State(x.a), State(x.b))
		return slices.Equal(readElems(m), readElems(p))
	}
	if err := quick.Check(agreesWithPlain, cfg); err != nil {
		t.Error(err)
	}
}

func TestRsimSpace(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	a1 := h.Append(Op{Kind: Add, E: 3}, Val{}, 1, nil)
	a2 := h.Append(Op{Kind: Add, E: 3}, Val{}, 2, []core.EventID{a1})
	abs := core.StateOf(h, []core.EventID{a1, a2})
	if !RsimSpace(abs, SpaceState{{E: 3, T: 2}}) {
		t.Fatal("RsimSpace must pin the latest unmatched add's timestamp")
	}
	if RsimSpace(abs, SpaceState{{E: 3, T: 1}}) {
		t.Fatal("RsimSpace must reject the stale timestamp")
	}
	if RsimSpace(abs, SpaceState{{E: 3, T: 1}, {E: 3, T: 2}}) {
		t.Fatal("RsimSpace must reject duplicates")
	}
	if RsimSpace(abs, nil) {
		t.Fatal("RsimSpace must reject a missing element")
	}
}
