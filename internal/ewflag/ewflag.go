// Package ewflag implements the enable-wins flag MRDT (§7.1): a boolean
// flag where a concurrent enable and disable resolve to enabled.
//
// The concrete state pairs the flag with a count of enable operations. The
// count lets the three-way merge distinguish "the flag is true because a
// branch performed a *new* enable" (which must win against a concurrent
// disable) from "the flag is true because it was already true at the LCA"
// (which a concurrent disable must beat).
package ewflag

import "repro/internal/core"

// OpKind distinguishes flag operations.
type OpKind int

// Flag operations.
const (
	Read OpKind = iota
	Enable
	Disable
)

// Op is a flag operation.
type Op struct{ Kind OpKind }

// Val is the return value: the flag for Read, false (⊥) otherwise.
type Val = bool

// ValEq compares return values.
func ValEq(a, b Val) bool { return a == b }

// State is the concrete flag state.
type State struct {
	Enables int64 // number of enable events in the visible history
	Flag    bool
}

// Flag is the enable-wins flag MRDT.
type Flag struct{}

var _ core.MRDT[State, Op, Val] = Flag{}

// Init returns the disabled initial state.
func (Flag) Init() State { return State{} }

// Do applies op at state s.
func (Flag) Do(op Op, s State, _ core.Timestamp) (State, Val) {
	switch op.Kind {
	case Read:
		return s, s.Flag
	case Enable:
		return State{Enables: s.Enables + 1, Flag: true}, false
	case Disable:
		return State{Enables: s.Enables, Flag: false}, false
	default:
		return s, false
	}
}

// Merge implements enable-wins three-way merge. The merged flag is true iff
// either branch has a new enable it still observes as winning
// (flag ∧ enables grew), or both branches agree the flag is true (covering
// the case where it was true at the LCA and neither branch disabled it).
func (Flag) Merge(lca, a, b State) State {
	return State{
		Enables: a.Enables + b.Enables - lca.Enables,
		Flag: (a.Flag && b.Flag) ||
			(a.Flag && a.Enables > lca.Enables) ||
			(b.Flag && b.Enables > lca.Enables),
	}
}

// Spec is F_ewflag: read returns true iff there exists an enable event not
// visible to any disable event (so a disable only beats the enables it has
// seen; concurrent enables win).
func Spec(op Op, abs *core.AbstractState[Op, Val]) Val {
	if op.Kind != Read {
		return false
	}
	evs := abs.Events()
	for _, e := range evs {
		if abs.Oper(e).Kind != Enable {
			continue
		}
		matched := false
		for _, f := range evs {
			if abs.Oper(f).Kind == Disable && abs.Vis(e, f) {
				matched = true
				break
			}
		}
		if !matched {
			return true
		}
	}
	return false
}

// Rsim relates abstract and concrete states: the enable count equals the
// number of enable events and the flag equals the specification's read
// value.
func Rsim(abs *core.AbstractState[Op, Val], s State) bool {
	var enables int64
	for _, e := range abs.Events() {
		if abs.Oper(e).Kind == Enable {
			enables++
		}
	}
	return s.Enables == enables && s.Flag == Spec(Op{Kind: Read}, abs)
}

// DWState is the disable-wins flag state: the dual bookkeeping (count of
// disables).
type DWState struct {
	Disables int64
	Flag     bool
}

// DWFlag is the disable-wins flag MRDT — the dual policy, where a
// concurrent enable and disable resolve to *disabled*. It is not in the
// paper's library; it demonstrates that the certification framework is
// agnostic to the conflict-resolution policy: specification, simulation
// relation and merge are all exact duals of the enable-wins versions.
type DWFlag struct{}

var _ core.MRDT[DWState, Op, Val] = DWFlag{}

// Init returns the disabled initial state (disabled is also the neutral
// state for disable-wins).
func (DWFlag) Init() DWState { return DWState{} }

// Do applies op at state s.
func (DWFlag) Do(op Op, s DWState, _ core.Timestamp) (DWState, Val) {
	switch op.Kind {
	case Read:
		return s, s.Flag
	case Enable:
		return DWState{Disables: s.Disables, Flag: true}, false
	case Disable:
		return DWState{Disables: s.Disables + 1, Flag: false}, false
	default:
		return s, false
	}
}

// Merge is the dual of the enable-wins merge: the merged flag is false iff
// either branch has a new disable it still observes as winning, or both
// branches agree the flag is false.
func (DWFlag) Merge(lca, a, b DWState) DWState {
	off := (!a.Flag && !b.Flag) ||
		(!a.Flag && a.Disables > lca.Disables) ||
		(!b.Flag && b.Disables > lca.Disables)
	return DWState{
		Disables: a.Disables + b.Disables - lca.Disables,
		Flag:     !off,
	}
}

// DWSpec is F_dwflag: read returns false iff there exists a disable event
// not visible to any enable event — so a disable concurrent with an enable
// wins — or no enable has ever happened.
func DWSpec(op Op, abs *core.AbstractState[Op, Val]) Val {
	if op.Kind != Read {
		return false
	}
	evs := abs.Events()
	anyEnable := false
	for _, e := range evs {
		if abs.Oper(e).Kind == Enable {
			anyEnable = true
			break
		}
	}
	if !anyEnable {
		return false
	}
	for _, d := range evs {
		if abs.Oper(d).Kind != Disable {
			continue
		}
		matched := false
		for _, e := range evs {
			if abs.Oper(e).Kind == Enable && abs.Vis(d, e) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// DWRsim relates abstract and concrete disable-wins states.
func DWRsim(abs *core.AbstractState[Op, Val], s DWState) bool {
	var disables int64
	for _, e := range abs.Events() {
		if abs.Oper(e).Kind == Disable {
			disables++
		}
	}
	return s.Disables == disables && s.Flag == DWSpec(Op{Kind: Read}, abs)
}
