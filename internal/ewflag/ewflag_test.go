package ewflag

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestFlagDo(t *testing.T) {
	var impl Flag
	s := impl.Init()
	if s.Flag || s.Enables != 0 {
		t.Fatal("initial state must be disabled")
	}
	s, _ = impl.Do(Op{Kind: Enable}, s, 1)
	if !s.Flag || s.Enables != 1 {
		t.Fatalf("after enable: %+v", s)
	}
	_, v := impl.Do(Op{Kind: Read}, s, 2)
	if !v {
		t.Fatal("read after enable must be true")
	}
	s, _ = impl.Do(Op{Kind: Disable}, s, 3)
	if s.Flag || s.Enables != 1 {
		t.Fatalf("after disable: %+v", s)
	}
}

func TestMergeEnableWins(t *testing.T) {
	var impl Flag
	// lca enabled; a disables; b enables again: the concurrent enable wins.
	lca := State{Enables: 1, Flag: true}
	a := State{Enables: 1, Flag: false}
	b := State{Enables: 2, Flag: true}
	m := impl.Merge(lca, a, b)
	if !m.Flag {
		t.Fatal("concurrent enable must win against disable")
	}
	if m.Enables != 2 {
		t.Fatalf("enable count = %d, want 2", m.Enables)
	}
}

func TestMergeDisableWinsAgainstNothing(t *testing.T) {
	var impl Flag
	// lca enabled; a disables; b does nothing: disabled.
	lca := State{Enables: 1, Flag: true}
	a := State{Enables: 1, Flag: false}
	b := lca
	if m := impl.Merge(lca, a, b); m.Flag {
		t.Fatal("a disable with no concurrent enable must win")
	}
}

func TestMergeBothIdle(t *testing.T) {
	var impl Flag
	lca := State{Enables: 3, Flag: true}
	if m := impl.Merge(lca, lca, lca); !m.Flag || m.Enables != 3 {
		t.Fatalf("idle merge changed the state: %+v", m)
	}
	off := State{Enables: 3, Flag: false}
	if m := impl.Merge(off, off, off); m.Flag {
		t.Fatal("idle merge enabled a disabled flag")
	}
}

func TestMergeEnableOnOneSide(t *testing.T) {
	var impl Flag
	lca := State{}
	a := State{Enables: 1, Flag: true}
	if m := impl.Merge(lca, a, lca); !m.Flag || m.Enables != 1 {
		t.Fatalf("merge = %+v", m)
	}
	if m := impl.Merge(lca, lca, a); !m.Flag || m.Enables != 1 {
		t.Fatalf("merge = %+v", m)
	}
}

func TestMergeSymmetric(t *testing.T) {
	var impl Flag
	f := func(ln uint8, lf bool, dan, dbn uint8, af, bf bool) bool {
		l := State{Enables: int64(ln % 4), Flag: lf}
		a := State{Enables: l.Enables + int64(dan%4), Flag: af}
		b := State{Enables: l.Enables + int64(dbn%4), Flag: bf}
		// Keep states consistent: flag true with zero enables anywhere is
		// unreachable unless lf was true.
		return impl.Merge(l, a, b) == impl.Merge(l, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecConcurrentEnableDisable(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	en := h.Append(Op{Kind: Enable}, false, 1, nil)
	// Disable performed concurrently: it does not see the enable.
	dis := h.Append(Op{Kind: Disable}, false, 2, nil)
	abs := core.StateOf(h, []core.EventID{en, dis})
	if !Spec(Op{Kind: Read}, abs) {
		t.Fatal("spec: concurrent enable must win")
	}
	// Now a disable that saw the enable.
	h2 := core.NewHistory[Op, Val]()
	en2 := h2.Append(Op{Kind: Enable}, false, 1, nil)
	dis2 := h2.Append(Op{Kind: Disable}, false, 2, []core.EventID{en2})
	abs2 := core.StateOf(h2, []core.EventID{en2, dis2})
	if Spec(Op{Kind: Read}, abs2) {
		t.Fatal("spec: observed enable must lose to the disable")
	}
}

func TestRsim(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	en := h.Append(Op{Kind: Enable}, false, 1, nil)
	abs := core.StateOf(h, []core.EventID{en})
	if !Rsim(abs, State{Enables: 1, Flag: true}) {
		t.Fatal("Rsim must accept the faithful state")
	}
	if Rsim(abs, State{Enables: 1, Flag: false}) {
		t.Fatal("Rsim must reject a wrong flag")
	}
	if Rsim(abs, State{Enables: 2, Flag: true}) {
		t.Fatal("Rsim must reject a wrong enable count")
	}
}

func TestDWFlagMergeDisableWins(t *testing.T) {
	var impl DWFlag
	// lca enabled; a enables again; b disables concurrently: disable wins.
	lca := DWState{Disables: 0, Flag: true}
	a := DWState{Disables: 0, Flag: true}
	b := DWState{Disables: 1, Flag: false}
	if m := impl.Merge(lca, a, b); m.Flag {
		t.Fatal("concurrent disable must win")
	}
	if m := impl.Merge(lca, b, a); m.Flag {
		t.Fatal("merge must be symmetric")
	}
}

func TestDWFlagEnableBeatsObservedDisable(t *testing.T) {
	var impl DWFlag
	// lca disabled (one disable); a enables after seeing it; b idle.
	lca := DWState{Disables: 1, Flag: false}
	a := DWState{Disables: 1, Flag: true}
	b := lca
	if m := impl.Merge(lca, a, b); !m.Flag {
		t.Fatal("an enable that observed every disable must win against an idle branch")
	}
}

func TestDWSpec(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	en := h.Append(Op{Kind: Enable}, false, 1, nil)
	dis := h.Append(Op{Kind: Disable}, false, 2, nil) // concurrent
	abs := core.StateOf(h, []core.EventID{en, dis})
	if DWSpec(Op{Kind: Read}, abs) {
		t.Fatal("concurrent disable must win in the spec")
	}
	// An enable that saw the disable beats it.
	h2 := core.NewHistory[Op, Val]()
	d2 := h2.Append(Op{Kind: Disable}, false, 1, nil)
	e2 := h2.Append(Op{Kind: Enable}, false, 2, []core.EventID{d2})
	abs2 := core.StateOf(h2, []core.EventID{d2, e2})
	if !DWSpec(Op{Kind: Read}, abs2) {
		t.Fatal("an enable observing the disable must win")
	}
	// No enables at all: disabled.
	if DWSpec(Op{Kind: Read}, core.StateOf(h2, []core.EventID{d2})) {
		t.Fatal("no enable means disabled")
	}
}

func TestDWRsim(t *testing.T) {
	h := core.NewHistory[Op, Val]()
	d := h.Append(Op{Kind: Disable}, false, 1, nil)
	abs := core.StateOf(h, []core.EventID{d})
	if !DWRsim(abs, DWState{Disables: 1, Flag: false}) {
		t.Fatal("DWRsim must accept the faithful state")
	}
	if DWRsim(abs, DWState{Disables: 1, Flag: true}) || DWRsim(abs, DWState{Disables: 0, Flag: false}) {
		t.Fatal("DWRsim must reject wrong flag or count")
	}
}
