package alphamap_test

import (
	"testing"

	"repro/internal/alphamap"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/gset"
)

type cmap = alphamap.Map[counter.PNState, counter.Op, counter.Val]

func newCounterMap() cmap {
	return alphamap.New[counter.PNState, counter.Op, counter.Val](counter.PNCounter{})
}

func setOp(k string, op counter.Op) alphamap.Op[counter.Op] {
	return alphamap.Op[counter.Op]{K: k, Inner: op}
}

func getOp(k string, op counter.Op) alphamap.Op[counter.Op] {
	return alphamap.Op[counter.Op]{Get: true, K: k, Inner: op}
}

func TestMapSetGet(t *testing.T) {
	m := newCounterMap()
	s := m.Init()
	s, _ = m.Do(setOp("a", counter.Op{Kind: counter.Inc, N: 3}), s, 1)
	s, _ = m.Do(setOp("b", counter.Op{Kind: counter.Inc, N: 5}), s, 2)
	s, _ = m.Do(setOp("a", counter.Op{Kind: counter.Dec, N: 1}), s, 3)
	_, v := m.Do(getOp("a", counter.Op{Kind: counter.Read}), s, 4)
	if v != 2 {
		t.Fatalf("get a = %d, want 2", v)
	}
	_, v = m.Do(getOp("b", counter.Op{Kind: counter.Read}), s, 5)
	if v != 5 {
		t.Fatalf("get b = %d, want 5", v)
	}
	// Unbound key reads the inner initial state.
	_, v = m.Do(getOp("z", counter.Op{Kind: counter.Read}), s, 6)
	if v != 0 {
		t.Fatalf("get z = %d, want 0", v)
	}
}

func TestGetDoesNotBind(t *testing.T) {
	m := newCounterMap()
	s := m.Init()
	s2, _ := m.Do(getOp("a", counter.Op{Kind: counter.Read}), s, 1)
	if len(s2) != 0 {
		t.Fatal("get must not create a binding")
	}
	// But a mutating op through Set does, even on a fresh key.
	s3, _ := m.Do(setOp("a", counter.Op{Kind: counter.Inc, N: 1}), s, 2)
	if len(s3) != 1 || s3[0].K != "a" {
		t.Fatalf("set must bind: %+v", s3)
	}
}

func TestMapMergePerKey(t *testing.T) {
	m := newCounterMap()
	lca := m.Init()
	lca, _ = m.Do(setOp("k", counter.Op{Kind: counter.Inc, N: 1}), lca, 1)
	a, _ := m.Do(setOp("k", counter.Op{Kind: counter.Inc, N: 10}), lca, 2)
	a, _ = m.Do(setOp("onlyA", counter.Op{Kind: counter.Inc, N: 2}), a, 3)
	b, _ := m.Do(setOp("k", counter.Op{Kind: counter.Inc, N: 100}), lca, 4)
	merged := m.Merge(lca, a, b)
	_, v := m.Do(getOp("k", counter.Op{Kind: counter.Read}), merged, 9)
	if v != 111 {
		t.Fatalf("merged k = %d, want 111", v)
	}
	_, v = m.Do(getOp("onlyA", counter.Op{Kind: counter.Read}), merged, 10)
	if v != 2 {
		t.Fatalf("merged onlyA = %d, want 2", v)
	}
}

func TestMapMergeWithGSetInner(t *testing.T) {
	// The same generic map composes with a different inner MRDT unchanged.
	m := alphamap.New[gset.State, gset.Op, gset.Val](gset.Set{})
	lca := m.Init()
	a, _ := m.Do(alphamap.Op[gset.Op]{K: "s", Inner: gset.Op{Kind: gset.Add, E: 1}}, lca, 1)
	b, _ := m.Do(alphamap.Op[gset.Op]{K: "s", Inner: gset.Op{Kind: gset.Add, E: 2}}, lca, 2)
	merged := m.Merge(lca, a, b)
	_, v := m.Do(alphamap.Op[gset.Op]{Get: true, K: "s", Inner: gset.Op{Kind: gset.Read}}, merged, 3)
	if len(v.Elems) != 2 || v.Elems[0] != 1 || v.Elems[1] != 2 {
		t.Fatalf("merged inner set = %v", v.Elems)
	}
}

func TestProjection(t *testing.T) {
	h := core.NewHistory[alphamap.Op[counter.Op], counter.Val]()
	e1 := h.Append(setOp("a", counter.Op{Kind: counter.Inc, N: 3}), 0, 1, nil)
	e2 := h.Append(setOp("b", counter.Op{Kind: counter.Inc, N: 7}), 0, 2, []core.EventID{e1})
	e3 := h.Append(setOp("a", counter.Op{Kind: counter.Dec, N: 1}), 0, 3, []core.EventID{e1, e2})
	g1 := h.Append(getOp("a", counter.Op{Kind: counter.Read}), 2, 4, []core.EventID{e1, e2, e3})
	abs := core.StateOf(h, []core.EventID{e1, e2, e3, g1})

	pa := alphamap.Project("a", abs)
	if pa.NumEvents() != 2 {
		t.Fatalf("projection of a has %d events, want 2 (gets are skipped)", pa.NumEvents())
	}
	// Visibility is preserved through the projection.
	evs := pa.Events()
	if !pa.Vis(evs[0], evs[1]) {
		t.Fatal("projected events must preserve visibility")
	}
	pb := alphamap.Project("b", abs)
	if pb.NumEvents() != 1 {
		t.Fatalf("projection of b has %d events, want 1", pb.NumEvents())
	}
	if alphamap.Project("z", abs).NumEvents() != 0 {
		t.Fatal("projection of an untouched key must be empty")
	}
}

func TestDerivedSpec(t *testing.T) {
	spec := alphamap.Spec[counter.Op, counter.Val](counter.PNSpec)
	h := core.NewHistory[alphamap.Op[counter.Op], counter.Val]()
	e1 := h.Append(setOp("a", counter.Op{Kind: counter.Inc, N: 3}), 0, 1, nil)
	e2 := h.Append(setOp("a", counter.Op{Kind: counter.Inc, N: 4}), 0, 2, nil) // concurrent
	abs := core.StateOf(h, []core.EventID{e1, e2})
	if got := spec(getOp("a", counter.Op{Kind: counter.Read}), abs); got != 7 {
		t.Fatalf("derived spec = %d, want 7", got)
	}
	if got := spec(getOp("b", counter.Op{Kind: counter.Read}), abs); got != 0 {
		t.Fatalf("derived spec for unbound key = %d, want 0", got)
	}
}

func TestDerivedRsim(t *testing.T) {
	m := newCounterMap()
	rsim := alphamap.Rsim[counter.PNState, counter.Op, counter.Val](m, counter.PNRsim)
	h := core.NewHistory[alphamap.Op[counter.Op], counter.Val]()
	e1 := h.Append(setOp("a", counter.Op{Kind: counter.Inc, N: 3}), 0, 1, nil)
	abs := core.StateOf(h, []core.EventID{e1})
	good := alphamap.State[counter.PNState]{{K: "a", V: counter.PNState{P: 3}}}
	if !rsim(abs, good) {
		t.Fatal("derived Rsim must accept the faithful state")
	}
	bad := alphamap.State[counter.PNState]{{K: "a", V: counter.PNState{P: 4}}}
	if rsim(abs, bad) {
		t.Fatal("derived Rsim must reject a wrong inner state")
	}
	missing := alphamap.State[counter.PNState]{}
	if rsim(abs, missing) {
		t.Fatal("derived Rsim must reject a missing binding")
	}
	extra := alphamap.State[counter.PNState]{{K: "a", V: counter.PNState{P: 3}}, {K: "ghost", V: counter.PNState{}}}
	if rsim(abs, extra) {
		t.Fatal("derived Rsim must reject a binding with no set event")
	}
}
