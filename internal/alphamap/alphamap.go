// Package alphamap implements the generic α-map MRDT of §5.3: a map from
// string keys to values that are themselves MRDTs, parameterized by the
// inner data type's implementation. Its specification and simulation
// relation are derived compositionally from the inner data type's, via the
// projection function of §5.4 — verifying the map for one inner MRDT
// certifies it for every verified inner MRDT.
package alphamap

import (
	"slices"

	"repro/internal/core"
)

// Op is an α-map operation: apply the inner operation Inner to the value at
// key K. Set updates the binding with the resulting inner state; Get
// applies the operation only for its return value, leaving the map
// unchanged (§5.3).
type Op[InnerOp any] struct {
	Get   bool
	K     string
	Inner InnerOp
}

// Entry is one key binding.
type Entry[S any] struct {
	K string
	V S
}

// State is the concrete α-map state: bindings sorted by key. Treat as
// immutable.
type State[S any] []Entry[S]

// Map is the α-map MRDT for inner implementation D_α.
type Map[S, InnerOp, InnerVal any] struct {
	Inner core.MRDT[S, InnerOp, InnerVal]
}

// New returns an α-map over the given inner MRDT.
func New[S, InnerOp, InnerVal any](inner core.MRDT[S, InnerOp, InnerVal]) Map[S, InnerOp, InnerVal] {
	return Map[S, InnerOp, InnerVal]{Inner: inner}
}

// Init returns the empty map.
func (Map[S, InnerOp, InnerVal]) Init() State[S] { return nil }

func find[S any](s State[S], k string) (int, bool) {
	return slices.BinarySearchFunc(s, k, func(e Entry[S], k string) int {
		switch {
		case e.K < k:
			return -1
		case e.K > k:
			return 1
		default:
			return 0
		}
	})
}

// value returns δ(σ, k): the binding for k, or the inner initial state
// when k is unbound (§5.3, line 3).
func (m Map[S, InnerOp, InnerVal]) value(s State[S], k string) S {
	if i, ok := find(s, k); ok {
		return s[i].V
	}
	return m.Inner.Init()
}

// Do applies op: fetch the value at the key (or the inner initial state),
// run the inner operation on it, and for Set record the updated value.
func (m Map[S, InnerOp, InnerVal]) Do(op Op[InnerOp], s State[S], t core.Timestamp) (State[S], InnerVal) {
	v, r := m.Inner.Do(op.Inner, m.value(s, op.K), t)
	if op.Get {
		return s, r
	}
	i, ok := find(s, op.K)
	next := make(State[S], 0, len(s)+1)
	next = append(next, s[:i]...)
	next = append(next, Entry[S]{K: op.K, V: v})
	if ok {
		next = append(next, s[i+1:]...)
	} else {
		next = append(next, s[i:]...)
	}
	return next, r
}

// Merge merges the values of every key bound anywhere, using the inner
// merge with the LCA's binding (or the inner initial state) as the base
// (§5.3, line 6).
func (m Map[S, InnerOp, InnerVal]) Merge(lca, a, b State[S]) State[S] {
	keys := make(map[string]bool)
	for _, e := range lca {
		keys[e.K] = true
	}
	for _, e := range a {
		keys[e.K] = true
	}
	for _, e := range b {
		keys[e.K] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	slices.Sort(sorted)
	out := make(State[S], 0, len(sorted))
	for _, k := range sorted {
		out = append(out, Entry[S]{
			K: k,
			V: m.Inner.Merge(m.value(lca, k), m.value(a, k), m.value(b, k)),
		})
	}
	return out
}

// Project is the projection function of §5.4: it extracts from an α-map
// abstract execution the inner-type execution at key k. Every Set event on
// k maps to one inner event preserving operation, return value, timestamp
// and visibility; Get events do not mutate and are not projected.
func Project[InnerOp, InnerVal any](k string, abs *core.AbstractState[Op[InnerOp], InnerVal]) *core.AbstractState[InnerOp, InnerVal] {
	h := core.NewHistory[InnerOp, InnerVal]()
	idOf := make(map[core.EventID]core.EventID)
	var projected []core.EventID
	evs := abs.Events()
	for _, e := range evs {
		o := abs.Oper(e)
		if o.Get || o.K != k {
			continue
		}
		var preds []core.EventID
		for _, f := range evs {
			if fo := abs.Oper(f); !fo.Get && fo.K == k && abs.Vis(f, e) {
				preds = append(preds, idOf[f])
			}
		}
		id := h.Append(o.Inner, abs.Rval(e), abs.Time(e), preds)
		idOf[e] = id
		projected = append(projected, id)
	}
	return core.StateOf(h, projected)
}

// Spec derives F_α-map from the inner specification (§5.3):
// F(get/set(k, o), I) = F_α(o, project(k, I)).
func Spec[InnerOp, InnerVal any](inner core.Spec[InnerOp, InnerVal]) core.Spec[Op[InnerOp], InnerVal] {
	return func(op Op[InnerOp], abs *core.AbstractState[Op[InnerOp], InnerVal]) InnerVal {
		return inner(op.Inner, Project(op.K, abs))
	}
}

// Rsim derives the α-map simulation relation from the inner one (§5.3):
// every bound key has a Set event, and the inner relation holds between
// the key's projected execution and its binding (with unbound keys checked
// against the inner initial state).
func Rsim[S, InnerOp, InnerVal any](m Map[S, InnerOp, InnerVal], inner core.Rsim[S, InnerOp, InnerVal]) core.Rsim[State[S], Op[InnerOp], InnerVal] {
	return func(abs *core.AbstractState[Op[InnerOp], InnerVal], s State[S]) bool {
		for i := 1; i < len(s); i++ {
			if s[i-1].K >= s[i].K {
				return false
			}
		}
		keys := make(map[string]bool)
		for _, e := range abs.Events() {
			if o := abs.Oper(e); !o.Get {
				keys[o.K] = true
			}
		}
		if len(keys) != len(s) {
			return false
		}
		for _, entry := range s {
			if !keys[entry.K] {
				return false
			}
		}
		for k := range keys {
			if !inner(Project(k, abs), m.value(s, k)) {
				return false
			}
		}
		return true
	}
}
