package obs

// Hand-rolled Prometheus text exposition (version 0.0.4): no client
// library dependency, stable output order (families sorted by name,
// series by label signature), histograms rendered with cumulative
// `le` buckets plus _sum and _count. Histogram units stay in the
// instrument's native unit (nanoseconds, bytes); the unit is part of
// the metric name (`_ns`, `_bytes`) rather than rescaled to seconds.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm writes every instrument in the text exposition format.
// Nil receiver writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family list under the lock; instrument reads are
	// atomic so the render itself runs unlocked.
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.String())
		r.mu.Lock()
		insts := make([]*instrument, 0, len(f.insts))
		keys := make([]string, 0, len(f.insts))
		for k := range f.insts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			insts = append(insts, f.insts[k])
		}
		r.mu.Unlock()
		for _, inst := range insts {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(inst.labels, "", 0), inst.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(inst.labels, "", 0), inst.g.Value())
			case kindHistogram:
				h := inst.h
				var cum int64
				for i := range h.counts {
					cum += h.counts[i].Load()
					if i < len(h.bounds) {
						fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, promLabels(inst.labels, "le", h.bounds[i]), cum)
					} else {
						fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, promLabelsInf(inst.labels), cum)
					}
				}
				fmt.Fprintf(&b, "%s_sum%s %d\n", f.name, promLabels(inst.labels, "", 0), h.Sum())
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, promLabels(inst.labels, "", 0), h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promLabels renders {k="v",...}, appending the `le` bound when
// leName is non-empty; empty label sets render as nothing (or just
// {le="..."} for histogram buckets).
func promLabels(labels []string, leName string, le int64) string {
	if len(labels) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	if leName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%d\"", leName, le)
	}
	b.WriteByte('}')
	return b.String()
}

func promLabelsInf(labels []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	if len(labels) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}
