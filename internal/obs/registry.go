// Package obs is the observability layer: a dependency-free metrics
// registry (atomic counters, gauges, fixed-bucket histograms) and a
// bounded flight recorder of sync-session spans and mesh lifecycle
// events. Every type is nil-safe — a nil *Registry hands out nil
// instruments, and every method on a nil instrument is a no-op — so
// instrumented hot paths pay one predictable branch when observability
// is disabled and nothing allocates.
//
// The package imports nothing from the rest of the repository, so any
// layer (store, disk, wire, mesh, replica) can take a *Registry without
// creating an import cycle.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count; zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an atomic value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores n. No-op on nil.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n. No-op on nil.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge; zero on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Histogram counts observations into fixed upper-bound buckets (plus
// an implicit +Inf bucket) and tracks the running sum. Units are the
// caller's — latency histograms here observe nanoseconds, size
// histograms bytes — and the bucket bounds travel with the instrument.
type Histogram struct {
	bounds []int64        // sorted upper bounds
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Int64
	total  atomic.Int64
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations; zero on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the running sum of observations; zero on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Canned bucket layouts. Latency buckets are nanoseconds spanning 50µs
// to 10s; size buckets are bytes spanning 64B to 64MiB (the wire
// layer's MaxFieldBytes); depth buckets count small integers (recon
// descent, LCA frontiers).
var (
	LatencyBuckets = []int64{
		50_000, 100_000, 250_000, 500_000, // 50µs .. 500µs
		1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, // 1ms .. 25ms
		50_000_000, 100_000_000, 250_000_000, 500_000_000, // 50ms .. 500ms
		1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000, // 1s .. 10s
	}
	SizeBuckets  = []int64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	DepthBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every instrument sharing one metric name: same kind,
// one optional help string, one instrument per label signature.
type family struct {
	name  string
	kind  kind
	help  string
	insts map[string]*instrument // keyed by canonical label signature
}

type instrument struct {
	labels []string // alternating key, value — creation order preserved
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry hands out instruments deduplicated by metric name + label
// set: asking twice for the same (name, labels) returns the same
// instrument, so independent subsystems (two object stores, two disk
// logs) share counts under one exposition line. A nil *Registry is the
// disabled state: every getter returns nil and every Describe is a
// no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes alternating key/value pairs into a map key:
// sorted by label name, independent of call-site order.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	return b.String()
}

// get returns the instrument for (name, labels), creating the family
// and instrument as needed; wrong-kind collisions on a name return a
// fresh unregistered instrument rather than corrupting the family (the
// caller still gets a working, if invisible, instrument).
func (r *Registry) get(name string, k kind, bounds []int64, labels []string) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, insts: make(map[string]*instrument)}
		r.families[name] = f
	}
	if f.kind != k {
		return newInstrument(k, bounds, labels)
	}
	key := labelKey(labels)
	inst, ok := f.insts[key]
	if !ok {
		inst = newInstrument(k, bounds, labels)
		f.insts[key] = inst
	}
	return inst
}

func newInstrument(k kind, bounds []int64, labels []string) *instrument {
	inst := &instrument{labels: append([]string(nil), labels...)}
	switch k {
	case kindCounter:
		inst.c = &Counter{}
	case kindGauge:
		inst.g = &Gauge{}
	case kindHistogram:
		inst.h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return inst
}

// Counter returns the counter named name with the given alternating
// key/value labels, creating it on first use. Nil receiver → nil.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, kindCounter, nil, labels).c
}

// Gauge returns the gauge named name with the given labels, creating
// it on first use. Nil receiver → nil.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, kindGauge, nil, labels).g
}

// Histogram returns the histogram named name with the given bucket
// upper bounds and labels, creating it on first use; later calls for
// the same name ignore bounds (the first registration wins). Nil
// receiver → nil.
func (r *Registry) Histogram(name string, bounds []int64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, kindHistogram, bounds, labels).h
}

// Describe attaches help text to a metric family; exposition prints it
// as the # HELP line. No-op on nil or for unknown names (call after
// the first instrument of the family exists).
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	}
}

// Metric is one instrument's state in a Snapshot: counters and gauges
// carry Value, histograms carry Count/Sum/Buckets (cumulative counts
// per upper bound, Prometheus-style, with the +Inf bucket last).
type Metric struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   int64             `json:"value,omitempty"`
	Count   int64             `json:"count,omitempty"`
	Sum     int64             `json:"sum,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket; Le is the upper bound in
// the instrument's unit, with Le == math.MaxInt64 standing in for +Inf.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Snapshot returns every instrument's current state, sorted by metric
// name then label signature — a stable, JSON-able view for the debug
// endpoint. Nil receiver → nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Metric
	for _, f := range r.families {
		for _, inst := range f.insts {
			m := Metric{Name: f.name, Kind: f.kind.String()}
			if len(inst.labels) > 0 {
				m.Labels = make(map[string]string, len(inst.labels)/2)
				for i := 0; i+1 < len(inst.labels); i += 2 {
					m.Labels[inst.labels[i]] = inst.labels[i+1]
				}
			}
			switch f.kind {
			case kindCounter:
				m.Value = inst.c.Value()
			case kindGauge:
				m.Value = inst.g.Value()
			case kindHistogram:
				m.Count = inst.h.Count()
				m.Sum = inst.h.Sum()
				var cum int64
				for i := range inst.h.counts {
					cum += inst.h.counts[i].Load()
					le := int64(1<<63 - 1)
					if i < len(inst.h.bounds) {
						le = inst.h.bounds[i]
					}
					m.Buckets = append(m.Buckets, Bucket{Le: le, Count: cum})
				}
			}
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelSig(out[i].Labels) < labelSig(out[j].Labels)
	})
	return out
}

func labelSig(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(',')
	}
	return b.String()
}
