package obs

// The flight recorder: bounded ring buffers of sync-session spans and
// mesh lifecycle events. Appends take one short mutex hold and never
// allocate beyond the recorded value itself; when a ring is full the
// oldest entry is overwritten, so a long-lived node always holds the
// most recent history and memory stays flat. Nil *Recorder is the
// disabled state — every method no-ops.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase is one timed step inside a sync-session span. Object is empty
// for whole-session phases (negotiate) and names the replicated object
// for per-object phases (descend, ship, import).
type Phase struct {
	Name   string `json:"name"`
	Object string `json:"object,omitempty"`
	DurNs  int64  `json:"dur_ns"`
}

// Span is one sync session, client or server side: who it talked to,
// which ladder tier the negotiation landed on, the per-phase timeline,
// the wire cost, and how it ended (Err empty on success; FailClass is
// the mesh taxonomy's word for the error — "transient" or "violation").
type Span struct {
	ID          uint64    `json:"id"`
	Role        string    `json:"role"`
	Peer        string    `json:"peer,omitempty"`
	Tier        string    `json:"tier,omitempty"`
	Objects     int       `json:"objects,omitempty"`
	Phases      []Phase   `json:"phases,omitempty"`
	BytesSent   int64     `json:"bytes_sent"`
	BytesRecv   int64     `json:"bytes_recv"`
	CommitsSent int64     `json:"commits_sent"`
	CommitsRecv int64     `json:"commits_recv"`
	Err         string    `json:"err,omitempty"`
	FailClass   string    `json:"fail_class,omitempty"`
	Start       time.Time `json:"start"`
	DurNs       int64     `json:"dur_ns"`
}

// Event is one mesh lifecycle transition: backoff changes, quarantine
// enter/lift, push-coalescing outbox overflow — anything worth a line
// in the forensic record that is not a whole session.
type Event struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Peer   string    `json:"peer,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Trace is one consistent snapshot of the recorder: spans and events,
// each oldest-first.
type Trace struct {
	Spans  []Span  `json:"spans"`
	Events []Event `json:"events"`
}

// Recorder holds the rings. The zero value is not usable; construct
// with NewRecorder. Nil receiver: all methods no-op.
type Recorder struct {
	mu      sync.Mutex
	spans   []Span
	spanN   int // next write position
	spanLen int // valid entries
	events  []Event
	evN     int
	evLen   int
	nextID  uint64
}

// Ring capacities: enough recent history for forensics, small enough
// that an always-on node's recorder stays a fixed few hundred KB.
const (
	spanRingCap  = 256
	eventRingCap = 1024
)

// NewRecorder returns a recorder with the default ring capacities.
func NewRecorder() *Recorder {
	return &Recorder{
		spans:  make([]Span, spanRingCap),
		events: make([]Event, eventRingCap),
	}
}

// NextSpanID hands out a unique span id. Zero on nil.
func (r *Recorder) NextSpanID() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	return r.nextID
}

// AddSpan records a completed span, overwriting the oldest when full.
func (r *Recorder) AddSpan(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ID == 0 {
		r.nextID++
		s.ID = r.nextID
	}
	r.spans[r.spanN] = s
	r.spanN = (r.spanN + 1) % len(r.spans)
	if r.spanLen < len(r.spans) {
		r.spanLen++
	}
}

// AddEvent records a lifecycle event, overwriting the oldest when full.
func (r *Recorder) AddEvent(e Event) {
	if r == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events[r.evN] = e
	r.evN = (r.evN + 1) % len(r.events)
	if r.evLen < len(r.events) {
		r.evLen++
	}
}

// Snapshot copies both rings oldest-first. Nil receiver → zero Trace.
func (r *Recorder) Snapshot() Trace {
	if r == nil {
		return Trace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := Trace{}
	if r.spanLen > 0 {
		t.Spans = make([]Span, 0, r.spanLen)
		start := (r.spanN - r.spanLen + len(r.spans)) % len(r.spans)
		for i := 0; i < r.spanLen; i++ {
			t.Spans = append(t.Spans, r.spans[(start+i)%len(r.spans)])
		}
	}
	if r.evLen > 0 {
		t.Events = make([]Event, 0, r.evLen)
		start := (r.evN - r.evLen + len(r.events)) % len(r.events)
		for i := 0; i < r.evLen; i++ {
			t.Events = append(t.Events, r.events[(start+i)%len(r.events)])
		}
	}
	return t
}

// FormatSpan renders one span as a human-readable timeline line pair:
// a summary line, then the phase chain indented under it.
func FormatSpan(s Span) string {
	var b strings.Builder
	status := "ok"
	if s.Err != "" {
		status = "ERR(" + s.FailClass + "): " + s.Err
	}
	fmt.Fprintf(&b, "#%d %s %-6s peer=%s tier=%s objects=%d %s sent=%dB/%dc recv=%dB/%dc %s",
		s.ID, s.Start.Format("15:04:05.000"), s.Role, s.Peer, orDash(s.Tier), s.Objects,
		time.Duration(s.DurNs).Round(time.Microsecond), s.BytesSent, s.CommitsSent,
		s.BytesRecv, s.CommitsRecv, status)
	if len(s.Phases) > 0 {
		b.WriteString("\n    ")
		for i, p := range s.Phases {
			if i > 0 {
				b.WriteString(" | ")
			}
			if p.Object != "" {
				fmt.Fprintf(&b, "%s[%s] %s", p.Name, p.Object, time.Duration(p.DurNs).Round(time.Microsecond))
			} else {
				fmt.Fprintf(&b, "%s %s", p.Name, time.Duration(p.DurNs).Round(time.Microsecond))
			}
		}
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// FormatTrace renders a whole trace: events and spans interleaved by
// time, one entry per line (spans take a second indented line for
// their phase chain).
func FormatTrace(t Trace) string {
	type entry struct {
		at   time.Time
		text string
	}
	entries := make([]entry, 0, len(t.Spans)+len(t.Events))
	for _, s := range t.Spans {
		entries = append(entries, entry{s.Start, FormatSpan(s)})
	}
	for _, e := range t.Events {
		text := fmt.Sprintf("-- %s event %s peer=%s %s",
			e.Time.Format("15:04:05.000"), e.Kind, e.Peer, e.Detail)
		entries = append(entries, entry{e.Time, text})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].at.Before(entries[j].at) })
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(e.text)
		b.WriteByte('\n')
	}
	return b.String()
}
